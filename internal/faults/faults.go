// Package faults is the monitor-side impairment layer: it degrades a
// pristine capture the way a real passive monitor would, without touching
// what the endpoints exchanged. The transports still recovered end to end —
// only the monitor's *view* of the traffic is damaged, which is exactly the
// deployment gap between a lab tap and a production vantage point.
//
// Impairments compose into a fixed chain (capture window -> bursty sniffer
// drops -> duplication -> snaplen clipping -> timestamp jitter/skew -> cross
// traffic), each drawing from its own seeded random stream so enabling one
// impairment never shifts another's draws. Same Spec (including Seed) in,
// byte-identical impaired trace out — the property the degradation-sweep
// goldens pin.
//
// Real-world counterparts, per impairment:
//
//   - Capture window (StartSec/EndSec): the monitor attached mid-session or
//     detached early, losing the TLS/QUIC handshake (SNI) and the DNS
//     exchange that Step 1.1 keys on.
//   - Gilbert–Elliott drops: sniffer buffer overruns under load arrive in
//     bursts, not as independent coin flips (libpcap ps_drop).
//   - Duplication: span/mirror ports and some NIC offloads deliver the same
//     frame twice.
//   - Snaplen clipping: captures routinely truncate payload bytes
//     (tcpdump -s); IP/TCP/UDP headers stay visible, but deep payload
//     fields — the SNI inside a ClientHello, DNS answers, TLS record
//     framing past the clip — are lost.
//   - Jitter/skew: capture timestamps come from the monitor's clock, which
//     drifts relative to the endpoints and stamps with bounded noise.
//   - Cross traffic: other clients talk to the same CDN hostname through
//     the monitored path; their flows carry the same SNI as the video
//     connections CSI is looking for.
package faults

import (
	"math/rand"
	"sort"

	"csi/internal/capture"
	"csi/internal/obs"
	"csi/internal/packet"
)

// Spec configures the impairment chain. The zero value disables everything:
// Apply with a zero Spec returns a byte-identical copy of the input trace.
type Spec struct {
	// Seed drives every random draw of the chain. Each impairment derives
	// its own sub-stream from it, so impairments are independent.
	Seed int64

	// Gilbert–Elliott bursty monitor drops: per-packet drop probability
	// DropGood in the Good state and DropBad in the Bad state, with
	// per-packet transition probabilities PGB (Good->Bad) and PBG
	// (Bad->Good). All zero = no drops.
	DropGood, DropBad float64
	PGB, PBG          float64

	// StartSec drops every packet captured before this time (mid-session
	// attach); EndSec, when positive, drops everything after it (early
	// detach).
	StartSec, EndSec float64

	// Snaplen clips packets larger than this wire size (0 = no clipping):
	// deep payload fields (SNI, DNS strings, TLS record framing past the
	// clip) are lost; header-derived fields survive.
	Snaplen int64

	// DupProb duplicates a packet with this probability (same timestamp).
	DupProb float64

	// JitterSec adds uniform +-JitterSec noise to every capture timestamp;
	// SkewPPM scales the monitor clock by (1 + SkewPPM*1e-6). The trace is
	// re-sorted by the impaired timestamps afterwards.
	JitterSec float64
	SkewPPM   float64

	// CrossFlows injects this many synthetic web-like TCP flows carrying
	// CrossHost as their SNI (default: the most common SNI already in the
	// trace — the same CDN hostname the video uses). CrossMeanBytes is the
	// mean response size (default 12000).
	CrossFlows     int
	CrossHost      string
	CrossMeanBytes int64
}

// Enabled reports whether the spec impairs anything at all.
func (s Spec) Enabled() bool {
	return s.DropGood > 0 || s.DropBad > 0 ||
		s.StartSec > 0 || s.EndSec > 0 ||
		s.Snaplen > 0 || s.DupProb > 0 ||
		s.JitterSec > 0 || s.SkewPPM != 0 || //csi-vet:ignore floatcmp -- exact zero is the unset-impairment sentinel
		s.CrossFlows > 0
}

// Report counts what each impairment did to the trace.
type Report struct {
	Input         int // packets offered
	Output        int // packets surviving
	WindowDropped int
	LossDropped   int
	Duplicated    int
	Clipped       int
	StringsLost   int // packets whose SNI/DNS fields were clipped away
	CrossConns    int
	CrossPackets  int
}

// Sub-stream tags: each impairment mixes its tag into the seed so that the
// draws of one impairment never depend on whether another is enabled.
const (
	tagLoss  = 0x6c6f7373 // "loss"
	tagDup   = 0x64757021 // "dup!"
	tagJit   = 0x6a697474 // "jitt"
	tagCross = 0x63726f73 // "cros"
)

// subRNG derives an independent deterministic stream for one impairment.
func subRNG(seed, tag int64) *rand.Rand {
	z := uint64(seed) ^ (uint64(tag) * 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return rand.New(rand.NewSource(int64(z))) // #nosec G404 -- deterministic by design
}

// Apply runs the impairment chain over the run's trace and returns a new
// run with the impaired trace. The instrumentation side band (ground truth,
// display log, stalls) is shared unchanged: monitor faults damage the
// monitor's view, not what the player did. The input run is not modified.
func Apply(run *capture.Run, spec Spec, tr *obs.Tracer) (*capture.Run, *Report) {
	rep := &Report{Input: len(run.Trace.Packets)}
	span := tr.Begin("faults", "apply",
		obs.Int("seed", spec.Seed),
		obs.Int("packets_in", int64(rep.Input)))

	pkts := make([]packet.View, 0, len(run.Trace.Packets))
	pkts = append(pkts, run.Trace.Packets...)

	pkts = applyWindow(pkts, spec, rep)
	pkts = applyLoss(pkts, spec, rep)
	pkts = applyDup(pkts, spec, rep)
	applySnaplen(pkts, spec, rep)
	applyClock(pkts, spec)
	pkts = applyCross(pkts, run.Trace, spec, rep)

	// Impaired timestamps define the monitor's ordering; the stable sort
	// keeps equal-time packets (duplicates) adjacent in original order.
	sort.SliceStable(pkts, func(a, b int) bool { return pkts[a].Time < pkts[b].Time })

	// Rebuild the side tables from the surviving packets only: a monitor
	// that missed the handshake never learned the SNI.
	out := capture.NewTrace()
	replay := out.Tap()
	for _, v := range pkts {
		replay(v, v.Time)
	}
	rep.Output = len(out.Packets)

	if tr.Enabled() {
		if rep.WindowDropped > 0 {
			tr.Metrics().Counter("faults.window_dropped").Add(int64(rep.WindowDropped))
		}
		if rep.LossDropped > 0 {
			tr.Metrics().Counter("faults.loss_dropped").Add(int64(rep.LossDropped))
		}
		if rep.Duplicated > 0 {
			tr.Metrics().Counter("faults.duplicated").Add(int64(rep.Duplicated))
		}
		if rep.Clipped > 0 {
			tr.Metrics().Counter("faults.clipped").Add(int64(rep.Clipped))
		}
		if rep.CrossPackets > 0 {
			tr.Metrics().Counter("faults.cross_packets").Add(int64(rep.CrossPackets))
		}
		tr.Event("faults", "applied",
			obs.Int("window_dropped", int64(rep.WindowDropped)),
			obs.Int("loss_dropped", int64(rep.LossDropped)),
			obs.Int("duplicated", int64(rep.Duplicated)),
			obs.Int("clipped", int64(rep.Clipped)),
			obs.Int("strings_lost", int64(rep.StringsLost)),
			obs.Int("cross_conns", int64(rep.CrossConns)),
			obs.Int("cross_packets", int64(rep.CrossPackets)))
	}
	span.End(obs.Int("packets_out", int64(rep.Output)))
	return &capture.Run{Trace: out, Truth: run.Truth, Display: run.Display, Stalls: run.Stalls}, rep
}

// applyWindow drops packets outside [StartSec, EndSec].
func applyWindow(pkts []packet.View, spec Spec, rep *Report) []packet.View {
	if spec.StartSec <= 0 && spec.EndSec <= 0 {
		return pkts
	}
	out := pkts[:0]
	for _, v := range pkts {
		if v.Time < spec.StartSec || (spec.EndSec > 0 && v.Time > spec.EndSec) {
			rep.WindowDropped++
			continue
		}
		out = append(out, v)
	}
	return out
}

// applyLoss runs the two-state Gilbert–Elliott chain over the surviving
// packets. The chain advances once per packet whether or not it drops, so
// the drop pattern is a pure function of the seed and the packet count.
func applyLoss(pkts []packet.View, spec Spec, rep *Report) []packet.View {
	if spec.DropGood <= 0 && spec.DropBad <= 0 {
		return pkts
	}
	rng := subRNG(spec.Seed, tagLoss)
	bad := false
	out := pkts[:0]
	for _, v := range pkts {
		if bad {
			if rng.Float64() < spec.PBG {
				bad = false
			}
		} else if rng.Float64() < spec.PGB {
			bad = true
		}
		p := spec.DropGood
		if bad {
			p = spec.DropBad
		}
		if p > 0 && rng.Float64() < p {
			rep.LossDropped++
			continue
		}
		out = append(out, v)
	}
	return out
}

// applyDup duplicates packets in place (duplicate directly after the
// original, same timestamp — a span-port copy).
func applyDup(pkts []packet.View, spec Spec, rep *Report) []packet.View {
	if spec.DupProb <= 0 {
		return pkts
	}
	rng := subRNG(spec.Seed, tagDup)
	out := make([]packet.View, 0, len(pkts)+len(pkts)/16)
	for _, v := range pkts {
		out = append(out, v)
		if rng.Float64() < spec.DupProb {
			out = append(out, v)
			rep.Duplicated++
		}
	}
	return out
}

// applySnaplen clips packets larger than the snaplen: header-derived fields
// (sizes, seq, packet numbers) survive, deep payload fields are lost. For
// clipped TCP data packets the monitor loses TLS record framing past the
// clip and conservatively attributes the whole payload to application data
// — keeping size estimates over-estimates, the direction Property 1
// tolerates. Handshake-only packets keep their classification (the first
// record header sits at the start of the captured payload).
func applySnaplen(pkts []packet.View, spec Spec, rep *Report) {
	if spec.Snaplen <= 0 {
		return
	}
	for i := range pkts {
		v := &pkts[i]
		if v.Size <= spec.Snaplen {
			continue
		}
		rep.Clipped++
		if v.SNI != "" || v.DNSQuery != "" || v.DNSAnswerIP != "" {
			v.SNI, v.DNSQuery, v.DNSAnswerIP = "", "", ""
			rep.StringsLost++
		}
		if v.Proto == packet.TCP && v.TLSAppBytes > 0 {
			v.TLSAppBytes = v.TCPPayload
			v.TLSHSBytes = 0
		}
	}
}

// applyClock applies clock skew and bounded timestamp jitter.
func applyClock(pkts []packet.View, spec Spec) {
	if spec.JitterSec <= 0 && spec.SkewPPM == 0 { //csi-vet:ignore floatcmp -- exact zero is the unset-impairment sentinel
		return
	}
	rng := subRNG(spec.Seed, tagJit)
	scale := 1 + spec.SkewPPM*1e-6
	for i := range pkts {
		t := pkts[i].Time * scale
		if spec.JitterSec > 0 {
			t += (2*rng.Float64() - 1) * spec.JitterSec
		}
		if t < 0 {
			t = 0
		}
		pkts[i].Time = t
	}
}

// applyCross appends synthetic web-like TCP flows carrying the same SNI as
// the monitored video traffic: short request/response exchanges with small
// responses, the API chatter that shares a CDN hostname with media.
func applyCross(pkts []packet.View, orig *capture.Trace, spec Spec, rep *Report) []packet.View {
	if spec.CrossFlows <= 0 || len(pkts) == 0 {
		return pkts
	}
	host := spec.CrossHost
	if host == "" {
		host = dominantSNI(orig)
	}
	if host == "" {
		return pkts // nothing to blend with
	}
	ip := ""
	maxConn := 0
	for _, v := range orig.Packets {
		if v.ConnID > maxConn {
			maxConn = v.ConnID
		}
	}
	// First-match lookup keyed by host equality — any match yields the
	// same ip, so iteration order cannot leak.
	for id, sni := range orig.SNI {
		if sni == host {
			if a, ok := orig.ServerIP[id]; ok {
				ip = a
			}
			break
		}
	}
	if ip == "" {
		ip = "203.0.113.250"
	}
	t0, t1 := pkts[0].Time, pkts[len(pkts)-1].Time
	if t1 <= t0 {
		return pkts
	}
	mean := spec.CrossMeanBytes
	if mean <= 0 {
		mean = 12_000
	}
	rng := subRNG(spec.Seed, tagCross)
	const mss = 1400
	for f := 0; f < spec.CrossFlows; f++ {
		conn := maxConn + 1 + f
		rep.CrossConns++
		t := t0 + rng.Float64()*(t1-t0)*0.5
		emit := func(v packet.View) {
			v.Time = t
			v.ConnID = conn
			v.Proto = packet.TCP
			v.ServerIP = ip
			pkts = append(pkts, v)
			rep.CrossPackets++
		}
		// Handshake: ClientHello (SNI) and ServerHello.
		emit(packet.View{Dir: packet.Up, Size: 380, TCPPayload: 328, TLSHSBytes: 323, SNI: host})
		t += 0.03
		emit(packet.View{Dir: packet.Down, Size: 1500, TCPSeq: 0, TCPPayload: 1448, TLSHSBytes: 1443})
		var upSeq, downSeq int64 = 328, 1448
		exchanges := 2 + rng.Intn(5)
		for x := 0; x < exchanges && t < t1; x++ {
			t += 0.2 + rng.Float64()*3
			reqBytes := int64(180 + rng.Intn(400))
			emit(packet.View{Dir: packet.Up, TCPSeq: upSeq, Size: reqBytes + 52, TCPPayload: reqBytes, TLSAppBytes: reqBytes - 5})
			upSeq += reqBytes
			resp := mean/2 + int64(rng.Int63n(mean))
			t += 0.02
			for resp > 0 && t < t1 {
				pay := int64(mss)
				if resp < pay {
					pay = resp
				}
				emit(packet.View{Dir: packet.Down, TCPSeq: downSeq, Size: pay + 52, TCPPayload: pay, TLSAppBytes: pay - 5})
				downSeq += pay
				resp -= pay
				t += float64(pay) * 8 / 10e6 // paced at ~10 Mbit/s
			}
		}
	}
	return pkts
}

// dominantSNI returns the SNI observed on the most connections (the CDN
// hostname cross traffic would share). Ties break lexicographically so the
// choice is deterministic.
func dominantSNI(tr *capture.Trace) string {
	counts := map[string]int{}
	for _, sni := range tr.SNI {
		counts[sni]++
	}
	best, bestN := "", 0
	// Max selection with a lexicographic tie-break: order independent.
	for sni, n := range counts {
		if n > bestN || (n == bestN && sni < best) {
			best, bestN = sni, n
		}
	}
	return best
}
