package faults

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseSpec asserts the parser's safety contract on arbitrary input:
// it never panics, every accepted spec holds only finite, in-range
// impairment parameters, and the canonical String() rendering of an
// enabled spec re-parses to the same canonical form.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"none-like garbage",
		"loss=0.01",
		"loss=0.45",
		"ge=0.1:0.3:0:0.5",
		"start=5,end=30",
		"snaplen=96",
		"dup=0.005,jitter=0.002",
		"skew=120",
		"skew=-40.5",
		"cross=2,crosshost=cdn.example.com,crossbytes=12000",
		"loss=0.01,start=5,dup=0.005,cross=1",
		"seed=42,loss=0.02",
		"loss=NaN",
		"skew=Inf",
		"start=1e309",
		"crosshost=",
		"crossbytes=-1",
		"end=1,start=2",
		"=,=,=",
		"loss=0.01,loss=0.02",
		"  loss = 0.01 ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		for name, v := range map[string]float64{
			"PGB": spec.PGB, "PBG": spec.PBG,
			"DropGood": spec.DropGood, "DropBad": spec.DropBad,
			"DupProb": spec.DupProb,
		} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("ParseSpec(%q): %s = %g out of [0,1]", s, name, v)
			}
		}
		for name, v := range map[string]float64{
			"StartSec": spec.StartSec, "EndSec": spec.EndSec,
			"JitterSec": spec.JitterSec,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("ParseSpec(%q): %s = %g not finite and >= 0", s, name, v)
			}
		}
		if math.IsNaN(spec.SkewPPM) || math.IsInf(spec.SkewPPM, 0) {
			t.Fatalf("ParseSpec(%q): SkewPPM = %g not finite", s, spec.SkewPPM)
		}
		if spec.Snaplen != 0 && spec.Snaplen < 96 {
			t.Fatalf("ParseSpec(%q): Snaplen = %d below the floor", s, spec.Snaplen)
		}
		if spec.CrossFlows < 0 {
			t.Fatalf("ParseSpec(%q): CrossFlows = %d negative", s, spec.CrossFlows)
		}
		if spec.CrossMeanBytes != 0 && spec.CrossMeanBytes < 1 {
			t.Fatalf("ParseSpec(%q): CrossMeanBytes = %d below 1", s, spec.CrossMeanBytes)
		}
		if strings.ContainsAny(spec.CrossHost, ",= \t") {
			t.Fatalf("ParseSpec(%q): CrossHost %q cannot round-trip", s, spec.CrossHost)
		}
		if !spec.Enabled() {
			return // String() renders "none", which is deliberately unparseable
		}
		canon := spec.String()
		spec2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(%q).String() = %q does not re-parse: %v", s, canon, err)
		}
		if got := spec2.String(); got != canon {
			t.Fatalf("canonical form unstable: %q -> %q -> %q", s, canon, got)
		}
	})
}
