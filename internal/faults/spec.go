package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseSpec parses the "-faults" flag syntax: a comma-separated list of
// key=value impairments.
//
//	seed=N        random seed for every impairment stream (default 1)
//	loss=P        mean monitor drop rate with default burstiness: drops
//	              arrive in bursts of ~4 packets (Gilbert–Elliott with
//	              DropBad=0.5, PBG=0.25); P must be < 0.5
//	ge=PGB:PBG:DG:DB  explicit Gilbert–Elliott parameters
//	start=S       capture starts at S seconds (mid-session attach)
//	end=S         capture ends at S seconds
//	snaplen=N     clip packets larger than N wire bytes (N >= 96)
//	dup=P         per-packet duplication probability
//	jitter=S      uniform +-S seconds of timestamp noise
//	skew=PPM      monitor clock skew in parts per million
//	cross=N       inject N same-SNI cross-traffic flows
//	crosshost=H   cross-traffic SNI (default: dominant SNI in the trace)
//	crossbytes=N  mean cross-traffic response size (default 12000)
//
// Example: "loss=0.01,start=5,snaplen=200,dup=0.005,cross=2,seed=11".
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Seed: 1}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("faults: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
		case "loss":
			var p float64
			if p, err = parseProb(v); err == nil {
				if p >= 0.5 {
					return spec, fmt.Errorf("faults: loss=%v: mean rate must be < 0.5", v)
				}
				if p > 0 {
					// Stationary bad-state probability 2p with DropBad=0.5
					// gives mean loss p; PBG=0.25 makes bursts ~4 packets.
					spec.DropGood = 0
					spec.DropBad = 0.5
					spec.PBG = 0.25
					// Above p = 0.4 the implied transition probability
					// exceeds 1; clamp so the spec stays a valid GE chain
					// (and String() output stays re-parseable).
					spec.PGB = math.Min(1, 0.25*2*p/(1-2*p))
				}
			}
		case "ge":
			parts := strings.Split(v, ":")
			if len(parts) != 4 {
				return spec, fmt.Errorf("faults: ge wants PGB:PBG:DROPGOOD:DROPBAD, got %q", v)
			}
			var vals [4]float64
			for i, p := range parts {
				if vals[i], err = parseProb(p); err != nil {
					return spec, fmt.Errorf("faults: ge component %q: %w", p, err)
				}
			}
			spec.PGB, spec.PBG, spec.DropGood, spec.DropBad = vals[0], vals[1], vals[2], vals[3]
		case "start":
			spec.StartSec, err = parseNonNeg(v)
		case "end":
			spec.EndSec, err = parseNonNeg(v)
		case "snaplen":
			spec.Snaplen, err = strconv.ParseInt(v, 10, 64)
			if err == nil && spec.Snaplen < 96 {
				return spec, fmt.Errorf("faults: snaplen=%d too small (headers must stay visible; want >= 96)", spec.Snaplen)
			}
		case "dup":
			spec.DupProb, err = parseProb(v)
		case "jitter":
			spec.JitterSec, err = parseNonNeg(v)
		case "skew":
			spec.SkewPPM, err = strconv.ParseFloat(v, 64)
			if err == nil && (math.IsNaN(spec.SkewPPM) || math.IsInf(spec.SkewPPM, 0)) {
				return spec, fmt.Errorf("faults: skew=%s must be finite", v)
			}
		case "cross":
			spec.CrossFlows, err = strconv.Atoi(v)
			if err == nil && spec.CrossFlows < 0 {
				return spec, fmt.Errorf("faults: cross=%d must be >= 0", spec.CrossFlows)
			}
		case "crosshost":
			if v == "" || strings.ContainsAny(v, ",= \t") {
				return spec, fmt.Errorf("faults: crosshost=%q must be a non-empty host without ',', '=' or spaces", v)
			}
			spec.CrossHost = v
		case "crossbytes":
			spec.CrossMeanBytes, err = strconv.ParseInt(v, 10, 64)
			if err == nil && spec.CrossMeanBytes < 1 {
				return spec, fmt.Errorf("faults: crossbytes=%d must be >= 1", spec.CrossMeanBytes)
			}
		default:
			return spec, fmt.Errorf("faults: unknown impairment %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("faults: %s=%s: %w", k, v, err)
		}
	}
	if spec.EndSec > 0 && spec.EndSec <= spec.StartSec {
		return spec, fmt.Errorf("faults: end=%g must be after start=%g", spec.EndSec, spec.StartSec)
	}
	return spec, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	// NaN compares false to everything, so check it explicitly or it
	// slips through the range guard.
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g out of [0,1]", p)
	}
	return p, nil
}

func parseNonNeg(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("%g must be finite and >= 0", v)
	}
	return v, nil
}

// String renders the spec in ParseSpec syntax (canonical key order).
func (s Spec) String() string {
	var parts []string
	add := func(k string, v interface{}) { parts = append(parts, fmt.Sprintf("%s=%v", k, v)) }
	if s.DropGood > 0 || s.DropBad > 0 {
		add("ge", fmt.Sprintf("%g:%g:%g:%g", s.PGB, s.PBG, s.DropGood, s.DropBad))
	}
	if s.StartSec > 0 {
		add("start", s.StartSec)
	}
	if s.EndSec > 0 {
		add("end", s.EndSec)
	}
	if s.Snaplen > 0 {
		add("snaplen", s.Snaplen)
	}
	if s.DupProb > 0 {
		add("dup", s.DupProb)
	}
	if s.JitterSec > 0 {
		add("jitter", s.JitterSec)
	}
	if s.SkewPPM != 0 { //csi-vet:ignore floatcmp -- exact zero is the unset-impairment sentinel
		add("skew", s.SkewPPM)
	}
	if s.CrossFlows > 0 {
		add("cross", s.CrossFlows)
		if s.CrossHost != "" {
			add("crosshost", s.CrossHost)
		}
		if s.CrossMeanBytes > 0 {
			add("crossbytes", s.CrossMeanBytes)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts)
	add("seed", s.Seed)
	return strings.Join(parts, ",")
}
