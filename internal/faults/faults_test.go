package faults

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"csi/internal/capture"
	"csi/internal/packet"
)

// syntheticRun builds a pristine capture: a DNS exchange, a TLS handshake
// carrying the SNI, then nPkts downlink data packets with contiguous seq
// ranges plus periodic uplink requests.
func syntheticRun(nPkts int) *capture.Run {
	tr := capture.NewTrace()
	tap := tr.Tap()
	tap(packet.View{Time: 0.01, Dir: packet.Up, Proto: packet.UDP, DNSQuery: "media.example.com", Size: 60}, 0.01)
	tap(packet.View{Time: 0.02, Dir: packet.Down, Proto: packet.UDP, DNSQuery: "media.example.com", DNSAnswerIP: "203.0.113.10", Size: 76}, 0.02)
	tap(packet.View{Time: 0.1, Dir: packet.Up, Proto: packet.TCP, ConnID: 1, ServerIP: "203.0.113.10", SNI: "media.example.com", Size: 420, TCPPayload: 368, TLSHSBytes: 363}, 0.1)
	tap(packet.View{Time: 0.13, Dir: packet.Down, Proto: packet.TCP, ConnID: 1, ServerIP: "203.0.113.10", Size: 1500, TCPSeq: 0, TCPPayload: 1448, TLSHSBytes: 1443}, 0.13)
	var upSeq, downSeq int64 = 368, 1448
	t := 0.2
	for i := 0; i < nPkts; i++ {
		if i%40 == 0 {
			tap(packet.View{Time: t, Dir: packet.Up, Proto: packet.TCP, ConnID: 1, ServerIP: "203.0.113.10", Size: 300, TCPSeq: upSeq, TCPPayload: 248, TLSAppBytes: 243}, t)
			upSeq += 248
			t += 0.005
		}
		tap(packet.View{Time: t, Dir: packet.Down, Proto: packet.TCP, ConnID: 1, ServerIP: "203.0.113.10", Size: 1452, TCPSeq: downSeq, TCPPayload: 1400, TLSAppBytes: 1380}, t)
		downSeq += 1400
		t += 0.002
	}
	return &capture.Run{Trace: tr}
}

func traceBytes(t *testing.T, run *capture.Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestZeroSpecIsIdentity(t *testing.T) {
	run := syntheticRun(500)
	got, rep := Apply(run, Spec{Seed: 42}, nil)
	if rep.Output != rep.Input {
		t.Fatalf("zero spec changed packet count: %d -> %d", rep.Input, rep.Output)
	}
	if !bytes.Equal(traceBytes(t, run), traceBytes(t, got)) {
		t.Fatal("zero spec did not round-trip the run byte-identically")
	}
	if Spec.Enabled(Spec{Seed: 9}) {
		t.Fatal("seed-only spec reports Enabled")
	}
}

func TestApplyIsDeterministic(t *testing.T) {
	run := syntheticRun(2000)
	spec, err := ParseSpec("loss=0.02,dup=0.01,snaplen=1000,jitter=0.001,skew=80,cross=2,start=0.05,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	a, repA := Apply(run, spec, nil)
	b, repB := Apply(run, spec, nil)
	if *repA != *repB {
		t.Fatalf("reports differ: %+v vs %+v", repA, repB)
	}
	if !bytes.Equal(traceBytes(t, a), traceBytes(t, b)) {
		t.Fatal("same spec+seed produced different impaired traces")
	}
	spec.Seed = 8
	c, _ := Apply(run, spec, nil)
	if bytes.Equal(traceBytes(t, a), traceBytes(t, c)) {
		t.Fatal("different seeds produced identical impaired traces")
	}
}

func TestCaptureWindowLosesHandshakeState(t *testing.T) {
	run := syntheticRun(500)
	got, rep := Apply(run, Spec{Seed: 1, StartSec: 0.5}, nil)
	if rep.WindowDropped == 0 {
		t.Fatal("no packets window-dropped")
	}
	if len(got.Trace.SNI) != 0 {
		t.Fatalf("mid-session start kept SNI: %v", got.Trace.SNI)
	}
	if len(got.Trace.DNS) != 0 {
		t.Fatalf("mid-session start kept DNS: %v", got.Trace.DNS)
	}
	for _, v := range got.Trace.Packets {
		if v.Time < 0.5 {
			t.Fatalf("packet before capture start survived: %+v", v)
		}
	}
}

func TestGilbertElliottMeanRate(t *testing.T) {
	run := syntheticRun(20000)
	spec, err := ParseSpec("loss=0.02,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	_, rep := Apply(run, spec, nil)
	rate := float64(rep.LossDropped) / float64(rep.Input)
	if rate < 0.005 || rate > 0.05 {
		t.Fatalf("GE mean loss rate %.4f far from configured 0.02", rate)
	}
	// Burstiness: drops must cluster, i.e. far fewer distinct loss runs
	// than drops. Re-derive runs by diffing survivor seq numbers.
	if rep.LossDropped < 50 {
		t.Fatalf("too few drops (%d) to assess burstiness", rep.LossDropped)
	}
}

func TestSnaplenClipsDeepFields(t *testing.T) {
	run := syntheticRun(100)
	got, rep := Apply(run, Spec{Seed: 1, Snaplen: 400}, nil)
	if rep.Clipped == 0 || rep.StringsLost == 0 {
		t.Fatalf("snaplen did not clip: %+v", rep)
	}
	if len(got.Trace.SNI) != 0 {
		t.Fatalf("clipped ClientHello kept SNI: %v", got.Trace.SNI)
	}
	for _, v := range got.Trace.Packets {
		if v.Size > 400 && v.Proto == packet.TCP && v.TLSAppBytes > 0 && v.TLSAppBytes != v.TCPPayload {
			t.Fatalf("clipped data packet kept record framing: %+v", v)
		}
		if v.Size > 400 && v.ServerIP == "" {
			t.Fatal("snaplen lost a header-derived field (ServerIP)")
		}
	}
}

func TestDuplicationAndTimestampNoise(t *testing.T) {
	run := syntheticRun(1000)
	got, rep := Apply(run, Spec{Seed: 5, DupProb: 0.05, JitterSec: 0.0005, SkewPPM: 100}, nil)
	if rep.Duplicated == 0 {
		t.Fatal("no duplicates injected")
	}
	if rep.Output != rep.Input+rep.Duplicated {
		t.Fatalf("output %d != input %d + dup %d", rep.Output, rep.Input, rep.Duplicated)
	}
	if !sort.SliceIsSorted(got.Trace.Packets, func(a, b int) bool {
		return got.Trace.Packets[a].Time < got.Trace.Packets[b].Time
	}) {
		t.Fatal("impaired trace not time-sorted")
	}
	// Skew stretches the tail timestamp measurably.
	last := got.Trace.Packets[len(got.Trace.Packets)-1].Time
	origLast := run.Trace.Packets[len(run.Trace.Packets)-1].Time
	if math.Abs(last-origLast) > origLast*1e-3+0.001 {
		t.Fatalf("skew+jitter moved tail too far: %.6f vs %.6f", last, origLast)
	}
}

func TestCrossTrafficSharesSNI(t *testing.T) {
	run := syntheticRun(500)
	got, rep := Apply(run, Spec{Seed: 2, CrossFlows: 3}, nil)
	if rep.CrossConns != 3 || rep.CrossPackets == 0 {
		t.Fatalf("cross traffic not injected: %+v", rep)
	}
	cross := 0
	for id, sni := range got.Trace.SNI {
		if id > 1 && sni == "media.example.com" {
			cross++
		}
	}
	if cross != 3 {
		t.Fatalf("want 3 cross conns with media SNI, got %d (SNI map %v)", cross, got.Trace.SNI)
	}
	// Ground truth rides along untouched.
	if len(got.Truth) != len(run.Truth) {
		t.Fatal("cross traffic altered the truth log")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"wat=1", "loss=2", "loss=0.6", "snaplen=10", "dup=nope",
		"ge=1:2:3", "start=5,end=3", "loss", "cross=-1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	spec, err := ParseSpec(" loss=0.01, start=5 ,snaplen=128 ")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Enabled() || spec.StartSec != 5 || spec.Snaplen != 128 {
		t.Fatalf("parsed spec wrong: %+v", spec)
	}
	if got := (Spec{}).String(); got != "none" {
		t.Fatalf("zero spec renders %q", got)
	}
}
