// Package ivl implements a set of disjoint half-open int64 intervals.
//
// It backs TCP reassembly, QUIC stream reassembly, and the estimator's
// retransmission de-duplication (bytes already seen at a given stream offset
// are not counted twice).
package ivl

import "sort"

// Set is a set of disjoint, sorted, half-open intervals [start, end).
// The zero value is an empty set.
type Set struct {
	iv []span
}

type span struct{ start, end int64 }

// Add inserts [start, end) and returns the number of bytes that were not
// previously covered. Adding an empty or inverted interval is a no-op.
func (s *Set) Add(start, end int64) int64 {
	if end <= start {
		return 0
	}
	// Find first span with span.end >= start (possible merge target).
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].end >= start })
	added := end - start
	newStart, newEnd := start, end
	j := i
	for j < len(s.iv) && s.iv[j].start <= end {
		// Overlapping or adjacent: subtract the already-covered overlap.
		o := overlap(start, end, s.iv[j].start, s.iv[j].end)
		added -= o
		if s.iv[j].start < newStart {
			newStart = s.iv[j].start
		}
		if s.iv[j].end > newEnd {
			newEnd = s.iv[j].end
		}
		j++
	}
	if i == j {
		// No merge: insert.
		s.iv = append(s.iv, span{})
		copy(s.iv[i+1:], s.iv[i:])
		s.iv[i] = span{newStart, newEnd}
		return added
	}
	s.iv[i] = span{newStart, newEnd}
	s.iv = append(s.iv[:i+1], s.iv[j:]...)
	return added
}

func overlap(a1, a2, b1, b2 int64) int64 {
	lo, hi := max64(a1, b1), min64(a2, b2)
	if hi > lo {
		return hi - lo
	}
	return 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Covered returns the number of bytes of [start, end) already in the set.
func (s *Set) Covered(start, end int64) int64 {
	if end <= start {
		return 0
	}
	var total int64
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].end > start })
	for ; i < len(s.iv) && s.iv[i].start < end; i++ {
		total += overlap(start, end, s.iv[i].start, s.iv[i].end)
	}
	return total
}

// ContiguousFrom returns the end of the contiguous run starting at off, or
// off itself if off is not covered. For a TCP receiver tracking rcvNxt this
// yields the new rcvNxt after out-of-order segments fill a hole.
func (s *Set) ContiguousFrom(off int64) int64 {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].end > off })
	if i < len(s.iv) && s.iv[i].start <= off {
		return s.iv[i].end
	}
	return off
}

// Total returns the total number of covered bytes.
func (s *Set) Total() int64 {
	var t int64
	for _, v := range s.iv {
		t += v.end - v.start
	}
	return t
}

// Spans returns the number of disjoint spans (diagnostics).
func (s *Set) Spans() int { return len(s.iv) }

// SpansAbove returns up to max disjoint [start,end) spans that lie (at
// least partly) above off, clipped to start >= off. This backs the SACK
// blocks a TCP receiver advertises above its cumulative ACK point.
func (s *Set) SpansAbove(off int64, max int) [][2]int64 {
	var out [][2]int64
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].end > off })
	for ; i < len(s.iv) && len(out) < max; i++ {
		start := s.iv[i].start
		if start < off {
			start = off
		}
		if s.iv[i].end > start {
			out = append(out, [2]int64{start, s.iv[i].end})
		}
	}
	return out
}

// Gaps returns the uncovered ranges within [from, to).
func (s *Set) Gaps(from, to int64) [][2]int64 {
	var out [][2]int64
	cur := from
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].end > from })
	for ; i < len(s.iv) && s.iv[i].start < to; i++ {
		if s.iv[i].start > cur {
			out = append(out, [2]int64{cur, s.iv[i].start})
		}
		if s.iv[i].end > cur {
			cur = s.iv[i].end
		}
	}
	if cur < to {
		out = append(out, [2]int64{cur, to})
	}
	return out
}
