package ivl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddBasic(t *testing.T) {
	var s Set
	if got := s.Add(0, 10); got != 10 {
		t.Fatalf("Add(0,10) = %d, want 10", got)
	}
	if got := s.Add(0, 10); got != 0 {
		t.Fatalf("duplicate Add = %d, want 0", got)
	}
	if got := s.Add(5, 15); got != 5 {
		t.Fatalf("overlapping Add = %d, want 5", got)
	}
	if s.Total() != 15 {
		t.Fatalf("Total = %d, want 15", s.Total())
	}
	if s.Spans() != 1 {
		t.Fatalf("Spans = %d, want 1", s.Spans())
	}
}

func TestAddMerging(t *testing.T) {
	var s Set
	s.Add(0, 5)
	s.Add(10, 15)
	s.Add(20, 25)
	if s.Spans() != 3 {
		t.Fatalf("Spans = %d, want 3", s.Spans())
	}
	// Bridge all three.
	if got := s.Add(5, 20); got != 10 {
		t.Fatalf("bridging Add = %d, want 10", got)
	}
	if s.Spans() != 1 || s.Total() != 25 {
		t.Fatalf("after bridge: spans=%d total=%d", s.Spans(), s.Total())
	}
}

func TestAddAdjacent(t *testing.T) {
	var s Set
	s.Add(0, 5)
	s.Add(5, 10) // adjacent, should merge
	if s.Spans() != 1 || s.Total() != 10 {
		t.Fatalf("adjacent merge: spans=%d total=%d", s.Spans(), s.Total())
	}
}

func TestEmptyAdd(t *testing.T) {
	var s Set
	if got := s.Add(5, 5); got != 0 {
		t.Fatalf("empty Add = %d", got)
	}
	if got := s.Add(10, 5); got != 0 {
		t.Fatalf("inverted Add = %d", got)
	}
}

func TestContiguousFrom(t *testing.T) {
	var s Set
	s.Add(0, 10)
	s.Add(15, 20)
	if got := s.ContiguousFrom(0); got != 10 {
		t.Fatalf("ContiguousFrom(0) = %d, want 10", got)
	}
	if got := s.ContiguousFrom(10); got != 10 {
		t.Fatalf("ContiguousFrom(10) = %d, want 10 (hole)", got)
	}
	s.Add(10, 15)
	if got := s.ContiguousFrom(0); got != 20 {
		t.Fatalf("after fill ContiguousFrom(0) = %d, want 20", got)
	}
}

func TestCovered(t *testing.T) {
	var s Set
	s.Add(10, 20)
	s.Add(30, 40)
	cases := []struct{ a, b, want int64 }{
		{0, 10, 0}, {10, 20, 10}, {15, 35, 10}, {0, 100, 20}, {25, 28, 0},
	}
	for _, c := range cases {
		if got := s.Covered(c.a, c.b); got != c.want {
			t.Errorf("Covered(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Set agrees with a naive boolean-array model.
func TestSetMatchesModel(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		var s Set
		model := make([]bool, 300)
		for _, op := range ops {
			a, b := int64(op[0]), int64(op[0])+int64(op[1]%40)
			gotAdded := s.Add(a, b)
			var wantAdded int64
			for i := a; i < b; i++ {
				if !model[i] {
					model[i] = true
					wantAdded++
				}
			}
			if gotAdded != wantAdded {
				return false
			}
		}
		var wantTotal int64
		for _, v := range model {
			if v {
				wantTotal++
			}
		}
		if s.Total() != wantTotal {
			return false
		}
		// Spot-check Covered and ContiguousFrom against the model.
		for _, w := range [][2]int64{{0, 300}, {10, 50}, {100, 200}} {
			var want int64
			for i := w[0]; i < w[1]; i++ {
				if model[i] {
					want++
				}
			}
			if s.Covered(w[0], w[1]) != want {
				return false
			}
		}
		for _, start := range []int64{0, 17, 130} {
			want := start
			for want < 300 && model[want] {
				want++
			}
			if s.ContiguousFrom(start) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
