package sim

import (
	"testing"

	"csi/internal/obs"
)

// benchEngine drives the self-scheduling tick loop of BenchmarkEngine with
// an explicit tracer, so the Off/On pair isolates the cost the obs hooks
// add to event dispatch. Off (nil tracer) must match the uninstrumented
// BenchmarkEngine within noise: the hooks reduce to one pointer check.
func benchEngine(b *testing.B, tr *obs.Tracer) {
	e := New()
	e.Instrument(tr)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(0.001, tick)
		}
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	e.Run()
}

func BenchmarkEngineObsOff(b *testing.B) { benchEngine(b, nil) }

func BenchmarkEngineObsOn(b *testing.B) { benchEngine(b, obs.New(nil, obs.NewCollector())) }
