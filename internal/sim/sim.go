// Package sim provides a deterministic discrete-event simulation kernel.
//
// All higher layers (links, transports, players) run on a single Engine.
// Time is virtual, measured in float64 seconds. Events scheduled for the
// same instant fire in scheduling order, which keeps runs bit-for-bit
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"csi/internal/obs"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at    float64
	seq   int64
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	ev.fn = nil
}

// Cancelled reports whether the event was cancelled or already fired.
func (ev *Event) Cancelled() bool { return ev.fn == nil }

// Time returns the virtual time the event is scheduled for.
func (ev *Event) Time() float64 { return ev.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the event loop. The zero value is not usable; call New.
type Engine struct {
	now    float64
	seq    int64
	pq     eventHeap
	fired  int64
	maxEvt int64 // safety valve; 0 = unlimited

	// Observability handles; all nil-safe, so the uninstrumented engine
	// pays one pointer check per site.
	tr           *obs.Tracer
	cScheduled   *obs.Counter
	cFired       *obs.Counter
	cCancelSkips *obs.Counter
}

// queueDepthEvery is the dispatch interval between queue-depth samples.
// Pending() is O(queue), so sampling every event would turn dispatch
// quadratic on deep queues.
const queueDepthEvery = 4096

// Instrument attaches a tracer to the engine. Pass nil to detach. Counter
// handles are resolved once here, keeping Step and At allocation-free.
func (e *Engine) Instrument(tr *obs.Tracer) {
	e.tr = tr
	e.cScheduled = tr.Metrics().Counter("sim.events_scheduled")
	e.cFired = tr.Metrics().Counter("sim.events_fired")
	e.cCancelSkips = tr.Metrics().Counter("sim.cancelled_skips")
}

// New returns a ready Engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() int64 { return e.fired }

// SetEventLimit sets a safety cap on the number of events Run will execute
// before panicking. Zero means unlimited. Useful for catching runaway
// simulations in tests.
func (e *Engine) SetEventLimit(n int64) { e.maxEvt = n }

// At schedules fn to run at absolute virtual time t. t must not be in the
// past.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: t=%g now=%g", t, e.now)) //csi-vet:ignore nakedpanic -- scheduling into the past is a simulator bug, not a recoverable state
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: invalid event time %g", t)) //csi-vet:ignore nakedpanic -- NaN/Inf event times corrupt the event queue ordering
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.pq, ev)
	e.cScheduled.Inc()
	return ev
}

// Schedule schedules fn to run after delay seconds. delay must be >= 0.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// Step executes the next pending event, if any, and reports whether one ran.
// Cancelled events are skipped transparently.
func (e *Engine) Step() bool {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.fn == nil {
			e.cCancelSkips.Inc()
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		if e.maxEvt > 0 && e.fired > e.maxEvt {
			panic("sim: event limit exceeded") //csi-vet:ignore nakedpanic -- the event limit exists to abort runaway simulations
		}
		if e.tr != nil {
			e.cFired.Inc()
			if e.fired%queueDepthEvery == 0 {
				e.tr.Sample("sim", "queue_depth", float64(e.Pending()))
			}
		}
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Events scheduled exactly at t do run.
func (e *Engine) RunUntil(t float64) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) peek() *Event {
	for e.pq.Len() > 0 {
		ev := e.pq[0]
		if ev.fn == nil {
			heap.Pop(&e.pq)
			continue
		}
		return ev
	}
	return nil
}

// Pending returns the number of live (non-cancelled) events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if ev != nil && ev.fn != nil {
			n++
		}
	}
	return n
}
