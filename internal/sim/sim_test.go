package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(2, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 1) })
	e.At(3, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %g, want 3", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEngineScheduleRelative(t *testing.T) {
	e := New()
	var at float64
	e.At(5, func() {
		e.Schedule(2.5, func() { at = e.Now() })
	})
	e.Run()
	if at != 7.5 {
		t.Fatalf("nested schedule fired at %g, want 7.5", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var got []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		e.At(tt, func() { got = append(got, tt) })
	}
	e.RunUntil(2)
	if len(got) != 2 {
		t.Fatalf("RunUntil(2) fired %d events, want 2", len(got))
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %g, want 2", e.Now())
	}
	e.RunUntil(10)
	if len(got) != 4 {
		t.Fatalf("after RunUntil(10) fired %d events, want 4", len(got))
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %g, want 10 (clock advances to horizon)", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestEnginePending(t *testing.T) {
	e := New()
	ev := e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending() after cancel = %d, want 1", e.Pending())
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := New()
		var fired []float64
		for _, raw := range times {
			tt := float64(raw) / 16
			e.At(tt, func() { fired = append(fired, tt) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEventLimit(t *testing.T) {
	e := New()
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.Schedule(1, loop) }
	e.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway simulation did not trip the event limit")
		}
	}()
	e.Run()
}

// BenchmarkEngine measures raw event throughput of the kernel; everything
// else in the repository runs on top of it.
func BenchmarkEngine(b *testing.B) {
	e := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(0.001, tick)
		}
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	e.Run()
}
