package quicsim

import (
	"testing"

	"csi/internal/netem"
	"csi/internal/packet"
	"csi/internal/sim"
)

type harness struct {
	eng      *sim.Engine
	conn     *Conn
	up, down *netem.Link
	downCaps []packet.View
	upCaps   []packet.View
}

func newHarness(t *testing.T, downCfg netem.LinkConfig) *harness {
	t.Helper()
	h := &harness{eng: sim.New()}
	h.eng.SetEventLimit(5_000_000)
	h.up = netem.NewLink(h.eng, netem.LinkConfig{Trace: netem.Constant(50_000_000), Delay: 0.02},
		func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	h.down = netem.NewLink(h.eng, downCfg, func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	h.conn = NewConn(h.eng, Config{ConnID: 3}, h.up, h.down)
	h.down.SetTap(func(v packet.View, now float64) { h.downCaps = append(h.downCaps, v) })
	h.up.SetTap(func(v packet.View, now float64) { h.upCaps = append(h.upCaps, v) })
	return h
}

func TestHandshakeCarriesSNI(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.02})
	ready := false
	h.conn.Start("media.example.com", func(now float64) { ready = true })
	h.eng.Run()
	if !ready {
		t.Fatal("handshake never completed")
	}
	found := false
	for _, v := range h.upCaps {
		if v.SNI == "media.example.com" && v.QUICLong {
			found = true
		}
	}
	if !found {
		t.Fatal("no long-header packet carrying the SNI captured")
	}
}

func TestHandshakeSurvivesLoss(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02, LossProb: 0.3, Seed: 77,
	})
	ready := false
	h.conn.Start("x", func(now float64) { ready = true })
	h.eng.RunUntil(30)
	if !ready {
		t.Fatal("handshake did not complete despite retries under 30% loss")
	}
}

func TestStreamTransfer(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.02, QueueCap: 1 << 20})
	var done float64
	h.conn.Start("x", func(now float64) {
		h.conn.Client.Write(0, 400, func(now float64) {
			h.conn.Server.Write(0, 500_000, func(now float64) { done = now })
		})
	})
	h.eng.Run()
	if done == 0 {
		t.Fatal("transfer did not complete")
	}
	if done > 2.0 {
		t.Fatalf("500 KB at 8 Mbit/s took %g s", done)
	}
}

func TestPacketNumbersNeverReused(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02,
		LossProb: 0.03, Seed: 5, QueueCap: 1 << 20,
	})
	var done bool
	h.conn.Start("x", func(now float64) {
		h.conn.Client.Write(0, 400, func(now float64) {
			h.conn.Server.Write(0, 800_000, func(now float64) { done = true })
		})
	})
	h.eng.Run()
	if !done {
		t.Fatal("transfer incomplete under loss")
	}
	if h.conn.Server.LostPackets == 0 {
		t.Fatal("expected lost packets at 3% loss")
	}
	seen := map[int64]bool{}
	for _, v := range h.downCaps {
		if v.QUICLong {
			continue
		}
		if seen[v.QUICPN] {
			t.Fatalf("packet number %d reused — QUIC must never reuse PNs", v.QUICPN)
		}
		seen[v.QUICPN] = true
	}
}

// The monitor-side payload sum must over-estimate the true object size
// (Property 1) but stay within ~5% for QUIC under moderate loss.
func TestQUICEstimationOverhead(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02,
		LossProb: 0.02, Seed: 3, QueueCap: 1 << 20,
	})
	const size = 1_000_000
	var done bool
	h.conn.Start("x", func(now float64) {
		h.conn.Client.Write(0, 400, func(now float64) {
			h.conn.Server.Write(0, size, func(now float64) { done = true })
		})
	})
	h.eng.Run()
	if !done {
		t.Fatal("transfer incomplete")
	}
	var est int64
	for _, v := range h.downCaps {
		if v.QUICLong {
			continue
		}
		est += v.QUICPayload
	}
	if est < size {
		t.Fatalf("estimate %d < true size %d; Property 1 lower bound violated", est, size)
	}
	if float64(est) > 1.05*float64(size) {
		t.Fatalf("estimate %d exceeds (1+5%%) bound for size %d (ratio %.4f)",
			est, size, float64(est)/float64(size))
	}
}

func TestAckPacketsStayBelowRequestThreshold(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.02, QueueCap: 1 << 20})
	var done bool
	h.conn.Start("x", func(now float64) {
		h.conn.Client.Write(0, 400, func(now float64) {
			h.conn.Server.Write(0, 300_000, func(now float64) { done = true })
		})
	})
	h.eng.Run()
	if !done {
		t.Fatal("incomplete")
	}
	var acks, requests int
	for _, v := range h.upCaps {
		if v.QUICLong {
			continue
		}
		if v.QUICPayload <= 80 {
			acks++
		} else {
			requests++
		}
	}
	if acks == 0 {
		t.Fatal("no small uplink ACK packets")
	}
	if requests != 1 {
		t.Fatalf("uplink packets with payload > 80 = %d, want exactly the 1 request (§5.3.1 heuristic)", requests)
	}
}

func TestStreamMultiplexing(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.02, QueueCap: 1 << 20})
	var doneA, doneV float64
	h.conn.Start("x", func(now float64) {
		// Simultaneous audio (stream 4) and video (stream 0) responses.
		h.conn.Server.Write(0, 400_000, func(now float64) { doneV = now })
		h.conn.Server.Write(4, 50_000, func(now float64) { doneA = now })
	})
	h.eng.Run()
	if doneA == 0 || doneV == 0 {
		t.Fatal("one of the streams did not complete")
	}
	// The smaller stream must finish first (round-robin interleaving), and
	// both must share the link concurrently rather than serially.
	if doneA >= doneV {
		t.Fatalf("audio (50 KB) finished at %g, video (400 KB) at %g; expected interleaving", doneA, doneV)
	}
	// Serial transfer of 50 KB at 1 MB/s would finish at ~0.05 s after
	// start; with fair multiplexing it takes about twice that.
	if doneA < 0.08 {
		t.Fatalf("audio finished at %g, too fast for multiplexed transfer", doneA)
	}
}

func TestInOrderPerStreamDeliveryUnderLoss(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(6_000_000), Delay: 0.03,
		LossProb: 0.04, Seed: 21, QueueCap: 1 << 20,
	})
	var order []int
	h.conn.Start("x", func(now float64) {
		h.conn.Server.Write(0, 120_000, func(now float64) { order = append(order, 1) })
		h.conn.Server.Write(0, 80_000, func(now float64) { order = append(order, 2) })
		h.conn.Server.Write(4, 30_000, func(now float64) { order = append(order, 3) })
	})
	h.eng.Run()
	if len(order) != 3 {
		t.Fatalf("delivered %d messages, want 3 (%v)", len(order), order)
	}
	// Stream 0 messages must arrive in order; stream 4 is independent.
	i1, i2 := indexOf(order, 1), indexOf(order, 2)
	if i1 > i2 {
		t.Fatalf("stream 0 messages out of order: %v", order)
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func TestRetransmittedBytesCounted(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02,
		LossProb: 0.05, Seed: 13, QueueCap: 1 << 20,
	})
	var done bool
	h.conn.Start("x", func(now float64) {
		h.conn.Server.Write(0, 500_000, func(now float64) { done = true })
	})
	h.eng.Run()
	if !done {
		t.Fatal("incomplete")
	}
	if h.conn.Server.RetxBytes == 0 {
		t.Fatal("no retransmitted bytes recorded at 5% loss")
	}
}

// Reordering must not wreck QUIC: the 3-packet threshold plus time
// threshold tolerate small reorderings without a retransmission storm.
func TestReorderingTolerance(t *testing.T) {
	h := &harness{eng: sim.New()}
	h.eng.SetEventLimit(5_000_000)
	h.up = netem.NewLink(h.eng, netem.LinkConfig{Trace: netem.Constant(50_000_000), Delay: 0.02},
		func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	h.down = netem.NewLink(h.eng, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02, QueueCap: 1 << 20,
		ReorderProb: 0.05, Seed: 31,
	}, func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	h.conn = NewConn(h.eng, Config{ConnID: 8}, h.up, h.down)
	var done bool
	h.conn.Start("x", func(now float64) {
		h.conn.Server.Write(0, 1_000_000, func(now float64) { done = true })
	})
	h.eng.Run()
	if !done {
		t.Fatal("transfer incomplete under reordering")
	}
	if h.down.Reordered == 0 {
		t.Fatal("no packets actually reordered")
	}
	// Without loss, spurious retransmissions from reordering alone must
	// stay tiny (under 1% of the object).
	if h.conn.Server.RetxBytes > 10_000 {
		t.Fatalf("reordering caused %d retransmitted bytes", h.conn.Server.RetxBytes)
	}
}
