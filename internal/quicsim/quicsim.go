// Package quicsim implements a miniature QUIC transport for the simulator:
// monotonically increasing packet numbers, stream multiplexing, ACK frames,
// packet-threshold loss detection with retransmission in *new* packets, PTO
// timers, NewReno-style congestion control, and flow-control signaling
// carried inside the encrypted payload.
//
// The properties that matter to CSI are faithfully reproduced (§2, §3.2 of
// the paper):
//
//   - retransmitted data is carried in packets with fresh packet numbers, so
//     a monitor cannot discard retransmissions the way it can for TCP;
//   - control signaling (ACK frames, MAX_DATA, etc.) lives inside the
//     encrypted payload and cannot be separated from data bytes;
//   - multiple streams multiplex onto one connection (the SQ design type),
//     interleaving audio and video chunk bytes within single packets.
//
// Together these yield the up-to-~5% size over-estimation and the transport
// MUX challenge the paper addresses.
package quicsim

import (
	"sort"

	"csi/internal/ivl"
	"csi/internal/obs"
	"csi/internal/packet"
	"csi/internal/sim"
)

// Frame and header size constants (approximating IETF QUIC encodings).
const (
	maxPayload     = 1330 // payload budget per short-header packet
	streamFrameHdr = 8    // type + stream id + offset + length varints
	ackFrameSize   = 22   // type + largest + delay + one range
	maxDataFrame   = 8
	miscFrame      = 6 // occasional MAX_STREAMS / HANDSHAKE_DONE etc.

	handshakeClientInitial = 1200 // padded Initial
	handshakeServerFlight  = 3600 // across long-header packets
	handshakeClientFinish  = 96

	maxDataInterval   = 256 * 1024 // receiver sends MAX_DATA every this many bytes
	miscFrameInterval = 64         // server adds a misc control frame every N data packets

	lossReorderThreshold = 3
	delayedAckThreshold  = 2
	delayedAckTimeout    = 0.025
)

// Config parameterizes a connection.
type Config struct {
	ConnID   int
	ServerIP string  // server address surfaced in packet views
	InitCwnd int64   // bytes; default 10 * maxPayload
	PTOMin   float64 // default 0.1 s
	Obs      *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.InitCwnd == 0 {
		c.InitCwnd = 10 * maxPayload
	}
	if c.PTOMin == 0 {
		c.PTOMin = 0.1
	}
	return c
}

type chunk struct {
	sid int64
	off int64
	ln  int64
}

type sendStream struct {
	id      int64
	nextOff int64
	pending []chunk // front = next to transmit
}

type message struct {
	end int64
	fn  func(now float64)
}

type recvStream struct {
	received ivl.Set
	nxt      int64
	inbox    []message
}

type sentPacket struct {
	pn     int64
	frames []chunk
	size   int64 // payload bytes, for congestion accounting
	t      float64
	acked  bool
	lost   bool
}

// Endpoint is one side of a QUIC connection.
type Endpoint struct {
	eng  *sim.Engine
	cfg  Config
	out  packet.Sender
	peer *Endpoint
	dir  packet.Dir

	// Sender state.
	pnNext       int64
	sent         []*sentPacket // ordered by pn; pruned as packets resolve
	inFlight     int64
	cwnd         float64
	ssthresh     float64
	srtt, rttvar float64
	minRTT       float64
	ptoTimer     *sim.Event
	ptoCount     int
	recoveryEnd  int64 // pn: one cwnd reduction per in-flight epoch
	streams      map[int64]*sendStream
	streamOrder  []int64
	rrCursor     int
	dataPackets  int64
	pendingMaxD  bool
	lastSend     float64

	// Receiver state.
	recv           map[int64]*recvStream
	largestRecvd   int64
	recentPNs      []int64 // ring of recently received pns; every ACK re-reports them (cumulative ranges)
	ackEliciting   int
	ackTimer       *sim.Event
	bytesSinceMaxD int64
	handshakeDone  bool
	handshakeRetry *sim.Event

	// Counters.
	SentPackets   int64
	AckPackets    int64
	LostPackets   int64
	PTOs          int64
	RetxBytes     int64
	DeliveredByte int64

	// Observability (all handles nil-safe).
	tr            *obs.Tracer
	cPackets      *obs.Counter
	cAcks         *obs.Counter
	cLost         *obs.Counter
	cPTOs         *obs.Counter
	lastCwndTrace float64
}

// Conn is a QUIC connection between client and server endpoints.
type Conn struct {
	Client *Endpoint
	Server *Endpoint
	eng    *sim.Engine
	cfg    Config
}

// NewConn creates a connection; up carries client->server packets, down
// server->client.
func NewConn(eng *sim.Engine, cfg Config, up, down packet.Sender) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{eng: eng, cfg: cfg}
	c.Client = newEndpoint(eng, cfg, up, packet.Up)
	c.Server = newEndpoint(eng, cfg, down, packet.Down)
	c.Client.peer = c.Server
	c.Server.peer = c.Client
	return c
}

func newEndpoint(eng *sim.Engine, cfg Config, out packet.Sender, dir packet.Dir) *Endpoint {
	ep := &Endpoint{
		eng:      eng,
		cfg:      cfg,
		out:      out,
		dir:      dir,
		cwnd:     float64(cfg.InitCwnd),
		ssthresh: 1 << 30,
		streams:  make(map[int64]*sendStream),
		recv:     make(map[int64]*recvStream),
	}
	// As in tcpsim, only the download direction traces: it carries the media
	// bytes the inference pipeline reasons about.
	if dir == packet.Down {
		ep.tr = cfg.Obs
		reg := cfg.Obs.Metrics()
		ep.cPackets = reg.Counter("quic.packets_sent")
		ep.cAcks = reg.Counter("quic.ack_packets")
		ep.cLost = reg.Counter("quic.packets_lost")
		ep.cPTOs = reg.Counter("quic.ptos")
	}
	return ep
}

// traceCwnd samples the congestion-window trajectory once the window has
// moved at least one packet's worth since the last sample.
func (ep *Endpoint) traceCwnd() {
	if ep.tr == nil {
		return
	}
	d := ep.cwnd - ep.lastCwndTrace
	if d < 0 {
		d = -d
	}
	if d < maxPayload {
		return
	}
	ep.lastCwndTrace = ep.cwnd
	ep.tr.Sample("quic", "cwnd_bytes", ep.cwnd)
}

// DeliverToClient / DeliverToServer return link delivery callbacks.
func (c *Conn) DeliverToClient() func(p *packet.Packet) {
	return func(p *packet.Packet) { p.Arrive(c.eng.Now()) }
}
func (c *Conn) DeliverToServer() func(p *packet.Packet) {
	return func(p *packet.Packet) { p.Arrive(c.eng.Now()) }
}

// Start runs the handshake: padded client Initial (carrying sni), server
// flight, client finish. Each step retries on loss. onReady fires at the
// client once the handshake completes.
func (c *Conn) Start(sni string, onReady func(now float64)) {
	cl, sv := c.Client, c.Server
	var sendInitial func()
	serverDone := false
	clientDone := false
	var initialSentAt, serverFlightAt float64
	sendInitial = func() {
		if clientDone {
			return
		}
		initialSentAt = c.eng.Now()
		p := cl.longPacket(handshakeClientInitial)
		p.View.SNI = sni
		p.Arrive = func(now float64) {
			if serverDone {
				return
			}
			serverDone = true
			var sendFlight func()
			sendFlight = func() {
				if clientDone {
					return
				}
				// Three long-header packets; only the last carries the
				// completion continuation.
				per := int64(handshakeServerFlight / 3)
				for i := 0; i < 2; i++ {
					fp := sv.longPacket(per)
					fp.Arrive = func(now float64) {}
					sv.out.Send(fp)
				}
				serverFlightAt = c.eng.Now()
				last := sv.longPacket(per)
				last.Arrive = func(now float64) {
					if clientDone {
						return
					}
					clientDone = true
					// Seed both RTT estimators from the handshake, as
					// real QUIC stacks do: an unseeded PTO fires long
					// before the first application-level ACK and
					// spuriously retransmits the first request.
					cl.sampleRTT(c.eng.Now() - initialSentAt)
					fin := cl.longPacket(handshakeClientFinish)
					fin.Arrive = func(now float64) {
						sv.handshakeDone = true
						sv.sampleRTT(c.eng.Now() - serverFlightAt)
					}
					cl.out.Send(fin)
					cl.handshakeDone = true
					onReady(c.eng.Now())
				}
				sv.out.Send(last)
				sv.handshakeRetry = sv.eng.Schedule(0.6, sendFlight)
			}
			sendFlight()
		}
		cl.out.Send(p)
		cl.handshakeRetry = cl.eng.Schedule(0.6, sendInitial)
	}
	sendInitial()
}

func (ep *Endpoint) longPacket(payload int64) *packet.Packet {
	pn := ep.pnNext
	ep.pnNext++
	ep.SentPackets++
	return &packet.Packet{
		Size: packet.IPHeader + packet.UDPHeader + packet.QUICLongHeader + payload,
		View: packet.View{
			Dir:         ep.dir,
			Proto:       packet.UDP,
			ConnID:      ep.cfg.ConnID,
			ServerIP:    ep.cfg.ServerIP,
			QUICPN:      pn,
			QUICPayload: payload,
			QUICLong:    true,
		},
	}
}

// Write appends n bytes to stream sid. onDelivered fires at the peer once
// the peer has received the stream contiguously through the message end.
func (ep *Endpoint) Write(sid int64, n int64, onDelivered func(now float64)) {
	if n <= 0 {
		panic("quicsim: Write of non-positive length") //csi-vet:ignore nakedpanic -- API-misuse assertion in the simulator harness
	}
	st := ep.streams[sid]
	if st == nil {
		st = &sendStream{id: sid}
		ep.streams[sid] = st
		ep.streamOrder = append(ep.streamOrder, sid)
	}
	start := st.nextOff
	st.nextOff += n
	st.pending = append(st.pending, chunk{sid: sid, off: start, ln: n})
	if ep.tr != nil {
		ep.tr.Event("quic", "stream_write",
			obs.Int("conn", int64(ep.cfg.ConnID)),
			obs.Int("sid", sid),
			obs.Int("off", start),
			obs.Int("n", n))
	}
	if onDelivered != nil {
		prs := ep.peer.recvStream(sid)
		prs.inbox = append(prs.inbox, message{end: st.nextOff, fn: onDelivered})
		sort.Slice(prs.inbox, func(a, b int) bool { return prs.inbox[a].end < prs.inbox[b].end })
	}
	ep.trySend()
}

func (ep *Endpoint) recvStream(sid int64) *recvStream {
	rs := ep.recv[sid]
	if rs == nil {
		rs = &recvStream{}
		ep.recv[sid] = rs
	}
	return rs
}

func (ep *Endpoint) hasPending() bool {
	for _, sid := range ep.streamOrder {
		if len(ep.streams[sid].pending) > 0 {
			return true
		}
	}
	return false
}

// trySend builds and transmits short-header data packets while the
// congestion window allows.
func (ep *Endpoint) trySend() {
	// Congestion window validation after idle (as in TCP, RFC 2861): do
	// not burst a stale window into the path after an OFF period.
	if ep.inFlight == 0 && ep.lastSend > 0 && ep.eng.Now()-ep.lastSend > ep.ptoDuration() {
		if ep.cwnd > float64(ep.cfg.InitCwnd) {
			ep.ssthresh = ep.cwnd
			ep.cwnd = float64(ep.cfg.InitCwnd)
		}
	}
	for ep.hasPending() {
		if float64(ep.inFlight+maxPayload) > ep.cwnd && ep.inFlight > 0 {
			return
		}
		ep.sendDataPacket()
	}
}

// sendDataPacket assembles one packet by round-robining across streams with
// pending chunks — this is the transport multiplexing that makes SQ traffic
// hard to analyze.
func (ep *Endpoint) sendDataPacket() {
	budget := int64(maxPayload)
	var payload int64
	var frames []chunk

	ep.lastSend = ep.eng.Now()
	if ep.pendingMaxD {
		payload += maxDataFrame
		budget -= maxDataFrame
		ep.pendingMaxD = false
	}
	ep.dataPackets++
	if ep.dataPackets%miscFrameInterval == 0 {
		payload += miscFrame
		budget -= miscFrame
	}

	n := len(ep.streamOrder)
	for tries := 0; tries < n && budget > streamFrameHdr; tries++ {
		sid := ep.streamOrder[(ep.rrCursor+tries)%n]
		st := ep.streams[sid]
		if len(st.pending) == 0 {
			continue
		}
		c := st.pending[0]
		take := c.ln
		if take > budget-streamFrameHdr {
			take = budget - streamFrameHdr
		}
		frames = append(frames, chunk{sid: sid, off: c.off, ln: take})
		payload += streamFrameHdr + take
		budget -= streamFrameHdr + take
		if take == c.ln {
			st.pending = st.pending[1:]
		} else {
			st.pending[0].off += take
			st.pending[0].ln -= take
		}
	}
	ep.rrCursor++

	pn := ep.pnNext
	ep.pnNext++
	ep.SentPackets++
	ep.cPackets.Inc()
	sp := &sentPacket{pn: pn, frames: frames, size: payload, t: ep.eng.Now()}
	ep.sent = append(ep.sent, sp)
	ep.inFlight += payload

	peer := ep.peer
	p := &packet.Packet{
		Size: packet.IPHeader + packet.UDPHeader + packet.QUICShortHeader + payload,
		View: packet.View{
			Dir:         ep.dir,
			Proto:       packet.UDP,
			ConnID:      ep.cfg.ConnID,
			ServerIP:    ep.cfg.ServerIP,
			QUICPN:      pn,
			QUICPayload: payload,
		},
	}
	p.Arrive = func(now float64) { peer.onDataPacket(pn, frames) }
	ep.out.Send(p)
	ep.armPTO()
}

// onDataPacket runs at the receiving endpoint.
func (ep *Endpoint) onDataPacket(pn int64, frames []chunk) {
	if pn > ep.largestRecvd {
		ep.largestRecvd = pn
	}
	ep.recentPNs = append(ep.recentPNs, pn)
	if len(ep.recentPNs) > 64 {
		ep.recentPNs = ep.recentPNs[len(ep.recentPNs)-64:]
	}
	ep.ackEliciting++
	for _, f := range frames {
		rs := ep.recvStream(f.sid)
		added := rs.received.Add(f.off, f.off+f.ln)
		ep.DeliveredByte += added
		ep.bytesSinceMaxD += added
		newNxt := rs.received.ContiguousFrom(rs.nxt)
		if newNxt > rs.nxt {
			rs.nxt = newNxt
			ep.fireInbox(rs)
		}
	}
	if ep.bytesSinceMaxD >= maxDataInterval {
		ep.bytesSinceMaxD = 0
		ep.pendingMaxD = true
	}
	if ep.ackEliciting >= delayedAckThreshold {
		ep.sendAck()
	} else if ep.ackTimer == nil {
		ep.ackTimer = ep.eng.Schedule(delayedAckTimeout, func() {
			ep.ackTimer = nil
			if ep.ackEliciting > 0 {
				ep.sendAck()
			}
		})
	}
}

func (ep *Endpoint) fireInbox(rs *recvStream) {
	now := ep.eng.Now()
	i := 0
	for ; i < len(rs.inbox) && rs.inbox[i].end <= rs.nxt; i++ {
		rs.inbox[i].fn(now)
	}
	if i > 0 {
		rs.inbox = append(rs.inbox[:0], rs.inbox[i:]...)
	}
}

// sendAck emits a dedicated ACK packet (small: below the 80-byte request
// detection threshold CSI relies on, §5.3.1). If data is pending, the ack
// piggybacks on the next data packet instead.
func (ep *Endpoint) sendAck() {
	// Real QUIC ACK frames carry ranges covering everything received, so a
	// single lost ACK packet is harmless: re-report the recent window.
	acked := make([]int64, len(ep.recentPNs))
	copy(acked, ep.recentPNs)
	ep.ackEliciting = 0
	if ep.ackTimer != nil {
		ep.ackTimer.Cancel()
		ep.ackTimer = nil
	}
	// Always emit a dedicated ACK packet. (Real QUIC piggybacks ACK frames
	// on outgoing data when possible; a dedicated packet keeps ack latency
	// independent of the congestion window, which matters for accurate PTO
	// behaviour — the cost is a few extra ~60-byte packets.)
	payload := int64(ackFrameSize)
	if ep.pendingMaxD {
		payload += maxDataFrame
		ep.pendingMaxD = false
	}
	pn := ep.pnNext
	ep.pnNext++
	ep.AckPackets++
	ep.cAcks.Inc()
	largest := ep.largestRecvd
	peer := ep.peer
	p := &packet.Packet{
		Size: packet.IPHeader + packet.UDPHeader + packet.QUICShortHeader + payload,
		View: packet.View{
			Dir:         ep.dir,
			Proto:       packet.UDP,
			ConnID:      ep.cfg.ConnID,
			ServerIP:    ep.cfg.ServerIP,
			QUICPN:      pn,
			QUICPayload: payload,
		},
	}
	p.Arrive = func(now float64) { peer.onAck(acked, largest) }
	ep.out.Send(p)
}

// onAck processes acknowledgement information at the data sender.
func (ep *Endpoint) onAck(pns []int64, largest int64) {
	now := ep.eng.Now()
	ackedSet := make(map[int64]bool, len(pns))
	for _, pn := range pns {
		ackedSet[pn] = true
	}
	var newlyAcked int64
	largestAckedTime := -1.0
	for _, sp := range ep.sent {
		if ackedSet[sp.pn] && sp.pn <= largest && sp.t > largestAckedTime {
			largestAckedTime = sp.t
		}
		if sp.acked || sp.lost {
			continue
		}
		if ackedSet[sp.pn] {
			sp.acked = true
			ep.inFlight -= sp.size
			newlyAcked += sp.size
			if sp.pn == largest {
				ep.sampleRTT(now - sp.t)
			}
		}
	}
	// Congestion window growth.
	if newlyAcked > 0 {
		ep.ptoCount = 0
		if ep.cwnd < ep.ssthresh {
			ep.cwnd += float64(newlyAcked)
			// HyStart-style exit: growing queueing delay means the pipe
			// is full; leave slow start before the overshoot bursts into
			// the bottleneck queue.
			if ep.minRTT > 0 && ep.srtt > 1.5*ep.minRTT {
				ep.ssthresh = ep.cwnd
			}
		} else {
			ep.cwnd += maxPayload * float64(newlyAcked) / ep.cwnd
		}
	}
	// Loss detection per RFC 9002: a packet is lost if unacked and either
	// (a) more than lossReorderThreshold below the largest acked pn, or
	// (b) sent more than a time threshold (9/8 of srtt) before the newest
	// acked packet. The data is retransmitted in a NEW packet number — the
	// monitor sees the bytes twice and cannot tell.
	timeThresh := 1.125 * ep.srtt
	if timeThresh < 0.001 {
		timeThresh = 0.001
	}
	congested := false
	for _, sp := range ep.sent {
		if sp.acked || sp.lost {
			continue
		}
		pnLost := sp.pn <= largest-lossReorderThreshold
		timeLost := sp.pn < largest && largestAckedTime >= 0 && largestAckedTime-sp.t > timeThresh
		if pnLost || timeLost {
			sp.lost = true
			ep.LostPackets++
			ep.cLost.Inc()
			ep.inFlight -= sp.size
			ep.requeue(sp.frames)
			if ep.tr != nil {
				ep.tr.Event("quic", "packet_lost",
					obs.Int("conn", int64(ep.cfg.ConnID)),
					obs.Int("pn", sp.pn),
					obs.Int("bytes", sp.size))
			}
			if sp.pn > ep.recoveryEnd {
				congested = true
			}
		}
	}
	if congested {
		ep.ssthresh = ep.cwnd / 2
		if ep.ssthresh < 2*maxPayload {
			ep.ssthresh = 2 * maxPayload
		}
		ep.cwnd = ep.ssthresh
		ep.recoveryEnd = ep.pnNext
	}
	if newlyAcked > 0 || congested {
		ep.traceCwnd()
	}
	ep.pruneSent()
	if ep.inFlight > 0 {
		ep.armPTO()
	} else if ep.ptoTimer != nil {
		ep.ptoTimer.Cancel()
		ep.ptoTimer = nil
	}
	ep.trySend()
}

func (ep *Endpoint) requeue(frames []chunk) {
	for i := len(frames) - 1; i >= 0; i-- {
		f := frames[i]
		ep.RetxBytes += f.ln
		st := ep.streams[f.sid]
		st.pending = append([]chunk{{sid: f.sid, off: f.off, ln: f.ln}}, st.pending...)
	}
}

func (ep *Endpoint) pruneSent() {
	i := 0
	for i < len(ep.sent) && (ep.sent[i].acked || ep.sent[i].lost) {
		i++
	}
	if i > 0 {
		ep.sent = append(ep.sent[:0], ep.sent[i:]...)
	}
}

func (ep *Endpoint) sampleRTT(rtt float64) {
	if rtt <= 0 {
		return
	}
	if ep.minRTT == 0 || rtt < ep.minRTT {
		ep.minRTT = rtt
	}
	if ep.srtt == 0 {
		ep.srtt = rtt
		ep.rttvar = rtt / 2
		return
	}
	d := ep.srtt - rtt
	if d < 0 {
		d = -d
	}
	ep.rttvar = 0.75*ep.rttvar + 0.25*d
	ep.srtt = 0.875*ep.srtt + 0.125*rtt
}

func (ep *Endpoint) ptoDuration() float64 {
	base := ep.cfg.PTOMin
	if ep.srtt > 0 {
		// srtt + 4*rttvar + max_ack_delay, per QUIC loss recovery.
		base = ep.srtt + 4*ep.rttvar + delayedAckTimeout + 0.01
		if base < ep.cfg.PTOMin {
			base = ep.cfg.PTOMin
		}
	}
	for i := 0; i < ep.ptoCount && i < 6; i++ {
		base *= 2
	}
	return base
}

func (ep *Endpoint) armPTO() {
	if ep.ptoTimer != nil {
		ep.ptoTimer.Cancel()
	}
	ep.ptoTimer = ep.eng.Schedule(ep.ptoDuration(), ep.onPTO)
}

func (ep *Endpoint) onPTO() {
	ep.ptoTimer = nil
	if ep.inFlight <= 0 {
		return
	}
	ep.PTOs++
	ep.cPTOs.Inc()
	ep.ptoCount++
	if ep.tr != nil {
		ep.tr.Event("quic", "pto",
			obs.Int("conn", int64(ep.cfg.ConnID)),
			obs.Int("count", int64(ep.ptoCount)),
			obs.Int("in_flight", ep.inFlight))
	}
	// Tail loss probe: elicit an acknowledgement with a tiny PING packet
	// instead of duplicating data. The probe's ACK raises the largest
	// acked packet number and its send-time reference, letting
	// time-threshold loss detection (RFC 9002 §6.1) find the real hole —
	// so a PTO costs ~10 bytes, and lost data is retransmitted exactly
	// once.
	ep.sendPing()
	// Persistent PTOs mean the path really collapsed; back the window off.
	if ep.ptoCount >= 2 {
		ep.ssthresh = ep.cwnd / 2
		if ep.ssthresh < 2*maxPayload {
			ep.ssthresh = 2 * maxPayload
		}
		ep.cwnd = 2 * maxPayload
	}
	ep.armPTO()
}

// sendPing emits a minimal ack-eliciting probe, bypassing the congestion
// window (QUIC PTO probes may).
func (ep *Endpoint) sendPing() {
	const pingPayload = 10 // PING frame + minimal padding
	pn := ep.pnNext
	ep.pnNext++
	ep.SentPackets++
	ep.lastSend = ep.eng.Now()
	sp := &sentPacket{pn: pn, size: pingPayload, t: ep.eng.Now()}
	ep.sent = append(ep.sent, sp)
	ep.inFlight += sp.size
	peer := ep.peer
	p := &packet.Packet{
		Size: packet.IPHeader + packet.UDPHeader + packet.QUICShortHeader + pingPayload,
		View: packet.View{
			Dir:         ep.dir,
			Proto:       packet.UDP,
			ConnID:      ep.cfg.ConnID,
			QUICPN:      pn,
			QUICPayload: pingPayload,
		},
	}
	p.Arrive = func(now float64) { peer.onDataPacket(pn, nil) }
	ep.out.Send(p)
}

// SRTT exposes the smoothed RTT (diagnostics).
func (ep *Endpoint) SRTT() float64 { return ep.srtt }
