package netem

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParseTraceCSV(t *testing.T) {
	in := `# comment
0,8000000
10, 4000000

20,1000000
`
	tr, err := ParseTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RateAt(5) * 8; got != 8_000_000 {
		t.Fatalf("RateAt(5) = %g", got)
	}
	if got := tr.RateAt(15) * 8; got != 4_000_000 {
		t.Fatalf("RateAt(15) = %g", got)
	}
	if got := tr.RateAt(100) * 8; got != 1_000_000 {
		t.Fatalf("RateAt(100) = %g (last rate must extend)", got)
	}
}

func TestParseTraceCSVRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"abc,123\n", "1;2\n", "5,\n", ""} {
		if _, err := ParseTraceCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Must start at or before t=0.
	if _, err := ParseTraceCSV(strings.NewReader("5,100\n")); err == nil {
		t.Error("trace starting after 0 accepted")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := GenerateCellular(CellularConfig{Seed: 3, MeanBps: 5_000_000, Variability: 0.5, Horizon: 60})
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, orig, 60, 0.5); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The 0.5 s sampling can misplace rate steps by up to one sample, so
	// compare the delivered-bytes integral rather than pointwise rates.
	a, b := orig.MeanRate(59), got.MeanRate(59)
	if math.Abs(a-b)/a > 0.05 {
		t.Errorf("mean rate after round trip: %g vs %g", a, b)
	}
	// Pointwise agreement at exact sample instants (just after the sample).
	for ts := 0.01; ts < 59; ts += 6.5 {
		x, y := orig.RateAt(ts), got.RateAt(ts)
		if math.Abs(x-y)/x > 0.75 {
			t.Errorf("rate at %g wildly off: %g vs %g", ts, x, y)
		}
	}
}

func TestParseMahimahi(t *testing.T) {
	// 8 deliveries in second 0, 4 in second 1, none in 2, 2 in second 3.
	var b strings.Builder
	for i := 0; i < 8; i++ {
		fmt := 100 + i*100
		b.WriteString(itoa(fmt) + "\n")
	}
	for i := 0; i < 4; i++ {
		b.WriteString(itoa(1100+i*200) + "\n")
	}
	b.WriteString("3100\n3600\n")
	tr, err := ParseMahimahi(strings.NewReader(b.String()), 1500)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.RateAt(0.5); got != 8*1500 {
		t.Fatalf("second 0 rate = %g, want %d", got, 8*1500)
	}
	if got := tr.RateAt(1.5); got != 4*1500 {
		t.Fatalf("second 1 rate = %g", got)
	}
	if got := tr.RateAt(2.5); got != 1000 {
		t.Fatalf("idle second rate = %g, want floor 1000", got)
	}
	if got := tr.RateAt(3.5); got != 2*1500 {
		t.Fatalf("second 3 rate = %g", got)
	}
}

func TestParseMahimahiRejectsGarbage(t *testing.T) {
	if _, err := ParseMahimahi(strings.NewReader("abc\n"), 1500); err == nil {
		t.Error("non-numeric accepted")
	}
	if _, err := ParseMahimahi(strings.NewReader(""), 1500); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ParseMahimahi(strings.NewReader("-5\n"), 1500); err == nil {
		t.Error("negative timestamp accepted")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
