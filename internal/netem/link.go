package netem

import (
	"math/rand"

	"csi/internal/packet"
	"csi/internal/sim"
	"csi/internal/stats"
)

// Tap observes packets entering a link; this is where the gateway's packet
// capture attaches. The tap sees every packet offered to the link — before
// the drop-tail queue and before random (radio) loss — matching an
// AF_PACKET capture on the gateway, which taps egress ahead of the qdisc.
// Traffic lost downstream is therefore still captured, which is exactly why
// QUIC retransmissions inflate CSI's size estimates (§3.2) while TCP
// retransmissions can be discarded by SEQ.
type Tap func(v packet.View, now float64)

// LinkConfig configures one direction of the emulated path.
type LinkConfig struct {
	Trace    *BandwidthTrace // serialization rate; nil = infinite
	Delay    float64         // one-way propagation delay, seconds
	QueueCap int64           // drop-tail queue capacity in bytes; 0 = 256 KiB
	LossProb float64         // random loss after the queue (radio loss)
	// ReorderProb delays a packet by ReorderDelay with this probability,
	// letting later packets overtake it (radio-link reordering). Exercises
	// the transports' reordering tolerance (TCP SACK, QUIC's 3-packet
	// threshold).
	ReorderProb  float64
	ReorderDelay float64 // default 4 ms
	Seed         int64   // for the loss/reordering processes
}

// Link transmits packets in one direction: FIFO serialization at the trace
// rate behind a drop-tail queue, then propagation delay, then optional
// random loss. Deliver is invoked on the receiving endpoint.
type Link struct {
	eng     *sim.Engine
	cfg     LinkConfig
	rng     *rand.Rand
	deliver func(p *packet.Packet)
	tap     Tap

	busyUntil float64
	queued    int64

	// Counters for tests and diagnostics.
	Sent        int64
	QueueDrops  int64
	RandomDrops int64
	Reordered   int64
	Delivered   int64
	Bytes       int64
}

// NewLink creates a link that hands delivered packets to deliver.
func NewLink(eng *sim.Engine, cfg LinkConfig, deliver func(p *packet.Packet)) *Link {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 256 * 1024
	}
	if cfg.ReorderDelay == 0 {
		cfg.ReorderDelay = 0.004
	}
	return &Link{
		eng:     eng,
		cfg:     cfg,
		rng:     stats.NewRand(cfg.Seed),
		deliver: deliver,
	}
}

// SetTap installs the capture tap.
func (l *Link) SetTap(t Tap) { l.tap = t }

// Send implements packet.Sender.
func (l *Link) Send(p *packet.Packet) {
	now := l.eng.Now()
	l.Sent++
	if l.tap != nil {
		v := p.View
		v.Time = now
		v.Size = p.Size
		l.tap(v, now)
	}
	if l.queued+p.Size > l.cfg.QueueCap {
		l.QueueDrops++
		return
	}
	l.queued += p.Size
	start := l.busyUntil
	if now > start {
		start = now
	}
	var finish float64
	if l.cfg.Trace != nil {
		finish = l.cfg.Trace.FinishTime(start, float64(p.Size))
	} else {
		finish = start
	}
	l.busyUntil = finish
	lost := l.cfg.LossProb > 0 && l.rng.Float64() < l.cfg.LossProb
	l.eng.At(finish, func() {
		l.queued -= p.Size
		if lost {
			l.RandomDrops++
			return
		}
		delay := l.cfg.Delay
		if l.cfg.ReorderProb > 0 && l.rng.Float64() < l.cfg.ReorderProb {
			delay += l.cfg.ReorderDelay
			l.Reordered++
		}
		l.eng.Schedule(delay, func() {
			l.Delivered++
			l.Bytes += p.Size
			l.deliver(p)
		})
	})
}

// QueuedBytes returns the bytes currently occupying the queue (including the
// packet being serialized).
func (l *Link) QueuedBytes() int64 { return l.queued }
