package netem

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Bandwidth trace file I/O. The paper replays bandwidth traces recorded in
// commercial mobile networks (§6.2); these helpers load and store such
// traces in two common formats:
//
//   - CSV: "seconds,bits_per_second" per line ('#' comments allowed) —
//     piecewise-constant steps;
//   - mahimahi: one packet-delivery-opportunity timestamp in milliseconds
//     per line (the format of the mahimahi link shell and of several public
//     cellular trace datasets), converted to per-second rates.

// ParseTraceCSV reads a piecewise-constant trace from "sec,bps" lines.
func ParseTraceCSV(r io.Reader) (*BandwidthTrace, error) {
	sc := bufio.NewScanner(r)
	var pts []TracePoint
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("netem: trace line %d: want \"sec,bps\", got %q", lineNo, line)
		}
		t, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		bps, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("netem: trace line %d: bad numbers in %q", lineNo, line)
		}
		pts = append(pts, TracePoint{T: t, Rate: bps / 8})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTrace(pts)
}

// WriteTraceCSV samples the trace every step seconds up to horizon and
// writes "sec,bps" lines.
func WriteTraceCSV(w io.Writer, tr *BandwidthTrace, horizon, step float64) error {
	if step <= 0 || horizon <= 0 {
		return fmt.Errorf("netem: horizon and step must be positive")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# seconds,bits_per_second")
	for t := 0.0; t < horizon; t += step {
		fmt.Fprintf(bw, "%.3f,%.0f\n", t, tr.RateAt(t)*8)
	}
	return bw.Flush()
}

// ParseMahimahi reads a mahimahi packet-delivery trace (millisecond
// timestamps, one delivery opportunity of mtu bytes per line) and converts
// it to a per-second piecewise-constant rate trace. The trace is treated as
// non-repeating; the final second's rate extends forever.
func ParseMahimahi(r io.Reader, mtu int64) (*BandwidthTrace, error) {
	if mtu <= 0 {
		mtu = 1500
	}
	sc := bufio.NewScanner(r)
	perSecond := map[int]int64{}
	maxSec := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ms, err := strconv.ParseInt(line, 10, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("netem: mahimahi line %d: bad timestamp %q", lineNo, line)
		}
		sec := int(ms / 1000)
		perSecond[sec] += mtu
		if sec > maxSec {
			maxSec = sec
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(perSecond) == 0 {
		return nil, fmt.Errorf("netem: empty mahimahi trace")
	}
	secs := make([]int, 0, len(perSecond))
	for s := range perSecond {
		secs = append(secs, s)
	}
	sort.Ints(secs)
	var pts []TracePoint
	last := -1
	for _, s := range secs {
		// Seconds with no delivery opportunities get a tiny floor rate so
		// the link drains eventually rather than dividing by zero.
		for gap := last + 1; gap < s; gap++ {
			pts = append(pts, TracePoint{T: float64(gap), Rate: 1000})
		}
		pts = append(pts, TracePoint{T: float64(s), Rate: float64(perSecond[s])})
		last = s
	}
	if pts[0].T > 0 {
		pts = append([]TracePoint{{T: 0, Rate: pts[0].Rate}}, pts...)
	}
	return NewTrace(pts)
}
