package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"csi/internal/packet"
	"csi/internal/sim"
)

func TestConstantTrace(t *testing.T) {
	tr := Constant(8_000_000) // 1 MB/s
	if got := tr.RateAt(0); got != 1_000_000 {
		t.Fatalf("RateAt(0) = %g, want 1e6", got)
	}
	if got := tr.FinishTime(2, 500_000); got != 2.5 {
		t.Fatalf("FinishTime = %g, want 2.5", got)
	}
}

func TestStepTraceIntegration(t *testing.T) {
	// 1 s at 1 MB/s then 1 s at 0.5 MB/s, repeating.
	tr, err := Steps(100, [2]float64{1, 8_000_000}, [2]float64{1, 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Transmit 1.25 MB starting at t=0: 1.0 MB in first second, 0.25 MB
	// takes 0.5 s at 0.5 MB/s.
	if got := tr.FinishTime(0, 1_250_000); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("FinishTime = %g, want 1.5", got)
	}
	if got := tr.RateAt(1.5); got != 500_000 {
		t.Fatalf("RateAt(1.5) = %g, want 5e5", got)
	}
	mean := tr.MeanRate(2)
	if math.Abs(mean-6_000_000) > 1 {
		t.Fatalf("MeanRate = %g, want 6e6", mean)
	}
}

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewTrace([]TracePoint{{T: 1, Rate: 1}}); err == nil {
		t.Fatal("trace not covering t=0 accepted")
	}
	if _, err := NewTrace([]TracePoint{{T: 0, Rate: 0}}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTrace([]TracePoint{{T: 0, Rate: 1}, {T: 0, Rate: 2}}); err == nil {
		t.Fatal("non-increasing times accepted")
	}
}

// Property: FinishTime is additive — transmitting a+b bytes equals
// transmitting a then b back-to-back.
func TestFinishTimeAdditiveProperty(t *testing.T) {
	tr := GenerateCellular(CellularConfig{Seed: 5, MeanBps: 4_000_000, Variability: 0.5})
	f := func(a, b uint32, s uint16) bool {
		start := float64(s) / 100
		x, y := float64(a%1_000_000), float64(b%1_000_000)
		t1 := tr.FinishTime(start, x+y)
		t2 := tr.FinishTime(tr.FinishTime(start, x), y)
		return math.Abs(t1-t2) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCellularTraceSet(t *testing.T) {
	set := CellularTraceSet(1, 30)
	if len(set) != 30 {
		t.Fatalf("len = %d, want 30", len(set))
	}
	lo := set[0].MeanRate(600)
	hi := set[29].MeanRate(600)
	if lo < 300_000 || lo > 1_500_000 {
		t.Errorf("lowest trace mean %g out of expected band", lo)
	}
	if hi < 20_000_000 || hi > 80_000_000 {
		t.Errorf("highest trace mean %g out of expected band", hi)
	}
}

func mkPkt(size int64) *packet.Packet {
	return &packet.Packet{Size: size, View: packet.View{Dir: packet.Down}}
}

func TestLinkSerializationAndDelay(t *testing.T) {
	eng := sim.New()
	var deliveredAt []float64
	l := NewLink(eng, LinkConfig{Trace: Constant(8_000_000), Delay: 0.01}, func(p *packet.Packet) {
		deliveredAt = append(deliveredAt, eng.Now())
	})
	// Two 100 KB packets sent at t=0: serialization 0.1 s each, FIFO.
	l.Send(mkPkt(100_000))
	l.Send(mkPkt(100_000))
	eng.Run()
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d, want 2", len(deliveredAt))
	}
	if math.Abs(deliveredAt[0]-0.11) > 1e-9 || math.Abs(deliveredAt[1]-0.21) > 1e-9 {
		t.Fatalf("delivery times %v, want [0.11 0.21]", deliveredAt)
	}
}

func TestLinkQueueDrop(t *testing.T) {
	eng := sim.New()
	delivered := 0
	l := NewLink(eng, LinkConfig{Trace: Constant(8_000_000), QueueCap: 150_000}, func(p *packet.Packet) {
		delivered++
	})
	l.Send(mkPkt(100_000))
	l.Send(mkPkt(100_000)) // exceeds 150 KB queue -> dropped
	eng.Run()
	if delivered != 1 || l.QueueDrops != 1 {
		t.Fatalf("delivered=%d drops=%d, want 1/1", delivered, l.QueueDrops)
	}
}

func TestLinkRandomLossAfterTap(t *testing.T) {
	eng := sim.New()
	tapped, delivered := 0, 0
	l := NewLink(eng, LinkConfig{Trace: Constant(80_000_000), LossProb: 0.5, Seed: 9, QueueCap: 1 << 20}, func(p *packet.Packet) {
		delivered++
	})
	l.SetTap(func(v packet.View, now float64) { tapped++ })
	for i := 0; i < 200; i++ {
		l.Send(mkPkt(1400))
	}
	eng.Run()
	if tapped != 200 {
		t.Fatalf("tap saw %d packets, want all 200 (loss must be after capture)", tapped)
	}
	if delivered == 200 || delivered == 0 {
		t.Fatalf("delivered = %d, want some random losses", delivered)
	}
	if int64(delivered)+l.RandomDrops != 200 {
		t.Fatalf("delivered+drops = %d, want 200", int64(delivered)+l.RandomDrops)
	}
}

func TestLinkTapTimestamp(t *testing.T) {
	eng := sim.New()
	var tapTime float64 = -1
	l := NewLink(eng, LinkConfig{Trace: Constant(8_000_000)}, func(p *packet.Packet) {})
	l.SetTap(func(v packet.View, now float64) { tapTime = v.Time })
	eng.At(3, func() { l.Send(mkPkt(1000)) })
	eng.Run()
	if tapTime != 3 {
		t.Fatalf("tap time = %g, want 3 (capture at ingress)", tapTime)
	}
}

func TestTokenBucketRateLimits(t *testing.T) {
	eng := sim.New()
	var times []float64
	sink := senderFunc(func(p *packet.Packet) { times = append(times, eng.Now()) })
	tb, err := NewTokenBucket(eng, TokenBucketConfig{RateBps: 800_000, BucketSize: 10_000}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket starts full with 10 KB. Send 5 x 10 KB packets at t=0:
	// first passes immediately, rest at 0.1 s spacing (100 KB/s rate).
	for i := 0; i < 5; i++ {
		tb.Send(mkPkt(10_000))
	}
	eng.Run()
	if len(times) != 5 {
		t.Fatalf("passed %d, want 5", len(times))
	}
	want := []float64{0, 0.1, 0.2, 0.3, 0.4}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-9 {
			t.Fatalf("departures %v, want %v", times, want)
		}
	}
}

func TestTokenBucketBurstAfterIdle(t *testing.T) {
	eng := sim.New()
	var times []float64
	sink := senderFunc(func(p *packet.Packet) { times = append(times, eng.Now()) })
	tb, err := NewTokenBucket(eng, TokenBucketConfig{RateBps: 800_000, BucketSize: 50_000}, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the bucket, then idle 1 s (refills 100 KB/s*1s but capped at
	// 50 KB), then burst: 5 x 10 KB should all pass instantly.
	tb.Send(mkPkt(50_000))
	eng.At(1.0, func() {
		for i := 0; i < 5; i++ {
			tb.Send(mkPkt(10_000))
		}
	})
	eng.Run()
	for _, tt := range times[1:] {
		if math.Abs(tt-1.0) > 1e-9 {
			t.Fatalf("burst after idle not instantaneous: %v", times)
		}
	}
}

// Property: the token bucket never exceeds its configured long-term rate:
// bytes passed in any window starting at 0 <= N + r*t.
func TestTokenBucketConservationProperty(t *testing.T) {
	f := func(sizes []uint16, rateK uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		rate := float64(rateK%50+1) * 100_000 // bits/s
		eng := sim.New()
		var passedBytes int64
		var lastT float64
		sink := senderFunc(func(p *packet.Packet) {
			passedBytes += p.Size
			lastT = eng.Now()
			// Invariant at every departure instant.
			budget := 20_000 + rate/8*eng.Now() + 1e-6
			if float64(passedBytes) > budget {
				t.Fatalf("bucket overdraft: %d bytes by t=%g (budget %g)", passedBytes, eng.Now(), budget)
			}
		})
		tb, err := NewTokenBucket(eng, TokenBucketConfig{RateBps: rate, BucketSize: 20_000}, sink)
		if err != nil {
			return false
		}
		for _, s := range sizes {
			tb.Send(mkPkt(int64(s%1400) + 1))
		}
		eng.Run()
		_ = lastT
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBucketRejectsBadConfig(t *testing.T) {
	eng := sim.New()
	if _, err := NewTokenBucket(eng, TokenBucketConfig{RateBps: 0, BucketSize: 1}, nil); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTokenBucket(eng, TokenBucketConfig{RateBps: 1, BucketSize: 0}, nil); err == nil {
		t.Fatal("zero bucket accepted")
	}
}

type senderFunc func(p *packet.Packet)

func (f senderFunc) Send(p *packet.Packet) { f(p) }
