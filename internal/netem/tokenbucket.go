package netem

import (
	"fmt"

	"csi/internal/packet"
	"csi/internal/sim"
)

// TokenBucketConfig mirrors the two key parameters of the tc-tbf shaper the
// paper studies in §7: token generation rate r and bucket size N.
type TokenBucketConfig struct {
	RateBps    float64 // token generation rate r, bits/s
	BucketSize int64   // bucket size N, bytes
}

// TokenBucket is a byte-granularity token-bucket traffic shaper. Tokens
// accumulate at RateBps up to BucketSize; a packet departs as soon as enough
// tokens are available, in FIFO order. Packets are never dropped — they are
// delayed, matching tc-tbf with a large queue.
//
// The bucket starts full, so after idle (OFF) periods the shaper permits a
// burst of up to BucketSize bytes at line rate — the effect §7 shows drives
// the Hulu player to ramp to higher tracks with a large N.
type TokenBucket struct {
	eng    *sim.Engine
	cfg    TokenBucketConfig
	out    packet.Sender
	tokens float64 // tokens available as of tLast
	tLast  float64 // time of last departure computation

	Shaped  int64
	Delayed int64
}

// NewTokenBucket creates a shaper forwarding into out.
func NewTokenBucket(eng *sim.Engine, cfg TokenBucketConfig, out packet.Sender) (*TokenBucket, error) {
	if cfg.RateBps <= 0 {
		return nil, fmt.Errorf("netem: token bucket rate must be positive, got %g", cfg.RateBps)
	}
	if cfg.BucketSize <= 0 {
		return nil, fmt.Errorf("netem: token bucket size must be positive, got %d", cfg.BucketSize)
	}
	return &TokenBucket{
		eng:    eng,
		cfg:    cfg,
		out:    out,
		tokens: float64(cfg.BucketSize),
	}, nil
}

// Send implements packet.Sender. Departure times are computed analytically
// along a virtual token timeline, so the shaper needs no internal queue
// structure: FIFO order is preserved because each packet's departure is no
// earlier than the previous one's.
func (tb *TokenBucket) Send(p *packet.Packet) {
	now := tb.eng.Now()
	rate := tb.cfg.RateBps / 8 // bytes/s
	t0 := now
	if tb.tLast > t0 {
		t0 = tb.tLast // FIFO: cannot depart before the previous packet
	}
	avail := tb.tokens + (t0-tb.tLast)*rate
	burst := float64(tb.cfg.BucketSize)
	if avail > burst {
		avail = burst
	}
	need := float64(p.Size)
	if need > burst {
		// A packet larger than the bucket would stall forever in real tbf;
		// let it pass at rate cost instead (MTU packets never hit this with
		// sane configs, but robustness beats a livelock).
		burst = need
	}
	var depart float64
	if avail >= need {
		depart = t0
		tb.tokens = avail - need
	} else {
		wait := (need - avail) / rate
		depart = t0 + wait
		tb.tokens = 0
	}
	tb.tLast = depart
	tb.Shaped++
	if depart <= now {
		tb.out.Send(p)
		return
	}
	tb.Delayed++
	tb.eng.At(depart, func() { tb.out.Send(p) })
}
