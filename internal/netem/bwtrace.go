// Package netem emulates the network path between the mobile device and the
// server: bandwidth-limited links driven by piecewise-constant rate traces,
// drop-tail queues, random loss, propagation delay, and a token-bucket
// shaper equivalent to the Linux tc-tbf module used in the paper (§7).
package netem

import (
	"fmt"
	"math"
	"sort"

	"csi/internal/stats"
)

// TracePoint is one step of a piecewise-constant bandwidth trace.
type TracePoint struct {
	T    float64 // start time, seconds
	Rate float64 // bytes per second from T onwards
}

// BandwidthTrace is a piecewise-constant available-bandwidth profile. The
// last segment extends forever. Rates are stored in bytes/s; constructors
// accept bits/s because network configs are conventionally quoted that way.
type BandwidthTrace struct {
	pts []TracePoint
}

// NewTrace builds a trace from explicit points (bytes/s). Points must start
// at or before 0 and be strictly increasing in time.
func NewTrace(pts []TracePoint) (*BandwidthTrace, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("netem: empty bandwidth trace")
	}
	if pts[0].T > 0 {
		return nil, fmt.Errorf("netem: trace must cover t=0 (first point at %g)", pts[0].T)
	}
	for i := range pts {
		if pts[i].Rate <= 0 {
			return nil, fmt.Errorf("netem: non-positive rate %g at point %d", pts[i].Rate, i)
		}
		if i > 0 && pts[i].T <= pts[i-1].T {
			return nil, fmt.Errorf("netem: trace times not increasing at point %d", i)
		}
	}
	cp := make([]TracePoint, len(pts))
	copy(cp, pts)
	return &BandwidthTrace{pts: cp}, nil
}

// Constant returns a trace with a fixed rate given in bits/s.
func Constant(bps float64) *BandwidthTrace {
	return &BandwidthTrace{pts: []TracePoint{{T: 0, Rate: bps / 8}}}
}

// Steps builds a trace from (duration, bits/s) pairs that repeat cyclically
// up to horizon seconds, after which the last rate holds forever.
func Steps(horizon float64, steps ...[2]float64) (*BandwidthTrace, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("netem: no steps")
	}
	var pts []TracePoint
	t := 0.0
	for t < horizon {
		for _, s := range steps {
			if t >= horizon {
				break
			}
			pts = append(pts, TracePoint{T: t, Rate: s[1] / 8})
			t += s[0]
		}
	}
	return NewTrace(pts)
}

// RateAt returns the rate (bytes/s) at time t.
func (tr *BandwidthTrace) RateAt(t float64) float64 {
	i := sort.Search(len(tr.pts), func(i int) bool { return tr.pts[i].T > t })
	if i == 0 {
		return tr.pts[0].Rate
	}
	return tr.pts[i-1].Rate
}

// FinishTime returns the time at which a transmission of the given number
// of bytes completes if it starts at start and always uses the full trace
// rate.
func (tr *BandwidthTrace) FinishTime(start float64, bytes float64) float64 {
	if bytes <= 0 {
		return start
	}
	t := start
	i := sort.Search(len(tr.pts), func(i int) bool { return tr.pts[i].T > t })
	if i > 0 {
		i--
	}
	remaining := bytes
	for {
		rate := tr.pts[i].Rate
		segEnd := math.Inf(1)
		if i+1 < len(tr.pts) {
			segEnd = tr.pts[i+1].T
		}
		dur := segEnd - t
		capBytes := rate * dur
		if remaining <= capBytes {
			return t + remaining/rate
		}
		remaining -= capBytes
		t = segEnd
		i++
	}
}

// MeanRate returns the average rate in bits/s over [0, horizon].
func (tr *BandwidthTrace) MeanRate(horizon float64) float64 {
	if horizon <= 0 {
		return tr.pts[0].Rate * 8
	}
	total := 0.0
	for i := range tr.pts {
		start := tr.pts[i].T
		if start >= horizon {
			break
		}
		end := horizon
		if i+1 < len(tr.pts) && tr.pts[i+1].T < horizon {
			end = tr.pts[i+1].T
		}
		total += tr.pts[i].Rate * (end - start)
	}
	return total / horizon * 8
}

// CellularConfig parameterizes the synthetic cellular bandwidth trace
// generator that substitutes for the paper's 30 recorded commercial-network
// traces (§6.2): a mean level with lognormal multiplicative variation,
// piecewise-constant over intervals of a few seconds, optionally with deep
// fades.
type CellularConfig struct {
	Seed        int64
	MeanBps     float64 // mean bandwidth, bits/s
	Variability float64 // std of log-rate; 0 = constant
	StepSec     float64 // mean step duration; default 4 s
	Horizon     float64 // generated length; default 700 s
	FadeProb    float64 // probability a step is a deep fade to 10% of mean
	FloorBps    float64 // minimum rate; default 64 kbit/s
}

// GenerateCellular produces one synthetic cellular bandwidth trace.
func GenerateCellular(cfg CellularConfig) *BandwidthTrace {
	if cfg.StepSec == 0 {
		cfg.StepSec = 4
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 700
	}
	if cfg.FloorBps == 0 {
		cfg.FloorBps = 64_000
	}
	rng := stats.NewRand(cfg.Seed)
	var pts []TracePoint
	t := 0.0
	// AR(1) in log space keeps successive steps correlated like real
	// signal-strength driven cellular throughput.
	x := 0.0
	const rho = 0.7
	for t < cfg.Horizon {
		x = rho*x + math.Sqrt(1-rho*rho)*rng.NormFloat64()
		rate := cfg.MeanBps * math.Exp(cfg.Variability*x-cfg.Variability*cfg.Variability/2)
		if cfg.FadeProb > 0 && rng.Float64() < cfg.FadeProb {
			rate = cfg.MeanBps * 0.1
		}
		if rate < cfg.FloorBps {
			rate = cfg.FloorBps
		}
		pts = append(pts, TracePoint{T: t, Rate: rate / 8})
		t += cfg.StepSec * (0.5 + rng.Float64())
	}
	tr, err := NewTrace(pts)
	if err != nil {
		panic("netem: internal generator error: " + err.Error()) //csi-vet:ignore nakedpanic -- generator-internal invariant: NewTrace of a well-formed point set cannot fail
	}
	return tr
}

// CellularTraceSet reproduces the paper's evaluation corpus: n traces with
// mean bandwidths log-spaced between 600 kbit/s and 40 Mbit/s and a spread
// of variability levels (§6.2 tests 30 such traces).
func CellularTraceSet(seed int64, n int) []*BandwidthTrace {
	if n <= 0 {
		n = 30
	}
	out := make([]*BandwidthTrace, 0, n)
	loMean, hiMean := 600_000.0, 40_000_000.0
	variabilities := []float64{0.05, 0.25, 0.5}
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(max(n-1, 1))
		mean := loMean * math.Pow(hiMean/loMean, frac)
		v := variabilities[i%len(variabilities)]
		fade := 0.0
		if i%5 == 4 {
			fade = 0.05
		}
		out = append(out, GenerateCellular(CellularConfig{
			Seed:        seed + int64(i)*7919,
			MeanBps:     mean,
			Variability: v,
			FadeProb:    fade,
		}))
	}
	return out
}
