package capture

import (
	"bytes"
	"path/filepath"
	"testing"

	"csi/internal/media"
	"csi/internal/packet"
)

func sampleRun() *Run {
	tr := NewTrace()
	tap := tr.Tap()
	tap(packet.View{Dir: packet.Up, ConnID: 1, Size: 100, SNI: "media.example.com", Proto: packet.TCP}, 0.1)
	tap(packet.View{Dir: packet.Down, ConnID: 1, Size: 1452, TCPSeq: 0, TCPPayload: 1400, TLSAppBytes: 1380, Proto: packet.TCP}, 0.2)
	tap(packet.View{Dir: packet.Up, ConnID: 2, Size: 90, SNI: "api.example.com", Proto: packet.TCP}, 0.3)
	return &Run{
		Trace:   tr,
		Truth:   []TruthRecord{{ReqTime: 0.1, DoneTime: 0.5, Ref: media.ChunkRef{Track: 1, Index: 0}, Kind: media.Video, Size: 1380}},
		Display: []DisplayRecord{{Start: 1, End: 6, Index: 0, Track: 1}},
		Stalls:  []StallRecord{{Start: 2, End: 3}},
	}
}

func TestTapRecordsSNIOncePerConn(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	tap(packet.View{ConnID: 1, SNI: "a.example.com"}, 0)
	tap(packet.View{ConnID: 1, SNI: "evil.example.org"}, 1) // later SNI must not overwrite
	if got := tr.SNI[1]; got != "a.example.com" {
		t.Fatalf("SNI = %q", got)
	}
}

func TestConnIDsSuffixMatch(t *testing.T) {
	r := sampleRun()
	ids := r.Trace.ConnIDs("media.example.com")
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("ids = %v", ids)
	}
	both := r.Trace.ConnIDs("example.com")
	if len(both) != 2 {
		t.Fatalf("suffix match ids = %v", both)
	}
	if got := r.Trace.ConnIDs("nosuch.host"); len(got) != 0 {
		t.Fatalf("unexpected match %v", got)
	}
}

func TestConnIDsRequiresDotBoundary(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	tap(packet.View{Dir: packet.Up, ConnID: 1, SNI: "notexample.com", Proto: packet.TCP}, 0.1)
	tap(packet.View{Dir: packet.Up, ConnID: 2, SNI: "example.com", Proto: packet.TCP}, 0.2)
	tap(packet.View{Dir: packet.Up, ConnID: 3, SNI: "cdn.example.com", Proto: packet.TCP}, 0.3)
	ids := tr.ConnIDs("example.com")
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("ids = %v, want [2 3] (notexample.com must not match)", ids)
	}
}

func TestFallbackConnIDsByVolume(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	// Media conn 3: large downlink volume, but its handshake (SNI) was
	// missed and no DNS was seen.
	for i := 0; i < 400; i++ {
		tap(packet.View{Dir: packet.Down, ConnID: 3, Size: 1452, Proto: packet.TCP}, float64(i)*0.01)
	}
	// Decoy-sized conn 4: 120 KB, below the absolute floor.
	for i := 0; i < 80; i++ {
		tap(packet.View{Dir: packet.Down, ConnID: 4, Size: 1500, Proto: packet.TCP}, float64(i)*0.01)
	}
	// Conn 5 is big but its SNI names another host — must be excluded.
	tap(packet.View{Dir: packet.Up, ConnID: 5, SNI: "tracker.example.org", Proto: packet.TCP}, 0)
	for i := 0; i < 400; i++ {
		tap(packet.View{Dir: packet.Down, ConnID: 5, Size: 1452, Proto: packet.TCP}, float64(i)*0.01)
	}
	if ids := tr.ConnIDs("media.example.com"); len(ids) != 0 {
		t.Fatalf("SNI/DNS matching should find nothing, got %v", ids)
	}
	ids := tr.FallbackConnIDs("media.example.com")
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("fallback ids = %v, want [3]", ids)
	}
}

func TestByConnPreservesOrder(t *testing.T) {
	r := sampleRun()
	m := r.Trace.ByConn()
	if len(m[1]) != 2 || len(m[2]) != 1 {
		t.Fatalf("by-conn sizes: %d, %d", len(m[1]), len(m[2]))
	}
	if m[1][0].Time > m[1][1].Time {
		t.Fatal("per-conn packets out of order")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace.Packets) != len(r.Trace.Packets) ||
		len(got.Truth) != 1 || len(got.Display) != 1 || len(got.Stalls) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Trace.SNI[1] != "media.example.com" {
		t.Fatalf("SNI lost: %v", got.Trace.SNI)
	}
	if got.Truth[0].Ref != r.Truth[0].Ref {
		t.Fatalf("truth ref mismatch")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	r := sampleRun()
	if err := r.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace.Packets) != 3 {
		t.Fatalf("loaded %d packets", len(got.Trace.Packets))
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{]")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"truth":[]}`)); err == nil {
		t.Error("trace-less run accepted")
	}
}

func TestDNSFallbackWhenSNIMissing(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	// DNS exchange announces the media host's IP.
	tap(packet.View{Dir: packet.Up, Proto: packet.UDP, DNSQuery: "media.example.com"}, 0.01)
	tap(packet.View{Dir: packet.Down, Proto: packet.UDP, DNSQuery: "media.example.com", DNSAnswerIP: "203.0.113.10"}, 0.02)
	// Connection 5 has no SNI (ESNI) but a matching server IP.
	tap(packet.View{Dir: packet.Up, Proto: packet.TCP, ConnID: 5, ServerIP: "203.0.113.10", TCPPayload: 300}, 0.1)
	// Connection 6 has neither SNI nor a known IP.
	tap(packet.View{Dir: packet.Up, Proto: packet.TCP, ConnID: 6, ServerIP: "198.51.100.1", TCPPayload: 300}, 0.1)
	ids := tr.ConnIDs("media.example.com")
	if len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("DNS fallback ids = %v, want [5]", ids)
	}
}

func TestSNITakesPrecedenceOverDNS(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	tap(packet.View{Dir: packet.Down, Proto: packet.UDP, DNSQuery: "media.example.com", DNSAnswerIP: "203.0.113.10"}, 0)
	// Conn 7 carries a DIFFERENT SNI but reuses the same front IP (CDN):
	// the SNI must win and exclude it.
	tap(packet.View{Dir: packet.Up, Proto: packet.TCP, ConnID: 7, ServerIP: "203.0.113.10", SNI: "other.example.org"}, 0.1)
	if ids := tr.ConnIDs("media.example.com"); len(ids) != 0 {
		t.Fatalf("SNI-mismatched conn leaked in via IP: %v", ids)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trace.Packets) != len(r.Trace.Packets) {
		t.Fatalf("packets = %d", len(got.Trace.Packets))
	}
	for i := range r.Trace.Packets {
		if got.Trace.Packets[i] != r.Trace.Packets[i] {
			t.Fatalf("packet %d mismatch:\n got %+v\nwant %+v", i, got.Trace.Packets[i], r.Trace.Packets[i])
		}
	}
	if got.Trace.SNI[1] != "media.example.com" {
		t.Fatalf("SNI lost: %v", got.Trace.SNI)
	}
	if len(got.Truth) != 1 || got.Truth[0] != r.Truth[0] {
		t.Fatalf("truth mismatch: %+v", got.Truth)
	}
	if len(got.Display) != 1 || got.Display[0] != r.Display[0] {
		t.Fatalf("display mismatch: %+v", got.Display)
	}
	if len(got.Stalls) != 1 || got.Stalls[0] != r.Stalls[0] {
		t.Fatalf("stalls mismatch: %+v", got.Stalls)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("NOTRUN...")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	r := sampleRun()
	var buf bytes.Buffer
	if err := r.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewBuffer(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestLoadAnySniffsFormat(t *testing.T) {
	dir := t.TempDir()
	r := sampleRun()
	jp := filepath.Join(dir, "run.json")
	bp := filepath.Join(dir, "run.bin")
	if err := r.SaveJSON(jp); err != nil {
		t.Fatal(err)
	}
	if err := r.SaveBinary(bp); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{jp, bp} {
		got, err := LoadAny(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(got.Trace.Packets) != len(r.Trace.Packets) {
			t.Fatalf("%s: packets = %d", p, len(got.Trace.Packets))
		}
	}
}

// TestByConnMemoized pins the per-trace memo: a second call on an unchanged
// trace returns the same map with zero allocations, and a Tap append
// invalidates the memo so the split always reflects every packet.
func TestByConnMemoized(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	for i := 0; i < 30; i++ {
		tap(packet.View{Dir: packet.Down, ConnID: 1 + i%3, Size: 100}, float64(i))
	}
	first := tr.ByConn()
	if !raceEnabled {
		if avg := testing.AllocsPerRun(50, func() { tr.ByConn() }); avg != 0 {
			t.Fatalf("memoized ByConn allocates %.1f/op, want 0", avg)
		}
	}
	if got := tr.ByConn(); len(got) != len(first) {
		t.Fatalf("memoized result changed shape: %d conns, was %d", len(got), len(first))
	}
	tap(packet.View{Dir: packet.Down, ConnID: 9, Size: 100}, 99)
	after := tr.ByConn()
	if _, ok := after[9]; !ok {
		t.Fatalf("memo not advanced: appended connection missing from ByConn")
	}
}

// TestByConnIncrementalMatchesRebuild pins the streaming-ingest contract:
// alternating Tap batches with ByConn must always yield exactly the split a
// cold rebuild of the full trace would produce — same connections, same
// per-connection packet order — and the incremental path must not stale any
// connection that grew.
func TestByConnIncrementalMatchesRebuild(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	emit := func(n int, base float64) {
		for i := 0; i < n; i++ {
			tap(packet.View{Dir: packet.Down, ConnID: 1 + (i % 4), Size: int64(100 + i)}, base+float64(i))
		}
	}
	emit(13, 0)
	_ = tr.ByConn() // warm the memo mid-stream
	emit(7, 100)
	_ = tr.ByConn()
	emit(29, 200) // grows existing conns and adds new ones
	tap(packet.View{Dir: packet.Up, ConnID: 77, Size: 60}, 300)
	got := tr.ByConn()

	cold := NewTrace()
	cold.Packets = append([]packet.View(nil), tr.Packets...)
	want := cold.ByConn()
	if len(got) != len(want) {
		t.Fatalf("incremental split has %d conns, cold rebuild %d", len(got), len(want))
	}
	for id, w := range want {
		g := got[id]
		if len(g) != len(w) {
			t.Fatalf("conn %d: incremental has %d packets, cold rebuild %d", id, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("conn %d packet %d: incremental %+v != rebuild %+v", id, i, g[i], w[i])
			}
		}
	}
}

// TestByConnAppendDoesNotAlias: the handed-out slices are full-capacity
// clips; appending to one connection's slice must reallocate, never
// overwrite a neighboring connection's packets (first build) or the memo's
// private growth room (incremental advance). A Tap after ByConn must
// neither alias the handed-out slices nor stale the memo.
func TestByConnAppendDoesNotAlias(t *testing.T) {
	tr := NewTrace()
	tap := tr.Tap()
	tap(packet.View{Dir: packet.Down, ConnID: 1, Size: 111}, 0)
	tap(packet.View{Dir: packet.Down, ConnID: 2, Size: 222}, 1)
	m := tr.ByConn()
	_ = append(m[1], packet.View{ConnID: 1, Size: 999}) // stray append
	if got := tr.ByConn()[2][0].Size; got != 222 {
		t.Fatalf("stray append clobbered neighboring connection: size %d, want 222", got)
	}

	// Incremental advance: tap more packets into conn 1 so its private
	// buffer reallocates with spare capacity, then repeat the stray-append
	// probe against the re-clipped view.
	tap(packet.View{Dir: packet.Down, ConnID: 1, Size: 112}, 2)
	tap(packet.View{Dir: packet.Down, ConnID: 2, Size: 223}, 3)
	m2 := tr.ByConn()
	if len(m2[1]) != 2 || m2[1][1].Size != 112 {
		t.Fatalf("memo stale after Tap: conn 1 = %+v", m2[1])
	}
	_ = append(m2[1], packet.View{ConnID: 1, Size: 888}) // stray append into growth room?
	tap(packet.View{Dir: packet.Down, ConnID: 1, Size: 113}, 4)
	if got := tr.ByConn()[1][2].Size; got != 113 {
		t.Fatalf("stray append leaked into the memo's growth buffer: size %d, want 113", got)
	}
	if got := tr.ByConn()[2][1].Size; got != 223 {
		t.Fatalf("incremental growth clobbered neighboring connection: size %d, want 223", got)
	}
}
