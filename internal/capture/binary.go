package capture

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"csi/internal/media"
	"csi/internal/packet"
)

// Compact binary serialization for runs. A 10-minute session captures
// hundreds of thousands of packets; JSON runs to tens of megabytes, while
// this varint-packed format stays a few megabytes and loads an order of
// magnitude faster. The format is versioned and self-contained:
//
//	magic "CSIRUN" | version u8 | sections (SNI, DNS, IPs, packets,
//	truth, display, stalls), each length-prefixed.
const (
	binMagic   = "CSIRUN"
	binVersion = 1
)

type binWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (b *binWriter) uvarint(v uint64) {
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) varint(v int64) {
	if b.err != nil {
		return
	}
	n := binary.PutVarint(b.buf[:], v)
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) f64(v float64) { b.uvarint(math.Float64bits(v)) }

func (b *binWriter) str(s string) {
	b.uvarint(uint64(len(s)))
	if b.err == nil {
		_, b.err = b.w.WriteString(s)
	}
}

type binReader struct {
	r *bufio.Reader
}

func (b *binReader) uvarint() (uint64, error) { return binary.ReadUvarint(b.r) }
func (b *binReader) varint() (int64, error)   { return binary.ReadVarint(b.r) }

func (b *binReader) f64() (float64, error) {
	v, err := b.uvarint()
	return math.Float64frombits(v), err
}

func (b *binReader) str() (string, error) {
	n, err := b.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("capture: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(b.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteBinary serializes the run in the compact binary format.
func (r *Run) WriteBinary(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.WriteString(binMagic); err != nil {
		return err
	}
	bw.uvarint(binVersion)

	t := r.Trace
	bw.uvarint(uint64(len(t.SNI)))
	for id, host := range t.SNI {
		bw.varint(int64(id))
		bw.str(host)
	}
	bw.uvarint(uint64(len(t.DNS)))
	for ip, host := range t.DNS {
		bw.str(ip)
		bw.str(host)
	}
	bw.uvarint(uint64(len(t.ServerIP)))
	for id, ip := range t.ServerIP {
		bw.varint(int64(id))
		bw.str(ip)
	}

	bw.uvarint(uint64(len(t.Packets)))
	for i := range t.Packets {
		v := &t.Packets[i]
		flags := uint64(0)
		if v.Dir == packet.Down {
			flags |= 1
		}
		if v.Proto == packet.UDP {
			flags |= 2
		}
		if v.QUICLong {
			flags |= 4
		}
		if v.SNI != "" || v.DNSQuery != "" || v.DNSAnswerIP != "" || v.ServerIP != "" {
			flags |= 8 // rare string fields present
		}
		bw.uvarint(flags)
		bw.f64(v.Time)
		bw.varint(int64(v.ConnID))
		bw.varint(v.Size)
		bw.varint(v.TCPSeq)
		bw.varint(v.TCPPayload)
		bw.varint(v.TLSAppBytes)
		bw.varint(v.TLSHSBytes)
		bw.varint(v.QUICPN)
		bw.varint(v.QUICPayload)
		if flags&8 != 0 {
			bw.str(v.SNI)
			bw.str(v.DNSQuery)
			bw.str(v.DNSAnswerIP)
			bw.str(v.ServerIP)
		}
	}

	bw.uvarint(uint64(len(r.Truth)))
	for _, tr := range r.Truth {
		bw.f64(tr.ReqTime)
		bw.f64(tr.DoneTime)
		bw.varint(int64(tr.Ref.Track))
		bw.varint(int64(tr.Ref.Index))
		bw.uvarint(uint64(tr.Kind))
		bw.varint(tr.Size)
	}
	bw.uvarint(uint64(len(r.Display)))
	for _, d := range r.Display {
		bw.f64(d.Start)
		bw.f64(d.End)
		bw.varint(int64(d.Index))
		bw.varint(int64(d.Track))
	}
	bw.uvarint(uint64(len(r.Stalls)))
	for _, s := range r.Stalls {
		bw.f64(s.Start)
		bw.f64(s.End)
	}
	if bw.err != nil {
		return fmt.Errorf("capture: writing binary run: %w", bw.err)
	}
	return bw.w.Flush()
}

// ReadBinary parses a run from the compact binary format.
func ReadBinary(rd io.Reader) (*Run, error) {
	br := &binReader{r: bufio.NewReader(rd)}
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("capture: reading magic: %w", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("capture: not a binary run file")
	}
	ver, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != binVersion {
		return nil, fmt.Errorf("capture: unsupported binary version %d", ver)
	}

	run := &Run{Trace: NewTrace()}
	t := run.Trace

	fail := func(section string, err error) (*Run, error) {
		return nil, fmt.Errorf("capture: binary section %s: %w", section, err)
	}

	n, err := br.uvarint()
	if err != nil {
		return fail("sni", err)
	}
	for i := uint64(0); i < n; i++ {
		id, err := br.varint()
		if err != nil {
			return fail("sni", err)
		}
		host, err := br.str()
		if err != nil {
			return fail("sni", err)
		}
		t.SNI[int(id)] = host
	}
	if n, err = br.uvarint(); err != nil {
		return fail("dns", err)
	}
	for i := uint64(0); i < n; i++ {
		ip, err := br.str()
		if err != nil {
			return fail("dns", err)
		}
		host, err := br.str()
		if err != nil {
			return fail("dns", err)
		}
		t.DNS[ip] = host
	}
	if n, err = br.uvarint(); err != nil {
		return fail("ips", err)
	}
	for i := uint64(0); i < n; i++ {
		id, err := br.varint()
		if err != nil {
			return fail("ips", err)
		}
		ip, err := br.str()
		if err != nil {
			return fail("ips", err)
		}
		t.ServerIP[int(id)] = ip
	}

	if n, err = br.uvarint(); err != nil {
		return fail("packets", err)
	}
	if n > 1<<31 {
		return fail("packets", fmt.Errorf("implausible count %d", n))
	}
	// Grow from a bounded capacity rather than trusting the declared count:
	// a corrupt header must not allocate gigabytes up front.
	pre := n
	if pre > 1<<16 {
		pre = 1 << 16
	}
	t.Packets = make([]packet.View, 0, pre)
	for i := uint64(0); i < n; i++ {
		var v packet.View
		flags, err := br.uvarint()
		if err != nil {
			return fail("packets", err)
		}
		if flags&1 != 0 {
			v.Dir = packet.Down
		}
		if flags&2 != 0 {
			v.Proto = packet.UDP
		}
		v.QUICLong = flags&4 != 0
		if v.Time, err = br.f64(); err != nil {
			return fail("packets", err)
		}
		conn, err := br.varint()
		if err != nil {
			return fail("packets", err)
		}
		v.ConnID = int(conn)
		ints := []*int64{&v.Size, &v.TCPSeq, &v.TCPPayload, &v.TLSAppBytes, &v.TLSHSBytes, &v.QUICPN, &v.QUICPayload}
		for _, p := range ints {
			if *p, err = br.varint(); err != nil {
				return fail("packets", err)
			}
		}
		if flags&8 != 0 {
			if v.SNI, err = br.str(); err != nil {
				return fail("packets", err)
			}
			if v.DNSQuery, err = br.str(); err != nil {
				return fail("packets", err)
			}
			if v.DNSAnswerIP, err = br.str(); err != nil {
				return fail("packets", err)
			}
			if v.ServerIP, err = br.str(); err != nil {
				return fail("packets", err)
			}
		}
		t.Packets = append(t.Packets, v)
	}

	if n, err = br.uvarint(); err != nil {
		return fail("truth", err)
	}
	for i := uint64(0); i < n; i++ {
		var tr TruthRecord
		if tr.ReqTime, err = br.f64(); err != nil {
			return fail("truth", err)
		}
		if tr.DoneTime, err = br.f64(); err != nil {
			return fail("truth", err)
		}
		track, err := br.varint()
		if err != nil {
			return fail("truth", err)
		}
		idx, err := br.varint()
		if err != nil {
			return fail("truth", err)
		}
		kind, err := br.uvarint()
		if err != nil {
			return fail("truth", err)
		}
		if tr.Size, err = br.varint(); err != nil {
			return fail("truth", err)
		}
		tr.Ref = media.ChunkRef{Track: int(track), Index: int(idx)}
		tr.Kind = media.Type(kind)
		run.Truth = append(run.Truth, tr)
	}

	if n, err = br.uvarint(); err != nil {
		return fail("display", err)
	}
	for i := uint64(0); i < n; i++ {
		var d DisplayRecord
		if d.Start, err = br.f64(); err != nil {
			return fail("display", err)
		}
		if d.End, err = br.f64(); err != nil {
			return fail("display", err)
		}
		idx, err := br.varint()
		if err != nil {
			return fail("display", err)
		}
		track, err := br.varint()
		if err != nil {
			return fail("display", err)
		}
		d.Index, d.Track = int(idx), int(track)
		run.Display = append(run.Display, d)
	}

	if n, err = br.uvarint(); err != nil {
		return fail("stalls", err)
	}
	for i := uint64(0); i < n; i++ {
		var s StallRecord
		if s.Start, err = br.f64(); err != nil {
			return fail("stalls", err)
		}
		if s.End, err = br.f64(); err != nil {
			return fail("stalls", err)
		}
		run.Stalls = append(run.Stalls, s)
	}
	return run, nil
}

// SaveBinary writes the run to the named file in binary format.
func (r *Run) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("capture: saving binary run: %w", err)
	}
	defer f.Close()
	if err := r.WriteBinary(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadBinary reads a run from the named binary file.
func LoadBinary(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("capture: loading binary run: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}

// LoadAny opens a run file in either format, sniffing the magic bytes.
func LoadAny(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("capture: loading run: %w", err)
	}
	defer f.Close()
	head := make([]byte, len(binMagic))
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, fmt.Errorf("capture: reading run header: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(head) == binMagic {
		return ReadBinary(f)
	}
	return ReadJSON(f)
}
