package capture

import (
	"bytes"
	"testing"
)

// The decoders feed on files from disk — a corrupted run must come back as
// an error, never a panic or a half-initialized Run that crashes inference.

func fuzzSeed(f *testing.F, write func(*Run, *bytes.Buffer) error) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := write(sampleRun(), &buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func checkDecoded(t *testing.T, run *Run, err error) {
	t.Helper()
	if err != nil {
		if err.Error() == "" {
			t.Fatal("empty error message")
		}
		return
	}
	if run == nil || run.Trace == nil {
		t.Fatal("nil run/trace with nil error")
	}
	if run.Trace.SNI == nil || run.Trace.DNS == nil || run.Trace.ServerIP == nil {
		t.Fatal("decoder returned nil trace maps")
	}
}

func FuzzReadJSON(f *testing.F) {
	valid := fuzzSeed(f, func(r *Run, b *bytes.Buffer) error { return r.WriteJSON(b) })
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("{}"))
	f.Add([]byte(`{"trace":{"packets":null,"sni":null}}`))
	f.Add([]byte(`{"trace":{"packets":[{"time":1e308,"conn":-1}],"sni":{"1":"x"}},"truth":[{}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := ReadJSON(bytes.NewReader(data))
		checkDecoded(t, run, err)
	})
}

func FuzzReadBinary(f *testing.F) {
	valid := fuzzSeed(f, func(r *Run, b *bytes.Buffer) error { return r.WriteBinary(b) })
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("CSIRUN"))
	// Declared packet count far beyond the payload.
	f.Add([]byte("CSIRUN\x01\x00\x00\x00\xff\xff\xff\xff\x0f"))
	flipped := bytes.Clone(valid)
	if len(flipped) > 8 {
		flipped[8] ^= 0x80
	}
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := ReadBinary(bytes.NewReader(data))
		checkDecoded(t, run, err)
	})
}
