// Package capture is the gateway's packet capture: it records the
// monitor-visible view of every packet crossing the emulated path, plus the
// side-band ground truth the evaluation compares against (which CSI itself
// never reads).
package capture

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"csi/internal/media"
	"csi/internal/packet"
)

// Trace is the captured packet sequence of one test run.
type Trace struct {
	Packets []packet.View `json:"packets"`
	// SNI maps connection id to the server name observed during that
	// connection's handshake.
	SNI map[int]string `json:"sni"`
	// DNS maps server IP to hostname, learned from cleartext DNS responses
	// (the §5.3.1 fallback when SNI is absent).
	DNS map[string]string `json:"dns,omitempty"`
	// ServerIP maps connection id to its server address.
	ServerIP map[int]string `json:"server_ip,omitempty"`

	// byConn memoizes ByConn. The per-connection split used to be rebuilt —
	// one map plus one append-grown slice per connection — on every analysis
	// pass, and at ~10 minutes of packets that rebuild dominated the entire
	// allocation profile of core.Infer (≈160 MB per inference). The split is
	// a pure function of Packets, so it is computed once and shared by every
	// subsequent caller (degrade retries, ablation variants, repeated
	// inferences over a monitored flow). byConnLen records the Packets
	// length the memo reflects; packets tapped after that advance the memo
	// *incrementally* on the next ByConn call — streaming ingest re-solving
	// a growing flow pays only for the packets that arrived since the last
	// solve, never a full rebuild.
	//
	// byConnBuf is the private per-connection storage and may carry spare
	// append capacity; byConn holds the full-capacity-clipped views handed
	// to callers (a stray caller append must reallocate, never spill into
	// buffered growth room or a neighboring connection).
	byConnMu  sync.Mutex
	byConnBuf map[int][]packet.View
	byConn    map[int][]packet.View
	byConnLen int
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{SNI: make(map[int]string), DNS: make(map[string]string), ServerIP: make(map[int]string)}
}

// Tap returns the function to install on links (both directions feed the
// same trace; event ordering keeps it time-sorted).
func (t *Trace) Tap() func(v packet.View, now float64) {
	return func(v packet.View, now float64) {
		if v.SNI != "" {
			if _, ok := t.SNI[v.ConnID]; !ok {
				t.SNI[v.ConnID] = v.SNI
			}
		}
		if v.DNSQuery != "" && v.DNSAnswerIP != "" {
			t.DNS[v.DNSAnswerIP] = v.DNSQuery
		}
		if v.ServerIP != "" {
			if _, ok := t.ServerIP[v.ConnID]; !ok {
				t.ServerIP[v.ConnID] = v.ServerIP
			}
		}
		t.Packets = append(t.Packets, v)
	}
}

// ConnIDs returns the ids of connections belonging to the given host
// (suffix match: "example.com" matches "media.example.com"), mirroring CSI
// Step 1.1. Connections without an observed SNI fall back to the hostname
// their server IP resolved to in captured DNS traffic.
func (t *Trace) ConnIDs(hostSuffix string) []int {
	match := func(host string) bool { return hostMatches(host, hostSuffix) }
	seen := map[int]bool{}
	var out []int
	//csi-vet:ignore maporder -- out is sorted below before returning
	for id, host := range t.SNI {
		if match(host) {
			out = append(out, id)
			seen[id] = true
		}
	}
	// DNS/IP fallback for SNI-less connections.
	//csi-vet:ignore maporder -- out is sorted below before returning
	for id, ip := range t.ServerIP {
		if seen[id] {
			continue
		}
		if _, hasSNI := t.SNI[id]; hasSNI {
			continue // SNI present but for a different host
		}
		if host, ok := t.DNS[ip]; ok && match(host) {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// hostMatches reports whether host equals hostSuffix or is a subdomain of
// it. The boundary dot is required: "notexample.com" must not match
// "example.com".
func hostMatches(host, hostSuffix string) bool {
	return host == hostSuffix || strings.HasSuffix(host, "."+hostSuffix)
}

// FallbackConnIDs guesses the media connections when neither SNI nor DNS
// identified any — e.g. the monitor attached mid-session and missed both
// handshakes. It keeps every connection whose downlink byte total reaches
// max(256 KB, 5% of the busiest connection), skipping connections whose
// observed SNI names a different host. Returns ids sorted ascending; empty
// when the trace has no plausible media flow.
func (t *Trace) FallbackConnIDs(hostSuffix string) []int {
	down := map[int]int64{}
	for _, v := range t.Packets {
		if v.Dir == packet.Down && v.ConnID > 0 {
			down[v.ConnID] += v.Size
		}
	}
	var top int64
	// Max reduction: order independent, so no maporder concern.
	for _, b := range down {
		if b > top {
			top = b
		}
	}
	floor := int64(256 << 10)
	if th := top / 20; th > floor {
		floor = th
	}
	var out []int
	//csi-vet:ignore maporder -- out is sorted below before returning
	for id, b := range down {
		if b < floor {
			continue
		}
		if sni, ok := t.SNI[id]; ok && !hostMatches(sni, hostSuffix) {
			continue
		}
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ByConn splits the trace per connection, preserving time order. The result
// is memoized on the trace: callers receive shared read-only slices and must
// not mutate them (or append, which would alias trace-internal storage — the
// slices are handed out at full capacity to make a stray append reallocate
// instead). Packets tapped since the previous call are folded in
// incrementally, so a streaming caller alternating Tap batches with ByConn
// pays O(new packets), not O(trace). The same map object is updated in
// place across calls: re-fetch it after tapping rather than retaining a
// pre-growth copy.
func (t *Trace) ByConn() map[int][]packet.View {
	t.byConnMu.Lock()
	defer t.byConnMu.Unlock()
	if t.byConn != nil {
		if t.byConnLen < len(t.Packets) {
			t.appendByConn()
		}
		return t.byConn
	}
	// First build, two passes: count per connection, then slice one backing
	// array into per-connection windows (in first-appearance order) and fill
	// them. This allocates exactly len(Packets) views once, instead of the
	// doubling churn of per-connection append growth.
	counts := make(map[int]int)
	for i := range t.Packets {
		counts[t.Packets[i].ConnID]++
	}
	backing := make([]packet.View, len(t.Packets))
	buf := make(map[int][]packet.View, len(counts))
	m := make(map[int][]packet.View, len(counts))
	off := 0
	for i := range t.Packets {
		id := t.Packets[i].ConnID
		s, ok := buf[id]
		if !ok {
			n := counts[id]
			s = backing[off : off : off+n]
			off += n
		}
		s = append(s, t.Packets[i])
		buf[id] = s
		m[id] = s // contiguous windows are born at full capacity
	}
	t.byConnBuf = buf
	t.byConn = m
	t.byConnLen = len(t.Packets)
	return m
}

// appendByConn advances the memo over Packets[byConnLen:]. Growth goes into
// byConnBuf with ordinary amortized append capacity (the first append to a
// full-capacity contiguous window reallocates that connection's slice away
// from the shared backing, so neighbors are never disturbed); the view map
// is re-clipped to full capacity per touched connection. Caller holds
// byConnMu.
func (t *Trace) appendByConn() {
	for i := t.byConnLen; i < len(t.Packets); i++ {
		id := t.Packets[i].ConnID
		buf := append(t.byConnBuf[id], t.Packets[i])
		t.byConnBuf[id] = buf
		t.byConn[id] = buf[:len(buf):len(buf)]
	}
	t.byConnLen = len(t.Packets)
}

// TruthRecord is the ground-truth identity of one chunk request, logged by
// the instrumented player (the stand-in for the paper's instrumented
// ExoPlayer, §6.2). CSI never sees this; the evaluation does.
type TruthRecord struct {
	ReqTime  float64        `json:"req_time"`
	DoneTime float64        `json:"done_time"`
	Ref      media.ChunkRef `json:"ref"`
	Kind     media.Type     `json:"kind"`
	Size     int64          `json:"size"`
}

// DisplayRecord says which video chunk was shown on screen and when —
// the information the paper extracts from stats-for-nerds overlays or OCR
// (§4.2). It is optionally available to CSI to prune candidates.
type DisplayRecord struct {
	Start float64 `json:"start"` // wall time the chunk began displaying
	End   float64 `json:"end"`
	Index int     `json:"index"`
	Track int     `json:"track"`
}

// StallRecord is a playback interruption.
type StallRecord struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Run bundles everything one streaming test produces.
type Run struct {
	Trace   *Trace          `json:"trace"`
	Truth   []TruthRecord   `json:"truth"`
	Display []DisplayRecord `json:"display"`
	Stalls  []StallRecord   `json:"stalls"`
}

// WriteJSON serializes the run to w.
func (r *Run) WriteJSON(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(r); err != nil {
		return fmt.Errorf("capture: encoding run: %w", err)
	}
	return nil
}

// SaveJSON writes the run to the named file.
func (r *Run) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("capture: saving run: %w", err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadJSON parses a run from r.
func ReadJSON(rd io.Reader) (*Run, error) {
	var r Run
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("capture: decoding run: %w", err)
	}
	if r.Trace == nil {
		return nil, fmt.Errorf("capture: run has no trace")
	}
	if r.Trace.SNI == nil {
		r.Trace.SNI = make(map[int]string)
	}
	if r.Trace.DNS == nil {
		r.Trace.DNS = make(map[string]string)
	}
	if r.Trace.ServerIP == nil {
		r.Trace.ServerIP = make(map[int]string)
	}
	return &r, nil
}

// LoadJSON reads a run from the named file.
func LoadJSON(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("capture: loading run: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
