//go:build race

package capture

// raceEnabled is true when the race detector is on; allocation-regression
// guards skip themselves then, since the detector's instrumentation
// allocates on paths that are allocation-free in normal builds.
const raceEnabled = true
