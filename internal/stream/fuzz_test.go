package stream

import (
	"bytes"
	"encoding/binary"
	"testing"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/packet"
)

// The monitor feeds on a frame stream from an untrusted capture tap — a
// malformed, truncated or adversarially interleaved stream must come back
// as decode errors and partial results, never a panic or a hung monitor.

// fuzzManifest is a tiny hand-built ladder: media.Encode is too slow for a
// fuzz executor, and the inference only needs *some* chunk sizes to chew on.
func fuzzManifest() *media.Manifest {
	return &media.Manifest{
		Name: "fuzz", Host: "media.example.com", ChunkDur: 5,
		Tracks: []media.Track{
			{ID: 0, Kind: media.Video, Bitrate: 1_000_000,
				Sizes: []int64{600_000, 640_000, 580_000, 610_000, 650_000, 590_000}},
			{ID: 1, Kind: media.Video, Bitrate: 3_000_000,
				Sizes: []int64{1_800_000, 1_900_000, 1_750_000, 1_820_000, 1_950_000, 1_780_000}},
		},
	}
}

func fuzzSeedFrames(tb testing.TB) []byte {
	tb.Helper()
	tr := capture.NewTrace()
	tap := tr.Tap()
	for i := 0; i < 6; i++ {
		tap(packet.View{
			Time: float64(i) * 0.5, ConnID: 1, Dir: packet.Up, Size: int64(100 + i),
			SNI: "media.example.com", ServerIP: "10.0.0.1",
		}, 0)
	}
	var buf bytes.Buffer
	if err := WriteFrames(&buf, Pack(map[string]*capture.Trace{"a": tr, "b": tr})); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWALRecord drives the WAL salvage scanner with arbitrary segment
// bytes: it must never panic, never read past the buffer, and whatever it
// salvages must re-encode to exactly the valid prefix it reported — the
// round trip that recovery's replay depends on. Seeds cover the shapes the
// crash matrix produces for real: torn writes, bit flips, zero-length
// records and oversized length prefixes.
func FuzzWALRecord(f *testing.F) {
	rec := func(seq uint64, payload string) []byte { return encodeWALRecord(seq, []byte(payload)) }
	valid := append(append(rec(1, `{"flow":"a"}`), rec(2, `{"flow":"b"}`)...), rec(3, `{"close":true}`)...)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])     // torn write
	f.Add(valid[:walHeaderBytes-2]) // torn inside the first header
	flipped := bytes.Clone(valid)
	flipped[walHeaderBytes+3] ^= 0x40 // bit flip in a payload
	f.Add(flipped)
	f.Add(append(bytes.Clone(valid), make([]byte, walHeaderBytes)...)) // zero-length record
	oversized := make([]byte, walHeaderBytes)
	binary.LittleEndian.PutUint32(oversized, walMaxRecordBytes+7) // implausible length prefix
	f.Add(append(bytes.Clone(valid), oversized...))
	gap := append(rec(1, "x"), rec(5, "y")...) // sequence gap
	f.Add(gap)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, torn, reason := scanSegment(data, 0)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(data))
		}
		if torn && reason != "" {
			t.Fatalf("torn tail also classified as corruption (%q)", reason)
		}
		// Round trip: the salvaged records re-encode to exactly the bytes
		// the scanner called valid.
		var reenc []byte
		for i, r := range recs {
			if len(r.payload) == 0 || len(r.payload) > walMaxRecordBytes {
				t.Fatalf("salvaged record %d has out-of-range payload length %d", i, len(r.payload))
			}
			if i > 0 && r.seq != recs[i-1].seq+1 {
				t.Fatalf("salvaged records not contiguous: %d after %d", r.seq, recs[i-1].seq)
			}
			reenc = append(reenc, encodeWALRecord(r.seq, r.payload)...)
		}
		if !bytes.Equal(reenc, data[:validLen]) {
			t.Fatalf("salvaged records re-encode to %d bytes differing from the %d-byte valid prefix", len(reenc), validLen)
		}
	})
}

// FuzzStreamIngest drives the full ingest surface — FrameReader decoding and
// a tiny-budget Monitor (2-flow table, ~4 KiB per-flow memory budget, instant
// idle eviction) — with arbitrary bytes. Truncated packets, unknown fields,
// interleaved and colliding flow names, out-of-order timestamps and
// mid-handshake eviction must all land as errors or partial results.
func FuzzStreamIngest(f *testing.F) {
	valid := fuzzSeedFrames(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-line
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"flow":"x","close":true}` + "\n"))
	f.Add([]byte(`{"flow":"x","packet":{"time":-1,"conn":-7,"len":-3,"sni":"\u0000"}}` + "\n"))
	// Out-of-order timestamps and an eviction-forcing third flow.
	f.Add([]byte(`{"flow":"a","packet":{"time":9,"conn":1,"len":100}}
{"flow":"b","packet":{"time":1,"conn":1,"len":100}}
{"flow":"c","packet":{"time":1e308,"conn":2,"len":1}}
{"flow":"a","packet":{"time":0.5,"conn":1,"len":100,"sni":"media.example.com"}}
{"flow":"a","close":true}
{"flow":"a","packet":{"time":2,"conn":1,"len":50}}
`))
	f.Add([]byte("not json at all\n{\"flow\":\"y\",\"packet\":{\"time\":1}}\n"))

	man := fuzzManifest()
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		var frames []Frame
		for len(frames) < 256 {
			fm, err := fr.Next()
			if err != nil {
				if err.Error() == "" {
					t.Fatal("empty error message")
				}
				break
			}
			frames = append(frames, fm)
		}
		if len(frames) == 0 {
			return
		}
		mon := New(Options{
			Manifest:      man,
			Params:        core.Params{MediaHost: man.Host, Degrade: true},
			MaxFlows:      2,
			FlowMemBudget: 4 << 10,
			RingSize:      8,
			ShedPolicy:    ShedBlock,
			ResolveEvery:  4,
			WorkBudget:    5_000,
			IdleEvictSec:  1,
			Workers:       2,
		})
		for _, fm := range frames {
			mon.Ingest(fm)
		}
		results := mon.Drain()
		// Every distinct flow name must surface exactly one result.
		want := map[string]bool{}
		for _, fm := range frames {
			want[fm.Flow] = true
		}
		got := map[string]bool{}
		for _, r := range results {
			if got[r.Flow] {
				t.Fatalf("duplicate result for flow %q", r.Flow)
			}
			got[r.Flow] = true
			if !want[r.Flow] {
				t.Fatalf("result for never-ingested flow %q", r.Flow)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("got %d results for %d flows", len(got), len(want))
		}
	})
}
