package stream

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"csi/internal/capture"
	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/session"
	"csi/internal/stream/crashpoint"
	"csi/internal/testleak"
)

// durTestFrames builds a small two-flow recording with close markers (so
// commits happen mid-stream, not only at drain).
func durTestFrames(t *testing.T, man *media.Manifest) []Frame {
	t.Helper()
	return Pack(map[string]*capture.Trace{
		"alpha": testSession(t, man, session.SH, 51, 35),
		"beta":  testSession(t, man, session.SH, 52, 25),
	})
}

func feedFrom(mon *Monitor, frames []Frame, resume uint64) {
	for i := int(resume); i < len(frames); i++ {
		mon.Ingest(frames[i])
	}
}

// TestDurableGracefulDrainSkipsReplay pins the SIGTERM satellite: a durable
// run that drains cleanly leaves a final snapshot and an empty WAL, so the
// restart resumes past the whole recording, re-solves nothing, and still
// serializes byte-identically.
func TestDurableGracefulDrainSkipsReplay(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	frames := durTestFrames(t, man)
	dir := t.TempDir()

	opts := replayOpts(man, false)
	d, err := OpenDurability(dir, DurabilityOptions{SnapshotEvery: 512})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recover(d, opts)
	if rec.Resume != 0 || rec.Replayed != 0 || len(rec.Warnings) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	feedFrom(rec.Monitor, frames, rec.Resume)
	want := marshalResults(t, rec.Monitor.Drain())

	if segs, _ := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix)); len(segs) != 0 {
		t.Fatalf("graceful drain left WAL segments: %v", segs)
	}
	if snaps, _ := filepath.Glob(filepath.Join(dir, snapPrefix+"*"+snapSuffix)); len(snaps) == 0 {
		t.Fatal("graceful drain left no snapshot")
	}

	opts2 := replayOpts(man, false)
	opts2.Obs = obs.New(nil, nil)
	d2, err := OpenDurability(dir, DurabilityOptions{SnapshotEvery: 512})
	if err != nil {
		t.Fatal(err)
	}
	rec2 := Recover(d2, opts2)
	if rec2.Resume != uint64(len(frames)) {
		t.Fatalf("Resume = %d, want %d (whole recording)", rec2.Resume, len(frames))
	}
	if rec2.Replayed != 0 {
		t.Fatalf("clean restart replayed %d WAL frames, want 0", rec2.Replayed)
	}
	feedFrom(rec2.Monitor, frames, rec2.Resume) // no-op: resume covers everything
	got := marshalResults(t, rec2.Monitor.Drain())
	if !bytes.Equal(got, want) {
		t.Fatalf("restart output diverged:\nrestart:\n%s\nfirst run:\n%s", got, want)
	}
	if solves := opts2.Obs.Metrics().Counter("stream.solves_total").Value(); solves != 0 {
		t.Fatalf("clean restart ran %d solves, want 0", solves)
	}
}

// TestRecoverWALTail pins WAL-only recovery (a crash before any snapshot):
// the salvaged records replay, the input resumes past them, and the drained
// output is byte-identical to the uninterrupted batch reference.
func TestRecoverWALTail(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	frames := durTestFrames(t, man)
	k := len(frames) / 2
	dir := t.TempDir()

	d, err := OpenDurability(dir, DurabilityOptions{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		d.appendFrame(uint64(i+1), &frames[i])
	}
	// No close: the process "dies" here with the WAL as its only legacy.

	opts := replayOpts(man, false)
	d2, err := OpenDurability(dir, DurabilityOptions{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Warnings()) != 0 {
		t.Fatalf("clean WAL produced warnings: %v", d2.Warnings())
	}
	rec := Recover(d2, opts)
	if rec.Resume != uint64(k) || rec.Replayed != k {
		t.Fatalf("Resume=%d Replayed=%d, want %d/%d", rec.Resume, rec.Replayed, k, k)
	}
	feedFrom(rec.Monitor, frames, rec.Resume)
	got := marshalResults(t, rec.Monitor.Drain())
	want := marshalResults(t, Batch(frames, replayOpts(man, false)))
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered output diverged from batch:\nrecovered:\n%s\nbatch:\n%s", got, want)
	}
}

// TestRecoverCorruptWALSalvages pins the mid-log corruption path end to
// end: a bit flip inside the WAL surfaces a structured warning, the valid
// prefix replays, and re-feeding the lost suffix converges to the same
// bytes as the uninterrupted run.
func TestRecoverCorruptWALSalvages(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	frames := durTestFrames(t, man)
	k := len(frames) / 2
	dir := t.TempDir()

	d, err := OpenDurability(dir, DurabilityOptions{SyncPolicy: SyncAlways, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		d.appendFrame(uint64(i+1), &frames[i])
	}
	segs, _ := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	sortSegPaths(segs)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments for a mid-log flip, got %d", len(segs))
	}
	mid := segs[len(segs)/2]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDurability(dir, DurabilityOptions{SyncPolicy: SyncAlways, SegmentBytes: 4096})
	if err != nil {
		t.Fatalf("corrupt WAL must salvage, not fail: %v", err)
	}
	var sawCorrupt bool
	for _, w := range d2.Warnings() {
		if w.Code == "wal_corrupt" {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatalf("no wal_corrupt warning; got %v", d2.Warnings())
	}
	rec := Recover(d2, replayOpts(man, false))
	if rec.Resume >= uint64(k) {
		t.Fatalf("Resume=%d past the corruption (flip landed before record %d)", rec.Resume, k)
	}
	feedFrom(rec.Monitor, frames, rec.Resume)
	got := marshalResults(t, rec.Monitor.Drain())
	want := marshalResults(t, Batch(frames, replayOpts(man, false)))
	if !bytes.Equal(got, want) {
		t.Fatalf("salvaged output diverged from batch:\nsalvaged:\n%s\nbatch:\n%s", got, want)
	}
}

// TestRecoverTornWALTailWarns pins the crash-mid-append shape through
// OpenDurability: a partial record at the tail is dropped with a
// wal_truncated_tail warning and the prefix replays.
func TestRecoverTornWALTailWarns(t *testing.T) {
	man := testManifest(t, session.SH)
	frames := durTestFrames(t, man)
	dir := t.TempDir()
	d, err := OpenDurability(dir, DurabilityOptions{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.appendFrame(uint64(i+1), &frames[i])
	}
	if _, err := d.w.f.Write([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDurability(dir, DurabilityOptions{SyncPolicy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Warnings()) != 1 || d2.Warnings()[0].Code != "wal_truncated_tail" {
		t.Fatalf("warnings = %v, want one wal_truncated_tail", d2.Warnings())
	}
	if d2.baseSeq != 3 {
		t.Fatalf("baseSeq = %d, want 3", d2.baseSeq)
	}
}

// TestSnapshotCorruptFallback pins the snapshot chain: a damaged newest
// snapshot falls back to its predecessor with a structured warning; with
// every snapshot damaged, recovery proceeds from nothing.
func TestSnapshotCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	if _, err := writeSnapshotFile(dir, &Snapshot{Version: snapshotVersion, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := writeSnapshotFile(dir, &Snapshot{Version: snapshotVersion, Seq: 4}); err != nil {
		t.Fatal(err)
	}
	smash := func(seq uint64) {
		path := filepath.Join(dir, snapName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	smash(4)
	d, err := OpenDurability(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.snap == nil || d.snap.Seq != 2 {
		t.Fatalf("fallback snapshot = %+v, want seq 2", d.snap)
	}
	if len(d.Warnings()) != 1 || d.Warnings()[0].Code != "snapshot_corrupt" {
		t.Fatalf("warnings = %v, want one snapshot_corrupt", d.Warnings())
	}

	smash(2)
	d, err = OpenDurability(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.snap != nil {
		t.Fatalf("both snapshots corrupt but one loaded: %+v", d.snap)
	}
	if len(d.Warnings()) != 2 {
		t.Fatalf("warnings = %v, want two snapshot_corrupt", d.Warnings())
	}
}

// TestSnapshotRoundTrip pins the snapshot codec itself.
func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{
		Version: snapshotVersion, Seq: 17, FinalSeq: 2, VNow: 44.5,
		Closed: []string{"a", "b"},
		Flows:  []FlowSnap{{Name: "c", LastSeq: 16}},
	}
	buf, err := encodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != s.Seq || got.FinalSeq != s.FinalSeq || got.VNow != s.VNow ||
		len(got.Closed) != 2 || len(got.Flows) != 1 || got.Flows[0].Name != "c" {
		t.Fatalf("round trip = %+v", got)
	}
	for _, cut := range []int{5, 19, len(buf) - 1} {
		if _, err := decodeSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", cut)
		}
	}
	buf[25] ^= 0xff
	if _, err := decodeSnapshot(buf); err == nil {
		t.Fatal("payload bit flip not detected")
	}
}

// --- subprocess crash matrix -------------------------------------------

const (
	envCrashHelper = "STREAM_CRASH_HELPER"
	envCrashSpec   = "STREAM_CRASHPOINT"
	envStateDir    = "STREAM_STATE_DIR"
	envManifest    = "STREAM_MANIFEST"
	envFrames      = "STREAM_FRAMES"
	envOut         = "STREAM_OUT"
)

// TestCrashHelper is the re-exec target of TestCrashMatrix: a miniature
// durable replay daemon (open state dir, recover, feed the recording past
// Resume, drain, write results). Armed via STREAM_CRASHPOINT it dies with
// crashpoint.ExitCode at the configured boundary.
func TestCrashHelper(t *testing.T) {
	if os.Getenv(envCrashHelper) == "" {
		t.Skip("crash-matrix helper (driven by TestCrashMatrix)")
	}
	if err := crashpoint.Arm(os.Getenv(envCrashSpec)); err != nil {
		t.Fatal(err)
	}
	man, err := media.LoadManifestFile(os.Getenv(envManifest), "")
	if err != nil {
		t.Fatal(err)
	}
	ff, err := os.Open(os.Getenv(envFrames))
	if err != nil {
		t.Fatal(err)
	}
	frames, err := ReadFrames(ff)
	ff.Close()
	if err != nil {
		t.Fatal(err)
	}
	d, err := OpenDurability(os.Getenv(envStateDir), DurabilityOptions{
		SyncPolicy: SyncInterval, SyncEvery: 64, SnapshotEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recover(d, replayOpts(man, false))
	feedFrom(rec.Monitor, frames, rec.Resume)
	results := rec.Monitor.Drain()
	out, err := os.Create(os.Getenv(envOut))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteResults(out, results); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrix is the tentpole gate in miniature: for every crashpoint
// in the inventory, kill a durable replay at that boundary, recover against
// the same state directory, and require output byte-identical to an
// uninterrupted run over the same frames.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 2 subprocesses per crashpoint")
	}
	man := testManifest(t, session.SH)
	frames := durTestFrames(t, man)
	golden := marshalResults(t, replayThrough(t, frames, replayOpts(man, false)))

	fixtures := t.TempDir()
	manifestPath := filepath.Join(fixtures, "man.json")
	if err := man.SaveJSON(manifestPath); err != nil {
		t.Fatal(err)
	}
	framesPath := filepath.Join(fixtures, "frames.jsonl")
	ff, err := os.Create(framesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrames(ff, frames); err != nil {
		t.Fatal(err)
	}
	if err := ff.Close(); err != nil {
		t.Fatal(err)
	}

	// Mid-stream hits for the per-frame points; first hit for the rest.
	hits := map[string]int{
		"wal.pre_append":  len(frames) / 2,
		"wal.post_append": len(frames) / 2,
	}

	runHelper := func(t *testing.T, stateDir, outPath, spec string) (int, string) {
		t.Helper()
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			envCrashHelper+"=1", envCrashSpec+"="+spec,
			envStateDir+"="+stateDir, envManifest+"="+manifestPath,
			envFrames+"="+framesPath, envOut+"="+outPath,
		)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		code := 0
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("running helper: %v", err)
			}
			code = ee.ExitCode()
		}
		return code, buf.String()
	}

	for _, pt := range crashpoint.Points {
		t.Run(pt, func(t *testing.T) {
			stateDir := t.TempDir()
			outPath := filepath.Join(stateDir, "out.jsonl")
			spec := pt
			if n := hits[pt]; n > 1 {
				spec = fmt.Sprintf("%s@%d", pt, n)
			}
			code, log := runHelper(t, stateDir, outPath, spec)
			if code != crashpoint.ExitCode {
				t.Fatalf("crash run exited %d, want %d\n%s", code, crashpoint.ExitCode, log)
			}
			code, log = runHelper(t, stateDir, outPath, "")
			if code != 0 {
				t.Fatalf("recovery run exited %d\n%s", code, log)
			}
			got, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, golden) {
				t.Fatalf("recovered output diverged from uninterrupted run:\nrecovered:\n%s\ngolden:\n%s", got, golden)
			}
		})
	}
}
