package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"csi/internal/core"
	"csi/internal/obs"
	"csi/internal/stream/crashpoint"
)

// crashpointHere marks a durability boundary for the crash-injection
// harness; disarmed it is one atomic load.
func crashpointHere(name string) { crashpoint.Here(name) }

// DurabilityOptions configures a state directory (csi-monitord -state-dir).
type DurabilityOptions struct {
	// SyncPolicy is SyncAlways, SyncInterval (default) or SyncNever.
	SyncPolicy string
	// SyncEvery is the fsync cadence in frames under SyncInterval
	// (default 256).
	SyncEvery int
	// SegmentBytes rotates WAL segments at this size (default 8 MiB).
	SegmentBytes int64
	// SnapshotEvery attempts a snapshot after this many WAL'd frames
	// (default 4096); the snapshot lands at the next quiescent point.
	SnapshotEvery int
	// Obs receives the durability counters and gauges (stream.wal_*,
	// stream.snapshot*, stream.recoveries_total); nil disables.
	Obs *obs.Tracer
}

func (o DurabilityOptions) withDefaults() DurabilityOptions {
	if o.SyncPolicy == "" {
		o.SyncPolicy = SyncInterval
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = defaultSyncEvery
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 4096
	}
	return o
}

// Durability is a monitor's crash-safety layer over one state directory:
// the frame WAL plus periodic snapshots (DESIGN.md §13). OpenDurability
// recovers whatever a previous process left behind; Recover seeds a monitor
// from it; the monitor then calls appendFrame before applying each new
// frame and writeSnapshot at quiescent points.
//
// All append/snapshot methods run on the monitor's control goroutine;
// Status is safe from any goroutine (the live /statusz plane).
type Durability struct {
	dir  string
	opts DurabilityOptions
	w    *wal

	// Recovered state, consumed by Recover.
	snap      *Snapshot
	tail      []walRecord
	baseSeq   uint64 // frames durable at open: max(snapshot seq, WAL last seq)
	restored  int    // results carried in the snapshot
	recovered bool   // open found prior durable state to recover
	warns     []core.Warning

	// mu guards the fields below (written by the control goroutine, read
	// by Status from the live plane).
	mu          sync.Mutex
	snaps       []string // live snapshot paths, oldest first
	sinceSync   int      // frames appended since the last fsync
	sinceSnap   int      // frames appended since the last snapshot
	lastSnapSeq uint64
	walBytes    int64
	failed      bool
	lastErr     string

	cWALBytes   *obs.Counter
	cWALAppends *obs.Counter
	cWALFsyncs  *obs.Counter
	cWALErrors  *obs.Counter
	cSnapshots  *obs.Counter
	cRecoveries *obs.Counter
	gSnapAge    *obs.Gauge
	gWALLag     *obs.Gauge
}

// OpenDurability opens (creating if needed) a state directory and recovers
// its contents: the newest verifiable snapshot, the salvageable WAL suffix
// past it, and structured warnings for any damage survived along the way.
// This is the durability layer's only directory enumeration; wal.go and
// snapshot.go operate on the paths discovered here.
func OpenDurability(dir string, o DurabilityOptions) (*Durability, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: creating state dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("stream: listing state dir: %w", err)
	}
	var segPaths, snapPaths []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Leftover of an interrupted snapshot write: never renamed, so
			// never authoritative.
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, walSegSuffix):
			if _, ok := segSeq(name); ok {
				segPaths = append(segPaths, filepath.Join(dir, name))
			}
		case strings.HasSuffix(name, snapSuffix):
			if _, ok := snapSeqOf(name); ok {
				snapPaths = append(snapPaths, filepath.Join(dir, name))
			}
		}
	}
	sortSegPaths(segPaths)
	sort.Strings(snapPaths) // zero-padded seq: lexical == numeric

	reg := o.Obs.Metrics()
	d := &Durability{
		dir: dir, opts: o, snaps: snapPaths,
		cWALBytes:   reg.Counter("stream.wal_bytes"),
		cWALAppends: reg.Counter("stream.wal_appends"),
		cWALFsyncs:  reg.Counter("stream.wal_fsyncs"),
		cWALErrors:  reg.Counter("stream.wal_errors"),
		cSnapshots:  reg.Counter("stream.snapshots_total"),
		cRecoveries: reg.Counter("stream.recoveries_total"),
		gSnapAge:    reg.Gauge("stream.snapshot_age_frames"),
		gWALLag:     reg.Gauge("stream.wal_lag_frames"),
	}

	snap, snapWarns := loadLatestSnapshot(snapPaths)
	d.warns = append(d.warns, snapWarns...)
	var snapSeq uint64
	if snap != nil {
		snapSeq = snap.Seq
		d.restored = len(snap.Results)
	}

	w, recs, torn, corrupt, err := openWAL(dir, segPaths, o.SegmentBytes)
	if err != nil {
		return nil, err
	}
	d.w = w
	if corrupt != nil {
		d.warns = append(d.warns, core.Warning{Code: "wal_corrupt", Detail: corrupt.Error()})
	} else if torn {
		d.warns = append(d.warns, core.Warning{Code: "wal_truncated_tail",
			Detail: "incomplete record at the wal tail dropped (crash mid-append); the valid prefix replays"})
	}

	// Drop records the snapshot already covers; what remains is the replay
	// tail and must continue the snapshot's sequence without a gap.
	tail := recs
	for len(tail) > 0 && tail[0].seq <= snapSeq {
		tail = tail[1:]
	}
	if len(tail) > 0 && tail[0].seq != snapSeq+1 {
		if snap == nil {
			// No snapshot to anchor a WAL that starts past frame 1: the
			// prefix is unrecoverable and silently wrong output is worse
			// than refusing.
			return nil, fmt.Errorf("stream: wal starts at seq %d with no usable snapshot covering the prefix", tail[0].seq)
		}
		// Disjoint tail (cannot arise from a crash; only external damage):
		// the snapshot is authoritative, the tail is unusable.
		d.warns = append(d.warns, core.Warning{Code: "wal_gap",
			Detail: fmt.Sprintf("wal resumes at seq %d but snapshot covers through %d; dropping %d unanchored records", tail[0].seq, snapSeq, len(tail))})
		if err := w.truncateThrough(w.lastSeq); err != nil {
			return nil, err
		}
		w.lastSeq = snapSeq
		tail = nil
	}

	d.snap = snap
	d.tail = tail
	d.baseSeq = snapSeq
	if w.lastSeq > d.baseSeq {
		d.baseSeq = w.lastSeq
	}
	d.lastSnapSeq = snapSeq
	d.walBytes = w.totalBytes()
	d.sinceSnap = len(tail)
	if snap != nil || len(recs) > 0 || torn || corrupt != nil {
		d.recovered = true
		d.cRecoveries.Inc()
	}
	d.cWALBytes.Add(d.walBytes)
	d.gSnapAge.Set(float64(d.sinceSnap))
	d.gWALLag.Set(0)
	return d, nil
}

// RestoredResults reports how many committed results the recovered snapshot
// carries — the daemon uses it to suppress re-emission of results already
// written before the crash.
func (d *Durability) RestoredResults() int { return d.restored }

// Warnings reports the damage survived during recovery (corrupt snapshots
// fallen past, torn or corrupt WAL tails salvaged).
func (d *Durability) Warnings() []core.Warning { return d.warns }

// fail degrades the layer to non-durable: the monitor keeps running (losing
// ingest over a full disk would turn a durability feature into an outage)
// but the condition is counted, surfaced on /statusz, and recovery from
// this directory is no longer promised.
func (d *Durability) fail(err error) {
	d.cWALErrors.Inc()
	d.mu.Lock()
	d.failed = true
	d.lastErr = err.Error()
	d.mu.Unlock()
}

// appendFrame logs one accepted frame before the monitor applies it.
// Called by handleFrame on the control goroutine for every frame past
// baseSeq.
func (d *Durability) appendFrame(seq uint64, f *Frame) {
	d.mu.Lock()
	failed := d.failed
	d.mu.Unlock()
	if failed {
		return
	}
	crashpointHere("wal.pre_append")
	payload, err := json.Marshal(f)
	if err != nil {
		d.fail(fmt.Errorf("stream: encoding wal frame: %w", err))
		return
	}
	n, err := d.w.append(seq, payload)
	if err != nil {
		d.fail(err)
		return
	}
	d.cWALBytes.Add(int64(n))
	d.cWALAppends.Inc()
	sync := d.opts.SyncPolicy == SyncAlways
	d.mu.Lock()
	d.walBytes += int64(n)
	d.sinceSync++
	d.sinceSnap++
	if d.opts.SyncPolicy == SyncInterval && d.sinceSync >= d.opts.SyncEvery {
		sync = true
	}
	d.mu.Unlock()
	if sync {
		if err := d.w.sync(); err != nil {
			d.fail(err)
			return
		}
		d.cWALFsyncs.Inc()
		d.mu.Lock()
		d.sinceSync = 0
		d.mu.Unlock()
	}
	d.mu.Lock()
	d.gWALLag.Set(float64(d.sinceSync))
	d.gSnapAge.Set(float64(d.sinceSnap))
	d.mu.Unlock()
	crashpointHere("wal.post_append")
}

// snapshotDue reports whether enough frames accumulated since the last
// snapshot; the monitor then snapshots at its next quiescent point.
func (d *Durability) snapshotDue() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.failed && d.sinceSnap >= d.opts.SnapshotEvery
}

// writeSnapshot persists a snapshot, prunes old ones past snapKeep, and
// truncates the WAL prefix the snapshot now covers. Control goroutine only.
func (d *Durability) writeSnapshot(s *Snapshot) {
	d.mu.Lock()
	failed := d.failed
	d.mu.Unlock()
	if failed {
		return
	}
	path, err := writeSnapshotFile(d.dir, s)
	if err != nil {
		d.fail(err)
		return
	}
	d.mu.Lock()
	d.snaps = append(d.snaps, path)
	var prune []string
	for len(d.snaps) > snapKeep {
		prune = append(prune, d.snaps[0])
		d.snaps = d.snaps[1:]
	}
	d.mu.Unlock()
	for _, p := range prune {
		// Best effort: a lingering old snapshot is shadowed by name order.
		_ = os.Remove(p)
	}
	if err := d.w.truncateThrough(s.Seq); err != nil {
		d.fail(err)
		return
	}
	d.cSnapshots.Inc()
	d.mu.Lock()
	d.lastSnapSeq = s.Seq
	d.sinceSnap = 0
	d.sinceSync = 0
	d.walBytes = d.w.totalBytes()
	d.gSnapAge.Set(0)
	d.gWALLag.Set(0)
	d.mu.Unlock()
}

// close seals the WAL (final fsync). Control goroutine only; idempotent.
func (d *Durability) close() {
	if err := d.w.close(); err != nil {
		d.fail(err)
	}
}

// DurabilityStatus is the /statusz durability section.
type DurabilityStatus struct {
	Dir               string `json:"dir"`
	SyncPolicy        string `json:"sync_policy"`
	SyncEvery         int    `json:"sync_every,omitempty"`
	WALBytes          int64  `json:"wal_bytes"`
	WALLagFrames      int    `json:"wal_lag_frames"`
	SnapshotAgeFrames int    `json:"snapshot_age_frames"`
	LastSnapshotSeq   uint64 `json:"last_snapshot_seq"`
	// Recoveries counts this process's recoveries from prior durable
	// state: 0 on a fresh start, 1 when the open salvaged anything (the
	// lifetime total across restarts is stream.recoveries_total scraped
	// externally).
	Recoveries       int    `json:"recoveries"`
	RestoredResults  int    `json:"restored_results,omitempty"`
	RecoveryWarnings int    `json:"recovery_warnings,omitempty"`
	Failed           bool   `json:"failed,omitempty"`
	LastError        string `json:"last_error,omitempty"`
}

// Status snapshots the durability state for the live /statusz page. Safe
// from any goroutine; reads no wall clock (ages are frame-based).
func (d *Durability) Status() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	recoveries := 0
	if d.recovered {
		recoveries = 1
	}
	return DurabilityStatus{
		Dir:               d.dir,
		SyncPolicy:        d.opts.SyncPolicy,
		SyncEvery:         d.opts.SyncEvery,
		WALBytes:          d.walBytes,
		WALLagFrames:      d.sinceSync,
		SnapshotAgeFrames: d.sinceSnap,
		LastSnapshotSeq:   d.lastSnapSeq,
		Recoveries:        recoveries,
		RestoredResults:   d.restored,
		RecoveryWarnings:  len(d.warns),
		Failed:            d.failed,
		LastError:         d.lastErr,
	}
}

// Recovered is the outcome of seeding a monitor from a state directory.
type Recovered struct {
	// Monitor is live and has already re-applied the WAL tail.
	Monitor *Monitor
	// Resume is the number of input frames the durable state already
	// covers: a replay feed skips this many frames and continues.
	Resume uint64
	// Replayed is how many WAL tail frames were re-applied past the
	// snapshot.
	Replayed int
	// RestoredResults is how many committed results the snapshot carried.
	RestoredResults int
	// Warnings is the damage survived during recovery.
	Warnings []core.Warning
}

// Recover starts a monitor seeded from the state directory: the snapshot
// restores the flow table and committed results, then the WAL tail frames
// are re-applied through the normal ingest path (blocking — recovery never
// sheds). New frames append to the WAL as usual; tail frames do not (they
// are already in it).
func Recover(d *Durability, opts Options) *Recovered {
	// Decode the tail before the monitor starts, so baseSeq is final
	// before any goroutine reads it.
	frames := make([]Frame, 0, len(d.tail))
	for _, rec := range d.tail {
		var f Frame
		if err := json.Unmarshal(rec.payload, &f); err != nil {
			// CRC-clean but unparseable: corruption the checksum cannot
			// see. Salvage stops here; the records behind it are
			// unanchored, and the on-disk log is no longer consistent
			// with what replays — degrade to non-durable.
			d.warns = append(d.warns, core.Warning{Code: "wal_corrupt",
				Detail: fmt.Sprintf("wal record seq %d undecodable (%v); dropping the rest of the tail", rec.seq, err)})
			d.baseSeq = rec.seq - 1
			d.fail(fmt.Errorf("stream: wal record seq %d undecodable", rec.seq))
			break
		}
		frames = append(frames, f)
	}
	d.tail = nil
	opts.Durable = d
	opts.restore = d.snap
	m := New(opts)
	for _, f := range frames {
		m.ring <- f // pre-drain, control loop live: always delivered
	}
	return &Recovered{
		Monitor:         m,
		Resume:          d.baseSeq,
		Replayed:        len(frames),
		RestoredResults: d.restored,
		Warnings:        d.warns,
	}
}
