package stream

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// The FrameReader's diagnostics are part of the durability story: when a
// recording is damaged, the error must say exactly where (line, byte
// offset), and a crash-truncated tail must be distinguishable from
// corruption so recovery can tolerate the former while batch loading
// rejects both.

func TestFrameReaderDecodeErrorPosition(t *testing.T) {
	in := `{"flow":"a","packet":{"time":1,"conn":1,"len":10}}
{"flow":"b","close":true}
not json at all
{"flow":"c","close":true}
`
	fr := NewFrameReader(strings.NewReader(in))
	for i := 0; i < 2; i++ {
		if _, err := fr.Next(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	_, err := fr.Next()
	if err == nil {
		t.Fatal("decode of garbage line succeeded")
	}
	wantOffset := int64(len(`{"flow":"a","packet":{"time":1,"conn":1,"len":10}}` + "\n" + `{"flow":"b","close":true}` + "\n"))
	if fr.Line() != 3 || fr.Offset() != wantOffset {
		t.Fatalf("damage reported at line %d offset %d, want line 3 offset %d", fr.Line(), fr.Offset(), wantOffset)
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "byte offset 77") {
		t.Fatalf("error lacks position: %v", err)
	}
	if errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("mid-stream corruption classified as truncated tail: %v", err)
	}
	// Errors are sticky: the valid frame after the damage is unreachable.
	if _, err2 := fr.Next(); err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("error not sticky: %v", err2)
	}
}

func TestFrameReaderTruncatedTail(t *testing.T) {
	in := `{"flow":"a","packet":{"time":1,"conn":1,"len":10}}
{"flow":"a","clo`
	fr := NewFrameReader(strings.NewReader(in))
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := fr.Next()
	if !errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("truncated final line not ErrTruncatedTail: %v", err)
	}
	if fr.Line() != 2 {
		t.Fatalf("truncation reported at line %d, want 2", fr.Line())
	}
	// Batch loading still fails loudly on the same stream.
	if _, err := ReadFrames(strings.NewReader(in)); !errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("ReadFrames tolerated a truncated tail: %v", err)
	}
}

func TestFrameReaderFinalLineWithoutNewline(t *testing.T) {
	// A complete record missing only its newline is a clean end of stream,
	// not a truncated tail: the crash happened after the payload landed.
	in := `{"flow":"a","packet":{"time":1,"conn":1,"len":10}}
{"flow":"a","close":true}`
	frames, err := ReadFrames(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || !frames[1].Close {
		t.Fatalf("got %d frames, want 2 ending in close", len(frames))
	}
}

func TestFrameReaderSkipsBlankLines(t *testing.T) {
	in := "\n{\"flow\":\"a\",\"close\":true}\n\n   \n{\"flow\":\"b\",\"close\":true}\n\n"
	fr := NewFrameReader(strings.NewReader(in))
	f1, err := fr.Next()
	if err != nil || f1.Flow != "a" {
		t.Fatalf("first frame %+v, %v", f1, err)
	}
	if fr.Line() != 2 {
		t.Fatalf("first frame on line %d, want 2", fr.Line())
	}
	f2, err := fr.Next()
	if err != nil || f2.Flow != "b" {
		t.Fatalf("second frame %+v, %v", f2, err)
	}
	if fr.Line() != 5 {
		t.Fatalf("second frame on line %d, want 5", fr.Line())
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of blank-padded stream: %v", err)
	}
}

func TestFrameReaderEmptyStream(t *testing.T) {
	fr := NewFrameReader(strings.NewReader(""))
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("EOF not sticky: %v", err)
	}
}
