// Package stream is the live-monitoring plane of CSI: a long-running
// monitor that ingests an interleaved multi-flow packet stream and runs the
// core inference pipeline incrementally over each flow as it grows, instead
// of once over a finished capture. The robustness envelope — bounded ingest
// ring with shedding, per-flow memory budgets with LRU eviction, per-solve
// guard budgets with panic containment and quarantine, graceful drain — is
// the point: one hostile or pathological flow degrades to a partial result
// with structured warnings while its siblings keep streaming.
//
// Determinism contract: a monitor configured for replay (blocking ingest,
// no eviction, nil Clock) produces byte-identical results to the batch
// pipeline (Batch) over the same frame sequence. The incremental machinery
// — capture.Trace's ByConn append path, core's EstimateMemo, the shared
// HalfCache — is exactly the machinery whose warm/cold byte-identity the
// core packages pin, so mid-flow provisional solves can run at any cadence
// (or be skipped under load) without changing any final inference.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"csi/internal/capture"
	"csi/internal/packet"
)

// Frame is one element of the monitor's ingest stream: a packet observed on
// a named flow, or a close marker ending the flow (the streaming analogue
// of a capture file ending). The JSONL encoding is the daemon's wire
// format.
type Frame struct {
	Flow  string `json:"flow"`
	Close bool   `json:"close,omitempty"`
	// Packet is the observed packet view; zero-valued on close frames.
	Packet packet.View `json:"packet"`
}

// WriteFrames encodes frames as JSONL.
func WriteFrames(w io.Writer, frames []Frame) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			return fmt.Errorf("stream: encoding frame %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: writing frames: %w", err)
	}
	return nil
}

// FrameReader decodes a JSONL frame stream incrementally.
type FrameReader struct {
	dec  *json.Decoder
	line int
}

// NewFrameReader reads frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Next returns the next frame, io.EOF at end of stream, or a decode error
// for malformed input (the caller decides whether to skip or stop; the
// daemon stops, the fuzzer asserts it never panics).
func (fr *FrameReader) Next() (Frame, error) {
	var f Frame
	fr.line++
	if err := fr.dec.Decode(&f); err != nil {
		if err == io.EOF {
			return f, io.EOF
		}
		return f, fmt.Errorf("stream: frame %d: %w", fr.line, err)
	}
	return f, nil
}

// ReadFrames decodes an entire JSONL stream.
func ReadFrames(r io.Reader) ([]Frame, error) {
	fr := NewFrameReader(r)
	var out []Frame
	for {
		f, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
}

// Pack merges named capture runs into one interleaved frame stream ordered
// by capture timestamp (ties broken by flow name, then by per-flow packet
// order), with a close marker directly after each flow's last packet. This
// is how recorded single-flow captures become a deterministic multi-flow
// ingest recording for replay and tests.
func Pack(runs map[string]*capture.Trace) []Frame {
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)

	idx := make([]int, len(names))
	var out []Frame
	for {
		best := -1
		for i, name := range names {
			pkts := runs[name].Packets
			if idx[i] >= len(pkts) {
				continue
			}
			if best < 0 || pkts[idx[i]].Time < runs[names[best]].Packets[idx[best]].Time {
				best = i
			}
		}
		if best < 0 {
			break
		}
		name := names[best]
		out = append(out, Frame{Flow: name, Packet: runs[name].Packets[idx[best]]})
		idx[best]++
		if idx[best] == len(runs[name].Packets) {
			out = append(out, Frame{Flow: name, Close: true})
		}
	}
	// Close markers for empty traces, in name order.
	for i, name := range names {
		if len(runs[name].Packets) == 0 && idx[i] == 0 {
			out = append(out, Frame{Flow: name, Close: true})
		}
	}
	return out
}
