// Package stream is the live-monitoring plane of CSI: a long-running
// monitor that ingests an interleaved multi-flow packet stream and runs the
// core inference pipeline incrementally over each flow as it grows, instead
// of once over a finished capture. The robustness envelope — bounded ingest
// ring with shedding, per-flow memory budgets with LRU eviction, per-solve
// guard budgets with panic containment and quarantine, graceful drain — is
// the point: one hostile or pathological flow degrades to a partial result
// with structured warnings while its siblings keep streaming.
//
// Determinism contract: a monitor configured for replay (blocking ingest,
// no eviction, nil Clock) produces byte-identical results to the batch
// pipeline (Batch) over the same frame sequence. The incremental machinery
// — capture.Trace's ByConn append path, core's EstimateMemo, the shared
// HalfCache — is exactly the machinery whose warm/cold byte-identity the
// core packages pin, so mid-flow provisional solves can run at any cadence
// (or be skipped under load) without changing any final inference.
package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"csi/internal/capture"
	"csi/internal/packet"
)

// Frame is one element of the monitor's ingest stream: a packet observed on
// a named flow, or a close marker ending the flow (the streaming analogue
// of a capture file ending). The JSONL encoding is the daemon's wire
// format.
type Frame struct {
	Flow  string `json:"flow"`
	Close bool   `json:"close,omitempty"`
	// Packet is the observed packet view; zero-valued on close frames.
	Packet packet.View `json:"packet"`
}

// WriteFrames encodes frames as JSONL.
func WriteFrames(w io.Writer, frames []Frame) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			return fmt.Errorf("stream: encoding frame %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: writing frames: %w", err)
	}
	return nil
}

// ErrTruncatedTail marks a stream that ends mid-record: the final line is
// incomplete (no terminating newline, not parseable). It is the expected
// shape of a crash mid-write, so recovery-minded readers tolerate it —
// errors.Is(err, ErrTruncatedTail) — and treat it as end of the valid
// prefix, while batch loading still fails loudly.
var ErrTruncatedTail = errors.New("truncated tail")

// FrameReader decodes a JSONL frame stream incrementally, line by line, so
// every error can say exactly where the damage is.
type FrameReader struct {
	br       *bufio.Reader
	line     int    // 1-based line of the last read attempt
	offset   int64  // byte offset of the start of that line
	lastLine []byte // bytes consumed for the previous line (offset bookkeeping)
	err      error  // sticky terminal error
}

// NewFrameReader reads frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReader(r)}
}

// Line reports the 1-based line number of the most recent Next call.
func (fr *FrameReader) Line() int { return fr.line }

// Offset reports the byte offset where the most recent Next's line began.
func (fr *FrameReader) Offset() int64 { return fr.offset }

// Next returns the next frame, io.EOF at a clean end of stream, or a decode
// error carrying the line number and byte offset of the damage. A final
// line that ends mid-record (no newline, unparseable) wraps
// ErrTruncatedTail so recovery paths can distinguish a crash-truncated
// recording from corruption. Blank lines are skipped. Errors are terminal:
// after any non-nil error every further Next repeats it.
func (fr *FrameReader) Next() (Frame, error) {
	var f Frame
	if fr.err != nil {
		return f, fr.err
	}
	for {
		fr.offset += int64(len(fr.lastLine))
		raw, rerr := fr.br.ReadBytes('\n')
		fr.line++
		fr.lastLine = raw
		if rerr != nil && rerr != io.EOF {
			fr.err = fmt.Errorf("stream: line %d (byte offset %d): %w", fr.line, fr.offset, rerr)
			return f, fr.err
		}
		atEOF := rerr == io.EOF
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) == 0 {
			if atEOF {
				fr.err = io.EOF
				return f, io.EOF
			}
			continue // blank line
		}
		if err := json.Unmarshal(trimmed, &f); err != nil {
			if atEOF {
				// The recording stops mid-line: a crash-truncated tail,
				// not corruption.
				fr.err = fmt.Errorf("stream: line %d (byte offset %d): %w: %v", fr.line, fr.offset, ErrTruncatedTail, err)
			} else {
				fr.err = fmt.Errorf("stream: line %d (byte offset %d): %w", fr.line, fr.offset, err)
			}
			return f, fr.err
		}
		// A parseable final line without a newline is a complete frame.
		if atEOF {
			fr.err = io.EOF
		}
		return f, nil
	}
}

// ReadFrames decodes an entire JSONL stream.
func ReadFrames(r io.Reader) ([]Frame, error) {
	fr := NewFrameReader(r)
	var out []Frame
	for {
		f, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
}

// Pack merges named capture runs into one interleaved frame stream ordered
// by capture timestamp (ties broken by flow name, then by per-flow packet
// order), with a close marker directly after each flow's last packet. This
// is how recorded single-flow captures become a deterministic multi-flow
// ingest recording for replay and tests.
func Pack(runs map[string]*capture.Trace) []Frame {
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)

	idx := make([]int, len(names))
	var out []Frame
	for {
		best := -1
		for i, name := range names {
			pkts := runs[name].Packets
			if idx[i] >= len(pkts) {
				continue
			}
			if best < 0 || pkts[idx[i]].Time < runs[names[best]].Packets[idx[best]].Time {
				best = i
			}
		}
		if best < 0 {
			break
		}
		name := names[best]
		out = append(out, Frame{Flow: name, Packet: runs[name].Packets[idx[best]]})
		idx[best]++
		if idx[best] == len(runs[name].Packets) {
			out = append(out, Frame{Flow: name, Close: true})
		}
	}
	// Close markers for empty traces, in name order.
	for i, name := range names {
		if len(runs[name].Packets) == 0 && idx[i] == 0 {
			out = append(out, Frame{Flow: name, Close: true})
		}
	}
	return out
}
