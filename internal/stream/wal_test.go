package stream

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func walSegsOnDisk(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, walSegPrefix+"*"+walSegSuffix))
	if err != nil {
		t.Fatal(err)
	}
	sortSegPaths(paths)
	return paths
}

func openWALDir(t *testing.T, dir string, segBytes int64) (*wal, []walRecord, bool, *WALCorruptError) {
	t.Helper()
	w, recs, torn, corrupt, err := openWAL(dir, walSegsOnDisk(t, dir), segBytes)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	return w, recs, torn, corrupt
}

func appendSeqs(t *testing.T, w *wal, from, through uint64) {
	t.Helper()
	for seq := from; seq <= through; seq++ {
		if _, err := w.append(seq, []byte(fmt.Sprintf(`{"seq":%d}`, seq))); err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
	}
}

func checkSeqs(t *testing.T, recs []walRecord, from, through uint64) {
	t.Helper()
	if got, want := len(recs), int(through-from+1); got != want {
		t.Fatalf("salvaged %d records, want %d", got, want)
	}
	for i, rec := range recs {
		if want := from + uint64(i); rec.seq != want {
			t.Fatalf("record %d has seq %d, want %d", i, rec.seq, want)
		}
		if want := fmt.Sprintf(`{"seq":%d}`, rec.seq); string(rec.payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, rec.payload, want)
		}
	}
}

// TestWALRoundTripRotation pins the append/scan cycle across segment
// rotations and a reopen-then-append restart.
func TestWALRoundTripRotation(t *testing.T) {
	dir := t.TempDir()
	w, recs, torn, corrupt := openWALDir(t, dir, 128)
	if len(recs) != 0 || torn || corrupt != nil {
		t.Fatalf("fresh dir not empty: %d records torn=%v corrupt=%v", len(recs), torn, corrupt)
	}
	appendSeqs(t, w, 1, 40)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if segs := walSegsOnDisk(t, dir); len(segs) < 2 {
		t.Fatalf("expected rotation at 128-byte segments, got %d segment(s)", len(segs))
	}

	w, recs, torn, corrupt = openWALDir(t, dir, 128)
	if torn || corrupt != nil {
		t.Fatalf("clean reopen reported damage: torn=%v corrupt=%v", torn, corrupt)
	}
	checkSeqs(t, recs, 1, 40)
	if w.lastSeq != 40 {
		t.Fatalf("lastSeq %d after reopen, want 40", w.lastSeq)
	}
	appendSeqs(t, w, 41, 50)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	_, recs, torn, corrupt = openWALDir(t, dir, 128)
	if torn || corrupt != nil {
		t.Fatalf("second reopen reported damage: torn=%v corrupt=%v", torn, corrupt)
	}
	checkSeqs(t, recs, 1, 50)
}

// TestWALTornTailTolerated pins the crash-mid-append shape: an incomplete
// record at the tail of the final segment is silently dropped, the prefix
// replays, and the file is truncated so appending resumes cleanly.
func TestWALTornTailTolerated(t *testing.T) {
	for _, cut := range []int{1, walHeaderBytes - 1, walHeaderBytes + 3} {
		t.Run(fmt.Sprintf("keep%dBytes", cut), func(t *testing.T) {
			dir := t.TempDir()
			w, _, _, _ := openWALDir(t, dir, defaultSegmentBytes)
			appendSeqs(t, w, 1, 5)
			// Hand-build a record for seq 6 and write only its first bytes.
			full := make([]byte, walHeaderBytes+10)
			binary.LittleEndian.PutUint32(full[0:], 10)
			binary.LittleEndian.PutUint64(full[8:], 6)
			if _, err := w.f.Write(full[:cut]); err != nil {
				t.Fatal(err)
			}
			if err := w.close(); err != nil {
				t.Fatal(err)
			}

			tailPath := walSegsOnDisk(t, dir)[0]
			before, _ := os.Stat(tailPath)
			w, recs, torn, corrupt := openWALDir(t, dir, defaultSegmentBytes)
			if !torn {
				t.Fatal("torn tail not reported")
			}
			if corrupt != nil {
				t.Fatalf("torn tail misclassified as corruption: %v", corrupt)
			}
			checkSeqs(t, recs, 1, 5)
			after, _ := os.Stat(tailPath)
			if after.Size() >= before.Size() {
				t.Fatalf("torn bytes not truncated: %d -> %d", before.Size(), after.Size())
			}
			appendSeqs(t, w, 6, 8)
			if err := w.close(); err != nil {
				t.Fatal(err)
			}
			_, recs, torn, corrupt = openWALDir(t, dir, defaultSegmentBytes)
			if torn || corrupt != nil {
				t.Fatalf("post-salvage reopen damaged: torn=%v corrupt=%v", torn, corrupt)
			}
			checkSeqs(t, recs, 1, 8)
		})
	}
}

// TestWALMidLogCorruption pins the structured-error path: damage that is
// not a final-segment torn tail surfaces a *WALCorruptError, the valid
// prefix is salvaged, and everything past the damage is dropped on disk.
func TestWALMidLogCorruption(t *testing.T) {
	corruptAt := func(t *testing.T, path string, off int64) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := []byte{0}
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0xff
		if _, err := f.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("bitFlipInFirstOfTwoSegments", func(t *testing.T) {
		dir := t.TempDir()
		w, _, _, _ := openWALDir(t, dir, 128)
		appendSeqs(t, w, 1, 40)
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		segs := walSegsOnDisk(t, dir)
		if len(segs) < 3 {
			t.Fatalf("need >= 3 segments, got %d", len(segs))
		}
		// Flip a payload byte of the second record in the first segment:
		// record 1 survives, the log is dead from record 2 on.
		rec1Len := int64(walHeaderBytes + len(`{"seq":1}`))
		corruptAt(t, segs[0], rec1Len+walHeaderBytes+2)

		w, recs, torn, corrupt := openWALDir(t, dir, 128)
		if corrupt == nil {
			t.Fatal("mid-log corruption not reported")
		}
		if corrupt.Reason != "checksum mismatch" || corrupt.Offset != rec1Len || corrupt.LastGoodSeq != 1 {
			t.Fatalf("corrupt = %+v", corrupt)
		}
		if torn {
			t.Fatal("corruption also reported as torn")
		}
		checkSeqs(t, recs, 1, 1)
		if remaining := walSegsOnDisk(t, dir); len(remaining) != 1 {
			t.Fatalf("segments past corruption not dropped: %v", remaining)
		}
		// The WAL must stay appendable after salvage.
		appendSeqs(t, w, 2, 3)
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		_, recs, _, corrupt = openWALDir(t, dir, 128)
		if corrupt != nil {
			t.Fatalf("post-salvage reopen corrupt: %v", corrupt)
		}
		checkSeqs(t, recs, 1, 3)
	})

	t.Run("tornRecordWithLaterSegmentBehind", func(t *testing.T) {
		dir := t.TempDir()
		w, _, _, _ := openWALDir(t, dir, 128)
		appendSeqs(t, w, 1, 40)
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		segs := walSegsOnDisk(t, dir)
		if len(segs) < 2 {
			t.Fatalf("need >= 2 segments, got %d", len(segs))
		}
		// Cut the FIRST segment mid-record: torn shape, but data exists
		// behind it, so it is corruption, not a tolerable tail.
		info, _ := os.Stat(segs[0])
		if err := os.Truncate(segs[0], info.Size()-3); err != nil {
			t.Fatal(err)
		}
		_, _, torn, corrupt := openWALDir(t, dir, 128)
		if corrupt == nil || corrupt.Reason != "torn record" {
			t.Fatalf("torn-with-followers not reported as corruption: %+v", corrupt)
		}
		if torn {
			t.Fatal("also reported as tolerable torn tail")
		}
	})

	t.Run("zeroLengthRecord", func(t *testing.T) {
		dir := t.TempDir()
		w, _, _, _ := openWALDir(t, dir, defaultSegmentBytes)
		appendSeqs(t, w, 1, 3)
		if _, err := w.f.Write(make([]byte, walHeaderBytes)); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		_, recs, _, corrupt := openWALDir(t, dir, defaultSegmentBytes)
		if corrupt == nil || corrupt.Reason != "zero-length record" {
			t.Fatalf("zero-length record not reported: %+v", corrupt)
		}
		checkSeqs(t, recs, 1, 3)
	})

	t.Run("implausibleLength", func(t *testing.T) {
		dir := t.TempDir()
		w, _, _, _ := openWALDir(t, dir, defaultSegmentBytes)
		appendSeqs(t, w, 1, 3)
		bad := make([]byte, walHeaderBytes)
		binary.LittleEndian.PutUint32(bad[0:], walMaxRecordBytes+1)
		if _, err := w.f.Write(bad); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		_, recs, _, corrupt := openWALDir(t, dir, defaultSegmentBytes)
		if corrupt == nil {
			t.Fatal("implausible length not reported")
		}
		checkSeqs(t, recs, 1, 3)
	})
}

// TestWALTruncateThrough pins snapshot-driven prefix dropping: segments
// fully covered by seq go away, newer ones stay, and the WAL remains
// appendable whether or not the open tail was dropped.
func TestWALTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	w, _, _, _ := openWALDir(t, dir, 128)
	appendSeqs(t, w, 1, 40)
	midSeq := w.segs[len(w.segs)-1].first - 1 // everything before the tail segment
	if err := w.truncateThrough(midSeq); err != nil {
		t.Fatal(err)
	}
	if len(w.segs) != 1 {
		t.Fatalf("expected only the tail segment to survive, got %d", len(w.segs))
	}
	_, recs, _, corrupt := openWALDir(t, dir, 128)
	if corrupt != nil {
		t.Fatalf("reopen after partial truncate corrupt: %v", corrupt)
	}
	checkSeqs(t, recs, midSeq+1, 40)

	if err := w.truncateThrough(40); err != nil {
		t.Fatal(err)
	}
	if remaining := walSegsOnDisk(t, dir); len(remaining) != 0 {
		t.Fatalf("full truncate left segments: %v", remaining)
	}
	appendSeqs(t, w, 41, 42)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, corrupt = openWALDir(t, dir, 128)
	if corrupt != nil {
		t.Fatalf("append after full truncate corrupt: %v", corrupt)
	}
	checkSeqs(t, recs, 41, 42)
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy string
		every  int
		ok     bool
	}{
		{"always", SyncAlways, 0, true},
		{"never", SyncNever, 0, true},
		{"interval", SyncInterval, defaultSyncEvery, true},
		{"interval:7", SyncInterval, 7, true},
		{"interval:0", "", 0, false},
		{"interval:x", "", 0, false},
		{"sometimes", "", 0, false},
		{"", "", 0, false},
	}
	for _, c := range cases {
		policy, every, err := ParseSyncPolicy(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if policy != c.policy || every != c.every {
			t.Fatalf("ParseSyncPolicy(%q) = (%q, %d), want (%q, %d)", c.in, policy, every, c.policy, c.every)
		}
	}
}
