package stream

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/packet"
)

// A Snapshot is the monitor's complete output-relevant state at a frame
// sequence boundary (DESIGN.md §13): everything recovery needs so that
// restoring it and replaying the WAL suffix reproduces an uninterrupted
// run byte for byte. Per-flow state is stored as the flow's accepted
// packets in arrival order — restore re-taps them through a fresh
// capture.Trace, rebuilding the exact trace (and recomputing the derived
// counters) the live monitor held. Solve-cadence state (provisional
// inferences, estimate memos, quarantine failure streaks) is deliberately
// absent: provisional solves never change final results, so recovery
// restarts them from scratch.
//
// Snapshots are only taken at quiescent points — no flow finalizing, no
// commit slot outstanding — so the finalization sequence, commit cursor and
// committed results collapse into one number plus the results themselves.
type Snapshot struct {
	Version  int        `json:"version"`
	Seq      uint64     `json:"seq"`       // last applied frame sequence
	FinalSeq uint64     `json:"final_seq"` // == commits emitted at a quiescent point
	VNow     float64    `json:"vnow"`      // virtual clock (max packet timestamp)
	Closed   []string   `json:"closed,omitempty"`
	Flows    []FlowSnap `json:"flows,omitempty"`
	Results  []Result   `json:"results,omitempty"`
}

// FlowSnap is one live flow's durable state.
type FlowSnap struct {
	Name    string        `json:"name"`
	LastSeq uint64        `json:"last_seq"`
	Packets []packet.View `json:"packets"`
}

const (
	snapshotVersion = 1
	snapPrefix      = "snap-"
	snapSuffix      = ".snap"
	snapKeep        = 2 // newest snapshots retained (corruption fallback)
)

// snapMagic seals the snapshot file header; bump with snapshotVersion.
var snapMagic = [8]byte{'C', 'S', 'I', 'S', 'N', 'A', 'P', '1'}

func snapName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix)
}

// snapSeqOf extracts the sequence a snapshot file name encodes.
func snapSeqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// encodeSnapshot renders the durable bytes: magic, CRC32 and length over
// the JSON payload.
func encodeSnapshot(s *Snapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("stream: encoding snapshot: %w", err)
	}
	buf := make([]byte, len(snapMagic)+12+len(payload))
	copy(buf, snapMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(payload)))
	copy(buf[20:], payload)
	return buf, nil
}

// decodeSnapshot verifies and parses a snapshot file's bytes.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+12 {
		return nil, fmt.Errorf("stream: snapshot too short (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != snapMagic {
		return nil, fmt.Errorf("stream: bad snapshot magic")
	}
	sum := binary.LittleEndian.Uint32(data[8:])
	ln := binary.LittleEndian.Uint64(data[12:])
	payload := data[20:]
	if ln != uint64(len(payload)) {
		return nil, fmt.Errorf("stream: snapshot length mismatch (header %d, body %d)", ln, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("stream: snapshot checksum mismatch")
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("stream: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("stream: snapshot version %d (want %d)", s.Version, snapshotVersion)
	}
	return &s, nil
}

// writeSnapshotFile persists a snapshot atomically: temp file in the same
// directory, fsync, rename over the final name, fsync the directory. A
// crash before the rename leaves the previous snapshot authoritative; a
// crash after it leaves the new one — never a half-written file under the
// real name.
func writeSnapshotFile(dir string, s *Snapshot) (string, error) {
	buf, err := encodeSnapshot(s)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, snapName(s.Seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("stream: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("stream: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return "", fmt.Errorf("stream: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("stream: closing snapshot temp: %w", err)
	}
	crashpointHere("snapshot.pre_rename")
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("stream: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	crashpointHere("snapshot.post_rename")
	return path, nil
}

// syncDir makes a rename durable against OS crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("stream: opening state dir for sync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("stream: syncing state dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("stream: closing state dir: %w", cerr)
	}
	return nil
}

// loadLatestSnapshot tries the given snapshot paths newest-first and
// returns the first that verifies. Corrupt or unreadable candidates are
// skipped with a structured warning — an interrupted snapshot write must
// fall back to its predecessor, not kill recovery.
func loadLatestSnapshot(paths []string) (*Snapshot, []core.Warning) {
	var warns []core.Warning
	for i := len(paths) - 1; i >= 0; i-- {
		data, err := os.ReadFile(paths[i])
		if err == nil {
			var s *Snapshot
			if s, err = decodeSnapshot(data); err == nil {
				return s, warns
			}
		}
		warns = append(warns, core.Warning{Code: "snapshot_corrupt",
			Detail: fmt.Sprintf("%s unusable (%v); falling back", filepath.Base(paths[i]), err)})
	}
	return nil, warns
}

// quiescentLocked reports whether the monitor is at a snapshot-safe point:
// every finalization decision ever taken has already committed, so the
// entire finalization state is the results slice. Caller holds m.mu.
func (m *Monitor) quiescentLocked() bool {
	if len(m.uncommitted) > 0 || m.finalSeq != m.commitNext {
		return false
	}
	for _, fs := range m.flows {
		if fs.finalizing {
			return false
		}
	}
	return true
}

// snapshotLocked captures the monitor's durable state. Caller holds m.mu
// and has verified quiescence; the returned snapshot aliases live packet
// slices, which is safe because only the calling control goroutine ever
// mutates them.
func (m *Monitor) snapshotLocked() *Snapshot {
	s := &Snapshot{
		Version:  snapshotVersion,
		Seq:      m.seq,
		FinalSeq: m.finalSeq,
		VNow:     m.vnow,
		Results:  m.results,
	}
	for name := range m.closed {
		s.Closed = append(s.Closed, name)
	}
	sort.Strings(s.Closed)
	names := make([]string, 0, len(m.flows))
	for name := range m.flows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fs := m.flows[name]
		pkts := make([]packet.View, 0, len(fs.trace.Packets)+len(fs.pending))
		pkts = append(pkts, fs.trace.Packets...)
		pkts = append(pkts, fs.pending...)
		s.Flows = append(s.Flows, FlowSnap{Name: fs.name, LastSeq: fs.lastSeq, Packets: pkts})
	}
	return s
}

// restoreSnapshot seeds a just-constructed monitor (goroutines not yet
// started, so no locking) from a recovered snapshot. Re-tapping each flow's
// packets rebuilds the identical capture.Trace an uninterrupted run held,
// and the derived counters (bytes, lastTime) recompute to the same values
// handleFrame accumulated originally.
func (m *Monitor) restoreSnapshot(s *Snapshot) {
	m.seq = s.Seq
	m.vnow = s.VNow
	m.finalSeq = s.FinalSeq
	m.commitNext = s.FinalSeq
	m.results = append(m.results, s.Results...)
	for _, name := range s.Closed {
		m.closed[name] = true
	}
	var buffered float64
	for i := range s.Flows {
		fsn := &s.Flows[i]
		tr := capture.NewTrace()
		fs := &flowState{name: fsn.Name, trace: tr, tap: tr.Tap(), memo: core.NewEstimateMemo(), lastSeq: fsn.LastSeq}
		for j := range fsn.Packets {
			v := fsn.Packets[j]
			fs.tap(v, v.Time)
			fs.packets++
			fs.bytes += frameBytes(&v)
			if v.Time > fs.lastTime {
				fs.lastTime = v.Time
			}
		}
		buffered += float64(fs.bytes)
		m.flows[fs.name] = fs
		m.liveFlows++
	}
	m.gActive.Set(float64(m.liveFlows))
	m.gBuffer.Set(buffered)
}

// maybeSnapshot runs on the control loop after each event: when the
// durability layer is due and the monitor is quiescent, capture and persist
// a snapshot, then let the WAL drop the covered prefix. Never during drain
// — the final snapshot owns that. Snapshot *timing* is allowed to vary run
// to run (it depends on solve scheduling only through quiescence); the
// replayed output is a function of the frame sequence alone, so recovery
// from any snapshot position converges to identical bytes.
func (m *Monitor) maybeSnapshot() {
	d := m.opts.Durable
	if d == nil || !d.snapshotDue() {
		return
	}
	m.mu.Lock()
	if m.draining || !m.quiescentLocked() {
		m.mu.Unlock()
		return
	}
	s := m.snapshotLocked()
	m.mu.Unlock()
	d.writeSnapshot(s)
}
