package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/qoe"
)

// Result is the final inference of one finalized flow, in a fixed
// serializable shape shared by the monitor's replay path and the batch
// pipeline — byte-identity between the two is the replay determinism gate,
// so everything here must be a deterministic function of the flow's frames.
type Result struct {
	Flow string `json:"flow"`
	// Reason is why the flow was finalized: "close" (close frame),
	// "drain" (monitor drained at end of input or shutdown),
	// "evicted:mem", "evicted:lru", "evicted:idle" (robustness evictions;
	// the inference below then covers only the packets kept) or
	// "quarantined" (repeated solve failures parked the flow).
	Reason  string `json:"reason"`
	Packets int    `json:"packets"`
	// Err is the terminal solve error, if the final inference failed even
	// under Degrade (or the flow was quarantined before one succeeded).
	Err string `json:"err,omitempty"`

	Proto    string         `json:"proto,omitempty"`
	Mux      bool           `json:"mux,omitempty"`
	Requests []core.Request `json:"requests,omitempty"`
	Groups   []core.Group   `json:"groups,omitempty"`
	// SequenceCount is formatted at 12 significant digits: the full float
	// wobbles in its last ULP with the parallel search kernel's scheduling,
	// and byte-compared outputs must not carry that noise.
	SequenceCount string            `json:"sequence_count,omitempty"`
	Truncated     bool              `json:"truncated,omitempty"`
	Best          []core.Assignment `json:"best,omitempty"`
	Warnings      []core.Warning    `json:"warnings,omitempty"`
	QoE           *QoESummary       `json:"qoe,omitempty"`
}

// QoESummary condenses the qoe.Report derived from the inferred sequence.
type QoESummary struct {
	StartupSec float64 `json:"startup_sec"`
	Stalls     int     `json:"stalls"`
	StallSec   float64 `json:"stall_sec"`
	DataBytes  int64   `json:"data_bytes"`
	Partial    bool    `json:"partial,omitempty"`
}

// NewResult renders one finalized flow. inf may be nil (no solve succeeded);
// warnings are the stream-level degradations (flow_evicted, flow_quarantined)
// appended after the inference's own.
func NewResult(flow, reason string, packets int, inf *core.Inference, solveErr error, warns []core.Warning, man *media.Manifest) Result {
	r := Result{Flow: flow, Reason: reason, Packets: packets}
	if solveErr != nil {
		r.Err = solveErr.Error()
	}
	if inf != nil {
		r.Proto = inf.Proto.String()
		r.Mux = inf.Mux
		r.Requests = inf.Requests
		r.Groups = inf.Groups
		r.SequenceCount = strconv.FormatFloat(inf.SequenceCount, 'g', 12, 64)
		r.Truncated = inf.Truncated
		if inf.Best != nil {
			r.Best = inf.Best.Assignments
		}
		r.Warnings = append(r.Warnings, inf.Warnings...)
		if chunks := inf.QoEChunks(man); len(chunks) > 0 {
			if rep, err := qoe.Analyze(chunks, qoe.Config{ChunkDur: man.ChunkDur, TolerateGaps: true}); err == nil {
				r.QoE = &QoESummary{
					StartupSec: rep.StartupDelay,
					Stalls:     len(rep.Stalls),
					StallSec:   rep.StallTime,
					DataBytes:  rep.DataBytes,
					Partial:    rep.Partial,
				}
			}
		}
	}
	r.Warnings = append(r.Warnings, warns...)
	return r
}

// WriteResults encodes results as JSONL, the daemon's output format.
func WriteResults(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for i := range results {
		if err := enc.Encode(&results[i]); err != nil {
			return fmt.Errorf("stream: encoding result %d: %w", i, err)
		}
	}
	return nil
}
