package stream

import "time"

// This file is the streaming plane's sanctioned wall-clock scope — the only
// file in internal/stream allowed to read real time (.csi-vet.conf pins it;
// TestTaintAuditInventory audits that the pin still fires). Live ingest uses
// it to stamp frame arrival for the ops-plane lag histogram and to arm
// per-solve guard deadlines; replay mode passes Options.Clock == nil, so a
// replayed monitor touches no wall time at all — which is what makes
// `-replay` output byte-identical to the batch pipeline over the same
// frames.

// WallClock returns the monitor's wall-time source: seconds since the call,
// monotonic. The indirection (a constructor returning a closure, mirroring
// guard.WallClock) keeps every deterministic caller able to substitute a
// virtual clock while the daemon's main wires the real one.
func WallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}
