package stream

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/experiments"
	"csi/internal/faults"
	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
	"csi/internal/obs"
	"csi/internal/obs/live"
	"csi/internal/session"
	"csi/internal/testleak"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testManifest(t *testing.T, d session.Design) *media.Manifest {
	t.Helper()
	audio := 0
	if d.Separate() {
		audio = 1
	}
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "streamtest", Seed: 23, DurationSec: 300, ChunkDur: 5,
		TargetPASR: 1.5, AudioTracks: audio,
	})
}

func testSession(t *testing.T, man *media.Manifest, d session.Design, seed int64, durSec float64) *capture.Trace {
	t.Helper()
	res, err := session.Run(session.Config{
		Design:    d,
		Manifest:  man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: seed, MeanBps: 5_000_000, Variability: 0.4}),
		Duration:  durSec,
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("session.Run(%v): %v", d, err)
	}
	return res.Run.Trace
}

func replayOpts(man *media.Manifest, mux bool) Options {
	return Options{
		Manifest:   man,
		Params:     core.Params{MediaHost: "media.example.com", Mux: mux, Degrade: true},
		ShedPolicy: ShedBlock,
	}
}

// replayThrough feeds frames through a monitor synchronously (blocking
// ingest) and drains it — the -replay code path.
func replayThrough(t *testing.T, frames []Frame, opts Options) []Result {
	t.Helper()
	mon := New(opts)
	for _, f := range frames {
		mon.Ingest(f)
	}
	return mon.Drain()
}

func marshalResults(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResults(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayMatchesBatch pins the tentpole determinism gate: a monitor in
// replay configuration — incremental solves every 40 packets, shared half
// cache, worker pool racing against ingest — must serialize byte-identically
// to the plain offline batch pipeline over the same frame stream.
func TestReplayMatchesBatch(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	runs := map[string]*capture.Trace{
		"alpha": testSession(t, man, session.SH, 41, 90),
		"beta":  testSession(t, man, session.SH, 42, 90),
		"gamma": testSession(t, man, session.SH, 43, 60),
	}
	frames := Pack(runs)
	opts := replayOpts(man, false)
	opts.ResolveEvery = 40
	opts.QuarantineAfter = 3
	opts.Params.HalfCache = core.NewHalfCache(64 << 20)

	got := marshalResults(t, replayThrough(t, frames, opts))
	want := marshalResults(t, Batch(frames, replayOpts(man, false)))
	if !bytes.Equal(got, want) {
		t.Fatalf("replay output diverged from batch:\nreplay:\n%s\nbatch:\n%s", got, want)
	}
}

// TestReplayMatchesBatchMux is the same gate on the SQ path, where the
// half-enumeration cache and the 12-digit sequence-count rendering carry
// the determinism contract.
func TestReplayMatchesBatchMux(t *testing.T) {
	if testing.Short() {
		t.Skip("MUX fixtures are slow")
	}
	testleak.Check(t)
	man := testManifest(t, session.SQ)
	// Shorter sessions and a coarser provisional cadence than the SH test:
	// every provisional solve on the SQ path is a full mux candidate search
	// (whose cost grows superlinearly with chunk count), and the parity
	// contract is the same whether it fires 3 or 50 times per flow.
	runs := map[string]*capture.Trace{
		"sq-a": testSession(t, man, session.SQ, 44, 30),
		"sq-b": testSession(t, man, session.SQ, 45, 30),
	}
	frames := Pack(runs)
	opts := replayOpts(man, true)
	opts.ResolveEvery = 400
	opts.Params.HalfCache = core.NewHalfCache(128 << 20)

	got := marshalResults(t, replayThrough(t, frames, opts))
	bopts := replayOpts(man, true)
	bopts.Params.HalfCache = opts.Params.HalfCache // warm cache never changes results
	want := marshalResults(t, Batch(frames, bopts))
	if !bytes.Equal(got, want) {
		t.Fatalf("MUX replay output diverged from batch:\nreplay:\n%s\nbatch:\n%s", got, want)
	}
}

// TestReplayGolden pins the replay serialization against a checked-in
// golden (refresh with -update): the full frame->monitor->result path must
// stay byte-stable across refactors, machines and runs.
func TestReplayGolden(t *testing.T) {
	man := testManifest(t, session.SH)
	runs := map[string]*capture.Trace{
		"g1": testSession(t, man, session.SH, 51, 60),
		"g2": testSession(t, man, session.SH, 52, 60),
	}
	frames := Pack(runs)
	opts := replayOpts(man, false)
	opts.ResolveEvery = 50
	got := marshalResults(t, replayThrough(t, frames, opts))

	golden := filepath.Join("testdata", "replay_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replay output diverged from golden %s (re-run with -update if intended)\ngot:\n%s", golden, got)
	}
}

// TestOverloadEvictsAndSurvives is the robustness acceptance test: 10x the
// flow-table cap of concurrently interleaved flows. The monitor must bound
// its state via LRU eviction, degrade every evicted flow to a structured
// partial result, keep the surviving flows' inferences correct, and leave
// no goroutines or buffered bytes behind.
func TestOverloadEvictsAndSurvives(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	tr := testSession(t, man, session.SH, 61, 60)

	const maxFlows = 4
	const flows = 10 * maxFlows
	names := make([]string, flows)
	for i := range names {
		names[i] = fmt.Sprintf("flow-%02d", i)
	}
	obsT := obs.New(nil, nil)
	opts := replayOpts(man, false)
	opts.MaxFlows = maxFlows
	opts.ResolveEvery = 100
	opts.Obs = obsT
	mon := New(opts)

	// Round-robin interleave: every flow replays the same trace, so every
	// surviving flow has a known-correct reference inference.
	for i := range tr.Packets {
		for _, name := range names {
			mon.Ingest(Frame{Flow: name, Packet: tr.Packets[i]})
		}
	}
	results := mon.Drain()

	if len(results) != flows {
		t.Fatalf("got %d results, want %d (one per flow, evicted or drained)", len(results), flows)
	}
	ref, err := core.Infer(man, tr, core.Params{MediaHost: "media.example.com", Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	evicted, survived := 0, 0
	for _, r := range results {
		switch r.Reason {
		case ReasonEvictedLRU:
			evicted++
			found := false
			for _, w := range r.Warnings {
				if w.Code == "flow_evicted" {
					found = true
				}
			}
			if !found {
				t.Fatalf("evicted flow %s lacks the flow_evicted warning: %+v", r.Flow, r.Warnings)
			}
		case ReasonDrain:
			survived++
			if r.Packets != len(tr.Packets) {
				t.Fatalf("survivor %s saw %d packets, want the full %d", r.Flow, r.Packets, len(tr.Packets))
			}
			if len(r.Requests) != len(ref.Requests) {
				t.Fatalf("survivor %s inferred %d requests, reference has %d", r.Flow, len(r.Requests), len(ref.Requests))
			}
		default:
			t.Fatalf("unexpected finalization reason %q for %s", r.Reason, r.Flow)
		}
	}
	if survived != maxFlows || evicted != flows-maxFlows {
		t.Fatalf("survived=%d evicted=%d, want %d/%d", survived, evicted, maxFlows, flows-maxFlows)
	}
	reg := obsT.Metrics()
	if v := reg.Counter("stream.flows_evicted").Value(); v != int64(evicted) {
		t.Fatalf("stream.flows_evicted = %d, want %d", v, evicted)
	}
	if v, ok := reg.Gauge("stream.bytes_buffered").Value(); !ok || v != 0 {
		t.Fatalf("stream.bytes_buffered = %v after drain, want 0", v)
	}
	if v, ok := reg.Gauge("stream.flows_active").Value(); !ok || v != 0 {
		t.Fatalf("stream.flows_active = %v after drain, want 0", v)
	}
}

// TestDrainWithLiveServerNoLeak pins the SIGTERM drain path: a monitor
// wired to a live ops plane drains every flow to a final result and winds
// down both without leaking goroutines.
func TestDrainWithLiveServerNoLeak(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	tr := testSession(t, man, session.SH, 62, 60)

	srv, err := live.Start(live.Options{Addr: "127.0.0.1:0", Program: "stream-test"})
	if err != nil {
		t.Fatal(err)
	}
	opts := replayOpts(man, false)
	opts.Live = srv
	mon := New(opts)
	srv.SetStatus("monitor", mon.Status)

	// Two flows mid-stream, neither closed: drain must flush both.
	half := len(tr.Packets) / 2
	for i := 0; i < half; i++ {
		mon.Ingest(Frame{Flow: "live-a", Packet: tr.Packets[i]})
		mon.Ingest(Frame{Flow: "live-b", Packet: tr.Packets[i]})
	}
	results := mon.Drain()
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.Reason != ReasonDrain {
			t.Fatalf("flow %s finalized as %q, want %q", r.Flow, r.Reason, ReasonDrain)
		}
		if r.Packets != half {
			t.Fatalf("flow %s saw %d packets, want %d", r.Flow, r.Packets, half)
		}
	}
	if mon.Ingest(Frame{Flow: "late"}) {
		t.Fatalf("Ingest after Drain must refuse")
	}
	if err := srv.Shutdown(0); err != nil {
		t.Fatalf("live shutdown: %v", err)
	}
}

// TestPoisonedFlowQuarantined injects a panic into every solve of one flow:
// it must park itself with a structured warning after QuarantineAfter
// failures while its sibling streams to a correct final inference.
func TestPoisonedFlowQuarantined(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	tr := testSession(t, man, session.SH, 63, 60)

	testHookSolve = func(flow string) {
		if flow == "poison" {
			panic("injected poison")
		}
	}
	defer func() { testHookSolve = nil }()

	obsT := obs.New(nil, nil)
	opts := replayOpts(man, false)
	opts.ResolveEvery = 50
	opts.QuarantineAfter = 2
	opts.Obs = obsT
	mon := New(opts)
	for i := range tr.Packets {
		mon.Ingest(Frame{Flow: "poison", Packet: tr.Packets[i]})
		mon.Ingest(Frame{Flow: "healthy", Packet: tr.Packets[i]})
	}
	results := mon.Drain()
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	byFlow := map[string]Result{}
	for _, r := range results {
		byFlow[r.Flow] = r
	}
	poison := byFlow["poison"]
	if poison.Reason != ReasonQuarantined {
		t.Fatalf("poisoned flow finalized as %q, want %q", poison.Reason, ReasonQuarantined)
	}
	if poison.Err == "" || !strings.Contains(poison.Err, "injected poison") {
		t.Fatalf("poisoned flow's error %q does not carry the contained panic", poison.Err)
	}
	found := false
	for _, w := range poison.Warnings {
		if w.Code == "flow_quarantined" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no flow_quarantined warning: %+v", poison.Warnings)
	}
	healthy := byFlow["healthy"]
	if healthy.Reason != ReasonDrain || healthy.Err != "" {
		t.Fatalf("healthy sibling suffered: %+v", healthy)
	}
	if len(healthy.Requests) == 0 {
		t.Fatalf("healthy sibling inferred no requests")
	}
	if v := obsT.Metrics().Counter("stream.solve_panics").Value(); v < 2 {
		t.Fatalf("stream.solve_panics = %d, want >= 2", v)
	}
}

// TestMemBudgetEvicts pins the per-flow memory budget: a flow breaching it
// degrades to a partial result with the structured warning, never a crash.
func TestMemBudgetEvicts(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	tr := testSession(t, man, session.SH, 64, 60)

	opts := replayOpts(man, false)
	opts.FlowMemBudget = 32 << 10 // a few hundred packets
	mon := New(opts)
	for i := range tr.Packets {
		mon.Ingest(Frame{Flow: "big", Packet: tr.Packets[i]})
	}
	results := mon.Drain()
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Reason != ReasonEvictedMem {
		t.Fatalf("reason = %q, want %q", r.Reason, ReasonEvictedMem)
	}
	if r.Packets >= len(tr.Packets) {
		t.Fatalf("eviction did not truncate the flow (%d packets)", r.Packets)
	}
	found := false
	for _, w := range r.Warnings {
		if w.Code == "flow_evicted" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no flow_evicted warning: %+v", r.Warnings)
	}
}

// TestIdleEvictVirtualTime pins idle eviction on the stream's virtual
// clock: a flow that stops sending while another advances time is evicted
// deterministically, with no wall-clock involvement.
func TestIdleEvictVirtualTime(t *testing.T) {
	testleak.Check(t)
	man := testManifest(t, session.SH)
	tr := testSession(t, man, session.SH, 65, 60)

	opts := replayOpts(man, false)
	opts.IdleEvictSec = 5
	mon := New(opts)
	// "idle" sends the first quarter, then goes quiet; "active" keeps
	// advancing virtual time past the idle budget. The two are interleaved
	// in capture-time order — the virtual clock (max packet timestamp)
	// assumes a time-ordered stream, as any live tap or Pack recording is.
	quarter := len(tr.Packets) / 4
	ii, ai := 0, 0
	for ii < quarter || ai < len(tr.Packets) {
		if ii < quarter && tr.Packets[ii].Time <= tr.Packets[ai].Time {
			mon.Ingest(Frame{Flow: "idle", Packet: tr.Packets[ii]})
			ii++
			continue
		}
		mon.Ingest(Frame{Flow: "active", Packet: tr.Packets[ai]})
		ai++
	}
	results := mon.Drain()
	byFlow := map[string]Result{}
	for _, r := range results {
		byFlow[r.Flow] = r
	}
	if got := byFlow["idle"].Reason; got != ReasonEvictedIdle {
		t.Fatalf("idle flow finalized as %q, want %q", got, ReasonEvictedIdle)
	}
	if got := byFlow["active"].Reason; got != ReasonDrain {
		t.Fatalf("active flow finalized as %q, want %q", got, ReasonDrain)
	}
}

// TestStreamFaultParity runs the shared fault specs through the streaming
// path and asserts each level's degradation equals the batch pipeline's on
// the same impaired capture — the streaming robustness envelope must not
// add or mask degradation.
func TestStreamFaultParity(t *testing.T) {
	man := testManifest(t, session.SH)
	res, err := session.Run(session.Config{
		Design:    session.SH,
		Manifest:  man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: 71, MeanBps: 5_000_000, Variability: 0.4}),
		Duration:  60,
		Seed:      71,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range experiments.DefaultFaultLevels() {
		lvl := lvl
		t.Run(lvl.Name, func(t *testing.T) {
			run := res.Run
			if lvl.Spec.Enabled() {
				spec := lvl.Spec
				spec.Seed = 71
				run, _ = faults.Apply(res.Run, spec, nil)
			}
			frames := Pack(map[string]*capture.Trace{"f": run.Trace})
			opts := replayOpts(man, false)
			opts.ResolveEvery = 75
			got := marshalResults(t, replayThrough(t, frames, opts))
			want := marshalResults(t, Batch(frames, replayOpts(man, false)))
			if !bytes.Equal(got, want) {
				t.Fatalf("fault level %s: streaming result diverged from batch:\nstream:\n%s\nbatch:\n%s", lvl.Name, got, want)
			}
		})
	}
}
