package crashpoint

import "testing"

// The crash itself (os.Exit at the Nth hit) is exercised by the subprocess
// matrix in internal/stream; these tests pin the spec grammar and the
// miss paths — the ones a wrong parse would silently disable.

func TestArmSpecGrammar(t *testing.T) {
	defer Arm("")
	for _, spec := range []string{"", "wal.pre_append", "wal.pre_append@1", "snapshot.post_rename@37"} {
		if err := Arm(spec); err != nil {
			t.Errorf("Arm(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"@3", "wal.pre_append@", "wal.pre_append@0", "wal.pre_append@-2", "wal.pre_append@x"} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted an invalid spec", spec)
		}
	}
}

func TestHereMissesDoNotCrash(t *testing.T) {
	defer Arm("")
	// Disarmed: every point is a no-op.
	if err := Arm(""); err != nil {
		t.Fatal(err)
	}
	for _, name := range Points {
		Here(name)
	}
	// Armed for one name at a high hit count: other names never count
	// toward it, and earlier hits of the armed name pass through.
	if err := Arm("commit.pre_emit@1000"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		for _, name := range Points {
			Here(name)
		}
	}
	// Re-arming resets the hit counter; reaching this line at all is the
	// assertion (a miscount would have exited the test process with 86).
	if err := Arm("commit.pre_emit@1000"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 999; i++ {
		Here("commit.pre_emit")
	}
}
