// Package crashpoint is the deterministic crash-injection harness behind
// the streaming monitor's durability tests (DESIGN.md §13). The durability
// code marks every boundary where a crash has a distinct recovery meaning —
// before/after a WAL append, around a snapshot rename, before a commit is
// emitted — with a named Here() call. A test (or the check.sh crash matrix)
// arms exactly one point via Arm("name@N"); the Nth time execution reaches
// it the process exits immediately with ExitCode, simulating a kill at that
// precise instant. Recovery is then exercised for real: the harness
// restarts the process against the same state directory and requires output
// byte-identical to an uninterrupted run.
//
// Disarmed, every Here() is a single atomic load — the hooks stay compiled
// into production builds, so the tested binary is the shipped binary.
package crashpoint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ExitCode is the exit status of an injected crash, distinct from both a
// clean exit and the daemon's error exit so harnesses can assert the crash
// actually fired.
const ExitCode = 86

// Points is the crashpoint inventory: every durability boundary the
// streaming monitor marks. Tests range over it so a new boundary cannot be
// added without joining the crash matrix.
var Points = []string{
	"wal.pre_append",       // frame accepted, nothing written yet
	"wal.post_append",      // record written (and synced per policy), state not yet mutated
	"snapshot.pre_rename",  // snapshot temp file written+synced, rename pending
	"snapshot.post_rename", // snapshot visible, old snapshots/WAL not yet truncated
	"commit.pre_emit",      // result rendered, not yet committed/emitted
	"drain.pre_snapshot",   // graceful drain finished, final snapshot pending
}

type armed struct {
	name string
	hit  int
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	cfg     armed
	count   int
)

// Arm installs a crash spec: "" disarms, "name" crashes the first time
// execution reaches that crashpoint, "name@N" the Nth time (1-based). The
// daemon arms from the CSI_CRASHPOINT environment variable; tests call Arm
// directly.
func Arm(spec string) error {
	mu.Lock()
	defer mu.Unlock()
	count = 0
	if spec == "" {
		enabled.Store(false)
		cfg = armed{}
		return nil
	}
	name, nStr, hasN := strings.Cut(spec, "@")
	if name == "" {
		return fmt.Errorf("crashpoint: empty name in spec %q", spec)
	}
	n := 1
	if hasN {
		v, err := strconv.Atoi(nStr)
		if err != nil || v < 1 {
			return fmt.Errorf("crashpoint: bad hit count in spec %q (want name@N, N >= 1)", spec)
		}
		n = v
	}
	cfg = armed{name: name, hit: n}
	enabled.Store(true)
	return nil
}

// Here marks a named crashpoint. If the process is armed for this name,
// the configured hit terminates it with ExitCode — no unwinding, no
// deferred cleanup, exactly like a kill.
func Here(name string) {
	if !enabled.Load() {
		return
	}
	mu.Lock()
	if cfg.name != name {
		mu.Unlock()
		return
	}
	count++
	crash := count == cfg.hit
	mu.Unlock()
	if crash {
		os.Exit(ExitCode)
	}
}
