package stream

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/guard"
	"csi/internal/guard/runner"
	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/obs/live"
	"csi/internal/packet"
)

// Shed policies for Ingest when the ring is full.
const (
	// ShedDrop drops the newest frame (live mode: losing the latest packet
	// of a flow degrades one estimate; blocking the capture path would
	// stall every flow).
	ShedDrop = "drop"
	// ShedBlock applies back-pressure to the producer (replay mode: every
	// frame must be processed for byte-identical output).
	ShedBlock = "block"
)

// Finalization reasons (Result.Reason).
const (
	ReasonClose       = "close"
	ReasonDrain       = "drain"
	ReasonEvictedMem  = "evicted:mem"
	ReasonEvictedLRU  = "evicted:lru"
	ReasonEvictedIdle = "evicted:idle"
	ReasonQuarantined = "quarantined"
)

// viewFootprint approximates the buffered bytes of one packet.View (struct
// size rounded up; string payloads are added separately). Used only for the
// per-flow memory budget, so a rough constant is fine — it just has to be
// deterministic.
const viewFootprint = 160

func frameBytes(v *packet.View) int64 {
	return viewFootprint + int64(len(v.SNI)+len(v.ServerIP)+len(v.DNSQuery)+len(v.DNSAnswerIP))
}

// Options configures a Monitor.
type Options struct {
	// Manifest is the chunk-size ladder every flow is matched against.
	Manifest *media.Manifest
	// Params is the base inference configuration applied to every flow
	// (MediaHost, Mux, Degrade, K, ...). Memo, Guard, Stages and Obs are
	// overridden per solve; HalfCache should be set here when sharing is
	// wanted.
	Params core.Params
	// MaxFlows caps the live flow table; a new flow past the cap evicts
	// the least-recently-active one to a partial result. Default 64.
	MaxFlows int
	// FlowMemBudget caps the approximate buffered bytes of one flow;
	// breaching it finalizes the flow to a partial result. Default 64 MiB.
	FlowMemBudget int64
	// RingSize bounds the ingest ring (frames). Default 4096.
	RingSize int
	// ShedPolicy is ShedDrop (default) or ShedBlock.
	ShedPolicy string
	// ResolveEvery re-solves a flow after this many new packets, keeping a
	// provisional inference warm for the status page. 0 disables mid-flow
	// solves (each flow is solved once, at finalization). Provisional
	// solves never change final results: the estimate memo and the half
	// cache replay their work byte-identically.
	ResolveEvery int
	// WorkBudget is the per-solve guard step budget; 0 is unmetered.
	WorkBudget int64
	// SolveDeadlineSec arms a wall-clock deadline per solve (requires
	// Clock; a liveness backstop for live mode, never used in replay).
	SolveDeadlineSec float64
	// QuarantineAfter parks a flow after this many consecutive panicking
	// solves (runner.Quarantine semantics; ordinary inference errors do not
	// count — they are normal on short prefixes of a growing flow); 0
	// disables.
	QuarantineAfter int
	// IdleEvictSec finalizes flows idle for this long in *virtual* time
	// (the max packet timestamp seen), so replay stays deterministic.
	// 0 disables.
	IdleEvictSec float64
	// Workers sizes the solve pool; <= 0 means GOMAXPROCS.
	Workers int
	// Obs receives the monitor's counters and gauges (stream.*); nil
	// disables. In the daemon this registry is served by the live plane.
	Obs *obs.Tracer
	// Live, when non-nil, provides the per-stage Infer latency histograms
	// (StageTimer). The flow table status section is registered by the
	// daemon via Status.
	Live *live.Server
	// Clock is the sanctioned wall-time source for live mode (arming
	// solve deadlines). Nil in replay: the monitor then reads no wall
	// time at all.
	Clock func() float64
	// OnResult, when non-nil, receives each finalized Result in commit
	// order, from the control goroutine (keep it fast; it must not call
	// back into the Monitor).
	OnResult func(Result)
	// Durable, when non-nil, makes the monitor crash-safe: every accepted
	// frame is WAL'd before it mutates the flow table, and quiescent
	// points are snapshotted. Obtain via OpenDurability; seed a recovered
	// monitor via Recover rather than New.
	Durable *Durability

	// restore carries a recovered snapshot into New (set by Recover only).
	restore *Snapshot
}

func (o Options) withDefaults() Options {
	if o.MaxFlows <= 0 {
		o.MaxFlows = 64
	}
	if o.FlowMemBudget <= 0 {
		o.FlowMemBudget = 64 << 20
	}
	if o.RingSize <= 0 {
		o.RingSize = 4096
	}
	if o.ShedPolicy == "" {
		o.ShedPolicy = ShedDrop
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// flowState is one monitored flow. The control goroutine owns every field;
// while solving is set the trace and memo are frozen — workers read them,
// the control loop buffers arrivals in pending instead of tapping.
type flowState struct {
	name  string
	trace *capture.Trace
	tap   func(packet.View, float64)
	memo  *core.EstimateMemo

	packets  int
	bytes    int64
	lastSeq  uint64  // ingest sequence of the last accepted frame (LRU key)
	lastTime float64 // max packet timestamp (virtual clock)

	solving  bool
	pending  []packet.View // frames arrived while a solve froze the trace
	solvedAt int           // packet count when the last solve was scheduled
	solves   int
	lastInf  *core.Inference // last completed successful solve
	lastErr  error

	finalizing  bool
	finalIssued bool // the final solve has been scheduled
	finalSeq    uint64
	reason      string
	warns       []core.Warning // stream-level warnings, appended after the inference's
	dropped     int            // frames discarded after the finalization decision
}

type solveDone struct {
	flow string
	inf  *core.Inference
	err  error
}

// Monitor is the streaming front end of core.Infer: a control goroutine
// owning the flow table and every finalization decision, plus a bounded
// worker pool running the actual solves. All decisions (eviction, memory
// budget, idle, LRU, drain order) are functions of the ingest frame
// sequence alone, so a replayed frame stream finalizes the same flows for
// the same reasons in the same order on every run.
type Monitor struct {
	opts Options
	man  *media.Manifest

	ring    chan Frame
	drainCh chan struct{}
	tasks   chan string
	ctrl    chan solveDone
	doneCh  chan struct{}
	wg      sync.WaitGroup

	// mu guards the maps and slices also read from other goroutines
	// (Ingest's stop check, workers' flow lookup, Status, Drain's result
	// pickup). The control goroutine is the only writer.
	mu      sync.Mutex
	stopped bool
	flows   map[string]*flowState
	closed  map[string]bool // committed flows; late frames are dropped
	results []Result

	// control-goroutine-only state
	seq         uint64
	vnow        float64 // max packet timestamp across all frames
	finalSeq    uint64
	commitNext  uint64
	uncommitted map[uint64]Result
	solveQ      []string
	liveFlows   int // flows not yet finalizing
	draining    bool

	quar *runner.Quarantine

	cFrames  *obs.Counter
	cShed    *obs.Counter
	cEvicted *obs.Counter
	cDropped *obs.Counter
	cSolves  *obs.Counter
	cFails   *obs.Counter
	cPanics  *obs.Counter
	gActive  *obs.Gauge
	gBuffer  *obs.Gauge
}

// testHookSolve, when set, runs inside every contained solve before the
// inference — tests inject panics per flow to exercise quarantine. Never
// set outside tests.
var testHookSolve func(flow string)

// New starts a monitor: the control goroutine plus opts.Workers solvers.
// Callers must end its life with Drain.
func New(opts Options) *Monitor {
	opts = opts.withDefaults()
	reg := opts.Obs.Metrics()
	m := &Monitor{
		opts:        opts,
		man:         opts.Manifest,
		ring:        make(chan Frame, opts.RingSize),
		drainCh:     make(chan struct{}),
		tasks:       make(chan string, opts.Workers*2),
		ctrl:        make(chan solveDone, opts.Workers*2),
		doneCh:      make(chan struct{}),
		flows:       make(map[string]*flowState),
		closed:      make(map[string]bool),
		uncommitted: make(map[uint64]Result),
		quar:        runner.NewQuarantine(opts.QuarantineAfter),
		cFrames:     reg.Counter("stream.frames_total"),
		cShed:       reg.Counter("stream.shed_total"),
		cEvicted:    reg.Counter("stream.flows_evicted"),
		cDropped:    reg.Counter("stream.frames_dropped_postfinal"),
		cSolves:     reg.Counter("stream.solves_total"),
		cFails:      reg.Counter("stream.solve_failures"),
		cPanics:     reg.Counter("stream.solve_panics"),
		gActive:     reg.Gauge("stream.flows_active"),
		gBuffer:     reg.Gauge("stream.bytes_buffered"),
	}
	m.gActive.Set(0)
	m.gBuffer.Set(0)
	if opts.restore != nil {
		// Recovery: seed the flow table and committed results before any
		// goroutine can observe partial state.
		m.restoreSnapshot(opts.restore)
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	go m.run()
	return m
}

// Ingest offers one frame to the monitor. Under ShedDrop a full ring sheds
// the frame (counted in stream.shed_total) and returns false; under
// ShedBlock it blocks until the control loop catches up. Returns false
// without ingesting once Drain has begun.
func (m *Monitor) Ingest(f Frame) bool {
	m.mu.Lock()
	stopped := m.stopped
	m.mu.Unlock()
	if stopped {
		return false
	}
	if m.opts.ShedPolicy == ShedBlock {
		//csi-vet:ignore taint -- back-pressure select: either arm enqueues-or-drops a frame whose processing order is fixed by the ring FIFO, not by which case fires
		select {
		case m.ring <- f:
			return true
		case <-m.drainCh:
			return false
		}
	}
	//csi-vet:ignore taint -- shed select: a full ring drops the newest frame by design (live mode); replay uses ShedBlock so no result depends on this race
	select {
	case m.ring <- f:
		return true
	default:
		m.cShed.Inc()
		return false
	}
}

// Drain stops ingestion, processes every frame still buffered in the ring,
// flushes every live flow to a final (possibly partial) inference, waits
// for the pool to wind down and returns all results in commit order. Safe
// to call once; Ingest returns false afterwards.
func (m *Monitor) Drain() []Result {
	m.mu.Lock()
	if !m.stopped {
		m.stopped = true
		close(m.drainCh)
	}
	m.mu.Unlock()
	<-m.doneCh
	m.wg.Wait()
	m.mu.Lock()
	results := m.results
	var final *Snapshot
	if m.opts.Durable != nil {
		// Graceful drain: one last snapshot carrying every result (the
		// flow table is empty and the commit sequence fully drained), then
		// drop the WAL it covers — a clean restart skips replay entirely.
		crashpointHere("drain.pre_snapshot")
		final = m.snapshotLocked()
	}
	m.mu.Unlock()
	if final != nil {
		d := m.opts.Durable
		d.writeSnapshot(final)
		d.close()
	}
	return results
}

// FlowStatus is one row of the Status table.
type FlowStatus struct {
	Flow       string  `json:"flow"`
	Packets    int     `json:"packets"`
	Bytes      int64   `json:"bytes"`
	LastTime   float64 `json:"last_time"`
	Solves     int     `json:"solves"`
	Solving    bool    `json:"solving,omitempty"`
	Finalizing bool    `json:"finalizing,omitempty"`
	// Sequences is the provisional sequence count from the last completed
	// solve (reduced precision, display only).
	Sequences string `json:"sequences,omitempty"`
}

// Status snapshots the flow table for the live /statusz page.
func (m *Monitor) Status() any {
	m.mu.Lock()
	defer m.mu.Unlock()
	rows := make([]FlowStatus, 0, len(m.flows))
	//csi-vet:ignore maporder -- rows are sorted below before returning
	for _, fs := range m.flows {
		row := FlowStatus{
			Flow: fs.name, Packets: fs.packets, Bytes: fs.bytes,
			LastTime: fs.lastTime, Solves: fs.solves,
			Solving: fs.solving, Finalizing: fs.finalizing,
		}
		if fs.lastInf != nil {
			row.Sequences = fmt.Sprintf("%.6g", fs.lastInf.SequenceCount)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Flow < rows[j].Flow })
	return map[string]any{
		"flows":       rows,
		"committed":   len(m.results),
		"quarantined": m.quar.Keys(),
	}
}

// run is the control goroutine: sole owner of the flow table and of every
// finalization decision.
func (m *Monitor) run() {
	ring, drain := m.ring, m.drainCh
	for {
		//csi-vet:ignore taint -- control select: frame handling and solve completions commute (a solving flow's trace is frozen; arrivals buffer in pending), and results commit strictly in finalization-sequence order, so the firing order never reaches an output
		select {
		case f := <-ring:
			m.handleFrame(f)
		case d := <-m.ctrl:
			m.handleDone(d)
		case <-drain:
			m.beginDrain()
			ring, drain = nil, nil // processed; stop selecting on both
		}
		m.dispatch()
		m.maybeSnapshot()
		if m.draining && m.flowCount() == 0 {
			close(m.tasks)
			close(m.doneCh)
			return
		}
	}
}

func (m *Monitor) flowCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.flows)
}

// beginDrain empties the ring (every frame already accepted by Ingest is
// processed — replay depends on it), then finalizes every remaining flow in
// sorted name order.
func (m *Monitor) beginDrain() {
	for {
		//csi-vet:ignore taint -- drain sweep: Ingest is already refusing frames, so the ring can only shrink; the default arm just detects empty
		select {
		case f := <-m.ring:
			m.handleFrame(f)
			continue
		default:
		}
		break
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.draining = true
	names := make([]string, 0, len(m.flows))
	//csi-vet:ignore maporder -- names are sorted below before use
	for name, fs := range m.flows {
		if !fs.finalizing {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		m.finalize(m.flows[name], ReasonDrain)
	}
}

func (m *Monitor) handleFrame(f Frame) {
	m.cFrames.Inc()
	m.seq++
	if d := m.opts.Durable; d != nil && m.seq > d.baseSeq {
		// Write-ahead: the frame is durable before any state it mutates.
		// Frames at or below baseSeq are the recovery tail — already in
		// the WAL or covered by the snapshot.
		d.appendFrame(m.seq, &f)
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	fs := m.flows[f.Flow]
	if fs == nil {
		if m.closed[f.Flow] {
			m.cDropped.Inc()
			return
		}
		// A close frame for a never-seen flow still creates (and instantly
		// finalizes) it: the batch pipeline emits a result for every flow
		// name in the stream, and replay must match it.
		if m.liveFlows >= m.opts.MaxFlows {
			m.evictLRU()
		}
		tr := capture.NewTrace()
		fs = &flowState{name: f.Flow, trace: tr, tap: tr.Tap(), memo: core.NewEstimateMemo()}
		m.flows[f.Flow] = fs
		m.liveFlows++
		m.gActive.Set(float64(m.liveFlows))
	}
	if fs.finalizing {
		fs.dropped++
		m.cDropped.Inc()
		return
	}
	fs.lastSeq = m.seq
	if f.Close {
		m.finalize(fs, ReasonClose)
		return
	}
	v := f.Packet
	fs.packets++
	fs.bytes += frameBytes(&v)
	m.gBuffer.Add(float64(frameBytes(&v)))
	if v.Time > fs.lastTime {
		fs.lastTime = v.Time
	}
	if v.Time > m.vnow {
		m.vnow = v.Time
	}
	if fs.solving {
		fs.pending = append(fs.pending, v)
	} else {
		fs.tap(v, v.Time)
	}

	if fs.bytes > m.opts.FlowMemBudget {
		m.finalize(fs, ReasonEvictedMem)
		return
	}
	if m.opts.IdleEvictSec > 0 {
		m.evictIdle()
		if fs.finalizing { // the arriving flow itself cannot idle out, but be safe
			return
		}
	}
	if m.opts.ResolveEvery > 0 && !fs.solving && fs.packets-fs.solvedAt >= m.opts.ResolveEvery {
		m.schedule(fs, false)
	}
}

// evictLRU finalizes the least-recently-active live flow to make room.
func (m *Monitor) evictLRU() {
	var victim *flowState
	for _, fs := range m.flows {
		if fs.finalizing {
			continue
		}
		if victim == nil || fs.lastSeq < victim.lastSeq ||
			(fs.lastSeq == victim.lastSeq && fs.name < victim.name) {
			victim = fs
		}
	}
	if victim != nil {
		m.finalize(victim, ReasonEvictedLRU)
	}
}

// evictIdle finalizes flows idle past the budget in virtual time. Names are
// collected and sorted so multiple evictions in one sweep commit in a
// deterministic order.
func (m *Monitor) evictIdle() {
	var idle []string
	//csi-vet:ignore maporder -- idle is sorted below before use
	for name, fs := range m.flows {
		if !fs.finalizing && m.vnow-fs.lastTime > m.opts.IdleEvictSec {
			idle = append(idle, name)
		}
	}
	sort.Strings(idle)
	for _, name := range idle {
		m.finalize(m.flows[name], ReasonEvictedIdle)
	}
}

// finalize decides a flow's fate: assigns its commit slot, attaches the
// stream-level warning, and either schedules the final solve or (if one is
// in flight) waits for it. Caller holds m.mu.
func (m *Monitor) finalize(fs *flowState, reason string) {
	if fs.finalizing {
		return // already has a commit slot; re-finalizing would orphan it
	}
	fs.finalizing = true
	fs.reason = reason
	fs.finalSeq = m.finalSeq
	m.finalSeq++
	m.liveFlows--
	m.gActive.Set(float64(m.liveFlows))
	switch reason {
	case ReasonEvictedMem, ReasonEvictedLRU, ReasonEvictedIdle:
		m.cEvicted.Inc()
		fs.warns = append(fs.warns, core.Warning{Code: "flow_evicted",
			Detail: fmt.Sprintf("flow %s evicted (%s) after %d packets; inference covers only the packets received", fs.name, reason, fs.packets)})
	case ReasonQuarantined:
		fs.warns = append(fs.warns, m.quarWarn(fs))
	}
	if reason == ReasonQuarantined {
		// No further solves for a poisoned flow: commit what we have.
		m.commit(fs, fs.lastInf, fs.lastErr)
		return
	}
	if !fs.solving {
		m.schedule(fs, true)
	}
	// else: handleDone sees finalizing and issues the final solve.
}

func (m *Monitor) quarWarn(fs *flowState) core.Warning {
	return core.Warning{Code: "flow_quarantined",
		Detail: fmt.Sprintf("flow %s parked after %d consecutive panicking solves", fs.name, m.opts.QuarantineAfter)}
}

// schedule queues one solve for fs. Caller holds m.mu; fs must not already
// be solving.
func (m *Monitor) schedule(fs *flowState, final bool) {
	fs.solving = true
	fs.solves++
	fs.solvedAt = fs.packets
	if final {
		fs.finalIssued = true
	}
	m.solveQ = append(m.solveQ, fs.name)
}

// dispatch moves queued solves to the worker pool without ever blocking the
// control loop (the queue is the overflow buffer; tasks capacity only sizes
// the handoff).
func (m *Monitor) dispatch() {
	for len(m.solveQ) > 0 {
		//csi-vet:ignore taint -- handoff select: whether a solve starts now or after the next control iteration only shifts provisional work; final results commit in finalization order regardless
		select {
		case m.tasks <- m.solveQ[0]:
			m.solveQ = m.solveQ[1:]
		default:
			return
		}
	}
}

func (m *Monitor) handleDone(d solveDone) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fs := m.flows[d.flow]
	if fs == nil {
		return // already committed (quarantined while solving); drop
	}
	fs.solving = false
	m.cSolves.Inc()
	panicked := false
	if d.err != nil {
		m.cFails.Inc()
		if _, ok := d.err.(*guard.PanicError); ok {
			panicked = true
			m.cPanics.Inc()
		}
		fs.lastErr = d.err
	} else {
		fs.lastInf = d.inf
		fs.lastErr = nil
	}
	// Only panicking solves count toward quarantine: an ordinary inference
	// error is normal on a short prefix of a still-growing flow and clears
	// itself as data arrives, but a panic marks the flow's data as poison.
	var parkedNow bool
	if panicked {
		parkedNow = m.quar.Record(fs.name, false)
	} else if d.err == nil {
		m.quar.Record(fs.name, true)
	}

	if parkedNow {
		// The park decision overrides any finalization already in flight:
		// the flow gets no further solves, so commit what we have — in the
		// already-assigned slot if one exists (re-finalizing would orphan it
		// and stall the commit sequence).
		if fs.finalizing {
			fs.reason = ReasonQuarantined
			fs.warns = append(fs.warns, m.quarWarn(fs))
			m.commit(fs, fs.lastInf, fs.lastErr)
			return
		}
		m.finalize(fs, ReasonQuarantined)
		return
	}
	if fs.finalizing && fs.finalIssued {
		// This was the final solve: commit its outcome, success or not.
		m.commit(fs, d.inf, d.err)
		return
	}
	// Thaw: flush the frames that arrived while the trace was frozen.
	for _, v := range fs.pending {
		fs.tap(v, v.Time)
	}
	fs.pending = nil
	if fs.finalizing {
		m.schedule(fs, true)
		return
	}
	if m.opts.ResolveEvery > 0 && fs.packets-fs.solvedAt >= m.opts.ResolveEvery {
		m.schedule(fs, false)
	}
}

// commit renders the flow's Result into its finalization slot and emits
// every consecutive committed slot in order. Caller holds m.mu.
func (m *Monitor) commit(fs *flowState, inf *core.Inference, err error) {
	crashpointHere("commit.pre_emit")
	res := NewResult(fs.name, fs.reason, fs.packets, inf, err, fs.warns, m.man)
	m.uncommitted[fs.finalSeq] = res
	delete(m.flows, fs.name)
	m.closed[fs.name] = true
	m.gBuffer.Add(float64(-fs.bytes))
	for {
		r, ok := m.uncommitted[m.commitNext]
		if !ok {
			return
		}
		delete(m.uncommitted, m.commitNext)
		m.commitNext++
		m.results = append(m.results, r)
		if m.opts.OnResult != nil {
			m.opts.OnResult(r)
		}
	}
}

// worker pulls solve assignments until the task channel closes.
func (m *Monitor) worker() {
	defer m.wg.Done()
	for name := range m.tasks {
		m.ctrl <- m.solve(name)
	}
}

// solve runs one contained inference over a frozen flow trace.
func (m *Monitor) solve(name string) solveDone {
	m.mu.Lock()
	fs := m.flows[name]
	m.mu.Unlock()
	d := solveDone{flow: name}
	if fs == nil {
		d.err = fmt.Errorf("stream: flow %s vanished before its solve", name)
		return d
	}
	p := m.opts.Params
	p.Memo = fs.memo
	p.Guard = guard.New(m.opts.WorkBudget)
	if m.opts.SolveDeadlineSec > 0 && m.opts.Clock != nil {
		p.Guard.WithDeadline(m.opts.Clock, m.opts.SolveDeadlineSec)
	}
	if m.opts.Live != nil {
		p.Stages = m.opts.Live.StageTimer()
	}
	// Per-flow solves run untraced: an estimate-memo hit elides the scan's
	// obs events, so tracing would differ between solve cadences while the
	// results do not. The monitor's own registry carries the stream metrics.
	p.Obs = nil
	d.err = contain(func() error {
		if testHookSolve != nil {
			testHookSolve(name)
		}
		inf, err := core.Infer(m.man, fs.trace, p)
		if err != nil {
			return err
		}
		d.inf = inf
		return nil
	})
	return d
}

// contain converts a panicking solve into an error (guard.PanicError), so a
// poisoned flow fails its solve instead of killing the pool.
func contain(fn func() error) (err error) {
	defer guard.Capture(&err)
	return fn()
}

// Batch is the reference pipeline the replay gate compares against: group
// frames per flow (up to each flow's first close marker, mirroring the
// monitor's post-finalize drop rule), run one batch core.Infer per flow,
// and emit results in the same order the monitor would commit them — close
// markers in frame order first, then never-closed flows in sorted name
// order with ReasonDrain. No monitor, no workers, no memo: just the plain
// offline pipeline.
func Batch(frames []Frame, opts Options) []Result {
	opts = opts.withDefaults()
	type batchFlow struct {
		trace  *capture.Trace
		tap    func(packet.View, float64)
		closed bool
		pkts   int
	}
	flows := make(map[string]*batchFlow)
	type finalization struct {
		name   string
		reason string
	}
	var order []finalization
	var names []string
	for _, f := range frames {
		bf := flows[f.Flow]
		if bf == nil {
			tr := capture.NewTrace()
			bf = &batchFlow{trace: tr, tap: tr.Tap()}
			flows[f.Flow] = bf
			names = append(names, f.Flow)
		}
		if bf.closed {
			continue
		}
		if f.Close {
			bf.closed = true
			order = append(order, finalization{f.Flow, ReasonClose})
			continue
		}
		bf.tap(f.Packet, f.Packet.Time)
		bf.pkts++
	}
	sort.Strings(names)
	for _, name := range names {
		if !flows[name].closed {
			order = append(order, finalization{name, ReasonDrain})
		}
	}
	results := make([]Result, 0, len(order))
	for _, fin := range order {
		bf := flows[fin.name]
		p := opts.Params
		p.Guard = guard.New(opts.WorkBudget)
		inf, err := core.Infer(opts.Manifest, bf.trace, p)
		results = append(results, NewResult(fin.name, fin.reason, bf.pkts, inf, err, nil, opts.Manifest))
	}
	return results
}
