package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The frame write-ahead log (DESIGN.md §13). Every frame the control
// goroutine accepts is appended here *before* it mutates the flow table, so
// a crash at any instant loses no applied state: recovery restores the last
// snapshot and replays the WAL suffix, which regenerates the exact state —
// and therefore the exact output bytes — of an uninterrupted run.
//
// On-disk format: segments named wal-<firstSeq, 20 digits>.seg, rotated by
// size. Each record is
//
//	u32le payload length | u32le CRC32-IEEE(seq || payload) | u64le seq | payload
//
// where the payload is the frame's canonical JSON (the wire format). The
// reader is a salvage scanner: a torn record at the tail of the *final*
// segment is the expected shape of a crash mid-write and is tolerated
// (ErrTruncatedTail semantics); a checksum mismatch, implausible length,
// sequence gap, or torn record with later data behind it is mid-log
// corruption — the valid prefix is salvaged and the damage is surfaced as a
// structured *WALCorruptError, never a panic.

// WAL fsync policies (DurabilityOptions.SyncPolicy).
const (
	// SyncAlways fsyncs after every appended record: a record is durable
	// against OS crash/power loss before it mutates any state.
	SyncAlways = "always"
	// SyncInterval fsyncs every SyncEvery records (and at rotation/close):
	// bounded loss window against OS crash, one fsync per batch. Process
	// kills lose nothing under any policy — completed writes survive in the
	// page cache.
	SyncInterval = "interval"
	// SyncNever leaves syncing to the OS entirely (rotation and close still
	// sync, sealing finished segments).
	SyncNever = "never"
)

// ParseSyncPolicy parses the -wal-sync flag grammar: "always", "never",
// "interval" (every defaultSyncEvery frames), or "interval:N". The interval
// is counted in frames, not seconds, so durable replay stays clock-free.
func ParseSyncPolicy(s string) (policy string, every int, err error) {
	switch {
	case s == SyncAlways, s == SyncNever:
		return s, 0, nil
	case s == SyncInterval:
		return SyncInterval, defaultSyncEvery, nil
	case strings.HasPrefix(s, SyncInterval+":"):
		n, aerr := strconv.Atoi(strings.TrimPrefix(s, SyncInterval+":"))
		if aerr != nil || n < 1 {
			return "", 0, fmt.Errorf("stream: bad sync interval %q (want interval:N, N >= 1)", s)
		}
		return SyncInterval, n, nil
	default:
		return "", 0, fmt.Errorf("stream: unknown WAL sync policy %q (want always, interval[:N] or never)", s)
	}
}

const (
	walHeaderBytes    = 16
	walMaxRecordBytes = 16 << 20 // length-prefix plausibility bound
	walSegSuffix      = ".seg"
	walSegPrefix      = "wal-"

	defaultSegmentBytes = 8 << 20
	defaultSyncEvery    = 256
)

// WALCorruptError reports mid-log corruption: the WAL is readable up to
// LastGoodSeq and unreadable after Offset in Segment. Recovery salvages the
// prefix; everything past the damage is gone (and, in replay, re-fed from
// the input).
type WALCorruptError struct {
	Segment     string
	Offset      int64
	Reason      string
	LastGoodSeq uint64
}

func (e *WALCorruptError) Error() string {
	return fmt.Sprintf("stream: wal corrupt in %s at byte %d (%s); salvaged through seq %d",
		filepath.Base(e.Segment), e.Offset, e.Reason, e.LastGoodSeq)
}

type walRecord struct {
	seq     uint64
	payload []byte
}

type walSeg struct {
	path  string
	first uint64 // 0 until the first record lands
	last  uint64
	size  int64
}

// wal is the append state over a directory of segments. All methods run on
// the monitor's control goroutine (or before it starts); the type itself is
// not concurrency-safe.
type wal struct {
	dir      string
	segBytes int64
	segs     []walSeg
	f        *os.File // open tail segment, nil until the first append
	size     int64    // bytes in the open segment
	lastSeq  uint64
	closed   bool
}

// segSeq extracts the first-record sequence a segment file name encodes;
// ok is false for files that are not WAL segments.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", walSegPrefix, firstSeq, walSegSuffix)
}

// scanSegment walks one segment's bytes. It returns the records of the
// valid prefix, the byte length of that prefix, whether the scan stopped on
// a torn (incomplete) record, and — for any other stop — the corruption
// reason. nextSeq is the expected sequence of the first record (0 = accept
// any) and is threaded across segments to detect gaps.
func scanSegment(data []byte, nextSeq uint64) (recs []walRecord, validLen int64, torn bool, reason string) {
	off := 0
	for off < len(data) {
		if len(data)-off < walHeaderBytes {
			return recs, int64(off), true, ""
		}
		ln := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		seq := binary.LittleEndian.Uint64(data[off+8:])
		if ln == 0 {
			return recs, int64(off), false, "zero-length record"
		}
		if ln > walMaxRecordBytes {
			return recs, int64(off), false, fmt.Sprintf("implausible record length %d", ln)
		}
		end := off + walHeaderBytes + int(ln)
		if end > len(data) {
			return recs, int64(off), true, ""
		}
		if crc32.ChecksumIEEE(data[off+8:end]) != sum {
			return recs, int64(off), false, "checksum mismatch"
		}
		if nextSeq != 0 && seq != nextSeq {
			return recs, int64(off), false, fmt.Sprintf("sequence gap (record %d follows %d)", seq, nextSeq-1)
		}
		payload := make([]byte, ln)
		copy(payload, data[off+walHeaderBytes:end])
		recs = append(recs, walRecord{seq: seq, payload: payload})
		nextSeq = seq + 1
		off = end
	}
	return recs, int64(off), false, ""
}

// openWAL scans the given segment files (already name-sorted by the
// caller), salvages the valid record prefix, truncates the on-disk tail to
// exactly that prefix, and returns the WAL positioned for appending after
// it. A torn tail in the final segment is tolerated silently (torn=true); a
// mid-log stop is returned as a *WALCorruptError after salvage. Both leave
// the WAL fully usable.
func openWAL(dir string, segPaths []string, segBytes int64) (w *wal, recs []walRecord, torn bool, corrupt *WALCorruptError, err error) {
	w = &wal{dir: dir, segBytes: segBytes}
	var nextSeq uint64
	for i, path := range segPaths {
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, false, nil, fmt.Errorf("stream: reading wal segment: %w", rerr)
		}
		segRecs, validLen, segTorn, reason := scanSegment(data, nextSeq)
		final := i == len(segPaths)-1
		damaged := reason != "" || (segTorn && !final)

		if len(segRecs) == 0 && !damaged && !segTorn {
			// Empty segment (crash between rotation and the first record):
			// drop it so it cannot shadow a future rotation.
			if rmErr := os.Remove(path); rmErr != nil {
				return nil, nil, false, nil, fmt.Errorf("stream: dropping empty wal segment: %w", rmErr)
			}
			continue
		}
		if len(segRecs) > 0 {
			w.segs = append(w.segs, walSeg{path: path, first: segRecs[0].seq, last: segRecs[len(segRecs)-1].seq, size: validLen})
			w.lastSeq = segRecs[len(segRecs)-1].seq
			nextSeq = w.lastSeq + 1
			recs = append(recs, segRecs...)
		}
		if damaged || (segTorn && final) {
			if reason == "" {
				reason = "torn record"
			}
			if validLen < int64(len(data)) {
				if terr := truncateSalvage(path, validLen); terr != nil {
					return nil, nil, false, nil, terr
				}
			}
			for _, later := range segPaths[i+1:] {
				if rmErr := os.Remove(later); rmErr != nil {
					return nil, nil, false, nil, fmt.Errorf("stream: dropping wal segment past corruption: %w", rmErr)
				}
			}
			if damaged {
				corrupt = &WALCorruptError{Segment: path, Offset: validLen, Reason: reason, LastGoodSeq: w.lastSeq}
			} else {
				torn = true
			}
			break
		}
	}
	// Reopen the surviving tail segment for appending.
	if n := len(w.segs); n > 0 {
		tail := w.segs[n-1]
		f, oerr := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			return nil, nil, false, nil, fmt.Errorf("stream: reopening wal tail: %w", oerr)
		}
		w.f = f
		w.size = tail.size
	}
	return w, recs, torn, corrupt, nil
}

// truncateSalvage cuts a damaged segment back to its valid prefix (deleting
// it outright when nothing valid remains).
func truncateSalvage(path string, validLen int64) error {
	if validLen == 0 {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("stream: dropping empty wal segment: %w", err)
		}
		return nil
	}
	if err := os.Truncate(path, validLen); err != nil {
		return fmt.Errorf("stream: truncating wal tail: %w", err)
	}
	return nil
}

// encodeWALRecord renders one durable record: length and CRC header, then
// seq and payload (the CRC covers both).
func encodeWALRecord(seq uint64, payload []byte) []byte {
	rec := make([]byte, walHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[8:], seq)
	copy(rec[walHeaderBytes:], payload)
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(rec[8:]))
	return rec
}

// append writes one record. Rotation happens before the write, so a record
// never spans segments. Returns the bytes written.
func (w *wal) append(seq uint64, payload []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("stream: append to closed wal")
	}
	if len(payload) == 0 || len(payload) > walMaxRecordBytes {
		return 0, fmt.Errorf("stream: wal payload of %d bytes out of range", len(payload))
	}
	need := int64(walHeaderBytes + len(payload))
	if w.f == nil || (w.size > 0 && w.size+need > w.segBytes) {
		if err := w.rotate(seq); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(encodeWALRecord(seq, payload))
	w.size += int64(n)
	if err != nil {
		return n, fmt.Errorf("stream: wal append seq %d: %w", seq, err)
	}
	w.lastSeq = seq
	seg := &w.segs[len(w.segs)-1]
	if seg.first == 0 {
		seg.first = seq
	}
	seg.last = seq
	seg.size = w.size
	return n, nil
}

// rotate seals the open segment (synced — a finished segment is always
// durable) and starts a new one named after the next record.
func (w *wal) rotate(firstSeq uint64) error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("stream: syncing sealed wal segment: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("stream: closing sealed wal segment: %w", err)
		}
		w.f = nil
	}
	path := filepath.Join(w.dir, segName(firstSeq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("stream: creating wal segment: %w", err)
	}
	w.f = f
	w.size = 0
	w.segs = append(w.segs, walSeg{path: path})
	return nil
}

func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("stream: wal fsync: %w", err)
	}
	return nil
}

// truncateThrough removes every segment whose records are all covered by a
// durable snapshot at seq — the snapshot owns that prefix now. The open
// tail segment is closed and removed too when fully covered (the next
// append starts a fresh segment).
func (w *wal) truncateThrough(seq uint64) error {
	kept := w.segs[:0]
	for i := range w.segs {
		seg := w.segs[i]
		if seg.last > seq {
			kept = append(kept, seg)
			continue
		}
		if w.f != nil && i == len(w.segs)-1 {
			if err := w.f.Close(); err != nil {
				return fmt.Errorf("stream: closing covered wal segment: %w", err)
			}
			w.f = nil
			w.size = 0
		}
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("stream: removing covered wal segment: %w", err)
		}
	}
	w.segs = kept
	return nil
}

// close seals the WAL: a final sync (crash-consistency of the last records)
// and close. Idempotent.
func (w *wal) close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("stream: syncing wal at close: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("stream: closing wal: %w", err)
	}
	w.f = nil
	return nil
}

// totalBytes is the on-disk footprint across live segments.
func (w *wal) totalBytes() int64 {
	var n int64
	for _, seg := range w.segs {
		n += seg.size
	}
	return n
}

// sortSegPaths orders segment paths by their encoded first sequence; the
// caller passes paths discovered from a directory listing.
func sortSegPaths(paths []string) {
	sort.Slice(paths, func(i, j int) bool {
		a, _ := segSeq(filepath.Base(paths[i]))
		b, _ := segSeq(filepath.Base(paths[j]))
		return a < b
	})
}
