// Package session orchestrates one streaming test run: it wires the chunk
// server, the emulated network path (optional token-bucket shaper upstream
// of the gateway, then the cellular link), the transport stack for the
// chosen ABR design type, the player, and the gateway packet capture —
// the moving parts of Figure 6 in the paper.
package session

import (
	"fmt"

	"csi/internal/abr"
	"csi/internal/capture"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/obs"
	"csi/internal/packet"
	"csi/internal/quicsim"
	"csi/internal/sim"
	"csi/internal/tcpsim"
	"csi/internal/tlssim"
	"csi/internal/webproto"
)

// Design is the ABR streaming system design type of Table 2: combined or
// separate audio, HTTPS or QUIC.
type Design int

const (
	CH Design = iota // combined audio+video, HTTPS
	SH               // separate audio, HTTPS (two connections)
	CQ               // combined, QUIC
	SQ               // separate, QUIC (transport multiplexing)
)

func (d Design) String() string {
	switch d {
	case CH:
		return "CH"
	case SH:
		return "SH"
	case CQ:
		return "CQ"
	case SQ:
		return "SQ"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// ParseDesign converts "CH"/"SH"/"CQ"/"SQ".
func ParseDesign(s string) (Design, error) {
	switch s {
	case "CH":
		return CH, nil
	case "SH":
		return SH, nil
	case "CQ":
		return CQ, nil
	case "SQ":
		return SQ, nil
	default:
		return 0, fmt.Errorf("session: unknown design %q", s)
	}
}

// Separate reports whether the design uses separate audio tracks.
func (d Design) Separate() bool { return d == SH || d == SQ }

// QUIC reports whether the design runs over QUIC.
func (d Design) QUIC() bool { return d == CQ || d == SQ }

// Config describes one test run.
type Config struct {
	Design   Design
	Manifest *media.Manifest
	Algo     abr.Algorithm // default abr.Exo{}

	Bandwidth   *netem.BandwidthTrace    // downlink cellular bandwidth; required
	Shaper      *netem.TokenBucketConfig // optional, upstream of the gateway
	UplinkBps   float64                  // default 20 Mbit/s
	RTT         float64                  // round-trip propagation; default 0.06 s
	LossProb    float64                  // downlink radio loss; default 0.005
	ReorderProb float64                  // downlink reordering probability; default 0
	QueueCap    int64                    // downlink queue bytes; default 192 KiB
	Duration    float64                  // stop issuing requests after this; default 600 s
	Seed        int64

	// Player knobs (zero = abr defaults).
	MaxBufferSec     float64
	ResumeBufferSec  float64
	StartupChunks    int
	StartIndex       int
	StartupBufferSec float64

	// SkipDecoy disables the background metadata fetch to a non-media host
	// (enabled by default to exercise CSI's SNI connection filtering).
	SkipDecoy bool

	// StripSNI removes the SNI from all captured packets, simulating
	// encrypted ClientHello / ESNI deployments: CSI must then fall back to
	// DNS + server-IP association (§5.3.1).
	StripSNI bool

	// Obs traces the whole session stack (engine, transports, player). The
	// tracer's clock is rebound to the session engine's virtual clock for
	// the duration of the run. Nil disables instrumentation.
	Obs *obs.Tracer
}

// Stats summarizes transport- and player-level outcomes of a run.
type Stats struct {
	DownlinkPackets int64
	DownlinkBytes   int64
	QueueDrops      int64
	RandomDrops     int64
	VideoChunks     int
	AudioChunks     int
	Stalls          int
	FinalThroughput float64
}

// Result is everything a run produces.
type Result struct {
	Run   *capture.Run
	Stats Stats
}

// MediaHost is the SNI the media connections use; the decoy metadata fetch
// uses DecoyHost.
const (
	DecoyHost = "api.example.com"
	decoySize = 120_000
)

// Run executes one streaming session and returns the captured run.
func Run(cfg Config) (*Result, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("session: nil manifest")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if cfg.Bandwidth == nil {
		return nil, fmt.Errorf("session: nil bandwidth trace")
	}
	if cfg.Design.Separate() && !cfg.Manifest.HasSeparateAudio() {
		return nil, fmt.Errorf("session: design %v needs separate audio tracks in the manifest", cfg.Design)
	}
	if !cfg.Design.Separate() && cfg.Manifest.HasSeparateAudio() {
		return nil, fmt.Errorf("session: design %v needs a combined (video-only) manifest", cfg.Design)
	}
	if cfg.Algo == nil {
		cfg.Algo = abr.Exo{}
	}
	if cfg.UplinkBps == 0 {
		cfg.UplinkBps = 20_000_000
	}
	if cfg.RTT == 0 {
		cfg.RTT = 0.06
	}
	if cfg.LossProb == 0 {
		cfg.LossProb = 0.005
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 192 * 1024
	}
	if cfg.Duration == 0 {
		cfg.Duration = 600
	}

	eng := sim.New()
	eng.SetEventLimit(200_000_000)
	cfg.Obs.SetClock(eng.Now)
	eng.Instrument(cfg.Obs)
	runSpan := cfg.Obs.Begin("session", "run",
		obs.Str("design", cfg.Design.String()),
		obs.Int("seed", cfg.Seed),
		obs.Float("duration", cfg.Duration))
	trace := capture.NewTrace()
	tap := trace.Tap()
	if cfg.StripSNI {
		inner := tap
		tap = func(v packet.View, now float64) {
			v.SNI = ""
			inner(v, now)
		}
	}

	// Downlink: server -> [token bucket shaper] -> gateway capture ->
	// cellular link -> device.
	down := netem.NewLink(eng, netem.LinkConfig{
		Trace:       cfg.Bandwidth,
		Delay:       cfg.RTT / 2,
		QueueCap:    cfg.QueueCap,
		LossProb:    cfg.LossProb,
		ReorderProb: cfg.ReorderProb,
		Seed:        cfg.Seed ^ 0x5eed,
	}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
	down.SetTap(tap)
	var downSender packet.Sender = down
	if cfg.Shaper != nil {
		tb, err := netem.NewTokenBucket(eng, *cfg.Shaper, down)
		if err != nil {
			return nil, err
		}
		downSender = tb
	}

	// Uplink: device -> gateway capture -> network -> server.
	up := netem.NewLink(eng, netem.LinkConfig{
		Trace: netem.Constant(cfg.UplinkBps),
		Delay: cfg.RTT / 2,
		Seed:  cfg.Seed ^ 0xcafe,
	}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
	up.SetTap(tap)

	// Per-host synthetic server addresses, announced to the monitor by a
	// cleartext DNS exchange before the first connection to each host —
	// the association CSI falls back to when SNI is unavailable.
	nextConnID := 1
	ips := map[string]string{}
	ipFor := func(host string) string {
		if ip, ok := ips[host]; ok {
			return ip
		}
		ip := fmt.Sprintf("203.0.113.%d", len(ips)+10)
		ips[host] = ip
		q := &packet.Packet{
			Size: packet.IPHeader + packet.UDPHeader + int64(18+len(host)),
			View: packet.View{Dir: packet.Up, Proto: packet.UDP, DNSQuery: host},
		}
		q.Arrive = func(now float64) {
			r := &packet.Packet{
				Size: packet.IPHeader + packet.UDPHeader + int64(34+len(host)),
				View: packet.View{Dir: packet.Down, Proto: packet.UDP, DNSQuery: host, DNSAnswerIP: ip},
			}
			r.Arrive = func(now float64) {}
			down.Send(r)
		}
		up.Send(q)
		return ip
	}
	newTCP := func(host string) (*tcpsim.Conn, *tlssim.Session) {
		conn := tcpsim.NewConn(eng, tcpsim.Config{ConnID: nextConnID, ServerIP: ipFor(host), Obs: cfg.Obs}, up, downSender)
		nextConnID++
		return conn, tlssim.NewSession(conn)
	}
	newQUIC := func(host string) *quicsim.Conn {
		conn := quicsim.NewConn(eng, quicsim.Config{ConnID: nextConnID, ServerIP: ipFor(host), Obs: cfg.Obs}, up, downSender)
		nextConnID++
		return conn
	}

	// Decoy metadata fetch on a different host: CSI must ignore this
	// connection via SNI filtering (Step 1.1).
	if !cfg.SkipDecoy {
		dConn, dSess := newTCP(DecoyHost)
		dConn.Start(func(now float64) {
			dSess.Handshake(DecoyHost, func(now float64) {
				dSess.Up.Write(400, tlssim.AppData, func(now float64) {
					dSess.Down.Write(decoySize, tlssim.AppData, nil)
				})
			})
		})
	}

	// Media connections + fetchers per design.
	var videoF, audioF webproto.Fetcher
	pending := 0
	var player *abr.Player
	ready := func(now float64) {
		pending--
		if pending == 0 && player != nil {
			player.Start()
		}
	}

	mediaHost := cfg.Manifest.Host
	if mediaHost == "" {
		mediaHost = "media.example.com"
	}
	switch cfg.Design {
	case CH, SH:
		conn, sess := newTCP(mediaHost)
		videoF = webproto.NewHTTPSFetcher(sess, cfg.Manifest, cfg.Seed+101)
		pending++
		conn.Start(func(now float64) { sess.Handshake(mediaHost, ready) })
		if cfg.Design == SH {
			aConn, aSess := newTCP(mediaHost)
			audioF = webproto.NewHTTPSFetcher(aSess, cfg.Manifest, cfg.Seed+102)
			pending++
			aConn.Start(func(now float64) { aSess.Handshake(mediaHost, ready) })
		}
	case CQ, SQ:
		conn := newQUIC(mediaHost)
		qf := webproto.NewQUICFetcher(conn, cfg.Manifest, cfg.Seed+103)
		videoF = qf
		if cfg.Design == SQ {
			audioF = qf // the same connection: transport multiplexing
		}
		pending++
		conn.Start(mediaHost, ready)
	}

	p, err := abr.NewPlayer(eng, abr.Config{
		Manifest:         cfg.Manifest,
		Algo:             cfg.Algo,
		VideoFetcher:     videoF,
		AudioFetcher:     audioF,
		MaxBufferSec:     cfg.MaxBufferSec,
		ResumeBufferSec:  cfg.ResumeBufferSec,
		StartupChunks:    cfg.StartupChunks,
		StartIndex:       cfg.StartIndex,
		StartupBufferSec: cfg.StartupBufferSec,
		StopAt:           cfg.Duration,
		Obs:              cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	player = p

	eng.Run()
	player.Finish()
	runSpan.End(
		obs.Int("events", eng.Fired()),
		obs.Int("stalls", int64(len(player.Stalls()))))

	res := &Result{
		Run: &capture.Run{
			Trace:   trace,
			Truth:   player.Truth(),
			Display: player.DisplayLog(),
			Stalls:  player.Stalls(),
		},
	}
	res.Stats = Stats{
		DownlinkPackets: down.Delivered,
		DownlinkBytes:   down.Bytes,
		QueueDrops:      down.QueueDrops,
		RandomDrops:     down.RandomDrops,
		Stalls:          len(player.Stalls()),
		FinalThroughput: player.Throughput(),
	}
	for _, tr := range res.Run.Truth {
		if tr.Kind == media.Video {
			res.Stats.VideoChunks++
		} else {
			res.Stats.AudioChunks++
		}
	}
	return res, nil
}
