package session

import (
	"testing"

	"csi/internal/abr"
	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
)

func combinedManifest(t *testing.T) *media.Manifest {
	t.Helper()
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "t", Seed: 11, DurationSec: 300, ChunkDur: 5, TargetPASR: 1.4,
	})
}

func separateManifest(t *testing.T) *media.Manifest {
	t.Helper()
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "t", Seed: 11, DurationSec: 300, ChunkDur: 5, TargetPASR: 1.4, AudioTracks: 1,
	})
}

func runDesign(t *testing.T, d Design, man *media.Manifest) *Result {
	t.Helper()
	res, err := Run(Config{
		Design:    d,
		Manifest:  man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  120,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("Run(%v): %v", d, err)
	}
	return res
}

func TestRunAllDesigns(t *testing.T) {
	cm, sm := combinedManifest(t), separateManifest(t)
	for _, tc := range []struct {
		d   Design
		man *media.Manifest
	}{{CH, cm}, {SH, sm}, {CQ, cm}, {SQ, sm}} {
		res := runDesign(t, tc.d, tc.man)
		if res.Stats.VideoChunks < 10 {
			t.Errorf("%v: only %d video chunks in 120 s", tc.d, res.Stats.VideoChunks)
		}
		if tc.d.Separate() && res.Stats.AudioChunks < 10 {
			t.Errorf("%v: only %d audio chunks", tc.d, res.Stats.AudioChunks)
		}
		if !tc.d.Separate() && res.Stats.AudioChunks != 0 {
			t.Errorf("%v: unexpected audio chunks %d", tc.d, res.Stats.AudioChunks)
		}
		if len(res.Run.Trace.Packets) == 0 {
			t.Errorf("%v: empty capture", tc.d)
		}
		if len(res.Run.Display) == 0 {
			t.Errorf("%v: empty display log", tc.d)
		}
		// All requests before the duration limit; downloads progress in
		// index order per media type.
		lastIdx := map[bool]int{true: -1, false: -1}
		for _, tr := range res.Run.Truth {
			if tr.ReqTime >= 120 {
				t.Errorf("%v: request at %g after duration limit", tc.d, tr.ReqTime)
			}
			isVideo := tr.Kind == media.Video
			if tr.Ref.Index != lastIdx[isVideo]+1 {
				t.Errorf("%v: %v indexes not contiguous: %d after %d", tc.d, tr.Kind, tr.Ref.Index, lastIdx[isVideo])
			}
			lastIdx[isVideo] = tr.Ref.Index
		}
	}
}

func TestSNIRecorded(t *testing.T) {
	res := runDesign(t, CH, combinedManifest(t))
	ids := res.Run.Trace.ConnIDs("media.example.com")
	if len(ids) != 1 {
		t.Fatalf("media connections = %v, want exactly 1", ids)
	}
	decoy := res.Run.Trace.ConnIDs(DecoyHost)
	if len(decoy) != 1 {
		t.Fatalf("decoy connections = %v, want exactly 1", decoy)
	}
}

func TestAdaptationReactsToBandwidth(t *testing.T) {
	man := combinedManifest(t)
	low := runDesign(t, CH, man)
	res, err := Run(Config{
		Design: CH, Manifest: man,
		Bandwidth: netem.Constant(1_000_000),
		Duration:  120, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	avgTrack := func(r *Result) float64 {
		s, n := 0, 0
		for _, tr := range r.Run.Truth {
			if tr.Kind == media.Video {
				s += tr.Ref.Track
				n++
			}
		}
		return float64(s) / float64(n)
	}
	if avgTrack(res) >= avgTrack(low) {
		t.Fatalf("1 Mbit/s run selected tracks (avg %.2f) >= 4 Mbit/s run (avg %.2f)",
			avgTrack(res), avgTrack(low))
	}
}

func TestLowBandwidthCausesLowTracksNotStallsForever(t *testing.T) {
	res, err := Run(Config{
		Design: CH, Manifest: combinedManifest(t),
		Bandwidth: netem.Constant(600_000),
		Duration:  120, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 600 kbit/s fits the lowest (200 kbit/s) track; the player should
	// make steady progress.
	if res.Stats.VideoChunks < 15 {
		t.Fatalf("only %d chunks at 600 kbit/s", res.Stats.VideoChunks)
	}
}

func TestShaperReducesDataUsage(t *testing.T) {
	man := separateManifest(t)
	unshaped := runDesign(t, SH, man)
	shaped, err := Run(Config{
		Design: SH, Manifest: man,
		Bandwidth: netem.Constant(4_000_000),
		Shaper:    &netem.TokenBucketConfig{RateBps: 1_000_000, BucketSize: 50_000},
		Duration:  120, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shaped.Stats.DownlinkBytes >= unshaped.Stats.DownlinkBytes {
		t.Fatalf("shaped run used %d bytes >= unshaped %d", shaped.Stats.DownlinkBytes, unshaped.Stats.DownlinkBytes)
	}
}

func TestConfigValidation(t *testing.T) {
	cm, sm := combinedManifest(t), separateManifest(t)
	if _, err := Run(Config{Design: SH, Manifest: cm, Bandwidth: netem.Constant(1e6)}); err == nil {
		t.Error("SH with combined manifest accepted")
	}
	if _, err := Run(Config{Design: CH, Manifest: sm, Bandwidth: netem.Constant(1e6)}); err == nil {
		t.Error("CH with separate-audio manifest accepted")
	}
	if _, err := Run(Config{Design: CH, Manifest: cm}); err == nil {
		t.Error("missing bandwidth accepted")
	}
	if _, err := Run(Config{Design: CH, Bandwidth: netem.Constant(1e6)}); err == nil {
		t.Error("missing manifest accepted")
	}
}

func TestParseDesign(t *testing.T) {
	for _, s := range []string{"CH", "SH", "CQ", "SQ"} {
		d, err := ParseDesign(s)
		if err != nil || d.String() != s {
			t.Errorf("ParseDesign(%q) = %v, %v", s, d, err)
		}
	}
	if _, err := ParseDesign("XX"); err == nil {
		t.Error("ParseDesign(XX) accepted")
	}
}

func TestHuluLikeOnOffPattern(t *testing.T) {
	// Hulu-like config: resume == max buffer => chunk-at-a-time ON-OFF
	// after the ramp (§7 / Figure 11a).
	res, err := Run(Config{
		Design: CH, Manifest: combinedManifest(t),
		Algo:            abr.HuluHalf{},
		Bandwidth:       netem.Constant(2_000_000),
		MaxBufferSec:    145,
		ResumeBufferSec: 145,
		StartupChunks:   3,
		Duration:        280,
		Seed:            4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer cap 145 s over a 280 s session on a 300 s asset: the player
	// must not have downloaded the whole video instantly; its last
	// request should come well after the ramp.
	last := 0.0
	for _, tr := range res.Run.Truth {
		if tr.ReqTime > last {
			last = tr.ReqTime
		}
	}
	if last < 100 {
		t.Fatalf("last request at %g; ON-OFF pacing missing", last)
	}
}

func TestDeterminism(t *testing.T) {
	man := separateManifest(t)
	a := runDesign(t, SQ, man)
	b := runDesign(t, SQ, man)
	if len(a.Run.Truth) != len(b.Run.Truth) || len(a.Run.Trace.Packets) != len(b.Run.Trace.Packets) {
		t.Fatalf("runs differ: %d/%d truth, %d/%d packets",
			len(a.Run.Truth), len(b.Run.Truth), len(a.Run.Trace.Packets), len(b.Run.Trace.Packets))
	}
	for i := range a.Run.Truth {
		if a.Run.Truth[i] != b.Run.Truth[i] {
			t.Fatalf("truth diverges at %d", i)
		}
	}
}

// Every adaptation algorithm must drive a full session without wedging the
// player or the transports.
func TestAllAlgorithmsEndToEnd(t *testing.T) {
	man := combinedManifest(t)
	for _, name := range []string{"rate", "bba", "bola", "exo", "hulu-half"} {
		a, err := abr.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Design: CH, Manifest: man,
			Algo:      a,
			Bandwidth: netem.Constant(4_000_000),
			Duration:  90, Seed: 6,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.VideoChunks < 10 {
			t.Errorf("%s: only %d chunks", name, res.Stats.VideoChunks)
		}
	}
}
