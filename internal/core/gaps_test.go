package core

import (
	"testing"

	"csi/internal/capture"
	"csi/internal/media"
	"csi/internal/packet"
)

// Monitor-gap repair and graceful degradation tests. The scenarios mirror
// what internal/faults produces: whole packets missing from the capture
// (never retransmitted), duplicated packets, and lost handshakes.

func TestHTTPSGapRepairRestoresEstimate(t *testing.T) {
	views := []packet.View{
		sni(0, 1, "m.x"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 1400, 1380),
		// Packet covering [1400,2800) dropped by the monitor.
		tcpDown(1.3, 1, 2800, 1400, 1390),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	r := est.Requests[0]
	if r.GapBytes == 0 {
		t.Fatal("seq hole not repaired")
	}
	// The hole is 1400 payload bytes, scaled by the observed app ratio
	// (2770/2800); the repaired estimate must be close to the clean one.
	clean := int64(1380 + 1385 + 1390 - 280)
	if diff := r.Est - clean; diff < -50 || diff > 50 {
		t.Fatalf("repaired est = %d, clean would be ~%d", r.Est, clean)
	}
	if r.Confidence <= 0 || r.Confidence >= 1 {
		t.Fatalf("repaired request confidence = %g, want in (0,1)", r.Confidence)
	}
}

func TestQUICGapRepairAndDedup(t *testing.T) {
	views := []packet.View{
		quicSNI(0, 1, "m.x"),
		quicUp(1.0, 1, 1, 400),
		quicDown(1.1, 1, 0, 1330),
		quicDown(1.15, 1, 0, 1330), // monitor duplicate: same PN
		// PNs 1 and 2 dropped by the monitor.
		quicDown(1.3, 1, 3, 1330),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	r := est.Requests[0]
	// 2 missing PNs repaired at the mean payload (1330), duplicate not
	// double-counted: 1330 + 2*1330 + 1330 - 280.
	want := int64(4*1330 - 280)
	if r.Est != want {
		t.Fatalf("est = %d, want %d", r.Est, want)
	}
	if r.GapBytes != 2*1330 {
		t.Fatalf("gap bytes = %d, want %d", r.GapBytes, 2*1330)
	}
}

func TestQUICDuplicateRequestNotDoubleCounted(t *testing.T) {
	views := []packet.View{
		quicSNI(0, 1, "m.x"),
		quicUp(1.0, 1, 1, 400),
		quicDown(1.1, 1, 0, 50_000),
		quicUp(1.2, 1, 1, 400), // monitor duplicate of the request
		quicDown(1.3, 1, 1, 50_000),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 1 {
		t.Fatalf("requests = %d, want 1 (duplicate PN dropped)", len(est.Requests))
	}
}

func TestCrossTrafficConnFiltered(t *testing.T) {
	views := []packet.View{
		sni(0, 1, "media.example.com"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 1400, 1380),
		tcpDown(1.2, 1, 1400, 1400, 1390),
		// Conn 9: same SNI, but every "chunk" is far below MinChunkBytes —
		// API polling, not media.
		sni(0, 9, "media.example.com"),
		tcpUp(0.5, 9, 300, 200, 180),
		tcpDown(0.6, 9, 0, 600, 580),
		tcpUp(1.5, 9, 500, 200, 180),
		tcpDown(1.6, 9, 600, 700, 680),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "media.example.com", MinChunkBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 1 || est.Requests[0].Conn != 1 {
		t.Fatalf("cross traffic leaked: %+v", est.Requests)
	}
	found := false
	for _, w := range est.Warnings {
		if w.Code == "cross_traffic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cross_traffic warning: %+v", est.Warnings)
	}
}

func TestDegradeFallsBackWithoutSNI(t *testing.T) {
	// Mid-session capture: no SNI, no DNS, just bulk downlink data.
	var views []packet.View
	views = append(views, packet.View{Time: 0.9, Dir: packet.Up, Proto: packet.TCP, ConnID: 1,
		TCPSeq: 300, TCPPayload: 400, TLSAppBytes: 380, Size: 460})
	seq := int64(0)
	for i := 0; i < 300; i++ {
		views = append(views, packet.View{Time: 1 + float64(i)*0.01, Dir: packet.Down, Proto: packet.TCP,
			ConnID: 1, TCPSeq: seq, TCPPayload: 1400, TLSAppBytes: 1380, Size: 1452})
		seq += 1400
	}
	tr := mkTrace(views)
	if _, err := Estimate(tr, Params{MediaHost: "m.x"}); err == nil {
		t.Fatal("SNI-less trace accepted without Degrade")
	}
	est, err := Estimate(tr, Params{MediaHost: "m.x", Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) == 0 {
		t.Fatalf("volume fallback found no requests: %+v", est.Warnings)
	}
	found := false
	for _, w := range est.Warnings {
		if w.Code == "sni_missing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sni_missing warning: %+v", est.Warnings)
	}
}

func TestDegradeYieldsZeroInferenceNotError(t *testing.T) {
	man := &media.Manifest{ChunkDur: 5, Tracks: []media.Track{
		{ID: 0, Kind: media.Video, Sizes: []int64{100_000, 50_000}},
	}}
	// Request 1 matches only index 1 (50 KB), request 2 only index 0
	// (100 KB): no contiguous ordering exists at any k in the ladder.
	views := []packet.View{
		sni(0, 1, "m.x"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 50_280, 50_280),
		tcpUp(2.0, 1, 700, 400, 380),
		tcpDown(2.1, 1, 50_280, 100_280, 100_280),
	}
	tr := mkTrace(views)
	if _, err := Infer(man, tr, Params{MediaHost: "m.x"}); err == nil {
		t.Fatal("unmatchable estimate accepted without Degrade")
	}
	inf, err := Infer(man, tr, Params{MediaHost: "m.x", Degrade: true})
	if err != nil {
		t.Fatalf("Degrade still errored: %v", err)
	}
	if inf.SequenceCount != 0 {
		t.Fatalf("sequence count = %g, want 0", inf.SequenceCount)
	}
	if len(inf.Warnings) == 0 {
		t.Fatal("zero inference carries no warnings")
	}
	truth := []capture.TruthRecord{{ReqTime: 1.0, Kind: media.Video, Ref: media.ChunkRef{Track: 0, Index: 0}}}
	best, worst, err := inf.AccuracyRange(truth)
	if err != nil || best != 0 || worst != 0 {
		t.Fatalf("zero eval = %g,%g,%v", best, worst, err)
	}
	if c := inf.Confidences(); len(c) != 2 || c[0] != 1 || c[1] != 1 {
		t.Fatalf("confidences = %v", c)
	}
}

func TestAccuracyRangeToleratesCountMismatch(t *testing.T) {
	man := &media.Manifest{ChunkDur: 5, Tracks: []media.Track{
		{ID: 0, Kind: media.Video, Sizes: []int64{50_000, 60_000, 70_000}},
	}}
	views := []packet.View{
		sni(0, 1, "m.x"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 50_280, 50_280),
		tcpUp(2.0, 1, 700, 400, 380),
		tcpDown(2.1, 1, 50_280, 60_280, 60_280),
	}
	inf, err := Infer(man, mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	// Three truth records for two detected requests: the monitor merged
	// one away. Score against the larger population.
	truth := []capture.TruthRecord{
		{ReqTime: 1.0, Kind: media.Video, Ref: media.ChunkRef{Track: 0, Index: 0}},
		{ReqTime: 2.0, Kind: media.Video, Ref: media.ChunkRef{Track: 0, Index: 1}},
		{ReqTime: 3.0, Kind: media.Video, Ref: media.ChunkRef{Track: 0, Index: 2}},
	}
	best, _, err := inf.AccuracyRange(truth)
	if err != nil {
		t.Fatalf("count mismatch no longer tolerated: %v", err)
	}
	if best <= 0 || best > 2.0/3.0+1e-9 {
		t.Fatalf("aligned best accuracy = %g, want in (0, 2/3]", best)
	}
}

func TestWarningsReachInference(t *testing.T) {
	man := &media.Manifest{ChunkDur: 5, Tracks: []media.Track{
		{ID: 0, Kind: media.Video, Sizes: []int64{50_000}},
	}}
	views := []packet.View{
		sni(0, 1, "m.x"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 50_280, 50_280),
		// Cross-traffic conn with the same SNI.
		sni(0, 2, "m.x"),
		tcpUp(0.5, 2, 300, 200, 180),
		tcpDown(0.6, 2, 0, 600, 580),
		tcpUp(1.5, 2, 500, 200, 180),
		tcpDown(1.6, 2, 600, 700, 680),
	}
	inf, err := Infer(man, mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Warnings) == 0 {
		t.Fatal("estimation warnings did not reach the Inference")
	}
}

// crossConnViews builds a small same-SNI TCP connection whose every
// "chunk" is sub-chunk sized — the shape internal/faults injects.
func crossConnViews(conn int, host string) []packet.View {
	return []packet.View{
		sni(0, conn, host),
		tcpUp(0.5, conn, 300, 200, 180),
		tcpDown(0.6, conn, 0, 600, 580),
		tcpUp(1.5, conn, 500, 200, 180),
		tcpDown(1.6, conn, 600, 700, 680),
		tcpUp(2.5, conn, 700, 200, 180),
		tcpDown(2.6, conn, 1300, 500, 480),
	}
}

func TestDegradeRetriesVolumeWhenSNIOnlyMatchesCrossTraffic(t *testing.T) {
	// The capture window ate conn 1's handshake (no SNI), while injected
	// cross traffic on conn 2 carries the media SNI. SNI matching alone
	// would analyze only the cross traffic and come up empty.
	var views []packet.View
	views = append(views, packet.View{Time: 0.9, Dir: packet.Up, Proto: packet.TCP, ConnID: 1,
		TCPSeq: 300, TCPPayload: 400, TLSAppBytes: 380, Size: 460})
	seq := int64(0)
	for i := 0; i < 300; i++ {
		views = append(views, packet.View{Time: 1 + float64(i)*0.01, Dir: packet.Down, Proto: packet.TCP,
			ConnID: 1, TCPSeq: seq, TCPPayload: 1400, TLSAppBytes: 1380, Size: 1452})
		seq += 1400
	}
	views = append(views, crossConnViews(2, "m.x")...)
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x", Degrade: true, MinChunkBytes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) == 0 {
		t.Fatalf("volume retry found no requests: %+v", est.Warnings)
	}
	for _, r := range est.Requests {
		if r.Conn != 1 {
			t.Fatalf("request attributed to cross conn: %+v", r)
		}
	}
	codes := map[string]bool{}
	for _, w := range est.Warnings {
		codes[w.Code] = true
	}
	if !codes["cross_traffic"] || !codes["sni_mismatch"] {
		t.Fatalf("warnings = %+v, want cross_traffic and sni_mismatch", est.Warnings)
	}
}

func TestDegradeMuxFallsBackAcrossCrossSNI(t *testing.T) {
	// SQ analysis with the QUIC media connection's handshake lost: the only
	// SNI matches are TCP cross flows, so the busiest-UDP pick must extend
	// to volume-selected connections.
	var views []packet.View
	views = append(views, packet.View{Time: 0.9, Dir: packet.Up, Proto: packet.UDP, ConnID: 1,
		QUICPN: 1, QUICPayload: 400, Size: 460})
	for i := 0; i < 300; i++ {
		views = append(views, packet.View{Time: 1 + float64(i)*0.01, Dir: packet.Down, Proto: packet.UDP,
			ConnID: 1, QUICPN: int64(i), QUICPayload: 1330, Size: 1382})
	}
	views = append(views, crossConnViews(2, "m.x")...)
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x", Mux: true, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Mux || len(est.Groups) == 0 {
		t.Fatalf("mux fallback found no groups: %+v", est.Warnings)
	}
	found := false
	for _, w := range est.Warnings {
		if w.Code == "sni_mismatch" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sni_mismatch warning: %+v", est.Warnings)
	}
}
