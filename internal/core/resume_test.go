package core_test

import (
	"math"
	"reflect"
	"testing"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/faults"
	"csi/internal/guard"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/session"
)

// growInfer replays src's packets into a fresh trace in `steps` batches and
// runs core.Infer after every batch with one shared EstimateMemo — the exact
// shape of the streaming daemon's mid-flow re-solves over a growing flow.
// Returns the final (full-trace) inference. mk customizes the per-solve
// Params before each solve (e.g. to install a fresh guard).
func growInfer(t *testing.T, man *media.Manifest, src *capture.Trace, steps int, mk func() core.Params) *core.Inference {
	t.Helper()
	grown := capture.NewTrace()
	tap := grown.Tap()
	memo := core.NewEstimateMemo()
	n := len(src.Packets)
	var inf *core.Inference
	for s := 1; s <= steps; s++ {
		hi := n * s / steps
		for _, v := range src.Packets[len(grown.Packets):hi] {
			tap(v, 0)
		}
		p := mk()
		p.Memo = memo
		var err error
		inf, err = core.Infer(man, grown, p)
		// A mid-growth prefix can end in a truncated download whose estimate
		// matches no chunk; the daemon treats such solves as provisional and
		// keeps going. Only the final full-trace solve must succeed.
		if err != nil && s == steps {
			t.Fatalf("final Infer: %v", err)
		}
	}
	return inf
}

// requireSameInference asserts byte-exact equality of every inference field
// except SequenceCount, which gets the last-ULP relative tolerance (its
// float accumulation order in the parallel search kernel varies with
// goroutine scheduling, independent of the memo).
func requireSameInference(t *testing.T, got, want *core.Inference) {
	t.Helper()
	if got.Proto != want.Proto || got.Mux != want.Mux || got.Truncated != want.Truncated {
		t.Fatalf("shape mismatch: got {%v %v %v} want {%v %v %v}",
			got.Proto, got.Mux, got.Truncated, want.Proto, want.Mux, want.Truncated)
	}
	if !reflect.DeepEqual(got.Requests, want.Requests) {
		t.Fatalf("requests diverged:\n got %+v\nwant %+v", got.Requests, want.Requests)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("groups diverged:\n got %+v\nwant %+v", got.Groups, want.Groups)
	}
	if !reflect.DeepEqual(got.Warnings, want.Warnings) {
		t.Fatalf("warnings diverged:\n got %+v\nwant %+v", got.Warnings, want.Warnings)
	}
	if !reflect.DeepEqual(got.Best, want.Best) {
		t.Fatalf("best sequence diverged:\n got %+v\nwant %+v", got.Best, want.Best)
	}
	if d := math.Abs(got.SequenceCount - want.SequenceCount); d > 1e-12*math.Max(math.Abs(got.SequenceCount), math.Abs(want.SequenceCount)) {
		t.Fatalf("sequence count diverged: got %g want %g", got.SequenceCount, want.SequenceCount)
	}
}

func resumeFixture(t *testing.T, d session.Design, seed int64) (*media.Manifest, *capture.Run) {
	t.Helper()
	man := manifestFor(t, d)
	res, err := session.Run(session.Config{
		Design:    d,
		Manifest:  man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: seed, MeanBps: 5_000_000, Variability: 0.4}),
		Duration:  150,
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("session.Run(%v): %v", d, err)
	}
	return man, res.Run
}

// TestResumeSHMatchesBatch pins the tentpole exactness contract on the
// no-MUX path: five incremental memoized solves over a growing trace must
// end at the same inference as one batch solve over the full trace.
func TestResumeSHMatchesBatch(t *testing.T) {
	man, run := resumeFixture(t, session.SH, 31)
	p := core.Params{MediaHost: "media.example.com"}
	batch, err := core.Infer(man, run.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	grown := growInfer(t, man, run.Trace, 5, func() core.Params { return p })
	requireSameInference(t, grown, batch)
}

// TestResumeSQMatchesBatch is the same contract on the MUX path, where the
// memo caches the SQ traffic grouping rather than request extraction. The
// solves share one process HalfCache exactly like the daemon's do — the
// PR 8 warm/cold byte-identity contract is what makes that safe.
func TestResumeSQMatchesBatch(t *testing.T) {
	man, run := resumeFixture(t, session.SQ, 32)
	hc := core.NewHalfCache(256 << 20)
	p := core.Params{MediaHost: "media.example.com", Mux: true, HalfCache: hc}
	batch, err := core.Infer(man, run.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	grown := growInfer(t, man, run.Trace, 5, func() core.Params { return p })
	requireSameInference(t, grown, batch)
}

// TestResumeFaultedMatchesBatch grows an impaired capture (bursty loss,
// snaplen clipping, cross traffic) under Degrade and checks the memoized
// result still matches batch — warnings, gap repairs and the cross-traffic
// filter must replay byte-identically from the memo.
func TestResumeFaultedMatchesBatch(t *testing.T) {
	man, run := resumeFixture(t, session.SH, 33)
	faulted, _ := faults.Apply(run, faults.Spec{
		Seed: 7, DropGood: 0.001, DropBad: 0.2, PGB: 0.01, PBG: 0.3,
		Snaplen: 96, CrossFlows: 2,
	}, nil)
	p := core.Params{MediaHost: "media.example.com", Degrade: true}
	batch, err := core.Infer(man, faulted.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	grown := growInfer(t, man, faulted.Trace, 4, func() core.Params { return p })
	requireSameInference(t, grown, batch)
}

// TestResumeGuardBudgetMatchesBatch checks that a memo hit charges the
// guard exactly what the elided scan would have: with a small work budget
// (fresh per solve, like the daemon's per-solve guards) the final memoized
// solve must truncate at the same point — same warnings, same partial
// result — as a budgeted batch solve.
func TestResumeGuardBudgetMatchesBatch(t *testing.T) {
	man, run := resumeFixture(t, session.SH, 34)
	const budget = 4000
	batch, err := core.Infer(man, run.Trace, core.Params{
		MediaHost: "media.example.com", Guard: guard.New(budget),
	})
	if err != nil {
		t.Fatal(err)
	}
	grown := growInfer(t, man, run.Trace, 5, func() core.Params {
		return core.Params{MediaHost: "media.example.com", Guard: guard.New(budget)}
	})
	requireSameInference(t, grown, batch)
}
