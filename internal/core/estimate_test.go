package core

import (
	"testing"

	"csi/internal/capture"
	"csi/internal/packet"
)

func mkTrace(views []packet.View) *capture.Trace {
	tr := capture.NewTrace()
	tap := tr.Tap()
	for _, v := range views {
		tap(v, v.Time)
	}
	return tr
}

func tcpUp(t float64, conn int, seq, payload, app int64) packet.View {
	return packet.View{Time: t, Dir: packet.Up, Proto: packet.TCP, ConnID: conn,
		TCPSeq: seq, TCPPayload: payload, TLSAppBytes: app}
}

func tcpDown(t float64, conn int, seq, payload, app int64) packet.View {
	return packet.View{Time: t, Dir: packet.Down, Proto: packet.TCP, ConnID: conn,
		TCPSeq: seq, TCPPayload: payload, TLSAppBytes: app}
}

func sni(t float64, conn int, host string) packet.View {
	return packet.View{Time: t, Dir: packet.Up, Proto: packet.TCP, ConnID: conn,
		TCPSeq: 0, TCPPayload: 300, TLSHSBytes: 280, SNI: host}
}

func TestEstimateHTTPSBasic(t *testing.T) {
	views := []packet.View{
		sni(0, 1, "media.example.com"),
		tcpUp(1.0, 1, 300, 400, 380),   // request 1
		tcpDown(1.1, 1, 0, 1400, 1380), // response bytes
		tcpDown(1.2, 1, 1400, 1400, 1390),
		tcpUp(2.0, 1, 700, 400, 380), // request 2
		tcpDown(2.1, 1, 2800, 900, 880),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "media.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 2 {
		t.Fatalf("requests = %d, want 2", len(est.Requests))
	}
	// 280 header bytes are discounted per response.
	if got := est.Requests[0].Est; got != 1380+1390-280 {
		t.Fatalf("req0 est = %d", got)
	}
	if got := est.Requests[1].Est; got != 880-280 {
		t.Fatalf("req1 est = %d", got)
	}
	if est.Requests[0].LastData != 1.2 {
		t.Fatalf("req0 lastData = %g", est.Requests[0].LastData)
	}
}

func TestEstimateHTTPSDedupsRetransmissions(t *testing.T) {
	views := []packet.View{
		sni(0, 1, "m.x"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 1400, 1380),
		tcpDown(1.2, 1, 0, 1400, 1380), // full retransmission
		tcpDown(1.3, 1, 1400, 1400, 1390),
		tcpDown(1.4, 1, 700, 1400, 1385), // partial overlap: only [1400,2100) fresh
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	got := est.Requests[0].Est
	// 1380 + 1390 (fresh) + 0 (dup) + 1385*0 fresh? The partial packet
	// covers [700,2100): fresh part is empty after [0,2800) coverage.
	want := int64(1380+1390) - 280
	if got != want {
		t.Fatalf("deduped est = %d, want %d", got, want)
	}
}

func TestEstimateHTTPSDedupsUplinkRequests(t *testing.T) {
	views := []packet.View{
		sni(0, 1, "m.x"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 1400, 1380),
		tcpUp(1.5, 1, 300, 400, 380), // retransmitted request: same SEQ
		tcpDown(1.6, 1, 1400, 900, 880),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 1 {
		t.Fatalf("requests = %d, want 1 (rtx request must be dropped)", len(est.Requests))
	}
}

func TestEstimateFiltersBySNI(t *testing.T) {
	views := []packet.View{
		sni(0, 1, "media.example.com"),
		sni(0, 2, "api.example.com"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 1400, 1380),
		tcpUp(1.0, 2, 300, 400, 380),
		tcpDown(1.1, 2, 0, 9000, 8900), // decoy traffic
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "media.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 1 || est.Requests[0].Est != 1380-280 {
		t.Fatalf("decoy traffic leaked into estimation: %+v", est.Requests)
	}
	if _, err := Estimate(mkTrace(views), Params{MediaHost: "nosuch.host"}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func quicUp(t float64, conn int, pn, payload int64) packet.View {
	return packet.View{Time: t, Dir: packet.Up, Proto: packet.UDP, ConnID: conn,
		QUICPN: pn, QUICPayload: payload}
}

func quicDown(t float64, conn int, pn, payload int64) packet.View {
	return packet.View{Time: t, Dir: packet.Down, Proto: packet.UDP, ConnID: conn,
		QUICPN: pn, QUICPayload: payload}
}

func quicSNI(t float64, conn int, host string) packet.View {
	return packet.View{Time: t, Dir: packet.Up, Proto: packet.UDP, ConnID: conn,
		QUICPN: 0, QUICPayload: 1200, QUICLong: true, SNI: host}
}

func TestEstimateQUICRequestThreshold(t *testing.T) {
	views := []packet.View{
		quicSNI(0, 1, "m.x"),
		quicUp(1.0, 1, 1, 400), // request (>80)
		quicDown(1.1, 1, 0, 1330),
		quicUp(1.15, 1, 2, 22), // ACK (<80): not a request
		quicDown(1.2, 1, 1, 900),
		quicUp(2.0, 1, 3, 420), // request 2
		quicDown(2.1, 1, 2, 600),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 2 {
		t.Fatalf("requests = %d, want 2", len(est.Requests))
	}
	if got := est.Requests[0].Est; got != 1330+900-280 {
		t.Fatalf("req0 est = %d", got)
	}
}

func TestEstimateQUICPhantomFilter(t *testing.T) {
	views := []packet.View{
		quicSNI(0, 1, "m.x"),
		quicUp(1.0, 1, 1, 400),   // request
		quicDown(1.1, 1, 0, 500), // tiny bit of data
		quicUp(1.2, 1, 2, 400),   // rtx of the request (phantom)
		quicDown(1.3, 1, 1, 50_000),
	}
	p := Params{MediaHost: "m.x", MinChunkBytes: 10_000}
	est, err := Estimate(mkTrace(views), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 1 {
		t.Fatalf("requests = %d, want 1 (phantom merged)", len(est.Requests))
	}
	if got := est.Requests[0].Est; got != 500+50_000-280 {
		t.Fatalf("merged est = %d", got)
	}
}

func TestEstimateMuxSplitPoints(t *testing.T) {
	views := []packet.View{
		quicSNI(0, 1, "m.x"),
		// SP2 at start: two simultaneous requests (video + audio).
		quicUp(1.000, 1, 1, 400),
		quicUp(1.001, 1, 2, 410),
		quicDown(1.1, 1, 0, 1330),
		quicDown(1.2, 1, 1, 1330),
		quicDown(1.3, 1, 2, 1330),
		// SP1: long idle gap (> 2 s).
		quicUp(8.0, 1, 3, 400),
		quicDown(8.1, 1, 3, 1330),
		quicDown(8.2, 1, 4, 900),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x", Mux: true})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Mux || len(est.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (SP1 split)", len(est.Groups))
	}
	g0, g1 := est.Groups[0], est.Groups[1]
	if len(g0.ReqTimes) != 2 || len(g1.ReqTimes) != 1 {
		t.Fatalf("group request counts = %d,%d", len(g0.ReqTimes), len(g1.ReqTimes))
	}
	if g0.Est != 3*1330-2*280 {
		t.Fatalf("g0 est = %d", g0.Est)
	}
	if g1.Est != 1330+900-280 {
		t.Fatalf("g1 est = %d", g1.Est)
	}
}

func TestEstimateMuxRequiresQUIC(t *testing.T) {
	views := []packet.View{
		sni(0, 1, "m.x"),
		tcpUp(1.0, 1, 300, 400, 380),
		tcpDown(1.1, 1, 0, 1400, 1380),
	}
	if _, err := Estimate(mkTrace(views), Params{MediaHost: "m.x", Mux: true}); err == nil {
		t.Fatal("Mux over TCP accepted")
	}
}

func TestEstimateExcludesHandshake(t *testing.T) {
	views := []packet.View{
		quicSNI(0, 1, "m.x"),
		// Long-header server flight: must not count.
		{Time: 0.05, Dir: packet.Down, Proto: packet.UDP, ConnID: 1, QUICPN: 0, QUICPayload: 1200, QUICLong: true},
		quicUp(1.0, 1, 1, 400),
		quicDown(1.1, 1, 1, 1000),
	}
	est, err := Estimate(mkTrace(views), Params{MediaHost: "m.x"})
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Requests[0].Est; got != 1000-280 {
		t.Fatalf("handshake bytes leaked into estimate: %d", got)
	}
}

// A long startup ramp with no idle gaps must be subdivided at its widest
// internal downlink gaps so the per-group search stays tractable.
func TestEstimateMuxSubdividesOversizedGroups(t *testing.T) {
	var views []packet.View
	views = append(views, quicSNI(0, 1, "m.x"))
	ts := 1.0
	pn := int64(1)
	dpn := int64(0)
	// 24 requests with continuous downloads; gaps of 0.3s between bursts
	// (below the 2s SP1 threshold), with one wider 1.2s gap in the middle.
	for r := 0; r < 24; r++ {
		views = append(views, quicUp(ts, 1, pn, 400))
		pn++
		for k := 0; k < 3; k++ {
			ts += 0.05
			views = append(views, quicDown(ts, 1, dpn, 1330))
			dpn++
		}
		if r == 11 {
			ts += 1.2
		} else {
			ts += 0.3
		}
	}
	p := Params{MediaHost: "m.x", Mux: true, MaxGroupRequests: 8}
	est, err := Estimate(mkTrace(views), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Groups) < 2 {
		t.Fatalf("oversized group not subdivided: %d groups", len(est.Groups))
	}
	totalReqs := 0
	for gi, g := range est.Groups {
		totalReqs += len(g.ReqTimes)
		if len(g.ReqTimes) > 8 {
			t.Errorf("group %d still has %d requests (cap 8)", gi, len(g.ReqTimes))
		}
	}
	if totalReqs != 24 {
		t.Fatalf("requests lost in subdivision: %d", totalReqs)
	}
	// Total estimated bytes must be conserved (modulo the per-request
	// header discount).
	var sum int64
	for _, g := range est.Groups {
		sum += g.Est
	}
	want := int64(24*3*1330) - 24*280
	if sum != want {
		t.Fatalf("bytes not conserved: %d, want %d", sum, want)
	}
}
