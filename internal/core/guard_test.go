package core

import (
	"errors"
	"reflect"
	"testing"

	"csi/internal/capture"
	"csi/internal/guard"
	"csi/internal/media"
	"csi/internal/packet"
	"csi/internal/testleak"
)

// guardTrace builds a small clean HTTPS session trace whose two requests
// estimate to the first chunks of tinyManifest track 0 (sizes are in the
// 10k..18k band; header discount of 280 is added back on the wire).
func guardTrace(man *media.Manifest) *capture.Trace {
	sizes := man.Tracks[0].Sizes
	views := []packet.View{sni(0, 1, "media.example.com")}
	seqUp, seqDown := int64(300), int64(0)
	for i := 0; i < 2; i++ {
		t := float64(i + 1)
		views = append(views, tcpUp(t, 1, seqUp, 400, 380))
		seqUp += 400
		app := sizes[i] + 280
		views = append(views, tcpDown(t+0.1, 1, seqDown, app+20, app))
		seqDown += app + 20
	}
	return mkTrace(views)
}

func TestInferTinyBudgetPartialWithDeadlineWarning(t *testing.T) {
	man := tinyManifest(1, 2, 6, false)
	tr := guardTrace(man)
	p := Params{MediaHost: "media.example.com", Guard: guard.New(1)}
	inf, err := Infer(man, tr, p)
	if err != nil {
		t.Fatalf("bounded Infer must yield a partial result, got error: %v", err)
	}
	found := false
	for _, w := range inf.Warnings {
		if w.Code == guard.CodeDeadline {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s warning in %+v", guard.CodeDeadline, inf.Warnings)
	}
	if inf.Best != nil || inf.SequenceCount != 0 {
		t.Fatalf("budget of 1 step must not produce a full inference: %+v", inf)
	}
}

func TestInferLargeBudgetMatchesNilGuard(t *testing.T) {
	man := tinyManifest(1, 2, 6, false)
	tr := guardTrace(man)
	base, err := Infer(man, tr, Params{MediaHost: "media.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	g := guard.New(1 << 40)
	bounded, err := Infer(man, tr, Params{MediaHost: "media.example.com", Guard: g})
	if err != nil {
		t.Fatal(err)
	}
	if g.Stopped() {
		t.Fatalf("huge budget stopped: %v", g.Err())
	}
	if base.SequenceCount != bounded.SequenceCount ||
		!reflect.DeepEqual(base.Requests, bounded.Requests) ||
		!reflect.DeepEqual(base.Warnings, bounded.Warnings) ||
		!reflect.DeepEqual(base.Best, bounded.Best) {
		t.Fatalf("an unexhausted guard changed the result:\nnil:   %+v\nguard: %+v", base, bounded)
	}
}

func TestInferHookPanicContained(t *testing.T) {
	testHookInfer = func() { panic("injected pipeline panic") }
	defer func() { testHookInfer = nil }()
	man := tinyManifest(1, 2, 6, false)
	inf, err := Infer(man, guardTrace(man), Params{MediaHost: "media.example.com"})
	if inf != nil {
		t.Fatalf("panicking Infer returned an inference: %+v", inf)
	}
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *guard.PanicError", err, err)
	}
	if pe.Value != "injected pipeline panic" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
}

// TestMuxWorkerPanicContained injects a panic inside fillHalf — which runs
// on a pool worker goroutine — and asserts it unwinds the committing
// goroutine as a *guard.PanicError with the pool fully drained.
func TestMuxWorkerPanicContained(t *testing.T) {
	testleak.Check(t)
	testHookFillHalf = func() { panic("worker poisoned") }
	defer func() { testHookFillHalf = nil }()
	man, groups, _ := searchScenario(7, 3, 8, 3)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
	run := func() (inf *Inference, err error) {
		defer guard.Capture(&err) // the same containment frame Infer installs
		return Identify(man, est, searchParams(0.05))
	}
	inf, err := run()
	if inf != nil {
		t.Fatalf("poisoned search returned an inference: %+v", inf)
	}
	var pe *guard.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *guard.PanicError", err, err)
	}
	if pe.Value != "worker poisoned" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
}

func TestMuxGuardBudgetDegradesToPartial(t *testing.T) {
	testleak.Check(t)
	man, groups, _ := searchScenario(11, 3, 8, 3)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
	p := searchParams(0.05)
	p.Guard = guard.New(3)
	inf, err := Identify(man, est, p)
	if err != nil {
		t.Fatalf("bounded mux Identify must degrade, got error: %v", err)
	}
	found := false
	for _, w := range inf.Warnings {
		if w.Code == guard.CodeDeadline {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s warning in %+v", guard.CodeDeadline, inf.Warnings)
	}
}

func TestMuxGuardLargeBudgetMatchesNilGuard(t *testing.T) {
	man, groups, _ := searchScenario(13, 3, 8, 3)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
	base, err := Identify(man, est, searchParams(0.05))
	if err != nil {
		t.Fatal(err)
	}
	p := searchParams(0.05)
	p.Guard = guard.New(1 << 40)
	bounded, err := Identify(man, est, p)
	if err != nil {
		t.Fatal(err)
	}
	if base.SequenceCount != bounded.SequenceCount || base.Truncated != bounded.Truncated ||
		!reflect.DeepEqual(base.Warnings, bounded.Warnings) {
		t.Fatalf("an unexhausted guard changed the mux result:\nnil:   %+v\nguard: %+v", base, bounded)
	}
}

// TestMuxSearchNoLeakOnTruncation drives the worker pool into a mid-flight
// truncation (tiny GroupSearchBudget cancels jobs that are still being
// dispatched) and asserts every pool goroutine exits.
func TestMuxSearchNoLeakOnTruncation(t *testing.T) {
	testleak.Check(t)
	man, groups, _ := searchScenario(17, 3, 10, 4)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
	p := searchParams(0.05)
	p.GroupSearchBudget = 1
	if _, err := Identify(man, est, p); err != nil {
		// Truncation may legitimately leave no matching sequence.
		t.Logf("truncated identify: %v", err)
	}
}

// TestMuxSearchNoLeakOnGuardCancel cancels the guard from outside while
// the search runs, exercising the cancel-mid-flight drain.
func TestMuxSearchNoLeakOnGuardCancel(t *testing.T) {
	testleak.Check(t)
	man, groups, _ := searchScenario(19, 3, 10, 4)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
	p := searchParams(0.05)
	p.Guard = guard.New(0)
	hook := make(chan struct{})
	testHookFillHalf = func() {
		select {
		case <-hook:
			// Cancel exactly once, from inside a worker, while jobs are in
			// flight.
		default:
			close(hook)
			p.Guard.Cancel("test cancel mid-search")
		}
	}
	defer func() { testHookFillHalf = nil }()
	inf, err := Identify(man, est, p)
	if err != nil {
		t.Fatalf("cancelled mux Identify must degrade, got error: %v", err)
	}
	found := false
	for _, w := range inf.Warnings {
		if w.Code == guard.CodeCancelled {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s warning in %+v", guard.CodeCancelled, inf.Warnings)
	}
}
