package core

import (
	"container/list"
	"sync"

	"csi/internal/media"
	"csi/internal/obs"
)

// HalfCache is an optional process-wide LRU of half enumerations, shared by
// every Infer in the process through Params.HalfCache. The per-search
// singleflight halfCache (muxsearch.go) already deduplicates halves inside
// one inference; this cache extends the sharing across sessions: thousands
// of monitored streams of the same service ladder ask for the same halves,
// and each is enumerated once per process instead of once per Infer.
//
// Determinism: entries are keyed by the encoding-profile signature (an FNV
// hash of the full manifest ladder) plus the half's own key — chunk range
// and display-constraint signature — and only truth-free halves (gi == -1)
// are ever stored, so a stored entry is a pure function of its key. The
// stored entry carries the original enumeration cost, which the group scan
// charges at first committed use exactly as if it had enumerated the half
// itself, so budget truncation points — and therefore candidate sets and
// goldens — are byte-identical whether the cache is cold, warm or disabled.
// Failed (cancelled) enumerations are never stored; capped ones are (a cap
// is deterministic: halfComboCap is a compile-time constant).
//
// Concurrency: one mutex guards the map, the LRU list and the byte account.
// Cached combo slices are published once and never mutated afterwards —
// readers (meetHalves, chargeHalf) are strictly read-only — so handing the
// same backing slice to concurrent Infers is safe.
type HalfCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	m        map[procKey]*list.Element
	lru      *list.List // front = most recently used

	reg                        *obs.Registry
	cHits, cMisses, cEvictions *obs.Counter
	gBytes                     *obs.Gauge
}

// procKey scopes a half key to one encoding profile.
type procKey struct {
	sig uint64
	key halfKey
}

// procEntry is one cached half. It mirrors the immutable payload of a
// halfEntry; size is its byte-accounting charge.
type procEntry struct {
	k           procKey
	combos      []halfCombo
	cum         []float64
	cost        int64
	maxMatch    int32
	zeroMatches bool
	capped      bool
	size        int64
}

// Byte accounting: slice payloads plus a flat per-entry overhead covering
// the entry struct, the map bucket and the list element.
const (
	halfComboBytes    = 24 // int64 + int32 (padded) + float64
	procEntryOverhead = 160
)

func entrySize(combos []halfCombo, cum []float64) int64 {
	return int64(len(combos))*halfComboBytes + int64(len(cum))*8 + procEntryOverhead
}

// NewHalfCache returns a process-level cache bounded to maxBytes of stored
// enumeration payload. maxBytes <= 0 yields a nil cache (disabled).
func NewHalfCache(maxBytes int64) *HalfCache {
	if maxBytes <= 0 {
		return nil
	}
	reg := obs.NewRegistry()
	hc := &HalfCache{
		maxBytes:   maxBytes,
		m:          make(map[procKey]*list.Element),
		lru:        list.New(),
		reg:        reg,
		cHits:      reg.Counter("core.halfcache.hits"),
		cMisses:    reg.Counter("core.halfcache.misses"),
		cEvictions: reg.Counter("core.halfcache.evictions"),
		gBytes:     reg.Gauge("core.halfcache.bytes"),
	}
	hc.gBytes.Set(0)
	return hc
}

// Registry exposes the cache's own metrics registry
// (core.halfcache.{hits,misses,evictions,bytes}) so callers can surface it
// through /metrics. The registry is process-scoped, like the cache: its
// counters never feed a per-inference tracer, so deterministic exports are
// unaffected by cache state.
func (hc *HalfCache) Registry() *obs.Registry {
	if hc == nil {
		return nil
	}
	return hc.reg
}

// Len returns the number of cached halves.
func (hc *HalfCache) Len() int {
	if hc == nil {
		return 0
	}
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return len(hc.m)
}

// Bytes returns the current byte account.
func (hc *HalfCache) Bytes() int64 {
	if hc == nil {
		return 0
	}
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.bytes
}

// load copies a cached half into e, returning whether it was present. The
// combo slices are shared with the cache (and with every other session that
// loaded the entry); they are immutable by contract.
func (hc *HalfCache) load(sig uint64, key halfKey, e *halfEntry) bool {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	el, ok := hc.m[procKey{sig: sig, key: key}]
	if !ok {
		hc.cMisses.Inc()
		return false
	}
	hc.cHits.Inc()
	hc.lru.MoveToFront(el)
	pe := el.Value.(*procEntry)
	e.combos = pe.combos
	e.cum = pe.cum
	e.cost = pe.cost
	e.maxMatch = pe.maxMatch
	e.zeroMatches = pe.zeroMatches
	e.capped = pe.capped
	return true
}

// store publishes a computed half. Entries larger than the whole budget are
// skipped (they would only evict everything else and then miss anyway).
func (hc *HalfCache) store(sig uint64, key halfKey, e *halfEntry) {
	sz := entrySize(e.combos, e.cum)
	if sz > hc.maxBytes {
		return
	}
	hc.mu.Lock()
	defer hc.mu.Unlock()
	k := procKey{sig: sig, key: key}
	if _, ok := hc.m[k]; ok {
		return // another session raced the same fill; first store wins
	}
	pe := &procEntry{
		k: k, combos: e.combos, cum: e.cum, cost: e.cost,
		maxMatch: e.maxMatch, zeroMatches: e.zeroMatches, capped: e.capped,
		size: sz,
	}
	hc.m[k] = hc.lru.PushFront(pe)
	hc.bytes += sz
	for hc.bytes > hc.maxBytes {
		back := hc.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*procEntry)
		hc.lru.Remove(back)
		delete(hc.m, old.k)
		hc.bytes -= old.size
		hc.cEvictions.Inc()
	}
	hc.gBytes.Set(float64(hc.bytes))
}

// profileSig hashes the full encoding ladder — every track's kind, bitrate
// and per-chunk sizes — into the FNV-1a signature that scopes cache entries
// to one encoding profile. Everything a truth-free half enumeration reads
// from the manifest is covered: chunk sizes directly, and the video-track
// index set through the per-track kinds (display-constraint track indexes
// resolve against the same ordering).
func profileSig(man *media.Manifest) uint64 {
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		h = (h ^ v) * fnvPrime64
	}
	mix(uint64(len(man.Tracks)))
	for ti := range man.Tracks {
		t := &man.Tracks[ti]
		mix(uint64(t.Kind))
		mix(uint64(t.Bitrate))
		mix(uint64(len(t.Sizes)))
		for _, s := range t.Sizes {
			mix(uint64(s))
		}
	}
	return h
}
