package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"csi/internal/capture"
	"csi/internal/media"
	"csi/internal/packet"
)

// tinyManifest builds a small manifest with explicit sizes for brute-force
// comparison: v video tracks x n chunks with pseudo-random sizes, plus an
// optional audio track of constant size.
func tinyManifest(seed int64, tracks, chunks int, audio bool) *media.Manifest {
	rng := rand.New(rand.NewSource(seed))
	man := &media.Manifest{Name: "tiny", Host: "h", ChunkDur: 5}
	for t := 0; t < tracks; t++ {
		tr := media.Track{ID: t, Kind: media.Video, Bitrate: int64(100 * (t + 1))}
		base := 10_000 * (t + 1)
		for c := 0; c < chunks; c++ {
			tr.Sizes = append(tr.Sizes, int64(base+rng.Intn(8000)))
		}
		man.Tracks = append(man.Tracks, tr)
	}
	if audio {
		tr := media.Track{ID: tracks, Kind: media.Audio, Bitrate: 64}
		for c := 0; c < chunks; c++ {
			tr.Sizes = append(tr.Sizes, 5000)
		}
		man.Tracks = append(man.Tracks, tr)
	}
	return man
}

// bruteForce enumerates every assignment of requests to (video chunk |
// audio | noise-skip) satisfying Properties 1+2 exactly as the DP defines
// them, and returns count, best and worst truth-match totals.
func bruteForce(man *media.Manifest, ests []int64, k float64, truth []capture.TruthRecord) (count, best, worst float64) {
	n := len(ests)
	vIdx := media.NewSizeIndex(man, media.Video)
	type cand struct {
		audioTracks []int
		videos      []media.ChunkRef
	}
	layers := make([]cand, n)
	for i, est := range ests {
		lo, hi := media.CandidateRange(est, k)
		layers[i].videos = vIdx.Range(lo, hi, nil)
		for _, ai := range man.AudioTracks() {
			s := man.Tracks[ai].Sizes[0]
			if s >= lo && s <= hi {
				layers[i].audioTracks = append(layers[i].audioTracks, ai)
			}
		}
	}
	best, worst = math.Inf(-1), math.Inf(1)
	// assignment[i]: -1 = skip (audio with a chosen track, or noise), else
	// index into videos.
	var rec func(i int, lastIdx int, score float64, cnt float64)
	rec = func(i int, lastIdx int, score float64, cnt float64) {
		if i == n {
			count += cnt
			if score > best {
				best = score
			}
			if score < worst {
				worst = score
			}
			return
		}
		la := layers[i]
		// Audio assignments.
		for _, at := range la.audioTracks {
			w := 0.0
			if truth != nil && truth[i].Kind == media.Audio && truth[i].Ref.Track == at {
				w = 1
			}
			rec(i+1, lastIdx, score+w, cnt)
		}
		// Noise skip allowed only when the layer has no candidates at all.
		if len(la.audioTracks) == 0 && len(la.videos) == 0 {
			rec(i+1, lastIdx, score, cnt)
		}
		// Video assignments.
		for _, ref := range la.videos {
			if lastIdx != math.MinInt32 && ref.Index != lastIdx+1 {
				continue
			}
			w := 0.0
			if truth != nil && truth[i].Kind == media.Video && truth[i].Ref == ref {
				w = 1
			}
			rec(i+1, ref.Index, score+w, cnt)
		}
	}
	rec(0, math.MinInt32, 0, 1)
	if count == 0 {
		return 0, 0, 0
	}
	return count, best, worst
}

// TestDPAgainstBruteForce cross-checks sequence counting and best/worst
// accuracy of the layered DP against exhaustive enumeration on random small
// instances.
func TestDPAgainstBruteForce(t *testing.T) {
	f := func(seed int64, nReq8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		man := tinyManifest(seed, 3, 6, true)
		n := int(nReq8%5) + 2
		k := 0.05

		// Build a plausible truth sequence: contiguous video indexes with
		// interleaved audio.
		start := rng.Intn(4)
		idx := start
		var truth []capture.TruthRecord
		var ests []int64
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				ai := man.AudioTracks()[0]
				truth = append(truth, capture.TruthRecord{Kind: media.Audio, Ref: media.ChunkRef{Track: ai, Index: idx}})
				s := man.Tracks[ai].Sizes[0]
				ests = append(ests, s+int64(rng.Intn(int(float64(s)*k))))
				continue
			}
			if idx >= man.NumVideoChunks() {
				break
			}
			tr := man.VideoTracks()[rng.Intn(3)]
			ref := media.ChunkRef{Track: tr, Index: idx}
			s := man.Size(ref)
			truth = append(truth, capture.TruthRecord{Kind: media.Video, Ref: ref})
			ests = append(ests, s+int64(rng.Intn(int(float64(s)*k))))
			idx++
		}
		if len(ests) == 0 {
			return true
		}

		reqs := make([]Request, len(ests))
		for i, e := range ests {
			reqs[i] = Request{Time: float64(i), Est: e}
		}
		p := Params{K: k, MediaHost: "h"}.withDefaults(packet.TCP)
		p.K = k
		g := buildNoMuxGraph(man, reqs, p)
		minW, maxW, opts := unitAudioWeights(g)
		total, _ := g.runDP(minW, maxW, opts, func(int, media.ChunkRef) float64 { return 0 })

		wantCount, _, _ := bruteForce(man, ests, k, nil)
		if !total.ok {
			return wantCount == 0
		}
		if math.Abs(total.count-wantCount) > 1e-6*wantCount {
			t.Logf("count mismatch: dp=%g brute=%g (n=%d)", total.count, wantCount, len(ests))
			return false
		}

		ev := &noMuxEval{g: g}
		best, worst, err := ev.accuracyRange(truth)
		if err != nil {
			t.Logf("accuracyRange: %v", err)
			return false
		}
		_, wantBest, wantWorst := bruteForce(man, ests, k, truth)
		nn := float64(len(ests))
		if math.Abs(best-wantBest/nn) > 1e-9 || math.Abs(worst-wantWorst/nn) > 1e-9 {
			t.Logf("best/worst mismatch: dp=(%g,%g) brute=(%g,%g)", best*nn, worst*nn, wantBest, wantWorst)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestExtractSequenceIsValid checks that the concrete sequence returned by
// the DP satisfies both properties.
func TestExtractSequenceIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		man := tinyManifest(seed, 3, 8, true)
		idx := rng.Intn(3)
		var ests []int64
		for i := 0; i < 6 && idx < 8; i++ {
			if rng.Intn(3) == 0 {
				ests = append(ests, man.Tracks[man.AudioTracks()[0]].Sizes[0])
				continue
			}
			tr := man.VideoTracks()[rng.Intn(3)]
			ests = append(ests, man.Size(media.ChunkRef{Track: tr, Index: idx}))
			idx++
		}
		if len(ests) == 0 {
			return true
		}
		reqs := make([]Request, len(ests))
		for i, e := range ests {
			reqs[i] = Request{Time: float64(i), Est: e}
		}
		inf, err := Identify(man, &Estimation{Proto: packet.TCP, Requests: reqs}, Params{K: 0.01, MediaHost: "h"})
		if err != nil {
			t.Logf("Identify: %v", err)
			return false
		}
		last := math.MinInt32
		for i, a := range inf.Best.Assignments {
			if a.Audio || a.Noise {
				continue
			}
			// Property 1.
			s := man.Size(a.Ref)
			if !(s <= ests[i] && float64(ests[i]) <= 1.01*float64(s)+1) {
				t.Logf("property 1 violated at %d: size %d est %d", i, s, ests[i])
				return false
			}
			// Property 2.
			if last != math.MinInt32 && a.Ref.Index != last+1 {
				t.Logf("property 2 violated at %d: %d after %d", i, a.Ref.Index, last)
				return false
			}
			last = a.Ref.Index
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
