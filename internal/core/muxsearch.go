package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"csi/internal/guard"
	"csi/internal/media"
	"csi/internal/obs"
)

// This file implements the deterministic parallel kernel behind the MUX
// (QUIC) candidate search of §5.3.2 Step 2.2 — the dominant cost of every
// SQ experiment. Three mechanisms replace the serial scan that used to live
// in groupCandidates/windowStats:
//
//  1. Prefix-sum quick rejects: per-window min/max achievable size bounds
//     come from media.TrackPrefix envelope differences (O(1) per window,
//     plus one term per display-constrained position) instead of an
//     O(window·tracks) rescan per start.
//  2. A half-enumeration cache: meet-in-the-middle halves are keyed by
//     their absolute chunk-index range, the truth-weighting group (-1 when
//     ground truth cannot affect the half), and an allowed-set signature
//     derived from the display constraints in range. Overlapping windows,
//     phantom-request retries, sibling audio-track hypotheses and the
//     withTruthWeights eval pass all reuse the compressed halfCombo slices
//     instead of re-enumerating them; enumeration scratch is pooled.
//  3. A bounded worker pool (GOMAXPROCS semaphore, as in
//     internal/experiments) evaluates windows concurrently. Results are
//     committed strictly in submission order, and GroupSearchBudget is
//     charged at commit time — each half's enumeration cost is charged
//     exactly once, at its first committed use — so candidate lists,
//     truncation flags, counters and traces are byte-identical run to run
//     regardless of scheduling.
//
// Budget semantics (deterministic by construction): windows are scanned in
// the serial hypothesis order (balanced audio/video splits first). Each
// non-rejected window charges the enumeration cost of its halves — the
// total number of partial combinations materialized, exactly what the
// serial implementation charged — unless the half was already charged by an
// earlier committed window (a cache hit is free). When a charge drives the
// budget to zero or below, the charging window is discarded, the group's
// candidate set is marked truncated, and the scan stops. A half whose
// compressed level grows past halfComboCap is marked capped: its window is
// discarded (truncated), the work done so far is still charged, and a
// capped left half skips the right half entirely.

// halfComboCap bounds the number of partial combinations a single
// meet-in-the-middle half may materialize.
const halfComboCap = 2_000_000

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// halfKey identifies one cached half enumeration: the absolute chunk-index
// range [from, to), the truth-weighting group (-1 when no ground-truth
// video index falls in range, which lets the eval pass share build-pass
// entries), and a signature of the display-constrained allowed sets in
// range.
type halfKey struct {
	gi       int32
	from, to int32
	sig      uint64
}

// halfEntry is one cached compressed half enumeration. Fields other than
// done are written by the computing goroutine before done is closed and
// read only after it, so the channel close is the publication point.
type halfEntry struct {
	done chan struct{}
	// combos is the compressed half, sorted by (sum, matches).
	combos []halfCombo
	// cum[i] is the cumulative combo count over combos[0..i]; built only
	// when zeroMatches (the common build-pass case) for the count-only
	// meet fast path.
	cum []float64
	// cost is the number of partial combinations materialized while
	// enumerating this half — the budget charge of its first committed use.
	cost        int64
	maxMatch    int32
	zeroMatches bool
	capped      bool // enumeration exceeded halfComboCap; combos is nil
	failed      bool // computation was cancelled; a later caller recomputes
}

// halfCache is a concurrency-safe singleflight cache of half enumerations.
type halfCache struct {
	mu sync.Mutex
	m  map[halfKey]*halfEntry
}

// get returns the entry for key, computing it via fill if absent. Exactly
// one goroutine computes a given entry; others wait on its done channel.
// Entries whose computation was cancelled are marked failed and replaced by
// the next caller that is not itself cancelled.
func (hc *halfCache) get(key halfKey, cancel *atomic.Bool, fill func(e *halfEntry)) *halfEntry {
	for {
		hc.mu.Lock()
		e, ok := hc.m[key]
		if !ok {
			e = &halfEntry{done: make(chan struct{})}
			hc.m[key] = e
			hc.mu.Unlock()
			func() {
				// A panic inside fill must still close done, or every
				// waiter on this entry deadlocks while the panic is being
				// contained elsewhere.
				defer func() {
					if r := recover(); r != nil {
						e.failed = true
						close(e.done)
						panic(r) //csi-vet:ignore nakedpanic -- re-raise after publishing the failed entry
					}
				}()
				fill(e)
			}()
			close(e.done)
			return e
		}
		hc.mu.Unlock()
		<-e.done
		if !e.failed {
			return e
		}
		if cancel != nil && cancel.Load() {
			return e // caller is cancelled too; the failed entry is discarded
		}
		hc.mu.Lock()
		if hc.m[key] == e {
			delete(hc.m, key)
		}
		hc.mu.Unlock()
	}
}

// enumScratch is the pooled scratch of one half enumeration: the ping-pong
// buffer pair that kills the per-level slice churn of the old enum closure,
// plus the per-position merge cursors (sz/mi/pos), which used to be three
// fresh allocations per chunk index. All fields are resized, never
// reallocated, while capacity suffices; ownership is strictly Get→Put within
// fillHalf, so concurrent workers never alias a scratch.
type enumScratch struct {
	cur, next []halfCombo
	sz        []int64
	mi        []int32
	pos       []int
}

// runCursors returns the per-track merge cursor arrays sized for n tracks,
// reusing the scratch backing. mi and pos are zeroed (callers only set the
// match bump conditionally); sz is fully overwritten by the caller.
func (sc *enumScratch) runCursors(n int) (sz []int64, mi []int32, pos []int) {
	if cap(sc.sz) < n {
		sc.sz = make([]int64, n)
		sc.mi = make([]int32, n)
		sc.pos = make([]int, n)
	}
	sc.sz, sc.mi, sc.pos = sc.sz[:n], sc.mi[:n], sc.pos[:n]
	for i := 0; i < n; i++ {
		sc.mi[i], sc.pos[i] = 0, 0
	}
	return sc.sz, sc.mi, sc.pos
}

var enumScratchPool = sync.Pool{New: func() any { return new(enumScratch) }}

// meetScratch pools the per-match-count buckets of the weighted meetHalves
// path. Bucket sums/cum keep their capacity across uses; a Get→Put pair is
// scoped to one meetHalves call, so worker goroutines never share one.
type meetScratch struct {
	buckets []meetBkt
}

type meetBkt struct {
	sums     []int64
	cum      []float64
	iLo, iHi int
}

var meetScratchPool = sync.Pool{New: func() any { return new(meetScratch) }}

// grab returns n reset buckets, reusing backing storage.
func (sc *meetScratch) grab(n int) []meetBkt {
	if cap(sc.buckets) < n {
		old := sc.buckets
		sc.buckets = make([]meetBkt, n)
		copy(sc.buckets, old)
	}
	sc.buckets = sc.buckets[:n]
	for i := range sc.buckets {
		b := &sc.buckets[i]
		b.sums, b.cum = b.sums[:0], b.cum[:0]
		b.iLo, b.iHi = 0, 0
	}
	return sc.buckets
}

// muxSearch carries everything the candidate search kernel needs: the
// manifest with its prefix sums, the display constraints, the optional
// ground-truth context of the eval pass, the shared half cache, and the
// pre-resolved metric handles.
type muxSearch struct {
	man     *media.Manifest
	p       Params
	vTracks []int
	nChunks int
	pre     *media.TrackPrefix

	disp    map[int]int   // display constraint: chunk index -> track
	dispIdx []int         // sorted constrained indexes
	dispOne map[int][]int // constrained index -> one-element track slice

	tc       *truthCtx
	truthIdx [][]int // per group: sorted ground-truth video indexes

	// guard bounds the search. The serial commit loop charges it (via
	// chargeHalf, mirroring the GroupSearchBudget charges); workers only
	// poll OK() for an early abort, so the committed candidates under a
	// step budget never depend on scheduling.
	guard *guard.Ctx

	cache *halfCache
	// proc is the optional process-wide cache (Params.HalfCache); procSig
	// scopes its entries to this manifest's encoding profile. Only
	// truth-free halves (key.gi == -1) round-trip through it.
	proc    *HalfCache
	procSig uint64
	// seen tracks halves by first committed use across build and eval for
	// the deterministic hit/miss metrics; charged tracks budget charges and
	// is reset per pass so repeated eval passes behave identically.
	seen    map[halfKey]bool
	charged map[halfKey]bool

	workers int

	cWinCalls, cWinRejects, cWinTrunc *obs.Counter
	cHalfHits, cHalfMisses            *obs.Counter
}

func newMuxSearch(man *media.Manifest, p Params, tc *truthCtx) *muxSearch {
	ms := &muxSearch{
		man:     man,
		p:       p,
		vTracks: man.VideoTracks(),
		nChunks: man.NumVideoChunks(),
		disp:    displayConstraint(p.Display),
		cache:   &halfCache{m: map[halfKey]*halfEntry{}},
		seen:    map[halfKey]bool{},
		charged: map[halfKey]bool{},
		guard:   p.Guard,
		workers: runtime.GOMAXPROCS(0),
	}
	if ms.workers < 1 {
		ms.workers = 1
	}
	if p.HalfCache != nil {
		ms.proc = p.HalfCache
		ms.procSig = profileSig(man)
	}
	ms.pre = media.NewTrackPrefix(man, ms.vTracks)
	if len(ms.disp) > 0 {
		keys := make([]int, 0, len(ms.disp))
		for idx := range ms.disp {
			keys = append(keys, idx)
		}
		sort.Ints(keys)
		ms.dispIdx = keys
		ms.dispOne = make(map[int][]int, len(keys))
		for _, idx := range keys {
			ms.dispOne[idx] = []int{ms.disp[idx]}
		}
	}
	ms.setTruth(tc)
	reg := p.Obs.Metrics()
	ms.cWinCalls = reg.Counter("core.window_calls")
	ms.cWinRejects = reg.Counter("core.window_rejects")
	ms.cWinTrunc = reg.Counter("core.window_truncations")
	ms.cHalfHits = reg.Counter("core.half_cache_hits")
	ms.cHalfMisses = reg.Counter("core.half_cache_misses")
	return ms
}

// withTruth derives an eval-pass search sharing the cache and hit/miss
// bookkeeping but carrying the ground-truth context and a fresh budget
// charge set, so repeated eval passes are deterministic and identical.
func (ms *muxSearch) withTruth(tc *truthCtx) *muxSearch {
	es := *ms
	es.charged = map[halfKey]bool{}
	es.setTruth(tc)
	return &es
}

func (ms *muxSearch) setTruth(tc *truthCtx) {
	ms.tc = tc
	ms.truthIdx = nil
	if tc == nil {
		return
	}
	ms.truthIdx = make([][]int, len(tc.videoTrack))
	for gi := range tc.videoTrack {
		keys := make([]int, 0, len(tc.videoTrack[gi]))
		for idx := range tc.videoTrack[gi] {
			keys = append(keys, idx)
		}
		sort.Ints(keys)
		ms.truthIdx[gi] = keys
	}
}

// allowedAt returns the video tracks admissible at a chunk index under the
// display constraint. The returned slice is shared and must not be mutated.
func (ms *muxSearch) allowedAt(idx int) []int {
	if ms.dispOne != nil {
		if one, ok := ms.dispOne[idx]; ok {
			return one
		}
	}
	return ms.vTracks
}

// truthGi returns gi when some ground-truth video index of group gi falls
// in [from, to) — i.e. when truth weighting can alter the half — and -1
// otherwise, letting truth-free halves share one cache entry.
func (ms *muxSearch) truthGi(gi, from, to int) int {
	if ms.tc == nil || gi < 0 || gi >= len(ms.truthIdx) {
		return -1
	}
	idx := ms.truthIdx[gi]
	i := sort.SearchInts(idx, from)
	if i < len(idx) && idx[i] < to {
		return gi
	}
	return -1
}

// dispSig hashes the display-constrained (index, track) pairs inside
// [from, to) so the cache key captures the allowed-set shape of the range.
func (ms *muxSearch) dispSig(from, to int) uint64 {
	if len(ms.dispIdx) == 0 {
		return 0
	}
	i := sort.SearchInts(ms.dispIdx, from)
	if i >= len(ms.dispIdx) || ms.dispIdx[i] >= to {
		return 0
	}
	h := uint64(fnvOffset64)
	for ; i < len(ms.dispIdx) && ms.dispIdx[i] < to; i++ {
		p := ms.dispIdx[i]
		h = (h ^ uint64(p)) * fnvPrime64
		h = (h ^ uint64(ms.disp[p])) * fnvPrime64
	}
	return h
}

func (ms *muxSearch) keyFor(gi, from, to int) halfKey {
	if from >= to {
		return halfKey{gi: -1}
	}
	return halfKey{gi: int32(gi), from: int32(from), to: int32(to), sig: ms.dispSig(from, to)}
}

// windowJob is one window hypothesis: vLen video chunks starting at s whose
// sizes must sum into [vLo, vHi], plus the audio context it was derived
// under. prepare fills the serial pre-checks; a worker fills res.
type windowJob struct {
	gi      int
	s, vLen int
	vLo     int64
	vHi     int64
	aTrack  int
	aCount  int
	audioW  float64

	quickReject bool // envelope bounds exclude [vLo, vHi]

	done chan struct{}
	res  windowRes
}

type windowRes struct {
	// panicked carries a panic contained on the worker goroutine; the
	// commit loop re-raises it so it unwinds the committing (caller)
	// goroutine and reaches Infer's guard.Capture.
	panicked *guard.PanicError

	cancelled        bool
	lKey, rKey       halfKey
	lCost, rCost     int64
	lCapped, rCapped bool
	hasRight         bool
	count            float64
	maxW, minW       float64
}

// prepare runs the cheap serial pre-check: the prefix-sum quick reject.
func (ms *muxSearch) prepare(j *windowJob) {
	s, vLen := j.s, j.vLen
	minSum, maxSum := ms.pre.EnvelopeBounds(s, s+vLen)
	if len(ms.dispIdx) > 0 {
		// Constrained positions admit one track: replace their envelope
		// terms with that track's size.
		i := sort.SearchInts(ms.dispIdx, s)
		for ; i < len(ms.dispIdx) && ms.dispIdx[i] < s+vLen; i++ {
			p := ms.dispIdx[i]
			mn, mx := ms.pre.EnvelopeAt(p)
			sz := ms.man.Tracks[ms.disp[p]].Sizes[p]
			minSum += sz - mn
			maxSum += sz - mx
		}
	}
	if minSum > j.vHi || maxSum < j.vLo {
		j.quickReject = true
	}
}

// fillHalf enumerates the half [from, to) into e using pooled scratch. The
// level is kept COMPRESSED (sorted by (sum, matches), equal pairs merged
// with summed counts) as it grows: shifting a sorted level by one track's
// chunk size keeps it sorted, so the next level is a T-way merge of the
// per-track shifts — never a raw T^level product that needs sorting
// afterwards. Ordered tuples over the same track multiset collapse into one
// combo as soon as they appear, so level sizes grow like the number of
// distinct (sum, matches) pairs (combinatorial) instead of exponentially.
// gi >= 0 weights combos against the ground truth of that group. A set
// cancel flag aborts the enumeration between levels and marks the entry
// failed; a level growing past halfComboCap marks it capped.
func (ms *muxSearch) fillHalf(e *halfEntry, gi, from, to int, cancel *atomic.Bool) {
	if testHookFillHalf != nil {
		testHookFillHalf()
	}
	sc := enumScratchPool.Get().(*enumScratch)
	defer func() {
		sc.cur, sc.next = sc.cur[:0], sc.next[:0]
		enumScratchPool.Put(sc)
	}()
	cur := append(sc.cur[:0], halfCombo{count: 1})
	next := sc.next[:0]
	for idx := from; idx < to; idx++ {
		// A stopped guard aborts like a cancellation: the entry is marked
		// failed and recomputed only if a non-stopped caller ever wants it.
		if (cancel != nil && cancel.Load()) || !ms.guard.OK() {
			e.failed = true
			sc.cur, sc.next = cur, next
			return
		}
		want := -1
		if gi >= 0 {
			if tr, ok := ms.tc.videoTrack[gi][idx]; ok {
				want = tr
			}
		}
		// Run h walks cur shifted by track ts[h]'s size (and match bump);
		// pos[h] is its cursor. Each run is sorted, so a T-way merge yields
		// the next compressed level directly.
		ts := ms.allowedAt(idx)
		sz, mi, pos := sc.runCursors(len(ts))
		for h, t := range ts {
			sz[h] = ms.man.Tracks[t].Sizes[idx]
			if t == want {
				mi[h] = 1
			}
		}
		next = next[:0]
		capped := false
		for {
			// Pick the run head with the smallest (sum, matches).
			best := -1
			var bSum int64
			var bMatch int32
			for h := range pos {
				if pos[h] >= len(cur) {
					continue
				}
				s := cur[pos[h]].sum + sz[h]
				m := cur[pos[h]].matches + mi[h]
				if best < 0 || s < bSum || (s == bSum && m < bMatch) {
					best, bSum, bMatch = h, s, m
				}
			}
			if best < 0 {
				break
			}
			cnt := cur[pos[best]].count
			pos[best]++
			if n := len(next); n > 0 && next[n-1].sum == bSum && next[n-1].matches == bMatch {
				next[n-1].count += cnt
				continue
			}
			if len(next) >= halfComboCap {
				capped = true
				break
			}
			next = append(next, halfCombo{sum: bSum, matches: bMatch, count: cnt})
		}
		cur, next = next, cur
		e.cost += int64(len(cur))
		if capped {
			e.capped = true
			sc.cur, sc.next = cur, next
			return
		}
	}
	e.combos = make([]halfCombo, len(cur))
	copy(e.combos, cur)
	sc.cur, sc.next = cur, next
	for _, c := range e.combos {
		if c.matches > e.maxMatch {
			e.maxMatch = c.matches
		}
	}
	e.zeroMatches = e.maxMatch == 0
	if e.zeroMatches {
		e.cum = make([]float64, len(e.combos))
		run := 0.0
		for i, c := range e.combos {
			run += c.count
			e.cum[i] = run
		}
	}
}

// fillCached fills e for the half [from, to), consulting the process-wide
// cache first for truth-free halves. A loaded entry carries the original
// enumeration cost, so downstream budget charges are identical to a fresh
// fill; a freshly computed truth-free entry is published unless it failed
// (cancelled fills are nondeterministic — a later caller recomputes).
func (ms *muxSearch) fillCached(e *halfEntry, gi, from, to int, key halfKey, cancel *atomic.Bool) {
	cacheable := ms.proc != nil && key.gi < 0 && from < to
	if cacheable && ms.proc.load(ms.procSig, key, e) {
		return
	}
	ms.fillHalf(e, gi, from, to, cancel)
	if cacheable && !e.failed {
		ms.proc.store(ms.procSig, key, e)
	}
}

// meetHalves combines two compressed halves: the number of assignments
// whose sums land in [vLo, vHi] and the max/min ground-truth matches among
// them. Both halves are sorted by sum, so the range queries are merged in
// one monotone two-pointer sweep per match bucket — O(left + right) instead
// of a binary search per left combo.
func meetHalves(l, r *halfEntry, vLo, vHi int64) (count, maxW, minW float64) {
	if l.zeroMatches && r.zeroMatches {
		iLo, iHi := len(r.combos), len(r.combos)
		for _, lc := range l.combos {
			lo, hi := vLo-lc.sum, vHi-lc.sum
			for iLo > 0 && r.combos[iLo-1].sum >= lo {
				iLo--
			}
			for iHi > 0 && r.combos[iHi-1].sum > hi {
				iHi--
			}
			if iHi > iLo {
				n := r.cum[iHi-1]
				if iLo > 0 {
					n -= r.cum[iLo-1]
				}
				count += n * lc.count
			}
		}
		return count, 0, 0
	}
	// Bucket the right half by match count (tiny domain). combos is sorted
	// by (sum, matches), so each bucket's sums arrive ascending and each
	// bucket gets its own monotone pointer pair. Buckets come from the pool:
	// the weighted meet runs once per committed window of every eval pass,
	// and its bucket slices were the last per-window allocation left.
	sc := meetScratchPool.Get().(*meetScratch)
	defer meetScratchPool.Put(sc)
	buckets := sc.grab(int(r.maxMatch) + 1)
	for _, c := range r.combos {
		b := &buckets[c.matches]
		b.sums = append(b.sums, c.sum)
		run := c.count
		if len(b.cum) > 0 {
			run += b.cum[len(b.cum)-1]
		}
		b.cum = append(b.cum, run)
	}
	for m := range buckets {
		buckets[m].iLo = len(buckets[m].sums)
		buckets[m].iHi = len(buckets[m].sums)
	}
	first := true
	for _, lc := range l.combos {
		lo, hi := vLo-lc.sum, vHi-lc.sum
		for m := range buckets {
			b := &buckets[m]
			if len(b.sums) == 0 {
				continue
			}
			for b.iLo > 0 && b.sums[b.iLo-1] >= lo {
				b.iLo--
			}
			for b.iHi > 0 && b.sums[b.iHi-1] > hi {
				b.iHi--
			}
			if b.iHi <= b.iLo {
				continue
			}
			n := b.cum[b.iHi-1]
			if b.iLo > 0 {
				n -= b.cum[b.iLo-1]
			}
			// Counts are sums of positive combo counts, so "no combos in
			// range" is exactly n <= 0; no equality on floats needed.
			if n <= 0 {
				continue
			}
			count += n * lc.count
			w := float64(lc.matches + int32(m))
			if first {
				maxW, minW = w, w
				first = false
			} else {
				if w > maxW {
					maxW = w
				}
				if w < minW {
					minW = w
				}
			}
		}
	}
	return count, maxW, minW
}

// runJob evaluates one window: fetch (or enumerate) both halves through the
// cache and meet them. A capped left half short-circuits the right half.
func (ms *muxSearch) runJob(j *windowJob, cancel *atomic.Bool) {
	defer close(j.done)
	// Contain a worker panic into the job result. Registered after the
	// close defer so it runs first (LIFO): panicked is published before
	// done is closed and the commit loop re-raises it on its own stack.
	defer func() {
		if r := recover(); r != nil {
			j.res.panicked = guard.AsPanicError(r)
		}
	}()
	if cancel.Load() {
		j.res.cancelled = true
		return
	}
	mid := (j.vLen + 1) / 2
	lFrom, lTo := j.s, j.s+mid
	gl := ms.truthGi(j.gi, lFrom, lTo)
	j.res.lKey = ms.keyFor(gl, lFrom, lTo)
	le := ms.cache.get(j.res.lKey, cancel, func(e *halfEntry) { ms.fillCached(e, gl, lFrom, lTo, j.res.lKey, cancel) })
	if le.failed {
		j.res.cancelled = true
		return
	}
	j.res.lCost, j.res.lCapped = le.cost, le.capped
	if le.capped {
		return
	}
	rFrom, rTo := j.s+mid, j.s+j.vLen
	gr := ms.truthGi(j.gi, rFrom, rTo)
	j.res.rKey = ms.keyFor(gr, rFrom, rTo)
	re := ms.cache.get(j.res.rKey, cancel, func(e *halfEntry) { ms.fillCached(e, gr, rFrom, rTo, j.res.rKey, cancel) })
	if re.failed {
		j.res.cancelled = true
		return
	}
	j.res.hasRight = true
	j.res.rCost, j.res.rCapped = re.cost, re.capped
	if re.capped {
		return
	}
	j.res.count, j.res.maxW, j.res.minW = meetHalves(le, re, j.vLo, j.vHi)
}

// chargeHalf records a half's first committed use: the hit/miss metrics
// (shared across build and eval passes) and the budget charge (once per
// pass). Commit order is the serial hypothesis order, so charges — and
// therefore the truncation point — do not depend on worker scheduling.
func (ms *muxSearch) chargeHalf(key halfKey, cost int64, budget *int64) {
	if ms.seen[key] {
		ms.cHalfHits.Inc()
	} else {
		ms.seen[key] = true
		ms.cHalfMisses.Inc()
	}
	if !ms.charged[key] {
		ms.charged[key] = true
		*budget -= cost
		// The guard charge mirrors the GroupSearchBudget charge: serial,
		// at first committed use, so the guard's stopping point is as
		// deterministic as the group budget's truncation point.
		ms.guard.Step(cost)
	}
}

// groupAction is one step of a group's serial hypothesis order: either an
// immediate (windowless) candidate or a window job.
type groupAction struct {
	cand groupCand
	job  *windowJob
}

// groupCandidates enumerates collapsed hypotheses for one traffic group,
// fanning window evaluation out across the worker pool and committing
// results in submission order.
func (ms *muxSearch) groupCandidates(grp Group, nReq, gi int, wildcard bool, admissible map[int]bool) ([]groupCand, bool) {
	sumLo, sumHi := media.CandidateRange(grp.Est, ms.p.K)

	audioChoices := []struct {
		track int
		size  int64
	}{{track: -1}}
	for _, ai := range ms.man.AudioTracks() {
		audioChoices = append(audioChoices, struct {
			track int
			size  int64
		}{ai, ms.man.Tracks[ai].Sizes[0]})
	}

	// Audio/video request counts are typically balanced (both pipelines
	// advance one chunk per playback interval): explore aCount values near
	// nReq/2 first — ACROSS audio-track choices — so plausible hypotheses
	// are generated before the enumeration budget runs out on implausible
	// ones (the all-video aCount=0 case has the largest windows and must
	// come last, not first).
	aOrder := make([]int, 0, nReq+1)
	for d := 0; d <= nReq; d++ {
		if lo := nReq/2 - d; lo >= 0 {
			aOrder = append(aOrder, lo)
		}
		if hi := nReq/2 + d; d > 0 && hi <= nReq {
			aOrder = append(aOrder, hi)
		}
	}

	var actions []groupAction
	var jobs []*windowJob
	for _, aCount := range aOrder {
		for _, ac := range audioChoices {
			if (ac.track < 0) != (aCount == 0) {
				continue
			}
			vLen := nReq - aCount
			audioBytes := int64(aCount) * ac.size
			vLo, vHi := sumLo-audioBytes, sumHi-audioBytes
			if vHi < 0 {
				continue
			}
			// Audio score is assignment-independent.
			audioW := 0.0
			if ms.tc != nil && aCount > 0 {
				if have := ms.tc.audioCount[gi][ac.track]; have > 0 {
					audioW = float64(min(aCount, have))
				}
			}
			if vLen == 0 {
				if vLo <= 0 && 0 <= vHi {
					actions = append(actions, groupAction{cand: groupCand{
						vStart: -1, aTrack: ac.track, aCount: aCount,
						Count: 1, MaxW: audioW, MinW: audioW,
					}})
				}
				continue
			}
			for s := 0; s+vLen <= ms.nChunks; s++ {
				if !wildcard && !admissible[s] {
					continue
				}
				j := &windowJob{
					gi: gi, s: s, vLen: vLen, vLo: vLo, vHi: vHi,
					aTrack: ac.track, aCount: aCount, audioW: audioW,
				}
				ms.prepare(j)
				actions = append(actions, groupAction{job: j})
				if !j.quickReject {
					jobs = append(jobs, j)
				}
			}
		}
	}

	// Lazily dispatch jobs a bounded lookahead ahead of the commit cursor:
	// if the budget truncates the scan early, work wasted on windows past
	// the truncation point is bounded by the lookahead instead of the whole
	// group (the serial code did no work past that point at all).
	var cancel atomic.Bool
	var wg sync.WaitGroup
	sem := make(chan struct{}, ms.workers)
	launched := 0
	launch := func(upTo int) {
		for ; launched < len(jobs) && launched < upTo; launched++ {
			j := jobs[launched]
			j.done = make(chan struct{})
			wg.Add(1)
			//csi-vet:ignore spawnbound -- semaphore-bounded pool (ms.workers slots); results commit in submission order at the cursor
			go func(j *windowJob) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				ms.runJob(j, &cancel)
			}(j)
		}
	}
	lookahead := ms.workers * 4
	// On early exit release any still-pending workers, then wait so no
	// enumeration outlives this search round.
	defer wg.Wait()
	defer cancel.Store(true)

	truncated := false
	budget := ms.p.GroupSearchBudget
	ji := 0 // commit cursor into jobs
	var out []groupCand
	for _, a := range actions {
		if a.job == nil {
			out = append(out, a.cand)
			continue
		}
		j := a.job
		if budget <= 0 || !ms.guard.OK() {
			truncated = true
			ms.cWinTrunc.Inc()
			return out, truncated
		}
		ms.cWinCalls.Inc()
		if j.quickReject {
			ms.cWinRejects.Inc()
			continue
		}
		launch(ji + 1 + lookahead)
		ji++
		<-j.done
		if j.res.panicked != nil {
			// Re-raise the contained worker panic on the committing
			// goroutine: the deferred cancel+wait above drain the pool, and
			// the panic unwinds to Infer's guard.Capture.
			panic(j.res.panicked) //csi-vet:ignore nakedpanic -- re-raises a contained worker panic toward guard.Capture
		}
		if j.res.cancelled {
			// Under a pure step budget this is unreachable: jobs are
			// committed in submission order before cancellation is ever
			// raised, and a guard stop is caught by the loop-head check.
			// A wall-clock deadline can expire between the head check and
			// the worker's own poll; fail safe as a truncation.
			truncated = true
			ms.cWinTrunc.Inc()
			return out, truncated
		}
		ms.chargeHalf(j.res.lKey, j.res.lCost, &budget)
		if j.res.hasRight {
			ms.chargeHalf(j.res.rKey, j.res.rCost, &budget)
		}
		if j.res.lCapped || j.res.rCapped {
			truncated = true
			ms.cWinTrunc.Inc()
			ms.cWinRejects.Inc()
			continue
		}
		if budget <= 0 {
			// This window's charge crossed the budget: discard it and stop.
			truncated = true
			ms.cWinTrunc.Inc()
			ms.cWinRejects.Inc()
			return out, truncated
		}
		if j.res.count <= 0 {
			ms.cWinRejects.Inc()
			continue
		}
		out = append(out, groupCand{
			vStart: j.s, vLen: j.vLen, aTrack: j.aTrack, aCount: j.aCount,
			Count: j.res.count, MaxW: j.res.maxW + j.audioW, MinW: j.res.minW + j.audioW,
		})
	}
	return out, truncated
}

// evalWindow recomputes the max/min ground-truth match weights of one
// already-matched window for the withTruthWeights eval pass, reusing cached
// halves. Budget semantics mirror the group search: uncharged halves charge
// their enumeration cost; exhaustion or a capped half yields zero weights.
func (ms *muxSearch) evalWindow(gi, s, vLen int, vLo, vHi int64, budget *int64) (maxW, minW float64) {
	j := windowJob{gi: gi, s: s, vLen: vLen, vLo: vLo, vHi: vHi}
	ms.prepare(&j)
	if j.quickReject {
		return 0, 0
	}
	mid := (vLen + 1) / 2
	gl := ms.truthGi(gi, s, s+mid)
	lKey := ms.keyFor(gl, s, s+mid)
	le := ms.cache.get(lKey, nil, func(e *halfEntry) { ms.fillCached(e, gl, s, s+mid, lKey, nil) })
	ms.chargeHalf(lKey, le.cost, budget)
	if le.capped || le.failed {
		return 0, 0
	}
	gr := ms.truthGi(gi, s+mid, s+vLen)
	rKey := ms.keyFor(gr, s+mid, s+vLen)
	re := ms.cache.get(rKey, nil, func(e *halfEntry) { ms.fillCached(e, gr, s+mid, s+vLen, rKey, nil) })
	ms.chargeHalf(rKey, re.cost, budget)
	if re.capped || re.failed || *budget <= 0 {
		return 0, 0
	}
	_, maxW, minW = meetHalves(le, re, vLo, vHi)
	return maxW, minW
}
