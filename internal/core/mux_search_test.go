package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/packet"
)

// searchScenario builds a random mux scenario (manifest, groups, truth
// context) exactly like TestMuxChainAgainstBruteForce does, but
// parameterized so the search tests can scale it.
func searchScenario(seed int64, tracks, chunks, maxGroups int) (*media.Manifest, []Group, *truthCtx) {
	rng := rand.New(rand.NewSource(seed))
	man := tinyManifest(seed, tracks, chunks, true)
	k := 0.05

	nGroups := 2 + rng.Intn(maxGroups-1)
	idx := rng.Intn(2)
	tcx := &truthCtx{
		videoTrack: make([]map[int]int, nGroups),
		audioCount: make([]map[int]int, nGroups),
	}
	var groups []Group
	tstamp := 0.0
	for gi := 0; gi < nGroups; gi++ {
		tcx.videoTrack[gi] = map[int]int{}
		tcx.audioCount[gi] = map[int]int{}
		g := Group{Start: tstamp}
		nReq := 1 + rng.Intn(4)
		var sum int64
		for r := 0; r < nReq; r++ {
			tstamp += 1
			g.ReqTimes = append(g.ReqTimes, tstamp)
			if rng.Intn(3) == 0 || idx >= man.NumVideoChunks() {
				ai := man.AudioTracks()[0]
				tcx.audioCount[gi][ai]++
				sum += man.Tracks[ai].Sizes[0]
				continue
			}
			tr := man.VideoTracks()[rng.Intn(tracks)]
			tcx.videoTrack[gi][idx] = tr
			sum += man.Tracks[tr].Sizes[idx]
			idx++
		}
		g.End = tstamp
		g.Est = sum + int64(rng.Intn(int(float64(sum)*k)))
		groups = append(groups, g)
		tstamp += 10
	}
	return man, groups, tcx
}

func searchParams(k float64) Params {
	p := Params{K: k, MediaHost: "h", Mux: true}.withDefaults(packet.UDP)
	p.K = k
	return p
}

// candShapesEqual compares candidate lists structurally: identical
// hypothesis tuples in identical order, counts within a relative tolerance
// (the kernel sums float counts in merge order, the serial reference in raw
// enumeration order), and exact match weights (small integers).
func candShapesEqual(t *testing.T, got, want [][]groupCand, tol float64) bool {
	t.Helper()
	if len(got) != len(want) {
		t.Logf("groups: got %d want %d", len(got), len(want))
		return false
	}
	for gi := range want {
		if len(got[gi]) != len(want[gi]) {
			t.Logf("group %d: got %d candidates, want %d", gi, len(got[gi]), len(want[gi]))
			return false
		}
		for ci := range want[gi] {
			g, w := got[gi][ci], want[gi][ci]
			if g.vStart != w.vStart || g.vLen != w.vLen || g.aTrack != w.aTrack || g.aCount != w.aCount || g.Wild != w.Wild {
				t.Logf("group %d cand %d: shape got %+v want %+v", gi, ci, g, w)
				return false
			}
			if math.Abs(g.Count-w.Count) > tol*math.Max(1, w.Count) {
				t.Logf("group %d cand %d: count got %g want %g", gi, ci, g.Count, w.Count)
				return false
			}
			if math.Abs(g.MaxW-w.MaxW) > 1e-9 || math.Abs(g.MinW-w.MinW) > 1e-9 {
				t.Logf("group %d cand %d: weights got (%g,%g) want (%g,%g)", gi, ci, g.MaxW, g.MinW, w.MaxW, w.MinW)
				return false
			}
		}
	}
	return true
}

// TestSearchMatchesSerialReference cross-checks the parallel kernel —
// candidate shapes, counts, truncation flags and eval-pass truth weights —
// against the preserved serial implementation on random instances large
// enough to exercise cache reuse, with a budget generous enough that
// neither implementation truncates.
func TestSearchMatchesSerialReference(t *testing.T) {
	f := func(seed int64) bool {
		man, groups, tcx := searchScenario(seed, 3, 8, 3)
		p := searchParams(0.05)
		est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}

		g, err := buildMuxGraph(man, est, p, nil)
		sg, serr := serialBuildMuxGraph(man, est, p, nil)
		if (err == nil) != (serr == nil) {
			t.Logf("build: kernel err=%v serial err=%v", err, serr)
			return false
		}
		if err != nil {
			return true // both broke the chain identically
		}
		if g.truncated != sg.truncated {
			t.Logf("truncated: kernel=%v serial=%v", g.truncated, sg.truncated)
			return false
		}
		if !candShapesEqual(t, g.cands, sg.cands, 1e-9) {
			return false
		}

		gw := g.withTruthWeights(man, p, tcx)
		sgw := serialWithTruthWeights(sg, man, p, tcx)
		return candShapesEqual(t, gw.cands, sgw.cands, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSearchDeterministicTruncation pins the determinism contract of the
// parallel search under budget exhaustion: repeated runs must produce
// byte-identical candidate lists, the same Truncated flag, and the same
// core.window_truncations counter value, regardless of worker scheduling.
func TestSearchDeterministicTruncation(t *testing.T) {
	man, groups, _ := searchScenario(41, 4, 10, 4)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}

	run := func(budget int64) ([][]groupCand, bool, int64, int64) {
		p := searchParams(0.05)
		p.GroupSearchBudget = budget
		p.Obs = obs.New(nil, obs.NewCollector())
		g, err := buildMuxGraph(man, est, p, nil)
		if err != nil {
			t.Fatalf("buildMuxGraph: %v", err)
		}
		return g.cands, g.truncated,
			p.Obs.Metrics().Counter("core.window_truncations").Value(),
			p.Obs.Metrics().Counter("core.window_calls").Value()
	}

	// Find a budget that actually truncates (full run's cost minus a bit).
	cands0, trunc0, winTrunc0, calls0 := run(25)
	if !trunc0 {
		t.Fatalf("budget 25 did not truncate the search; scenario too small")
	}
	if winTrunc0 == 0 {
		t.Fatalf("truncated run recorded no core.window_truncations")
	}
	for i := 0; i < 10; i++ {
		cands, trunc, winTrunc, calls := run(25)
		if trunc != trunc0 || winTrunc != winTrunc0 || calls != calls0 {
			t.Fatalf("run %d: flags/counters diverged: trunc=%v/%v window_truncations=%d/%d window_calls=%d/%d",
				i, trunc, trunc0, winTrunc, winTrunc0, calls, calls0)
		}
		if !reflect.DeepEqual(cands, cands0) {
			t.Fatalf("run %d: candidate lists diverged under truncation", i)
		}
	}
}

// TestSearchDeterministicFull pins run-to-run byte-identity of the
// untruncated search (the golden-determinism contract for mux inference).
func TestSearchDeterministicFull(t *testing.T) {
	man, groups, tcx := searchScenario(29, 3, 9, 4)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}

	run := func() ([][]groupCand, [][]groupCand) {
		p := searchParams(0.05)
		g, err := buildMuxGraph(man, est, p, nil)
		if err != nil {
			t.Fatalf("buildMuxGraph: %v", err)
		}
		return g.cands, g.withTruthWeights(man, p, tcx).cands
	}
	cands0, wcands0 := run()
	for i := 0; i < 10; i++ {
		cands, wcands := run()
		if !reflect.DeepEqual(cands, cands0) {
			t.Fatalf("run %d: build candidates diverged", i)
		}
		if !reflect.DeepEqual(wcands, wcands0) {
			t.Fatalf("run %d: eval candidates diverged", i)
		}
	}
}

// TestHalfCacheHitMissCounters checks that overlapping windows actually
// share cached half enumerations, that the hit/miss metrics are counted
// deterministically, and that the cached results stay correct (covered by
// the serial cross-check above — here we pin the counters).
func TestHalfCacheHitMissCounters(t *testing.T) {
	man, groups, tcx := searchScenario(23, 3, 9, 4)
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}

	run := func() (hits, misses int64) {
		p := searchParams(0.05)
		p.Obs = obs.New(nil, obs.NewCollector())
		g, err := buildMuxGraph(man, est, p, nil)
		if err != nil {
			t.Fatalf("buildMuxGraph: %v", err)
		}
		g.withTruthWeights(man, p, tcx)
		return p.Obs.Metrics().Counter("core.half_cache_hits").Value(),
			p.Obs.Metrics().Counter("core.half_cache_misses").Value()
	}
	hits0, misses0 := run()
	if misses0 == 0 {
		t.Fatalf("no cache misses recorded: counters not wired")
	}
	if hits0 == 0 {
		t.Fatalf("no cache hits recorded: overlapping windows and the eval pass should reuse halves")
	}
	for i := 0; i < 5; i++ {
		hits, misses := run()
		if hits != hits0 || misses != misses0 {
			t.Fatalf("run %d: cache counters diverged: hits=%d/%d misses=%d/%d", i, hits, hits0, misses, misses0)
		}
	}
}

// TestRunDPCountSaturatesNotNaN pins the float64 overflow semantics of the
// no-mux DP's skipped-run count ratio: on sessions long enough that the
// prefix product of audio option counts overflows, sequence counts must
// saturate to +Inf — never degrade to NaN via Inf/Inf.
func TestRunDPCountSaturatesNotNaN(t *testing.T) {
	// Manifest: one video track with two chunks, two equal-size audio
	// tracks (every audio request has 2 options, so prefCnt doubles per
	// audio request and overflows after ~1024 of them).
	man := &media.Manifest{Name: "sat", Host: "h", ChunkDur: 5}
	man.Tracks = append(man.Tracks, media.Track{ID: 0, Kind: media.Video, Bitrate: 100, Sizes: []int64{100_000, 200_000}})
	man.Tracks = append(man.Tracks, media.Track{ID: 1, Kind: media.Audio, Bitrate: 64, Sizes: []int64{5_000}})
	man.Tracks = append(man.Tracks, media.Track{ID: 2, Kind: media.Audio, Bitrate: 64, Sizes: []int64{5_000}})

	// Requests: 1100 audio, video chunk 0, another 1100 audio, video chunk
	// 1. The transition from the first video candidate to the second skips
	// 1100 audio-capable requests whose prefix products have both
	// saturated, forcing the Inf/Inf case satRatio guards.
	var reqs []Request
	tstamp := 0.0
	addReq := func(est int64) {
		tstamp += 0.1
		reqs = append(reqs, Request{Time: tstamp, Est: est})
	}
	for i := 0; i < 1100; i++ {
		addReq(5_000)
	}
	addReq(100_000)
	for i := 0; i < 1100; i++ {
		addReq(5_000)
	}
	addReq(200_000)

	p := Params{K: 0.01, MediaHost: "h"}.withDefaults(packet.TCP)
	g := buildNoMuxGraph(man, reqs, p)
	minW, maxW, opts := unitAudioWeights(g)
	total, vals := g.runDP(minW, maxW, opts, func(int, media.ChunkRef) float64 { return 0 })
	if !total.ok {
		t.Fatalf("DP found no consistent sequence")
	}
	if math.IsNaN(total.count) {
		t.Fatalf("sequence count degraded to NaN on overflow")
	}
	if !math.IsInf(total.count, 1) {
		t.Fatalf("sequence count = %g, want +Inf saturation", total.count)
	}
	if math.IsNaN(total.best) || math.IsNaN(total.worst) {
		t.Fatalf("weights degraded to NaN: best=%g worst=%g", total.best, total.worst)
	}
	// The extracted sequence must still be usable.
	seq := g.extractSequence(vals)
	if seq == nil || len(seq.Assignments) != len(reqs) {
		t.Fatalf("extractSequence failed on saturated DP")
	}
}

// TestSatRatio pins the helper's saturation semantics directly.
func TestSatRatio(t *testing.T) {
	if got := satRatio(8, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("satRatio(8,2) = %g, want 4", got)
	}
	if got := satRatio(math.Inf(1), math.Inf(1)); !math.IsInf(got, 1) {
		t.Fatalf("satRatio(Inf,Inf) = %g, want +Inf", got)
	}
	if got := satRatio(math.Inf(1), 2); !math.IsInf(got, 1) {
		t.Fatalf("satRatio(Inf,2) = %g, want +Inf", got)
	}
}
