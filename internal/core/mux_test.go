package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"csi/internal/media"
	"csi/internal/packet"
)

// muxBrute enumerates every per-group hypothesis (audio count/track +
// contiguous video run with per-position tracks whose total size matches
// the group estimate) chained under video contiguity and audio-track
// consistency — the semantics identifyMux implements with collapsed
// candidates and DP.
func muxBrute(man *media.Manifest, groups []Group, k float64, tc *truthCtx) (count, best, worst float64) {
	vTracks := man.VideoTracks()
	nChunks := man.NumVideoChunks()
	best, worst = math.Inf(-1), math.Inf(1)

	type hyp struct {
		vStart, vLen int
		tracks       []int
		aTrack       int
		aCount       int
	}
	hypsOf := func(gi int) []hyp {
		grp := groups[gi]
		nReq := len(grp.ReqTimes)
		sumLo, sumHi := media.CandidateRange(grp.Est, k)
		var out []hyp
		audioChoices := []struct {
			track int
			size  int64
		}{{track: -1}}
		for _, ai := range man.AudioTracks() {
			audioChoices = append(audioChoices, struct {
				track int
				size  int64
			}{ai, man.Tracks[ai].Sizes[0]})
		}
		for _, ac := range audioChoices {
			for aCount := 0; aCount <= nReq; aCount++ {
				if (ac.track < 0) != (aCount == 0) {
					continue
				}
				vLen := nReq - aCount
				vLo := sumLo - int64(aCount)*ac.size
				vHi := sumHi - int64(aCount)*ac.size
				if vHi < 0 {
					continue
				}
				if vLen == 0 {
					if vLo <= 0 && 0 <= vHi {
						out = append(out, hyp{vStart: -1, aTrack: ac.track, aCount: aCount})
					}
					continue
				}
				for s := 0; s+vLen <= nChunks; s++ {
					tracks := make([]int, vLen)
					var walk func(p int, sum int64)
					walk = func(p int, sum int64) {
						if p == vLen {
							if sum >= vLo && sum <= vHi {
								cp := make([]int, vLen)
								copy(cp, tracks)
								out = append(out, hyp{vStart: s, vLen: vLen, tracks: cp, aTrack: ac.track, aCount: aCount})
							}
							return
						}
						for _, tr := range vTracks {
							tracks[p] = tr
							walk(p+1, sum+man.Tracks[tr].Sizes[s+p])
						}
					}
					walk(0, 0)
				}
			}
		}
		return out
	}
	all := make([][]hyp, len(groups))
	for gi := range groups {
		all[gi] = hypsOf(gi)
	}
	score := func(gi int, h hyp) float64 {
		if tc == nil {
			return 0
		}
		w := 0.0
		for p := 0; p < h.vLen; p++ {
			if tr, ok := tc.videoTrack[gi][h.vStart+p]; ok && tr == h.tracks[p] {
				w++
			}
		}
		if h.aCount > 0 {
			if have := tc.audioCount[gi][h.aTrack]; have > 0 {
				if h.aCount < have {
					w += float64(h.aCount)
				} else {
					w += float64(have)
				}
			}
		}
		return w
	}
	var rec func(gi, lastV, aTrack int, sc float64)
	rec = func(gi, lastV, aTrack int, sc float64) {
		if gi == len(groups) {
			count++
			if sc > best {
				best = sc
			}
			if sc < worst {
				worst = sc
			}
			return
		}
		for _, h := range all[gi] {
			if h.vLen > 0 && lastV != lastVNone && h.vStart != lastV+1 {
				continue
			}
			at := aTrack
			if h.aCount > 0 {
				if at >= 0 && at != h.aTrack {
					continue
				}
				at = h.aTrack
			}
			lv := lastV
			if h.vLen > 0 {
				lv = h.vStart + h.vLen - 1
			}
			rec(gi+1, lv, at, sc+score(gi, h))
		}
	}
	rec(0, lastVNone, -1, 0)
	if count == 0 {
		return 0, 0, 0
	}
	return count, best, worst
}

// TestMuxChainAgainstBruteForce cross-checks the collapsed-candidate DP —
// counting, reachability and best/worst weights — against exhaustive
// enumeration on small random instances.
func TestMuxChainAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		man := tinyManifest(seed, 2, 6, true)
		k := 0.05

		// Build 2-3 truth groups with contiguous video and interleaved
		// audio, deriving group estimates from true sizes.
		nGroups := 2 + rng.Intn(2)
		idx := rng.Intn(2)
		aIdx := 0
		tcx := &truthCtx{
			videoTrack: make([]map[int]int, nGroups),
			audioCount: make([]map[int]int, nGroups),
		}
		var groups []Group
		tstamp := 0.0
		for gi := 0; gi < nGroups; gi++ {
			tcx.videoTrack[gi] = map[int]int{}
			tcx.audioCount[gi] = map[int]int{}
			g := Group{Start: tstamp}
			nReq := 1 + rng.Intn(3)
			var sum int64
			for r := 0; r < nReq; r++ {
				tstamp += 1
				g.ReqTimes = append(g.ReqTimes, tstamp)
				if rng.Intn(3) == 0 || idx >= man.NumVideoChunks() {
					ai := man.AudioTracks()[0]
					tcx.audioCount[gi][ai]++
					sum += man.Tracks[ai].Sizes[0]
					aIdx++
					continue
				}
				tr := man.VideoTracks()[rng.Intn(2)]
				tcx.videoTrack[gi][idx] = tr
				sum += man.Tracks[tr].Sizes[idx]
				idx++
			}
			g.End = tstamp
			// Estimate with random over-estimation within k.
			g.Est = sum + int64(rng.Intn(int(float64(sum)*k)))
			groups = append(groups, g)
			tstamp += 10
		}

		est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
		p := Params{K: k, MediaHost: "h", Mux: true}.withDefaults(packet.UDP)
		p.K = k

		g, err := buildMuxGraph(man, est, p, nil)
		if err != nil {
			t.Logf("buildMuxGraph: %v", err)
			return false
		}
		total := g.chainDP()
		wantCount, _, _ := muxBrute(man, groups, k, nil)
		if !total.ok {
			return wantCount == 0
		}
		if math.Abs(total.count-wantCount) > 1e-6*math.Max(1, wantCount) {
			t.Logf("count: dp=%g brute=%g", total.count, wantCount)
			return false
		}

		gw := g.withTruthWeights(man, p, tcx)
		wTotal := gw.chainDP()
		_, wantBest, wantWorst := muxBrute(man, groups, k, tcx)
		if math.Abs(wTotal.best-wantBest) > 1e-9 || math.Abs(wTotal.worst-wantWorst) > 1e-9 {
			t.Logf("weights: dp=(%g,%g) brute=(%g,%g)", wTotal.best, wTotal.worst, wantBest, wantWorst)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
