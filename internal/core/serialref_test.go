package core

import (
	"fmt"
	"sort"

	"csi/internal/media"
)

// This file preserves the pre-parallel serial candidate search verbatim
// (modulo renames) as the reference implementation: the kernel in
// muxsearch.go is cross-checked against it for correctness, and the
// Benchmark*Serial benchmarks measure it as the "before" baseline for
// BENCH_core.json.

// serialBuildMuxGraph is the old buildMuxGraph driving the serial search.
func serialBuildMuxGraph(man *media.Manifest, est *Estimation, p Params, tc *truthCtx) (*muxGraph, error) {
	g := &muxGraph{man: man, params: p, groups: est.Groups}
	disp := displayConstraint(p.Display)

	states := map[int]bool{lastVNone: true}
	for gi, grp := range est.Groups {
		admissible := map[int]bool{}
		wildcard := states[lastVNone]
		for lv := range states {
			if lv != lastVNone {
				admissible[lv+1] = true
			}
		}
		nReq := len(grp.ReqTimes)
		cands, truncated := serialGroupCandidates(man, grp, nReq, p, disp, tc, gi, wildcard, admissible)
		for drop := 1; len(cands) == 0 && nReq > drop && drop <= 2; drop++ {
			cands, truncated = serialGroupCandidates(man, grp, len(grp.ReqTimes)-drop, p, disp, tc, gi, wildcard, admissible)
			nReq = len(grp.ReqTimes) - drop
		}
		if truncated {
			g.truncated = true
		}
		if len(cands) == 0 {
			cands = []groupCand{{vStart: -1, aTrack: -1, Count: 1, Wild: true}}
		}
		g.cands = append(g.cands, cands)
		g.nReqUsed = append(g.nReqUsed, nReq)

		next := map[int]bool{}
		passthrough := false
		for _, c := range cands {
			switch {
			case c.Wild:
				next[lastVNone] = true
			case c.vLen > 0:
				next[c.vStart+c.vLen-1] = true
			default:
				passthrough = true
			}
		}
		if passthrough {
			for lv := range states {
				next[lv] = true
			}
		}
		states = next
		if len(states) == 0 {
			return nil, fmt.Errorf("core: chain broken at group %d (%.1fs..%.1fs)", gi, grp.Start, grp.End)
		}
	}
	return g, nil
}

// serialGroupCandidates is the old serial groupCandidates.
func serialGroupCandidates(man *media.Manifest, grp Group, nReq int, p Params, disp map[int]int, tc *truthCtx, gi int, wildcard bool, admissible map[int]bool) ([]groupCand, bool) {
	sumLo, sumHi := media.CandidateRange(grp.Est, p.K)
	vTracks := man.VideoTracks()
	nChunks := man.NumVideoChunks()
	truncated := false
	var out []groupCand

	allowed := func(idx int) []int {
		if disp != nil {
			if tr, ok := disp[idx]; ok {
				return []int{tr}
			}
		}
		return vTracks
	}
	wantTrack := func(s, pos int) int {
		if tc == nil {
			return -1
		}
		if tr, ok := tc.videoTrack[gi][s+pos]; ok {
			return tr
		}
		return -1
	}

	audioChoices := []struct {
		track int
		size  int64
	}{{track: -1}}
	for _, ai := range man.AudioTracks() {
		audioChoices = append(audioChoices, struct {
			track int
			size  int64
		}{ai, man.Tracks[ai].Sizes[0]})
	}

	aOrder := make([]int, 0, nReq+1)
	for d := 0; d <= nReq; d++ {
		if lo := nReq/2 - d; lo >= 0 {
			aOrder = append(aOrder, lo)
		}
		if hi := nReq/2 + d; d > 0 && hi <= nReq {
			aOrder = append(aOrder, hi)
		}
	}
	budget := p.GroupSearchBudget
	cWinCalls := p.Obs.Metrics().Counter("core.window_calls")
	cWinRejects := p.Obs.Metrics().Counter("core.window_rejects")
	cWinTrunc := p.Obs.Metrics().Counter("core.window_truncations")
	for _, aCount := range aOrder {
		for _, ac := range audioChoices {
			if (ac.track < 0) != (aCount == 0) {
				continue
			}
			vLen := nReq - aCount
			audioBytes := int64(aCount) * ac.size
			vLo, vHi := sumLo-audioBytes, sumHi-audioBytes
			if vHi < 0 {
				continue
			}
			audioW := 0.0
			if tc != nil && aCount > 0 {
				if have := tc.audioCount[gi][ac.track]; have > 0 {
					audioW = float64(min(aCount, have))
				}
			}
			if vLen == 0 {
				if vLo <= 0 && 0 <= vHi {
					out = append(out, groupCand{vStart: -1, aTrack: ac.track, aCount: aCount,
						Count: 1, MaxW: audioW, MinW: audioW})
				}
				continue
			}
			for s := 0; s+vLen <= nChunks; s++ {
				if !wildcard && !admissible[s] {
					continue
				}
				if budget <= 0 {
					truncated = true
					cWinTrunc.Inc()
					return out, truncated
				}
				cWinCalls.Inc()
				cnt, maxW, minW, tr := serialWindowStats(man, allowed, wantTrack, s, vLen, vLo, vHi, &budget)
				truncated = truncated || tr
				if tr {
					cWinTrunc.Inc()
				}
				if cnt <= 0 {
					cWinRejects.Inc()
					continue
				}
				out = append(out, groupCand{
					vStart: s, vLen: vLen, aTrack: ac.track, aCount: aCount,
					Count: cnt, MaxW: maxW + audioW, MinW: minW + audioW,
				})
			}
		}
	}
	return out, truncated
}

// serialWindowStats is the old serial windowStats.
func serialWindowStats(man *media.Manifest, allowed func(int) []int, wantTrack func(s, pos int) int,
	s, vLen int, vLo, vHi int64, budget *int64) (count, maxW, minW float64, truncated bool) {

	var minSum, maxSum int64
	for q := 0; q < vLen; q++ {
		ts := allowed(s + q)
		mn, mx := man.Tracks[ts[0]].Sizes[s+q], man.Tracks[ts[0]].Sizes[s+q]
		for _, t := range ts[1:] {
			sz := man.Tracks[t].Sizes[s+q]
			if sz < mn {
				mn = sz
			}
			if sz > mx {
				mx = sz
			}
		}
		minSum += mn
		maxSum += mx
	}
	if minSum > vHi || maxSum < vLo {
		return 0, 0, 0, false
	}
	halfCombosBound := 1.0
	for q := 0; q < (vLen+1)/2; q++ {
		halfCombosBound *= float64(len(allowed(s + q)))
		if halfCombosBound > 2_000_000 {
			return 0, 0, 0, true
		}
	}

	enum := func(from, to int) []halfCombo {
		res := []halfCombo{{count: 1}}
		for q := from; q < to; q++ {
			want := wantTrack(s, q)
			ts := allowed(s + q)
			next := make([]halfCombo, 0, len(res)*len(ts))
			for _, c := range res {
				for _, t := range ts {
					m := c.matches
					if t == want {
						m++
					}
					next = append(next, halfCombo{sum: c.sum + man.Tracks[t].Sizes[s+q], matches: m, count: c.count})
				}
			}
			res = next
			*budget -= int64(len(res))
			if len(res) > 2_000_000 || *budget <= 0 {
				return nil
			}
		}
		return res
	}
	mid := (vLen + 1) / 2
	left := enum(0, mid)
	right := enum(mid, vLen)
	if left == nil || right == nil {
		return 0, 0, 0, true
	}
	right = compressCombos(right)

	maxM := int32(vLen + 1)
	type bucket struct {
		sums []int64
		pref []float64
	}
	buckets := make([]bucket, maxM+1)
	anyMatches := false
	for _, r := range right {
		b := &buckets[r.matches]
		b.sums = append(b.sums, r.sum)
		total := r.count
		if len(b.pref) > 0 {
			total += b.pref[len(b.pref)-1]
		}
		b.pref = append(b.pref, total)
		if r.matches > 0 {
			anyMatches = true
		}
	}
	countIn := func(b *bucket, lo, hi int64) float64 {
		i := sort.Search(len(b.sums), func(i int) bool { return b.sums[i] >= lo })
		j := sort.Search(len(b.sums), func(i int) bool { return b.sums[i] > hi })
		if j <= i {
			return 0
		}
		c := b.pref[j-1]
		if i > 0 {
			c -= b.pref[i-1]
		}
		return c
	}

	first := true
	for _, l := range left {
		lo, hi := vLo-l.sum, vHi-l.sum
		if !anyMatches && l.matches == 0 {
			// NOTE: deviation from the historical code, which only set
			// first=false here and relied on the zero initialization of
			// maxW/minW — an order-dependent bug: a matching zero-weight
			// combo processed AFTER a full-path combo never lowered minW
			// back to 0. The reference merges w=0 properly so the
			// cross-check pins the correct semantics (which brute force
			// confirms, see TestMuxChainAgainstBruteForce).
			if n := countIn(&buckets[0], lo, hi); n > 0 {
				count += n * l.count
				if first {
					maxW, minW = 0, 0
					first = false
				} else if minW > 0 {
					minW = 0
				}
			}
			continue
		}
		for m := int32(0); m <= maxM; m++ {
			b := &buckets[m]
			if len(b.sums) == 0 {
				continue
			}
			n := countIn(b, lo, hi)
			if n <= 0 {
				continue
			}
			count += n * l.count
			w := float64(l.matches + m)
			if first {
				maxW, minW = w, w
				first = false
			} else {
				if w > maxW {
					maxW = w
				}
				if w < minW {
					minW = w
				}
			}
		}
	}
	return count, maxW, minW, false
}

// serialWithTruthWeights is the old eval pass driving serialWindowStats.
// The clone-and-reweight walk is the shared reweightTruth (mux.go); only
// the window-weight kernel is the serial reference implementation.
func serialWithTruthWeights(g *muxGraph, man *media.Manifest, p Params, tc *truthCtx) *muxGraph {
	disp := displayConstraint(p.Display)
	vTracks := man.VideoTracks()
	allowed := func(idx int) []int {
		if disp != nil {
			if tr, ok := disp[idx]; ok {
				return []int{tr}
			}
		}
		return vTracks
	}
	return reweightTruth(g, man, tc, func(gi int, c groupCand, vLo, vHi int64) (float64, float64) {
		wantTrack := func(s, pos int) int {
			if tr, ok := tc.videoTrack[gi][s+pos]; ok {
				return tr
			}
			return -1
		}
		evalBudget := g.params.GroupSearchBudget
		_, maxW, minW, _ := serialWindowStats(man, allowed, wantTrack, c.vStart, c.vLen, vLo, vHi, &evalBudget)
		return maxW, minW
	})
}
