package core

import (
	"csi/internal/ivl"
	"csi/internal/packet"
)

// Monitor-gap pre-scan. A sniffer that drops packets under load leaves
// permanent holes in the captured stream: unlike link loss, nothing is ever
// retransmitted for the monitor's benefit, so the estimator would silently
// under-count chunk bytes and Property 1 (estimates over-estimate true
// sizes) would break. Each connection is scanned once up front: TCP holes
// show up as uncovered sequence ranges between observed segments, QUIC
// holes as missing packet numbers (each endpoint numbers every packet it
// sends from one contiguous space). The walkers then repair the estimate at
// the first packet after each hole, attributing the missing bytes to the
// chunk being downloaded at that moment, and record the repaired amount so
// downstream consumers can discount their confidence in those chunks.
//
// Only interior holes are repaired: bytes before the first observed packet
// (a mid-session capture start) belong to responses whose requests were
// never seen and cannot be attributed to any chunk.

// tcpGaps describes the monitor-drop structure of one TCP connection.
type tcpGaps struct {
	// downAt maps the start seq of each observed downlink run to the number
	// of payload bytes missing immediately before it.
	downAt map[int64]int64
	// appRatio scales missing TCP payload bytes into TLS application bytes
	// (record framing makes app bytes a near-constant fraction of payload).
	appRatio float64
	// upMissing is the total uplink payload bytes lost by the monitor.
	// Uplink app-data segments are requests, so holes here mean whole
	// requests may have been merged away.
	upMissing int64
}

func scanTCPGaps(pkts []packet.View) tcpGaps {
	var down, up ivl.Set
	var dLo, dHi int64 = -1, -1
	var uLo, uHi int64 = -1, -1
	var payload, app int64
	for _, v := range pkts {
		if v.TCPPayload <= 0 {
			continue
		}
		lo, hi := v.TCPSeq, v.TCPSeq+v.TCPPayload
		if v.Dir == packet.Down {
			down.Add(lo, hi)
			if dLo < 0 || lo < dLo {
				dLo = lo
			}
			if hi > dHi {
				dHi = hi
			}
			if v.TLSAppBytes > 0 {
				payload += v.TCPPayload
				app += v.TLSAppBytes
			}
		} else {
			up.Add(lo, hi)
			if uLo < 0 || lo < uLo {
				uLo = lo
			}
			if hi > uHi {
				uHi = hi
			}
		}
	}
	g := tcpGaps{appRatio: 1}
	if payload > 0 && app > 0 {
		g.appRatio = float64(app) / float64(payload)
	}
	if dLo >= 0 {
		for _, h := range down.Gaps(dLo, dHi) {
			if g.downAt == nil {
				g.downAt = make(map[int64]int64)
			}
			g.downAt[h[1]] = h[1] - h[0]
		}
	}
	if uLo >= 0 {
		for _, h := range up.Gaps(uLo, uHi) {
			g.upMissing += h[1] - h[0]
		}
	}
	return g
}

// quicGaps describes the monitor-drop structure of one QUIC connection.
type quicGaps struct {
	// before maps a downlink packet number to the count of packet numbers
	// missing immediately before it.
	before map[int64]int64
	// meanData is the mean observed downlink short-header payload — the
	// best available proxy for what a lost packet carried.
	meanData float64
}

func scanQUICGaps(pkts []packet.View) quicGaps {
	var pns ivl.Set
	var lo, hi int64 = -1, -1
	var sum, n int64
	for _, v := range pkts {
		if v.Dir != packet.Down {
			continue
		}
		pns.Add(v.QUICPN, v.QUICPN+1)
		if lo < 0 || v.QUICPN < lo {
			lo = v.QUICPN
		}
		if v.QUICPN > hi {
			hi = v.QUICPN
		}
		if !v.QUICLong {
			sum += v.QUICPayload
			n++
		}
	}
	g := quicGaps{}
	if n > 0 {
		g.meanData = float64(sum) / float64(n)
	}
	if lo >= 0 {
		for _, h := range pns.Gaps(lo, hi+1) {
			if g.before == nil {
				g.before = make(map[int64]int64)
			}
			g.before[h[1]] = h[1] - h[0]
		}
	}
	return g
}
