package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"csi/internal/capture"
	"csi/internal/media"
	"csi/internal/obs"
)

// groupCand is one *collapsed* hypothesis for a traffic group: a contiguous
// run of vLen video chunks starting at vStart plus aCount audio chunks from
// aTrack, such that at least one per-position track assignment makes the
// total true size match the group's estimate under Property 1.
//
// Individual track assignments are NOT materialized: ambiguous groups can
// admit millions of them, but the group-chain DP only needs their number
// (Count) and, for evaluation, the best/worst number of ground-truth
// matches any assignment achieves (MaxW/MinW). Both are computed by
// meet-in-the-middle over the two window halves.
type groupCand struct {
	vStart int
	vLen   int
	aTrack int // -1 when aCount == 0
	aCount int
	Count  float64 // number of matching track assignments
	MaxW   float64 // max ground-truth matches over assignments (eval pass)
	MinW   float64 // min ground-truth matches over assignments (eval pass)
	// Wild marks a last-resort wildcard for a group no hypothesis could
	// explain (estimation noise): the chain re-anchors after it instead of
	// failing outright; the group's requests score zero.
	Wild bool
}

// muxGraph carries per-group candidates and supports the group-chain DP of
// §5.3.2 Step 2.2.
type muxGraph struct {
	man       *media.Manifest
	params    Params
	groups    []Group
	cands     truthCands
	nReqUsed  []int // requests assumed per group (may be reduced for phantoms)
	truncated bool
	// search is the shared candidate-search kernel (muxsearch.go): prefix
	// sums, the half-enumeration cache and the worker pool. The eval pass
	// derives a truth-weighted view from it so cached halves are reused.
	search *muxSearch
}

const lastVNone = math.MinInt32

type muxState struct {
	lastV  int
	aTrack int
}

func identifyMux(man *media.Manifest, est *Estimation, p Params) (*Inference, error) {
	span := p.Obs.Begin("core", "identify", obs.Int("groups", int64(len(est.Groups))))
	stop := p.stageStart("candidates")
	g, err := buildMuxGraph(man, est, p, nil)
	stageStop(stop)
	if err != nil {
		if p.Degrade || p.Guard.Stopped() {
			span.End(obs.Str("outcome", "degraded"))
			var ws []Warning
			if p.Guard.Stopped() {
				ws = append(ws, guardWarning(p.Guard))
			}
			ws = append(ws, Warning{Code: "chain_broken", Detail: err.Error()})
			emitWarnings(p, ws)
			return zeroInference(est, ws...), nil
		}
		span.End(obs.Str("outcome", "chain_broken"))
		return nil, err
	}
	stop = p.stageStart("dp")
	total := g.chainDP()
	stageStop(stop)
	if !total.ok {
		if p.Degrade || p.Guard.Stopped() {
			span.End(obs.Str("outcome", "degraded"))
			var ws []Warning
			if p.Guard.Stopped() {
				ws = append(ws, guardWarning(p.Guard))
			}
			ws = append(ws, Warning{Code: "no_match",
				Detail: fmt.Sprintf("no chunk sequence matches the %d traffic groups (k=%.3f)", len(est.Groups), p.K)})
			emitWarnings(p, ws)
			return zeroInference(est, ws...), nil
		}
		span.End(obs.Str("outcome", "no_match"))
		return nil, fmt.Errorf("core: no chunk sequence matches the %d traffic groups (k=%.3f)", len(est.Groups), p.K)
	}
	p.Obs.Metrics().Gauge("core.sequence_count").Set(total.count)
	var extra []Warning
	if g.truncated {
		p.Obs.Metrics().Counter("core.search_truncations").Inc()
		if !p.Guard.Stopped() {
			// A truncated search used to fall back silently to whatever
			// candidates were committed; surface it so consumers know the
			// count is a lower bound. A guard stop reports its own warning
			// below instead — both imply truncation, with different causes.
			extra = append(extra, Warning{Code: "budget_exhausted",
				Detail: fmt.Sprintf("group search budget %d exhausted; candidate sets truncated and the sequence count is a lower bound", p.GroupSearchBudget)})
		}
	}
	if p.Guard.Stopped() {
		extra = append(extra, guardWarning(p.Guard))
	}
	emitWarnings(p, extra)
	span.End(obs.Float("sequences", total.count))
	warns := extra
	if len(est.Warnings) > 0 {
		warns = append(append([]Warning{}, est.Warnings...), extra...)
	}
	return &Inference{
		Proto:         est.Proto,
		Mux:           true,
		Groups:        est.Groups,
		SequenceCount: total.count,
		Truncated:     g.truncated,
		Warnings:      warns,
		eval:          &muxEval{man: man, est: est, params: p, g: g},
	}, nil
}

// truthCtx carries, for the evaluation pass, the expected track per
// (group, window position) and the audio statistics per group.
type truthCtx struct {
	// videoTrack[gi] maps a chunk index to its ground-truth track within
	// group gi; audioCount[gi][track] = audio chunks per track.
	videoTrack []map[int]int
	audioCount []map[int]int
}

func buildMuxGraph(man *media.Manifest, est *Estimation, p Params, tc *truthCtx) (*muxGraph, error) {
	g := &muxGraph{man: man, params: p, groups: est.Groups}
	g.search = newMuxSearch(man, p, tc)

	// Forward start propagation: a group's video run must start right
	// after the previous group's last video index (Property 2), so only a
	// handful of window starts ever need the expensive exact search. The
	// wildcard ("no video seen yet") survives only through all-audio
	// groups.
	states := map[int]bool{lastVNone: true}
	for gi, grp := range est.Groups {
		admissible := map[int]bool{}
		wildcard := states[lastVNone]
		for lv := range states {
			if lv != lastVNone {
				admissible[lv+1] = true
			}
		}
		nReq := len(grp.ReqTimes)
		cands, truncated := g.search.groupCandidates(grp, nReq, gi, wildcard, admissible)
		// Fallback for phantom requests: retransmitted QUIC request
		// packets look like extra requests (new packet numbers); retry
		// assuming one, then two, of them were phantoms.
		for drop := 1; len(cands) == 0 && nReq > drop && drop <= 2; drop++ {
			cands, truncated = g.search.groupCandidates(grp, len(grp.ReqTimes)-drop, gi, wildcard, admissible)
			nReq = len(grp.ReqTimes) - drop
		}
		if truncated {
			g.truncated = true
		}
		if len(cands) == 0 {
			cands = []groupCand{{vStart: -1, aTrack: -1, Count: 1, Wild: true}}
		}
		if p.Obs.Enabled() {
			p.Obs.Metrics().Histogram("core.group_candidates",
				[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}).Observe(float64(len(cands)))
			p.Obs.Event("core", "group_candidates",
				obs.Int("group", int64(gi)),
				obs.Int("requests", int64(nReq)),
				obs.Int("candidates", int64(len(cands))))
		}
		g.cands = append(g.cands, cands)
		g.nReqUsed = append(g.nReqUsed, nReq)

		next := map[int]bool{}
		passthrough := false
		for _, c := range cands {
			switch {
			case c.Wild:
				next[lastVNone] = true
			case c.vLen > 0:
				next[c.vStart+c.vLen-1] = true
			default:
				passthrough = true
			}
		}
		if passthrough {
			for lv := range states {
				next[lv] = true
			}
		}
		states = next
		if len(states) == 0 {
			return nil, fmt.Errorf("core: chain broken at group %d (%.1fs..%.1fs)", gi, grp.Start, grp.End)
		}
	}
	return g, nil
}

// halfCombo is a compressed partial assignment of one window half: count
// assignments share this (sum, matches) pair. Compression is what keeps the
// search cheap — rate-controlled encodes repeat chunk sizes heavily, so the
// number of DISTINCT partial sums grows far slower than the number of
// assignments.
type halfCombo struct {
	sum     int64
	matches int32
	count   float64
}

// compressCombos sorts by (sum, matches) and merges equal pairs, adding
// their counts.
func compressCombos(cs []halfCombo) []halfCombo {
	if len(cs) < 2 {
		return cs
	}
	slices.SortFunc(cs, func(a, b halfCombo) int {
		if a.sum != b.sum {
			if a.sum < b.sum {
				return -1
			}
			return 1
		}
		return int(a.matches) - int(b.matches)
	})
	out := cs[:1]
	for _, c := range cs[1:] {
		last := &out[len(out)-1]
		if c.sum == last.sum && c.matches == last.matches {
			last.count += c.count
			continue
		}
		out = append(out, c)
	}
	return out
}

// chainDP runs the group-chain DP: states are (last video index, audio
// track); transitions require video contiguity across groups.
func (g *muxGraph) chainDP() dpVals {
	type valMap map[muxState]dpVals
	cur := valMap{{lastV: lastVNone, aTrack: -1}: {ok: true, count: 1}}
	cExpand := g.params.Obs.Metrics().Counter("core.dp_expansions")

	merge := func(m valMap, s muxState, cnt, best, worst float64) {
		cExpand.Inc()
		v, ok := m[s]
		if !ok || !v.ok {
			m[s] = dpVals{ok: true, count: cnt, best: best, worst: worst}
			return
		}
		v.count += cnt
		if best > v.best {
			v.best = best
		}
		if worst < v.worst {
			v.worst = worst
		}
		m[s] = v
	}

	for gi := range g.groups {
		// Guard checkpoint: one charge per group, proportional to the live
		// states. Aborting yields the zero total so a bounded run degrades
		// to no_match plus the guard warning.
		if !g.params.Guard.Step(int64(len(cur)) + 1) {
			return dpVals{}
		}
		next := valMap{}
		byStart := map[int][]*groupCand{}
		var withVideo, noVideo []*groupCand
		for ci := range g.cands[gi] {
			c := &g.cands[gi][ci]
			if c.vLen > 0 {
				byStart[c.vStart] = append(byStart[c.vStart], c)
				withVideo = append(withVideo, c)
			} else {
				noVideo = append(noVideo, c)
			}
		}
		for s, v := range cur {
			if !v.ok {
				continue
			}
			var vidCands []*groupCand
			if s.lastV == lastVNone {
				vidCands = withVideo // first video group: any start
			} else {
				vidCands = byStart[s.lastV+1]
			}
			apply := func(c *groupCand) {
				at := s.aTrack
				if c.aCount > 0 {
					if at >= 0 && at != c.aTrack {
						return // audio track must be consistent session-wide
					}
					at = c.aTrack
				}
				lv := s.lastV
				if c.Wild {
					lv = lastVNone // re-anchor after an unexplained group
				} else if c.vLen > 0 {
					lv = c.vStart + c.vLen - 1
				}
				merge(next, muxState{lastV: lv, aTrack: at},
					v.count*c.Count, v.best+c.MaxW, v.worst+c.MinW)
			}
			for _, c := range vidCands {
				apply(c)
			}
			for _, c := range noVideo {
				apply(c)
			}
		}
		cur = next
		if len(cur) == 0 {
			return dpVals{}
		}
	}

	var total dpVals
	for _, v := range cur {
		if !v.ok {
			continue
		}
		if !total.ok {
			total = v
			continue
		}
		total.count += v.count
		if v.best > total.best {
			total.best = v.best
		}
		if v.worst < total.worst {
			total.worst = v.worst
		}
	}
	return total
}

// muxEval re-scores the already-built graph's candidates against ground
// truth and reruns the chain DP. Re-scoring only existing candidates skips
// the expensive infeasible-window scans of the initial build.
type muxEval struct {
	man    *media.Manifest
	est    *Estimation
	params Params
	g      *muxGraph
}

func (e *muxEval) accuracyRange(truth []capture.TruthRecord) (float64, float64, error) {
	// Assign truth records to groups by request time (robust to phantom
	// requests skewing per-group counts).
	byTime := make([]capture.TruthRecord, len(truth))
	copy(byTime, truth)
	sort.SliceStable(byTime, func(a, b int) bool { return byTime[a].ReqTime < byTime[b].ReqTime })
	const eps = 1e-3
	groups := e.est.Groups
	tc := &truthCtx{
		videoTrack: make([]map[int]int, len(groups)),
		audioCount: make([]map[int]int, len(groups)),
	}
	perGroup := len(truth)/len(groups) + 1
	for gi := range groups {
		tc.videoTrack[gi] = make(map[int]int, perGroup)
		tc.audioCount[gi] = make(map[int]int, perGroup)
	}
	gi := 0
	for _, tr := range byTime {
		for gi+1 < len(groups) && tr.ReqTime >= groups[gi+1].Start-eps {
			gi++
		}
		if tr.Kind == media.Video {
			tc.videoTrack[gi][tr.Ref.Index] = tr.Ref.Track
		} else {
			tc.audioCount[gi][tr.Ref.Track]++
		}
	}

	g := e.g.withTruthWeights(e.man, e.params, tc)
	total := g.chainDP()
	if !total.ok {
		return 0, 0, fmt.Errorf("core: no consistent sequence found")
	}
	return total.best / float64(len(truth)), total.worst / float64(len(truth)), nil
}

// truthCands is a muxGraph's per-group candidate table. The ground-truth
// eval pass deep-copies it (clone) before reweighting, so build-pass
// candidates are never mutated.
type truthCands [][]groupCand

// clone deep-copies the table. All groups share one contiguous backing
// array, handed out as full-capacity subslices so a stray append on one
// group reallocates instead of aliasing its neighbor.
func (tc truthCands) clone() truthCands {
	total := 0
	for _, g := range tc {
		total += len(g)
	}
	backing := make([]groupCand, 0, total)
	out := make(truthCands, len(tc))
	for gi, g := range tc {
		backing = append(backing, g...)
		out[gi] = backing[len(backing)-len(g) : len(backing) : len(backing)]
	}
	return out
}

// reweightTruth clones g and rewrites each non-wild candidate's Max/MinW
// from the ground truth: the assignment-independent audio score plus the
// window weights produced by windowW. It is the single reweighting walk
// shared by the production eval pass (withTruthWeights, below) and the
// serial reference (serialWithTruthWeights in serialref_test.go), so the
// two cannot drift — only the window-weight kernel differs.
func reweightTruth(g *muxGraph, man *media.Manifest, tc *truthCtx,
	windowW func(gi int, c groupCand, vLo, vHi int64) (maxW, minW float64)) *muxGraph {
	out := &muxGraph{man: g.man, params: g.params, groups: g.groups, nReqUsed: g.nReqUsed, truncated: g.truncated}
	out.cands = g.cands.clone()
	for gi := range out.cands {
		for ci := range out.cands[gi] {
			c := &out.cands[gi][ci]
			if c.Wild {
				continue
			}
			audioW := 0.0
			if c.aCount > 0 {
				if have := tc.audioCount[gi][c.aTrack]; have > 0 {
					audioW = float64(min(c.aCount, have))
				}
			}
			if c.vLen > 0 {
				sumLo, sumHi := media.CandidateRange(g.groups[gi].Est, g.params.K)
				aSize := int64(0)
				if c.aTrack >= 0 {
					aSize = man.Tracks[c.aTrack].Sizes[0]
				}
				vLo := sumLo - int64(c.aCount)*aSize
				vHi := sumHi - int64(c.aCount)*aSize
				maxW, minW := windowW(gi, *c, vLo, vHi)
				c.MaxW = maxW + audioW
				c.MinW = minW + audioW
			} else {
				c.MaxW = audioW
				c.MinW = audioW
			}
		}
	}
	return out
}

// withTruthWeights returns a copy of the graph whose candidates carry
// ground-truth match weights, recomputing window statistics only for the
// windows that actually matched during the build. The eval search shares
// the build pass's half cache: halves untouched by ground truth (no truth
// video index in range) hit the entries the build pass already computed.
func (g *muxGraph) withTruthWeights(man *media.Manifest, p Params, tc *truthCtx) *muxGraph {
	es := g.search.withTruth(tc)
	return reweightTruth(g, man, tc, func(gi int, c groupCand, vLo, vHi int64) (float64, float64) {
		evalBudget := g.params.GroupSearchBudget
		return es.evalWindow(gi, c.vStart, c.vLen, vLo, vHi, &evalBudget)
	})
}
