package core

import (
	"math/rand"
	"testing"

	"csi/internal/media"
	"csi/internal/packet"
)

// benchMuxFixture builds a fixed-seed mux candidate-search workload from a
// Table-3 service profile: a real sampled manifest plus synthetic traffic
// groups whose estimates come from a ground-truth walk through it. The
// fixture is deterministic — the perf numbers in BENCH_core.json compare
// the parallel kernel against the serial reference on identical inputs.
func benchMuxFixture(tb testing.TB) (*media.Manifest, *Estimation, Params) {
	tb.Helper()
	svc, err := media.ServiceByName("Facebook")
	if err != nil {
		tb.Fatal(err)
	}
	vids, err := svc.SampleVideos(7, 1, 300)
	if err != nil {
		tb.Fatal(err)
	}
	man := vids[0]

	rng := rand.New(rand.NewSource(1234))
	vTracks := man.VideoTracks()
	aTrack := man.AudioTracks()[0]
	nChunks := man.NumVideoChunks()
	k := 0.05

	var groups []Group
	idx := 0
	tstamp := 0.0
	for gi := 0; gi < 12 && idx < nChunks-10; gi++ {
		g := Group{Start: tstamp}
		// Mix of window lengths, including even vLen so adjacent windows
		// share half ranges through the cache.
		nReq := 4 + rng.Intn(7)
		var sum int64
		for r := 0; r < nReq; r++ {
			tstamp += 1
			g.ReqTimes = append(g.ReqTimes, tstamp)
			if rng.Intn(3) == 0 {
				sum += man.Tracks[aTrack].Sizes[0]
				continue
			}
			tr := vTracks[rng.Intn(len(vTracks))]
			sum += man.Tracks[tr].Sizes[idx]
			idx++
		}
		g.End = tstamp
		g.Est = sum + int64(rng.Intn(int(float64(sum)*k)+1))
		groups = append(groups, g)
		tstamp += 10
	}

	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
	p := Params{K: k, MediaHost: man.Host, Mux: true}.withDefaults(packet.UDP)
	p.K = k
	return man, est, p
}

// BenchmarkMuxCandidateSearch measures the full per-session candidate
// search through the parallel kernel. Each iteration builds a fresh graph
// (fresh half cache), so the number is honest about cold-cache cost.
func BenchmarkMuxCandidateSearch(b *testing.B) {
	man, est, p := benchMuxFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildMuxGraph(man, est, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMuxCandidateSearchSerial is the pre-kernel serial baseline on
// the identical fixture.
func BenchmarkMuxCandidateSearchSerial(b *testing.B) {
	man, est, p := benchMuxFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serialBuildMuxGraph(man, est, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWindow picks one representative mid-manifest window for the
// single-window micro-benchmarks: 12 chunks, bounds from the true sum.
func benchWindow(man *media.Manifest, p Params) (s, vLen int, vLo, vHi int64) {
	s, vLen = 20, 12
	var sum int64
	t0 := man.VideoTracks()[0]
	for q := 0; q < vLen; q++ {
		sum += man.Tracks[t0].Sizes[s+q]
	}
	vLo, vHi = media.CandidateRange(sum, p.K)
	return s, vLen, vLo, vHi
}

// BenchmarkWindowStats measures one window evaluation through the kernel
// (fresh search context per iteration: enumeration is not amortized).
func BenchmarkWindowStats(b *testing.B) {
	man, _, p := benchMuxFixture(b)
	s, vLen, vLo, vHi := benchWindow(man, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := newMuxSearch(man, p, nil)
		budget := p.GroupSearchBudget
		ms.evalWindow(0, s, vLen, vLo, vHi, &budget)
	}
}

// BenchmarkWindowStatsSerial is the serial single-window baseline.
func BenchmarkWindowStatsSerial(b *testing.B) {
	man, _, p := benchMuxFixture(b)
	s, vLen, vLo, vHi := benchWindow(man, p)
	vTracks := man.VideoTracks()
	allowed := func(int) []int { return vTracks }
	wantTrack := func(int, int) int { return -1 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		budget := p.GroupSearchBudget
		serialWindowStats(man, allowed, wantTrack, s, vLen, vLo, vHi, &budget)
	}
}
