package core_test

import (
	"testing"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
	"csi/internal/session"
)

func manifestFor(t *testing.T, d session.Design) *media.Manifest {
	t.Helper()
	audio := 0
	if d.Separate() {
		audio = 1
	}
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "itest", Seed: 23, DurationSec: 420, ChunkDur: 5,
		TargetPASR: 1.5, AudioTracks: audio,
	})
}

func runAndInfer(t *testing.T, d session.Design, withDisplay bool, seed int64) (best, worst float64, count float64) {
	t.Helper()
	man := manifestFor(t, d)
	res, err := session.Run(session.Config{
		Design:    d,
		Manifest:  man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: seed, MeanBps: 5_000_000, Variability: 0.4}),
		Duration:  180,
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("session.Run(%v): %v", d, err)
	}
	if len(res.Run.Truth) < 10 {
		t.Fatalf("%v: only %d requests", d, len(res.Run.Truth))
	}
	p := core.Params{MediaHost: "media.example.com", Mux: d == session.SQ}
	if withDisplay {
		p.Display = res.Run.Display
	}
	inf, err := core.Infer(man, res.Run.Trace, p)
	if err != nil {
		t.Fatalf("Infer(%v): %v", d, err)
	}
	best, worst, err = inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatalf("AccuracyRange(%v): %v", d, err)
	}
	return best, worst, inf.SequenceCount
}

func TestInferCH(t *testing.T) {
	best, worst, count := runAndInfer(t, session.CH, false, 1)
	t.Logf("CH: best=%.3f worst=%.3f count=%g", best, worst, count)
	if best < 1.0 {
		t.Errorf("CH best accuracy %.3f, want 1.0 (ground truth among outputs)", best)
	}
	if worst < 0.9 {
		t.Errorf("CH worst accuracy %.3f, want >= 0.9", worst)
	}
	if count < 1 {
		t.Errorf("CH sequence count %g < 1", count)
	}
}

func TestInferSH(t *testing.T) {
	best, worst, count := runAndInfer(t, session.SH, false, 2)
	t.Logf("SH: best=%.3f worst=%.3f count=%g", best, worst, count)
	if best < 0.98 {
		t.Errorf("SH best accuracy %.3f, want >= 0.98", best)
	}
	if worst < 0.8 {
		t.Errorf("SH worst accuracy %.3f, want >= 0.8", worst)
	}
	_ = count
}

func TestInferCQ(t *testing.T) {
	best, worst, count := runAndInfer(t, session.CQ, false, 3)
	t.Logf("CQ: best=%.3f worst=%.3f count=%g", best, worst, count)
	if best < 1.0 {
		t.Errorf("CQ best accuracy %.3f, want 1.0", best)
	}
	if worst < 0.7 {
		t.Errorf("CQ worst accuracy %.3f, want >= 0.7 (k=5%% widens candidates)", worst)
	}
	_ = count
}

func TestInferSQ(t *testing.T) {
	best, worst, count := runAndInfer(t, session.SQ, false, 4)
	t.Logf("SQ: best=%.3f worst=%.3f count=%g", best, worst, count)
	if best < 0.9 {
		t.Errorf("SQ best accuracy %.3f, want >= 0.9", best)
	}
	// Worst can be low without display info (Table 4); just demand sanity.
	if worst < 0 || worst > best {
		t.Errorf("SQ worst accuracy %.3f outside [0, best]", worst)
	}
	_ = count
}

func TestDisplayInfoImprovesWorstCase(t *testing.T) {
	_, worstNo, countNo := runAndInfer(t, session.SQ, false, 5)
	_, worstYes, countYes := runAndInfer(t, session.SQ, true, 5)
	t.Logf("SQ no-display: worst=%.3f count=%g; with display: worst=%.3f count=%g",
		worstNo, countNo, worstYes, countYes)
	if worstYes < worstNo-1e-9 {
		t.Errorf("display info degraded worst accuracy: %.3f -> %.3f", worstNo, worstYes)
	}
	if countYes > countNo+1e-9 {
		t.Errorf("display info increased sequence count: %g -> %g", countNo, countYes)
	}
}

// TestInferWithoutSNI exercises the §5.3.1 fallback: SNI stripped from the
// capture (encrypted ClientHello), connections associated to the media host
// via DNS + server IP.
func TestInferWithoutSNI(t *testing.T) {
	man := manifestFor(t, session.CH)
	res, err := session.Run(session.Config{
		Design:    session.CH,
		Manifest:  man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  120,
		Seed:      9,
		StripSNI:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Run.Trace.Packets {
		if v.SNI != "" {
			t.Fatal("StripSNI left an SNI in the capture")
		}
	}
	inf, err := core.Infer(man, res.Run.Trace, core.Params{MediaHost: "media.example.com"})
	if err != nil {
		t.Fatalf("Infer without SNI: %v", err)
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1.0 || worst < 0.95 {
		t.Errorf("SNI-less inference degraded: best=%.3f worst=%.3f", best, worst)
	}
}

// TestInferCBR covers §3.3's third robustness point: with CBR encoding each
// track has one fixed chunk size, so the *track* of every download is
// trivially identified. Playback indexes stay ambiguous up to the unknown
// session start, so multiple sequences match, all with the right tracks.
func TestInferCBR(t *testing.T) {
	man := mediatest.Encode(t, media.EncodeConfig{
		Name: "cbr", Seed: 30, DurationSec: 300, ChunkDur: 5,
		TargetPASR: 1.0, ChunkNoise: 1e-9, TrackJitter: 1e-9,
	})
	res, err := session.Run(session.Config{
		Design: session.CH, Manifest: man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  120, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := core.Infer(man, res.Run.Trace, core.Params{MediaHost: man.Host})
	if err != nil {
		t.Fatal(err)
	}
	best, _, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1.0 {
		t.Errorf("CBR best accuracy %.3f, want 1.0", best)
	}
	if inf.SequenceCount < 2 {
		t.Errorf("CBR run should be index-ambiguous, got %g sequences", inf.SequenceCount)
	}
	// Every matching sequence must use the ground-truth tracks: the
	// returned representative is checked chunk by chunk.
	for i, a := range inf.Best.Assignments {
		if a.Audio || a.Noise {
			continue
		}
		if a.Ref.Track != res.Run.Truth[i].Ref.Track {
			t.Fatalf("request %d: CBR track misidentified (%d vs %d)", i, a.Ref.Track, res.Run.Truth[i].Ref.Track)
		}
	}
}

// TestInferMidVideoStart covers §3.3: playback may resume mid-video, so
// CSI must not assume the first downloaded index is 0.
func TestInferMidVideoStart(t *testing.T) {
	man := manifestFor(t, session.CH)
	res, err := session.Run(session.Config{
		Design: session.CH, Manifest: man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  120, Seed: 12,
		StartIndex: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Truth[0].Ref.Index != 30 {
		t.Fatalf("session did not start at index 30: %+v", res.Run.Truth[0])
	}
	inf, err := core.Infer(man, res.Run.Trace, core.Params{MediaHost: man.Host})
	if err != nil {
		t.Fatal(err)
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1.0 || worst < 0.9 {
		t.Errorf("mid-video start inference degraded: best=%.3f worst=%.3f", best, worst)
	}
}

// Kitchen-sink robustness: SQ with loss, reordering AND a token-bucket
// shaper at once. Inference may be ambiguous but must not fail, and the
// best candidate must stay accurate.
func TestInferSQUnderHostileNetwork(t *testing.T) {
	man := manifestFor(t, session.SQ)
	res, err := session.Run(session.Config{
		Design:    session.SQ,
		Manifest:  man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: 8, MeanBps: 6_000_000, Variability: 0.5}),
		Shaper:    &netem.TokenBucketConfig{RateBps: 3_000_000, BucketSize: 500_000},
		LossProb:  0.01,
		Duration:  150,
		Seed:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shaping delays blur the idle gaps and simultaneous-request signals
	// that SP1/SP2 splitting relies on, so some traffic groups end up with
	// structurally wrong chunk compositions — an error no size bound k can
	// repair (we verified k=8%% gives the identical result). The required
	// behaviour is graceful degradation: inference completes, the chain
	// re-anchors past unexplainable groups, and a usable fraction of the
	// session is still identified.
	inf, err := core.Infer(man, res.Run.Trace, core.Params{MediaHost: man.Host, Mux: true})
	if err != nil {
		t.Fatalf("hostile-network inference failed: %v", err)
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hostile SQ: best=%.3f worst=%.3f groups=%d", best, worst, len(inf.Groups))
	if worst < 0 || worst > best {
		t.Errorf("worst accuracy %.3f out of range", worst)
	}
	if best < 0.3 {
		t.Errorf("best accuracy %.3f; expected graceful degradation, not collapse", best)
	}
}
