// Package core implements CSI — the Chunk Sequence Inferencer of the paper
// "CSI: Inferring Mobile ABR Video Adaptation Behavior under HTTPS and QUIC"
// (EuroSys 2020).
//
// Given (a) the per-chunk size ladder of a video (collected in advance from
// the manifest) and (b) a packet capture of an encrypted streaming session,
// CSI infers the identity — media type, track and playback index — and the
// download time of every chunk the player fetched, without reading any
// payload bytes.
//
// The pipeline has two steps (§3.1):
//
//	Step 1 (estimate.go): identify the video connections by SNI, detect the
//	packets carrying chunk requests, and estimate each downloaded chunk's
//	size from the encrypted bytes between consecutive requests. For QUIC
//	with transport multiplexing (the SQ design), traffic is first split into
//	groups at SP1/SP2 split points (§5.3.2).
//
//	Step 2 (identify.go, mux.go): find all chunk sequences whose true sizes
//	match the estimates within the protocol's error bound k (Property 1)
//	and whose playback indexes grow contiguously (Property 2), via a
//	layered-graph shortest-path/DP search (§5.3).
package core

import (
	"fmt"

	"csi/internal/capture"
	"csi/internal/guard"
	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/packet"
	"csi/internal/qoe"
)

// Protocol error bounds measured in §3.2 of the paper.
const (
	KHTTPS = 0.01
	KQUIC  = 0.05
)

// Params configures an inference.
type Params struct {
	// K is the maximum relative size over-estimation (Property 1). Zero
	// selects the protocol default: 1% for HTTPS, 5% for QUIC.
	K float64
	// MediaHost filters connections by SNI suffix (Step 1.1). Required.
	MediaHost string
	// Mux enables the SQ path: split-point grouping and group search. Set
	// it when the service uses QUIC with separate audio tracks.
	Mux bool
	// IdleSplitSec is the SP1 idle-gap threshold. Default 2 s.
	IdleSplitSec float64
	// SP2WindowSec is how close two uplink requests must be to count as
	// simultaneous (SP2). Default 0.01 s.
	SP2WindowSec float64
	// SP2QuietSec is the minimum downlink quiet time required before a
	// simultaneous-request pair counts as an SP2 split point. A genuine
	// "all downloads finished" pair follows a lull; a retransmitted
	// request pair lands mid-burst and must not cut a chunk's bytes in
	// half. Default 0.25 s.
	SP2QuietSec float64
	// RequestMinQUICPayload separates QUIC request packets from ACKs
	// (§5.3.1). Default 80 bytes.
	RequestMinQUICPayload int64
	// MaxGroupRequests caps the size of a traffic group before the group
	// is recursively subdivided at its widest internal idle gap. Default
	// 16. Subdividing more aggressively cheapens the per-group search but
	// risks cutting a chunk's bytes across groups, so prefer the idle-gap
	// split points.
	MaxGroupRequests int
	// GroupSearchBudget caps the enumeration work per traffic group: the
	// total number of compressed partial combinations materialized by the
	// per-group meet-in-the-middle search. Each window half's enumeration
	// cost is charged once, at its first committed use in the group's
	// serial hypothesis order (cached halves reused by later windows are
	// free), so the charge sequence — and therefore the truncation point —
	// is deterministic regardless of worker scheduling. Plausible
	// hypotheses (balanced audio/video splits) are explored first; the
	// window whose charge crosses the budget is discarded, the group's
	// candidate set is marked truncated, and the scan stops — which can
	// under-count sequences for extremely ambiguous groups but never drops
	// the early plausible candidates. Default 4e7.
	GroupSearchBudget int64
	// MinResponseHeaderBytes is a conservative lower bound on the HTTP
	// response header size hidden inside the encrypted response. The
	// estimator subtracts it per response so that header bytes do not push
	// small chunks past the Property-1 bound; subtracting only a lower
	// bound keeps the estimate an over-estimate. Default 280.
	MinResponseHeaderBytes int64
	// MinChunkBytes, when positive, enables phantom-request filtering on
	// QUIC: an apparent new request arriving while the current response
	// has accumulated fewer bytes than this is treated as a retransmitted
	// request packet (QUIC request retransmissions carry new packet
	// numbers and cannot be discarded by SEQ the way TCP ones can).
	// Infer sets it to half the smallest chunk in the manifest.
	MinChunkBytes int64
	// Display, when non-nil, supplies displayed-chunk side information
	// used to prune candidates (§4.2).
	Display []capture.DisplayRecord

	// DisableSP2 turns off simultaneous-request split points, leaving only
	// SP1 idle-gap splits (ablation; §5.3.2 uses both).
	DisableSP2 bool

	// Degrade makes the pipeline yield a partial Inference with structured
	// Warnings instead of a hard error when the capture is impaired: the
	// SNI-less volume fallback for connection selection, the relaxed-K
	// retry ladder when no sequence matches, and a zero-confidence result
	// as the last resort. On a pristine capture none of these paths fire,
	// so Degrade never changes the result of a clean inference.
	Degrade bool

	// Obs traces the inference pipeline: request detection, split-point
	// decisions, graph construction and the sequence search. Inference runs
	// post hoc (no virtual clock), so records are stamped with an ordinal
	// obs.StepClock timeline. Nil disables instrumentation.
	Obs *obs.Tracer

	// Stages, when non-nil, receives wall-clock stage timings for the
	// pipeline phases ("estimate", "candidates", "dp"). The only shipped
	// implementation lives in internal/obs/live, which records into its own
	// registry with its sanctioned clock; durations never feed an inference
	// result or a deterministic export, so Stages never changes any output.
	// Nil (the default) disables timing at the cost of one interface
	// comparison per stage.
	Stages obs.StageTimer

	// HalfCache, when non-nil, shares truth-free half enumerations of the
	// MUX candidate search across every Infer in the process (keyed by
	// encoding-profile signature, so only sessions of the same ladder
	// share). Stored entries carry their original enumeration cost and are
	// charged at first committed use exactly like a fresh enumeration, so a
	// warm cache changes wall-clock time and allocations but never a result.
	// Nil disables cross-session sharing.
	HalfCache *HalfCache

	// Memo, when non-nil, makes Step 1 resumable across repeated Infers
	// over one growing trace: per-connection request extraction (and SQ
	// grouping) is cached keyed by the connection's packet count, so a
	// re-solve of a live flow rescans only the connections that received
	// packets since the last solve. A memo belongs to one flow and is not
	// safe for concurrent use; hits replay the cached requests, warnings
	// and guard charges byte-identically to a fresh scan (see resume.go),
	// so a warm memo never changes a result. Nil disables resumption.
	Memo *EstimateMemo

	// Guard bounds the inference: a work-metered (and optionally
	// wall-clock-deadlined) cancellation token checked at cheap
	// deterministic checkpoints in request extraction, the mux candidate
	// search and the DP ladders. When the token stops, the pipeline yields
	// a partial Inference carrying a structured "deadline_exceeded" (or
	// "cancelled") Warning instead of running unbounded — the execution
	// analogue of the Degrade accuracy ladder. Nil (the default) disables
	// all bounding; a nil Guard never changes any result.
	Guard *guard.Ctx
}

// defaultFloat sets *v to def when it still holds the zero value. The
// comparison is exact by design — zero is the "unset" sentinel of Params,
// not a computed quantity — which is why the floatcmp exemption below is
// sound.
func defaultFloat(v *float64, def float64) {
	if *v == 0 { //csi-vet:ignore floatcmp -- exact zero is the unset-parameter sentinel
		*v = def
	}
}

func (p Params) withDefaults(proto packet.Proto) Params {
	if proto == packet.UDP {
		defaultFloat(&p.K, KQUIC)
	} else {
		defaultFloat(&p.K, KHTTPS)
	}
	defaultFloat(&p.IdleSplitSec, 2.0)
	defaultFloat(&p.SP2WindowSec, 0.01)
	defaultFloat(&p.SP2QuietSec, 0.25)
	if p.RequestMinQUICPayload == 0 {
		p.RequestMinQUICPayload = 80
	}
	if p.MaxGroupRequests == 0 {
		p.MaxGroupRequests = 16
	}
	if p.GroupSearchBudget == 0 {
		p.GroupSearchBudget = 40_000_000
	}
	if p.MinResponseHeaderBytes == 0 {
		p.MinResponseHeaderBytes = 280
	}
	if p.MinResponseHeaderBytes < 0 { // ablation: disable the discount
		p.MinResponseHeaderBytes = 0
	}
	return p
}

// Assignment is the inferred identity of one request: a video chunk (Ref
// valid), an audio chunk of a given track, or unexplained noise (a request
// whose estimate matched nothing — e.g. a retransmitted request packet).
type Assignment struct {
	Audio      bool
	Noise      bool
	AudioTrack int
	Ref        media.ChunkRef
}

// Sequence is one consistent assignment for all requests of a run.
type Sequence struct {
	Assignments []Assignment
}

// Inference is the result of running CSI on one trace.
type Inference struct {
	// Proto and Mux echo what was analyzed.
	Proto packet.Proto
	Mux   bool

	// Requests (no-MUX) or Groups (MUX) from Step 1.
	Requests []Request
	Groups   []Group

	// SequenceCount is the number of distinct matching chunk sequences
	// (float64: counts can be astronomically large in ambiguous runs).
	SequenceCount float64

	// Best is one matching sequence (no-MUX only; arbitrary among the
	// matches unless truth-guided evaluation is used).
	Best *Sequence

	// Truncated reports that the MUX group search hit its enumeration
	// budget: SequenceCount is then a lower bound and extremely ambiguous
	// alternatives may be missing from the candidate sets.
	Truncated bool

	// Warnings records every degradation the pipeline observed and worked
	// around: monitor gaps repaired, SNI fallbacks taken, cross traffic
	// filtered, relaxed error bounds. Empty on a clean capture.
	Warnings []Warning

	// internal handles for accuracy evaluation
	eval evaluator
}

// Warning is one structured degradation notice. Code is a stable
// machine-readable tag (e.g. "sni_missing", "sni_mismatch", "k_relaxed",
// "cross_traffic", "request_gap", "no_match", "deadline_exceeded",
// "budget_exhausted"); Detail is human-readable context.
type Warning struct {
	Code   string `json:"code"`
	Detail string `json:"detail"`
}

// guardWarning renders a stopped guard token as a structured Warning
// ("deadline_exceeded" for budget/deadline stops, "cancelled" for drains).
// Callers must only invoke it on a stopped token.
func guardWarning(g *guard.Ctx) Warning {
	return Warning{Code: g.Code(), Detail: g.Reason()}
}

// Confidences returns one confidence value per request (no-MUX) or per
// group (MUX), in [0,1]: 1 for a cleanly observed chunk, lower when part of
// its bytes were reconstructed across a monitor gap.
func (inf *Inference) Confidences() []float64 {
	conf := func(c float64) float64 {
		if c > 0 {
			return c
		}
		return 1
	}
	if inf.Mux {
		out := make([]float64, len(inf.Groups))
		for i, g := range inf.Groups {
			out[i] = conf(g.Confidence)
		}
		return out
	}
	out := make([]float64, len(inf.Requests))
	for i, r := range inf.Requests {
		out[i] = conf(r.Confidence)
	}
	return out
}

// QoEChunks converts the best matching sequence into qoe.Chunk values
// (noise assignments dropped), ready for qoe.Analyze. The lookup of true
// chunk sizes needs the same manifest the inference ran against. Returns
// nil when the inference has no best sequence (MUX mode, or zero matches).
func (inf *Inference) QoEChunks(man *media.Manifest) []qoe.Chunk {
	if inf.Best == nil {
		return nil
	}
	var chunks []qoe.Chunk
	for i, a := range inf.Best.Assignments {
		if a.Noise {
			continue
		}
		r := inf.Requests[i]
		c := qoe.Chunk{ReqTime: r.Time, DoneTime: r.LastData, Audio: a.Audio}
		if a.Audio {
			c.Track = a.AudioTrack
			c.Size = man.Tracks[a.AudioTrack].Sizes[0]
		} else {
			c.Track = a.Ref.Track
			c.Index = a.Ref.Index
			c.Size = man.Size(a.Ref)
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// Request is one detected chunk request with its estimated response size
// (Step 1.2, no-MUX designs).
type Request struct {
	Time     float64 `json:"time"`
	Conn     int     `json:"conn"`
	Est      int64   `json:"est"`
	LastData float64 `json:"last_data"` // download-completion estimate
	// GapBytes counts estimated bytes reconstructed across monitor gaps
	// (already included in Est); Confidence is set only for gap-repaired
	// requests (zero means cleanly observed, i.e. full confidence).
	GapBytes   int64   `json:"gap_bytes,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// Group is one traffic group between split points (SQ designs).
type Group struct {
	Start    float64   `json:"start"`
	End      float64   `json:"end"`
	ReqTimes []float64 `json:"req_times"`
	Est      int64     `json:"est"` // total estimated bytes for the group
	LastData float64   `json:"last_data"`
	// GapBytes / Confidence mirror the Request fields: bytes reconstructed
	// across monitor gaps, and the resulting confidence (zero = clean).
	GapBytes   int64   `json:"gap_bytes,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// evaluator computes best/worst accuracy against ground truth without
// enumerating sequences; implemented per mode in identify.go / mux.go.
type evaluator interface {
	accuracyRange(truth []capture.TruthRecord) (best, worst float64, err error)
}

// AccuracyRange evaluates the inference against the ground-truth request
// log: the accuracy of the best and the worst matching sequence, as
// fractions in [0,1] (Table 4's metrics).
func (inf *Inference) AccuracyRange(truth []capture.TruthRecord) (best, worst float64, err error) {
	if inf.eval == nil {
		return 0, 0, fmt.Errorf("core: inference has no evaluator")
	}
	return inf.eval.accuracyRange(truth)
}

// testHookInfer and testHookFillHalf let tests inject panics at specific
// pipeline depths to exercise containment. Never set outside tests.
var (
	testHookInfer    func()
	testHookFillHalf func()
)

// Infer runs the full CSI pipeline on a captured run. Any panic below this
// frame — including one raised on a mux search worker goroutine — is
// contained and returned as a *guard.PanicError, so one poisoned session
// cannot take down a batch.
func Infer(man *media.Manifest, tr *capture.Trace, p Params) (inf *Inference, err error) {
	defer guard.Capture(&err)
	if man == nil {
		return nil, fmt.Errorf("core: nil manifest")
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || len(tr.Packets) == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if p.MediaHost == "" {
		return nil, fmt.Errorf("core: MediaHost is required for connection filtering")
	}
	if p.MinChunkBytes == 0 {
		min := int64(1) << 60
		for ti := range man.Tracks {
			for _, s := range man.Tracks[ti].Sizes {
				if s < min {
					min = s
				}
			}
		}
		p.MinChunkBytes = min / 2
	}
	if testHookInfer != nil {
		testHookInfer()
	}
	stop := p.stageStart("estimate")
	est, err := Estimate(tr, p)
	stageStop(stop)
	if err != nil {
		return nil, err
	}
	return Identify(man, est, p)
}

// stageStart begins a wall-clock stage timing when a live ops plane is
// attached via Params.Stages; without one the cost is a single interface
// comparison and the returned stop is nil.
func (p Params) stageStart(stage string) func() {
	if p.Stages == nil {
		return nil
	}
	return p.Stages.Start(stage)
}

// stageStop ends a timing begun by stageStart (nil-safe).
func stageStop(stop func()) {
	if stop != nil {
		stop()
	}
}
