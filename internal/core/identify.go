package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"csi/internal/capture"
	"csi/internal/guard"
	"csi/internal/media"
	"csi/internal/obs"
)

// Identify performs Step 2 on an estimation: it finds the chunk sequences
// consistent with Property 1 (sizes) and Property 2 (contiguous indexes).
func Identify(man *media.Manifest, est *Estimation, p Params) (*Inference, error) {
	p = p.withDefaults(est.Proto)
	if (est.Mux && len(est.Groups) == 0) || (!est.Mux && len(est.Requests) == 0) {
		// Nothing to identify — a degraded Estimate already said why.
		return zeroInference(est, Warning{Code: "no_match", Detail: "empty estimation: nothing to identify"}), nil
	}
	if est.Mux {
		return identifyMux(man, est, p)
	}
	return identifyNoMux(man, est, p)
}

// zeroInference is the last-resort degraded result: the Step-1 artifacts
// and warnings are preserved, no sequence matched, and every accuracy
// evaluation scores zero instead of erroring.
func zeroInference(est *Estimation, extra ...Warning) *Inference {
	return &Inference{
		Proto:    est.Proto,
		Mux:      est.Mux,
		Requests: est.Requests,
		Groups:   est.Groups,
		Warnings: append(append([]Warning{}, est.Warnings...), extra...),
		eval:     zeroEval{},
	}
}

// zeroEval scores the empty inference: zero accuracy, never an error.
type zeroEval struct{}

func (zeroEval) accuracyRange([]capture.TruthRecord) (float64, float64, error) {
	return 0, 0, nil
}

// displayConstraint returns the track displayed for each video index, if
// displayed-chunk side information is available.
func displayConstraint(display []capture.DisplayRecord) map[int]int {
	if len(display) == 0 {
		return nil
	}
	m := make(map[int]int, len(display))
	for _, d := range display {
		m[d.Index] = d.Track
	}
	return m
}

// layer holds the per-request candidates of the no-MUX graph.
type layer struct {
	video []media.ChunkRef
	audio []int // audio track ids matching the estimate
}

// noMuxGraph is the layered candidate graph of §5.3.1 plus the DP values
// needed to count sequences and bound accuracy without enumeration.
type noMuxGraph struct {
	man    *media.Manifest
	layers []layer
	reqs   []Request

	// guard bounds graph construction and the DP; a stopped guard leaves
	// trailing layers empty and aborts runDP, surfacing as no_match plus a
	// guard warning.
	guard *guard.Ctx

	// byIndex[i] maps a chunk index to the positions of layer i's video
	// candidates holding it (in layer order). Built once; shared by the DP
	// predecessor lookups, the graph-edge metrics and extractSequence.
	byIndex []map[int][]int

	// DP instrumentation handles (nil-safe).
	cExpand *obs.Counter
	cPrune  *obs.Counter
}

func buildNoMuxGraph(man *media.Manifest, reqs []Request, p Params) *noMuxGraph {
	vIdx := media.NewSizeIndex(man, media.Video)
	disp := displayConstraint(p.Display)
	// Audio candidates are matched per track in manifest order so the
	// layer's candidate list (and everything enumerated from it) is
	// deterministic across runs.
	audioTracks := man.AudioTracks()
	g := &noMuxGraph{man: man, layers: make([]layer, len(reqs)), reqs: reqs, guard: p.Guard}
	for i, r := range reqs {
		if !p.Guard.OK() {
			// Leave the remaining layers empty; runDP aborts on the stopped
			// guard before an empty-layer path could count as a match.
			break
		}
		lo, hi := media.CandidateRange(r.Est, p.K)
		var vc []media.ChunkRef
		for _, ref := range vIdx.Range(lo, hi, nil) {
			if disp != nil {
				if tr, ok := disp[ref.Index]; ok && tr != ref.Track {
					continue // contradicted by the screen
				}
			}
			vc = append(vc, ref)
		}
		var ac []int
		for _, ai := range audioTracks {
			if sz := man.Tracks[ai].Sizes[0]; sz >= lo && sz <= hi {
				ac = append(ac, ai)
			}
		}
		g.layers[i] = layer{video: vc, audio: ac}
		// Guard checkpoint: one charge per layer, proportional to the
		// candidates materialized.
		p.Guard.Step(int64(len(vc)) + 1)
	}
	g.byIndex = make([]map[int][]int, len(g.layers))
	for i := range g.layers {
		m := make(map[int][]int)
		for ci, c := range g.layers[i].video {
			m[c.Index] = append(m[c.Index], ci)
		}
		g.byIndex[i] = m
	}
	g.cExpand = p.Obs.Metrics().Counter("core.dp_expansions")
	g.cPrune = p.Obs.Metrics().Counter("core.dp_prunes")
	if p.Obs.Enabled() {
		hist := p.Obs.Metrics().Histogram("core.candidates_per_request",
			[]float64{0, 1, 2, 4, 8, 16, 32, 64})
		nodes, edges := 0, 0
		for i := range g.layers {
			la := g.layers[i]
			hist.Observe(float64(len(la.video) + len(la.audio)))
			nodes += len(la.video) + len(la.audio)
			// Contiguity edges: a candidate links to prior-layer candidates
			// holding the preceding playback index.
			if i > 0 {
				for _, c := range la.video {
					edges += len(g.byIndex[i-1][c.Index-1])
				}
			}
		}
		p.Obs.Metrics().Counter("core.graph_nodes").Add(int64(nodes))
		p.Obs.Metrics().Counter("core.graph_edges").Add(int64(edges))
		p.Obs.Event("core", "graph_built",
			obs.Int("layers", int64(len(g.layers))),
			obs.Int("nodes", int64(nodes)),
			obs.Int("edges", int64(edges)))
	}
	return g
}

// satRatio divides two prefix products of audio option counts, saturating
// explicitly instead of producing NaN. On very long sessions the running
// product prefCnt can overflow float64 to +Inf (thousands of multi-option
// audio requests); the ratio of two saturated prefixes is then Inf/Inf =
// NaN, which would poison every downstream count. The denominator is always
// a factor of the numerator (both are prefix products of per-request option
// counts >= 1), so when the numerator saturates the true ratio is "too many
// to represent": report +Inf. Sequence counts therefore saturate to +Inf on
// overflow and never degrade to NaN.
func satRatio(num, den float64) float64 {
	if math.IsInf(num, 1) {
		return math.Inf(1)
	}
	return num / den
}

// dpVals carries the per-node DP state: number of distinct sequences ending
// here and the best/worst cumulative truth matches. Weights are only
// meaningful when truth weighting is installed; counting works always.
type dpVals struct {
	count float64
	best  float64
	worst float64
	ok    bool
}

// dpScratch pools the per-run prefix/suffix tables of the no-MUX DP. Every
// element is overwritten before it is read (the prefix and suffix loops fill
// index 0 / n explicitly and sweep the rest), so reuse needs no zeroing —
// only a capacity check. The tables never escape runDP; vals does (the
// caller walks it in extractSequence) and therefore stays per-call.
type dpScratch struct {
	audioOK                   []bool
	prefOK, sufOK             []bool
	prefMin, prefMax, prefCnt []float64
	sufMin, sufMax, sufCnt    []float64
}

var dpScratchPool = sync.Pool{New: func() any { return new(dpScratch) }}

// growBools / growFloats return a slice of length n reusing buf's backing
// array when it is large enough. Contents are unspecified: callers must
// write every element before reading it.
func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// runDP runs the forward DP. audioW[i] gives (min,max) per-request audio
// match weight and the option count; videoW(i, c) the video match weight.
// Returns per-layer per-candidate values plus the aggregated full-sequence
// results.
func (g *noMuxGraph) runDP(
	audioMinW, audioMaxW []float64,
	audioOpts []float64,
	videoW func(i int, c media.ChunkRef) float64,
) (total dpVals, vals [][]dpVals) {
	n := len(g.layers)
	// vals escapes (extractSequence walks it after runDP returns), so it is
	// allocated per call — but as one flat backing array plus headers, two
	// allocations instead of one per layer.
	nCands := 0
	for i := range g.layers {
		nCands += len(g.layers[i].video)
	}
	flat := make([]dpVals, nCands)
	vals = make([][]dpVals, n)
	for i, off := 0, 0; i < n; i++ {
		c := len(g.layers[i].video)
		vals[i] = flat[off : off+c : off+c]
		off += c
	}
	sc := dpScratchPool.Get().(*dpScratch)
	defer dpScratchPool.Put(sc)
	// audioOK[i]: request i can be skipped by a video-chunk path — either
	// it can be assigned as audio, or it matched nothing at all (noise:
	// e.g. a retransmitted request whose inflated estimate fits no chunk)
	// and is stepped over rather than failing the whole inference.
	sc.audioOK = growBools(sc.audioOK, n)
	audioOK := sc.audioOK
	for i := range audioOK {
		audioOK[i] = len(g.layers[i].audio) > 0 || len(g.layers[i].video) == 0
	}
	// Prefix aggregates over audio-assigned runs.
	// prefMin[i] = sum of audioMinW[0..i-1], valid only if all audioOK.
	sc.prefMin = growFloats(sc.prefMin, n+1)
	sc.prefMax = growFloats(sc.prefMax, n+1)
	sc.prefCnt = growFloats(sc.prefCnt, n+1)
	sc.prefOK = growBools(sc.prefOK, n+1)
	prefMin, prefMax, prefCnt, prefOK := sc.prefMin, sc.prefMax, sc.prefCnt, sc.prefOK
	prefMin[0], prefMax[0] = 0, 0
	prefOK[0] = true
	prefCnt[0] = 1
	for i := 0; i < n; i++ {
		prefOK[i+1] = prefOK[i] && audioOK[i]
		prefMin[i+1] = prefMin[i] + audioMinW[i]
		prefMax[i+1] = prefMax[i] + audioMaxW[i]
		prefCnt[i+1] = prefCnt[i] * audioOpts[i]
	}
	// Predecessor lookups by chunk index use the shared g.byIndex maps
	// built once in buildNoMuxGraph.

	merge := func(v *dpVals, cnt, best, worst float64) {
		if !v.ok {
			*v = dpVals{ok: true, count: cnt, best: best, worst: worst}
			return
		}
		v.count += cnt
		if best > v.best {
			v.best = best
		}
		if worst < v.worst {
			v.worst = worst
		}
	}

	for i := 0; i < n; i++ {
		// Guard checkpoint: one charge per DP layer, proportional to the
		// states expanded. Aborting returns the zero total (not ok), so a
		// bounded run degrades to no_match rather than reporting a count
		// from a half-explored graph.
		if !g.guard.Step(int64(len(g.layers[i].video)) + 1) {
			return dpVals{}, vals
		}
		for ci, c := range g.layers[i].video {
			w := videoW(i, c)
			v := dpVals{}
			// Start here: all previous requests assigned audio.
			if prefOK[i] {
				merge(&v, prefCnt[i], prefMax[i]+w, prefMin[i]+w)
			}
			// Or continue from a previous video candidate with index-1,
			// skipping audio-capable requests in between.
			for j := i - 1; j >= 0; j-- {
				// Requests j+1..i-1 must all be audio-capable.
				if j < i-1 && !audioOK[j+1] {
					g.cPrune.Inc()
					break
				}
				// Aggregate audio weights over the skipped run.
				skMin := prefMin[i] - prefMin[j+1]
				skMax := prefMax[i] - prefMax[j+1]
				skCnt := satRatio(prefCnt[i], prefCnt[j+1])
				for _, pj := range g.byIndex[j][c.Index-1] {
					pv := vals[j][pj]
					if !pv.ok {
						continue
					}
					g.cExpand.Inc()
					merge(&v, pv.count*skCnt, pv.best+skMax+w, pv.worst+skMin+w)
				}
			}
			vals[i][ci] = v
		}
	}

	// Aggregate full sequences: a path ends at (i, c) if all requests
	// after i are audio-capable.
	sc.sufOK = growBools(sc.sufOK, n+1)
	sc.sufMin = growFloats(sc.sufMin, n+1)
	sc.sufMax = growFloats(sc.sufMax, n+1)
	sc.sufCnt = growFloats(sc.sufCnt, n+1)
	sufOK, sufMin, sufMax, sufCnt := sc.sufOK, sc.sufMin, sc.sufMax, sc.sufCnt
	sufOK[n] = true
	sufMin[n], sufMax[n] = 0, 0
	sufCnt[n] = 1
	for i := n - 1; i >= 0; i-- {
		sufOK[i] = sufOK[i+1] && audioOK[i]
		sufMin[i] = sufMin[i+1] + audioMinW[i]
		sufMax[i] = sufMax[i+1] + audioMaxW[i]
		sufCnt[i] = sufCnt[i+1] * audioOpts[i]
	}
	for i := 0; i < n; i++ {
		if !sufOK[i+1] {
			continue
		}
		for ci := range g.layers[i].video {
			v := vals[i][ci]
			if !v.ok {
				continue
			}
			merge(&total, v.count*sufCnt[i+1], v.best+sufMax[i+1], v.worst+sufMin[i+1])
		}
	}
	// The all-audio sequence.
	if prefOK[n] {
		merge(&total, prefCnt[n], prefMax[n], prefMin[n])
	}
	return total, vals
}

func unitAudioWeights(g *noMuxGraph) (minW, maxW, opts []float64) {
	n := len(g.layers)
	backing := make([]float64, 3*n) // one allocation; zeroed weights
	minW = backing[0:n:n]
	maxW = backing[n : 2*n : 2*n]
	opts = backing[2*n : 3*n : 3*n]
	for i := range g.layers {
		opts[i] = float64(len(g.layers[i].audio))
		if len(g.layers[i].audio) == 0 {
			opts[i] = 1 // neutral for prefix products; gated by audioOK
		}
	}
	return minW, maxW, opts
}

// noMuxEval evaluates accuracy for the no-MUX graph.
type noMuxEval struct {
	g *noMuxGraph
}

func (e *noMuxEval) accuracyRange(truth []capture.TruthRecord) (float64, float64, error) {
	g := e.g
	n := len(g.layers)
	denom := float64(n)
	if len(truth) != n {
		// An impaired monitor can miss (or duplicate) requests, so the
		// detected count may disagree with ground truth. Align each
		// detected request to the nearest-in-time truth record and score
		// against the larger population: every miss and every spurious
		// detection counts against accuracy.
		if len(truth) == 0 {
			return 0, 0, fmt.Errorf("core: no ground-truth requests to evaluate against")
		}
		if nt := float64(len(truth)); nt > denom {
			denom = nt
		}
		truth = alignTruth(g.reqs, truth)
	}
	backing := make([]float64, 3*n)
	minW := backing[0:n:n]
	maxW := backing[n : 2*n : 2*n]
	opts := backing[2*n : 3*n : 3*n]
	for i := range g.layers {
		la := g.layers[i]
		opts[i] = float64(len(la.audio))
		if len(la.audio) == 0 {
			opts[i] = 1
		}
		anyMatch, anyMiss := false, false
		for _, at := range la.audio {
			if truth[i].Kind == media.Audio && truth[i].Ref.Track == at {
				anyMatch = true
			} else {
				anyMiss = true
			}
		}
		if anyMatch {
			maxW[i] = 1
		}
		if anyMatch && !anyMiss {
			minW[i] = 1
		}
	}
	videoW := func(i int, c media.ChunkRef) float64 {
		if truth[i].Kind == media.Video && truth[i].Ref == c {
			return 1
		}
		return 0
	}
	total, _ := g.runDP(minW, maxW, opts, videoW)
	if !total.ok {
		return 0, 0, fmt.Errorf("core: no consistent sequence found")
	}
	return total.best / denom, total.worst / denom, nil
}

// alignTruth maps each detected request to the ground-truth record nearest
// in request time, monotonically (used only when the counts disagree; under
// monitor loss a dropped request packet merges two chunks into one).
func alignTruth(reqs []Request, truth []capture.TruthRecord) []capture.TruthRecord {
	byTime := make([]capture.TruthRecord, len(truth))
	copy(byTime, truth)
	sort.SliceStable(byTime, func(a, b int) bool { return byTime[a].ReqTime < byTime[b].ReqTime })
	out := make([]capture.TruthRecord, len(reqs))
	j := 0
	for i, r := range reqs {
		for j+1 < len(byTime) && math.Abs(byTime[j+1].ReqTime-r.Time) <= math.Abs(byTime[j].ReqTime-r.Time) {
			j++
		}
		out[i] = byTime[j]
	}
	return out
}

func identifyNoMux(man *media.Manifest, est *Estimation, p Params) (*Inference, error) {
	span := p.Obs.Begin("core", "identify", obs.Int("requests", int64(len(est.Requests))))
	stop := p.stageStart("candidates")
	g := buildNoMuxGraph(man, est.Requests, p)
	stageStop(stop)
	minW, maxW, opts := unitAudioWeights(g)
	stop = p.stageStart("dp")
	total, vals := g.runDP(minW, maxW, opts, func(int, media.ChunkRef) float64 { return 0 })
	stageStop(stop)
	var warns []Warning
	if !total.ok && p.Degrade && !p.Guard.Stopped() {
		// Relaxed-K ladder: gap repair reconstructs bytes approximately, so
		// a repaired estimate can overshoot the protocol's measured error
		// bound. Widening k trades candidate precision for a result. A
		// stopped guard skips the ladder — each rung rebuilds the graph and
		// reruns the DP, exactly the work the budget forbids.
		for _, mult := range []float64{2, 4} {
			if p.Guard.Stopped() {
				break
			}
			pr := p
			pr.K = p.K * mult
			stop := p.stageStart("candidates")
			g2 := buildNoMuxGraph(man, est.Requests, pr)
			stageStop(stop)
			m2, x2, o2 := unitAudioWeights(g2)
			stop = p.stageStart("dp")
			t2, v2 := g2.runDP(m2, x2, o2, func(int, media.ChunkRef) float64 { return 0 })
			stageStop(stop)
			if t2.ok {
				warns = append(warns, Warning{Code: "k_relaxed",
					Detail: fmt.Sprintf("no sequence at k=%.3f; matched at k=%.3f", p.K, pr.K)})
				p.Obs.Metrics().Counter("core.k_relaxed").Inc()
				g, total, vals = g2, t2, v2
				break
			}
		}
	}
	if !total.ok {
		if p.Degrade || p.Guard.Stopped() {
			span.End(obs.Str("outcome", "degraded"))
			if p.Guard.Stopped() {
				warns = append(warns, guardWarning(p.Guard))
			}
			warns = append(warns, Warning{Code: "no_match",
				Detail: fmt.Sprintf("no chunk sequence matches the %d estimated sizes (k=%.3f, relaxation exhausted)", len(est.Requests), p.K)})
			inf := zeroInference(est, warns...)
			emitWarnings(p, warns)
			return inf, nil
		}
		span.End(obs.Str("outcome", "no_match"))
		return nil, fmt.Errorf("core: no chunk sequence matches the %d estimated sizes (k=%.3f)", len(est.Requests), p.K)
	}
	if p.Guard.Stopped() {
		// Defensive: a guard that stopped during the DP always yields
		// !total.ok today, but a complete-looking result computed under a
		// stopped guard must never pass silently.
		warns = append(warns, guardWarning(p.Guard))
	}
	inf := &Inference{
		Proto:         est.Proto,
		Requests:      est.Requests,
		SequenceCount: total.count,
		Warnings:      append(append([]Warning{}, est.Warnings...), warns...),
		eval:          &noMuxEval{g: g},
	}
	if len(inf.Warnings) == 0 {
		inf.Warnings = nil
	}
	inf.Best = g.extractSequence(vals)
	p.Obs.Metrics().Gauge("core.sequence_count").Set(total.count)
	emitWarnings(p, warns)
	span.End(obs.Float("sequences", total.count))
	return inf, nil
}

// extractSequence reconstructs one valid sequence (used when the caller
// wants a concrete answer, e.g. for QoE analysis). It walks backward from a
// valid terminal node choosing any reachable predecessor.
func (g *noMuxGraph) extractSequence(vals [][]dpVals) *Sequence {
	n := len(g.layers)
	audioOK := func(i int) bool { return len(g.layers[i].audio) > 0 }
	// Find a terminal node: a reachable candidate whose suffix is all
	// audio-capable.
	endLayer, endCand := -1, -1
	for i := n - 1; i >= 0 && endLayer < 0; i-- {
		for ci := range g.layers[i].video {
			if vals[i][ci].ok {
				endLayer, endCand = i, ci
				break
			}
		}
		if endLayer < 0 && !audioOK(i) {
			break // cannot extend the all-audio suffix past request i
		}
	}
	skipAssign := func(i int) Assignment {
		if len(g.layers[i].audio) > 0 {
			return Assignment{Audio: true, AudioTrack: g.layers[i].audio[0]}
		}
		return Assignment{Noise: true}
	}
	seq := &Sequence{Assignments: make([]Assignment, n)}
	if endLayer < 0 {
		// All-audio/noise sequence (or none; caller checked total.ok).
		for i := 0; i < n; i++ {
			seq.Assignments[i] = skipAssign(i)
		}
		return seq
	}
	for i := endLayer + 1; i < n; i++ {
		seq.Assignments[i] = skipAssign(i)
	}
	i, ci := endLayer, endCand
	for {
		c := g.layers[i].video[ci]
		seq.Assignments[i] = Assignment{Ref: c}
		// Find a predecessor via the shared byIndex maps: O(1) per layer
		// instead of rescanning every candidate. byIndex slices preserve
		// layer order, so the first reachable hit is the same candidate the
		// old linear scan picked.
		found := false
		for j := i - 1; j >= 0 && !found; j-- {
			if j < i-1 && !audioOK(j+1) {
				break
			}
			for _, pj := range g.byIndex[j][c.Index-1] {
				if vals[j][pj].ok {
					for k := j + 1; k < i; k++ {
						seq.Assignments[k] = skipAssign(k)
					}
					i, ci = j, pj
					found = true
					break
				}
			}
		}
		if !found {
			// Start of the path: everything before is audio or noise.
			for k := 0; k < i; k++ {
				seq.Assignments[k] = skipAssign(k)
			}
			return seq
		}
	}
}
