package core

import (
	"reflect"
	"testing"

	"csi/internal/media"
	"csi/internal/packet"
)

// runSearch builds the mux graph and its truth-weighted view for one
// "session" under an optional process cache, returning both candidate
// tables (the complete observable output of the candidate search).
func runSearch(t *testing.T, man *media.Manifest, groups []Group, tcx *truthCtx, hc *HalfCache, budget int64) (truthCands, truthCands, bool) {
	t.Helper()
	p := searchParams(0.05)
	p.HalfCache = hc
	if budget > 0 {
		p.GroupSearchBudget = budget
	}
	est := &Estimation{Proto: packet.UDP, Mux: true, Groups: groups}
	g, err := buildMuxGraph(man, est, p, nil)
	if err != nil {
		t.Fatalf("buildMuxGraph: %v", err)
	}
	return g.cands, g.withTruthWeights(man, p, tcx).cands, g.truncated
}

// TestHalfCacheCrossSessionDeterminism pins the cache's core contract: a
// second session over the same ladder must produce candidate tables
// byte-identical to both the cold-cache run and a cache-disabled run — and
// must actually hit the process cache while doing so.
func TestHalfCacheCrossSessionDeterminism(t *testing.T) {
	man, groups, tcx := searchScenario(23, 3, 9, 4)

	noCands, noWCands, noTrunc := runSearch(t, man, groups, tcx, nil, 0)

	hc := NewHalfCache(64 << 20)
	aCands, aWCands, aTrunc := runSearch(t, man, groups, tcx, hc, 0) // cold: fills
	if hc.Len() == 0 {
		t.Fatalf("cold session stored nothing in the process cache")
	}
	hitsAfterA := hc.Registry().Counter("core.halfcache.hits").Value()
	bCands, bWCands, bTrunc := runSearch(t, man, groups, tcx, hc, 0) // warm: hits
	hitsAfterB := hc.Registry().Counter("core.halfcache.hits").Value()
	if hitsAfterB <= hitsAfterA {
		t.Fatalf("warm session recorded no process-cache hits (%d -> %d)", hitsAfterA, hitsAfterB)
	}

	if noTrunc != aTrunc || noTrunc != bTrunc {
		t.Fatalf("truncation flags diverged: disabled=%v cold=%v warm=%v", noTrunc, aTrunc, bTrunc)
	}
	for _, tc := range []struct {
		name         string
		cands, wcand truthCands
	}{{"cold", aCands, aWCands}, {"warm", bCands, bWCands}} {
		if !reflect.DeepEqual(tc.cands, noCands) {
			t.Fatalf("%s-cache build candidates diverged from the cache-disabled run", tc.name)
		}
		if !reflect.DeepEqual(tc.wcand, noWCands) {
			t.Fatalf("%s-cache eval candidates diverged from the cache-disabled run", tc.name)
		}
	}
}

// TestHalfCacheBudgetTruncationDeterminism repeats the cross-session check
// under a budget small enough to truncate the scan: the truncation point
// depends on the charge sequence, and a cached half must charge its stored
// cost exactly like a fresh enumeration.
func TestHalfCacheBudgetTruncationDeterminism(t *testing.T) {
	man, groups, tcx := searchScenario(41, 4, 10, 4)
	const budget = 25

	noCands, _, noTrunc := runSearch(t, man, groups, tcx, nil, budget)
	if !noTrunc {
		t.Fatalf("budget %d did not truncate; scenario too small for this test", budget)
	}
	hc := NewHalfCache(64 << 20)
	for i := 0; i < 3; i++ { // cold, then warm twice
		cands, _, trunc := runSearch(t, man, groups, tcx, hc, budget)
		if trunc != noTrunc {
			t.Fatalf("run %d: truncation flag diverged under process cache", i)
		}
		if !reflect.DeepEqual(cands, noCands) {
			t.Fatalf("run %d: truncated candidates diverged under process cache", i)
		}
	}
}

// TestHalfCacheEviction pins the byte bound: under a tiny budget the cache
// must evict (counting evictions), never exceed its bound, and still leave
// every inference result identical to the cache-disabled run.
func TestHalfCacheEviction(t *testing.T) {
	man, groups, tcx := searchScenario(29, 3, 9, 4)
	noCands, noWCands, _ := runSearch(t, man, groups, tcx, nil, 0)

	const bound = 2 << 10 // a few entries' worth: forces eviction churn
	hc := NewHalfCache(bound)
	for i := 0; i < 3; i++ {
		cands, wcands, _ := runSearch(t, man, groups, tcx, hc, 0)
		if !reflect.DeepEqual(cands, noCands) || !reflect.DeepEqual(wcands, noWCands) {
			t.Fatalf("run %d: results diverged under an evicting cache", i)
		}
		if got := hc.Bytes(); got > bound {
			t.Fatalf("run %d: cache holds %d bytes, bound %d", i, got, bound)
		}
	}
	if hc.Registry().Counter("core.halfcache.evictions").Value() == 0 {
		t.Fatalf("tiny-budget cache recorded no evictions")
	}
	if hc.Registry().Counter("core.halfcache.misses").Value() == 0 {
		t.Fatalf("cache recorded no misses")
	}
}

// TestHalfCacheOversizeEntrySkipped: an entry larger than the entire budget
// must be skipped outright, not evict the whole cache and then miss.
func TestHalfCacheOversizeEntrySkipped(t *testing.T) {
	hc := NewHalfCache(1) // smaller than any entry's fixed overhead
	e := &halfEntry{combos: []halfCombo{{sum: 1, count: 1}}}
	hc.store(7, halfKey{gi: -1, from: 0, to: 1}, e)
	if hc.Len() != 0 || hc.Bytes() != 0 {
		t.Fatalf("oversize entry was stored: len=%d bytes=%d", hc.Len(), hc.Bytes())
	}
}

// TestNewHalfCacheDisabled pins the nil contract: a non-positive budget
// yields a nil cache whose read-side methods no-op.
func TestNewHalfCacheDisabled(t *testing.T) {
	hc := NewHalfCache(0)
	if hc != nil {
		t.Fatalf("NewHalfCache(0) = %v, want nil", hc)
	}
	if hc.Len() != 0 || hc.Bytes() != 0 || hc.Registry() != nil {
		t.Fatalf("nil cache accessors must no-op")
	}
}

// TestMeetHalvesAllocRegression guards the pooled weighted meet: once the
// scratch pool is warm, the match-bucketed path must run allocation-free.
func TestMeetHalvesAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on this path")
	}
	l := &halfEntry{combos: []halfCombo{{sum: 100, matches: 0, count: 1}, {sum: 200, matches: 1, count: 2}}, maxMatch: 1}
	r := &halfEntry{combos: []halfCombo{{sum: 50, matches: 0, count: 1}, {sum: 150, matches: 1, count: 3}}, maxMatch: 1}
	meetHalves(l, r, 0, 1000) // warm the pool
	if avg := testing.AllocsPerRun(100, func() { meetHalves(l, r, 0, 1000) }); avg != 0 {
		t.Fatalf("warm meetHalves allocates %.1f/op, want 0", avg)
	}
}

// TestProfileSigSensitivity: the signature must move when any ladder size
// moves, and must not depend on anything outside the ladder.
func TestProfileSigSensitivity(t *testing.T) {
	a := tinyManifest(5, 3, 8, true)
	b := tinyManifest(5, 3, 8, true)
	if profileSig(a) != profileSig(b) {
		t.Fatalf("identical ladders hash differently")
	}
	b.Name = "renamed"
	b.Host = "other.example.com"
	if profileSig(a) != profileSig(b) {
		t.Fatalf("signature depends on non-ladder identity")
	}
	b.Tracks[1].Sizes[3]++
	if profileSig(a) == profileSig(b) {
		t.Fatalf("signature ignored a chunk-size change")
	}
}
