package core_test

import (
	"math"
	"sync"
	"testing"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
	"csi/internal/session"
)

// sqFixture captures one short SQ session for the cross-session cache tests.
// A three-rung ladder keeps each half-enumeration small enough that the
// session's whole truth-free working set fits the test cache budget (the
// full default ladder materializes hundreds of MB of halves per session;
// eviction behavior has its own dedicated test).
func sqFixture(t *testing.T, seed int64) (*media.Manifest, *session.Result) {
	t.Helper()
	man := mediatest.Encode(t, media.EncodeConfig{
		Name: "hctest", Seed: 23, DurationSec: 180, ChunkDur: 5,
		Ladder: media.DefaultLadder[:3], TargetPASR: 1.5, AudioTracks: 1,
	})
	res, err := session.Run(session.Config{
		Design:    session.SQ,
		Manifest:  man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: seed, MeanBps: 5_000_000, Variability: 0.4}),
		Duration:  60,
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("session.Run: %v", err)
	}
	return man, res
}

type inferOutcome struct {
	groups    int
	count     float64
	truncated bool
	best      float64
	worst     float64
}

func inferWith(t *testing.T, man *media.Manifest, res *session.Result, hc *core.HalfCache) inferOutcome {
	t.Helper()
	p := core.Params{MediaHost: man.Host, Mux: true, HalfCache: hc}
	inf, err := core.Infer(man, res.Run.Trace, p)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatalf("AccuracyRange: %v", err)
	}
	return inferOutcome{
		groups: len(inf.Groups), count: inf.SequenceCount,
		truncated: inf.Truncated, best: best, worst: worst,
	}
}

// sameOutcome compares two inference outcomes. The sequence count is the
// one aggregate whose float accumulation order varies with goroutine
// scheduling in the parallel search kernel (run-to-run, cache or not), so
// it gets a last-few-ULPs relative tolerance; everything else is exact.
func sameOutcome(a, b inferOutcome) bool {
	if a.groups != b.groups || a.truncated != b.truncated || a.best != b.best || a.worst != b.worst {
		return false
	}
	return math.Abs(a.count-b.count) <= 1e-12*math.Max(math.Abs(a.count), math.Abs(b.count))
}

// TestInferHalfCacheColdWarmDisabled pins the end-to-end determinism
// contract on a real SQ session: the full inference outcome (groups,
// sequence count, truncation, accuracy range) must be identical with the
// process cache disabled, cold and warm.
func TestInferHalfCacheColdWarmDisabled(t *testing.T) {
	man, res := sqFixture(t, 11)
	disabled := inferWith(t, man, res, nil)
	hc := core.NewHalfCache(256 << 20)
	cold := inferWith(t, man, res, hc)
	if hc.Len() == 0 {
		t.Fatalf("cold inference stored nothing in the process cache")
	}
	warm := inferWith(t, man, res, hc)
	if !sameOutcome(cold, disabled) {
		t.Fatalf("cold-cache outcome %+v != disabled %+v", cold, disabled)
	}
	if !sameOutcome(warm, disabled) {
		t.Fatalf("warm-cache outcome %+v != disabled %+v", warm, disabled)
	}
	if hc.Registry().Counter("core.halfcache.hits").Value() == 0 {
		t.Fatalf("warm inference recorded no process-cache hits")
	}
}

// TestInferHalfCacheConcurrent races several concurrent Infers of distinct
// sessions (same ladder) through one shared process cache; run under
// `go test -race` this exercises the cache's concurrency contract, and
// every concurrent outcome must equal its serial baseline.
func TestInferHalfCacheConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent fixture setup is slow")
	}
	seeds := []int64{11, 12, 13}
	mans := make([]*media.Manifest, len(seeds))
	ress := make([]*session.Result, len(seeds))
	want := make([]inferOutcome, len(seeds))
	for i, s := range seeds {
		mans[i], ress[i] = sqFixture(t, s)
		want[i] = inferWith(t, mans[i], ress[i], nil)
	}
	hc := core.NewHalfCache(256 << 20)
	const rounds = 2 // cold round fills concurrently, second round hits
	for r := 0; r < rounds; r++ {
		got := make([]inferOutcome, len(seeds))
		var wg sync.WaitGroup
		for i := range seeds {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = inferWith(t, mans[i], ress[i], hc)
			}(i)
		}
		wg.Wait()
		for i := range seeds {
			if !sameOutcome(got[i], want[i]) {
				t.Fatalf("round %d session %d: concurrent outcome %+v != serial %+v", r, i, got[i], want[i])
			}
		}
	}
}
