package core

// EstimateMemo makes Step 1 resumable over a growing trace: it caches the
// per-connection request extraction (and, on the SQ path, the per-connection
// traffic grouping) keyed by the connection's packet count. A re-Estimate of
// a flow that grew since the last solve rescans only the connections that
// actually received packets; idle connections replay their cached requests,
// warnings and guard charge instead of being walked again. Combined with the
// incremental capture.Trace.ByConn memo this turns repeated inference over a
// live flow from O(trace) per solve into O(new packets) for Step 1.
//
// Exactness. A memo hit is byte-equivalent to a fresh scan by construction:
//
//   - The per-connection scan is a pure function of that connection's packet
//     prefix and of Params fields that never change across the solves of one
//     flow (RequestMinQUICPayload, MinChunkBytes, the SP1/SP2 thresholds —
//     all fixed by withDefaults from per-flow constants). The key is the
//     packet count, and connections only ever grow, so an unchanged count
//     means unchanged input.
//   - Gap statistics (scanTCPGaps/scanQUICGaps) are whole-connection
//     aggregates consumed *during* the walk, which is why a grown connection
//     is rescanned from scratch rather than resumed mid-stream: resuming
//     would walk the prefix under stale gap ratios and diverge from a batch
//     inference over the same bytes.
//   - Stored requests are the raw scan output; the response-header discount
//     and gap-confidence pass in Estimate mutate the merged copies, never
//     the memo's slices.
//   - The guard charge of a memoized connection equals the charge of
//     scanning it (its packet count), re-charged on every hit, so a budgeted
//     run truncates at the same deterministic point whether the memo is
//     cold, warm, or absent.
//
// One asymmetry remains: the SQ grouping scan emits obs split-point events
// and counters as it walks, and a memo hit elides that walk. Metrics parity
// therefore holds only between runs of equal memo state; the streaming
// daemon keeps per-flow solves untraced, and every golden path runs without
// a memo. Results are unaffected either way.
//
// A memo belongs to one flow (one Trace and one Params shape) and is not
// safe for concurrent use; a nil Memo in Params disables resumption
// entirely and changes nothing.
type EstimateMemo struct {
	conns map[int]connMemo
}

// connMemo is one connection's cached scan.
type connMemo struct {
	pkts  int       // packet count the scan saw (the memo key's value part)
	mux   bool      // entry caches the SQ grouping, not request extraction
	reqs  []Request // raw per-conn requests (no-MUX path), pre-discount
	warns []Warning // warnings the scan emitted, in emission order
	groups []Group  // raw traffic groups (SQ path), pre-discount
	groupErr string // non-empty: the grouping scan failed with this error
}

// NewEstimateMemo returns an empty memo.
func NewEstimateMemo() *EstimateMemo {
	return &EstimateMemo{conns: make(map[int]connMemo)}
}

// lookup returns the cached scan for conn at exactly pkts packets, or nil.
// The mux flag keys the two scan kinds apart so a flow analyzed under both
// modes (which no caller does today) could never cross-feed.
func (m *EstimateMemo) lookup(conn, pkts int, mux bool) *connMemo {
	if m == nil {
		return nil
	}
	e, ok := m.conns[conn]
	if !ok || e.pkts != pkts || e.mux != mux {
		return nil
	}
	return &e
}

// store records a completed scan for conn. The stored slices become
// memo-owned: callers hand over the raw scan output and Estimate appends
// value copies into its merged output instead of aliasing them.
func (m *EstimateMemo) store(conn int, e connMemo) {
	if m == nil {
		return
	}
	m.conns[conn] = e
}

// cloneGroups returns value copies of the cached groups so the discount and
// confidence pass in estimateMux cannot corrupt the memo. The inner ReqTimes
// slices are shared read-only: nothing downstream appends to or mutates
// them.
func cloneGroups(gs []Group) []Group {
	if gs == nil {
		return nil
	}
	out := make([]Group, len(gs))
	copy(out, gs)
	return out
}
