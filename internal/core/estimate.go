package core

import (
	"fmt"
	"sort"

	"csi/internal/capture"
	"csi/internal/ivl"
	"csi/internal/obs"
	"csi/internal/packet"
)

// Estimation is the output of Step 1.
type Estimation struct {
	Proto    packet.Proto
	Mux      bool
	Requests []Request // no-MUX: one per detected request, time-ordered
	Groups   []Group   // MUX: one per traffic group
}

// Estimate performs Step 1: SNI connection filtering, request detection and
// chunk (or group) size estimation from the encrypted packet trace.
func Estimate(tr *capture.Trace, p Params) (*Estimation, error) {
	ids := tr.ConnIDs(p.MediaHost)
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: no connections matching SNI %q", p.MediaHost)
	}
	byConn := tr.ByConn()
	proto := packet.TCP
	for _, id := range ids {
		for _, v := range byConn[id] {
			proto = v.Proto
			break
		}
		break
	}
	p = p.withDefaults(proto)

	span := p.Obs.Begin("core", "estimate",
		obs.Int("conns", int64(len(ids))),
		obs.Str("proto", proto.String()))
	defer span.End()

	if p.Mux {
		if proto != packet.UDP {
			return nil, fmt.Errorf("core: Mux analysis requires QUIC traffic, got %v", proto)
		}
		if len(ids) != 1 {
			return nil, fmt.Errorf("core: Mux analysis expects one media connection, got %d", len(ids))
		}
		groups, err := estimateMux(byConn[ids[0]], p)
		if err != nil {
			return nil, err
		}
		return &Estimation{Proto: proto, Mux: true, Groups: groups}, nil
	}

	var all []Request
	for _, id := range ids {
		var reqs []Request
		var err error
		switch proto {
		case packet.TCP:
			reqs, err = estimateHTTPSConn(byConn[id])
		case packet.UDP:
			reqs, err = estimateQUICConn(byConn[id], p)
		}
		if err != nil {
			return nil, fmt.Errorf("core: conn %d: %w", id, err)
		}
		all = append(all, reqs...)
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Time < all[b].Time })
	if len(all) == 0 {
		return nil, fmt.Errorf("core: no chunk requests detected")
	}
	p.Obs.Metrics().Counter("core.requests_detected").Add(int64(len(all)))
	if p.Obs.Enabled() {
		p.Obs.Event("core", "requests_detected", obs.Int("n", int64(len(all))))
	}
	// Discount the HTTP response headers hidden in each response so header
	// bytes cannot push small chunks past the Property-1 bound.
	for i := range all {
		all[i].Est -= p.MinResponseHeaderBytes
		if all[i].Est < 0 {
			all[i].Est = 0
		}
	}
	return &Estimation{Proto: proto, Requests: all}, nil
}

// estimateHTTPSConn walks one HTTPS connection. Requests are uplink packets
// carrying TLS application-data bytes; the response size is the sum of
// downlink TLS application-data bytes between consecutive requests, with
// TCP retransmissions removed by SEQ-range de-duplication (§3.2).
func estimateHTTPSConn(pkts []packet.View) ([]Request, error) {
	var reqs []Request
	var seen, seenUp ivl.Set
	cur := -1
	for _, v := range pkts {
		if v.TLSAppBytes == 0 {
			continue // handshake, pure ACKs
		}
		if v.Dir == packet.Up {
			// Retransmitted request packets reuse their SEQ: drop them so
			// they are not mistaken for new requests (§3.2).
			if seenUp.Add(v.TCPSeq, v.TCPSeq+v.TCPPayload) == 0 {
				continue
			}
			// A request may span multiple packets (large cookies); treat
			// packets within the same already-open request window before
			// any response bytes as one request. A fresh uplink app-data
			// packet after response bytes marks a new request.
			if cur >= 0 && reqs[cur].Est == 0 {
				continue // continuation of the current request
			}
			reqs = append(reqs, Request{Time: v.Time, Conn: v.ConnID})
			cur = len(reqs) - 1
			continue
		}
		if cur < 0 {
			continue // early server push / noise before any request
		}
		fresh := seen.Add(v.TCPSeq, v.TCPSeq+v.TCPPayload)
		if fresh == 0 {
			continue // pure retransmission
		}
		app := v.TLSAppBytes
		if fresh < v.TCPPayload {
			// Partial overlap with a retransmitted range: count the
			// proportional share of application bytes.
			app = app * fresh / v.TCPPayload
		}
		reqs[cur].Est += app
		reqs[cur].LastData = v.Time
	}
	return reqs, nil
}

// estimateQUICConn walks one QUIC connection without stream multiplexing
// (CQ): requests are uplink short-header packets larger than the ACK
// threshold; response sizes sum the downlink short-header payloads, which
// unavoidably include retransmitted data and control frames (§3.2).
func estimateQUICConn(pkts []packet.View, p Params) ([]Request, error) {
	var reqs []Request
	cur := -1
	for _, v := range pkts {
		if v.QUICLong {
			continue // handshake
		}
		if v.Dir == packet.Up {
			if v.QUICPayload > p.RequestMinQUICPayload {
				// Phantom filter: a "request" while the current response
				// is still smaller than any chunk could be is a
				// retransmitted request packet, not a new request.
				if cur >= 0 && p.MinChunkBytes > 0 && reqs[cur].Est < p.MinChunkBytes {
					continue
				}
				reqs = append(reqs, Request{Time: v.Time, Conn: v.ConnID})
				cur = len(reqs) - 1
			}
			continue
		}
		if cur < 0 {
			continue
		}
		reqs[cur].Est += v.QUICPayload
		reqs[cur].LastData = v.Time
	}
	return reqs, nil
}

// estimateMux implements Step 1.2 for SQ: detect split points, form traffic
// groups, and estimate each group's total size and request count (§5.3.2).
// ev is one monitor-visible media event: an uplink request or a downlink
// data packet.
type ev struct {
	t       float64
	up      bool
	payload int64
}

func estimateMux(pkts []packet.View, p Params) ([]Group, error) {
	var evs []ev
	for _, v := range pkts {
		if v.QUICLong {
			continue
		}
		if v.Dir == packet.Up {
			if v.QUICPayload > p.RequestMinQUICPayload {
				evs = append(evs, ev{t: v.Time, up: true})
			}
			continue
		}
		evs = append(evs, ev{t: v.Time, up: false, payload: v.QUICPayload})
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("core: no media traffic on QUIC connection")
	}

	// Split points. SP1: a downlink idle gap longer than the threshold.
	// SP2: two (or more) requests arriving back-to-back with no downlink
	// data in between — the player had nothing outstanding (§5.3.2).
	var cuts []int // evs index at which a new group starts
	lastDown := -1.0
	for i, e := range evs {
		if e.up {
			// SP2: a pair of simultaneous requests signals that nothing
			// was outstanding — but only when the downlink has actually
			// gone quiet. Retransmitted request packets also arrive as
			// near-simultaneous pairs, mid-burst; cutting there would
			// split a chunk's bytes across groups (§5.3.2's S1 caveat).
			quiet := lastDown < 0 || e.t-lastDown >= p.SP2QuietSec
			if !p.DisableSP2 && quiet && i+1 < len(evs) && evs[i+1].up && evs[i+1].t-e.t <= p.SP2WindowSec {
				cuts = append(cuts, i)
				p.Obs.Metrics().Counter("core.sp2_cuts").Inc()
				if p.Obs.Enabled() {
					p.Obs.Event("core", "sp2_cut",
						obs.Float("at", e.t),
						obs.Float("pair_gap", evs[i+1].t-e.t))
				}
			}
			continue
		}
		if lastDown >= 0 && e.t-lastDown >= p.IdleSplitSec {
			cuts = append(cuts, backUpToRequests(evs, i))
			p.Obs.Metrics().Counter("core.sp1_cuts").Inc()
			if p.Obs.Enabled() {
				p.Obs.Event("core", "sp1_cut",
					obs.Float("at", e.t),
					obs.Float("idle", e.t-lastDown))
			}
		}
		lastDown = e.t
	}
	groups := buildGroups(evs, cuts)

	// Recursively subdivide oversized groups at their widest internal
	// downlink gap: keeps the exhaustive per-group search tractable even
	// for long startup ramps.
	var out []Group
	for _, g := range groups {
		out = append(out, subdivide(g, evs, p)...)
	}
	var final []Group
	for _, g := range out {
		if len(g.ReqTimes) == 0 {
			continue // trailing pure-ACK noise
		}
		// Per-response HTTP header discount, as in the no-MUX path.
		g.Est -= int64(len(g.ReqTimes)) * p.MinResponseHeaderBytes
		if g.Est < 0 {
			g.Est = 0
		}
		final = append(final, g)
	}
	if len(final) == 0 {
		return nil, fmt.Errorf("core: no traffic groups with requests")
	}
	if p.Obs.Enabled() {
		p.Obs.Event("core", "groups_formed",
			obs.Int("groups", int64(len(final))),
			obs.Int("cuts", int64(len(cuts))))
		reqs := 0
		for _, g := range final {
			reqs += len(g.ReqTimes)
		}
		p.Obs.Metrics().Counter("core.requests_detected").Add(int64(reqs))
		p.Obs.Metrics().Counter("core.groups_formed").Add(int64(len(final)))
	}
	return final, nil
}

// backUpToRequests moves a cut earlier to include any requests that
// immediately precede the first downlink packet after an idle gap (the
// requests that *caused* the new burst belong to the new group).
func backUpToRequests(evs []ev, i int) int {
	j := i
	for j > 0 && evs[j-1].up {
		j--
	}
	return j
}

func buildGroups(evs []ev, cuts []int) []groupSpan {
	sort.Ints(cuts)
	var spans []groupSpan
	start := 0
	for _, c := range cuts {
		if c <= start {
			continue
		}
		spans = append(spans, groupSpan{from: start, to: c})
		start = c
	}
	if start < len(evs) {
		spans = append(spans, groupSpan{from: start, to: len(evs)})
	}
	return spans
}

type groupSpan struct{ from, to int }

func subdivide(gs groupSpan, evs []ev, p Params) []Group {
	nReq := 0
	for i := gs.from; i < gs.to; i++ {
		if evs[i].up {
			nReq++
		}
	}
	if nReq <= p.MaxGroupRequests || gs.to-gs.from < 4 {
		return []Group{materialize(gs, evs)}
	}
	// Find the widest downlink gap strictly inside the span. Only gaps
	// wide enough to plausibly separate chunk downloads are usable: a cut
	// inside a continuous burst would split a chunk's bytes across groups
	// (a structural error no size bound repairs), whereas keeping the
	// oversized group only costs bounded search effort.
	const minSubdivideGap = 0.25
	bestGap, bestAt := -1.0, -1
	lastDown := -1.0
	for i := gs.from; i < gs.to; i++ {
		if evs[i].up {
			continue
		}
		if lastDown >= 0 {
			if gap := evs[i].t - lastDown; gap > bestGap {
				bestGap, bestAt = gap, i
			}
		}
		lastDown = evs[i].t
	}
	// A narrow gap means the cut would land inside a burst and split a
	// chunk's bytes; tolerate a moderately oversized group instead. Only
	// truly unbounded groups (continuous low-bandwidth downloads with no
	// pauses at all) get cut at the best gap available as a last resort.
	if bestGap < minSubdivideGap && nReq <= 2*p.MaxGroupRequests {
		return []Group{materialize(gs, evs)}
	}
	if bestAt <= gs.from || bestAt >= gs.to {
		return []Group{materialize(gs, evs)}
	}
	cut := backUpToRequests(evs, bestAt)
	if cut <= gs.from || cut >= gs.to {
		return []Group{materialize(gs, evs)}
	}
	p.Obs.Metrics().Counter("core.subdivide_cuts").Inc()
	if p.Obs.Enabled() {
		p.Obs.Event("core", "subdivide_cut",
			obs.Float("at", evs[cut].t),
			obs.Float("gap", bestGap),
			obs.Int("requests", int64(nReq)))
	}
	left := subdivide(groupSpan{from: gs.from, to: cut}, evs, p)
	right := subdivide(groupSpan{from: cut, to: gs.to}, evs, p)
	return append(left, right...)
}

func materialize(gs groupSpan, evs []ev) Group {
	g := Group{Start: evs[gs.from].t, End: evs[gs.to-1].t}
	for i := gs.from; i < gs.to; i++ {
		e := evs[i]
		if e.up {
			g.ReqTimes = append(g.ReqTimes, e.t)
		} else {
			g.Est += e.payload
			g.LastData = e.t
		}
	}
	return g
}
