package core

import (
	"errors"
	"fmt"
	"sort"

	"csi/internal/capture"
	"csi/internal/ivl"
	"csi/internal/obs"
	"csi/internal/packet"
)

// Estimation is the output of Step 1.
type Estimation struct {
	Proto    packet.Proto
	Mux      bool
	Requests []Request // no-MUX: one per detected request, time-ordered
	Groups   []Group   // MUX: one per traffic group
	// Warnings collects the degradations Step 1 observed (carried into the
	// Inference by Identify). Empty on a clean capture.
	Warnings []Warning
}

// Estimate performs Step 1: SNI connection filtering, request detection and
// chunk (or group) size estimation from the encrypted packet trace.
func Estimate(tr *capture.Trace, p Params) (*Estimation, error) {
	var warns []Warning
	ids := tr.ConnIDs(p.MediaHost)
	if len(ids) == 0 && p.Degrade {
		// SNI and DNS both missing (e.g. the monitor attached after every
		// handshake): fall back to selecting connections by volume.
		if ids = tr.FallbackConnIDs(p.MediaHost); len(ids) > 0 {
			warns = append(warns, Warning{Code: "sni_missing",
				Detail: fmt.Sprintf("no SNI/DNS match for %q; selected %d connection(s) by downlink volume", p.MediaHost, len(ids))})
		}
	}
	if len(ids) == 0 {
		if p.Degrade {
			warns = append(warns, Warning{Code: "no_connections",
				Detail: fmt.Sprintf("no connections attributable to %q", p.MediaHost)})
			emitWarnings(p, warns)
			return &Estimation{Proto: packet.TCP, Mux: p.Mux, Warnings: warns}, nil
		}
		return nil, fmt.Errorf("core: no connections matching SNI %q", p.MediaHost)
	}
	byConn := tr.ByConn()
	p0 := p // pre-defaults copy: a fallback retry re-votes the protocol
	protoOf, proto := protoVote(byConn, ids)
	p = p0.withDefaults(proto)

	span := p.Obs.Begin("core", "estimate",
		obs.Int("conns", int64(len(ids))),
		obs.Str("proto", proto.String()))
	defer span.End()

	if p.Mux {
		return estimateMuxSession(tr, byConn, ids, protoOf, proto, p, warns)
	}

	all, err := estimateConns(byConn, ids, protoOf, p, &warns)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 && p.Degrade && !p.Guard.Stopped() {
		// The SNI-matched connections produced nothing usable — e.g. cross
		// traffic carries the media SNI while the real media connection lost
		// its handshake to the capture window. Retry with volume-selected
		// connections not already tried.
		if fids := excludeIDs(tr.FallbackConnIDs(p.MediaHost), ids); len(fids) > 0 {
			warns = append(warns, Warning{Code: "sni_mismatch",
				Detail: fmt.Sprintf("SNI-matched connections yielded no chunk requests; retrying %d connection(s) selected by downlink volume", len(fids))})
			fProtoOf, fProto := protoVote(byConn, fids)
			p = p0.withDefaults(fProto)
			proto = fProto
			if all, err = estimateConns(byConn, fids, fProtoOf, p, &warns); err != nil {
				return nil, err
			}
		}
	}
	if len(all) == 0 {
		if p.Guard.Stopped() {
			// The guard stopped before any request was extracted: return
			// the empty partial estimation rather than a hard error — the
			// bounded-run contract is "partial result + warning", with or
			// without Degrade.
			warns = append(warns, guardWarning(p.Guard))
			emitWarnings(p, warns)
			return &Estimation{Proto: proto, Warnings: warns}, nil
		}
		if p.Degrade {
			warns = append(warns, Warning{Code: "no_requests", Detail: "no chunk requests detected"})
			emitWarnings(p, warns)
			return &Estimation{Proto: proto, Warnings: warns}, nil
		}
		return nil, fmt.Errorf("core: no chunk requests detected")
	}
	p.Obs.Metrics().Counter("core.requests_detected").Add(int64(len(all)))
	if p.Obs.Enabled() {
		p.Obs.Event("core", "requests_detected", obs.Int("n", int64(len(all))))
	}
	// Discount the HTTP response headers hidden in each response so header
	// bytes cannot push small chunks past the Property-1 bound.
	for i := range all {
		all[i].Est -= p.MinResponseHeaderBytes
		if all[i].Est < 0 {
			all[i].Est = 0
		}
	}
	var gapReqs, gapBytes int64
	for i := range all {
		if all[i].GapBytes > 0 {
			gapReqs++
			gapBytes += all[i].GapBytes
			all[i].Confidence = gapConfidence(all[i].Est, all[i].GapBytes)
		}
	}
	if gapReqs > 0 {
		p.Obs.Metrics().Counter("core.gap_repaired_requests").Add(gapReqs)
		p.Obs.Metrics().Counter("core.gap_repaired_bytes").Add(gapBytes)
		if p.Obs.Enabled() {
			p.Obs.Event("core", "gap_repair",
				obs.Int("requests", gapReqs), obs.Int("bytes", gapBytes))
		}
	}
	if p.Guard.Stopped() {
		// Some connections were never scanned: the requests above are a
		// truncated prefix of the session.
		warns = append(warns, guardWarning(p.Guard))
	}
	emitWarnings(p, warns)
	return &Estimation{Proto: proto, Requests: all, Warnings: warns}, nil
}

// protoVote determines each connection's protocol and the session protocol
// (which picks the default error bound k): injected cross traffic can mix
// TCP flows into a QUIC session's SNI match, so the session protocol is the
// one carrying the most downlink bytes among the given connections.
func protoVote(byConn map[int][]packet.View, ids []int) (map[int]packet.Proto, packet.Proto) {
	protoOf := make(map[int]packet.Proto, len(ids))
	proto := packet.TCP
	var tcpBytes, udpBytes int64
	for i, id := range ids {
		pk := byConn[id]
		if len(pk) == 0 {
			continue
		}
		protoOf[id] = pk[0].Proto
		if i == 0 {
			proto = pk[0].Proto // single-conn/tie default
		}
		for _, v := range pk {
			if v.Dir != packet.Down {
				continue
			}
			b := v.Size
			if b == 0 {
				b = v.TCPPayload + v.QUICPayload // traces without wire sizes
			}
			if pk[0].Proto == packet.UDP {
				udpBytes += b
			} else {
				tcpBytes += b
			}
		}
	}
	if udpBytes > tcpBytes {
		proto = packet.UDP
	} else if tcpBytes > udpBytes {
		proto = packet.TCP
	}
	return protoOf, proto
}

// excludeIDs returns the ids in candidates that are not in tried.
func excludeIDs(candidates, tried []int) []int {
	seen := make(map[int]bool, len(tried))
	for _, id := range tried {
		seen[id] = true
	}
	var out []int
	for _, id := range candidates {
		if !seen[id] {
			out = append(out, id)
		}
	}
	return out
}

// estimateConns runs request detection and size estimation over one set of
// connections, filtering connections that look like cross traffic, and
// returns the merged time-ordered requests.
func estimateConns(byConn map[int][]packet.View, ids []int, protoOf map[int]packet.Proto, p Params, warns *[]Warning) ([]Request, error) {
	var all []Request
	for _, id := range ids {
		pkts := byConn[id]
		// Guard checkpoint: one charge per connection, proportional to the
		// packets scanned (or, on a memo hit, to the elided scan — the
		// charge sequence is identical either way). Stopping keeps the
		// connections already extracted as a partial result.
		if !p.Guard.Step(int64(len(pkts))) {
			break
		}
		if m := p.Memo.lookup(id, len(pkts), false); m != nil {
			*warns = append(*warns, m.warns...)
			all = append(all, m.reqs...)
			continue
		}
		var reqs []Request
		var connWarns []Warning
		var err error
		switch protoOf[id] {
		case packet.TCP:
			g := scanTCPGaps(pkts)
			if g.upMissing > 0 {
				connWarns = append(connWarns, Warning{Code: "request_gap",
					Detail: fmt.Sprintf("conn %d: %d uplink bytes lost by the monitor; requests may have merged", id, g.upMissing)})
			}
			reqs, err = estimateHTTPSConn(pkts, g)
		case packet.UDP:
			reqs, err = estimateQUICConn(pkts, p, scanQUICGaps(pkts))
		}
		if err != nil {
			return nil, fmt.Errorf("core: conn %d: %w", id, err)
		}
		// Cross-traffic filter: a connection with several requests none of
		// which could be a chunk (every estimate below the smallest
		// plausible chunk) is another app talking to the same host — API
		// polling, beacons — not media. Keeping it would inject noise
		// requests into every candidate sequence.
		if p.MinChunkBytes > 0 && len(reqs) >= 2 && allBelow(reqs, p.MinChunkBytes) {
			connWarns = append(connWarns, Warning{Code: "cross_traffic",
				Detail: fmt.Sprintf("conn %d: dropped %d sub-chunk requests as cross traffic", id, len(reqs))})
			reqs = nil
		}
		p.Memo.store(id, connMemo{pkts: len(pkts), reqs: reqs, warns: connWarns})
		*warns = append(*warns, connWarns...)
		all = append(all, reqs...)
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Time < all[b].Time })
	return all, nil
}

// estimateMuxSession handles the SQ path of Estimate: pick the one QUIC
// media connection (tolerantly under Degrade) and group its traffic.
func estimateMuxSession(tr *capture.Trace, byConn map[int][]packet.View, ids []int, protoOf map[int]packet.Proto, proto packet.Proto, p Params, warns []Warning) (*Estimation, error) {
	mid := -1
	if !p.Degrade {
		if proto != packet.UDP {
			return nil, fmt.Errorf("core: Mux analysis requires QUIC traffic, got %v", proto)
		}
		if len(ids) != 1 {
			return nil, fmt.Errorf("core: Mux analysis expects one media connection, got %d", len(ids))
		}
		mid = ids[0]
	} else {
		// Cross traffic can add flows with the media SNI; the media
		// connection is the QUIC one carrying the most downlink bytes.
		busiestUDP := func(ids []int, of map[int]packet.Proto) (int, int) {
			var best int64 = -1
			id, n := -1, 0
			for _, c := range ids {
				if of[c] != packet.UDP {
					continue
				}
				n++
				var b int64
				for _, v := range byConn[c] {
					if v.Dir == packet.Down {
						b += v.Size
					}
				}
				if b > best {
					best, id = b, c
				}
			}
			return id, n
		}
		var nUDP int
		mid, nUDP = busiestUDP(ids, protoOf)
		if nUDP > 1 {
			warns = append(warns, Warning{Code: "mux_multi_conn",
				Detail: fmt.Sprintf("%d QUIC connections matched; analyzing the busiest (conn %d)", nUDP, mid)})
		}
		if mid < 0 {
			// The SNI match holds no QUIC connection at all — e.g. TCP cross
			// traffic carries the media SNI while the QUIC media connection
			// lost its handshake to the capture window. Fall back to volume
			// selection over the rest of the trace.
			if fids := excludeIDs(tr.FallbackConnIDs(p.MediaHost), ids); len(fids) > 0 {
				fProtoOf, _ := protoVote(byConn, fids)
				if fid, _ := busiestUDP(fids, fProtoOf); fid >= 0 {
					mid = fid
					warns = append(warns, Warning{Code: "sni_mismatch",
						Detail: fmt.Sprintf("SNI-matched connections hold no QUIC traffic; analyzing conn %d selected by downlink volume", mid)})
				}
			}
		}
		if mid < 0 {
			warns = append(warns, Warning{Code: "mux_no_conn",
				Detail: "no QUIC media connection found"})
			emitWarnings(p, warns)
			return &Estimation{Proto: proto, Mux: true, Warnings: warns}, nil
		}
	}
	// Guard checkpoint: charge the packets of the one media connection
	// before the grouping scan (memo hits re-charge the elided scan).
	if !p.Guard.Step(int64(len(byConn[mid]))) {
		warns = append(warns, guardWarning(p.Guard))
		emitWarnings(p, warns)
		return &Estimation{Proto: proto, Mux: true, Warnings: warns}, nil
	}
	var groups []Group
	var err error
	if m := p.Memo.lookup(mid, len(byConn[mid]), true); m != nil {
		groups = cloneGroups(m.groups)
		if m.groupErr != "" {
			err = errors.New(m.groupErr)
		}
	} else {
		groups, err = estimateMux(byConn[mid], p, scanQUICGaps(byConn[mid]))
		e := connMemo{pkts: len(byConn[mid]), mux: true, groups: cloneGroups(groups)}
		if err != nil {
			e.groupErr = err.Error()
		}
		p.Memo.store(mid, e)
	}
	if err != nil {
		if p.Degrade {
			warns = append(warns, Warning{Code: "no_traffic_groups", Detail: err.Error()})
			emitWarnings(p, warns)
			return &Estimation{Proto: proto, Mux: true, Warnings: warns}, nil
		}
		return nil, err
	}
	emitWarnings(p, warns)
	return &Estimation{Proto: proto, Mux: true, Groups: groups, Warnings: warns}, nil
}

func allBelow(reqs []Request, limit int64) bool {
	for _, r := range reqs {
		if r.Est >= limit {
			return false
		}
	}
	return true
}

// gapConfidence scores a repaired estimate: the fraction of its bytes that
// were actually observed, clamped away from 0 and 1 so repaired chunks are
// always distinguishable from clean ones.
func gapConfidence(est, gap int64) float64 {
	if est <= 0 || gap >= est {
		return 0.05
	}
	c := float64(est-gap) / float64(est)
	if c > 0.95 {
		c = 0.95
	}
	if c < 0.05 {
		c = 0.05
	}
	return c
}

// emitWarnings instruments degradation warnings. Counters are created only
// when warnings exist so a clean run's metrics dump stays byte-identical.
func emitWarnings(p Params, warns []Warning) {
	if len(warns) == 0 {
		return
	}
	p.Obs.Metrics().Counter("core.warnings").Add(int64(len(warns)))
	if p.Obs.Enabled() {
		for _, w := range warns {
			p.Obs.Event("core", "warning", obs.Str("code", w.Code), obs.Str("detail", w.Detail))
		}
	}
}

// estimateHTTPSConn walks one HTTPS connection. Requests are uplink packets
// carrying TLS application-data bytes; the response size is the sum of
// downlink TLS application-data bytes between consecutive requests, with
// TCP retransmissions removed by SEQ-range de-duplication (§3.2). Monitor
// holes found by the pre-scan are repaired at the first packet after each
// hole, attributed to the request being answered at that moment.
func estimateHTTPSConn(pkts []packet.View, gaps tcpGaps) ([]Request, error) {
	var reqs []Request
	var seen, seenUp ivl.Set
	cur := -1
	for _, v := range pkts {
		if v.TLSAppBytes == 0 {
			continue // handshake, pure ACKs
		}
		if v.Dir == packet.Up {
			// Retransmitted request packets reuse their SEQ: drop them so
			// they are not mistaken for new requests (§3.2).
			if seenUp.Add(v.TCPSeq, v.TCPSeq+v.TCPPayload) == 0 {
				continue
			}
			// A request may span multiple packets (large cookies); treat
			// packets within the same already-open request window before
			// any response bytes as one request. A fresh uplink app-data
			// packet after response bytes marks a new request.
			if cur >= 0 && reqs[cur].Est == 0 {
				continue // continuation of the current request
			}
			reqs = append(reqs, Request{Time: v.Time, Conn: v.ConnID})
			cur = len(reqs) - 1
			continue
		}
		if cur < 0 {
			continue // early server push / noise before any request
		}
		fresh := seen.Add(v.TCPSeq, v.TCPSeq+v.TCPPayload)
		if fresh == 0 {
			continue // pure retransmission
		}
		if miss := gaps.downAt[v.TCPSeq]; miss > 0 {
			// This packet starts right after a monitor hole: reconstruct
			// the missing response bytes for the current chunk.
			rep := int64(float64(miss)*gaps.appRatio + 0.5)
			reqs[cur].Est += rep
			reqs[cur].GapBytes += rep
		}
		app := v.TLSAppBytes
		if fresh < v.TCPPayload {
			// Partial overlap with a retransmitted range: count the
			// proportional share of application bytes.
			app = app * fresh / v.TCPPayload
		}
		reqs[cur].Est += app
		reqs[cur].LastData = v.Time
	}
	return reqs, nil
}

// estimateQUICConn walks one QUIC connection without stream multiplexing
// (CQ): requests are uplink short-header packets larger than the ACK
// threshold; response sizes sum the downlink short-header payloads, which
// unavoidably include retransmitted data and control frames (§3.2).
func estimateQUICConn(pkts []packet.View, p Params, gaps quicGaps) ([]Request, error) {
	var reqs []Request
	var seenDown, seenUp ivl.Set
	cur := -1
	for _, v := range pkts {
		if v.Dir == packet.Up {
			if v.QUICLong {
				continue // handshake
			}
			if v.QUICPayload > p.RequestMinQUICPayload {
				// Monitor-duplicated request packets reuse their packet
				// number: drop them like TCP SEQ-duplicates.
				if seenUp.Add(v.QUICPN, v.QUICPN+1) == 0 {
					continue
				}
				// Phantom filter: a "request" while the current response
				// is still smaller than any chunk could be is a
				// retransmitted request packet, not a new request.
				if cur >= 0 && p.MinChunkBytes > 0 && reqs[cur].Est < p.MinChunkBytes {
					continue
				}
				reqs = append(reqs, Request{Time: v.Time, Conn: v.ConnID})
				cur = len(reqs) - 1
			}
			continue
		}
		if seenDown.Add(v.QUICPN, v.QUICPN+1) == 0 {
			continue // monitor duplicate
		}
		if cur >= 0 {
			if miss := gaps.before[v.QUICPN]; miss > 0 {
				// Packet numbers missing right before this one: the
				// monitor dropped them. Reconstruct with the connection's
				// mean payload.
				rep := int64(float64(miss)*gaps.meanData + 0.5)
				reqs[cur].Est += rep
				reqs[cur].GapBytes += rep
			}
		}
		if v.QUICLong {
			continue // handshake
		}
		if cur < 0 {
			continue
		}
		reqs[cur].Est += v.QUICPayload
		reqs[cur].LastData = v.Time
	}
	return reqs, nil
}

// estimateMux implements Step 1.2 for SQ: detect split points, form traffic
// groups, and estimate each group's total size and request count (§5.3.2).
// ev is one monitor-visible media event: an uplink request or a downlink
// data packet.
type ev struct {
	t       float64
	up      bool
	payload int64
	gap     int64 // payload bytes reconstructed across a monitor gap
}

func estimateMux(pkts []packet.View, p Params, gaps quicGaps) ([]Group, error) {
	// At most one event per packet: size the slice once instead of letting
	// append double through ~10 minutes of trace.
	evs := make([]ev, 0, len(pkts))
	var seenDown, seenUp ivl.Set
	for _, v := range pkts {
		if v.Dir == packet.Up {
			if v.QUICLong {
				continue
			}
			if v.QUICPayload > p.RequestMinQUICPayload {
				if seenUp.Add(v.QUICPN, v.QUICPN+1) == 0 {
					continue // monitor-duplicated request packet
				}
				evs = append(evs, ev{t: v.Time, up: true})
			}
			continue
		}
		if seenDown.Add(v.QUICPN, v.QUICPN+1) == 0 {
			continue // monitor duplicate
		}
		var rep int64
		if miss := gaps.before[v.QUICPN]; miss > 0 {
			rep = int64(float64(miss)*gaps.meanData + 0.5)
		}
		if v.QUICLong {
			if rep > 0 {
				evs = append(evs, ev{t: v.Time, payload: rep, gap: rep})
			}
			continue
		}
		evs = append(evs, ev{t: v.Time, up: false, payload: v.QUICPayload + rep, gap: rep})
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("core: no media traffic on QUIC connection")
	}

	// Split points. SP1: a downlink idle gap longer than the threshold.
	// SP2: two (or more) requests arriving back-to-back with no downlink
	// data in between — the player had nothing outstanding (§5.3.2).
	var cuts []int // evs index at which a new group starts
	lastDown := -1.0
	for i, e := range evs {
		if e.up {
			// SP2: a pair of simultaneous requests signals that nothing
			// was outstanding — but only when the downlink has actually
			// gone quiet. Retransmitted request packets also arrive as
			// near-simultaneous pairs, mid-burst; cutting there would
			// split a chunk's bytes across groups (§5.3.2's S1 caveat).
			quiet := lastDown < 0 || e.t-lastDown >= p.SP2QuietSec
			if !p.DisableSP2 && quiet && i+1 < len(evs) && evs[i+1].up && evs[i+1].t-e.t <= p.SP2WindowSec {
				cuts = append(cuts, i)
				p.Obs.Metrics().Counter("core.sp2_cuts").Inc()
				if p.Obs.Enabled() {
					p.Obs.Event("core", "sp2_cut",
						obs.Float("at", e.t),
						obs.Float("pair_gap", evs[i+1].t-e.t))
				}
			}
			continue
		}
		if lastDown >= 0 && e.t-lastDown >= p.IdleSplitSec {
			cuts = append(cuts, backUpToRequests(evs, i))
			p.Obs.Metrics().Counter("core.sp1_cuts").Inc()
			if p.Obs.Enabled() {
				p.Obs.Event("core", "sp1_cut",
					obs.Float("at", e.t),
					obs.Float("idle", e.t-lastDown))
			}
		}
		lastDown = e.t
	}
	groups := buildGroups(evs, cuts)

	// Recursively subdivide oversized groups at their widest internal
	// downlink gap: keeps the exhaustive per-group search tractable even
	// for long startup ramps.
	var out []Group
	for _, g := range groups {
		out = append(out, subdivide(g, evs, p)...)
	}
	var final []Group
	var gapGroups, gapBytes int64
	for _, g := range out {
		if len(g.ReqTimes) == 0 {
			continue // trailing pure-ACK noise
		}
		// Per-response HTTP header discount, as in the no-MUX path.
		g.Est -= int64(len(g.ReqTimes)) * p.MinResponseHeaderBytes
		if g.Est < 0 {
			g.Est = 0
		}
		if g.GapBytes > 0 {
			g.Confidence = gapConfidence(g.Est, g.GapBytes)
			gapGroups++
			gapBytes += g.GapBytes
		}
		final = append(final, g)
	}
	if gapGroups > 0 {
		p.Obs.Metrics().Counter("core.gap_repaired_groups").Add(gapGroups)
		p.Obs.Metrics().Counter("core.gap_repaired_bytes").Add(gapBytes)
		if p.Obs.Enabled() {
			p.Obs.Event("core", "gap_repair",
				obs.Int("groups", gapGroups), obs.Int("bytes", gapBytes))
		}
	}
	if len(final) == 0 {
		return nil, fmt.Errorf("core: no traffic groups with requests")
	}
	if p.Obs.Enabled() {
		p.Obs.Event("core", "groups_formed",
			obs.Int("groups", int64(len(final))),
			obs.Int("cuts", int64(len(cuts))))
		reqs := 0
		for _, g := range final {
			reqs += len(g.ReqTimes)
		}
		p.Obs.Metrics().Counter("core.requests_detected").Add(int64(reqs))
		p.Obs.Metrics().Counter("core.groups_formed").Add(int64(len(final)))
	}
	return final, nil
}

// backUpToRequests moves a cut earlier to include any requests that
// immediately precede the first downlink packet after an idle gap (the
// requests that *caused* the new burst belong to the new group).
func backUpToRequests(evs []ev, i int) int {
	j := i
	for j > 0 && evs[j-1].up {
		j--
	}
	return j
}

func buildGroups(evs []ev, cuts []int) []groupSpan {
	sort.Ints(cuts)
	var spans []groupSpan
	start := 0
	for _, c := range cuts {
		if c <= start {
			continue
		}
		spans = append(spans, groupSpan{from: start, to: c})
		start = c
	}
	if start < len(evs) {
		spans = append(spans, groupSpan{from: start, to: len(evs)})
	}
	return spans
}

type groupSpan struct{ from, to int }

func subdivide(gs groupSpan, evs []ev, p Params) []Group {
	nReq := 0
	for i := gs.from; i < gs.to; i++ {
		if evs[i].up {
			nReq++
		}
	}
	if nReq <= p.MaxGroupRequests || gs.to-gs.from < 4 {
		return []Group{materialize(gs, evs)}
	}
	// Find the widest downlink gap strictly inside the span. Only gaps
	// wide enough to plausibly separate chunk downloads are usable: a cut
	// inside a continuous burst would split a chunk's bytes across groups
	// (a structural error no size bound repairs), whereas keeping the
	// oversized group only costs bounded search effort.
	const minSubdivideGap = 0.25
	bestGap, bestAt := -1.0, -1
	lastDown := -1.0
	for i := gs.from; i < gs.to; i++ {
		if evs[i].up {
			continue
		}
		if lastDown >= 0 {
			if gap := evs[i].t - lastDown; gap > bestGap {
				bestGap, bestAt = gap, i
			}
		}
		lastDown = evs[i].t
	}
	// A narrow gap means the cut would land inside a burst and split a
	// chunk's bytes; tolerate a moderately oversized group instead. Only
	// truly unbounded groups (continuous low-bandwidth downloads with no
	// pauses at all) get cut at the best gap available as a last resort.
	if bestGap < minSubdivideGap && nReq <= 2*p.MaxGroupRequests {
		return []Group{materialize(gs, evs)}
	}
	if bestAt <= gs.from || bestAt >= gs.to {
		return []Group{materialize(gs, evs)}
	}
	cut := backUpToRequests(evs, bestAt)
	if cut <= gs.from || cut >= gs.to {
		return []Group{materialize(gs, evs)}
	}
	p.Obs.Metrics().Counter("core.subdivide_cuts").Inc()
	if p.Obs.Enabled() {
		p.Obs.Event("core", "subdivide_cut",
			obs.Float("at", evs[cut].t),
			obs.Float("gap", bestGap),
			obs.Int("requests", int64(nReq)))
	}
	left := subdivide(groupSpan{from: gs.from, to: cut}, evs, p)
	right := subdivide(groupSpan{from: cut, to: gs.to}, evs, p)
	return append(left, right...)
}

func materialize(gs groupSpan, evs []ev) Group {
	g := Group{Start: evs[gs.from].t, End: evs[gs.to-1].t}
	for i := gs.from; i < gs.to; i++ {
		e := evs[i]
		if e.up {
			g.ReqTimes = append(g.ReqTimes, e.t)
		} else {
			g.Est += e.payload
			g.GapBytes += e.gap
			g.LastData = e.t
		}
	}
	return g
}
