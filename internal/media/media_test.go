package media

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testEncode(t *testing.T, pasr float64, audio int) *Manifest {
	t.Helper()
	m, err := Encode(EncodeConfig{
		Name:        "test",
		Seed:        7,
		DurationSec: 600,
		ChunkDur:    5,
		TargetPASR:  pasr,
		AudioTracks: audio,
	})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return m
}

func TestEncodeBasics(t *testing.T) {
	m := testEncode(t, 1.5, 1)
	if got := m.NumVideoChunks(); got != 120 {
		t.Fatalf("NumVideoChunks = %d, want 120", got)
	}
	if len(m.VideoTracks()) != len(DefaultLadder) {
		t.Fatalf("video tracks = %d, want %d", len(m.VideoTracks()), len(DefaultLadder))
	}
	if len(m.AudioTracks()) != 1 {
		t.Fatalf("audio tracks = %d, want 1", len(m.AudioTracks()))
	}
	if !m.HasSeparateAudio() {
		t.Fatal("HasSeparateAudio = false")
	}
	if m.Duration() != 600 {
		t.Fatalf("Duration = %g, want 600", m.Duration())
	}
}

func TestEncodeHitsTargetPASR(t *testing.T) {
	for _, target := range []float64{1.1, 1.3, 1.5, 2.0, 2.6} {
		m := testEncode(t, target, 0)
		for _, ti := range m.VideoTracks() {
			got := m.Tracks[ti].PASR()
			// TrackJitter adds a little variance on top of the shared
			// signal, so allow a proportional tolerance.
			if math.Abs(got-target) > 0.1*target {
				t.Errorf("target PASR %.2f: track %d PASR = %.3f", target, ti, got)
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := testEncode(t, 1.4, 1)
	b := testEncode(t, 1.4, 1)
	for ti := range a.Tracks {
		for ci := range a.Tracks[ti].Sizes {
			if a.Tracks[ti].Sizes[ci] != b.Tracks[ti].Sizes[ci] {
				t.Fatalf("encode not deterministic at track %d chunk %d", ti, ci)
			}
		}
	}
}

func TestEncodeTrackMeansMatchBitrates(t *testing.T) {
	m := testEncode(t, 1.5, 0)
	for i, ti := range m.VideoTracks() {
		tr := &m.Tracks[ti]
		wantMean := float64(DefaultLadder[i].Bitrate) / 8 * 5
		got := tr.MeanSize()
		if math.Abs(got-wantMean)/wantMean > 0.05 {
			t.Errorf("track %d mean size %.0f, want ~%.0f", ti, got, wantMean)
		}
	}
}

func TestAudioIsCBR(t *testing.T) {
	m := testEncode(t, 1.5, 2)
	for _, ai := range m.AudioTracks() {
		tr := &m.Tracks[ai]
		for _, s := range tr.Sizes {
			if s != tr.Sizes[0] {
				t.Fatalf("audio track %d not CBR: %d vs %d", ai, s, tr.Sizes[0])
			}
		}
		if got := tr.PASR(); math.Abs(got-1) > 1e-9 {
			t.Errorf("audio PASR = %g, want 1", got)
		}
	}
}

func TestValidateCatchesBadManifests(t *testing.T) {
	good := testEncode(t, 1.5, 1)
	cases := map[string]func(m *Manifest){
		"zero chunk dur":      func(m *Manifest) { m.ChunkDur = 0 },
		"no tracks":           func(m *Manifest) { m.Tracks = nil },
		"zero size chunk":     func(m *Manifest) { m.Tracks[0].Sizes[3] = 0 },
		"uneven video tracks": func(m *Manifest) { m.Tracks[1].Sizes = m.Tracks[1].Sizes[:5] },
		"audio only": func(m *Manifest) {
			m.Tracks = m.Tracks[len(m.Tracks)-1:]
		},
	}
	for name, corrupt := range cases {
		cp := *good
		cp.Tracks = make([]Track, len(good.Tracks))
		copy(cp.Tracks, good.Tracks)
		for i := range cp.Tracks {
			cp.Tracks[i].Sizes = append([]int64(nil), good.Tracks[i].Sizes...)
		}
		corrupt(&cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", name)
		}
	}
}

func TestSizeIndexRange(t *testing.T) {
	m := testEncode(t, 1.5, 1)
	idx := NewSizeIndex(m, Video)
	if idx.Len() != 6*120 {
		t.Fatalf("index len = %d, want 720", idx.Len())
	}
	// Every chunk must be findable via its own size.
	for _, ti := range m.VideoTracks() {
		for ci, s := range m.Tracks[ti].Sizes {
			refs := idx.Range(s, s, nil)
			found := false
			for _, r := range refs {
				if r.Track == ti && r.Index == ci {
					found = true
				}
			}
			if !found {
				t.Fatalf("chunk (%d,%d) size %d not found by exact range", ti, ci, s)
			}
		}
	}
}

// Property: Range(lo,hi) returns exactly the chunks whose size is in
// [lo,hi].
func TestSizeIndexRangeProperty(t *testing.T) {
	m := testEncode(t, 1.8, 0)
	idx := NewSizeIndex(m, Video)
	f := func(a, b uint32) bool {
		lo, hi := int64(a%3_000_000), int64(b%3_000_000)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := idx.Range(lo, hi, nil)
		want := 0
		for _, ti := range m.VideoTracks() {
			for _, s := range m.Tracks[ti].Sizes {
				if s >= lo && s <= hi {
					want++
				}
			}
		}
		if len(got) != want {
			return false
		}
		for _, r := range got {
			s := m.Size(r)
			if s < lo || s > hi {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCandidateRange(t *testing.T) {
	lo, hi := CandidateRange(1000, 0.05)
	if hi != 1000 {
		t.Fatalf("hi = %d, want 1000", hi)
	}
	est := 1000.0
	wantLo := int64(math.Ceil(est / 1.05))
	if lo != wantLo {
		t.Fatalf("lo = %d, want %d", lo, wantLo)
	}
	// Property (1): any S in [lo,hi] satisfies S <= est <= (1+k)S.
	for s := lo; s <= hi; s += 7 {
		if !(s <= 1000 && float64(1000) <= 1.05*float64(s)+1e-6) {
			t.Fatalf("size %d violates Property 1 bounds", s)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := testEncode(t, 1.5, 1)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.ChunkDur != m.ChunkDur || len(got.Tracks) != len(m.Tracks) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for ti := range m.Tracks {
		for ci := range m.Tracks[ti].Sizes {
			if got.Tracks[ti].Sizes[ci] != m.Tracks[ti].Sizes[ci] {
				t.Fatalf("size mismatch after round trip at (%d,%d)", ti, ci)
			}
		}
	}
}

func TestServiceProfilesCalibration(t *testing.T) {
	for _, svc := range Services {
		vids, err := svc.SampleVideos(1, 40, 900)
		if err != nil {
			t.Fatalf("%s: %v", svc.Name, err)
		}
		var pasrs []float64
		for _, v := range vids {
			pasrs = append(pasrs, v.MedianPASR())
		}
		med := medianOf(pasrs)
		if math.Abs(med-svc.PASRMedian) > 0.35*svc.PASRMedian {
			t.Errorf("%s: sampled PASR median %.2f, want ~%.2f", svc.Name, med, svc.PASRMedian)
		}
		if svc.SeparateAudio && !vids[0].HasSeparateAudio() {
			t.Errorf("%s: expected separate audio", svc.Name)
		}
	}
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

func TestServiceByName(t *testing.T) {
	if _, err := ServiceByName("Hulu"); err != nil {
		t.Fatal(err)
	}
	if _, err := ServiceByName("nope"); err == nil {
		t.Fatal("unknown service did not error")
	}
}

func TestEncodeRejectsBadConfig(t *testing.T) {
	if _, err := Encode(EncodeConfig{TargetPASR: 0.5}); err == nil {
		t.Fatal("TargetPASR < 1 accepted")
	}
	if _, err := Encode(EncodeConfig{DurationSec: 1, ChunkDur: 5, TargetPASR: 1.5}); err == nil {
		t.Fatal("too-short asset accepted")
	}
}
