package media

// TrackPrefix precomputes prefix sums over the chunk sizes of a set of
// tracks, plus the pointwise min/max envelope across those tracks. The mux
// candidate search (§5.3.2 Step 2.2) uses it to bound the achievable size
// sum of a chunk window in O(1) instead of rescanning O(window·tracks)
// sizes per window start: the minimum achievable sum of a window is the sum
// of the per-position minima (any mixed track assignment is bounded below
// by it), which is a prefix difference over the min envelope; likewise for
// the maximum.
type TrackPrefix struct {
	tracks []int
	// per[i] is the prefix-sum array of tracks[i]: per[i][j] = sum of the
	// first j chunk sizes. All arrays have length n+1.
	per [][]int64
	// slot maps a track id to its row in per (-1 when absent).
	slot []int
	// envMin/envMax are prefix sums of the pointwise min/max over tracks.
	envMin, envMax []int64
}

// NewTrackPrefix builds prefix sums for the given tracks of the manifest.
// All tracks must share a chunk count (the Validate invariant for tracks of
// one media type).
func NewTrackPrefix(m *Manifest, tracks []int) *TrackPrefix {
	tp := &TrackPrefix{tracks: tracks, slot: make([]int, len(m.Tracks))}
	for i := range tp.slot {
		tp.slot[i] = -1
	}
	if len(tracks) == 0 {
		return tp
	}
	n := m.Tracks[tracks[0]].NumChunks()
	tp.per = make([][]int64, len(tracks))
	tp.envMin = make([]int64, n+1)
	tp.envMax = make([]int64, n+1)
	for i, ti := range tracks {
		tp.slot[ti] = i
		pre := make([]int64, n+1)
		for j, sz := range m.Tracks[ti].Sizes {
			pre[j+1] = pre[j] + sz
		}
		tp.per[i] = pre
	}
	for j := 0; j < n; j++ {
		mn, mx := m.Tracks[tracks[0]].Sizes[j], m.Tracks[tracks[0]].Sizes[j]
		for _, ti := range tracks[1:] {
			sz := m.Tracks[ti].Sizes[j]
			if sz < mn {
				mn = sz
			}
			if sz > mx {
				mx = sz
			}
		}
		tp.envMin[j+1] = tp.envMin[j] + mn
		tp.envMax[j+1] = tp.envMax[j] + mx
	}
	return tp
}

// NumChunks returns the chunk count the prefix sums cover.
func (tp *TrackPrefix) NumChunks() int {
	if len(tp.envMin) == 0 {
		return 0
	}
	return len(tp.envMin) - 1
}

// TrackSum returns the sum of track t's chunk sizes over indexes [lo, hi).
// The track must be one of the tracks the prefix was built over.
func (tp *TrackPrefix) TrackSum(t, lo, hi int) int64 {
	pre := tp.per[tp.slot[t]]
	return pre[hi] - pre[lo]
}

// EnvelopeBounds returns the minimum and maximum achievable size sum over
// indexes [lo, hi) when each position may independently pick any of the
// tracks: the prefix differences of the pointwise min/max envelopes.
func (tp *TrackPrefix) EnvelopeBounds(lo, hi int) (minSum, maxSum int64) {
	return tp.envMin[hi] - tp.envMin[lo], tp.envMax[hi] - tp.envMax[lo]
}

// EnvelopeAt returns the min and max size across the tracks at one index.
func (tp *TrackPrefix) EnvelopeAt(i int) (minSz, maxSz int64) {
	return tp.envMin[i+1] - tp.envMin[i], tp.envMax[i+1] - tp.envMax[i]
}
