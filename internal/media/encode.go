package media

import (
	"fmt"
	"math"

	"csi/internal/stats"
)

// Rung is one entry of an encoding ladder.
type Rung struct {
	Bitrate int64 // bits/s
	Width   int
	Height  int
}

// DefaultLadder is a six-rung 144p..1080p ladder following the per-title
// settings the paper cites ([15], Netflix per-title encode optimization).
// Bitrates are nominal averages per track.
var DefaultLadder = []Rung{
	{Bitrate: 200_000, Width: 256, Height: 144},
	{Bitrate: 400_000, Width: 426, Height: 240},
	{Bitrate: 750_000, Width: 640, Height: 360},
	{Bitrate: 1_500_000, Width: 854, Height: 480},
	{Bitrate: 3_000_000, Width: 1280, Height: 720},
	{Bitrate: 5_500_000, Width: 1920, Height: 1080},
}

// EncodeConfig controls the synthetic VBR encoder.
//
// The encoder substitutes for the paper's FFmpeg three-pass encodings of the
// Big Buck Bunny asset (§3.3): it generates a shared per-chunk scene
// complexity signal and maps it to per-track chunk sizes such that each
// video track's measured PASR (p95/mean chunk size) hits TargetPASR. This
// reproduces the two statistical properties the inference depends on:
// correlated size variation across tracks, and a controllable amount of
// within-track size variability.
type EncodeConfig struct {
	Name        string
	Host        string  // media server hostname; defaults to "media.example.com"
	Seed        int64   // drives scene structure; same seed = same asset
	DurationSec float64 // asset duration
	ChunkDur    float64 // seconds per chunk (paper uses 5 s)
	Ladder      []Rung  // video ladder; defaults to DefaultLadder
	TargetPASR  float64 // per-track p95/mean chunk size; >= 1

	// SceneLenMean is the mean scene (shot) duration in seconds for the
	// complexity model. Defaults to 2 s, in line with shot-based encoding;
	// longer scenes correlate neighbouring chunk sizes.
	SceneLenMean float64

	// TrackJitter adds small per-track, per-chunk lognormal noise (std in
	// log space) so that tracks are not exact scalings of each other.
	// Defaults to 0.003.
	TrackJitter float64

	// ChunkNoise is the per-chunk codec-granularity size noise (std in
	// log space) within a scene complexity level. Defaults to 0.007: wide
	// enough that aligned multi-chunk coincidences are rare, narrow enough
	// that nearly every chunk has same-level size neighbours.
	ChunkNoise float64

	// Audio configuration. If AudioTracks > 0 the asset carries separate
	// CBR audio tracks ("S" designs); otherwise audio is assumed muxed into
	// the video chunks ("C" designs).
	AudioTracks   int
	AudioBitrates []int64 // bits/s per audio track; defaults to 128 kbit/s each
}

func (c *EncodeConfig) withDefaults() EncodeConfig {
	cfg := *c
	if cfg.Host == "" {
		cfg.Host = "media.example.com"
	}
	if cfg.Ladder == nil {
		cfg.Ladder = DefaultLadder
	}
	if cfg.ChunkDur == 0 {
		cfg.ChunkDur = 5
	}
	if cfg.DurationSec == 0 {
		cfg.DurationSec = 600
	}
	if cfg.TargetPASR == 0 {
		cfg.TargetPASR = 1.5
	}
	if cfg.SceneLenMean == 0 {
		cfg.SceneLenMean = 2
	}
	if cfg.TrackJitter == 0 {
		cfg.TrackJitter = 0.003
	}
	if cfg.ChunkNoise == 0 {
		cfg.ChunkNoise = 0.007
	}
	if cfg.AudioTracks > 0 && cfg.AudioBitrates == nil {
		cfg.AudioBitrates = make([]int64, cfg.AudioTracks)
		for i := range cfg.AudioBitrates {
			cfg.AudioBitrates[i] = 128_000 + int64(i)*64_000
		}
	}
	return cfg
}

// Encode produces a Manifest from the configuration. It is deterministic in
// cfg (including Seed).
func Encode(c EncodeConfig) (*Manifest, error) {
	cfg := c.withDefaults()
	if cfg.TargetPASR < 1 {
		return nil, fmt.Errorf("media: TargetPASR %.3f < 1", cfg.TargetPASR)
	}
	n := int(math.Ceil(cfg.DurationSec / cfg.ChunkDur))
	if n < 2 {
		return nil, fmt.Errorf("media: asset too short: %d chunks", n)
	}
	rng := stats.NewRand(cfg.Seed)

	// Scene complexity signal. Rate control makes chunk sizes cluster:
	// scenes of comparable complexity encode to nearly the same size, so
	// almost every chunk has a size twin somewhere in the video — the
	// reason single chunks are essentially never size-unique (§3.3) even
	// though short *sequences* are. We model this with a ladder of
	// equally-likely discrete complexity levels per scene plus
	// codec-granularity per-chunk noise: every chunk has several same-level
	// twins (singles never unique), while aligned multi-chunk level
	// patterns rarely repeat (sequences quickly unique).
	const complexityLevels = 10
	g := make([]float64, n)   // quantized complexity per chunk (scaled by sigma later)
	eps := make([]float64, n) // per-chunk codec noise in log-size space
	scenesPerChunk := cfg.ChunkDur / cfg.SceneLenMean
	pos := 0
	for pos < n {
		sceneChunks := 1 + int(rng.ExpFloat64()/scenesPerChunk)
		level := -1 + 2*float64(rng.Intn(complexityLevels))/float64(complexityLevels-1)
		for i := 0; i < sceneChunks && pos < n; i++ {
			g[pos] = level
			eps[pos] = cfg.ChunkNoise * rng.NormFloat64()
			pos++
		}
	}

	// Per-track multiplicative jitter, fixed ahead of the sigma search so
	// the search is monotone in sigma.
	jitter := make([][]float64, len(cfg.Ladder))
	for ti := range cfg.Ladder {
		jitter[ti] = make([]float64, n)
		for i := range jitter[ti] {
			jitter[ti][i] = math.Exp(cfg.TrackJitter * rng.NormFloat64())
		}
	}

	// Relative sizes follow exp(sigma*g + eps). Find sigma such that the
	// realized PASR matches TargetPASR; PASR rises with sigma on the
	// branch we search, so bisection converges.
	relOf := func(sigma float64) ([]float64, float64) {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Exp(sigma*g[i] + eps[i])
		}
		return xs, stats.Percentile(xs, 95) / stats.Mean(xs)
	}
	pasrOf := func(sigma float64) float64 {
		_, p := relOf(sigma)
		return p
	}
	// PASR(sigma) rises from 1 at sigma=0, peaks (for a lognormal the peak
	// is ~3.9 near sigma=1.6) and then falls as the mean becomes dominated
	// by extreme outliers. Locate the peak by golden-section search, then
	// bisect on the rising branch. Targets above the achievable peak clamp
	// to the peak; the paper's encodings top out at PASR 2.6, well below it.
	var sigma float64
	if cfg.TargetPASR > 1.0001 {
		lo, hi := 0.0, 4.0
		for iter := 0; iter < 80; iter++ {
			m1 := lo + (hi-lo)*0.382
			m2 := lo + (hi-lo)*0.618
			if pasrOf(m1) < pasrOf(m2) {
				lo = m1
			} else {
				hi = m2
			}
		}
		peak := (lo + hi) / 2
		if pasrOf(peak) <= cfg.TargetPASR {
			sigma = peak
		} else {
			lo, hi = 0.0, peak
			for iter := 0; iter < 60; iter++ {
				mid := (lo + hi) / 2
				if pasrOf(mid) < cfg.TargetPASR {
					lo = mid
				} else {
					hi = mid
				}
			}
			sigma = (lo + hi) / 2
		}
	}

	man := &Manifest{Name: cfg.Name, Host: cfg.Host, ChunkDur: cfg.ChunkDur}
	rel, _ := relOf(sigma)
	relMean := stats.Mean(rel)

	for ti, rung := range cfg.Ladder {
		tr := Track{
			ID:      len(man.Tracks),
			Kind:    Video,
			Bitrate: rung.Bitrate,
			Width:   rung.Width,
			Height:  rung.Height,
			Sizes:   make([]int64, n),
		}
		// Normalize so the track's mean size matches its nominal bitrate.
		base := float64(rung.Bitrate) / 8 * cfg.ChunkDur / relMean
		for i := 0; i < n; i++ {
			sz := base * rel[i] * jitter[ti][i]
			if sz < 1024 {
				sz = 1024
			}
			tr.Sizes[i] = int64(sz)
		}
		man.Tracks = append(man.Tracks, tr)
	}

	// CBR audio: every chunk in a track has the identical size, matching
	// the paper's observation that services encode audio as near-constant
	// size chunks (S_ak in Table 1).
	audioChunks := n
	for ai := 0; ai < cfg.AudioTracks; ai++ {
		br := cfg.AudioBitrates[ai]
		size := br / 8 * int64(cfg.ChunkDur)
		tr := Track{
			ID:      len(man.Tracks),
			Kind:    Audio,
			Bitrate: br,
			Sizes:   make([]int64, audioChunks),
		}
		for i := range tr.Sizes {
			tr.Sizes[i] = size
		}
		man.Tracks = append(man.Tracks, tr)
	}

	if err := man.Validate(); err != nil {
		return nil, err
	}
	return man, nil
}
