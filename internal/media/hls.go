package media

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// HLS playlist support (§4.1): master playlists enumerate the ladder;
// media playlists use EXT-X-BYTERANGE addressing, so every chunk's exact
// size is visible in the manifest — the "manifests directly specify the
// sizes of all chunks" case of the paper.

// WriteHLSMaster serializes the master playlist. Media playlist URIs follow
// the pattern <kind>-<trackID>.m3u8.
func WriteHLSMaster(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:4")
	audioGroup := ""
	for ti := range m.Tracks {
		tr := &m.Tracks[ti]
		if tr.Kind != Audio {
			continue
		}
		if audioGroup == "" {
			audioGroup = "aud"
		}
		fmt.Fprintf(bw, "#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID=%q,NAME=%q,URI=%q\n",
			audioGroup, fmt.Sprintf("audio-%d", tr.ID), fmt.Sprintf("audio-%d.m3u8", tr.ID))
	}
	for ti := range m.Tracks {
		tr := &m.Tracks[ti]
		if tr.Kind != Video {
			continue
		}
		attrs := fmt.Sprintf("BANDWIDTH=%d", tr.Bitrate)
		if tr.Width > 0 {
			attrs += fmt.Sprintf(",RESOLUTION=%dx%d", tr.Width, tr.Height)
		}
		if audioGroup != "" {
			attrs += fmt.Sprintf(",AUDIO=%q", audioGroup)
		}
		fmt.Fprintf(bw, "#EXT-X-STREAM-INF:%s\n", attrs)
		fmt.Fprintf(bw, "video-%d.m3u8\n", tr.ID)
	}
	return bw.Flush()
}

// WriteHLSMedia serializes one track's media playlist with byte-range
// segment addressing into a single per-track file.
func WriteHLSMedia(w io.Writer, m *Manifest, trackID int) error {
	if trackID < 0 || trackID >= len(m.Tracks) {
		return fmt.Errorf("media: track %d out of range", trackID)
	}
	tr := &m.Tracks[trackID]
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	fmt.Fprintln(bw, "#EXT-X-VERSION:4")
	fmt.Fprintf(bw, "#EXT-X-TARGETDURATION:%d\n", int(m.ChunkDur+0.999))
	fmt.Fprintln(bw, "#EXT-X-PLAYLIST-TYPE:VOD")
	var off int64
	for _, sz := range tr.Sizes {
		fmt.Fprintf(bw, "#EXTINF:%.3f,\n", m.ChunkDur)
		fmt.Fprintf(bw, "#EXT-X-BYTERANGE:%d@%d\n", sz, off)
		fmt.Fprintf(bw, "%s-%d.mp4\n", tr.Kind, tr.ID)
		off += sz
	}
	fmt.Fprintln(bw, "#EXT-X-ENDLIST")
	return bw.Flush()
}

// HLSMasterEntry is one entry of a parsed master playlist.
type HLSMasterEntry struct {
	Kind    Type
	URI     string
	Bitrate int64
	Width   int
	Height  int
}

// ParseHLSMaster extracts the ladder entries from a master playlist.
func ParseHLSMaster(r io.Reader) ([]HLSMasterEntry, error) {
	sc := bufio.NewScanner(r)
	var out []HLSMasterEntry
	var pending *HLSMasterEntry
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if first {
			if line != "#EXTM3U" {
				return nil, fmt.Errorf("media: not an HLS playlist (missing #EXTM3U)")
			}
			first = false
			continue
		}
		switch {
		case strings.HasPrefix(line, "#EXT-X-MEDIA:"):
			attrs := parseHLSAttrs(strings.TrimPrefix(line, "#EXT-X-MEDIA:"))
			if attrs["TYPE"] != "AUDIO" {
				continue
			}
			out = append(out, HLSMasterEntry{Kind: Audio, URI: attrs["URI"]})
		case strings.HasPrefix(line, "#EXT-X-STREAM-INF:"):
			attrs := parseHLSAttrs(strings.TrimPrefix(line, "#EXT-X-STREAM-INF:"))
			e := HLSMasterEntry{Kind: Video}
			if v := attrs["BANDWIDTH"]; v != "" {
				bw, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("media: bad BANDWIDTH %q", v)
				}
				e.Bitrate = bw
			}
			if v := attrs["RESOLUTION"]; v != "" {
				if _, err := fmt.Sscanf(v, "%dx%d", &e.Width, &e.Height); err != nil {
					return nil, fmt.Errorf("media: bad RESOLUTION %q", v)
				}
			}
			pending = &e
		case line != "" && !strings.HasPrefix(line, "#"):
			if pending != nil {
				pending.URI = line
				out = append(out, *pending)
				pending = nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("media: master playlist has no variants")
	}
	return out, nil
}

// HLSMediaPlaylist is one parsed media playlist.
type HLSMediaPlaylist struct {
	ChunkDur float64
	Sizes    []int64 // from EXT-X-BYTERANGE; -1 when absent
	URIs     []string
}

// ParseHLSMedia extracts segment durations and sizes from a media playlist.
func ParseHLSMedia(r io.Reader) (*HLSMediaPlaylist, error) {
	sc := bufio.NewScanner(r)
	pl := &HLSMediaPlaylist{}
	first := true
	var pendingDur float64
	var pendingSize int64 = -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if first {
			if line != "#EXTM3U" {
				return nil, fmt.Errorf("media: not an HLS playlist (missing #EXTM3U)")
			}
			first = false
			continue
		}
		switch {
		case strings.HasPrefix(line, "#EXTINF:"):
			v := strings.TrimSuffix(strings.TrimPrefix(line, "#EXTINF:"), ",")
			v = strings.SplitN(v, ",", 2)[0]
			d, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("media: bad EXTINF %q", line)
			}
			pendingDur = d
		case strings.HasPrefix(line, "#EXT-X-BYTERANGE:"):
			spec := strings.TrimPrefix(line, "#EXT-X-BYTERANGE:")
			parts := strings.SplitN(spec, "@", 2)
			n, err := strconv.ParseInt(parts[0], 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("media: bad EXT-X-BYTERANGE %q", line)
			}
			pendingSize = n
		case line != "" && !strings.HasPrefix(line, "#"):
			if pendingDur > 0 && pl.ChunkDur == 0 {
				pl.ChunkDur = pendingDur
			}
			pl.Sizes = append(pl.Sizes, pendingSize)
			pl.URIs = append(pl.URIs, line)
			pendingSize = -1
			pendingDur = 0
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pl.Sizes) == 0 {
		return nil, fmt.Errorf("media: media playlist has no segments")
	}
	return pl, nil
}

// FetchHLS assembles a Manifest by parsing a master playlist and the media
// playlists it references. fetch loads a playlist by URI; head resolves
// sizes for segments without byte ranges (may be nil when ranges cover
// everything).
func FetchHLS(master io.Reader, name, host string, fetch func(uri string) (io.Reader, error), head HeadFunc) (*Manifest, error) {
	entries, err := ParseHLSMaster(master)
	if err != nil {
		return nil, err
	}
	man := &Manifest{Name: name, Host: host}
	for _, e := range entries {
		rd, err := fetch(e.URI)
		if err != nil {
			return nil, fmt.Errorf("media: fetching %q: %w", e.URI, err)
		}
		pl, err := ParseHLSMedia(rd)
		if err != nil {
			return nil, fmt.Errorf("media: parsing %q: %w", e.URI, err)
		}
		if man.ChunkDur == 0 {
			man.ChunkDur = pl.ChunkDur
		}
		tr := Track{ID: len(man.Tracks), Kind: e.Kind, Bitrate: e.Bitrate, Width: e.Width, Height: e.Height}
		for si, sz := range pl.Sizes {
			if sz < 0 {
				if head == nil {
					return nil, fmt.Errorf("media: %q segment %d has no byte range and no HEAD resolver", e.URI, si)
				}
				sz, err = head(pl.URIs[si])
				if err != nil {
					return nil, fmt.Errorf("media: HEAD %q: %w", pl.URIs[si], err)
				}
			}
			tr.Sizes = append(tr.Sizes, sz)
		}
		man.Tracks = append(man.Tracks, tr)
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	return man, nil
}

// parseHLSAttrs parses the KEY=VALUE[,...] attribute list syntax, honouring
// quoted strings.
func parseHLSAttrs(s string) map[string]string {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		var val string
		if strings.HasPrefix(s, `"`) {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				break
			}
			val = s[1 : 1+end]
			s = s[2+end:]
			s = strings.TrimPrefix(s, ",")
		} else {
			end := strings.IndexByte(s, ',')
			if end < 0 {
				val, s = s, ""
			} else {
				val, s = s[:end], s[end+1:]
			}
		}
		out[key] = val
	}
	return out
}
