package media

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the manifest to w.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("media: encoding manifest %q: %w", m.Name, err)
	}
	return nil
}

// SaveJSON writes the manifest to the named file.
func (m *Manifest) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("media: saving manifest: %w", err)
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadJSON parses a manifest from r and validates it.
func ReadJSON(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("media: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadJSON reads a manifest from the named file.
func LoadJSON(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("media: loading manifest: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}
