package media

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// LoadManifestFile opens a manifest in any supported on-disk format,
// selected by extension:
//
//	.json          — the native format
//	.mpd           — DASH MPD (segment sizes from mediaRange byte ranges)
//	.m3u8          — HLS master playlist; media playlists are loaded from
//	                 sibling files referenced by relative URI
//
// host is the media SNI hostname to associate (ignored for .json, which
// embeds it).
func LoadManifestFile(path, host string) (*Manifest, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		return LoadJSON(path)
	case ".mpd":
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("media: opening MPD: %w", err)
		}
		defer f.Close()
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		return ParseMPD(f, name, host, nil)
	case ".m3u8":
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("media: opening playlist: %w", err)
		}
		defer f.Close()
		dir := filepath.Dir(path)
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		return FetchHLS(f, name, host, func(uri string) (io.Reader, error) {
			// Clean with a leading slash to confine lookups to dir.
			data, err := os.ReadFile(filepath.Join(dir, filepath.Clean("/"+uri)))
			if err != nil {
				return nil, err
			}
			return bytes.NewReader(data), nil
		}, nil)
	default:
		return nil, fmt.Errorf("media: unknown manifest format %q", filepath.Ext(path))
	}
}
