package media

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestMPDRoundTrip(t *testing.T) {
	m := encodeT(t, EncodeConfig{Name: "rt", Seed: 8, DurationSec: 120, ChunkDur: 5, TargetPASR: 1.4, AudioTracks: 1})
	var buf bytes.Buffer
	if err := WriteMPD(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMPD(&buf, m.Name, m.Host, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChunkDur != m.ChunkDur || len(got.Tracks) != len(m.Tracks) {
		t.Fatalf("round trip shape: %+v", got)
	}
	for ti := range m.Tracks {
		if got.Tracks[ti].Kind != m.Tracks[ti].Kind || got.Tracks[ti].Bitrate != m.Tracks[ti].Bitrate {
			t.Fatalf("track %d metadata mismatch", ti)
		}
		for ci := range m.Tracks[ti].Sizes {
			if got.Tracks[ti].Sizes[ci] != m.Tracks[ti].Sizes[ci] {
				t.Fatalf("size mismatch at (%d,%d): %d vs %d", ti, ci,
					got.Tracks[ti].Sizes[ci], m.Tracks[ti].Sizes[ci])
			}
		}
	}
}

func TestMPDHeadFallback(t *testing.T) {
	// An MPD without mediaRange requires the HEAD resolver.
	mpdText := `<?xml version="1.0"?>
<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static" mediaPresentationDuration="PT10S">
 <Period>
  <AdaptationSet contentType="video">
   <Representation id="video-0" bandwidth="100000">
    <SegmentList duration="5000" timescale="1000">
     <SegmentURL media="seg0.mp4"></SegmentURL>
     <SegmentURL media="seg1.mp4"></SegmentURL>
    </SegmentList>
   </Representation>
  </AdaptationSet>
 </Period>
</MPD>`
	sizes := map[string]int64{"seg0.mp4": 11111, "seg1.mp4": 22222}
	var heads int
	head := func(url string) (int64, error) {
		heads++
		sz, ok := sizes[url]
		if !ok {
			return 0, fmt.Errorf("404 %s", url)
		}
		return sz, nil
	}
	man, err := ParseMPD(strings.NewReader(mpdText), "x", "h", head)
	if err != nil {
		t.Fatal(err)
	}
	if heads != 2 {
		t.Fatalf("HEAD requests = %d, want 2", heads)
	}
	if man.Tracks[0].Sizes[0] != 11111 || man.Tracks[0].Sizes[1] != 22222 {
		t.Fatalf("sizes = %v", man.Tracks[0].Sizes)
	}
	// Without the resolver it must fail, not guess.
	if _, err := ParseMPD(strings.NewReader(mpdText), "x", "h", nil); err == nil {
		t.Fatal("rangeless MPD without HEAD resolver accepted")
	}
}

func TestMPDRejectsGarbage(t *testing.T) {
	if _, err := ParseMPD(strings.NewReader("<MPD></MPD>"), "x", "h", nil); err == nil {
		t.Fatal("period-less MPD accepted")
	}
	if _, err := ParseMPD(strings.NewReader("not xml"), "x", "h", nil); err == nil {
		t.Fatal("non-XML accepted")
	}
}

func TestHLSRoundTrip(t *testing.T) {
	m := encodeT(t, EncodeConfig{Name: "hls", Seed: 9, DurationSec: 100, ChunkDur: 5, TargetPASR: 1.3, AudioTracks: 1})
	var master bytes.Buffer
	if err := WriteHLSMaster(&master, m); err != nil {
		t.Fatal(err)
	}
	medias := map[string]string{}
	for ti := range m.Tracks {
		var mb bytes.Buffer
		if err := WriteHLSMedia(&mb, m, ti); err != nil {
			t.Fatal(err)
		}
		medias[fmt.Sprintf("%s-%d.m3u8", m.Tracks[ti].Kind, m.Tracks[ti].ID)] = mb.String()
	}
	fetch := func(uri string) (io.Reader, error) {
		body, ok := medias[uri]
		if !ok {
			return nil, fmt.Errorf("404 %s", uri)
		}
		return strings.NewReader(body), nil
	}
	got, err := FetchHLS(&master, m.Name, m.Host, fetch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tracks) != len(m.Tracks) {
		t.Fatalf("tracks = %d, want %d", len(got.Tracks), len(m.Tracks))
	}
	// Order differs (audio listed first in master); compare as multisets
	// keyed by (kind, bitrate approximation via sizes).
	match := 0
	for gi := range got.Tracks {
		for ti := range m.Tracks {
			if got.Tracks[gi].Kind != m.Tracks[ti].Kind || len(got.Tracks[gi].Sizes) != len(m.Tracks[ti].Sizes) {
				continue
			}
			same := true
			for ci := range m.Tracks[ti].Sizes {
				if got.Tracks[gi].Sizes[ci] != m.Tracks[ti].Sizes[ci] {
					same = false
					break
				}
			}
			if same {
				match++
				break
			}
		}
	}
	if match != len(m.Tracks) {
		t.Fatalf("only %d/%d tracks round-tripped by sizes", match, len(m.Tracks))
	}
	if got.ChunkDur != m.ChunkDur {
		t.Fatalf("chunk dur = %g", got.ChunkDur)
	}
}

func TestParseHLSMasterAttrs(t *testing.T) {
	master := `#EXTM3U
#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID="aud",NAME="audio-6",URI="audio-6.m3u8"
#EXT-X-STREAM-INF:BANDWIDTH=1500000,RESOLUTION=854x480,AUDIO="aud"
video-3.m3u8
`
	entries, err := ParseHLSMaster(strings.NewReader(master))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	v := entries[1]
	if v.Kind != Video || v.Bitrate != 1500000 || v.Width != 854 || v.Height != 480 || v.URI != "video-3.m3u8" {
		t.Fatalf("video entry = %+v", v)
	}
	if entries[0].Kind != Audio || entries[0].URI != "audio-6.m3u8" {
		t.Fatalf("audio entry = %+v", entries[0])
	}
}

func TestParseHLSMediaByteranges(t *testing.T) {
	pl := `#EXTM3U
#EXT-X-VERSION:4
#EXT-X-TARGETDURATION:5
#EXTINF:5.000,
#EXT-X-BYTERANGE:1000@0
video-0.mp4
#EXTINF:5.000,
#EXT-X-BYTERANGE:2000@1000
video-0.mp4
#EXT-X-ENDLIST
`
	got, err := ParseHLSMedia(strings.NewReader(pl))
	if err != nil {
		t.Fatal(err)
	}
	if got.ChunkDur != 5 || len(got.Sizes) != 2 || got.Sizes[0] != 1000 || got.Sizes[1] != 2000 {
		t.Fatalf("parsed = %+v", got)
	}
}

func TestParseHLSRejectsGarbage(t *testing.T) {
	if _, err := ParseHLSMaster(strings.NewReader("not a playlist")); err == nil {
		t.Fatal("non-playlist accepted as master")
	}
	if _, err := ParseHLSMedia(strings.NewReader("#EXTM3U\n")); err == nil {
		t.Fatal("segment-less media playlist accepted")
	}
	bad := "#EXTM3U\n#EXTINF:abc,\nseg.mp4\n"
	if _, err := ParseHLSMedia(strings.NewReader(bad)); err == nil {
		t.Fatal("bad EXTINF accepted")
	}
}

func TestFetchHLSHeadFallback(t *testing.T) {
	master := "#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1000\nv.m3u8\n"
	media := "#EXTM3U\n#EXTINF:5.0,\nseg0.mp4\n#EXTINF:5.0,\nseg1.mp4\n#EXT-X-ENDLIST\n"
	fetch := func(uri string) (io.Reader, error) { return strings.NewReader(media), nil }
	head := func(url string) (int64, error) { return 4242, nil }
	man, err := FetchHLS(strings.NewReader(master), "x", "h", fetch, head)
	if err != nil {
		t.Fatal(err)
	}
	if man.Tracks[0].Sizes[0] != 4242 {
		t.Fatalf("sizes = %v", man.Tracks[0].Sizes)
	}
	if _, err := FetchHLS(strings.NewReader(master), "x", "h", fetch, nil); err == nil {
		t.Fatal("rangeless playlist without HEAD resolver accepted")
	}
}

// encodeT builds a known-good manifest, failing the test on error (package
// media cannot import mediatest without a cycle).
func encodeT(t *testing.T, c EncodeConfig) *Manifest {
	t.Helper()
	m, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
