package media

import (
	"fmt"
	"math"

	"csi/internal/stats"
)

// ServiceProfile models the encoding practice of one commercial streaming
// service, substituting for the paper's measurements of real catalogues
// (Table 3). A profile is a distribution over per-video encodings: target
// PASR is drawn per video from a shifted lognormal calibrated so that the
// median and 95th-percentile PASR across the catalogue match the values
// reported in Table 3.
type ServiceProfile struct {
	Name string

	// Catalogue PASR distribution: PASR = 1 + exp(mu + sigma*Z).
	PASRMedian float64 // Table 3 median
	PASRP95    float64 // Table 3 95th percentile

	NumVideos     int     // catalogue size measured in the paper
	ChunkDur      float64 // seconds
	DurationMean  float64 // mean video duration, seconds
	DurationJit   float64 // +/- uniform jitter fraction on duration
	Ladder        []Rung
	SeparateAudio bool
	SceneLenMean  float64
}

// Services are the six streaming services of Table 3 with their measured
// catalogue sizes and PASR statistics.
var Services = []ServiceProfile{
	{Name: "Amazon", PASRMedian: 1.35, PASRP95: 1.47, NumVideos: 111, ChunkDur: 6, DurationMean: 2400, SeparateAudio: true},
	{Name: "Facebook", PASRMedian: 1.73, PASRP95: 2.19, NumVideos: 144, ChunkDur: 5, DurationMean: 420, SeparateAudio: true},
	{Name: "HBO Now", PASRMedian: 1.57, PASRP95: 1.58, NumVideos: 30, ChunkDur: 6, DurationMean: 3000, SeparateAudio: true},
	{Name: "Hulu", PASRMedian: 1.35, PASRP95: 1.44, NumVideos: 30, ChunkDur: 5, DurationMean: 1800, SeparateAudio: true},
	{Name: "Vudu", PASRMedian: 1.52, PASRP95: 1.58, NumVideos: 46, ChunkDur: 6, DurationMean: 4200, SeparateAudio: true},
	{Name: "Youtube", PASRMedian: 1.94, PASRP95: 2.13, NumVideos: 1920, ChunkDur: 5, DurationMean: 600, SeparateAudio: true},
}

// ServiceByName returns the profile with the given name.
func ServiceByName(name string) (ServiceProfile, error) {
	for _, s := range Services {
		if s.Name == name {
			return s, nil
		}
	}
	return ServiceProfile{}, fmt.Errorf("media: unknown service %q", name)
}

// samplePASR draws one per-video target PASR from the calibrated shifted
// lognormal.
func (p ServiceProfile) samplePASR(rng interface{ NormFloat64() float64 }) float64 {
	mu := math.Log(p.PASRMedian - 1)
	sigma := 0.0
	if p.PASRP95 > p.PASRMedian {
		sigma = (math.Log(p.PASRP95-1) - mu) / 1.6449 // z at p95
	}
	v := 1 + math.Exp(mu+sigma*rng.NormFloat64())
	if v < 1.02 {
		v = 1.02
	}
	if v > 3.5 {
		v = 3.5
	}
	return v
}

// SampleVideos generates n synthetic videos drawn from the service's
// encoding distribution. If n <= 0 the catalogue size from Table 3 is used.
// maxDur, when positive, caps video duration (useful to bound analysis cost
// at reduced scale).
func (p ServiceProfile) SampleVideos(seed int64, n int, maxDur float64) ([]*Manifest, error) {
	if n <= 0 {
		n = p.NumVideos
	}
	rng := stats.NewRand(seed ^ int64(len(p.Name))<<32 ^ int64(p.NumVideos))
	out := make([]*Manifest, 0, n)
	for i := 0; i < n; i++ {
		dur := p.DurationMean
		jit := p.DurationJit
		if jit == 0 {
			jit = 0.5
		}
		dur *= 1 + jit*(2*rng.Float64()-1)
		if maxDur > 0 && dur > maxDur {
			dur = maxDur
		}
		audio := 0
		if p.SeparateAudio {
			audio = 1
		}
		m, err := Encode(EncodeConfig{
			Name:         fmt.Sprintf("%s-video-%03d", p.Name, i),
			Seed:         rng.Int63(),
			DurationSec:  dur,
			ChunkDur:     p.ChunkDur,
			Ladder:       p.Ladder,
			TargetPASR:   p.samplePASR(rng),
			SceneLenMean: p.SceneLenMean,
			AudioTracks:  audio,
		})
		if err != nil {
			return nil, fmt.Errorf("media: sampling %s video %d: %w", p.Name, i, err)
		}
		out = append(out, m)
	}
	return out, nil
}
