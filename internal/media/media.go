// Package media models ABR video assets: tracks, chunks and manifests.
//
// It also contains a synthetic VBR encoder (see encode.go) that substitutes
// for the paper's FFmpeg three-pass encodings, and per-service encoding
// profiles (profiles.go) that substitute for the six commercial services
// measured in Table 3 of the paper.
package media

import (
	"fmt"
	"math"
	"sort"

	"csi/internal/stats"
)

// Type distinguishes audio from video tracks. Services that multiplex audio
// into the video chunks ("combined" designs) have no audio tracks at all.
type Type int

const (
	Video Type = iota
	Audio
)

func (t Type) String() string {
	switch t {
	case Video:
		return "video"
	case Audio:
		return "audio"
	default:
		return fmt.Sprintf("media.Type(%d)", int(t))
	}
}

// ChunkRef identifies a chunk within a manifest: the track it belongs to and
// its playback index (position in the video). This is exactly the identity
// CSI infers from encrypted traffic.
type ChunkRef struct {
	Track int // index into Manifest.Tracks
	Index int // playback index, 0-based
}

// Track is one encoding rung: a fixed-quality version of the asset split
// into chunks. Video tracks are VBR (per-chunk sizes vary); audio tracks are
// CBR (all chunks the same size), matching the common practice the paper
// observes in §5.2.
type Track struct {
	ID      int     `json:"id"`
	Kind    Type    `json:"kind"`
	Bitrate int64   `json:"bitrate"` // nominal encoding bitrate, bits/s
	Width   int     `json:"width,omitempty"`
	Height  int     `json:"height,omitempty"`
	Sizes   []int64 `json:"sizes"` // bytes per chunk, indexed by playback index
}

// NumChunks returns the number of chunks in the track.
func (t *Track) NumChunks() int { return len(t.Sizes) }

// TotalBytes returns the sum of all chunk sizes.
func (t *Track) TotalBytes() int64 {
	var s int64
	for _, v := range t.Sizes {
		s += v
	}
	return s
}

// MeanSize returns the average chunk size in bytes.
func (t *Track) MeanSize() float64 {
	if len(t.Sizes) == 0 {
		return 0
	}
	return float64(t.TotalBytes()) / float64(len(t.Sizes))
}

// PASR returns the peak-to-average size ratio of the track: the ratio
// between the 95th-percentile chunk size and the mean chunk size (§3.3).
// CBR tracks have PASR ~1.
func (t *Track) PASR() float64 {
	if len(t.Sizes) == 0 {
		return 0
	}
	xs := make([]float64, len(t.Sizes))
	for i, v := range t.Sizes {
		xs[i] = float64(v)
	}
	m := stats.Mean(xs)
	if m == 0 {
		return 0
	}
	return stats.Percentile(xs, 95) / m
}

// Manifest describes one ABR asset: the full ladder of tracks and the
// per-chunk sizes CSI collects in advance of a test (§4.1).
type Manifest struct {
	Name     string  `json:"name"`
	Host     string  `json:"host"`      // media server hostname (SNI)
	ChunkDur float64 `json:"chunk_dur"` // seconds of content per chunk
	Tracks   []Track `json:"tracks"`
}

// Validate checks structural invariants: at least one video track, equal
// chunk counts within each media type, positive sizes.
func (m *Manifest) Validate() error {
	if m.ChunkDur <= 0 {
		return fmt.Errorf("media: manifest %q: chunk duration must be positive", m.Name)
	}
	nv, na := -1, -1
	sawVideo := false
	for i := range m.Tracks {
		t := &m.Tracks[i]
		if t.NumChunks() == 0 {
			return fmt.Errorf("media: manifest %q: track %d has no chunks", m.Name, i)
		}
		for j, s := range t.Sizes {
			if s <= 0 {
				return fmt.Errorf("media: manifest %q: track %d chunk %d has size %d", m.Name, i, j, s)
			}
		}
		switch t.Kind {
		case Video:
			sawVideo = true
			if nv == -1 {
				nv = t.NumChunks()
			} else if t.NumChunks() != nv {
				return fmt.Errorf("media: manifest %q: video tracks have differing chunk counts", m.Name)
			}
		case Audio:
			if na == -1 {
				na = t.NumChunks()
			} else if t.NumChunks() != na {
				return fmt.Errorf("media: manifest %q: audio tracks have differing chunk counts", m.Name)
			}
		default:
			return fmt.Errorf("media: manifest %q: track %d has invalid kind", m.Name, i)
		}
	}
	if !sawVideo {
		return fmt.Errorf("media: manifest %q: no video tracks", m.Name)
	}
	return nil
}

// VideoTracks returns the indexes of video tracks, in ladder order
// (ascending bitrate as produced by the encoder).
func (m *Manifest) VideoTracks() []int {
	var out []int
	for i := range m.Tracks {
		if m.Tracks[i].Kind == Video {
			out = append(out, i)
		}
	}
	return out
}

// AudioTracks returns the indexes of audio tracks.
func (m *Manifest) AudioTracks() []int {
	var out []int
	for i := range m.Tracks {
		if m.Tracks[i].Kind == Audio {
			out = append(out, i)
		}
	}
	return out
}

// HasSeparateAudio reports whether the asset uses separate audio tracks
// (the "S" designs of Table 2).
func (m *Manifest) HasSeparateAudio() bool { return len(m.AudioTracks()) > 0 }

// NumVideoChunks returns the chunk count of the video tracks.
func (m *Manifest) NumVideoChunks() int {
	for i := range m.Tracks {
		if m.Tracks[i].Kind == Video {
			return m.Tracks[i].NumChunks()
		}
	}
	return 0
}

// NumAudioChunks returns the chunk count of the audio tracks (0 if none).
func (m *Manifest) NumAudioChunks() int {
	for i := range m.Tracks {
		if m.Tracks[i].Kind == Audio {
			return m.Tracks[i].NumChunks()
		}
	}
	return 0
}

// Duration returns the asset duration in seconds (from the video tracks).
func (m *Manifest) Duration() float64 {
	return float64(m.NumVideoChunks()) * m.ChunkDur
}

// Size returns the size in bytes of the given chunk.
func (m *Manifest) Size(ref ChunkRef) int64 {
	return m.Tracks[ref.Track].Sizes[ref.Index]
}

// MedianPASR returns the median PASR across video tracks; this is the
// per-video PASR statistic used in Table 3 and Figure 5.
func (m *Manifest) MedianPASR() float64 {
	var xs []float64
	for _, ti := range m.VideoTracks() {
		xs = append(xs, m.Tracks[ti].PASR())
	}
	return stats.Median(xs)
}

// SizeIndex is a sorted index over all chunks of one media type, supporting
// the range queries of CSI's candidate search (Step 2.1): all chunks whose
// true size S satisfies S <= est <= (1+k)S.
type SizeIndex struct {
	sizes []int64
	refs  []ChunkRef
}

// NewSizeIndex builds an index over all tracks of the given kind.
func NewSizeIndex(m *Manifest, kind Type) *SizeIndex {
	idx := &SizeIndex{}
	for ti := range m.Tracks {
		t := &m.Tracks[ti]
		if t.Kind != kind {
			continue
		}
		for ci, s := range t.Sizes {
			idx.sizes = append(idx.sizes, s)
			idx.refs = append(idx.refs, ChunkRef{Track: ti, Index: ci})
		}
	}
	order := make([]int, len(idx.sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if idx.sizes[order[a]] != idx.sizes[order[b]] {
			return idx.sizes[order[a]] < idx.sizes[order[b]]
		}
		ra, rb := idx.refs[order[a]], idx.refs[order[b]]
		if ra.Track != rb.Track {
			return ra.Track < rb.Track
		}
		return ra.Index < rb.Index
	})
	ss := make([]int64, len(order))
	rr := make([]ChunkRef, len(order))
	for i, o := range order {
		ss[i] = idx.sizes[o]
		rr[i] = idx.refs[o]
	}
	idx.sizes, idx.refs = ss, rr
	return idx
}

// Len returns the number of chunks in the index.
func (idx *SizeIndex) Len() int { return len(idx.sizes) }

// Range appends to dst all chunks with size in [lo, hi] and returns the
// extended slice.
func (idx *SizeIndex) Range(lo, hi int64, dst []ChunkRef) []ChunkRef {
	i := sort.Search(len(idx.sizes), func(i int) bool { return idx.sizes[i] >= lo })
	for ; i < len(idx.sizes) && idx.sizes[i] <= hi; i++ {
		dst = append(dst, idx.refs[i])
	}
	return dst
}

// CandidateRange returns the [lo, hi] true-size interval compatible with an
// estimated size est under maximum relative over-estimation k
// (Property 1 of the paper: S <= est <= (1+k)S).
func CandidateRange(est int64, k float64) (lo, hi int64) {
	lo = int64(math.Ceil(float64(est) / (1 + k))) // S >= est/(1+k)
	hi = est                                      // S <= est
	return lo, hi
}
