package media

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DASH MPD support (§4.1 of the paper): CSI collects per-chunk sizes from
// the manifest before a test. VoD MPDs commonly address segments as byte
// ranges into one file per representation (sidx-style); the range bounds
// expose every chunk's exact size, which is all CSI needs. For manifests
// that only carry URLs, sizes are resolved through a HEAD-request callback.

// HeadFunc resolves the Content-Length of a URL (the HTTP HEAD fallback of
// §4.1). Implementations may hit a real server or a test double.
type HeadFunc func(url string) (int64, error)

// mpd mirrors the subset of the MPEG-DASH schema the encoder emits and the
// parser understands.
type mpd struct {
	XMLName                   xml.Name    `xml:"MPD"`
	Xmlns                     string      `xml:"xmlns,attr"`
	Type                      string      `xml:"type,attr"`
	MediaPresentationDuration string      `xml:"mediaPresentationDuration,attr"`
	Periods                   []mpdPeriod `xml:"Period"`
}

type mpdPeriod struct {
	AdaptationSets []mpdAdaptationSet `xml:"AdaptationSet"`
}

type mpdAdaptationSet struct {
	ContentType     string              `xml:"contentType,attr"`
	Representations []mpdRepresentation `xml:"Representation"`
}

type mpdRepresentation struct {
	ID          string          `xml:"id,attr"`
	Bandwidth   int64           `xml:"bandwidth,attr"`
	Width       int             `xml:"width,attr,omitempty"`
	Height      int             `xml:"height,attr,omitempty"`
	SegmentList *mpdSegmentList `xml:"SegmentList"`
}

type mpdSegmentList struct {
	Duration    float64         `xml:"duration,attr"`
	Timescale   int             `xml:"timescale,attr"`
	SegmentURLs []mpdSegmentURL `xml:"SegmentURL"`
}

type mpdSegmentURL struct {
	Media      string `xml:"media,attr"`
	MediaRange string `xml:"mediaRange,attr,omitempty"`
}

// WriteMPD serializes the manifest as a DASH MPD. Each representation's
// segments are byte ranges into a single per-track media file, so chunk
// sizes survive the round trip without HEAD requests.
func WriteMPD(w io.Writer, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	const timescale = 1000
	doc := mpd{
		Xmlns:                     "urn:mpeg:dash:schema:mpd:2011",
		Type:                      "static",
		MediaPresentationDuration: fmt.Sprintf("PT%.3fS", m.Duration()),
		Periods:                   []mpdPeriod{{}},
	}
	sets := map[Type]*mpdAdaptationSet{}
	order := []Type{Video, Audio}
	for ti := range m.Tracks {
		tr := &m.Tracks[ti]
		set, ok := sets[tr.Kind]
		if !ok {
			set = &mpdAdaptationSet{ContentType: tr.Kind.String()}
			sets[tr.Kind] = set
		}
		rep := mpdRepresentation{
			ID:        fmt.Sprintf("%s-%d", tr.Kind, tr.ID),
			Bandwidth: tr.Bitrate,
			Width:     tr.Width,
			Height:    tr.Height,
			SegmentList: &mpdSegmentList{
				Duration:  m.ChunkDur * timescale,
				Timescale: timescale,
			},
		}
		var off int64
		for _, sz := range tr.Sizes {
			rep.SegmentList.SegmentURLs = append(rep.SegmentList.SegmentURLs, mpdSegmentURL{
				Media:      fmt.Sprintf("%s/%s-%d.mp4", m.Name, tr.Kind, tr.ID),
				MediaRange: fmt.Sprintf("%d-%d", off, off+sz-1),
			})
			off += sz
		}
		set.Representations = append(set.Representations, rep)
	}
	for _, kind := range order {
		if set := sets[kind]; set != nil {
			doc.Periods[0].AdaptationSets = append(doc.Periods[0].AdaptationSets, *set)
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("media: encoding MPD: %w", err)
	}
	return enc.Close()
}

// ParseMPD reads a DASH MPD and reconstructs the manifest. Segment sizes
// come from mediaRange byte ranges when present; otherwise head is invoked
// per segment URL (the §4.1 HEAD-request fallback). head may be nil if all
// segments carry ranges.
func ParseMPD(r io.Reader, name, host string, head HeadFunc) (*Manifest, error) {
	var doc mpd
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("media: parsing MPD: %w", err)
	}
	if len(doc.Periods) == 0 {
		return nil, fmt.Errorf("media: MPD has no Period")
	}
	man := &Manifest{Name: name, Host: host}
	for _, set := range doc.Periods[0].AdaptationSets {
		var kind Type
		switch set.ContentType {
		case "video":
			kind = Video
		case "audio":
			kind = Audio
		default:
			return nil, fmt.Errorf("media: MPD adaptation set with unknown contentType %q", set.ContentType)
		}
		for _, rep := range set.Representations {
			if rep.SegmentList == nil {
				return nil, fmt.Errorf("media: representation %s has no SegmentList", rep.ID)
			}
			ts := rep.SegmentList.Timescale
			if ts == 0 {
				ts = 1
			}
			dur := rep.SegmentList.Duration / float64(ts)
			if man.ChunkDur == 0 {
				man.ChunkDur = dur
			}
			tr := Track{
				ID:      len(man.Tracks),
				Kind:    kind,
				Bitrate: rep.Bandwidth,
				Width:   rep.Width,
				Height:  rep.Height,
			}
			for si, seg := range rep.SegmentList.SegmentURLs {
				sz, err := segmentSize(seg, head)
				if err != nil {
					return nil, fmt.Errorf("media: representation %s segment %d: %w", rep.ID, si, err)
				}
				tr.Sizes = append(tr.Sizes, sz)
			}
			man.Tracks = append(man.Tracks, tr)
		}
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	return man, nil
}

func segmentSize(seg mpdSegmentURL, head HeadFunc) (int64, error) {
	if seg.MediaRange != "" {
		lo, hi, ok := parseRange(seg.MediaRange)
		if !ok {
			return 0, fmt.Errorf("bad mediaRange %q", seg.MediaRange)
		}
		return hi - lo + 1, nil
	}
	if head == nil {
		return 0, fmt.Errorf("no mediaRange and no HEAD resolver for %q", seg.Media)
	}
	return head(seg.Media)
}

func parseRange(s string) (lo, hi int64, ok bool) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	lo, err1 := strconv.ParseInt(parts[0], 10, 64)
	hi, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil || hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}
