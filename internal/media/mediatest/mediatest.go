// Package mediatest provides test helpers for building media fixtures.
// It exists so tests fail through the testing API instead of panicking:
// production code must never encode a manifest it cannot validate, so the
// library exposes only the error-returning media.Encode.
package mediatest

import (
	"testing"

	"csi/internal/media"
)

// Encode builds a manifest from a known-good configuration, failing the
// test on error.
func Encode(tb testing.TB, c media.EncodeConfig) *media.Manifest {
	tb.Helper()
	m, err := media.Encode(c)
	if err != nil {
		tb.Fatalf("mediatest: encode %q: %v", c.Name, err)
	}
	return m
}
