package media

import (
	"math/rand"
	"testing"
)

func prefixTestManifest(seed int64, tracks, chunks int) *Manifest {
	rng := rand.New(rand.NewSource(seed))
	m := &Manifest{Name: "pfx", Host: "h", ChunkDur: 5}
	for t := 0; t < tracks; t++ {
		tr := Track{ID: t, Kind: Video, Bitrate: int64(100 * (t + 1))}
		for c := 0; c < chunks; c++ {
			tr.Sizes = append(tr.Sizes, int64(1000+rng.Intn(9000)))
		}
		m.Tracks = append(m.Tracks, tr)
	}
	return m
}

// TestTrackPrefixAgainstDirectSums cross-checks every TrackSum and
// EnvelopeBounds query against direct summation.
func TestTrackPrefixAgainstDirectSums(t *testing.T) {
	man := prefixTestManifest(11, 4, 23)
	tracks := man.VideoTracks()
	tp := NewTrackPrefix(man, tracks)
	if got := tp.NumChunks(); got != 23 {
		t.Fatalf("NumChunks = %d, want 23", got)
	}
	for lo := 0; lo <= 23; lo++ {
		for hi := lo; hi <= 23; hi++ {
			var wantMin, wantMax int64
			for j := lo; j < hi; j++ {
				mn, mx := man.Tracks[tracks[0]].Sizes[j], man.Tracks[tracks[0]].Sizes[j]
				for _, ti := range tracks[1:] {
					sz := man.Tracks[ti].Sizes[j]
					if sz < mn {
						mn = sz
					}
					if sz > mx {
						mx = sz
					}
				}
				wantMin += mn
				wantMax += mx
			}
			gotMin, gotMax := tp.EnvelopeBounds(lo, hi)
			if gotMin != wantMin || gotMax != wantMax {
				t.Fatalf("EnvelopeBounds(%d,%d) = (%d,%d), want (%d,%d)", lo, hi, gotMin, gotMax, wantMin, wantMax)
			}
			for _, ti := range tracks {
				var want int64
				for j := lo; j < hi; j++ {
					want += man.Tracks[ti].Sizes[j]
				}
				if got := tp.TrackSum(ti, lo, hi); got != want {
					t.Fatalf("TrackSum(%d,%d,%d) = %d, want %d", ti, lo, hi, got, want)
				}
			}
		}
	}
	for j := 0; j < 23; j++ {
		mn, mx := tp.EnvelopeAt(j)
		wantMin, wantMax := tp.EnvelopeBounds(j, j+1)
		if mn != wantMin || mx != wantMax {
			t.Fatalf("EnvelopeAt(%d) = (%d,%d), want (%d,%d)", j, mn, mx, wantMin, wantMax)
		}
	}
}

// TestTrackPrefixSubset builds a prefix over a strict subset of tracks and
// checks the envelope ignores the excluded track.
func TestTrackPrefixSubset(t *testing.T) {
	man := prefixTestManifest(7, 3, 10)
	sub := []int{0, 2}
	tp := NewTrackPrefix(man, sub)
	for j := 0; j < 10; j++ {
		a, b := man.Tracks[0].Sizes[j], man.Tracks[2].Sizes[j]
		wantMin, wantMax := a, a
		if b < wantMin {
			wantMin = b
		}
		if b > wantMax {
			wantMax = b
		}
		mn, mx := tp.EnvelopeAt(j)
		if mn != wantMin || mx != wantMax {
			t.Fatalf("EnvelopeAt(%d) = (%d,%d), want (%d,%d)", j, mn, mx, wantMin, wantMax)
		}
	}
}

// TestTrackPrefixEmpty checks the degenerate no-track case.
func TestTrackPrefixEmpty(t *testing.T) {
	man := prefixTestManifest(3, 2, 5)
	tp := NewTrackPrefix(man, nil)
	if tp.NumChunks() != 0 {
		t.Fatalf("empty prefix NumChunks = %d, want 0", tp.NumChunks())
	}
}
