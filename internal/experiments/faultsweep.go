package experiments

import (
	"errors"
	"fmt"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/faults"
	"csi/internal/guard"
	"csi/internal/guard/runner"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/qoe"
	"csi/internal/session"
	"csi/internal/stats"
)

// FaultLevel is one point of the degradation sweep: a named monitor
// impairment setting applied to every captured session.
type FaultLevel struct {
	Name string
	Spec faults.Spec
}

// mustLevel builds a level from ParseSpec syntax; the inputs are literals
// exercised by the package tests, so a parse failure is a programming error.
func mustLevel(name, spec string) FaultLevel {
	s, err := faults.ParseSpec(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: bad built-in fault level %q: %v", name, err)) //csi-vet:ignore nakedpanic -- literal built-in specs; a parse failure is a programming error
	}
	return FaultLevel{Name: name, Spec: s}
}

// DefaultFaultLevels is the degradation curve of the robustness study: a
// clean baseline plus single impairments in rising severity and one
// everything-at-once level.
func DefaultFaultLevels() []FaultLevel {
	return []FaultLevel{
		mustLevel("clean", ""),
		mustLevel("loss-0.5%", "loss=0.005"),
		mustLevel("loss-2%", "loss=0.02"),
		mustLevel("midstart-10s", "start=10"),
		mustLevel("snaplen-96", "snaplen=96"),
		mustLevel("dup-1%", "dup=0.01"),
		mustLevel("cross-2", "cross=2"),
		mustLevel("combined", "loss=0.01,start=5,dup=0.005,cross=1"),
	}
}

// faultOutcome is the scored result of one (run, level) inference.
type faultOutcome struct {
	best, worst float64
	conf        float64 // mean per-chunk confidence
	warned      bool    // inference carried structured warnings
	zero        bool    // degraded to the zero inference
	qoeOK       bool    // QoE reconstruction succeeded (possibly partial)
	qoePartial  bool
}

// FaultSweep streams each (video, trace) session ONCE per design and then
// replays the captured run through every impairment level, inferring with
// graceful degradation enabled. The zero-impairment level is inferred from
// the very same bytes as the others, so its row is the exact clean
// baseline the curve degrades from.
func FaultSweep(sc Scale, levels []FaultLevel, designs ...session.Design) (*Table, error) {
	if len(levels) == 0 {
		levels = DefaultFaultLevels()
	}
	if len(designs) == 0 {
		designs = []session.Design{session.SH, session.SQ}
	}
	t := &Table{
		Title:  "Inference accuracy under monitor-side capture faults",
		Header: []string{"case", "level", "spec", "runs", "best", "worst", "conf", "warned", "zero", "qoe"},
		Notes: []string{
			"best/worst: mean best/worst-candidate accuracy vs ground truth, in %.",
			"conf: mean per-chunk confidence; warned: % of runs with structured warnings;",
			"zero: % of runs degraded to the zero inference; qoe: % of runs with a",
			"(possibly partial) QoE reconstruction. Inference runs with Degrade enabled;",
			"the clean level is the exact no-impairment baseline.",
		},
	}
	for _, d := range designs {
		audio := 0
		if d.Separate() {
			audio = 1
		}
		nv := sc.Videos
		if nv > 3 {
			nv = 3
		}
		var videos []*media.Manifest
		for v := 0; v < nv; v++ {
			man, err := media.Encode(media.EncodeConfig{
				Name: fmt.Sprintf("fault-%d", v), Seed: 1700 + int64(v)*13,
				DurationSec: 780 + 300*float64(v), ChunkDur: 5,
				TargetPASR:  1.3 + 0.2*float64(v%4),
				AudioTracks: audio,
			})
			if err != nil {
				return nil, err
			}
			videos = append(videos, man)
		}
		traces := netem.CellularTraceSet(77, sc.Traces)

		type job struct {
			man  *media.Manifest
			bw   *netem.BandwidthTrace
			seed int64
		}
		var jobs []job
		for vi, man := range videos {
			for ti, bw := range traces {
				jobs = append(jobs, job{man: man, bw: bw, seed: int64(vi*1000 + ti*10)})
			}
		}

		// Stream every session once, then score all levels against the same
		// captured bytes. Jobs run under the supervised runner; per-job
		// results land in index order, so the aggregate is deterministic.
		results := make([][]faultOutcome, len(jobs))
		skipped := make([]bool, len(jobs))
		tasks := make([]runner.Task, len(jobs))
		for ji, jb := range jobs {
			ji, jb := ji, jb
			tasks[ji] = runner.Task{
				Name: fmt.Sprintf("fault/%v/seed-%d", d, jb.seed),
				Run: func(g *guard.Ctx) error {
					res, err := session.Run(session.Config{
						Design: d, Manifest: jb.man, Bandwidth: jb.bw,
						Duration: sc.SessionSec, Seed: jb.seed,
						Obs: sc.Obs.Child(),
					})
					if err != nil {
						return fmt.Errorf("experiments: fault sweep seed %d: %w", jb.seed, err)
					}
					if len(res.Run.Truth) < 5 {
						skipped[ji] = true
						return nil
					}
					outs := make([]faultOutcome, len(levels))
					for li, lvl := range levels {
						run := res.Run
						if lvl.Spec.Enabled() {
							js := lvl.Spec
							// Every job sees a different realization of the same
							// impairment level, deterministically.
							js.Seed = js.Seed*1_000_003 + jb.seed*7919 + int64(li)
							run, _ = faults.Apply(res.Run, js, sc.Obs.Child())
						}
						outs[li] = scoreFaultRun(jb.man, run, d, sc, g)
					}
					// Drain artifacts are not data points (budget stops are).
					if g.Code() == guard.CodeCancelled {
						skipped[ji] = true
						return nil
					}
					results[ji] = outs
					return nil
				},
			}
		}
		rres, _ := runner.Run(tasks, runnerPolicy(sc))
		var firstErr error
		for ji, r := range rres {
			if r.Err == nil {
				continue
			}
			skipped[ji] = true
			if r.Panicked || r.Cancelled || r.Quarantined {
				continue
			}
			var pe *guard.PanicError
			if errors.As(r.Err, &pe) {
				continue
			}
			if firstErr == nil {
				firstErr = r.Err
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}

		used := 0
		for ji := range results {
			if !skipped[ji] {
				used++
			}
		}
		if used == 0 {
			return nil, fmt.Errorf("experiments: no usable fault-sweep runs for %v", d)
		}
		for li, lvl := range levels {
			var best, worst, conf []float64
			warned, zero, qoeOK := 0, 0, 0
			for ji := range results {
				if skipped[ji] {
					continue
				}
				o := results[ji][li]
				best = append(best, o.best)
				worst = append(worst, o.worst)
				conf = append(conf, o.conf)
				if o.warned {
					warned++
				}
				if o.zero {
					zero++
				}
				if o.qoeOK {
					qoeOK++
				}
			}
			n := float64(used)
			t.Rows = append(t.Rows, []string{
				d.String(), lvl.Name, lvl.Spec.String(), fmt.Sprintf("%d", used),
				pct(stats.Mean(best)), pct(stats.Mean(worst)), f2(stats.Mean(conf)),
				pct(float64(warned) / n), pct(float64(zero) / n), pct(float64(qoeOK) / n),
			})
		}
	}
	return t, nil
}

// scoreFaultRun infers one (possibly impaired) run with degradation enabled
// and scores it. Inference failures are impossible by construction — Degrade
// converts them to zero inferences — so every run contributes a point. The
// guard is the per-task budget shared by all levels of one job; once it is
// exhausted the remaining levels degrade to zero inferences immediately.
func scoreFaultRun(man *media.Manifest, run *capture.Run, d session.Design, sc Scale, g *guard.Ctx) faultOutcome {
	o := faultOutcome{}
	p := core.Params{
		MediaHost: man.Host, Mux: d == session.SQ,
		Degrade: true, Obs: sc.Obs.Child(), Guard: g, Stages: sc.Stages,
		HalfCache: sc.HalfCache,
	}
	inf, err := core.Infer(man, run.Trace, p)
	if err != nil {
		// Degrade should make this unreachable; score zero defensively.
		o.warned, o.zero = true, true
		return o
	}
	o.best, o.worst, err = inf.AccuracyRange(run.Truth)
	if err != nil {
		o.best, o.worst = 0, 0
	}
	o.warned = len(inf.Warnings) > 0
	o.zero = inf.SequenceCount == 0
	o.conf = stats.Mean(inf.Confidences())
	if !inf.Mux && inf.Best != nil {
		chunks := inf.QoEChunks(man)
		rep, qerr := qoe.Analyze(chunks, qoe.Config{
			ChunkDur: man.ChunkDur, Horizon: sc.SessionSec, TolerateGaps: true,
		})
		if qerr == nil {
			o.qoeOK = true
			o.qoePartial = rep.Partial
		}
	}
	return o
}
