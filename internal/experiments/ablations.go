package experiments

import (
	"fmt"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/session"
)

// Ablations quantifies the design choices DESIGN.md calls out:
//
//   - the HTTP header discount in the estimator (without it, small chunks
//     blow the Property-1 bound and no-MUX inference collapses);
//   - the SP2 simultaneous-request split points (without them, MUX groups
//     grow and ambiguity rises);
//   - displayed-chunk pruning (already covered in Table 4; repeated here on
//     a single run for direct comparison).
func Ablations(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablations — contribution of individual design choices",
		Header: []string{"experiment", "variant", "ok", "groups", "sequences", "best %", "worst %"},
	}

	// --- Header discount (SH: separate audio makes small chunks common).
	// A 100 kbit/s bottom rung yields ~25-60 KB chunks, where undiscounted
	// HTTP response headers exceed the 1% Property-1 bound.
	ladder := append([]media.Rung{{Bitrate: 100_000, Width: 192, Height: 108}}, media.DefaultLadder...)
	manSH, err := media.Encode(media.EncodeConfig{
		Name: "abl-sh", Seed: 23, DurationSec: 420, ChunkDur: 5, TargetPASR: 1.5, AudioTracks: 1,
		Ladder: ladder,
	})
	if err != nil {
		return nil, err
	}
	// Low bandwidth keeps the player on the lowest track, whose chunks are
	// small enough that undiscounted response headers blow the Property-1
	// bound.
	resSH, err := session.Run(session.Config{
		Design: session.SH, Manifest: manSH,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: 2, MeanBps: 500_000, Variability: 0.3}),
		Duration:  sc.SessionSec, Seed: 2,
		Obs: sc.Obs.Child(),
	})
	if err != nil {
		return nil, err
	}
	for _, variant := range []struct {
		name string
		p    core.Params
	}{
		{"with discount (default)", core.Params{MediaHost: manSH.Host}},
		{"no header discount", core.Params{MediaHost: manSH.Host, MinResponseHeaderBytes: -1}},
	} {
		variant.p.Obs = sc.Obs.Child()
		t.Rows = append(t.Rows, ablRow("header-discount", variant.name, manSH, resSH, variant.p))
	}

	// --- SP2 split points (SQ).
	resSQ, err := session.Run(session.Config{
		Design: session.SQ, Manifest: manSH,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: 4, MeanBps: 5_000_000, Variability: 0.4}),
		Duration:  sc.SessionSec, Seed: 4,
		Obs: sc.Obs.Child(),
	})
	if err != nil {
		return nil, err
	}
	for _, variant := range []struct {
		name string
		p    core.Params
	}{
		{"SP1+SP2 (default)", core.Params{MediaHost: manSH.Host, Mux: true}},
		{"SP1 only", core.Params{MediaHost: manSH.Host, Mux: true, DisableSP2: true}},
		{"SP2 only", core.Params{MediaHost: manSH.Host, Mux: true, IdleSplitSec: 1e9}},
		{"SP1+SP2+display", core.Params{MediaHost: manSH.Host, Mux: true, Display: resSQ.Run.Display}},
	} {
		variant.p.Obs = sc.Obs.Child()
		t.Rows = append(t.Rows, ablRow("sq-split-points", variant.name, manSH, resSQ, variant.p))
	}
	return t, nil
}

func ablRow(exp, name string, man *media.Manifest, res *session.Result, p core.Params) []string {
	inf, err := core.Infer(man, res.Run.Trace, p)
	if err != nil {
		return []string{exp, name, "FAIL: " + truncateErr(err), "-", "-", "-", "-"}
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		return []string{exp, name, "eval: " + truncateErr(err), "-", "-", "-", "-"}
	}
	return []string{
		exp, name, "yes",
		fmt.Sprintf("%d", len(inf.Groups)),
		fmt.Sprintf("%g", inf.SequenceCount),
		pct(best), pct(worst),
	}
}

func truncateErr(err error) string {
	s := err.Error()
	if len(s) > 48 {
		s = s[:48] + "…"
	}
	return s
}
