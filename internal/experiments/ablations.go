package experiments

import (
	"fmt"

	"csi/internal/core"
	"csi/internal/guard"
	"csi/internal/guard/runner"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/session"
)

// ablVariant is one parameterisation of an ablation experiment.
type ablVariant struct {
	name string
	p    core.Params
}

// Ablations quantifies the design choices DESIGN.md calls out:
//
//   - the HTTP header discount in the estimator (without it, small chunks
//     blow the Property-1 bound and no-MUX inference collapses);
//   - the SP2 simultaneous-request split points (without them, MUX groups
//     grow and ambiguity rises);
//   - displayed-chunk pruning (already covered in Table 4; repeated here on
//     a single run for direct comparison).
func Ablations(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablations — contribution of individual design choices",
		Header: []string{"experiment", "variant", "ok", "groups", "sequences", "best %", "worst %"},
	}

	// --- Header discount (SH: separate audio makes small chunks common).
	// A 100 kbit/s bottom rung yields ~25-60 KB chunks, where undiscounted
	// HTTP response headers exceed the 1% Property-1 bound.
	ladder := append([]media.Rung{{Bitrate: 100_000, Width: 192, Height: 108}}, media.DefaultLadder...)
	manSH, err := media.Encode(media.EncodeConfig{
		Name: "abl-sh", Seed: 23, DurationSec: 420, ChunkDur: 5, TargetPASR: 1.5, AudioTracks: 1,
		Ladder: ladder,
	})
	if err != nil {
		return nil, err
	}
	// Low bandwidth keeps the player on the lowest track, whose chunks are
	// small enough that undiscounted response headers blow the Property-1
	// bound.
	resSH, err := session.Run(session.Config{
		Design: session.SH, Manifest: manSH,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: 2, MeanBps: 500_000, Variability: 0.3}),
		Duration:  sc.SessionSec, Seed: 2,
		Obs: sc.Obs.Child(),
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, ablRows("header-discount", manSH, resSH, []ablVariant{
		{"with discount (default)", core.Params{MediaHost: manSH.Host}},
		{"no header discount", core.Params{MediaHost: manSH.Host, MinResponseHeaderBytes: -1}},
	}, sc)...)

	// --- SP2 split points (SQ).
	resSQ, err := session.Run(session.Config{
		Design: session.SQ, Manifest: manSH,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: 4, MeanBps: 5_000_000, Variability: 0.4}),
		Duration:  sc.SessionSec, Seed: 4,
		Obs: sc.Obs.Child(),
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, ablRows("sq-split-points", manSH, resSQ, []ablVariant{
		{"SP1+SP2 (default)", core.Params{MediaHost: manSH.Host, Mux: true}},
		{"SP1 only", core.Params{MediaHost: manSH.Host, Mux: true, DisableSP2: true}},
		{"SP2 only", core.Params{MediaHost: manSH.Host, Mux: true, IdleSplitSec: 1e9}},
		{"SP1+SP2+display", core.Params{MediaHost: manSH.Host, Mux: true, Display: resSQ.Run.Display}},
	}, sc)...)
	return t, nil
}

// ablRows scores each variant as one supervised runner task; rows land in
// variant order. A task that fails outright (contained panic, cancellation)
// still yields a row so the table shape is stable.
func ablRows(exp string, man *media.Manifest, res *session.Result, variants []ablVariant, sc Scale) [][]string {
	rows := make([][]string, len(variants))
	tasks := make([]runner.Task, len(variants))
	for vi, v := range variants {
		vi, v := vi, v
		tasks[vi] = runner.Task{
			Name: fmt.Sprintf("ablation/%s/%s", exp, v.name),
			Run: func(g *guard.Ctx) error {
				p := v.p
				p.Obs = sc.Obs.Child()
				p.Guard = g
				p.Stages = sc.Stages
				p.HalfCache = sc.HalfCache
				rows[vi] = ablRow(exp, v.name, man, res, p)
				return nil
			},
		}
	}
	rres, _ := runner.Run(tasks, runnerPolicy(sc))
	for vi, r := range rres {
		if r.Err != nil {
			rows[vi] = []string{exp, variants[vi].name, "FAIL: " + truncateErr(r.Err), "-", "-", "-", "-"}
		}
	}
	return rows
}

func ablRow(exp, name string, man *media.Manifest, res *session.Result, p core.Params) []string {
	inf, err := core.Infer(man, res.Run.Trace, p)
	if err != nil {
		return []string{exp, name, "FAIL: " + truncateErr(err), "-", "-", "-", "-"}
	}
	best, worst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		return []string{exp, name, "eval: " + truncateErr(err), "-", "-", "-", "-"}
	}
	ok := "yes"
	if len(inf.Warnings) > 0 {
		// A budget-truncated or degraded inference still rows up, but
		// labelled so a bounded sweep is not mistaken for a clean one.
		ok = "partial: " + inf.Warnings[0].Code
	}
	return []string{
		exp, name, ok,
		fmt.Sprintf("%d", len(inf.Groups)),
		fmt.Sprintf("%g", inf.SequenceCount),
		pct(best), pct(worst),
	}
}

func truncateErr(err error) string {
	s := err.Error()
	if len(s) > 48 {
		s = s[:48] + "…"
	}
	return s
}
