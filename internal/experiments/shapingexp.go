package experiments

import (
	"fmt"
	"sort"

	"csi/internal/abr"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/qoe"
	"csi/internal/session"
	"csi/internal/shaping"
)

func huluManifest() (*media.Manifest, error) {
	// A 7-track ladder like the Hulu asset of §7 (T1..T7).
	ladder := []media.Rung{
		{Bitrate: 250_000, Width: 400, Height: 224},
		{Bitrate: 450_000, Width: 512, Height: 288},
		{Bitrate: 650_000, Width: 640, Height: 360},
		{Bitrate: 1_000_000, Width: 768, Height: 432},
		{Bitrate: 1_500_000, Width: 1024, Height: 576},
		{Bitrate: 2_400_000, Width: 1280, Height: 720},
		{Bitrate: 3_800_000, Width: 1920, Height: 1080},
	}
	return media.Encode(media.EncodeConfig{
		Name: "hulu-like", Seed: 777, DurationSec: 1800, ChunkDur: 5,
		TargetPASR: 1.35, Ladder: ladder,
	})
}

// Fig10 reproduces Figure 10: Hulu-like track-time distribution and data
// usage (a,b) across token rates r with N=50 KB, and (c,d) across bucket
// sizes N with r=1.5 Mbit/s, under conditions B1 and B2.
func Fig10(sc Scale) (*Table, error) {
	man, err := huluManifest()
	if err != nil {
		return nil, err
	}
	dur := sc.SessionSec
	rates := []float64{1_000_000, 1_500_000, 2_000_000, 3_000_000, 4_000_000}
	buckets := []int64{50_000, 200_000, 1_000_000, 5_000_000}

	ratePts, err := shaping.SweepRates(man, rates, 50_000, dur, 1)
	if err != nil {
		return nil, err
	}
	bktPts, err := shaping.SweepBuckets(man, 1_500_000, buckets, dur, 100)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Figure 10 — Hulu-like behaviour under token-bucket shaping",
		Header: []string{"cond", "r Mbit/s", "N KB", "low(T1-T3)%", "mid(T4-T5)%", "high(T6-T7)%", "data MB", "stalls", "switches", "via CSI"},
		Notes: []string{
			"Paper: higher r and larger N shift playback time to higher tracks and raise",
			"data usage; N=5MB roughly doubles usage vs N=50KB at r=1.5 Mbit/s.",
		},
	}
	addRow := func(p shaping.Point) {
		// Accumulate in sorted track order: float addition is not
		// associative, so map-order iteration would make the rendered
		// percentages run-dependent at the last digit.
		tracks := make([]int, 0, len(p.TrackShare))
		for tr := range p.TrackShare {
			tracks = append(tracks, tr)
		}
		sort.Ints(tracks)
		var low, mid, high float64
		for _, tr := range tracks {
			share := p.TrackShare[tr]
			switch {
			case tr <= 2:
				low += share
			case tr <= 4:
				mid += share
			default:
				high += share
			}
		}
		t.Rows = append(t.Rows, []string{
			p.Condition, f1(p.RateBps / 1e6), fmt.Sprintf("%d", p.Bucket/1000),
			pct(low), pct(mid), pct(high),
			f1(float64(p.DataBytes) / 1e6), fmt.Sprintf("%d", p.Stalls),
			fmt.Sprintf("%d", p.Switches), fmt.Sprintf("%v", p.Inferred),
		})
	}
	sort.SliceStable(ratePts, func(a, b int) bool {
		if ratePts[a].Condition != ratePts[b].Condition {
			return ratePts[a].Condition < ratePts[b].Condition
		}
		return ratePts[a].RateBps < ratePts[b].RateBps
	})
	for _, p := range ratePts {
		addRow(p)
	}
	sort.SliceStable(bktPts, func(a, b int) bool {
		if bktPts[a].Condition != bktPts[b].Condition {
			return bktPts[a].Condition < bktPts[b].Condition
		}
		return bktPts[a].Bucket < bktPts[b].Bucket
	})
	for _, p := range bktPts {
		addRow(p)
	}
	return t, nil
}

// Fig11 reproduces Figure 11's three panels as per-chunk time series:
// (a) stable 2 Mbit/s unshaped, (b) B2 with r=1.5 Mbit/s N=50 KB,
// (c) B2 with r=1.5 Mbit/s N=5 MB.
func Fig11(sc Scale) (*Table, error) {
	man, err := huluManifest()
	if err != nil {
		return nil, err
	}
	conds, err := shaping.Conditions()
	if err != nil {
		return nil, err
	}
	dur := sc.SessionSec
	panels := []struct {
		name   string
		trace  *netem.BandwidthTrace
		shaper *netem.TokenBucketConfig
	}{
		{"a:2Mbps", netem.Constant(2_000_000), nil},
		{"b:B2,N=50KB", conds["B2"], &netem.TokenBucketConfig{RateBps: 1_500_000, BucketSize: 50_000}},
		{"c:B2,N=5MB", conds["B2"], &netem.TokenBucketConfig{RateBps: 1_500_000, BucketSize: 5_000_000}},
	}
	t := &Table{
		Title:  "Figure 11 — Hulu-like time series (per video chunk, via CSI)",
		Header: []string{"panel", "t (s)", "track", "tput Mbit/s", "buffer s"},
		Notes: []string{
			"Paper: (a) converges to the track at <= half of 2 Mbit/s and shows ON-OFF",
			"after ~50 s; (c) bursts after OFF periods reach much higher instantaneous",
			"throughput than (b), ramping the player to higher tracks, with oscillation.",
		},
	}
	for _, p := range panels {
		rows, err := shaping.TimeSeries(man, p.trace, p.shaper, dur, 5)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig11 %s: %w", p.name, err)
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{
				p.name, f1(r.ReqTime), fmt.Sprintf("T%d", r.Track+1),
				f2(r.Throughput / 1e6), f1(r.BufferSec),
			})
		}
	}
	return t, nil
}

// HuluBasics reproduces the §7 characterization runs: stable bandwidths
// 1..4 Mbit/s, reporting the converged track (expected: the highest track
// with bitrate at most half the bandwidth) and the buffer ceiling.
func HuluBasics(sc Scale) (*Table, error) {
	man, err := huluManifest()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Hulu-like adaptation basics (§7)",
		Header: []string{"bandwidth Mbit/s", "converged track", "track bitrate Mbit/s", "<= bw/2", "max buffer s"},
		Notes:  []string{"Paper: Hulu converges to a track encoding at most half the bandwidth and pauses at ~145 s of buffer."},
	}
	for _, bw := range []float64{1_000_000, 2_000_000, 3_000_000, 4_000_000} {
		cfg := session.Config{
			Design: session.CH, Manifest: man,
			Bandwidth: netem.Constant(bw),
			Duration:  sc.SessionSec, Seed: 3,
			Algo:            abr.HuluHalf{},
			MaxBufferSec:    145,
			ResumeBufferSec: 145,
			StartupChunks:   3,
			Obs:             sc.Obs.Child(),
		}
		res, err := session.Run(cfg)
		if err != nil {
			return nil, err
		}
		// Converged track: the mode of the last half of the session.
		counts := map[int]int{}
		for _, tr := range res.Run.Truth {
			if tr.Kind == media.Video && tr.ReqTime > sc.SessionSec/2 {
				counts[tr.Ref.Track]++
			}
		}
		// Pick the mode over sorted tracks so ties break toward the
		// lowest track instead of map iteration order.
		tracks := make([]int, 0, len(counts))
		for trk := range counts {
			tracks = append(tracks, trk)
		}
		sort.Ints(tracks)
		conv, best := -1, 0
		for _, trk := range tracks {
			if c := counts[trk]; c > best {
				conv, best = trk, c
			}
		}
		// Max buffer from QoE reconstruction of ground truth.
		var chunks []qoe.Chunk
		for _, tr := range res.Run.Truth {
			chunks = append(chunks, qoe.Chunk{
				ReqTime: tr.ReqTime, DoneTime: tr.DoneTime,
				Track: tr.Ref.Track, Index: tr.Ref.Index, Size: tr.Size,
			})
		}
		rep, err := qoe.Analyze(chunks, qoe.Config{ChunkDur: man.ChunkDur, Horizon: sc.SessionSec})
		if err != nil {
			return nil, err
		}
		maxBuf := 0.0
		for _, s := range rep.Buffer {
			if s.Buffer > maxBuf {
				maxBuf = s.Buffer
			}
		}
		br := float64(0)
		half := "n/a"
		if conv >= 0 {
			br = float64(man.Tracks[conv].Bitrate)
			half = fmt.Sprintf("%v", br <= bw/2)
		}
		t.Rows = append(t.Rows, []string{
			f1(bw / 1e6), fmt.Sprintf("T%d", conv+1), f2(br / 1e6), half, f1(maxBuf),
		})
	}
	return t, nil
}
