package experiments

import (
	"errors"
	"fmt"
	"sync"

	"csi/internal/core"
	"csi/internal/guard"
	"csi/internal/guard/runner"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/session"
	"csi/internal/stats"
)

// runOutcome is the accuracy of one evaluated run.
type runOutcome struct {
	best, worst           float64
	bestDisp, worstDisp   float64
	groups                []int // SQ: request count per traffic group
	uniqueSeq, uniqueDisp bool
	err                   error
}

// evalRuns executes the Table 4 protocol for one design: stream multiple
// videos over multiple bandwidth traces, infer with CSI, and score best and
// worst candidate sequences against ground truth, with and without
// displayed-chunk information.
func evalRuns(design session.Design, sc Scale) ([]runOutcome, error) {
	audio := 0
	if design.Separate() {
		audio = 1
	}
	var videos []*media.Manifest
	nv := sc.Videos
	if nv > 5 {
		nv = 5 // the paper evaluates 5 uploaded videos
	}
	for v := 0; v < nv; v++ {
		man, err := media.Encode(media.EncodeConfig{
			Name: fmt.Sprintf("eval-%d", v), Seed: 900 + int64(v)*13,
			DurationSec: 780 + 300*float64(v), ChunkDur: 5,
			TargetPASR:  1.3 + 0.2*float64(v%4),
			AudioTracks: audio,
		})
		if err != nil {
			return nil, err
		}
		videos = append(videos, man)
	}
	traces := netem.CellularTraceSet(77, sc.Traces)

	type job struct {
		man  *media.Manifest
		bw   *netem.BandwidthTrace
		seed int64
	}
	var jobs []job
	for vi, man := range videos {
		for ti, bw := range traces {
			for rep := 0; rep < sc.Reps; rep++ {
				jobs = append(jobs, job{man: man, bw: bw, seed: int64(vi*1000 + ti*10 + rep)})
			}
		}
	}

	// Runs are independent simulations supervised by the guard runner: each
	// task streams one session and infers it under a per-task guard, so a
	// stuck or panicking run is bounded and contained instead of wedging the
	// whole sweep. A sentinel outcome marks skipped runs (trace too slow to
	// stream, or a task that could not complete).
	results := make([]runOutcome, len(jobs))
	skipped := make([]bool, len(jobs))
	tasks := make([]runner.Task, len(jobs))
	for ji, jb := range jobs {
		ji, jb := ji, jb
		tasks[ji] = runner.Task{
			Name: fmt.Sprintf("%v/seed-%d", design, jb.seed),
			Run: func(g *guard.Ctx) error {
				res, err := session.Run(session.Config{
					Design: design, Manifest: jb.man, Bandwidth: jb.bw,
					Duration: sc.SessionSec, Seed: jb.seed,
					Obs: sc.Obs.Child(),
				})
				if err != nil {
					return fmt.Errorf("experiments: run seed %d: %w", jb.seed, err)
				}
				if len(res.Run.Truth) < 5 {
					skipped[ji] = true // trace too slow to stream anything meaningful
					return nil
				}
				o := runOutcome{}
				p := core.Params{
					MediaHost: jb.man.Host, Mux: design == session.SQ,
					Obs: sc.Obs.Child(), Guard: g, Stages: sc.Stages,
					HalfCache: sc.HalfCache,
				}
				inf, err := core.Infer(jb.man, res.Run.Trace, p)
				if err != nil {
					o.err = err
					o.best, o.worst = 0, 0
				} else {
					o.best, o.worst, err = inf.AccuracyRange(res.Run.Truth)
					if err != nil {
						o.err = err
					}
					o.uniqueSeq = inf.SequenceCount == 1
					for _, g := range inf.Groups {
						o.groups = append(o.groups, len(g.ReqTimes))
					}
				}
				pd := p
				pd.Display = res.Run.Display
				infd, err := core.Infer(jb.man, res.Run.Trace, pd)
				if err == nil {
					o.bestDisp, o.worstDisp, _ = infd.AccuracyRange(res.Run.Truth)
					o.uniqueDisp = infd.SequenceCount == 1
				}
				// An interrupt-cancelled run is a drain artifact, not a
				// scored outcome; budget-exhausted runs DO count — their
				// zero rows are what an operator with that budget gets.
				if g.Code() == guard.CodeCancelled {
					skipped[ji] = true
					return nil
				}
				results[ji] = o
				return nil
			},
		}
	}
	rres, _ := runner.Run(tasks, runnerPolicy(sc))
	var firstErr error
	for ji, r := range rres {
		if r.Err == nil {
			continue
		}
		skipped[ji] = true
		// Contained failures (panics, cancellations, quarantines) degrade to
		// skipped runs so sibling sessions still count; anything else is a
		// hard error for the sweep.
		if r.Panicked || r.Cancelled || r.Quarantined {
			continue
		}
		var pe *guard.PanicError
		if errors.As(r.Err, &pe) {
			continue
		}
		if firstErr == nil {
			firstErr = r.Err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	var out []runOutcome
	for ji := range results {
		if !skipped[ji] {
			out = append(out, results[ji])
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no usable runs for %v", design)
	}
	return out, nil
}

// evalCache memoizes evalRuns per (design, scale) so that Groups and Table4
// share the expensive SQ evaluations within one process.
var (
	evalCacheMu sync.Mutex
	evalCache   = map[string][]runOutcome{}
)

func evalRunsCached(design session.Design, sc Scale) ([]runOutcome, error) {
	key := fmt.Sprintf("%v/%+v", design, sc)
	evalCacheMu.Lock()
	if outs, ok := evalCache[key]; ok {
		evalCacheMu.Unlock()
		return outs, nil
	}
	evalCacheMu.Unlock()
	outs, err := evalRuns(design, sc)
	if err != nil {
		return nil, err
	}
	evalCacheMu.Lock()
	evalCache[key] = outs
	evalCacheMu.Unlock()
	return outs, nil
}

// Table4 reproduces Table 4 for the given designs: the fraction of runs
// whose best/worst inferred sequence matches ground truth fully, exceeds
// 95% accuracy, and the 5th percentile of accuracy — with and without
// displayed-chunk side information.
func Table4(sc Scale, designs ...session.Design) (*Table, error) {
	if len(designs) == 0 {
		designs = []session.Design{session.CH, session.SH, session.CQ, session.SQ}
	}
	t := &Table{
		Title: "Table 4 — inference accuracy per ABR design",
		Header: []string{
			"case", "runs",
			"best:100%", "best:>95%", "best:5pct",
			"worst:100%", "worst:>95%", "worst:5pct",
			"disp worst:100%", "disp worst:>95%", "disp worst:5pct",
			"unique", "disp unique",
		},
		Notes: []string{
			"Columns are % of runs (5pct columns: 5th percentile of accuracy, in %).",
			"Paper: best output contains ground truth in ~100% of runs for all designs;",
			"SQ worst-case collapses without display info and recovers with it.",
		},
	}
	for _, d := range designs {
		outs, err := evalRunsCached(d, sc)
		if err != nil {
			return nil, err
		}
		var best, worst, worstD []float64
		uniq, uniqD, failed := 0, 0, 0
		for _, o := range outs {
			if o.err != nil {
				failed++
			}
			best = append(best, o.best)
			worst = append(worst, o.worst)
			worstD = append(worstD, o.worstDisp)
			if o.uniqueSeq {
				uniq++
			}
			if o.uniqueDisp {
				uniqD++
			}
		}
		n := float64(len(outs))
		t.Rows = append(t.Rows, []string{
			d.String(), fmt.Sprintf("%d", len(outs)),
			pct(stats.FractionAtLeast(best, 0.9999)), pct(stats.FractionAbove(best, 0.95)), pct(stats.Percentile(best, 5)),
			pct(stats.FractionAtLeast(worst, 0.9999)), pct(stats.FractionAbove(worst, 0.95)), pct(stats.Percentile(worst, 5)),
			pct(stats.FractionAtLeast(worstD, 0.9999)), pct(stats.FractionAbove(worstD, 0.95)), pct(stats.Percentile(worstD, 5)),
			pct(float64(uniq) / n), pct(float64(uniqD) / n),
		})
		if failed > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%v: %d/%d runs failed inference (scored 0)", d, failed, len(outs)))
		}
	}
	return t, nil
}

// Groups reproduces the §5.3.2 statistic: the distribution of SQ traffic
// group sizes (the paper reports 99.7% of groups hold <= 10 requests).
func Groups(sc Scale) (*Table, error) {
	outs, err := evalRunsCached(session.SQ, sc)
	if err != nil {
		return nil, err
	}
	var sizes []float64
	le10 := 0
	total := 0
	for _, o := range outs {
		for _, g := range o.groups {
			sizes = append(sizes, float64(g))
			total++
			if g <= 10 {
				le10++
			}
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("experiments: no SQ groups observed")
	}
	s := stats.Summarize(sizes)
	t := &Table{
		Title:  "Traffic group sizes under transport multiplexing (§5.3.2)",
		Header: []string{"groups", "median", "p95", "max", "% <= 10 requests"},
		Rows: [][]string{{
			fmt.Sprintf("%d", total), f1(s.Median), f1(s.P95), f1(s.Max),
			pct(float64(le10) / float64(total)),
		}},
		Notes: []string{"Paper: 99.7% of groups contain at most 10 requests."},
	}
	return t, nil
}
