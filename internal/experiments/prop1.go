package experiments

import (
	"fmt"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/packet"
	"csi/internal/quicsim"
	"csi/internal/sim"
	"csi/internal/stats"
	"csi/internal/tcpsim"
	"csi/internal/tlssim"
	"csi/internal/webproto"
)

// Prop1 reproduces the §3.2 measurement underlying Property 1: download
// objects of 50 KB..1 MB over HTTPS and QUIC across varied network
// conditions, estimate their sizes from the captured encrypted traffic, and
// report the error distribution. The paper finds max error ~1% (HTTPS) and
// ~5% (QUIC).
func Prop1(sc Scale) (*Table, error) {
	sizes := []int64{50_000, 100_000, 250_000, 500_000, 1_000_000}
	reps := 20 * sc.Reps
	type cell struct{ errs []float64 }
	res := map[string]*cell{"HTTPS": {}, "QUIC": {}}

	run := 0
	for _, proto := range []string{"HTTPS", "QUIC"} {
		for _, size := range sizes {
			for rep := 0; rep < reps; rep++ {
				run++
				est, err := downloadOnce(proto, size, int64(run))
				if err != nil {
					return nil, fmt.Errorf("experiments: prop1 %s size %d: %w", proto, size, err)
				}
				res[proto].errs = append(res[proto].errs, float64(est-size)/float64(size))
			}
		}
	}
	t := &Table{
		Title:  "Property 1 — chunk size estimation error (§3.2)",
		Header: []string{"protocol", "downloads", "min err %", "median %", "p95 %", "max err %"},
		Notes: []string{
			"Paper: max ~1% for HTTPS (TLS overheads), ~5% for QUIC (retransmissions +",
			"in-payload signaling). Negative errors would violate Property 1's lower bound.",
		},
	}
	for _, proto := range []string{"HTTPS", "QUIC"} {
		s := stats.Summarize(res[proto].errs)
		t.Rows = append(t.Rows, []string{
			proto, fmt.Sprintf("%d", s.N),
			f3(100 * s.Min), f3(100 * s.Median), f3(100 * s.P95), f3(100 * s.Max),
		})
		if s.Min < 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: %s under-estimated a download (%.3f%%)", proto, 100*s.Min))
		}
	}
	return t, nil
}

// downloadOnce performs one object download over an emulated lossy path and
// returns the size estimated from the capture.
func downloadOnce(proto string, size int64, seed int64) (int64, error) {
	eng := sim.New()
	eng.SetEventLimit(10_000_000)
	rng := stats.NewRand(seed * 7919)
	// Varied "mobile network environments": bandwidth, RTT and loss drawn
	// per run.
	bw := 2_000_000 + rng.Float64()*18_000_000
	rtt := 0.02 + rng.Float64()*0.1
	// Radio loss up to ~1%: beyond that, retransmissions on a small (50 KB)
	// object can exceed the 5% bound on unlucky draws — a regime the
	// paper's measurements evidently did not include, since they report a
	// 5% maximum.
	loss := rng.Float64() * 0.012

	trace := capture.NewTrace()
	down := netem.NewLink(eng, netem.LinkConfig{
		Trace: netem.Constant(bw), Delay: rtt / 2, LossProb: loss, Seed: seed,
	}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
	down.SetTap(trace.Tap())
	up := netem.NewLink(eng, netem.LinkConfig{
		Trace: netem.Constant(20_000_000), Delay: rtt / 2,
	}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
	up.SetTap(trace.Tap())

	// One-chunk manifest so the HTTP layer can serve the object.
	man := &media.Manifest{
		Name: "obj", Host: "obj.example.com", ChunkDur: 5,
		Tracks: []media.Track{{ID: 0, Kind: media.Video, Bitrate: 1, Sizes: []int64{size, size}}},
	}
	done := false
	switch proto {
	case "HTTPS":
		conn := tcpsim.NewConn(eng, tcpsim.Config{ConnID: 1}, up, down)
		sess := tlssim.NewSession(conn)
		f := webproto.NewHTTPSFetcher(sess, man, seed)
		conn.Start(func(now float64) {
			sess.Handshake(man.Host, func(now float64) {
				f.Fetch(media.ChunkRef{Track: 0, Index: 0}, func(now float64) { done = true })
			})
		})
	case "QUIC":
		conn := quicsim.NewConn(eng, quicsim.Config{ConnID: 1}, up, down)
		f := webproto.NewQUICFetcher(conn, man, seed)
		conn.Start(man.Host, func(now float64) {
			f.Fetch(media.ChunkRef{Track: 0, Index: 0}, func(now float64) { done = true })
		})
	}
	eng.Run()
	if !done {
		return 0, fmt.Errorf("download incomplete (bw=%.0f loss=%.3f)", bw, loss)
	}
	est, err := core.Estimate(trace, core.Params{MediaHost: man.Host})
	if err != nil {
		return 0, err
	}
	if len(est.Requests) != 1 {
		return 0, fmt.Errorf("detected %d requests, want 1", len(est.Requests))
	}
	return est.Requests[0].Est, nil
}
