package experiments

import (
	"fmt"
	"time"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/session"
)

// Timing reproduces §6.2.3: wall-clock time of the CSI analysis itself on a
// 10-minute session, for a design without transport multiplexing (paper: a
// few seconds) and with it (paper: up to around a minute). Only core.Infer
// is timed; the streaming session is setup.
func Timing(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Analysis time (§6.2.3) — 10-minute sessions",
		Header: []string{"design", "requests/groups", "infer time s", "paper"},
	}
	for _, d := range []session.Design{session.SH, session.SQ} {
		audio := 0
		if d.Separate() {
			audio = 1
		}
		man, err := media.Encode(media.EncodeConfig{
			Name: "timing", Seed: 55, DurationSec: 900, ChunkDur: 5,
			TargetPASR: 1.5, AudioTracks: audio,
		})
		if err != nil {
			return nil, err
		}
		res, err := session.Run(session.Config{
			Design:   d,
			Manifest: man,
			Bandwidth: netem.GenerateCellular(netem.CellularConfig{
				Seed: 3, MeanBps: 6_000_000, Variability: 0.4,
			}),
			Duration: 600,
			Seed:     3,
		})
		if err != nil {
			return nil, err
		}
		p := core.Params{MediaHost: man.Host, Mux: d == session.SQ, HalfCache: sc.HalfCache}
		start := time.Now()
		inf, err := core.Infer(man, res.Run.Trace, p)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("experiments: timing %v: %w", d, err)
		}
		units := fmt.Sprintf("%d requests", len(inf.Requests))
		paper := "a few seconds"
		if inf.Mux {
			units = fmt.Sprintf("%d groups", len(inf.Groups))
			paper = "up to ~a minute"
		}
		t.Rows = append(t.Rows, []string{d.String(), units, f2(elapsed), paper})
	}
	return t, nil
}
