package experiments

import (
	"fmt"
	"testing"

	"csi/internal/session"
)

func TestFaultSweepSmoke(t *testing.T) {
	sc := Quick
	sc.Videos = 1
	sc.Traces = 1
	sc.SessionSec = 120
	levels := []FaultLevel{
		mustLevel("clean", ""),
		mustLevel("loss-1%", "loss=0.01,seed=3"),
	}
	tab, err := FaultSweep(sc, levels, session.SH)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want one per level", len(tab.Rows))
	}
	// The clean level is the exact baseline: perfect accuracy, full
	// confidence, no degradation markers.
	clean := tab.Rows[0]
	var best, conf float64
	if _, err := fmt.Sscan(clean[4], &best); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(clean[6], &conf); err != nil {
		t.Fatal(err)
	}
	if best < 99 {
		t.Errorf("clean best accuracy = %g%%, want ~100%%", best)
	}
	if conf != 1 {
		t.Errorf("clean mean confidence = %g, want 1", conf)
	}
	if clean[8] != "0.0" {
		t.Errorf("clean zero-inference rate = %s, want 0.0", clean[8])
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	sc := Quick
	sc.Videos = 1
	sc.Traces = 1
	sc.SessionSec = 90
	levels := []FaultLevel{mustLevel("loss", "loss=0.02,seed=5")}
	a, err := FaultSweep(sc, levels, session.SH)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(sc, levels, session.SH)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("sweep not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestDefaultFaultLevels(t *testing.T) {
	levels := DefaultFaultLevels()
	if len(levels) != 8 {
		t.Fatalf("levels = %d, want 8", len(levels))
	}
	if levels[0].Spec.Enabled() {
		t.Fatal("first level must be the clean baseline")
	}
	for _, l := range levels[1:] {
		if !l.Spec.Enabled() {
			t.Errorf("level %s has a no-op spec", l.Name)
		}
	}
}
