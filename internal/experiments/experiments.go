// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns a structured result with a
// text renderer; cmd/csi-paper prints them and the repository benchmarks
// execute them at reduced scale.
package experiments

import (
	"fmt"
	"strings"

	"csi/internal/core"
	"csi/internal/guard/runner"
	"csi/internal/obs"
)

// Scale trades fidelity for runtime. Full approximates the paper's scale
// (within simulation reason); Quick keeps CI and benchmarks fast.
type Scale struct {
	Videos      int     // videos per service/profile
	Traces      int     // bandwidth traces
	Reps        int     // repetitions per combination
	SessionSec  float64 // streaming duration per run
	Samples     int     // sequence samples for uniqueness estimation
	MaxVideoSec float64 // cap on analyzed video duration

	// Obs, when non-nil, instruments the sessions and inference runs the
	// drivers execute (cmd/csi-paper wires it from -trace-out/-metrics).
	// Drivers hand each run a Child tracer, so metrics aggregate across
	// runs while clocks stay per-session; record interleaving across the
	// concurrent evaluation goroutines follows scheduling, so — unlike the
	// single-session csi-run/csi-analyze paths — csi-paper traces are not
	// byte-deterministic. Timing stays uninstrumented: it measures real
	// inference latency. Obs is ignored by the Scale-keyed eval cache only
	// in the sense that it rides along in the key; pass the same tracer
	// for a whole csi-paper invocation.
	Obs *obs.Tracer

	// Stages, when non-nil, receives wall-clock per-stage core.Infer
	// timings (estimate/candidates/dp) for live observation. The only
	// shipped implementation is the -serve ops plane's, which keeps the
	// durations in its own registry; Stages never influences any result.
	Stages obs.StageTimer

	// HalfCache, when non-nil, shares truth-free MUX half enumerations
	// across every inference of the sweep (and, being process-scoped,
	// across sweeps). See core.Params.HalfCache; a warm cache changes
	// speed and allocations, never a result.
	HalfCache *core.HalfCache

	// WorkBudget, when positive, bounds each evaluated run's inference by a
	// deterministic step budget (see guard.Ctx). Exhausted runs degrade to
	// partial inferences carrying a deadline_exceeded warning and score
	// accordingly instead of stalling the sweep.
	WorkBudget int64
	// DeadlineSec, when positive, adds a wall-clock deadline per run. It is
	// a liveness backstop, not a determinism mechanism: which run trips it
	// depends on machine speed.
	DeadlineSec float64
	// Retries bounds re-attempts of failed runs (panics and cancellations
	// are never retried). Backoff is deterministically seeded per task.
	Retries int
	// QuarantineAfter, when positive, skips a (video, trace) task key after
	// that many consecutive failures, so one poisoned input cannot consume
	// the whole retry budget of a sweep.
	QuarantineAfter int
	// Interrupt, when non-nil, requests a graceful drain when closed:
	// in-flight runs are cancelled via their guards and pending tasks are
	// skipped. cmd/csi-paper wires it to SIGINT.
	Interrupt <-chan struct{}
}

// runnerPolicy maps a Scale onto the supervised runner policy every
// experiment driver executes its per-run tasks under.
func runnerPolicy(sc Scale) runner.Policy {
	return runner.Policy{
		WorkBudget:      sc.WorkBudget,
		DeadlineSec:     sc.DeadlineSec,
		Retries:         sc.Retries,
		QuarantineAfter: sc.QuarantineAfter,
		Interrupt:       sc.Interrupt,
		Obs:             sc.Obs,
	}
}

// Full is the EXPERIMENTS.md scale. The paper streams 10-minute sessions
// over 30 traces with 5 repetitions on a testbed of real devices; a
// single-core simulation budget calls for 5-minute sessions over 5 traces
// (still ~125 runs across the four designs). Session length mainly scales
// the number of ON-OFF cycles, not the per-cycle behaviour CSI analyzes.
var Full = Scale{Videos: 12, Traces: 5, Reps: 1, SessionSec: 300, Samples: 4000, MaxVideoSec: 1800}

// Quick keeps tests and benchmarks snappy.
var Quick = Scale{Videos: 4, Traces: 3, Reps: 1, SessionSec: 150, Samples: 1500, MaxVideoSec: 650}

// Table is a generic renderable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f", 100*v) }
