package experiments

import (
	"fmt"

	"csi/internal/media"
	"csi/internal/stats"
	"csi/internal/uniq"
)

// Fig4 reproduces Figure 4: the per-track chunk sizes of one high-PASR
// video (the paper plots a YouTube video with PASR 2.6). Returned as a table
// of (index, size per track); plotting is the caller's business.
func Fig4() (*Table, error) {
	man, err := media.Encode(media.EncodeConfig{
		Name: "fig4", Seed: 264, DurationSec: 360, ChunkDur: 5, TargetPASR: 2.6,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 4 — chunk sizes of a PASR-2.6 video (bytes)",
		Header: []string{"index"},
	}
	vts := man.VideoTracks()
	for i := range vts {
		t.Header = append(t.Header, fmt.Sprintf("track%d", i+1))
	}
	for ci := 0; ci < man.NumVideoChunks(); ci++ {
		row := []string{fmt.Sprintf("%d", ci)}
		for _, ti := range vts {
			row = append(row, fmt.Sprintf("%d", man.Tracks[ti].Sizes[ci]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("median track PASR: %.2f", man.MedianPASR()))
	return t, nil
}

// Fig5 reproduces Figure 5: the fraction of unique chunk sequences vs
// sequence length, for encodings with PASR 1.1..2.0, at k=1% and k=5%.
func Fig5(sc Scale) (*Table, error) {
	lengths := []int{1, 2, 3, 4, 5, 6, 7, 8}
	t := &Table{
		Title:  "Figure 5 — % unique sequences vs length (BBB-style encodes)",
		Header: []string{"PASR", "k%"},
		Notes: []string{
			"Paper landmarks: PASR 1.1 => 99.9% of 3-chunk sequences unique at k=1%,",
			"92.6% of 6-chunk sequences unique at k=5%.",
		},
	}
	for _, L := range lengths {
		t.Header = append(t.Header, fmt.Sprintf("L=%d", L))
	}
	for pasr := 1.1; pasr < 2.05; pasr += 0.1 {
		man, err := media.Encode(media.EncodeConfig{
			Name: "bbb", Seed: 1007, DurationSec: 634, ChunkDur: 5, TargetPASR: pasr,
		})
		if err != nil {
			return nil, err
		}
		for _, k := range []float64{0.01, 0.05} {
			a, err := uniq.New(man, k)
			if err != nil {
				return nil, err
			}
			row := []string{f1(pasr), f1(100 * k)}
			rng := stats.NewRand(int64(pasr*100) + int64(k*1000))
			for _, L := range lengths {
				f, err := a.UniqueFraction(L, sc.Samples, rng)
				if err != nil {
					return nil, err
				}
				row = append(row, pct(f))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Table3 reproduces Table 3: per-service chunk-size variability (PASR) and
// the percentage of unique 1/3/6-chunk sequences at k=1% and k=5%, median
// and 95th percentile across the sampled catalogue.
func Table3(sc Scale) (*Table, error) {
	t := &Table{
		Title: "Table 3 — chunk size variability and unique sequences per service",
		Header: []string{
			"service", "videos", "PASR med(p95)",
			"1ch k1%", "3ch k1%", "6ch k1%",
			"1ch k5%", "3ch k5%", "6ch k5%",
		},
		Notes: []string{
			"Cells are median(p95) across videos, in % of sequences unique.",
		},
	}
	for _, svc := range media.Services {
		n := sc.Videos
		if n > svc.NumVideos {
			n = svc.NumVideos
		}
		vids, err := svc.SampleVideos(42, n, sc.MaxVideoSec)
		if err != nil {
			return nil, err
		}
		var pasr []float64
		lengths := []int{1, 3, 6}
		u := map[string][]float64{} // "L-k" -> per-video fractions
		for vi, man := range vids {
			pasr = append(pasr, man.MedianPASR())
			for _, k := range []float64{0.01, 0.05} {
				vu, err := uniq.AnalyzeVideo(man, k, lengths, sc.Samples, int64(vi))
				if err != nil {
					return nil, err
				}
				// Iterate the length list, not the result map, so the
				// per-video fraction slices build in a fixed order.
				for _, L := range lengths {
					f, ok := vu.Unique[L]
					if !ok {
						return nil, fmt.Errorf("experiments: uniqueness result missing L=%d", L)
					}
					key := fmt.Sprintf("%d-%g", L, k)
					u[key] = append(u[key], f)
				}
			}
		}
		cell := func(L int, k float64) string {
			xs := u[fmt.Sprintf("%d-%g", L, k)]
			return fmt.Sprintf("%s(%s)", pct(stats.Median(xs)), pct(stats.Percentile(xs, 95)))
		}
		ps := stats.Summarize(pasr)
		t.Rows = append(t.Rows, []string{
			svc.Name, fmt.Sprintf("%d", len(vids)),
			fmt.Sprintf("%s(%s)", f2(ps.Median), f2(ps.P95)),
			cell(1, 0.01), cell(3, 0.01), cell(6, 0.01),
			cell(1, 0.05), cell(3, 0.05), cell(6, 0.05),
		})
	}
	return t, nil
}
