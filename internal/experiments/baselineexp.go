package experiments

import (
	"fmt"

	"csi/internal/baseline"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/session"
	"csi/internal/stats"
)

// Baseline compares CSI against the naive nearest-mean-size identifier
// (eMIMIC-style bitrate matching, §8) across PASR levels: the naive
// approach collapses as VBR variance grows while CSI stays exact.
func Baseline(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Baseline — naive mean-size matching vs CSI",
		Header: []string{"PASR", "runs", "naive full %", "naive track %", "CSI best %", "CSI worst %"},
		Notes: []string{
			"naive full: media+track+index accuracy of nearest-mean assignment;",
			"naive track: track-only accuracy. CSI columns from the contiguity graph.",
		},
	}
	for _, pasr := range []float64{1.1, 1.4, 1.7, 2.0} {
		man, err := media.Encode(media.EncodeConfig{
			Name: fmt.Sprintf("base-%.1f", pasr), Seed: 500 + int64(pasr*10),
			DurationSec: 420, ChunkDur: 5, TargetPASR: pasr,
		})
		if err != nil {
			return nil, err
		}
		var naive, naiveTrack, csiBest, csiWorst []float64
		for ti := 0; ti < sc.Traces; ti++ {
			res, err := session.Run(session.Config{
				Design: session.CH, Manifest: man,
				Bandwidth: netem.GenerateCellular(netem.CellularConfig{
					Seed: int64(ti) + 40, MeanBps: 5_000_000, Variability: 0.4,
				}),
				Duration: sc.SessionSec, Seed: int64(ti),
				Obs: sc.Obs.Child(),
			})
			if err != nil {
				return nil, err
			}
			p := core.Params{MediaHost: man.Host, Obs: sc.Obs.Child(), Stages: sc.Stages}
			est, err := core.Estimate(res.Run.Trace, p)
			if err != nil {
				return nil, err
			}
			assigns, err := baseline.NearestMean(man, est)
			if err != nil {
				return nil, err
			}
			if acc, err := baseline.Accuracy(assigns, res.Run.Truth); err == nil {
				naive = append(naive, acc)
			}
			if acc, err := baseline.TrackAccuracy(assigns, res.Run.Truth); err == nil {
				naiveTrack = append(naiveTrack, acc)
			}
			inf, err := core.Infer(man, res.Run.Trace, p)
			if err != nil {
				return nil, err
			}
			b, w, err := inf.AccuracyRange(res.Run.Truth)
			if err != nil {
				return nil, err
			}
			csiBest = append(csiBest, b)
			csiWorst = append(csiWorst, w)
		}
		t.Rows = append(t.Rows, []string{
			f1(pasr), fmt.Sprintf("%d", len(naive)),
			pct(stats.Mean(naive)), pct(stats.Mean(naiveTrack)),
			pct(stats.Mean(csiBest)), pct(stats.Mean(csiWorst)),
		})
	}
	return t, nil
}
