package experiments

import (
	"fmt"
	"strings"
	"testing"

	"csi/internal/session"
)

func TestProp1Bounds(t *testing.T) {
	sc := Quick
	sc.Reps = 1
	tab, err := Prop1(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	for _, note := range tab.Notes {
		if strings.Contains(note, "WARNING") {
			t.Errorf("Property 1 lower bound violated: %s", note)
		}
	}
	// HTTPS max error must stay within ~1%, QUIC within ~5%.
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	checkMax := func(row []string, lim float64, label string) {
		var v float64
		if _, err := parseFloat(row[5], &v); err != nil {
			t.Fatalf("%s: bad max %q", label, row[5])
		}
		if v > lim {
			t.Errorf("%s max error %.3f%% exceeds %.1f%%", label, v, lim)
		}
	}
	checkMax(tab.Rows[0], 1.0, "HTTPS")
	checkMax(tab.Rows[1], 5.0, "QUIC")
}

func parseFloat(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

func TestFig4Shape(t *testing.T) {
	tab, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 72 {
		t.Fatalf("fig4 rows = %d, want 72 chunks", len(tab.Rows))
	}
	if len(tab.Header) != 7 {
		t.Fatalf("fig4 cols = %d, want index + 6 tracks", len(tab.Header))
	}
}

func TestFig5Monotonicity(t *testing.T) {
	sc := Quick
	tab, err := Fig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Every row: unique fraction non-decreasing in L (tolerance for
	// sampling noise).
	for _, row := range tab.Rows {
		prev := -1.0
		for _, cell := range row[2:] {
			var v float64
			if _, err := fmt.Sscan(cell, &v); err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v < prev-3 {
				t.Errorf("uniqueness not monotone in row %v", row)
			}
			prev = v
		}
	}
}

func TestTable3Runs(t *testing.T) {
	sc := Quick
	sc.Videos = 3
	sc.Samples = 600
	tab, err := Table3(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	if len(tab.Rows) != 6 {
		t.Fatalf("services = %d, want 6", len(tab.Rows))
	}
}

func TestTable4QuickCH(t *testing.T) {
	sc := Quick
	sc.Traces = 2
	tab, err := Table4(sc, session.CH)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	// Best output should contain ground truth in every quick CH run.
	var v float64
	if _, err := fmt.Sscan(tab.Rows[0][2], &v); err != nil {
		t.Fatal(err)
	}
	if v < 99 {
		t.Errorf("CH best:100%% = %.1f%%, want ~100%%", v)
	}
}

func TestHuluBasics(t *testing.T) {
	sc := Quick
	sc.SessionSec = 240
	tab, err := HuluBasics(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	for _, row := range tab.Rows {
		if row[3] == "false" {
			t.Errorf("converged track above half bandwidth: %v", row)
		}
	}
}
