package uniq

import (
	"testing"

	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/stats"
)

func encodePASR(t *testing.T, pasr float64) *media.Manifest {
	t.Helper()
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "u", Seed: 31, DurationSec: 600, ChunkDur: 5, TargetPASR: pasr,
	})
}

func TestSimilar(t *testing.T) {
	cases := []struct {
		a, b int64
		k    float64
		want bool
	}{
		{100, 100, 0, true},
		{100, 101, 0, false},
		{100, 101, 0.01, true},
		{100, 105, 0.01, false},
		{100, 105, 0.05, true},
		{1000, 1050, 0.05, true},
		{105, 100, 0.05, true}, // symmetry
		{1000, 1051, 0.05, false},
		{1000, 1051, 0.01, false},
	}
	for _, c := range cases {
		if got := Similar(c.a, c.b, c.k); got != c.want {
			t.Errorf("Similar(%d,%d,%g) = %v, want %v", c.a, c.b, c.k, got, c.want)
		}
	}
}

// Q1 of the paper: single chunks are essentially never unique, at any PASR.
func TestSingleChunksNotUnique(t *testing.T) {
	for _, pasr := range []float64{1.1, 1.5, 2.0} {
		man := encodePASR(t, pasr)
		a, err := New(man, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		f, err := a.UniqueFraction(1, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if f > 0.006 {
			t.Errorf("PASR %.1f: %.4f of single chunks unique, want essentially none", pasr, f)
		}
	}
}

// Q2: uniqueness grows rapidly with sequence length.
func TestUniquenessGrowsWithLength(t *testing.T) {
	man := encodePASR(t, 1.3)
	a, err := New(man, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(7)
	prev := -1.0
	for _, L := range []int{1, 3, 6} {
		f, err := a.UniqueFraction(L, 3000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if f < prev-0.05 {
			t.Errorf("unique fraction dropped with length: L=%d f=%.3f prev=%.3f", L, f, prev)
		}
		prev = f
	}
	if prev < 0.95 {
		t.Errorf("6-chunk unique fraction %.3f, expected near 1 at k=1%%", prev)
	}
}

// Larger k (QUIC) must not increase uniqueness.
func TestLargerKLessUnique(t *testing.T) {
	man := encodePASR(t, 1.3)
	a1, _ := New(man, 0.01)
	a5, _ := New(man, 0.05)
	f1, err := a1.UniqueFraction(3, 3000, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	f5, err := a5.UniqueFraction(3, 3000, stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if f5 > f1+0.02 {
		t.Errorf("k=5%% unique fraction %.3f > k=1%% %.3f", f5, f1)
	}
}

// Brute-force cross-check of IsUnique on a tiny hand-made manifest.
func TestIsUniqueAgainstBruteForce(t *testing.T) {
	man := &media.Manifest{
		Name: "tiny", ChunkDur: 5,
		Tracks: []media.Track{
			{ID: 0, Kind: media.Video, Bitrate: 100, Sizes: []int64{100, 200, 300, 405, 500}},
			{ID: 1, Kind: media.Video, Bitrate: 200, Sizes: []int64{101, 250, 310, 500, 700}},
		},
	}
	k := 0.02
	a, err := New(man, k)
	if err != nil {
		t.Fatal(err)
	}
	n, T, L := 5, 2, 2
	type seq struct {
		s      int
		tracks [2]int
	}
	var all []seq
	for s := 0; s+L <= n; s++ {
		for t0 := 0; t0 < T; t0++ {
			for t1 := 0; t1 < T; t1++ {
				all = append(all, seq{s, [2]int{t0, t1}})
			}
		}
	}
	size := func(q seq, m int) int64 { return man.Tracks[q.tracks[m]].Sizes[q.s+m] }
	similarSeq := func(x, y seq) bool {
		for m := 0; m < L; m++ {
			if !Similar(size(x, m), size(y, m), k) {
				return false
			}
		}
		return true
	}
	for _, x := range all {
		want := true
		for _, y := range all {
			if x == y {
				continue
			}
			if similarSeq(x, y) {
				want = false
				break
			}
		}
		got := a.IsUnique(x.s, x.tracks[:])
		if got != want {
			t.Errorf("IsUnique(start=%d tracks=%v) = %v, brute force %v", x.s, x.tracks, got, want)
		}
	}
}

func TestAnalyzeVideo(t *testing.T) {
	man := encodePASR(t, 1.5)
	vu, err := AnalyzeVideo(man, 0.01, []int{1, 3, 6}, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vu.PASR < 1.3 || vu.PASR > 1.7 {
		t.Errorf("PASR = %.2f, want ~1.5", vu.PASR)
	}
	if len(vu.Unique) != 3 {
		t.Errorf("Unique lengths = %d, want 3", len(vu.Unique))
	}
}

func TestNewValidation(t *testing.T) {
	man := encodePASR(t, 1.5)
	if _, err := New(man, -1); err == nil {
		t.Error("negative k accepted")
	}
	a, _ := New(man, 0.01)
	if _, err := a.UniqueFraction(0, 10, nil); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := a.UniqueFraction(10_000, 10, nil); err == nil {
		t.Error("oversized L accepted")
	}
}
