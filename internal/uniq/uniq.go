// Package uniq implements the fingerprintability analysis of §3.3 and §6.1:
// given a video's chunk-size ladder and a size-estimation error bound k, it
// measures what fraction of chunk sequences are *unique* — distinguishable
// from every other contiguous sequence by sizes alone.
//
// Two chunks are similar under k if their sizes could be confused given
// up-to-k relative over-estimation: S_j/(1+k) <= S_i <= (1+k)S_j. Two
// sequences are similar if all their aligned chunk pairs are; a sequence is
// unique if no other sequence is similar to it.
package uniq

import (
	"fmt"
	"math/rand"

	"csi/internal/media"
	"csi/internal/stats"
)

// Analysis precomputes the similarity structure of one video under a given
// error bound k.
type Analysis struct {
	man *media.Manifest
	k   float64
	n   int   // positions (chunks per track)
	trk []int // video track indexes
	// sim[p*T+t] is a bitset over positions q: does track t's chunk at p
	// have ANY similar chunk at position q (any track)?
	sim   []bitset
	multi []bool // multi[p*T+t]: >1 similar track at the same position p
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Similar reports whether two sizes are confusable under k (symmetric).
func Similar(a, b int64, k float64) bool {
	fa, fb := float64(a), float64(b)
	return fa <= (1+k)*fb && fb <= (1+k)*fa
}

// New builds the similarity analysis for the video tracks of man.
func New(man *media.Manifest, k float64) (*Analysis, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if k < 0 {
		return nil, fmt.Errorf("uniq: negative k")
	}
	a := &Analysis{man: man, k: k, trk: man.VideoTracks(), n: man.NumVideoChunks()}
	T := len(a.trk)
	a.sim = make([]bitset, a.n*T)
	a.multi = make([]bool, a.n*T)

	// Per position q, the sorted sizes across tracks.
	sizesAt := make([][]int64, a.n)
	for q := 0; q < a.n; q++ {
		ss := make([]int64, 0, T)
		for _, ti := range a.trk {
			ss = append(ss, man.Tracks[ti].Sizes[q])
		}
		for i := 1; i < len(ss); i++ {
			for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
				ss[j], ss[j-1] = ss[j-1], ss[j]
			}
		}
		sizesAt[q] = ss
	}
	anyIn := func(q int, lo, hi int64) bool {
		ss := sizesAt[q]
		// Binary search for the first >= lo.
		i, j := 0, len(ss)
		for i < j {
			m := (i + j) / 2
			if ss[m] < lo {
				i = m + 1
			} else {
				j = m
			}
		}
		return i < len(ss) && ss[i] <= hi
	}
	countIn := func(q int, lo, hi int64) int {
		c := 0
		for _, s := range sizesAt[q] {
			if s >= lo && s <= hi {
				c++
			}
		}
		return c
	}

	for p := 0; p < a.n; p++ {
		for t := 0; t < T; t++ {
			s := man.Tracks[a.trk[t]].Sizes[p]
			lo := int64(float64(s) / (1 + k))
			hi := int64(float64(s) * (1 + k))
			bs := newBitset(a.n)
			for q := 0; q < a.n; q++ {
				if anyIn(q, lo, hi) {
					bs.set(q)
				}
			}
			a.sim[p*T+t] = bs
			a.multi[p*T+t] = countIn(p, lo, hi) > 1
		}
	}
	return a, nil
}

// NumChunks returns the number of positions.
func (a *Analysis) NumChunks() int { return a.n }

// NumTracks returns the number of video tracks.
func (a *Analysis) NumTracks() int { return len(a.trk) }

// IsUnique reports whether the sequence starting at position start with the
// given per-position track choices (indexes into the video-track list) is
// unique among all contiguous sequences of the same length.
func (a *Analysis) IsUnique(start int, tracks []int) bool {
	L := len(tracks)
	T := len(a.trk)
	// Same-start partner differing in at least one track choice.
	for m := 0; m < L; m++ {
		if a.multi[(start+m)*T+tracks[m]] {
			return false
		}
	}
	// Partner at a different start j: similar at every aligned position.
	for j := 0; j+L <= a.n; j++ {
		if j == start {
			continue
		}
		ok := true
		for m := 0; m < L; m++ {
			if !a.sim[(start+m)*T+tracks[m]].get(j + m) {
				ok = false
				break
			}
		}
		if ok {
			return false
		}
	}
	return true
}

// UniqueFraction estimates the fraction of unique sequences of length L.
// For L == 1 (and whenever the total sequence count is small) it is exact;
// otherwise it samples uniformly at random using rng.
func (a *Analysis) UniqueFraction(L int, samples int, rng *rand.Rand) (float64, error) {
	if L < 1 || L > a.n {
		return 0, fmt.Errorf("uniq: sequence length %d out of range (1..%d)", L, a.n)
	}
	T := len(a.trk)
	starts := a.n - L + 1
	total := float64(starts)
	for i := 0; i < L; i++ {
		total *= float64(T)
		if total > 1e15 {
			break
		}
	}
	exactBudget := float64(samples)
	if total <= exactBudget || L == 1 {
		// Exact enumeration.
		unique, count := 0, 0
		tracks := make([]int, L)
		var walk func(pos, start int)
		walk = func(pos, start int) {
			if pos == L {
				count++
				if a.IsUnique(start, tracks) {
					unique++
				}
				return
			}
			for t := 0; t < T; t++ {
				tracks[pos] = t
				walk(pos+1, start)
			}
		}
		for s := 0; s < starts; s++ {
			walk(0, s)
		}
		if count == 0 {
			return 0, fmt.Errorf("uniq: no sequences")
		}
		return float64(unique) / float64(count), nil
	}
	if rng == nil {
		rng = stats.NewRand(1)
	}
	unique := 0
	tracks := make([]int, L)
	for i := 0; i < samples; i++ {
		s := rng.Intn(starts)
		for m := range tracks {
			tracks[m] = rng.Intn(T)
		}
		if a.IsUnique(s, tracks) {
			unique++
		}
	}
	return float64(unique) / float64(samples), nil
}

// VideoUniqueness bundles the per-video statistics Table 3 reports.
type VideoUniqueness struct {
	PASR   float64
	Unique map[int]float64 // sequence length -> unique fraction
}

// AnalyzeVideo computes PASR and unique fractions for the given sequence
// lengths under bound k.
func AnalyzeVideo(man *media.Manifest, k float64, lengths []int, samples int, seed int64) (*VideoUniqueness, error) {
	a, err := New(man, k)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRand(seed)
	out := &VideoUniqueness{PASR: man.MedianPASR(), Unique: map[int]float64{}}
	for _, L := range lengths {
		if L > a.n {
			continue
		}
		f, err := a.UniqueFraction(L, samples, rng)
		if err != nil {
			return nil, err
		}
		out.Unique[L] = f
	}
	return out, nil
}
