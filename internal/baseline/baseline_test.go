package baseline

import (
	"testing"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
	"csi/internal/session"
)

func TestNearestMeanVsCSI(t *testing.T) {
	man := mediatest.Encode(t, media.EncodeConfig{
		Name: "b", Seed: 77, DurationSec: 420, ChunkDur: 5, TargetPASR: 1.6,
	})
	res, err := session.Run(session.Config{
		Design: session.CH, Manifest: man,
		Bandwidth: netem.GenerateCellular(netem.CellularConfig{Seed: 5, MeanBps: 5_000_000, Variability: 0.5}),
		Duration:  180, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{MediaHost: man.Host}
	est, err := core.Estimate(res.Run.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	assigns, err := NearestMean(man, est)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Accuracy(assigns, res.Run.Truth)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := core.Infer(man, res.Run.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	_, csiWorst, err := inf.AccuracyRange(res.Run.Truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("naive=%.3f csi-worst=%.3f", naive, csiWorst)
	// With PASR 1.6, mean-size matching misidentifies the track whenever
	// the scene complexity strays from the mean; CSI's worst candidate
	// must beat the naive baseline decisively.
	if csiWorst <= naive {
		t.Errorf("CSI worst %.3f did not beat naive baseline %.3f", csiWorst, naive)
	}
	if naive > 0.9 {
		t.Errorf("naive baseline suspiciously good (%.3f); VBR variance missing?", naive)
	}
}

func TestBaselineRejectsMux(t *testing.T) {
	if _, err := NearestMean(nil, &core.Estimation{Mux: true}); err == nil {
		t.Fatal("MUX estimation accepted")
	}
}

func TestAccuracyValidation(t *testing.T) {
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("empty run accepted")
	}
	if _, err := Accuracy(make([]Assignment, 2), nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
