// Package baseline implements naive inference baselines that CSI is
// compared against. The paper argues (§8) that existing traffic-analysis
// and QoE-estimation approaches cannot identify chunk sequences; these
// baselines make that argument measurable.
//
// NearestMean assigns each detected request the track whose MEAN chunk size
// is closest to the estimated size — the "bitrate matching" assumption of
// eMIMIC-style estimators — and numbers chunks sequentially from zero. It
// uses neither Property 1's per-chunk sizes nor Property 2's contiguity
// graph, so it degrades exactly where VBR variance and mid-video starts
// appear.
package baseline

import (
	"fmt"
	"math"

	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
)

// Assignment mirrors core.Assignment for the baseline output.
type Assignment struct {
	Audio bool
	Track int
	Index int
}

// NearestMean runs the baseline on Step-1 output (it shares CSI's request
// detection, so the comparison isolates the identification step).
func NearestMean(man *media.Manifest, est *core.Estimation) ([]Assignment, error) {
	if est.Mux {
		return nil, fmt.Errorf("baseline: transport-multiplexed traffic not supported (no per-request sizes)")
	}
	type trackMean struct {
		track int
		mean  float64
		audio bool
	}
	var means []trackMean
	for ti := range man.Tracks {
		tr := &man.Tracks[ti]
		means = append(means, trackMean{track: ti, mean: tr.MeanSize(), audio: tr.Kind == media.Audio})
	}
	out := make([]Assignment, 0, len(est.Requests))
	videoIdx := 0
	for _, r := range est.Requests {
		bestI, bestD := 0, math.Inf(1)
		for i, m := range means {
			d := math.Abs(float64(r.Est) - m.mean)
			if d < bestD {
				bestI, bestD = i, d
			}
		}
		m := means[bestI]
		a := Assignment{Audio: m.audio, Track: m.track}
		if !m.audio {
			a.Index = videoIdx
			videoIdx++
		}
		out = append(out, a)
	}
	return out, nil
}

// Accuracy scores baseline assignments against ground truth with the same
// per-request criterion as CSI's evaluation: media type, track and (for
// video) playback index must all match.
func Accuracy(assignments []Assignment, truth []capture.TruthRecord) (float64, error) {
	if len(assignments) != len(truth) {
		return 0, fmt.Errorf("baseline: %d assignments vs %d truth records", len(assignments), len(truth))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("baseline: empty run")
	}
	correct := 0
	for i, a := range assignments {
		tr := truth[i]
		if a.Audio {
			if tr.Kind == media.Audio && tr.Ref.Track == a.Track {
				correct++
			}
			continue
		}
		if tr.Kind == media.Video && tr.Ref.Track == a.Track && tr.Ref.Index == a.Index {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}

// TrackAccuracy scores only the track identification (ignoring indexes),
// the weaker claim naive approaches can sometimes support.
func TrackAccuracy(assignments []Assignment, truth []capture.TruthRecord) (float64, error) {
	if len(assignments) != len(truth) {
		return 0, fmt.Errorf("baseline: %d assignments vs %d truth records", len(assignments), len(truth))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("baseline: empty run")
	}
	correct := 0
	for i, a := range assignments {
		if truth[i].Ref.Track == a.Track {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}
