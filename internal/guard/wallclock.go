package guard

import "time"

// WallClock returns a monotonic seconds-scale clock for WithDeadline. It
// is the guard layer's single wall-clock site, allowlisted in
// .csi-vet.conf: nothing reads it unless a production caller explicitly
// arms a wall-clock deadline (the -deadline flags in cmd/), so every
// golden and test path stays deterministic.
func WallClock() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}
