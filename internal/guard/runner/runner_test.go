package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csi/internal/guard"
	"csi/internal/obs"
	"csi/internal/testleak"
)

func noSleep(time.Duration) {}

func TestRunOrderAndStats(t *testing.T) {
	testleak.Check(t)
	var order []string
	var mu sync.Mutex
	tasks := make([]Task, 10)
	for i := range tasks {
		name := fmt.Sprintf("t%d", i)
		tasks[i] = Task{Name: name, Run: func(*guard.Ctx) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}}
	}
	res, st := Run(tasks, Policy{Workers: 4, Sleep: noSleep})
	if len(res) != 10 || len(order) != 10 {
		t.Fatalf("ran %d tasks, results %d", len(order), len(res))
	}
	for i, r := range res {
		if r.Name != fmt.Sprintf("t%d", i) || r.Err != nil || r.Attempts != 1 {
			t.Fatalf("result[%d] = %+v", i, r)
		}
	}
	if st.Completed != 10 || st.Failed != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanicContainedSiblingsComplete(t *testing.T) {
	testleak.Check(t)
	var completed atomic.Int64
	tasks := []Task{
		{Name: "ok-1", Run: func(*guard.Ctx) error { completed.Add(1); return nil }},
		{Name: "boom", Run: func(*guard.Ctx) error { panic("poisoned session") }},
		{Name: "ok-2", Run: func(*guard.Ctx) error { completed.Add(1); return nil }},
	}
	tr := obs.New(nil, obs.NewCollector())
	res, st := Run(tasks, Policy{Workers: 1, Retries: 3, Sleep: noSleep, Obs: tr})
	if completed.Load() != 2 {
		t.Fatalf("siblings completed = %d, want 2", completed.Load())
	}
	var pe *guard.PanicError
	if !errors.As(res[1].Err, &pe) || pe.Value != "poisoned session" {
		t.Fatalf("res[1].Err = %v, want contained panic", res[1].Err)
	}
	if !res[1].Panicked || res[1].Attempts != 1 {
		t.Fatalf("panics must not retry: %+v", res[1])
	}
	if st.Panics != 1 || st.Completed != 2 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if v := tr.Metrics().Counter("runner.panics").Value(); v != 1 {
		t.Fatalf("runner.panics = %d", v)
	}
	// Progress counters: every task reaches a terminal count and the active
	// gauge settles back to zero.
	reg := tr.Metrics()
	if v := reg.Counter("runner.tasks_total").Value(); v != 3 {
		t.Fatalf("runner.tasks_total = %d", v)
	}
	if v := reg.Counter("runner.tasks_completed").Value(); v != 2 {
		t.Fatalf("runner.tasks_completed = %d", v)
	}
	if v := reg.Counter("runner.tasks_failed").Value(); v != 1 {
		t.Fatalf("runner.tasks_failed = %d", v)
	}
	if v, ok := reg.Gauge("runner.tasks_active").Value(); !ok || v != 0 {
		t.Fatalf("runner.tasks_active = %g/%v, want 0 after drain", v, ok)
	}
}

func TestRetryDeterministicBackoff(t *testing.T) {
	testleak.Check(t)
	run := func() (int, []time.Duration) {
		var sleeps []time.Duration
		var mu sync.Mutex
		fails := 0
		tasks := []Task{{Name: "flaky", Run: func(*guard.Ctx) error {
			mu.Lock()
			defer mu.Unlock()
			if fails < 2 {
				fails++
				return errors.New("transient")
			}
			return nil
		}}}
		res, _ := Run(tasks, Policy{Retries: 3, BackoffSeed: 42,
			Sleep: func(d time.Duration) {
				mu.Lock()
				sleeps = append(sleeps, d)
				mu.Unlock()
			}})
		if res[0].Err != nil {
			t.Fatalf("flaky task should succeed on attempt 3: %v", res[0].Err)
		}
		return res[0].Attempts, sleeps
	}
	att1, s1 := run()
	att2, s2 := run()
	if att1 != 3 || att2 != 3 {
		t.Fatalf("attempts = %d, %d; want 3", att1, att2)
	}
	if len(s1) != 2 || len(s2) != 2 {
		t.Fatalf("sleep counts = %d, %d; want 2", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("backoff not deterministic: %v vs %v", s1, s2)
		}
	}
	// Exponential envelope: delay i is in [base, 2*base).
	for i, d := range s1 {
		base := 10 * time.Millisecond << i
		if d < base || d >= 2*base {
			t.Fatalf("sleep[%d] = %v outside [%v, %v)", i, d, base, 2*base)
		}
	}
}

func TestRetriesExhausted(t *testing.T) {
	testleak.Check(t)
	tasks := []Task{{Name: "always-bad", Run: func(*guard.Ctx) error {
		return errors.New("persistent")
	}}}
	res, st := Run(tasks, Policy{Retries: 2, Sleep: noSleep})
	if res[0].Attempts != 3 || res[0].Err == nil {
		t.Fatalf("result = %+v", res[0])
	}
	if st.Retries != 2 || st.Failed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWorkBudgetStopsTask(t *testing.T) {
	testleak.Check(t)
	tasks := []Task{{Name: "heavy", Run: func(g *guard.Ctx) error {
		for g.Step(1) {
		}
		return g.Err()
	}}}
	res, _ := Run(tasks, Policy{WorkBudget: 100, Sleep: noSleep, Retries: 0})
	var se *guard.StopError
	if !errors.As(res[0].Err, &se) || se.Code != guard.CodeDeadline {
		t.Fatalf("res.Err = %v, want budget StopError", res[0].Err)
	}
}

func TestQuarantine(t *testing.T) {
	testleak.Check(t)
	var runs atomic.Int64
	mk := func(i int) Task {
		return Task{Name: fmt.Sprintf("cell/%d", i), Key: "cell", Run: func(*guard.Ctx) error {
			runs.Add(1)
			return errors.New("bad cell")
		}}
	}
	tasks := []Task{mk(0), mk(1), mk(2), mk(3)}
	tr := obs.New(nil, obs.NewCollector())
	res, st := Run(tasks, Policy{Workers: 1, QuarantineAfter: 2, Sleep: noSleep, Obs: tr})
	if runs.Load() != 2 {
		t.Fatalf("quarantined key still ran %d times, want 2", runs.Load())
	}
	if !res[2].Quarantined || !res[3].Quarantined {
		t.Fatalf("tail tasks not quarantined: %+v, %+v", res[2], res[3])
	}
	if !errors.Is(res[2].Err, ErrQuarantined) {
		t.Fatalf("res[2].Err = %v", res[2].Err)
	}
	if st.Quarantined != 2 || st.Failed != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if v := tr.Metrics().Counter("runner.quarantines").Value(); v != 2 {
		t.Fatalf("runner.quarantines = %d", v)
	}
}

func TestInterruptDrainCancelsMidFlight(t *testing.T) {
	testleak.Check(t)
	interrupt := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	slow := func(g *guard.Ctx) error {
		once.Do(func() { close(started) })
		// Spin until the interrupt cancels our guard; a hung task would
		// time the test out instead of draining.
		for g.OK() {
		}
		return g.Err()
	}
	tasks := []Task{
		{Name: "slow-0", Run: slow},
		{Name: "slow-1", Run: slow},
		{Name: "late", Run: func(*guard.Ctx) error { return nil }},
	}
	go func() {
		<-started
		close(interrupt)
	}()
	res, st := Run(tasks, Policy{Workers: 2, Interrupt: interrupt, Sleep: noSleep, Retries: 5})
	for _, i := range []int{0, 1} {
		if !res[i].Cancelled {
			t.Fatalf("res[%d] not cancelled: %+v", i, res[i])
		}
		if res[i].Attempts > 1 {
			t.Fatalf("cancelled task retried: %+v", res[i])
		}
	}
	// The third task either never started (ErrInterrupted) or was
	// dispatched concurrently with the interrupt and drained cancelled.
	if res[2].Err == nil {
		t.Fatalf("task after interrupt completed: %+v", res[2])
	}
	if st.Cancelled != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInterruptNeverFiredNoLeak(t *testing.T) {
	testleak.Check(t)
	interrupt := make(chan struct{}) // never closed
	tasks := []Task{{Name: "quick", Run: func(*guard.Ctx) error { return nil }}}
	res, _ := Run(tasks, Policy{Interrupt: interrupt, Sleep: noSleep})
	if res[0].Err != nil {
		t.Fatalf("res = %+v", res[0])
	}
	// testleak.Check asserts the watcher goroutine exited.
}

func TestBackoffDeterminismAcrossTasks(t *testing.T) {
	a := Backoff(7, "task-a", 0)
	b := Backoff(7, "task-a", 0)
	c := Backoff(7, "task-b", 0)
	if a != b {
		t.Fatalf("same inputs differ: %v vs %v", a, b)
	}
	if a == c {
		t.Log("jitter collision across names (allowed but unlikely)")
	}
	if a < 10*time.Millisecond || a >= 20*time.Millisecond {
		t.Fatalf("attempt-0 backoff %v outside [10ms, 20ms)", a)
	}
	if d := Backoff(7, "task-a", 20); d >= 2*640*time.Millisecond {
		t.Fatalf("capped backoff too large: %v", d)
	}
}

func TestQuarantineTracker(t *testing.T) {
	if NewQuarantine(0) != nil {
		t.Fatalf("after=0 must disable the tracker")
	}
	var nilQ *Quarantine
	if nilQ.Parked("x") || nilQ.Record("x", false) || nilQ.Keys() != nil {
		t.Fatalf("nil tracker must be inert")
	}
	q := NewQuarantine(2)
	if q.Record("a", false) {
		t.Fatalf("one failure must not park at after=2")
	}
	q.Record("a", true) // success resets the streak
	q.Record("a", false)
	if !q.Record("a", false) {
		t.Fatalf("second consecutive failure must park and report the edge")
	}
	if q.Record("a", false) {
		t.Fatalf("records on a parked key must not re-report the edge")
	}
	if !q.Parked("a") || q.Parked("b") {
		t.Fatalf("parked set wrong: %v", q.Keys())
	}
	q.Record("b", false)
	q.Record("b", false)
	if got := q.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys() = %v, want [a b]", got)
	}
}
