package runner

import (
	"sort"
	"sync"
)

// Quarantine is the consecutive-failure tracker behind Policy.QuarantineAfter,
// exported so other supervisors (the streaming monitor's per-flow solve loop)
// can share the exact semantics: a key that fails `after` times in a row is
// parked until the tracker is discarded; any success resets its streak. Safe
// for concurrent use. A nil tracker never parks and ignores records, so
// callers can thread an optional policy without branching.
type Quarantine struct {
	mu     sync.Mutex
	after  int
	streak map[string]int
	parked map[string]bool
}

// NewQuarantine returns a tracker parking keys after `after` consecutive
// failures; after <= 0 returns nil (disabled).
func NewQuarantine(after int) *Quarantine {
	if after <= 0 {
		return nil
	}
	return &Quarantine{after: after, streak: make(map[string]int), parked: make(map[string]bool)}
}

// Parked reports whether key is quarantined.
func (q *Quarantine) Parked(key string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.parked[key]
}

// Record notes one outcome for key and returns true when this very record
// parked it (the transition edge, for one-shot warnings). Outcomes recorded
// against an already-parked key are ignored.
func (q *Quarantine) Record(key string, ok bool) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.parked[key] {
		return false
	}
	if ok {
		q.streak[key] = 0
		return false
	}
	q.streak[key]++
	if q.streak[key] >= q.after {
		q.parked[key] = true
		return true
	}
	return false
}

// Keys returns the parked keys, sorted, for status pages.
func (q *Quarantine) Keys() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.parked))
	for k := range q.parked {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
