// Package runner is the supervised worker pool of the guard layer: it runs
// independent tasks (typically one streamed session + inference each) under
// per-task guard tokens, contains panics, retries retryable failures with
// deterministic seeded backoff, quarantines repeat offenders, and drains
// gracefully on interrupt. The experiment sweeps and cmd/csi-paper run
// every session through it, so one poisoned or pathological session
// degrades to a single failed Result instead of killing the batch.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"csi/internal/guard"
	"csi/internal/obs"
)

// Task is one unit of supervised work.
type Task struct {
	// Name identifies the task in results and obs events.
	Name string
	// Key groups tasks for quarantine counting; empty defaults to Name.
	// Sweeps use it to group all repetitions of one (design, trace) cell,
	// so a cell that keeps failing stops consuming attempts.
	Key string
	// Run does the work. The guard token carries the per-attempt budget
	// and deadline and is cancelled on interrupt; implementations should
	// pass it down to core.Infer via Params.Guard.
	Run func(*guard.Ctx) error
}

// Policy configures a Run call.
type Policy struct {
	// Workers caps concurrency; <= 0 means GOMAXPROCS.
	Workers int
	// WorkBudget is the per-attempt guard step budget; <= 0 is unmetered.
	WorkBudget int64
	// DeadlineSec arms a per-attempt wall-clock deadline; <= 0 disables.
	DeadlineSec float64
	// Clock supplies the deadline clock; nil defaults to guard.WallClock()
	// (tests inject a virtual clock instead).
	Clock func() func() float64
	// Retries is the number of re-attempts after a retryable failure.
	Retries int
	// Retryable decides whether a failure is worth another attempt. nil
	// defaults to retrying everything except contained panics and
	// cancellations (an interrupted task must not restart).
	Retryable func(error) bool
	// BackoffSeed seeds the deterministic retry backoff jitter.
	BackoffSeed uint64
	// Sleep is called between attempts; nil defaults to time.Sleep.
	// Tests inject a recorder to assert the deterministic schedule.
	Sleep func(time.Duration)
	// QuarantineAfter quarantines a Key after that many consecutive
	// failed tasks (a success resets the count); <= 0 disables. Tasks
	// hitting a quarantined key fail fast with ErrQuarantined.
	QuarantineAfter int
	// Interrupt, when closed, cancels all in-flight guards and stops
	// dispatching new tasks; already-running tasks drain to completion
	// (their guards report cancelled, so they wind down quickly).
	Interrupt <-chan struct{}
	// Obs receives runner counters and events; nil disables.
	Obs *obs.Tracer
}

// Result is the outcome of one task, in task order.
type Result struct {
	Name string
	// Err is nil on success. Contained panics surface as *guard.PanicError,
	// interrupted tasks as ErrInterrupted, quarantined ones as ErrQuarantined.
	Err error
	// Attempts is the number of times Run was invoked (0 when the task was
	// never started: quarantined, or interrupted before dispatch).
	Attempts int
	// Panicked is set when the final failure was a contained panic.
	Panicked bool
	// Cancelled is set when the task's guard was cancelled (interrupt or
	// a Cancel from inside the task).
	Cancelled bool
	// Quarantined is set when the task was skipped due to its Key's
	// quarantine.
	Quarantined bool
}

// Stats aggregates a Run's results.
type Stats struct {
	Completed   int // tasks that returned nil
	Failed      int // tasks with a non-nil Err, including the below
	Panics      int // final failures that were contained panics
	Cancelled   int // tasks stopped by cancellation/interrupt
	Quarantined int // tasks skipped by quarantine
	Retries     int // extra attempts beyond the first, summed
}

// Sentinel errors for tasks that never ran their work to a verdict.
var (
	ErrQuarantined = errors.New("runner: task quarantined")
	ErrInterrupted = errors.New("runner: interrupted before start")
)

// Run executes tasks under pol and returns per-task results in task order
// plus aggregate stats. It blocks until every dispatched task has drained,
// even on interrupt, and leaves no goroutines behind.
func Run(tasks []Task, pol Policy) ([]Result, Stats) {
	workers := pol.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	retryable := pol.Retryable
	if retryable == nil {
		retryable = func(err error) bool {
			var pe *guard.PanicError
			if errors.As(err, &pe) {
				return false
			}
			var se *guard.StopError
			return !errors.As(err, &se) || se.Code != guard.CodeCancelled
		}
	}
	sleep := pol.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	reg := pol.Obs.Metrics()
	cPanics := reg.Counter("runner.panics")
	cRetries := reg.Counter("runner.retries")
	cCancels := reg.Counter("runner.cancellations")
	cQuarantines := reg.Counter("runner.quarantines")
	// Progress metrics for in-flight observation (the live ops plane derives
	// remaining/rate/ETA from them). All increments are deterministic in
	// aggregate: tasks_completed + tasks_failed converges to tasks_total and
	// tasks_active returns to zero, whatever the worker interleaving.
	cTotal := reg.Counter("runner.tasks_total")
	cCompleted := reg.Counter("runner.tasks_completed")
	cFailed := reg.Counter("runner.tasks_failed")
	gActive := reg.Gauge("runner.tasks_active")
	cTotal.Add(int64(len(tasks)))

	var (
		mu          sync.Mutex
		active      = make(map[*guard.Ctx]bool)
		interrupted bool
	)
	quar := NewQuarantine(pol.QuarantineAfter)

	// Interrupt watcher: cancel every in-flight guard once, then exit.
	// The done channel bounds its lifetime so an unused Interrupt channel
	// does not leak the goroutine past Run.
	done := make(chan struct{})
	defer close(done)
	if pol.Interrupt != nil {
		go func() {
			//csi-vet:ignore taint -- interrupt delivery is inherently asynchronous; it only cancels guards, results still commit in submission order
			select {
			case <-pol.Interrupt:
				mu.Lock()
				interrupted = true
				for g := range active {
					g.Cancel("interrupt: draining")
				}
				mu.Unlock()
			case <-done:
			}
		}()
	}

	newGuard := func() *guard.Ctx {
		g := guard.New(pol.WorkBudget)
		if pol.DeadlineSec > 0 {
			clock := pol.Clock
			if clock == nil {
				clock = guard.WallClock
			}
			g.WithDeadline(clock(), pol.DeadlineSec)
		}
		return g
	}

	// attempt runs one task through its retry loop.
	attempt := func(t Task, res Result) Result {
		for att := 0; ; att++ {
			g := newGuard()
			mu.Lock()
			active[g] = true
			if interrupted {
				// The watcher already swept active; cancel here so a
				// task dispatched concurrently with the interrupt still
				// drains promptly.
				g.Cancel("interrupt: draining")
			}
			mu.Unlock()
			res.Attempts++
			err := contain(t.Run, g)
			mu.Lock()
			delete(active, g)
			mu.Unlock()

			res.Err = err
			var pe *guard.PanicError
			res.Panicked = errors.As(err, &pe)
			res.Cancelled = g.Code() == guard.CodeCancelled
			if res.Panicked {
				cPanics.Inc()
			}
			if res.Cancelled {
				cCancels.Inc()
			}
			if err == nil || res.Panicked || res.Cancelled ||
				att >= pol.Retries || !retryable(err) {
				return res
			}
			cRetries.Inc()
			sleep(Backoff(pol.BackoffSeed, t.Name, att))
		}
	}

	results := make([]Result, len(tasks))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range tasks {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			t := tasks[i]
			key := t.Key
			if key == "" {
				key = t.Name
			}
			res := Result{Name: t.Name}

			mu.Lock()
			skip := interrupted
			mu.Unlock()
			switch {
			case skip:
				res.Err = ErrInterrupted
				res.Cancelled = true
				cCancels.Inc()
			case quar.Parked(key):
				res.Err = ErrQuarantined
				res.Quarantined = true
				cQuarantines.Inc()
			default:
				gActive.Add(1)
				res = attempt(t, res)
				gActive.Add(-1)
			}
			if res.Err == nil {
				cCompleted.Inc()
			} else {
				cFailed.Inc()
			}

			if !res.Quarantined {
				quar.Record(key, res.Err == nil)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	var st Stats
	for _, r := range results {
		st.Retries += max(0, r.Attempts-1)
		switch {
		case r.Err == nil:
			st.Completed++
		default:
			st.Failed++
			if r.Panicked {
				st.Panics++
			}
			if r.Cancelled {
				st.Cancelled++
			}
			if r.Quarantined {
				st.Quarantined++
			}
			if pol.Obs.Enabled() {
				pol.Obs.Event("runner", "task_failed",
					obs.Str("task", r.Name),
					obs.Int("attempts", int64(r.Attempts)),
					obs.Err("error", r.Err))
			}
		}
	}
	if pol.Obs.Enabled() {
		pol.Obs.Event("runner", "drained",
			obs.Int("tasks", int64(len(tasks))),
			obs.Int("completed", int64(st.Completed)),
			obs.Int("failed", int64(st.Failed)))
	}
	return results, st
}

// contain runs fn under g, converting a panic into a *guard.PanicError.
func contain(fn func(*guard.Ctx) error, g *guard.Ctx) (err error) {
	defer guard.Capture(&err)
	return fn(g)
}

// Backoff returns the deterministic delay before re-attempt attempt+1 of
// task name: an exponential base (10ms doubling, capped at 640ms) plus a
// jitter in [0, base) derived from splitmix64 over (seed, name, attempt).
// Same seed, same task, same attempt -> same delay, on every machine.
func Backoff(seed uint64, name string, attempt int) time.Duration {
	base := 10 * time.Millisecond << min(attempt, 6)
	h := seed
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h ^= uint64(attempt) + 1
	// splitmix64 finalizer.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	jitter := time.Duration(h % uint64(base))
	return base + jitter
}

// String summarizes stats for log lines.
func (s Stats) String() string {
	return fmt.Sprintf("completed=%d failed=%d panics=%d cancelled=%d quarantined=%d retries=%d",
		s.Completed, s.Failed, s.Panics, s.Cancelled, s.Quarantined, s.Retries)
}
