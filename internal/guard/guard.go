// Package guard is the deterministic execution-control layer of the
// inference pipeline: work-metered cancellation tokens, wall-clock
// deadlines and panic containment.
//
// A Ctx is charged at cheap, deterministic checkpoints inside the hot
// paths (per connection scanned in Step 1, per committed search window and
// per DP layer in Step 2). Exceeding the step budget stops the token, and
// the pipeline degrades to a partial result carrying a structured
// "deadline_exceeded" warning — the same shape as the capture-fault
// degradation warnings — instead of stalling without bound. Step budgets
// are pure work counts, so a budgeted run is byte-reproducible; the
// optional wall-clock deadline (WithDeadline + WallClock) is the one
// non-deterministic escape hatch, reserved for production monitors and
// kept out of every golden path.
//
// Capture converts a panic unwinding through core.Infer (or a runner task)
// into a typed *PanicError carrying the stack, so one poisoned session
// cannot take down a batch.
package guard

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// Stop codes, as they appear in structured warnings.
const (
	// CodeDeadline marks a stop caused by an exhausted step budget or an
	// expired wall-clock deadline.
	CodeDeadline = "deadline_exceeded"
	// CodeCancelled marks an external Cancel (e.g. an interrupt drain).
	CodeCancelled = "cancelled"
)

// stopInfo records why a token stopped. It is published once through an
// atomic pointer: nil means the token is still running.
type stopInfo struct {
	code   string
	detail string
}

// Ctx is a cancellable execution token with an optional step budget and an
// optional wall-clock deadline. The nil token is valid and never stops, so
// unguarded callers pay a single pointer check per checkpoint.
//
// All methods are safe for concurrent use: the serial commit paths charge
// work with Step while worker goroutines poll OK for an early abort.
type Ctx struct {
	metered bool
	budget  int64
	work    atomic.Int64

	clock    func() float64
	deadline float64 // clock value after which the token stops
	limit    float64 // the configured deadline span, for messages

	info atomic.Pointer[stopInfo]
}

// New returns a token enforcing a step budget: Step charges against it and
// reports false once it is exhausted. budget <= 0 disables metering — the
// token is then unlimited but still cancellable and deadline-capable.
func New(budget int64) *Ctx {
	c := &Ctx{}
	if budget > 0 {
		c.metered = true
		c.budget = budget
		c.work.Store(budget)
	}
	return c
}

// WithDeadline arms a wall-clock deadline limit seconds from now, read
// through clock — WallClock() in production, an injected virtual clock in
// tests. Wall-clock deadlines are inherently non-deterministic; prefer a
// step budget wherever byte-reproducible output matters. Returns c.
func (c *Ctx) WithDeadline(clock func() float64, limit float64) *Ctx {
	if c == nil || clock == nil || limit <= 0 {
		return c
	}
	c.clock = clock
	c.limit = limit
	c.deadline = clock() + limit
	return c
}

// Step charges n units of work and reports whether execution may continue.
// Checkpoints charge at deterministic points with deterministic amounts
// (packets scanned, combinations materialized, DP states expanded), so the
// stopping point of a budgeted run never depends on scheduling.
func (c *Ctx) Step(n int64) bool {
	if c == nil {
		return true
	}
	if c.info.Load() != nil {
		return false
	}
	if c.metered && c.work.Add(-n) < 0 {
		c.stop(CodeDeadline, fmt.Sprintf("work budget of %d steps exhausted", c.budget))
		return false
	}
	return c.checkDeadline()
}

// OK reports whether execution may continue, without charging work. Worker
// goroutines use it to abort speculative work early; because they never
// charge, their polling cannot move the deterministic stopping point.
func (c *Ctx) OK() bool {
	if c == nil {
		return true
	}
	if c.info.Load() != nil {
		return false
	}
	return c.checkDeadline()
}

func (c *Ctx) checkDeadline() bool {
	if c.clock != nil && c.clock() > c.deadline {
		c.stop(CodeDeadline, fmt.Sprintf("wall-clock deadline of %gs exceeded", c.limit))
		return false
	}
	return true
}

// Cancel stops the token with an external reason (first stop wins).
func (c *Ctx) Cancel(reason string) {
	if c == nil {
		return
	}
	if reason == "" {
		reason = "cancelled"
	}
	c.stop(CodeCancelled, reason)
}

func (c *Ctx) stop(code, detail string) {
	c.info.CompareAndSwap(nil, &stopInfo{code: code, detail: detail})
}

// Stopped reports whether the token has stopped for any reason.
func (c *Ctx) Stopped() bool {
	return c != nil && c.info.Load() != nil
}

// Code returns the structured warning code of the stop (CodeDeadline or
// CodeCancelled), or "" while running.
func (c *Ctx) Code() string {
	if c == nil {
		return ""
	}
	if s := c.info.Load(); s != nil {
		return s.code
	}
	return ""
}

// Reason returns the human-readable stop detail, or "" while running.
func (c *Ctx) Reason() string {
	if c == nil {
		return ""
	}
	if s := c.info.Load(); s != nil {
		return s.detail
	}
	return ""
}

// Err returns nil while the token runs and a *StopError once it stopped.
func (c *Ctx) Err() error {
	if c == nil {
		return nil
	}
	if s := c.info.Load(); s != nil {
		return &StopError{Code: s.code, Detail: s.detail}
	}
	return nil
}

// StopError is the typed error form of a stopped token.
type StopError struct {
	Code   string
	Detail string
}

func (e *StopError) Error() string {
	return fmt.Sprintf("guard: %s: %s", e.Code, e.Detail)
}

// PanicError is a contained panic: the panic value plus the stack of the
// goroutine that panicked, captured at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: contained panic: %v", e.Value)
}

// AsPanicError wraps a recovered value. Values that are already contained
// pass through unchanged, so a worker panic re-raised on the committing
// goroutine keeps the stack of the goroutine that actually panicked.
func AsPanicError(r any) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}

// Capture converts a panic unwinding through the deferring function into a
// *PanicError assigned to *errp. Use with named results:
//
//	func Infer(...) (inf *Inference, err error) {
//	    defer guard.Capture(&err)
//	    ...
func Capture(errp *error) {
	if r := recover(); r != nil {
		*errp = AsPanicError(r)
	}
}
