package guard

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestNilCtxNeverStops(t *testing.T) {
	var c *Ctx
	if !c.Step(1_000_000) || !c.OK() {
		t.Fatal("nil Ctx must allow all work")
	}
	c.Cancel("ignored")
	if c.Stopped() || c.Code() != "" || c.Reason() != "" || c.Err() != nil {
		t.Fatal("nil Ctx must report running forever")
	}
}

func TestUnmeteredCtx(t *testing.T) {
	c := New(0)
	for i := 0; i < 100; i++ {
		if !c.Step(1 << 40) {
			t.Fatal("unmetered Ctx must not stop on work")
		}
	}
	if c.Stopped() {
		t.Fatal("unmetered Ctx stopped")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	c := New(10)
	if !c.Step(4) || !c.Step(4) {
		t.Fatal("stopped before budget exhausted")
	}
	if !c.Step(2) {
		// Charging exactly to zero still allows continuation; only
		// crossing below zero stops.
		t.Fatal("charging to exactly zero must not stop")
	}
	if c.Step(1) {
		t.Fatal("exceeding budget must stop")
	}
	if !c.Stopped() || c.Code() != CodeDeadline {
		t.Fatalf("Code = %q, want %q", c.Code(), CodeDeadline)
	}
	if !strings.Contains(c.Reason(), "work budget of 10 steps") {
		t.Fatalf("Reason = %q", c.Reason())
	}
	var se *StopError
	if err := c.Err(); !errors.As(err, &se) || se.Code != CodeDeadline {
		t.Fatalf("Err = %v", c.Err())
	}
	if c.OK() || c.Step(0) {
		t.Fatal("stopped Ctx must reject further work")
	}
}

func TestDeterministicStopPoint(t *testing.T) {
	// Same charge sequence -> same stop index, regardless of how often
	// OK() is polled in between (OK never charges).
	stopAt := func(polls int) int {
		c := New(100)
		for i := 0; ; i++ {
			for j := 0; j < polls; j++ {
				c.OK()
			}
			if !c.Step(7) {
				return i
			}
		}
	}
	if a, b := stopAt(0), stopAt(50); a != b {
		t.Fatalf("stop index depends on OK polling: %d vs %d", a, b)
	}
}

func TestDeadline(t *testing.T) {
	now := 0.0
	c := New(0).WithDeadline(func() float64 { return now }, 5)
	if !c.Step(1) || !c.OK() {
		t.Fatal("stopped before deadline")
	}
	now = 5.1
	if c.OK() {
		t.Fatal("OK past deadline")
	}
	if c.Code() != CodeDeadline || !strings.Contains(c.Reason(), "wall-clock deadline") {
		t.Fatalf("code=%q reason=%q", c.Code(), c.Reason())
	}
}

func TestCancelFirstStopWins(t *testing.T) {
	c := New(1)
	c.Cancel("drain requested")
	c.Step(100) // would exhaust the budget, but cancel already stopped it
	if c.Code() != CodeCancelled || c.Reason() != "drain requested" {
		t.Fatalf("code=%q reason=%q", c.Code(), c.Reason())
	}
	c2 := New(0)
	c2.Cancel("")
	if c2.Reason() != "cancelled" {
		t.Fatalf("empty cancel reason = %q", c2.Reason())
	}
}

func TestConcurrentStep(t *testing.T) {
	c := New(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c.Step(1) {
			}
		}()
	}
	wg.Wait()
	if !c.Stopped() || c.Code() != CodeDeadline {
		t.Fatalf("concurrent exhaustion: stopped=%v code=%q", c.Stopped(), c.Code())
	}
}

func TestCaptureAndPanicError(t *testing.T) {
	boom := func() (err error) {
		defer Capture(&err)
		panic("kaboom")
	}
	err := boom()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Capture returned %T, want *PanicError", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "contained panic: kaboom") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestAsPanicErrorPassthrough(t *testing.T) {
	orig := &PanicError{Value: "inner", Stack: []byte("worker stack")}
	outer := func() (err error) {
		defer Capture(&err)
		// Re-raise on another goroutine's behalf, as the mux commit
		// loop does for contained worker panics.
		panic(orig) //csi-vet:ignore nakedpanic -- test re-raises a contained panic
	}
	var pe *PanicError
	if err := outer(); !errors.As(err, &pe) || pe != orig {
		t.Fatal("re-raised *PanicError must pass through unchanged")
	}
	if string(pe.Stack) != "worker stack" {
		t.Fatal("original stack must be preserved")
	}
}

func TestCaptureNoPanic(t *testing.T) {
	fn := func() (err error) {
		defer Capture(&err)
		return nil
	}
	if err := fn(); err != nil {
		t.Fatalf("Capture without panic altered err: %v", err)
	}
}
