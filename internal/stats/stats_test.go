package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPercentileBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {75, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v, %g) = %g, want %g", xs, c.p, got, c.want)
		}
	}
}

func TestPercentileSingleAndEmpty(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
	if got := Percentile([]float64{7}, 95); got != 7 {
		t.Errorf("single percentile = %g, want 7", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{0.9, 0.95, 1.0, 1.0}
	if got := FractionAtLeast(xs, 1.0); !almost(got, 0.5) {
		t.Errorf("FractionAtLeast = %g, want 0.5", got)
	}
	if got := FractionAbove(xs, 0.95); !almost(got, 0.5) {
		t.Errorf("FractionAbove = %g, want 0.5", got)
	}
	if got := FractionAtLeast(nil, 1); got != 0 {
		t.Errorf("empty FractionAtLeast = %g", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		return pa <= pb+1e-9 && pa >= Min(xs)-1e-9 && pb <= Max(xs)+1e-9
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("NewRand not deterministic for equal seeds")
		}
	}
}
