// Package stats provides small numeric helpers used across the simulator
// and the experiment drivers: percentiles, summaries and seeded RNG
// construction. Keeping these in one place guarantees all experiments use
// identical definitions (e.g. the percentile interpolation rule).
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic PRNG for the given seed. All randomness in
// the repository flows through explicit seeds so experiment outputs are
// reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted. Returns 0 for
// an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is Percentile(xs, 50).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Summary bundles the descriptive statistics the paper's tables report.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P5     float64
	P95    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Mean:   Mean(s),
		Median: percentileSorted(s, 50),
		P5:     percentileSorted(s, 5),
		P95:    percentileSorted(s, 95),
		Min:    s[0],
		Max:    s[len(s)-1],
	}
}

// FractionAbove returns the fraction of xs strictly greater than thr.
func FractionAbove(xs []float64, thr float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > thr {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAtLeast returns the fraction of xs >= thr.
func FractionAtLeast(xs []float64, thr float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= thr {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
