package obs

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestSnapshotStableOrdering pins the snapshot contract: sections sorted by
// name regardless of registration order, values read atomically.
func TestSnapshotStableOrdering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z").Add(3)
	reg.Counter("a").Add(1)
	reg.Gauge("g2").Set(2)
	reg.Gauge("g1").Set(1)
	reg.Histogram("h.b", []float64{1}).Observe(0.5)
	reg.Histogram("h.a", []float64{2, 4}).Observe(3)

	s := reg.Snapshot()
	wantC := []CounterValue{{"a", 1}, {"z", 3}}
	if !reflect.DeepEqual(s.Counters, wantC) {
		t.Fatalf("counters = %v, want %v", s.Counters, wantC)
	}
	wantG := []GaugeValue{{"g1", 1, true}, {"g2", 2, true}}
	if !reflect.DeepEqual(s.Gauges, wantG) {
		t.Fatalf("gauges = %v, want %v", s.Gauges, wantG)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "h.a" || s.Histograms[1].Name != "h.b" {
		t.Fatalf("histograms out of order: %v", s.Histograms)
	}
	ha := s.Histograms[0]
	if ha.N != 1 || ha.Sum != 3 || !reflect.DeepEqual(ha.Counts, []int64{0, 1, 0}) {
		t.Fatalf("h.a snapshot = %+v", ha)
	}
	// A snapshot is a copy: later observations must not mutate it.
	reg.Histogram("h.a", nil).Observe(10)
	reg.Counter("a").Inc()
	if s.Counters[0].Value != 1 || s.Histograms[0].N != 1 {
		t.Fatal("snapshot aliased live registry state")
	}
}

func TestSnapshotNilAndEmpty(t *testing.T) {
	var nilReg *Registry
	if s := nilReg.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	if s := NewRegistry().Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("empty registry snapshot not empty: %+v", s)
	}
}

// TestSnapshotConcurrent exercises snapshots racing registrations and
// observations; the race detector is the assertion.
func TestSnapshotConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			reg.Counter("c").Inc()
			reg.Gauge("g").Add(1)
			reg.Histogram("h", []float64{1, 2, 4}).Observe(float64(i % 5))
		}
		close(stop)
	}()
	go func() {
		defer wg.Done()
		for {
			s := reg.Snapshot()
			for i := 1; i < len(s.Counters); i++ {
				if s.Counters[i-1].Name >= s.Counters[i].Name {
					t.Error("snapshot counters unsorted")
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
}

func TestGaugeAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g")
	if _, ok := g.Value(); ok {
		t.Fatal("fresh gauge reports set")
	}
	g.Add(2.5)
	g.Add(-1)
	if v, ok := g.Value(); !ok || v != 1.5 {
		t.Fatalf("gauge = %v/%v, want 1.5/true", v, ok)
	}
	g.Set(10)
	g.Add(1)
	if v, _ := g.Value(); v != 11 {
		t.Fatalf("gauge after Set+Add = %v, want 11", v)
	}
	var nilG *Gauge
	nilG.Add(1) // must not panic
}

func TestHistogramQuantile(t *testing.T) {
	hv := HistogramValue{
		Bounds: []float64{10, 20, 40},
		// 10 observations <=10, 10 in (10,20], none in (20,40], 5 overflow.
		Counts: []int64{10, 10, 0, 5},
		N:      25,
	}
	// rank 12.5 lands in the second bucket: 10 + 10*(12.5-10)/10 = 12.5.
	if got := hv.Quantile(0.5); math.Abs(got-12.5) > 1e-9 {
		t.Fatalf("p50 = %g, want 12.5", got)
	}
	// rank 23.75 lands in the overflow bucket: clamp to the top bound.
	if got := hv.Quantile(0.95); got != 40 {
		t.Fatalf("p95 = %g, want 40", got)
	}
	// First bucket interpolates from 0: rank 2.5 -> 10*2.5/10 = 2.5.
	if got := hv.Quantile(0.1); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("p10 = %g, want 2.5", got)
	}
	if got := (HistogramValue{Bounds: []float64{1}}).Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}
	// A non-positive first bound cannot interpolate from 0; it reports the
	// bound itself.
	neg := HistogramValue{Bounds: []float64{-5, 5}, Counts: []int64{4, 0, 0}, N: 4}
	if got := neg.Quantile(0.5); got != -5 {
		t.Fatalf("negative-bound p50 = %g, want -5", got)
	}
}

// TestWriteTextQuantiles pins the extended histogram line format: cumulative
// buckets followed by p50/p95/p99, and no quantile block for an empty
// histogram.
func TestWriteTextQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{10, 20, 40})
	for i := 0; i < 10; i++ {
		h.Observe(5)  // first bucket
		h.Observe(15) // second bucket
	}
	for i := 0; i < 5; i++ {
		h.Observe(100) // overflow
	}
	reg.Histogram("empty", []float64{1, 2})
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# counters\n# gauges\n# histograms\n" +
		"empty count=0 sum=0 le1=0 le2=0 inf=0\n" +
		"lat count=25 sum=700 le10=10 le20=20 le40=20 inf=25 p50=12.5 p95=40 p99=40\n"
	if buf.String() != want {
		t.Fatalf("WriteText =\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestFanout(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	if Fanout() != nil {
		t.Fatal("Fanout() != nil")
	}
	if Fanout(a) != Sink(a) {
		t.Fatal("Fanout(a) should pass through unwrapped")
	}
	if Fanout(nil, a, nil) != Sink(a) {
		t.Fatal("Fanout should drop nil sinks and unwrap the survivor")
	}
	if Fanout(nil, nil) != nil {
		t.Fatal("Fanout of only nils should be nil")
	}
	s := Fanout(a, b)
	s.Emit(Record{Name: "x"})
	s.Emit(Record{Name: "y"})
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatalf("fanout delivered %d/%d records, want 2/2", a.Len(), b.Len())
	}
	if a.Records()[1].Name != "y" || b.Records()[0].Name != "x" {
		t.Fatal("fanout broke record order")
	}
}
