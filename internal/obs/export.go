package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// ---------------------------------------------------------------------------
// Chrome trace-event export (load in Perfetto / chrome://tracing)

// ChromeTraceOptions configures the Chrome trace export.
type ChromeTraceOptions struct {
	// WallClockMeta stamps the export with the real-world export time in a
	// metadata section. It is OFF by default because it breaks the
	// byte-identical determinism contract; goldens must not enable it.
	WallClockMeta bool
}

// wallNow is the single wall-clock read of the observability layer. It is
// reachable only through ChromeTraceOptions.WallClockMeta — never on a
// default export path — and the file is allowlisted for the csi-vet
// determinism rule in .csi-vet.conf.
func wallNow() time.Time { return time.Now() }

// chromeEvent is one trace-event object. Struct-field order fixes the JSON
// key order, which keeps exports byte-stable.
type chromeEvent struct {
	Name  string          `json:"name"`
	Cat   string          `json:"cat,omitempty"`
	Ph    string          `json:"ph"`
	Ts    float64         `json:"ts"` // microseconds of virtual time
	Pid   int             `json:"pid"`
	Tid   int             `json:"tid"`
	ID    string          `json:"id,omitempty"`
	Scope string          `json:"s,omitempty"`
	Args  json.RawMessage `json:"args,omitempty"`
}

// WriteChromeTrace renders records as a Chrome trace-event JSON document.
// Spans become async begin/end pairs, instants become instant events,
// samples become counter tracks; each component gets its own thread lane,
// numbered in first-seen order so output is deterministic.
func WriteChromeTrace(w io.Writer, recs []Record, opts ChromeTraceOptions) error {
	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[")

	tids := map[string]int{}
	var tidOrder []string
	tidOf := func(comp string) int {
		if id, ok := tids[comp]; ok {
			return id
		}
		id := len(tids) + 1
		tids[comp] = id
		tidOrder = append(tidOrder, comp)
		return id
	}
	// Pre-assign lanes in first-appearance order so thread metadata can be
	// emitted up front.
	for _, r := range recs {
		tidOf(r.Comp)
	}

	first := true
	put := func(ev chromeEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.Write(data)
		return nil
	}

	for _, comp := range tidOrder {
		err := put(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[comp],
			Args: json.RawMessage(fmt.Sprintf("{\"name\":%s}", mustJSON(comp))),
		})
		if err != nil {
			return err
		}
	}

	for _, r := range recs {
		ev := chromeEvent{Name: r.Name, Cat: r.Comp, Ts: r.Time * 1e6, Pid: 1, Tid: tids[r.Comp]}
		switch r.Kind {
		case SpanBegin, SpanEnd:
			if r.Kind == SpanBegin {
				ev.Ph = "b"
			} else {
				ev.Ph = "e"
			}
			ev.ID = "0x" + strconv.FormatInt(r.Span, 16)
		case Instant:
			ev.Ph = "i"
			ev.Scope = "t"
		case SampleRec:
			ev.Ph = "C"
			ev.Name = r.Comp + "." + r.Name
			ev.Args = json.RawMessage(fmt.Sprintf("{\"value\":%s}", formatFloat(r.Value)))
		}
		if len(r.Fields) > 0 {
			ev.Args = fieldsJSON(r.Fields)
		}
		if err := put(ev); err != nil {
			return err
		}
	}

	b.WriteString("],\"displayTimeUnit\":\"ms\"")
	if opts.WallClockMeta {
		fmt.Fprintf(&b, ",\"metadata\":{\"exported_at\":%s}",
			mustJSON(wallNow().UTC().Format(time.RFC3339Nano)))
	}
	b.WriteString("}\n")
	_, err := w.Write(b.Bytes())
	return err
}

// fieldsJSON renders fields as a JSON object with keys in field order.
func fieldsJSON(fields []Field) json.RawMessage {
	var b bytes.Buffer
	b.WriteByte('{')
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.Write(mustJSON(f.Key))
		b.WriteByte(':')
		switch f.Kind {
		case FieldStr:
			b.Write(mustJSON(f.Str))
		case FieldInt:
			b.WriteString(strconv.FormatInt(f.Int, 10))
		case FieldFloat:
			b.WriteString(formatFloat(f.Float))
		}
	}
	b.WriteByte('}')
	return b.Bytes()
}

// mustJSON marshals a plain string; strings never fail to marshal.
func mustJSON(s string) json.RawMessage {
	data, err := json.Marshal(s)
	if err != nil {
		panic("obs: marshal string: " + err.Error()) //csi-vet:ignore nakedpanic -- marshalling a plain string cannot fail
	}
	return data
}

// ---------------------------------------------------------------------------
// JSONL event-log export / import (the format csi-trace -timeline reads)

type jsonField struct {
	K string   `json:"k"`
	S *string  `json:"s,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
}

type jsonRecord struct {
	T float64     `json:"t"`
	K string      `json:"k"` // b | e | i | s
	C string      `json:"c"`
	N string      `json:"n"`
	S int64       `json:"span,omitempty"`
	V *float64    `json:"v,omitempty"`
	F []jsonField `json:"f,omitempty"`
}

// WriteJSONEvents renders records as one JSON object per line.
func WriteJSONEvents(w io.Writer, recs []Record) error {
	var b bytes.Buffer
	for i := range recs {
		r := &recs[i]
		jr := jsonRecord{T: r.Time, K: r.Kind.String(), C: r.Comp, N: r.Name, S: r.Span}
		if r.Kind == SampleRec {
			v := r.Value
			jr.V = &v
		}
		for _, f := range r.Fields {
			jf := jsonField{K: f.Key}
			switch f.Kind {
			case FieldStr:
				s := f.Str
				jf.S = &s
			case FieldInt:
				iv := f.Int
				jf.I = &iv
			case FieldFloat:
				v := f.Float
				jf.F = &v
			}
			jr.F = append(jr.F, jf)
		}
		data, err := json.Marshal(jr)
		if err != nil {
			return err
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	_, err := w.Write(b.Bytes())
	return err
}

// ReadJSONEvents parses a JSONL event log written by WriteJSONEvents.
func ReadJSONEvents(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal(text, &jr); err != nil {
			return nil, fmt.Errorf("obs: event log line %d: %w", line, err)
		}
		rec := Record{Time: jr.T, Comp: jr.C, Name: jr.N, Span: jr.S}
		switch jr.K {
		case "b":
			rec.Kind = SpanBegin
		case "e":
			rec.Kind = SpanEnd
		case "i":
			rec.Kind = Instant
		case "s":
			rec.Kind = SampleRec
		default:
			return nil, fmt.Errorf("obs: event log line %d: unknown kind %q", line, jr.K)
		}
		if jr.V != nil {
			rec.Value = *jr.V
		}
		for _, jf := range jr.F {
			switch {
			case jf.S != nil:
				rec.Fields = append(rec.Fields, Str(jf.K, *jf.S))
			case jf.I != nil:
				rec.Fields = append(rec.Fields, Int(jf.K, *jf.I))
			case jf.F != nil:
				rec.Fields = append(rec.Fields, Float(jf.K, *jf.F))
			default:
				rec.Fields = append(rec.Fields, Str(jf.K, ""))
			}
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Text timeline (csi-trace -timeline)

// WriteTimeline renders spans and instants chronologically, indented by the
// per-component open-span depth, followed by a summary of sample series.
// Samples are elided from the main listing (cwnd trajectories alone can run
// to thousands of points); load the Chrome trace in Perfetto for those.
func WriteTimeline(w io.Writer, recs []Record) error {
	var b bytes.Buffer
	if len(recs) == 0 {
		b.WriteString("timeline: no records\n")
		_, err := w.Write(b.Bytes())
		return err
	}
	lo, hi := recs[0].Time, recs[0].Time
	for _, r := range recs {
		if r.Time < lo {
			lo = r.Time
		}
		if r.Time > hi {
			hi = r.Time
		}
	}
	fmt.Fprintf(&b, "timeline: %d records, t=%.6fs .. %.6fs\n\n", len(recs), lo, hi)

	depth := map[string]int{}
	beginAt := map[int64]float64{}
	samples := map[string]int{}
	for _, r := range recs {
		switch r.Kind {
		case SampleRec:
			samples[r.Comp+"."+r.Name]++
			continue
		case SpanEnd:
			if depth[r.Comp] > 0 {
				depth[r.Comp]--
			}
		}
		fmt.Fprintf(&b, "%12.6f  %-8s %s%s", r.Time, r.Comp, indent(depth[r.Comp]), r.Name)
		switch r.Kind {
		case SpanBegin:
			b.WriteString(" {")
			depth[r.Comp]++
			beginAt[r.Span] = r.Time
		case SpanEnd:
			if t0, ok := beginAt[r.Span]; ok {
				fmt.Fprintf(&b, " } dur=%.6fs", r.Time-t0)
				delete(beginAt, r.Span)
			} else {
				b.WriteString(" }")
			}
		}
		for _, f := range r.Fields {
			switch f.Kind {
			case FieldStr:
				fmt.Fprintf(&b, " %s=%s", f.Key, f.Str)
			case FieldInt:
				fmt.Fprintf(&b, " %s=%d", f.Key, f.Int)
			case FieldFloat:
				fmt.Fprintf(&b, " %s=%s", f.Key, formatFloat(f.Float))
			}
		}
		b.WriteByte('\n')
	}
	if len(samples) > 0 {
		b.WriteString("\nsample series (see the Chrome trace export for values):\n")
		var names []string
		for name := range samples {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-32s %d samples\n", name, samples[name])
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

func indent(n int) string {
	const pad = "  .  .  .  .  .  .  .  .  .  .  .  .  .  .  .  ."
	if n <= 0 {
		return ""
	}
	if 3*n > len(pad) {
		n = len(pad) / 3
	}
	return pad[:3*n]
}
