package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestNilTracerIsSafe drives the whole API surface through a nil tracer:
// nothing may panic and nothing may be recorded.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetClock(StepClock(1))
	tr.Event("c", "e", Int("k", 1))
	tr.Sample("c", "s", 2.5)
	sp := tr.Begin("c", "span")
	sp.End(Float("d", 1))
	if reg := tr.Metrics(); reg != nil {
		t.Fatalf("nil tracer metrics = %v, want nil", reg)
	}
	tr.Metrics().Counter("x").Add(5)
	tr.Metrics().Counter("x").Inc()
	tr.Metrics().Gauge("g").Set(1)
	tr.Metrics().Histogram("h", []float64{1, 2}).Observe(1.5)
	if v := tr.Metrics().Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if _, ok := tr.Metrics().Gauge("g").Value(); ok {
		t.Fatal("nil gauge reports a value")
	}
	if n, _, _ := tr.Metrics().Histogram("h", nil).Snapshot(); n != 0 {
		t.Fatalf("nil histogram count = %d", n)
	}
}

func TestStepClock(t *testing.T) {
	c := StepClock(0.5)
	for i, want := range []float64{0, 0.5, 1, 1.5} {
		if got := c(); got != want {
			t.Fatalf("tick %d = %g, want %g", i, got, want)
		}
	}
}

// TestSpanNesting checks begin/end pairing, span ids and the virtual
// timestamps stamped from the tracer clock.
func TestSpanNesting(t *testing.T) {
	sink := NewCollector()
	tr := New(StepClock(1), sink)
	outer := tr.Begin("comp", "outer", Str("who", "a"))
	inner := tr.Begin("comp", "inner")
	tr.Event("comp", "tick")
	inner.End(Int("n", 3))
	outer.End()

	recs := sink.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	wantKinds := []RecordKind{SpanBegin, SpanBegin, Instant, SpanEnd, SpanEnd}
	for i, k := range wantKinds {
		if recs[i].Kind != k {
			t.Fatalf("record %d kind = %v, want %v", i, recs[i].Kind, k)
		}
		if recs[i].Time != float64(i) {
			t.Fatalf("record %d time = %g, want %d", i, recs[i].Time, i)
		}
	}
	if recs[0].Span != recs[4].Span || recs[1].Span != recs[3].Span {
		t.Fatalf("span ids not paired: %+v", recs)
	}
	if recs[0].Span == recs[1].Span {
		t.Fatal("outer and inner spans share an id")
	}
	if recs[3].Name != "inner" || recs[4].Name != "outer" {
		t.Fatalf("end records carry wrong names: %q %q", recs[3].Name, recs[4].Name)
	}
}

// TestHistogramBucketing pins the cumulative bucket semantics: counts[i]
// covers values <= bounds[i], with one overflow bucket.
func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	n, sum, counts := h.Snapshot()
	if n != 7 {
		t.Fatalf("count = %d, want 7", n)
	}
	if sum != 111.5 {
		t.Fatalf("sum = %g, want 111.5", sum)
	}
	// Per-bucket (non-cumulative): <=1: {0,1} = 2; <=2: {1.5,2} = 2;
	// <=4: {3,4} = 2; overflow: {100} = 1.
	want := []int64{2, 2, 2, 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("bucket counts = %v, want %v", counts, want)
	}
	// Same-name lookups return the same histogram; first bounds win.
	if h2 := reg.Histogram("h", []float64{99}); h2 != h {
		t.Fatal("histogram lookup did not return the existing histogram")
	}
}

func TestRegistryWriteTextDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a.count").Inc()
	reg.Gauge("z.gauge").Set(1.25)
	reg.Histogram("m.hist", []float64{1, 10}).Observe(3)

	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("WriteText not deterministic:\n%s\nvs\n%s", first, buf.String())
		}
	}
	want := "# counters\na.count 1\nb.count 2\n# gauges\nz.gauge 1.25\n# histograms\nm.hist count=1 sum=3 le1=0 le10=1 inf=1 p50=5.5 p95=9.549999999999999 p99=9.91\n"
	if first != want {
		t.Fatalf("WriteText =\n%q\nwant\n%q", first, want)
	}
}

// sampleRecords builds a small record set covering every kind and field
// type.
func sampleRecords() []Record {
	sink := NewCollector()
	tr := New(StepClock(0.25), sink)
	sp := tr.Begin("session", "run", Str("design", "SH"))
	tr.Event("tcp", "rto", Int("conn", 2), Float("rto", 0.35))
	tr.Sample("abr", "buffer_sec", 12.5)
	sp.End(Int("chunks", 9))
	return sink.Records()
}

func TestJSONEventsRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteJSONEvents(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", recs, back)
	}
}

func TestChromeTraceShape(t *testing.T) {
	recs := sampleRecords()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, recs, ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, recs, ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("chrome trace export not deterministic")
	}
	// The document must be valid JSON with the expected envelope.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 thread_name metadata lanes + 4 records.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d trace events, want 7", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] != 3 || phases["b"] != 1 || phases["e"] != 1 || phases["i"] != 1 || phases["C"] != 1 {
		t.Fatalf("phase histogram = %v", phases)
	}
	if strings.Contains(a.String(), "exported_at") {
		t.Fatal("wall-clock metadata leaked into a default export")
	}
}

func TestChromeTraceWallClockMetaOptIn(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleRecords(), ChromeTraceOptions{WallClockMeta: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exported_at") {
		t.Fatal("WallClockMeta did not stamp the export")
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("wall-clock export is not valid JSON")
	}
}

func TestWriteTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"timeline: 4 records", "run {", "} dur=0.75", "rto", "abr.buffer_sec", "1 samples"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}
