package live

import (
	"sync"

	"csi/internal/obs"
)

// Ring is a bounded, concurrency-safe ring buffer of obs records with a
// monotonic sequence number per record. It implements obs.Sink, so cmds
// fan the tracer's record stream into it (obs.Fanout) alongside the
// regular collector; the /events SSE endpoint tails it. When the buffer is
// full the oldest records are dropped — a live tail is a window, not an
// archive; the JSONL/Chrome exporters remain the lossless path.
type Ring struct {
	mu     sync.Mutex
	buf    []obs.Record
	cap    int
	next   uint64        // sequence number of the next record to arrive
	notify chan struct{} // lazily built by Wait, closed by the next Emit
}

// NewRing returns a ring holding at most capacity records (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cap: capacity}
}

// Emit appends the record, evicting the oldest when full, and wakes every
// blocked Wait. With no waiter armed the cost is one mutexed append — the
// ring never allocates per record on behalf of absent subscribers.
func (r *Ring) Emit(rec obs.Record) {
	r.mu.Lock()
	if len(r.buf) == r.cap {
		copy(r.buf, r.buf[1:])
		r.buf[len(r.buf)-1] = rec
	} else {
		r.buf = append(r.buf, rec)
	}
	r.next++
	if r.notify != nil {
		close(r.notify)
		r.notify = nil
	}
	r.mu.Unlock()
}

// TailFrom returns every buffered record with sequence >= from, the
// sequence number of the first returned record (after any truncation), and
// the sequence the next record will get. A caller that asks for a sequence
// already evicted silently gets the oldest retained tail — the truncation
// is visible as first > from.
func (r *Ring) TailFrom(from uint64) (recs []obs.Record, first, next uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := r.next - uint64(len(r.buf))
	if from < oldest {
		from = oldest
	}
	if from < r.next {
		recs = append(recs, r.buf[len(r.buf)-int(r.next-from):]...)
	}
	return recs, from, r.next
}

// Len returns the number of buffered records.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Wait returns a channel that is closed once any record later than the
// current tail arrives. Callers re-arm by calling Wait again after
// draining TailFrom.
func (r *Ring) Wait() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.notify == nil {
		r.notify = make(chan struct{})
	}
	return r.notify
}
