package live

import (
	"bytes"
	"math"
	"net/http"
	"strconv"

	"csi/internal/obs"
)

// handleMetrics renders every metric of the application registry and the
// server's own registry in the Prometheus text exposition format (version
// 0.0.4). Both registries are read through lock-free snapshots; ordering is
// stable (sorted by name within each registry), so two scrapes of an idle
// process are byte-identical.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.reg.Counter("live.metrics_scrapes").Inc()
	s.observeProgress()
	s.reg.Gauge("live.uptime_seconds").Set(s.uptime())

	var b bytes.Buffer
	writeProm(&b, s.opts.Registry.Snapshot())
	for _, reg := range s.opts.Extra {
		if reg != nil {
			writeProm(&b, reg.Snapshot())
		}
	}
	writeProm(&b, s.reg.Snapshot())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

// writeProm renders one registry snapshot.
func writeProm(b *bytes.Buffer, snap obs.Snapshot) {
	for _, c := range snap.Counters {
		name := promName(c.Name)
		b.WriteString("# TYPE " + name + " counter\n")
		b.WriteString(name + " " + strconv.FormatInt(c.Value, 10) + "\n")
	}
	for _, g := range snap.Gauges {
		if !g.Set {
			continue
		}
		name := promName(g.Name)
		b.WriteString("# TYPE " + name + " gauge\n")
		b.WriteString(name + " " + promFloat(g.Value) + "\n")
	}
	for _, h := range snap.Histograms {
		name := promName(h.Name)
		b.WriteString("# TYPE " + name + " histogram\n")
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			b.WriteString(name + `_bucket{le="` + le + `"} ` + strconv.FormatInt(cum, 10) + "\n")
		}
		b.WriteString(name + "_sum " + promFloat(h.Sum) + "\n")
		b.WriteString(name + "_count " + strconv.FormatInt(h.N, 10) + "\n")
		if h.N > 0 {
			for _, q := range [...]struct {
				suffix string
				q      float64
			}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
				qn := name + q.suffix
				b.WriteString("# TYPE " + qn + " gauge\n")
				b.WriteString(qn + " " + promFloat(h.Quantile(q.q)) + "\n")
			}
		}
	}
}

// promName maps an obs metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* with a csi_ namespace prefix; the obs layer's
// dots become underscores.
func promName(name string) string {
	out := make([]byte, 0, len(name)+4)
	out = append(out, "csi_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat renders a float the way Prometheus expects (shortest
// round-trippable decimal; +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
