// Package live is the operational telemetry plane of the repository: an
// HTTP server exposing, for the duration of a long-running inference or
// sweep, the state that the deterministic obs layer only exports post hoc.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition of every obs.Registry
//	                counter/gauge/histogram (lock-free Registry.Snapshot,
//	                stable ordering, p50/p95/p99 per histogram)
//	/statusz        JSON status document: build info, uptime, guard/runner
//	                configuration and progress (tasks done/failed/retried/
//	                quarantined + ETA), per-stage core.Infer timings
//	/healthz        liveness (always 200 while the process serves)
//	/readyz         readiness (503 until SetReady(true))
//	/events         Server-Sent Events tail of a bounded ring buffer of
//	                recent obs records (JSONL payloads)
//	/debug/pprof/   the standard runtime profiles
//
// Wall-clock sanctioning. The determinism contract quarantines the wall
// clock from every library package (csi-vet's determinism and taint rules);
// this package is the audited exception, alongside guard.WallClock and the
// obs export opt-in. Every time.Now/Since here feeds only the live plane —
// uptime, ETA extrapolation, stage-duration histograms kept in the server's
// *own* registry — never an inference result, a deterministic export or the
// application registry, so goldens stay byte-identical with and without
// -serve. The .csi-vet.conf allow for this directory and the
// TestTaintAuditInventory entry pin that boundary.
//
// Zero-overhead off path. A nil *Server is fully inert: every method
// no-ops, StageTimer() returns the nil interface the core checks with a
// single comparison, and no ring sink exists to receive records. Binaries
// run without -serve pay exactly what they paid before the plane existed
// (benchmarked in bench_test.go and BENCH_obs.json).
package live

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csi/internal/obs"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address, e.g. "127.0.0.1:8080"; port 0 binds a
	// free port (read it back with Addr).
	Addr string
	// Program names the serving binary in /statusz.
	Program string
	// Registry is the application metrics registry (the obs tracer's).
	// The server only ever reads snapshots of it: it must not create
	// handles there, or serving would perturb the deterministic metric
	// dumps. May be nil.
	Registry *obs.Registry
	// Ring, when non-nil, is tailed by /events.
	Ring *Ring
	// Extra registries are additional read-only snapshots rendered by
	// /metrics after Registry — e.g. the process-wide half-enumeration
	// cache's counters (core.halfcache.*), which live outside the
	// deterministic application registry. Nil entries are skipped.
	Extra []*obs.Registry
}

// Server is the live ops plane. The nil *Server no-ops on every method, so
// call sites stay unconditional.
type Server struct {
	opts  Options
	ln    net.Listener
	http  *http.Server
	start time.Time
	ready atomic.Bool
	done  chan struct{} // closed by Shutdown; unblocks SSE streams
	err   atomic.Pointer[error]

	// reg is the server's own registry: stage-duration histograms, ETA and
	// throughput gauges, scrape counters. Kept separate from opts.Registry
	// so wall-clock-derived values never leak into deterministic dumps.
	reg *obs.Registry

	mu       sync.Mutex
	sections map[string]func() any
	progress progressState
}

// Start binds opts.Addr and serves the ops plane on a background goroutine
// until Shutdown. The returned server is immediately live (healthz answers)
// but not ready (readyz answers 503) until SetReady(true).
func Start(opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		opts:     opts,
		ln:       ln,
		start:    time.Now(),
		done:     make(chan struct{}),
		reg:      obs.NewRegistry(),
		sections: map[string]func() any{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.http = &http.Server{Handler: mux}
	go func() {
		if err := s.http.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err.Store(&err)
		}
	}()
	return s, nil
}

// Addr returns the bound listen address ("" on the nil server).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Err returns the terminal serve error, if the background server died for
// any reason other than Shutdown.
func (s *Server) Err() error {
	if s == nil {
		return nil
	}
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

// SetReady flips the /readyz verdict. Nil-safe.
func (s *Server) SetReady(ready bool) {
	if s != nil {
		s.ready.Store(ready)
	}
}

// SetStatus registers (or, with a nil fn, removes) a named /statusz
// section; fn is invoked at render time and its result JSON-marshalled.
// Nil-safe.
func (s *Server) SetStatus(section string, fn func() any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if fn == nil {
		delete(s.sections, section)
	} else {
		s.sections[section] = fn
	}
	s.mu.Unlock()
}

// Shutdown marks the server unready, unblocks every /events stream and
// gracefully stops the HTTP server (bounded by timeout, then hard-closed).
// Safe to call on the nil server and idempotent enough for deferred use.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s == nil {
		return nil
	}
	s.ready.Store(false)
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.http.Shutdown(ctx)
	if err != nil {
		err = s.http.Close()
	}
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = fmt.Fprintln(w, "not ready")
		return
	}
	_, _ = fmt.Fprintln(w, "ready")
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintf(w, "%s live ops plane\n\n", s.opts.Program)
	for _, ep := range []string{"/metrics", "/statusz", "/healthz", "/readyz", "/events", "/debug/pprof/"} {
		_, _ = fmt.Fprintln(w, "  "+ep)
	}
}

// StageTimer returns the obs.StageTimer recording core.Infer stage
// durations into the server's own registry, or the nil interface on the
// nil server (so the core's p.Stages == nil fast path stays a single
// comparison).
func (s *Server) StageTimer() obs.StageTimer {
	if s == nil {
		return nil
	}
	return stageTimer{s}
}

// stageBoundsSec are the duration buckets (seconds) for per-stage Infer
// histograms: 1 ms to 60 s, roughly 2.5x apart.
var stageBoundsSec = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// stagePrefix names stage histograms in the live registry.
const stagePrefix = "live.stage_seconds."

type stageTimer struct{ s *Server }

// Start implements obs.StageTimer with the plane's sanctioned wall clock.
func (st stageTimer) Start(stage string) func() {
	t0 := time.Now()
	return func() {
		st.s.reg.Histogram(stagePrefix+stage, stageBoundsSec).Observe(time.Since(t0).Seconds())
	}
}

// uptime returns seconds since Start.
func (s *Server) uptime() float64 { return time.Since(s.start).Seconds() }

// sectionNames returns the registered /statusz section names, sorted.
func (s *Server) sectionFuncs() ([]string, map[string]func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sections))
	fns := make(map[string]func() any, len(s.sections))
	//csi-vet:ignore maporder -- names are sorted below before use
	for name, fn := range s.sections {
		names = append(names, name)
		fns[name] = fn
	}
	sort.Strings(names)
	return names, fns
}

// hostname is exposed for /statusz; failures degrade to "".
func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return ""
	}
	return h
}

// memStats samples the allocator for /statusz.
func memStats() map[string]any {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return map[string]any{
		"heap_alloc_bytes": m.HeapAlloc,
		"heap_sys_bytes":   m.HeapSys,
		"total_alloc":      m.TotalAlloc,
		"num_gc":           m.NumGC,
	}
}
