package live

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"

	"csi/internal/obs"
)

// handleEvents tails the ring buffer as a Server-Sent Events stream: one
// `data:` frame per obs record (JSONL payload, same encoding as the
// -trace-out .jsonl export), with the record's ring sequence number as the
// SSE id. The stream first replays the buffered tail — everything still in
// the ring, or the last ?replay=N records — then blocks for new records
// until the client disconnects or the server shuts down. Clients that
// reconnect with Last-Event-ID resume where they left off, modulo ring
// truncation: evicted records are gone, and the jump in ids makes the loss
// visible.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ring := s.opts.Ring
	if ring == nil {
		http.Error(w, "no event ring attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	// Resume point: Last-Event-ID wins, else replay the tail (optionally
	// bounded by ?replay=N).
	var from uint64
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if id, err := strconv.ParseUint(last, 10, 64); err == nil {
			from = id + 1
		}
	} else if n := r.URL.Query().Get("replay"); n != "" {
		if k, err := strconv.ParseUint(n, 10, 64); err == nil {
			_, _, next := ring.TailFrom(0)
			if next > k {
				from = next - k
			}
		}
	}

	s.reg.Counter("live.sse_clients").Inc()
	for {
		recs, first, next := ring.TailFrom(from)
		if len(recs) > 0 {
			var b bytes.Buffer
			seq := first
			for i := range recs {
				writeSSERecord(&b, seq, recs[i])
				seq++
			}
			if _, err := w.Write(b.Bytes()); err != nil {
				return
			}
			fl.Flush()
			from = next
		}
		wait := ring.Wait()
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

// writeSSERecord renders one record as an SSE frame with a JSONL payload.
func writeSSERecord(b *bytes.Buffer, seq uint64, rec obs.Record) {
	fmt.Fprintf(b, "id: %d\n", seq)
	b.WriteString("data: ")
	// WriteJSONEvents emits one line per record, newline-terminated —
	// exactly one SSE data field; the blank line below closes the frame.
	if err := obs.WriteJSONEvents(b, []obs.Record{rec}); err != nil {
		b.WriteString("{}\n")
	}
	b.WriteString("\n")
}
