package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"csi/internal/obs"
)

// startTest boots a server on a free port with a populated app registry
// and a small ring, and tears it down with the test.
func startTest(t *testing.T, reg *obs.Registry, ring *Ring) *Server {
	t.Helper()
	s, err := Start(Options{Addr: "127.0.0.1:0", Program: "live-test", Registry: reg, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Shutdown(2 * time.Second) })
	return s
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHealthAndReadiness(t *testing.T) {
	s := startTest(t, nil, nil)
	if code, body := get(t, s, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, _ := get(t, s, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady = %d, want 503", code)
	}
	s.SetReady(true)
	if code, _ := get(t, s, "/readyz"); code != 200 {
		t.Fatalf("readyz after SetReady = %d, want 200", code)
	}
	if code, body := get(t, s, "/"); code != 200 || !strings.Contains(body, "/statusz") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _ := get(t, s, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline = %d, want 200", code)
	}
}

// TestMetricsExposition pins the Prometheus text format: counter, gauge and
// histogram sections of the app registry, the csi_ prefix, cumulative
// buckets with +Inf, and interpolated quantile gauges — plus the plane's
// own uptime metric.
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("core.requests_detected").Add(47)
	reg.Gauge("core.sequence_count").Set(1)
	h := reg.Histogram("core.candidates_per_request", []float64{1, 2, 4})
	for i := 0; i < 4; i++ {
		h.Observe(float64(i))
	}
	s := startTest(t, reg, nil)
	code, body := get(t, s, "/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE csi_core_requests_detected counter\ncsi_core_requests_detected 47\n",
		"# TYPE csi_core_sequence_count gauge\ncsi_core_sequence_count 1\n",
		"# TYPE csi_core_candidates_per_request histogram\n",
		`csi_core_candidates_per_request_bucket{le="1"} 2`,
		`csi_core_candidates_per_request_bucket{le="+Inf"} 4`,
		"csi_core_candidates_per_request_sum 6\n",
		"csi_core_candidates_per_request_count 4\n",
		"csi_core_candidates_per_request_p50 ",
		"csi_core_candidates_per_request_p99 ",
		"csi_live_uptime_seconds ",
		"csi_live_metrics_scrapes 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n---\n%s", want, body)
		}
	}
	// The exposition must parse line by line: comments or `name[{labels}] value`.
	if err := parseProm(body); err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	// Scraping must never create handles in the app registry.
	if snap := reg.Snapshot(); len(snap.Counters) != 1 || len(snap.Gauges) != 1 {
		t.Fatalf("scrape perturbed the app registry: %+v", snap)
	}
}

// parseProm is a minimal Prometheus text-format validator shared in spirit
// with scripts/livesmoke.go.
func parseProm(body string) error {
	sc := bufio.NewScanner(strings.NewReader(body))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		n++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("line %d: no sample value: %q", n, line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			return fmt.Errorf("line %d: bad value %q", n, line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				return fmt.Errorf("line %d: unterminated labels: %q", n, line)
			}
			name = name[:i]
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
			if !ok {
				return fmt.Errorf("line %d: bad metric name %q", n, name)
			}
		}
	}
	if n == 0 {
		return fmt.Errorf("empty exposition")
	}
	return sc.Err()
}

// TestStatuszSchema exercises the JSON document: fixed top-level fields,
// the runner progress block derived from registry counters, stage timings
// recorded through the StageTimer, and a custom section.
func TestStatuszSchema(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("runner.tasks_total").Add(10)
	reg.Counter("runner.tasks_completed").Add(4)
	reg.Counter("runner.tasks_failed").Add(1)
	reg.Counter("runner.retries").Add(2)
	reg.Gauge("runner.tasks_active").Add(3)
	ring := NewRing(8)
	ring.Emit(obs.Record{Name: "warm"})
	s := startTest(t, reg, ring)
	s.SetReady(true)
	s.SetStatus("guard", func() any { return map[string]any{"work_budget": 123} })

	stop := s.StageTimer().Start("estimate")
	stop()

	code, body := get(t, s, "/statusz")
	if code != 200 {
		t.Fatalf("statusz = %d", code)
	}
	var doc struct {
		Program    string         `json:"program"`
		PID        int            `json:"pid"`
		GoVersion  string         `json:"go_version"`
		UptimeSec  float64        `json:"uptime_sec"`
		Ready      bool           `json:"ready"`
		Goroutines int            `json:"goroutines"`
		Mem        map[string]any `json:"mem"`
		Runner     *struct {
			TasksTotal int64   `json:"tasks_total"`
			Completed  int64   `json:"completed"`
			Failed     int64   `json:"failed"`
			Retries    int64   `json:"retries"`
			Active     int64   `json:"active"`
			Remaining  int64   `json:"remaining"`
			RatePerSec float64 `json:"rate_per_sec"`
			EtaSec     float64 `json:"eta_sec"`
		} `json:"runner"`
		Stages map[string]struct {
			Count  int64   `json:"count"`
			P95Sec float64 `json:"p95_sec"`
		} `json:"infer_stages"`
		Events *struct {
			Buffered int    `json:"buffered"`
			NextSeq  uint64 `json:"next_seq"`
		} `json:"events"`
		Sections map[string]json.RawMessage `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("statusz does not parse: %v\n%s", err, body)
	}
	if doc.Program != "live-test" || !doc.Ready || doc.GoVersion == "" || doc.Goroutines <= 0 {
		t.Fatalf("statusz header wrong: %s", body)
	}
	if doc.Runner == nil || doc.Runner.TasksTotal != 10 || doc.Runner.Completed != 4 ||
		doc.Runner.Failed != 1 || doc.Runner.Retries != 2 || doc.Runner.Active != 3 ||
		doc.Runner.Remaining != 5 {
		t.Fatalf("runner block wrong: %+v", doc.Runner)
	}
	if st, ok := doc.Stages["estimate"]; !ok || st.Count != 1 {
		t.Fatalf("stage block wrong: %+v", doc.Stages)
	}
	if doc.Events == nil || doc.Events.Buffered != 1 || doc.Events.NextSeq != 1 {
		t.Fatalf("events block wrong: %+v", doc.Events)
	}
	if _, ok := doc.Sections["guard"]; !ok {
		t.Fatalf("custom section missing: %s", body)
	}
}

// TestStatuszEta drives the progress baseline: terminal-task growth after
// the first observation must yield a positive rate and a finite ETA.
func TestStatuszEta(t *testing.T) {
	reg := obs.NewRegistry()
	total := reg.Counter("runner.tasks_total")
	done := reg.Counter("runner.tasks_completed")
	total.Add(100)
	s := startTest(t, reg, nil)
	if rs := s.observeProgress(); rs == nil || rs.RatePerSec != 0 {
		t.Fatalf("baseline observation = %+v", rs)
	}
	done.Add(10)
	time.Sleep(10 * time.Millisecond)
	rs := s.observeProgress()
	if rs == nil || rs.RatePerSec <= 0 || rs.EtaSec <= 0 || rs.EtaAt == "" {
		t.Fatalf("progress after completions = %+v", rs)
	}
	if want := float64(90) / rs.RatePerSec; rs.EtaSec != want {
		t.Fatalf("eta = %g, want remaining/rate = %g", rs.EtaSec, want)
	}
	if v, ok := s.reg.Gauge("live.runner_eta_seconds").Value(); !ok || v != rs.EtaSec {
		t.Fatalf("eta gauge = %g/%v, want %g", v, ok, rs.EtaSec)
	}
}

func TestNilServerIsInert(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.Err() != nil {
		t.Fatal("nil server leaks state")
	}
	s.SetReady(true)
	s.SetStatus("x", func() any { return 1 })
	if err := s.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if st := s.StageTimer(); st != nil {
		t.Fatalf("nil server stage timer = %#v, want nil interface", st)
	}
}

func TestRingTruncation(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(obs.Record{Name: fmt.Sprintf("r%d", i)})
	}
	recs, first, next := r.TailFrom(0)
	if len(recs) != 4 || first != 6 || next != 10 {
		t.Fatalf("tail = %d records, first=%d next=%d; want 4, 6, 10", len(recs), first, next)
	}
	if recs[0].Name != "r6" || recs[3].Name != "r9" {
		t.Fatalf("tail contents wrong: %v", recs)
	}
	// A cursor inside the retained window resumes exactly there.
	recs, first, _ = r.TailFrom(8)
	if len(recs) != 2 || first != 8 || recs[0].Name != "r8" {
		t.Fatalf("mid-window tail wrong: %d records, first=%d", len(recs), first)
	}
	// A fully drained cursor returns nothing.
	if recs, _, _ := r.TailFrom(10); len(recs) != 0 {
		t.Fatalf("drained tail returned %d records", len(recs))
	}
}

func TestRingWait(t *testing.T) {
	r := NewRing(2)
	ch := r.Wait()
	select {
	case <-ch:
		t.Fatal("wait channel closed before any emit")
	default:
	}
	r.Emit(obs.Record{Name: "x"})
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("emit did not wake waiter")
	}
}

// sseClient reads SSE frames (id + data line pairs) from a live /events
// stream until n frames arrived or the deadline hit.
func sseClient(t *testing.T, s *Server, path string, n int) []string {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+s.Addr()+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != 200 {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	var frames []string
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for len(frames) < n && sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			frames = append(frames, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(frames) < n {
		t.Fatalf("got %d SSE frames, want %d (scan err %v)", len(frames), n, sc.Err())
	}
	return frames
}

// TestSSETailAndTruncation replays a truncated ring into an SSE client and
// checks that late records stream live.
func TestSSETailAndTruncation(t *testing.T) {
	ring := NewRing(3)
	for i := 0; i < 5; i++ {
		ring.Emit(obs.Record{Time: float64(i), Kind: obs.Instant, Comp: "t", Name: fmt.Sprintf("e%d", i)})
	}
	s := startTest(t, nil, ring)

	done := make(chan []string, 1)
	go func() { done <- sseClient(t, s, "/events", 4) }()
	// Give the client time to attach, then emit one live record.
	time.Sleep(100 * time.Millisecond)
	ring.Emit(obs.Record{Time: 5, Kind: obs.Instant, Comp: "t", Name: "e5"})

	frames := <-done
	// Capacity 3: e0/e1 evicted before the client attached; frames are the
	// retained tail e2..e4 plus the live e5.
	var names []string
	for _, f := range frames {
		var rec struct {
			N string `json:"n"`
		}
		if err := json.Unmarshal([]byte(f), &rec); err != nil {
			t.Fatalf("frame %q does not parse: %v", f, err)
		}
		names = append(names, rec.N)
	}
	if got := strings.Join(names, ","); got != "e2,e3,e4,e5" {
		t.Fatalf("SSE frames = %s, want e2,e3,e4,e5", got)
	}
}

// TestSSEShutdownDrain proves a graceful Shutdown unblocks a streaming
// client instead of hanging until the HTTP timeout — the SIGINT drain path.
func TestSSEShutdownDrain(t *testing.T) {
	ring := NewRing(8)
	ring.Emit(obs.Record{Name: "pre"})
	s := startTest(t, nil, ring)

	req, _ := http.NewRequest("GET", "http://"+s.Addr()+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the replayed frame so the stream is demonstrably live.
	sc := bufio.NewScanner(resp.Body)
	sawData := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			sawData = true
			break
		}
	}
	if !sawData {
		t.Fatal("no replayed frame before shutdown")
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(5 * time.Second) }()
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on the streaming client")
	}
	// The client's stream must have ended.
	for sc.Scan() {
	}
	if code, _ := func() (int, error) {
		r, err := http.Get("http://" + s.Addr() + "/healthz")
		if err != nil {
			return 0, err
		}
		r.Body.Close()
		return r.StatusCode, nil
	}(); code == 200 {
		t.Fatal("server still answering after shutdown")
	}
}
