package live

import (
	"encoding/json"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// statusDoc is the /statusz JSON document. Field order is fixed by the
// struct, map-valued fields marshal with sorted keys, so the schema is
// stable for scripts.
type statusDoc struct {
	Program    string         `json:"program"`
	Hostname   string         `json:"hostname,omitempty"`
	PID        int            `json:"pid"`
	GoVersion  string         `json:"go_version"`
	Build      map[string]any `json:"build,omitempty"`
	StartedAt  string         `json:"started_at"`
	Now        string         `json:"now"`
	UptimeSec  float64        `json:"uptime_sec"`
	Ready      bool           `json:"ready"`
	Goroutines int            `json:"goroutines"`
	Mem        map[string]any `json:"mem"`

	Runner *runnerStatus           `json:"runner,omitempty"`
	Stages map[string]*stageStatus `json:"infer_stages,omitempty"`

	Events *eventsStatus `json:"events,omitempty"`

	Sections map[string]any `json:"status,omitempty"`
}

// runnerStatus is the sweep-progress block, fed by the guard/runner
// counters in the application registry and extrapolated with the plane's
// sanctioned wall clock.
type runnerStatus struct {
	TasksTotal  int64 `json:"tasks_total"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Retries     int64 `json:"retries"`
	Quarantined int64 `json:"quarantined"`
	Cancelled   int64 `json:"cancelled"`
	Panics      int64 `json:"panics"`
	Active      int64 `json:"active"`
	Remaining   int64 `json:"remaining"`
	// RatePerSec is the terminal-task throughput (completed+failed per
	// second of serving time); EtaSec extrapolates the remaining tasks at
	// that rate. Both are 0 until the first task finishes.
	RatePerSec float64 `json:"rate_per_sec"`
	EtaSec     float64 `json:"eta_sec"`
	EtaAt      string  `json:"eta_at,omitempty"`
}

// stageStatus summarizes one core.Infer stage-duration histogram.
type stageStatus struct {
	Count  int64   `json:"count"`
	SumSec float64 `json:"sum_sec"`
	P50Sec float64 `json:"p50_sec"`
	P95Sec float64 `json:"p95_sec"`
	P99Sec float64 `json:"p99_sec"`
}

// eventsStatus describes the /events ring.
type eventsStatus struct {
	Buffered int    `json:"buffered"`
	NextSeq  uint64 `json:"next_seq"`
}

// progressState remembers when serving began observing runner progress so
// ETA extrapolation has a baseline.
type progressState struct {
	baselined bool
	t0        time.Time
	terminal0 int64
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	doc := statusDoc{
		Program:    s.opts.Program,
		Hostname:   hostname(),
		PID:        os.Getpid(),
		GoVersion:  runtime.Version(),
		Build:      buildInfo(),
		StartedAt:  s.start.UTC().Format(time.RFC3339Nano),
		Now:        time.Now().UTC().Format(time.RFC3339Nano),
		UptimeSec:  s.uptime(),
		Ready:      s.ready.Load(),
		Goroutines: runtime.NumGoroutine(),
		Mem:        memStats(),
		Runner:     s.observeProgress(),
		Stages:     s.stageStatuses(),
	}
	if s.opts.Ring != nil {
		_, _, next := s.opts.Ring.TailFrom(0)
		doc.Events = &eventsStatus{Buffered: s.opts.Ring.Len(), NextSeq: next}
	}
	names, fns := s.sectionFuncs()
	if len(names) > 0 {
		doc.Sections = make(map[string]any, len(names))
		for _, name := range names {
			doc.Sections[name] = fns[name]()
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// observeProgress reads the runner.* metrics out of an application-registry
// snapshot (never creating handles there), derives throughput and ETA with
// the live clock, publishes them as gauges in the server's own registry,
// and returns the /statusz block. Returns nil before any runner activity.
func (s *Server) observeProgress() *runnerStatus {
	snap := s.opts.Registry.Snapshot()
	var st runnerStatus
	found := false
	counter := func(name string) int64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				found = true
				return c.Value
			}
		}
		return 0
	}
	st.TasksTotal = counter("runner.tasks_total")
	st.Completed = counter("runner.tasks_completed")
	st.Failed = counter("runner.tasks_failed")
	st.Retries = counter("runner.retries")
	st.Quarantined = counter("runner.quarantines")
	st.Cancelled = counter("runner.cancellations")
	st.Panics = counter("runner.panics")
	for _, g := range snap.Gauges {
		if g.Name == "runner.tasks_active" && g.Set {
			st.Active = int64(g.Value)
			found = true
		}
	}
	if !found {
		return nil
	}
	terminal := st.Completed + st.Failed
	st.Remaining = st.TasksTotal - terminal
	if st.Remaining < 0 {
		st.Remaining = 0
	}

	now := time.Now()
	s.mu.Lock()
	if !s.progress.baselined {
		// Baseline at first sight of runner metrics, so setup time before
		// the sweep (manifest encoding, session streaming) does not dilute
		// the task throughput.
		s.progress = progressState{baselined: true, t0: now, terminal0: terminal}
	}
	base := s.progress
	s.mu.Unlock()

	if dt := now.Sub(base.t0).Seconds(); dt > 0 && terminal > base.terminal0 {
		st.RatePerSec = float64(terminal-base.terminal0) / dt
		if st.Remaining > 0 {
			st.EtaSec = float64(st.Remaining) / st.RatePerSec
			st.EtaAt = now.Add(time.Duration(st.EtaSec * float64(time.Second))).UTC().Format(time.RFC3339)
		}
	}
	s.reg.Gauge("live.runner_rate_per_sec").Set(st.RatePerSec)
	s.reg.Gauge("live.runner_eta_seconds").Set(st.EtaSec)
	s.reg.Gauge("live.runner_tasks_remaining").Set(float64(st.Remaining))
	return &st
}

// stageStatuses summarizes the live.stage_seconds.* histograms.
func (s *Server) stageStatuses() map[string]*stageStatus {
	snap := s.reg.Snapshot()
	var out map[string]*stageStatus
	for _, h := range snap.Histograms {
		stage, ok := strings.CutPrefix(h.Name, stagePrefix)
		if !ok || h.N == 0 {
			// An N==0 histogram can be observed between handle creation and
			// the first Observe; its quantiles are NaN, which JSON rejects.
			continue
		}
		if out == nil {
			out = map[string]*stageStatus{}
		}
		out[stage] = &stageStatus{
			Count:  h.N,
			SumSec: h.Sum,
			P50Sec: h.Quantile(0.50),
			P95Sec: h.Quantile(0.95),
			P99Sec: h.Quantile(0.99),
		}
	}
	return out
}

// buildInfo extracts the embedded module and VCS identity, when present.
func buildInfo() map[string]any {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return nil
	}
	out := map[string]any{"path": bi.Path}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS":
			out[kv.Key] = kv.Value
		}
	}
	return out
}
