package live

import (
	"testing"

	"csi/internal/obs"
)

// BenchmarkNilStageTimer measures the no-`-serve` fast path the core pays
// per stage: one interface-nil comparison, zero allocations.
func BenchmarkNilStageTimer(b *testing.B) {
	var s *Server
	st := s.StageTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if st != nil {
			stop := st.Start("estimate")
			stop()
		}
	}
}

// BenchmarkLiveStageTimer measures the cost when a server is attached:
// two clock reads plus one histogram observation per stage.
func BenchmarkLiveStageTimer(b *testing.B) {
	s := &Server{reg: obs.NewRegistry()}
	st := s.StageTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stop := st.Start("estimate")
		stop()
	}
}

// BenchmarkRingEmit measures the sink cost per record with no waiter
// attached (the steady state between SSE polls).
func BenchmarkRingEmit(b *testing.B) {
	r := NewRing(256)
	rec := obs.Record{Time: 1, Kind: obs.Instant, Comp: "b", Name: "x"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(rec)
	}
}
