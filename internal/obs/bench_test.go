package obs

import "testing"

// The package's cost contract: a nil tracer/handle is a branch on a nil
// pointer, nothing more. These micro-benchmarks pin the absolute numbers
// the Off/On pairs in sim, tcpsim and the root package build on.

func BenchmarkNilTracerEvent(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Event("tcp", "rto")
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// discardSink measures emission cost without collector append noise.
type discardSink struct{}

func (discardSink) Emit(Record) {}

func BenchmarkLiveTracerEvent(b *testing.B) {
	tr := New(nil, discardSink{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Event("tcp", "rto", Int("conn", 1))
	}
}

func BenchmarkLiveCounterInc(b *testing.B) {
	c := New(nil, discardSink{}).Metrics().Counter("bench.count")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkRegistrySnapshot pins the scrape-side cost the live ops plane
// pays per /metrics request on a realistically sized registry: lock-free
// index load plus value reads, never blocking writers.
func BenchmarkRegistrySnapshot(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 20; i++ {
		reg.Counter(names20[i] + ".count").Inc()
		reg.Gauge(names20[i] + ".gauge").Set(float64(i))
		reg.Histogram(names20[i]+".hist", []float64{1, 10, 100}).Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := reg.Snapshot()
		if len(snap.Counters) != 20 {
			b.Fatal("bad snapshot")
		}
	}
}

var names20 = []string{
	"a", "b", "c", "d", "e", "f", "g", "h", "i", "j",
	"k", "l", "m", "n", "o", "p", "q", "r", "s", "t",
}
