package obs

import "testing"

// The package's cost contract: a nil tracer/handle is a branch on a nil
// pointer, nothing more. These micro-benchmarks pin the absolute numbers
// the Off/On pairs in sim, tcpsim and the root package build on.

func BenchmarkNilTracerEvent(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Event("tcp", "rto")
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// discardSink measures emission cost without collector append noise.
type discardSink struct{}

func (discardSink) Emit(Record) {}

func BenchmarkLiveTracerEvent(b *testing.B) {
	tr := New(nil, discardSink{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Event("tcp", "rto", Int("conn", 1))
	}
}

func BenchmarkLiveCounterInc(b *testing.B) {
	c := New(nil, discardSink{}).Metrics().Counter("bench.count")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
