// Package obs is the deterministic observability layer of the repository:
// spans, structured events, value samples and a metrics registry, stamped
// with *virtual* time.
//
// Determinism contract. Every timestamp comes from a caller-supplied Clock
// — the simulation engine's virtual clock for emulated sessions, a
// StepClock for the post-hoc inference pipeline — and sinks receive records
// in emission order, so two runs with the same seed produce byte-identical
// exports. The only wall-clock read in the package lives in export.go,
// behind an explicit opt-in (ChromeTraceOptions.WallClockMeta), and is
// allowlisted in .csi-vet.conf; nothing else in the library may read
// ambient time (enforced by the csi-vet determinism rule).
//
// Cost contract. A nil *Tracer is a valid, fully disabled tracer: every
// method is nil-safe, so instrumented hot paths pay one pointer check when
// observability is off. Code on hot paths should pre-resolve *Counter
// handles (also nil-safe) and guard event construction with Enabled().
//
// Concurrency. Metrics handles are safe for concurrent use (experiment
// drivers fan sessions out across goroutines); the Collector sink
// serializes Emit with a mutex. Record order is the emission order, which
// is deterministic whenever the instrumented code runs single-threaded —
// the case for every fixed-seed csi-run / csi-analyze invocation.
package obs

import (
	"sync"
	"sync/atomic"
)

// Clock supplies the current virtual time in seconds.
type Clock func() float64

// StepClock returns a Clock that starts at 0 and advances by step seconds
// per reading. It gives non-simulated phases (the inference pipeline) an
// ordered, deterministic timeline.
func StepClock(step float64) Clock {
	n := -1
	return func() float64 {
		n++
		// Multiply rather than accumulate: n*step has one rounding, so
		// timestamps stay clean (0.000005, not 0.0000049999...).
		return float64(n) * step
	}
}

// FieldKind discriminates the value stored in a Field.
type FieldKind uint8

const (
	FieldStr FieldKind = iota
	FieldInt
	FieldFloat
)

// Field is one structured key/value attached to a record.
type Field struct {
	Key   string
	Kind  FieldKind
	Str   string
	Int   int64
	Float float64
}

// Str builds a string field.
func Str(key, v string) Field { return Field{Key: key, Kind: FieldStr, Str: v} }

// Int builds an integer field.
func Int(key string, v int64) Field { return Field{Key: key, Kind: FieldInt, Int: v} }

// Float builds a float field.
func Float(key string, v float64) Field { return Field{Key: key, Kind: FieldFloat, Float: v} }

// Err builds a string field from an error; a nil error renders empty.
func Err(key string, err error) Field {
	f := Field{Key: key, Kind: FieldStr}
	if err != nil {
		f.Str = err.Error()
	}
	return f
}

// RecordKind is the type of a trace record.
type RecordKind uint8

const (
	// SpanBegin opens a span (paired with SpanEnd via the Span id).
	SpanBegin RecordKind = iota
	// SpanEnd closes a span.
	SpanEnd
	// Instant is a point event.
	Instant
	// SampleRec carries one numeric sample of a named series (Value).
	SampleRec
)

// String returns the compact record-kind tag used by the JSONL export.
func (k RecordKind) String() string {
	switch k {
	case SpanBegin:
		return "b"
	case SpanEnd:
		return "e"
	case Instant:
		return "i"
	case SampleRec:
		return "s"
	}
	return "?"
}

// Record is one emitted observation.
type Record struct {
	Time   float64 // virtual seconds
	Kind   RecordKind
	Comp   string // component lane: "sim", "tcp", "quic", "abr", "core", ...
	Name   string
	Span   int64   // span id for SpanBegin/SpanEnd, else 0
	Value  float64 // SampleRec only
	Fields []Field
}

// Sink receives records in emission order.
type Sink interface {
	Emit(Record)
}

// Collector is a Sink that retains every record in order.
type Collector struct {
	mu   sync.Mutex
	recs []Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends the record.
func (c *Collector) Emit(r Record) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

// Records returns the collected records in emission order. The returned
// slice is shared with the collector; callers must stop emitting first.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recs
}

// Len returns the number of collected records.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}

// Tracer stamps records with virtual time and forwards them to a sink.
// The nil *Tracer is the disabled tracer: every method no-ops.
type Tracer struct {
	mu      sync.Mutex
	clock   Clock
	sink    Sink
	reg     *Registry
	spanSeq *atomic.Int64 // shared across Child tracers: ids stay unique
}

// New builds a tracer. A nil clock defaults to StepClock(1e-6); a nil sink
// drops records but keeps metrics working.
func New(clock Clock, sink Sink) *Tracer {
	if clock == nil {
		clock = StepClock(1e-6)
	}
	return &Tracer{clock: clock, sink: sink, reg: NewRegistry(), spanSeq: &atomic.Int64{}}
}

// Child returns a tracer sharing this tracer's sink, metrics registry and
// span-id space, but with an independent clock binding (a fresh StepClock
// until SetClock rebinds it). Experiment drivers that fan sessions across
// goroutines hand each session its own child so that one session's engine
// clock never stamps another's records. Nil-safe: the nil tracer's child is
// nil.
func (t *Tracer) Child() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{clock: StepClock(1e-6), sink: t.sink, reg: t.reg, spanSeq: t.spanSeq}
}

// Enabled reports whether the tracer is live. Use it to guard field
// construction on hot paths.
func (t *Tracer) Enabled() bool { return t != nil }

// SetClock rebinds the time source (the session layer binds the simulation
// engine's clock once the engine exists). Nil-safe.
func (t *Tracer) SetClock(c Clock) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	t.clock = c
	t.mu.Unlock()
}

// Metrics returns the tracer's registry, or nil for the nil tracer — and
// registry lookups on a nil registry return nil-safe no-op handles, so
// `tr.Metrics().Counter("x")` is always a valid expression.
func (t *Tracer) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

func (t *Tracer) now() float64 {
	t.mu.Lock()
	c := t.clock
	t.mu.Unlock()
	return c()
}

func (t *Tracer) emit(r Record) {
	if t.sink != nil {
		t.sink.Emit(r)
	}
}

// Event emits an instant event.
func (t *Tracer) Event(comp, name string, fields ...Field) {
	if t == nil {
		return
	}
	t.emit(Record{Time: t.now(), Kind: Instant, Comp: comp, Name: name, Fields: fields})
}

// Sample emits one numeric sample of the series comp/name (rendered as a
// counter track in the Chrome trace export).
func (t *Tracer) Sample(comp, name string, v float64) {
	if t == nil {
		return
	}
	t.emit(Record{Time: t.now(), Kind: SampleRec, Comp: comp, Name: name, Value: v})
}

// Span is an in-progress span. The nil *Span no-ops on End.
type Span struct {
	t    *Tracer
	id   int64
	comp string
	name string
}

// Begin opens a span and returns its handle; close it with End. Returns
// nil (a valid no-op span) on the nil tracer.
func (t *Tracer) Begin(comp, name string, fields ...Field) *Span {
	if t == nil {
		return nil
	}
	id := t.spanSeq.Add(1)
	t.emit(Record{Time: t.now(), Kind: SpanBegin, Comp: comp, Name: name, Span: id, Fields: fields})
	return &Span{t: t, id: id, comp: comp, name: name}
}

// End closes the span. Nil-safe; closing twice emits two end records (do
// not).
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	t := s.t
	t.emit(Record{Time: t.now(), Kind: SpanEnd, Comp: s.comp, Name: s.name, Span: s.id, Fields: fields})
}
