package obs

import (
	"fmt"
	"os"
	"strings"
)

// WriteTraceFile writes records to path, choosing the format by extension:
// ".jsonl" selects the JSONL event log (the format csi-trace -timeline
// reads); anything else gets the Chrome trace-event document for Perfetto /
// chrome://tracing. Output is byte-deterministic for a given record set.
func WriteTraceFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = WriteJSONEvents(f, recs)
	} else {
		err = WriteChromeTrace(f, recs, ChromeTraceOptions{})
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: writing trace %s: %w", path, err)
	}
	return nil
}

// WriteMetricsFile writes the registry's text dump to path ("-" = stdout).
func WriteMetricsFile(path string, reg *Registry) error {
	if path == "-" {
		return reg.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = reg.WriteText(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: writing metrics %s: %w", path, err)
	}
	return nil
}
