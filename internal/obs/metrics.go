package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms. Handles are cheap
// to resolve and safe for concurrent use; resolve them once at component
// construction time, not on hot paths. The nil *Registry hands out nil
// handles, whose methods all no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing integer metric. The nil *Counter
// no-ops, costing one pointer check.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value and whether one was ever set.
func (g *Gauge) Value() (float64, bool) {
	if g == nil || !g.set.Load() {
		return 0, false
	}
	return math.Float64frombits(g.bits.Load()), true
}

// Histogram counts observations into caller-defined cumulative buckets
// (counts[i] covers values <= Bounds[i]; one implicit overflow bucket).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last = overflow
	n      int64
	sum    float64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Snapshot returns the observation count, value sum and per-bucket counts.
func (h *Histogram) Snapshot() (n int64, sum float64, counts []int64) {
	if h == nil {
		return 0, 0, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n, h.sum, append([]int64(nil), h.counts...)
}

// Counter returns (creating if needed) the named counter. Nil-safe: a nil
// registry returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bounds of
// the first creation win; bounds must be sorted ascending. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// WriteText renders the registry as a deterministic text dump: sections for
// counters, gauges and histograms, each sorted by metric name.
func (r *Registry) WriteText(w io.Writer) error {
	var b bytes.Buffer
	if r == nil {
		b.WriteString("# metrics: disabled\n")
		_, err := w.Write(b.Bytes())
		return err
	}
	r.mu.Lock()
	var cn, gn, hn []string
	for name := range r.counters {
		cn = append(cn, name)
	}
	for name := range r.gauges {
		gn = append(gn, name)
	}
	for name := range r.hists {
		hn = append(hn, name)
	}
	sort.Strings(cn)
	sort.Strings(gn)
	sort.Strings(hn)
	counters := r.counters
	gauges := r.gauges
	hists := r.hists
	r.mu.Unlock()

	b.WriteString("# counters\n")
	for _, name := range cn {
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	b.WriteString("# gauges\n")
	for _, name := range gn {
		if v, ok := gauges[name].Value(); ok {
			fmt.Fprintf(&b, "%s %s\n", name, formatFloat(v))
		}
	}
	b.WriteString("# histograms\n")
	for _, name := range hn {
		h := hists[name]
		n, sum, counts := h.Snapshot()
		fmt.Fprintf(&b, "%s count=%d sum=%s", name, n, formatFloat(sum))
		cum := int64(0)
		for i, c := range counts {
			cum += c
			if i < len(h.bounds) {
				fmt.Fprintf(&b, " le%s=%d", formatFloat(h.bounds[i]), cum)
			} else {
				fmt.Fprintf(&b, " inf=%d", cum)
			}
		}
		b.WriteString("\n")
	}
	_, err := w.Write(b.Bytes())
	return err
}

// formatFloat renders floats with the shortest round-trippable
// representation, keeping text dumps byte-stable across runs.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
