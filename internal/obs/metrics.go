package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms. Handles are cheap
// to resolve and safe for concurrent use; resolve them once at component
// construction time, not on hot paths. The nil *Registry hands out nil
// handles, whose methods all no-op.
//
// The registry keeps a copy-on-write sorted index of its handles: every
// registration (rare — component construction time) rebuilds it under the
// mutex, and Snapshot/WriteText read it through an atomic pointer without
// taking any registry-wide lock, so a live /metrics scrape never contends
// with hot-path handle resolution or observation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	idx      atomic.Pointer[regIndex]
}

// regIndex is the immutable, name-sorted view snapshots read lock-free.
type regIndex struct {
	counters []namedCounter
	gauges   []namedGauge
	hists    []namedHist
}

type namedCounter struct {
	name string
	c    *Counter
}

type namedGauge struct {
	name string
	g    *Gauge
}

type namedHist struct {
	name string
	h    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// reindex rebuilds the sorted copy-on-write index. Callers hold r.mu.
func (r *Registry) reindex() {
	ix := &regIndex{
		counters: make([]namedCounter, 0, len(r.counters)),
		gauges:   make([]namedGauge, 0, len(r.gauges)),
		hists:    make([]namedHist, 0, len(r.hists)),
	}
	//csi-vet:ignore maporder -- each slice is sorted below before publication
	for name, c := range r.counters {
		ix.counters = append(ix.counters, namedCounter{name, c})
	}
	//csi-vet:ignore maporder -- each slice is sorted below before publication
	for name, g := range r.gauges {
		ix.gauges = append(ix.gauges, namedGauge{name, g})
	}
	//csi-vet:ignore maporder -- each slice is sorted below before publication
	for name, h := range r.hists {
		ix.hists = append(ix.hists, namedHist{name, h})
	}
	sort.Slice(ix.counters, func(a, b int) bool { return ix.counters[a].name < ix.counters[b].name })
	sort.Slice(ix.gauges, func(a, b int) bool { return ix.gauges[a].name < ix.gauges[b].name })
	sort.Slice(ix.hists, func(a, b int) bool { return ix.hists[a].name < ix.hists[b].name })
	r.idx.Store(ix)
}

// Counter is a monotonically increasing integer metric. The nil *Counter
// no-ops, costing one pointer check.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Add shifts the value by d (an unset gauge counts as 0). Nil-safe. The
// CAS loop makes concurrent Adds lose no updates; mixing Add with Set is
// last-writer-wins on the Set.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			g.set.Store(true)
			return
		}
	}
}

// Value returns the last value and whether one was ever set.
func (g *Gauge) Value() (float64, bool) {
	if g == nil || !g.set.Load() {
		return 0, false
	}
	return math.Float64frombits(g.bits.Load()), true
}

// Histogram counts observations into caller-defined cumulative buckets
// (counts[i] covers values <= Bounds[i]; one implicit overflow bucket).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last = overflow
	n      int64
	sum    float64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Snapshot returns the observation count, value sum and per-bucket counts.
func (h *Histogram) Snapshot() (n int64, sum float64, counts []int64) {
	if h == nil {
		return 0, 0, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n, h.sum, append([]int64(nil), h.counts...)
}

// Counter returns (creating if needed) the named counter. Nil-safe: a nil
// registry returns a nil handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
		r.reindex()
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
		r.reindex()
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bounds of
// the first creation win; bounds must be sorted ascending. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
		r.reindex()
	}
	return h
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// GaugeValue is one gauge in a Snapshot. Set reports whether the gauge was
// ever written.
type GaugeValue struct {
	Name  string
	Value float64
	Set   bool
}

// HistogramValue is one histogram in a Snapshot: the bucket bounds, the
// raw (non-cumulative) per-bucket counts with the overflow bucket last,
// the observation count and the value sum.
type HistogramValue struct {
	Name   string
	Bounds []float64
	Counts []int64 // len(Bounds)+1; last = overflow
	N      int64
	Sum    float64
}

// Quantile estimates the q-quantile (q in (0,1)) by linear interpolation
// inside the bucket holding the target rank, the same estimator Prometheus'
// histogram_quantile uses: values below the first bound interpolate from 0
// (or from the bound itself when it is non-positive), and ranks landing in
// the overflow bucket clamp to the highest finite bound. Returns NaN for an
// empty histogram.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.N <= 0 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.N)
	var cum int64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		hi := h.Bounds[i]
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		} else if hi <= 0 {
			return hi
		}
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, with every section
// sorted by metric name.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot captures every metric without taking the registry lock: it
// reads the copy-on-write sorted index through an atomic pointer and then
// loads each counter/gauge atomically (histograms briefly take their own
// per-histogram mutex). Values observed mid-scrape on other goroutines land
// in this snapshot or the next; ordering is stable (sorted by name) either
// way. Nil-safe: a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	ix := r.idx.Load()
	if ix == nil {
		return Snapshot{}
	}
	var s Snapshot
	if len(ix.counters) > 0 {
		s.Counters = make([]CounterValue, len(ix.counters))
		for i, nc := range ix.counters {
			s.Counters[i] = CounterValue{Name: nc.name, Value: nc.c.Value()}
		}
	}
	if len(ix.gauges) > 0 {
		s.Gauges = make([]GaugeValue, len(ix.gauges))
		for i, ng := range ix.gauges {
			v, ok := ng.g.Value()
			s.Gauges[i] = GaugeValue{Name: ng.name, Value: v, Set: ok}
		}
	}
	if len(ix.hists) > 0 {
		s.Histograms = make([]HistogramValue, len(ix.hists))
		for i, nh := range ix.hists {
			n, sum, counts := nh.h.Snapshot()
			s.Histograms[i] = HistogramValue{
				Name: nh.name, Bounds: nh.h.bounds, Counts: counts, N: n, Sum: sum,
			}
		}
	}
	return s
}

// WriteText renders the registry as a deterministic text dump: sections for
// counters, gauges and histograms, each sorted by metric name. Histogram
// lines carry cumulative bucket counts plus p50/p95/p99 estimates from
// bucket interpolation (see HistogramValue.Quantile); both derive only from
// the deterministic bucket counts, so same-seed dumps stay byte-identical.
func (r *Registry) WriteText(w io.Writer) error {
	var b bytes.Buffer
	if r == nil {
		b.WriteString("# metrics: disabled\n")
		_, err := w.Write(b.Bytes())
		return err
	}
	s := r.Snapshot()
	b.WriteString("# counters\n")
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	b.WriteString("# gauges\n")
	for _, g := range s.Gauges {
		if g.Set {
			fmt.Fprintf(&b, "%s %s\n", g.Name, formatFloat(g.Value))
		}
	}
	b.WriteString("# histograms\n")
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%s count=%d sum=%s", h.Name, h.N, formatFloat(h.Sum))
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " le%s=%d", formatFloat(h.Bounds[i]), cum)
			} else {
				fmt.Fprintf(&b, " inf=%d", cum)
			}
		}
		if h.N > 0 {
			fmt.Fprintf(&b, " p50=%s p95=%s p99=%s",
				formatFloat(h.Quantile(0.50)), formatFloat(h.Quantile(0.95)), formatFloat(h.Quantile(0.99)))
		}
		b.WriteString("\n")
	}
	_, err := w.Write(b.Bytes())
	return err
}

// formatFloat renders floats with the shortest round-trippable
// representation, keeping text dumps byte-stable across runs.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
