package obs

// StageTimer times named pipeline stages with real (wall-clock) durations.
// The deterministic core never reads time itself: it calls Start/stop on
// whatever implementation the caller supplies, and the only shipped
// implementation lives in internal/obs/live — the one sanctioned wall-clock
// scope of the observability plane. Durations recorded through a StageTimer
// must never feed back into inference results or deterministic exports;
// they exist solely for live operational telemetry (/statusz, /metrics).
//
// A nil StageTimer disables stage timing: callers guard with a single
// interface-nil check (see core.Infer), so the off path costs nothing.
type StageTimer interface {
	// Start begins timing the named stage and returns the function that
	// stops it and records the elapsed duration. Implementations must be
	// safe for concurrent use: experiment drivers run many inferences at
	// once, each timing its own stages.
	Start(stage string) (stop func())
}

// Fanout returns a sink duplicating every record, in order, to each of
// sinks. Nil sinks are dropped; one remaining sink passes through
// unwrapped; zero yield nil (which Tracer treats as "drop records, keep
// metrics").
func Fanout(sinks ...Sink) Sink {
	var out []Sink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return fanoutSink(out)
}

type fanoutSink []Sink

func (f fanoutSink) Emit(r Record) {
	for _, s := range f {
		s.Emit(r)
	}
}
