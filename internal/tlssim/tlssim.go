// Package tlssim layers TLS 1.3 record framing over a tcpsim endpoint.
//
// Application payloads are split into records of at most 16 KiB, each
// costing a 5-byte cleartext header plus a 16-byte AEAD tag. The record
// headers are cleartext on the wire, so a traffic monitor can reconstruct
// record boundaries and types from the TCP stream; the Classifier installed
// on the endpoint reproduces exactly that reconstruction for the capture
// layer. This overhead — tags plus HTTP headers hidden inside records — is
// the source of the <=1% HTTPS size over-estimation the paper reports in
// §3.2.
package tlssim

import (
	"sort"

	"csi/internal/obs"
	"csi/internal/tcpsim"
)

// Record framing constants (TLS 1.3).
const (
	RecordHeader  = 5
	AEADTag       = 16
	MaxRecordSize = 16 * 1024
)

// Kind labels the record type byte a monitor can read from the cleartext
// record header.
type Kind int

const (
	Handshake Kind = iota
	AppData
)

// Typical handshake flight sizes in bytes (payloads, before framing):
// ClientHello with SNI, the server flight (ServerHello, EncryptedExtensions,
// Certificate chain, CertificateVerify, Finished), and the client Finished.
const (
	ClientHelloSize  = 330
	ServerFlightSize = 4300
	ClientFinished   = 74
)

type segment struct {
	start, end int64
	kind       Kind
	header     bool
}

// Stream is one direction of a TLS session: it frames writes into records
// and owns the layout needed to classify wire bytes.
type Stream struct {
	ep     *tcpsim.Endpoint
	layout []segment
	off    int64
}

// NewStream wraps an endpoint direction and installs the classifier.
func NewStream(ep *tcpsim.Endpoint) *Stream {
	s := &Stream{ep: ep}
	ep.SetClassifier(s.classify)
	return s
}

// WireSize returns the on-the-wire size of a payload of n bytes after
// record framing.
func WireSize(n int64) int64 {
	if n <= 0 {
		return 0
	}
	records := (n + MaxRecordSize - 1) / MaxRecordSize
	return n + records*(RecordHeader+AEADTag)
}

// Write frames a payload of n bytes into records of the given kind and
// writes them to the underlying TCP endpoint. onDelivered fires at the peer
// when the last record byte has been received in order.
func (s *Stream) Write(n int64, kind Kind, onDelivered func(now float64)) {
	if n <= 0 {
		panic("tlssim: Write of non-positive length") //csi-vet:ignore nakedpanic -- API-misuse assertion in the simulator harness
	}
	payload := n
	var total, records int64
	for n > 0 {
		rec := n
		if rec > MaxRecordSize {
			rec = MaxRecordSize
		}
		n -= rec
		s.layout = append(s.layout,
			segment{start: s.off, end: s.off + RecordHeader, kind: kind, header: true},
			segment{start: s.off + RecordHeader, end: s.off + RecordHeader + rec + AEADTag, kind: kind})
		s.off += RecordHeader + rec + AEADTag
		total += RecordHeader + rec + AEADTag
		records++
	}
	if tr := s.ep.Obs(); tr != nil {
		kindStr := "hs"
		if kind == AppData {
			kindStr = "app"
		}
		tr.Event("tls", "records_framed",
			obs.Int("conn", int64(s.ep.ConnID())),
			obs.Str("kind", kindStr),
			obs.Int("payload", payload),
			obs.Int("records", records),
			obs.Int("wire", total))
	}
	s.ep.Write(total, onDelivered)
}

// classify reports how many bytes in the stream range [from, to) are
// application-data record body bytes and handshake record body bytes.
// Record header bytes fall into neither bucket, mirroring the monitor's
// arithmetic ("excluding IP/TCP/TLS headers", §3.2).
func (s *Stream) classify(from, to int64) (app, hs int64) {
	i := sort.Search(len(s.layout), func(i int) bool { return s.layout[i].end > from })
	for ; i < len(s.layout) && s.layout[i].start < to; i++ {
		seg := s.layout[i]
		lo, hi := seg.start, seg.end
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi <= lo || seg.header {
			continue
		}
		switch seg.kind {
		case AppData:
			app += hi - lo
		case Handshake:
			hs += hi - lo
		}
	}
	return app, hs
}

// Session drives the TLS handshake over an established TCP connection and
// exposes the two framed directions.
type Session struct {
	Up   *Stream // client -> server
	Down *Stream // server -> client
}

// NewSession creates the two streams over a tcpsim.Conn.
func NewSession(conn *tcpsim.Conn) *Session {
	return &Session{
		Up:   NewStream(conn.Client),
		Down: NewStream(conn.Server),
	}
}

// Handshake performs the TLS 1.3 exchange: ClientHello (carrying sni),
// server flight, client Finished. onReady fires at the client when the
// handshake completes. Must be called after the TCP handshake.
func (s *Session) Handshake(sni string, onReady func(now float64)) {
	// The ClientHello record is the first thing on the wire; mark its
	// extent so the capture can surface the SNI.
	s.Up.ep.SetSNI(sni, WireSize(ClientHelloSize))
	s.Up.Write(ClientHelloSize, Handshake, func(now float64) {
		// Runs at the server when the ClientHello is in; respond with the
		// server flight. When that lands at the client, the client sends
		// its Finished and may immediately start issuing requests (TLS 1.3
		// allows the client to write right after Finished).
		s.Down.Write(ServerFlightSize, Handshake, func(now float64) {
			s.Up.Write(ClientFinished, Handshake, nil)
			onReady(now)
		})
	})
}
