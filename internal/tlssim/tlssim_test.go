package tlssim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"csi/internal/netem"
	"csi/internal/packet"
	"csi/internal/sim"
	"csi/internal/tcpsim"
)

type harness struct {
	eng      *sim.Engine
	conn     *tcpsim.Conn
	sess     *Session
	downCaps []packet.View
	upCaps   []packet.View
}

func newHarness(t *testing.T, loss float64) *harness {
	t.Helper()
	h := &harness{eng: sim.New()}
	up := netem.NewLink(h.eng, netem.LinkConfig{Trace: netem.Constant(50_000_000), Delay: 0.02},
		func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	down := netem.NewLink(h.eng, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02, LossProb: loss, Seed: 4, QueueCap: 1 << 20,
	}, func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	up.SetTap(func(v packet.View, now float64) { h.upCaps = append(h.upCaps, v) })
	down.SetTap(func(v packet.View, now float64) { h.downCaps = append(h.downCaps, v) })
	h.conn = tcpsim.NewConn(h.eng, tcpsim.Config{ConnID: 9}, up, down)
	h.sess = NewSession(h.conn)
	return h
}

func TestWireSize(t *testing.T) {
	cases := []struct{ n, want int64 }{
		{1, 1 + 21},
		{16384, 16384 + 21},
		{16385, 16385 + 42},
		{100_000, 100_000 + 7*21},
		{0, 0},
	}
	for _, c := range cases {
		if got := WireSize(c.n); got != c.want {
			t.Errorf("WireSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestHandshakeAndAppData(t *testing.T) {
	h := newHarness(t, 0)
	var ready, done float64
	h.conn.Start(func(now float64) {
		h.sess.Handshake("media.example.com", func(now float64) {
			ready = now
			h.sess.Up.Write(400, AppData, func(now float64) {
				h.sess.Down.Write(200_000, AppData, func(now float64) { done = now })
			})
		})
	})
	h.eng.Run()
	if ready == 0 || done == 0 {
		t.Fatalf("handshake/app incomplete: ready=%g done=%g", ready, done)
	}
}

func TestSNIVisibleOnClientHello(t *testing.T) {
	h := newHarness(t, 0)
	h.conn.Start(func(now float64) {
		h.sess.Handshake("video.cdn.test", func(now float64) {})
	})
	h.eng.Run()
	found := false
	for _, v := range h.upCaps {
		if v.SNI == "video.cdn.test" {
			found = true
			if v.TLSHSBytes == 0 {
				t.Error("SNI packet should carry handshake record bytes")
			}
		}
	}
	if !found {
		t.Fatal("SNI not visible in captured uplink")
	}
}

// The monitor's TLS arithmetic: summing per-packet TLSAppBytes (after SEQ
// dedup, but there is no loss here) must bound the true payload from above
// within 1% — Property 1 for HTTPS.
func TestHTTPSEstimationOverhead(t *testing.T) {
	h := newHarness(t, 0)
	const size = 1_000_000
	var done bool
	h.conn.Start(func(now float64) {
		h.sess.Handshake("x", func(now float64) {
			h.sess.Up.Write(400, AppData, func(now float64) {
				h.sess.Down.Write(size, AppData, func(now float64) { done = true })
			})
		})
	})
	h.eng.Run()
	if !done {
		t.Fatal("incomplete")
	}
	var app, hs int64
	for _, v := range h.downCaps {
		app += v.TLSAppBytes
		hs += v.TLSHSBytes
	}
	if app < size {
		t.Fatalf("estimated %d < true %d", app, size)
	}
	if float64(app) > 1.01*float64(size) {
		t.Fatalf("estimated %d > 1.01 * %d (ratio %.5f)", app, size, float64(app)/float64(size))
	}
	if hs == 0 {
		t.Fatal("no handshake bytes classified on downlink (server flight missing)")
	}
}

// Classification must exactly partition the stream: app + hs + record
// headers == total TCP payload bytes, packet by packet.
func TestClassificationPartitionsStream(t *testing.T) {
	h := newHarness(t, 0.02)
	var done bool
	h.conn.Start(func(now float64) {
		h.sess.Handshake("x", func(now float64) {
			h.sess.Down.Write(300_000, AppData, func(now float64) { done = true })
		})
	})
	h.eng.Run()
	if !done {
		t.Fatal("incomplete")
	}
	for _, v := range h.downCaps {
		if v.TCPPayload == 0 {
			continue
		}
		hdr := v.TCPPayload - v.TLSAppBytes - v.TLSHSBytes
		if hdr < 0 {
			t.Fatalf("packet at seq %d: classified bytes exceed payload", v.TCPSeq)
		}
		// Record headers are 5 bytes per record; a packet can cover at
		// most payload/5+1 headers.
		if hdr > v.TCPPayload/5+5 {
			t.Fatalf("packet at seq %d: implausible header byte count %d of %d",
				v.TCPSeq, hdr, v.TCPPayload)
		}
	}
}

func TestMultipleMessagesKeepOrder(t *testing.T) {
	h := newHarness(t, 0.03)
	var order []int
	h.conn.Start(func(now float64) {
		h.sess.Handshake("x", func(now float64) {
			h.sess.Down.Write(50_000, AppData, func(now float64) { order = append(order, 1) })
			h.sess.Down.Write(70_000, AppData, func(now float64) { order = append(order, 2) })
			h.sess.Down.Write(20_000, AppData, func(now float64) { order = append(order, 3) })
		})
	})
	h.eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("delivery order %v, want [1 2 3]", order)
	}
}

// Property: for ANY split of the stream into ranges, the per-range
// classification sums to exactly the stream totals — the monitor's
// arithmetic cannot depend on packetization.
func TestClassifyPartitionInvariantProperty(t *testing.T) {
	eng := sim.New()
	up := netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(50_000_000)}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
	down := netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(50_000_000)}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
	conn := tcpsim.NewConn(eng, tcpsim.Config{ConnID: 1}, up, down)
	sess := NewSession(conn)
	// Frame a mixture of handshake and app payloads.
	var wantApp, wantHS int64
	payloads := []struct {
		n    int64
		kind Kind
	}{{330, Handshake}, {40_000, AppData}, {4300, Handshake}, {123, AppData}, {17_000, AppData}}
	var wire int64
	for _, pl := range payloads {
		sess.Down.Write(pl.n, pl.kind, nil)
		records := (pl.n + MaxRecordSize - 1) / MaxRecordSize
		body := pl.n + records*AEADTag
		wire += body + records*RecordHeader
		if pl.kind == AppData {
			wantApp += body
		} else {
			wantHS += body
		}
	}
	f := func(cutsRaw []uint16) bool {
		// Build a random partition of [0, wire).
		cuts := []int64{0, wire}
		for _, c := range cutsRaw {
			cuts = append(cuts, int64(c)%wire)
		}
		sortInt64(cuts)
		var app, hs int64
		for i := 1; i < len(cuts); i++ {
			a, h := sess.Down.classify(cuts[i-1], cuts[i])
			app += a
			hs += h
		}
		return app == wantApp && hs == wantHS
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
