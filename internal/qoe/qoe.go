// Package qoe derives Quality-of-Experience metrics from a sequence of
// downloaded chunks with their download-completion times — the final
// analysis step of CSI (§4.3): buffer occupancy across time, stall events,
// per-track playback time distribution, and data usage.
//
// The same analysis applies to ground-truth logs and to CSI-inferred
// sequences, which is how the §7 shaping study reads player behaviour out
// of encrypted traffic.
package qoe

import (
	"fmt"
	"sort"
)

// Chunk is one downloaded chunk with timing.
type Chunk struct {
	ReqTime  float64
	DoneTime float64
	Track    int
	Index    int
	Audio    bool
	Size     int64
}

// Config sets the playback model used for reconstruction.
type Config struct {
	ChunkDur    float64 // required
	StartupSec  float64 // buffered content needed to start; default ChunkDur
	RebufferSec float64 // buffered content needed to resume after a stall; default ChunkDur
	// Horizon truncates the analysis at this wall time (e.g. the session
	// duration); 0 = run playback to the end of downloaded content.
	Horizon float64
	// TolerateGaps accepts a video sequence with missing indexes (an
	// inference degraded by monitor faults): playback is reconstructed
	// from the longest contiguous run and the Report is marked Partial.
	// Without it, a gap is a *GapError.
	TolerateGaps bool
}

// GapError reports a hole in the inferred video index sequence — the
// distinguishing mark of broken input (a monitor that missed chunks) as
// opposed to inference that is merely wrong.
type GapError struct {
	After int // last index before the hole
	Next  int // first index after the hole
}

func (e *GapError) Error() string {
	return fmt.Sprintf("qoe: video indexes not contiguous: %d after %d", e.Next, e.After)
}

// Stall is a playback interruption.
type Stall struct {
	Start float64
	End   float64
}

// Sample is one point of the buffer-occupancy timeline.
type Sample struct {
	T      float64
	Buffer float64 // seconds of video content buffered ahead of playhead
}

// Report is the QoE summary of a session.
type Report struct {
	DataBytes   int64
	VideoChunks int
	AudioChunks int

	StartupDelay float64 // wall time until playback started
	Stalls       []Stall
	StallTime    float64

	// TrackTime is playback seconds spent displaying each track;
	// TrackShare the same normalized to fractions.
	TrackTime  map[int]float64
	TrackShare map[int]float64

	// Switches counts track changes between consecutive video chunks —
	// §7 flags frequent dramatic switches as a QoE harm of oversized
	// token buckets.
	Switches int
	// SwitchMagnitude sums |ladder distance| across switches (a crude
	// measure of how dramatic they were).
	SwitchMagnitude int

	// Buffer holds the buffer occupancy sampled at each download
	// completion and playback transition.
	Buffer []Sample

	// Partial marks a report reconstructed from an incomplete chunk
	// sequence (Config.TolerateGaps): DroppedChunks chunks outside the
	// longest contiguous run (plus duplicate indexes) were discarded
	// across IndexGaps holes.
	Partial       bool
	DroppedChunks int
	IndexGaps     int
}

// Analyze reconstructs playback from download completions.
func Analyze(chunks []Chunk, cfg Config) (*Report, error) {
	if cfg.ChunkDur <= 0 {
		return nil, fmt.Errorf("qoe: chunk duration must be positive")
	}
	// Exact-zero checks: zero is the "unset" sentinel of Config, not a
	// computed value, so no tolerance applies.
	if cfg.StartupSec == 0 { //csi-vet:ignore floatcmp -- exact zero is the unset-parameter sentinel
		cfg.StartupSec = cfg.ChunkDur
	}
	if cfg.RebufferSec == 0 { //csi-vet:ignore floatcmp -- exact zero is the unset-parameter sentinel
		cfg.RebufferSec = cfg.ChunkDur
	}
	rep := &Report{
		TrackTime:  map[int]float64{},
		TrackShare: map[int]float64{},
	}
	var video []Chunk
	for _, c := range chunks {
		rep.DataBytes += c.Size
		if c.Audio {
			rep.AudioChunks++
			continue
		}
		rep.VideoChunks++
		video = append(video, c)
	}
	if len(video) == 0 {
		return nil, fmt.Errorf("qoe: no video chunks")
	}
	sort.Slice(video, func(a, b int) bool { return video[a].Index < video[b].Index })
	if !cfg.TolerateGaps {
		for i := 1; i < len(video); i++ {
			if video[i].Index != video[i-1].Index+1 {
				return nil, &GapError{After: video[i-1].Index, Next: video[i].Index}
			}
		}
	} else {
		// Duplicate indexes (monitor-duplicated downloads) collapse to
		// their first occurrence.
		dedup := video[:1]
		for _, c := range video[1:] {
			if c.Index == dedup[len(dedup)-1].Index {
				rep.Partial = true
				rep.DroppedChunks++
				continue
			}
			dedup = append(dedup, c)
		}
		video = dedup
		// Keep the longest contiguous run; count what fell away.
		bestFrom, bestTo := 0, 1 // [from, to)
		from := 0
		gaps := 0
		for i := 1; i <= len(video); i++ {
			if i < len(video) && video[i].Index == video[i-1].Index+1 {
				continue
			}
			if i < len(video) {
				gaps++
			}
			if i-from > bestTo-bestFrom {
				bestFrom, bestTo = from, i
			}
			from = i
		}
		if gaps > 0 {
			rep.Partial = true
			rep.IndexGaps = gaps
			rep.DroppedChunks += len(video) - (bestTo - bestFrom)
			video = video[bestFrom:bestTo]
		}
	}
	for i := 1; i < len(video); i++ {
		if video[i].Track != video[i-1].Track {
			rep.Switches++
			d := video[i].Track - video[i-1].Track
			if d < 0 {
				d = -d
			}
			rep.SwitchMagnitude += d
		}
	}

	dur := cfg.ChunkDur
	// Playback replay. Content time is relative to the first chunk.
	type segment struct {
		wallStart, wallEnd, contentStart float64
	}
	var segments []segment
	var stalls []Stall

	// availAt(c) = content seconds available once chunk c is done.
	playhead := 0.0 // content position
	started := false
	playing := false
	var playStart float64
	var stallStart float64
	contentEnd := 0.0

	closeSegment := func(at float64) {
		if playing {
			playhead += at - playStart
			segments = append(segments, segment{wallStart: playStart, wallEnd: at, contentStart: playhead - (at - playStart)})
			playing = false
		}
	}

	record := func(t float64) {
		buf := contentEnd - playhead
		if playing {
			buf = contentEnd - (playhead + t - playStart)
		}
		if buf < 0 {
			buf = 0
		}
		rep.Buffer = append(rep.Buffer, Sample{T: t, Buffer: buf})
	}

	for i := 0; i < len(video); i++ {
		t := video[i].DoneTime
		if cfg.Horizon > 0 && t > cfg.Horizon {
			break
		}
		// Advance playback up to t: does the playhead catch the buffer?
		if playing {
			runway := contentEnd - playhead // content remaining at playStart
			if playStart+runway <= t {
				// Stall (or pause) at playStart+runway.
				at := playStart + runway
				closeSegment(at)
				stallStart = at
			}
		}
		contentEnd = float64(i+1) * dur
		record(t)
		threshold := cfg.RebufferSec
		if !started {
			threshold = cfg.StartupSec
		}
		if !playing && contentEnd-playhead >= threshold-1e-9 {
			if started && stallStart > 0 {
				stalls = append(stalls, Stall{Start: stallStart, End: t})
				stallStart = 0
			}
			if !started {
				started = true
				rep.StartupDelay = t
			}
			playing = true
			playStart = t
		}
	}
	// Drain the final buffer.
	if playing {
		end := playStart + (contentEnd - playhead)
		if cfg.Horizon > 0 && end > cfg.Horizon {
			end = cfg.Horizon
		}
		closeSegment(end)
	} else if stallStart > 0 {
		end := stallStart
		if cfg.Horizon > 0 {
			end = cfg.Horizon
		}
		stalls = append(stalls, Stall{Start: stallStart, End: end})
	}
	rep.Stalls = stalls
	for _, s := range stalls {
		rep.StallTime += s.End - s.Start
	}

	// Per-track playback time: map content intervals through segments.
	totalPlay := 0.0
	for _, seg := range segments {
		segDur := seg.wallEnd - seg.wallStart
		totalPlay += segDur
		cStart, cEnd := seg.contentStart, seg.contentStart+segDur
		first := int(cStart / dur)
		for idx := first; float64(idx)*dur < cEnd && idx < len(video); idx++ {
			lo := float64(idx) * dur
			hi := lo + dur
			if lo < cStart {
				lo = cStart
			}
			if hi > cEnd {
				hi = cEnd
			}
			if hi > lo {
				rep.TrackTime[video[idx].Track] += hi - lo
			}
		}
	}
	if totalPlay > 0 {
		for tr, tt := range rep.TrackTime {
			rep.TrackShare[tr] = tt / totalPlay
		}
	}
	return rep, nil
}
