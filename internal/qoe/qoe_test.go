package qoe

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chunksEvery builds n chunks of dur-second content completing at the given
// interval, all from one track.
func chunksEvery(n int, interval float64, track int) []Chunk {
	var out []Chunk
	for i := 0; i < n; i++ {
		out = append(out, Chunk{
			ReqTime:  float64(i) * interval,
			DoneTime: float64(i)*interval + interval*0.8,
			Track:    track,
			Index:    i,
			Size:     1000,
		})
	}
	return out
}

func TestSteadyPlaybackNoStalls(t *testing.T) {
	// 5-second chunks arriving every 4 seconds: buffer grows, no stalls.
	rep, err := Analyze(chunksEvery(20, 4, 2), Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalls) != 0 {
		t.Fatalf("stalls = %v, want none", rep.Stalls)
	}
	if rep.VideoChunks != 20 {
		t.Fatalf("video chunks = %d", rep.VideoChunks)
	}
	if rep.StartupDelay <= 0 || rep.StartupDelay > 4 {
		t.Fatalf("startup delay = %g", rep.StartupDelay)
	}
	// All playback on track 2.
	if s := rep.TrackShare[2]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("track 2 share = %g, want 1", s)
	}
}

func TestSlowDownloadsCauseStalls(t *testing.T) {
	// 5-second chunks arriving every 8 seconds: the playhead starves.
	rep, err := Analyze(chunksEvery(10, 8, 0), Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalls) == 0 {
		t.Fatal("expected stalls when downloads are slower than playback")
	}
	if rep.StallTime <= 0 {
		t.Fatal("stall time not accounted")
	}
	// Stalls must not overlap and must be ordered.
	for i := 1; i < len(rep.Stalls); i++ {
		if rep.Stalls[i].Start < rep.Stalls[i-1].End {
			t.Fatalf("overlapping stalls: %v", rep.Stalls)
		}
	}
}

func TestTrackShares(t *testing.T) {
	// First 5 chunks track 0, next 5 track 3, fast downloads.
	chunks := chunksEvery(10, 1, 0)
	for i := 5; i < 10; i++ {
		chunks[i].Track = 3
	}
	rep, err := Analyze(chunks, Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.TrackShare[0]-0.5) > 0.01 || math.Abs(rep.TrackShare[3]-0.5) > 0.01 {
		t.Fatalf("shares = %v, want ~50/50", rep.TrackShare)
	}
}

func TestDataBytesAndAudio(t *testing.T) {
	chunks := chunksEvery(4, 1, 0)
	chunks = append(chunks, Chunk{ReqTime: 0.5, DoneTime: 0.7, Audio: true, Size: 500})
	rep, err := Analyze(chunks, Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataBytes != 4*1000+500 {
		t.Fatalf("data bytes = %d", rep.DataBytes)
	}
	if rep.AudioChunks != 1 {
		t.Fatalf("audio chunks = %d", rep.AudioChunks)
	}
}

func TestHorizonTruncates(t *testing.T) {
	rep, err := Analyze(chunksEvery(20, 4, 0), Config{ChunkDur: 5, Horizon: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Buffer {
		if s.T > 30 {
			t.Fatalf("buffer sample beyond horizon: %v", s)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Analyze(nil, Config{ChunkDur: 5}); err == nil {
		t.Error("no chunks accepted")
	}
	if _, err := Analyze(chunksEvery(3, 1, 0), Config{}); err == nil {
		t.Error("zero chunk duration accepted")
	}
	gap := chunksEvery(3, 1, 0)
	gap[2].Index = 5
	if _, err := Analyze(gap, Config{ChunkDur: 5}); err == nil {
		t.Error("non-contiguous indexes accepted")
	}
}

func TestBufferNeverNegative(t *testing.T) {
	rep, err := Analyze(chunksEvery(15, 7, 0), Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Buffer {
		if s.Buffer < 0 {
			t.Fatalf("negative buffer at t=%g", s.T)
		}
	}
}

func TestSwitchCounting(t *testing.T) {
	chunks := chunksEvery(6, 1, 0)
	chunks[2].Track = 3 // up by 3
	chunks[3].Track = 3
	chunks[4].Track = 1 // down by 2
	rep, err := Analyze(chunks, Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 0->0->3->3->1->0: switches at 2, 4, 5.
	if rep.Switches != 3 {
		t.Fatalf("switches = %d, want 3", rep.Switches)
	}
	if rep.SwitchMagnitude != 3+2+1 {
		t.Fatalf("magnitude = %d, want 6", rep.SwitchMagnitude)
	}
}

// Property: regardless of download timing patterns, the report invariants
// hold — track shares sum to ~1 when playback happened, stalls are ordered
// and disjoint, and the buffer timeline is time-sorted and non-negative.
func TestReportInvariantsProperty(t *testing.T) {
	f := func(gaps []uint8, seed int64) bool {
		if len(gaps) < 3 {
			return true
		}
		if len(gaps) > 40 {
			gaps = gaps[:40]
		}
		rng := rand.New(rand.NewSource(seed))
		var chunks []Chunk
		ts := 0.0
		for i, g := range gaps {
			ts += float64(g%90)/10 + 0.1
			chunks = append(chunks, Chunk{
				ReqTime:  ts - 0.1,
				DoneTime: ts,
				Track:    rng.Intn(4),
				Index:    i,
				Size:     1000,
			})
		}
		rep, err := Analyze(chunks, Config{ChunkDur: 5})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, s := range rep.TrackShare {
			if s < 0 {
				return false
			}
			sum += s
		}
		if len(rep.TrackShare) > 0 && math.Abs(sum-1) > 1e-6 {
			return false
		}
		for i, s := range rep.Stalls {
			if s.End < s.Start {
				return false
			}
			if i > 0 && s.Start < rep.Stalls[i-1].End {
				return false
			}
		}
		prev := -1.0
		for _, s := range rep.Buffer {
			if s.Buffer < 0 || s.T < prev {
				return false
			}
			prev = s.T
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGapErrorIsTyped(t *testing.T) {
	gap := chunksEvery(4, 1, 0)
	gap[3].Index = 7
	_, err := Analyze(gap, Config{ChunkDur: 5})
	var ge *GapError
	if !errors.As(err, &ge) {
		t.Fatalf("err = %v (%T), want *GapError", err, err)
	}
	if ge.After != 2 || ge.Next != 7 {
		t.Fatalf("gap = %+v, want After 2 Next 7", ge)
	}
}

func TestTolerateGapsYieldsPartialReport(t *testing.T) {
	// Indexes 0..4 then 8,9: the run [0,4] survives, 2 chunks drop.
	chunks := chunksEvery(7, 1, 0)
	chunks[5].Index = 8
	chunks[6].Index = 9
	rep, err := Analyze(chunks, Config{ChunkDur: 5, TolerateGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Fatal("report not marked partial")
	}
	if rep.IndexGaps != 1 || rep.DroppedChunks != 2 {
		t.Fatalf("gaps = %d dropped = %d, want 1 and 2", rep.IndexGaps, rep.DroppedChunks)
	}
	// The surviving run replays like a clean 5-chunk session.
	clean, err := Analyze(chunksEvery(5, 1, 0), Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StartupDelay != clean.StartupDelay || rep.StallTime != clean.StallTime {
		t.Fatalf("partial replay diverged: %+v vs %+v", rep, clean)
	}
}

func TestTolerateGapsDedupsDuplicateIndexes(t *testing.T) {
	chunks := chunksEvery(5, 1, 0)
	dup := chunks[2]
	dup.DoneTime += 0.05
	chunks = append(chunks, dup)
	rep, err := Analyze(chunks, Config{ChunkDur: 5, TolerateGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial || rep.DroppedChunks != 1 || rep.IndexGaps != 0 {
		t.Fatalf("partial=%v dropped=%d gaps=%d, want true/1/0", rep.Partial, rep.DroppedChunks, rep.IndexGaps)
	}
}

func TestTolerateGapsCleanInputUnchanged(t *testing.T) {
	clean, err := Analyze(chunksEvery(10, 4, 1), Config{ChunkDur: 5})
	if err != nil {
		t.Fatal(err)
	}
	tol, err := Analyze(chunksEvery(10, 4, 1), Config{ChunkDur: 5, TolerateGaps: true})
	if err != nil {
		t.Fatal(err)
	}
	if tol.Partial || tol.DroppedChunks != 0 || tol.IndexGaps != 0 {
		t.Fatalf("clean input marked partial: %+v", tol)
	}
	if tol.StartupDelay != clean.StartupDelay || tol.StallTime != clean.StallTime ||
		tol.Switches != clean.Switches || len(tol.Buffer) != len(clean.Buffer) {
		t.Fatal("TolerateGaps changed a clean analysis")
	}
}
