package tcpsim

import (
	"testing"

	"csi/internal/ivl"
	"csi/internal/netem"
	"csi/internal/packet"
	"csi/internal/sim"
)

type harness struct {
	eng  *sim.Engine
	conn *Conn
	up   *netem.Link
	down *netem.Link
	caps []packet.View
}

func newHarness(t *testing.T, downCfg netem.LinkConfig) *harness {
	t.Helper()
	h := &harness{eng: sim.New()}
	h.eng.SetEventLimit(5_000_000)
	upCfg := netem.LinkConfig{Trace: netem.Constant(50_000_000), Delay: 0.02}
	var conn *Conn
	h.up = netem.NewLink(h.eng, upCfg, func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	h.down = netem.NewLink(h.eng, downCfg, func(p *packet.Packet) { p.Arrive(h.eng.Now()) })
	conn = NewConn(h.eng, Config{ConnID: 1}, h.up, h.down)
	h.conn = conn
	h.down.SetTap(func(v packet.View, now float64) { h.caps = append(h.caps, v) })
	return h
}

func TestHandshakeAndTransfer(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.02})
	var openAt, doneAt float64
	h.conn.Start(func(now float64) {
		openAt = now
		// Client sends a 400-byte request; server answers with 100 KB.
		h.conn.Client.Write(400, func(now float64) {
			h.conn.Server.Write(100_000, func(now float64) { doneAt = now })
		})
	})
	h.eng.Run()
	if openAt <= 0 {
		t.Fatal("connection never opened")
	}
	if doneAt <= openAt {
		t.Fatalf("transfer did not complete: open=%g done=%g", openAt, doneAt)
	}
	// 100 KB at 1 MB/s is 0.1 s serialization + handshake RTTs; allow a
	// generous but bounded window.
	if doneAt > 2.0 {
		t.Fatalf("transfer too slow: done=%g", doneAt)
	}
	if got := h.conn.Client.RcvNxt(); got != 100_000 {
		t.Fatalf("client received %d bytes, want 100000", got)
	}
}

func TestInOrderDeliveryUnderLoss(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02,
		LossProb: 0.03, Seed: 42, QueueCap: 1 << 20,
	})
	const size = 300_000
	var done float64
	h.conn.Start(func(now float64) {
		h.conn.Client.Write(400, func(now float64) {
			h.conn.Server.Write(size, func(now float64) { done = now })
		})
	})
	h.eng.Run()
	if done == 0 {
		t.Fatal("transfer never completed under loss")
	}
	if h.conn.Server.Retransmits == 0 {
		t.Fatal("expected retransmissions under 3% loss")
	}
	if got := h.conn.Client.RcvNxt(); got != size {
		t.Fatalf("receiver contiguous offset %d, want %d", got, size)
	}
}

func TestRetransmissionsReuseSeq(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02,
		LossProb: 0.05, Seed: 7, QueueCap: 1 << 20,
	})
	var done bool
	h.conn.Start(func(now float64) {
		h.conn.Client.Write(400, func(now float64) {
			h.conn.Server.Write(400_000, func(now float64) { done = true })
		})
	})
	h.eng.Run()
	if !done {
		t.Fatal("transfer incomplete")
	}
	// The tap (capture at the gateway, before radio loss) must see every
	// transmission. De-duplicating by SEQ ranges must recover the stream
	// length exactly — this is the invariant the HTTPS estimator relies on.
	var seen ivl.Set
	var raw, deduped int64
	for _, v := range h.caps {
		if v.TCPPayload == 0 {
			continue
		}
		raw += v.TCPPayload
		deduped += seen.Add(v.TCPSeq, v.TCPSeq+v.TCPPayload)
	}
	if raw <= 400_000 {
		t.Fatalf("raw captured bytes %d; expected duplicates from retransmissions", raw)
	}
	if deduped != 400_000 {
		t.Fatalf("deduped captured bytes = %d, want 400000", deduped)
	}
}

func TestCongestionWindowRespondsToDrops(t *testing.T) {
	// A tiny queue forces drop-tail losses; the transfer must still finish
	// and must record fast retransmits or timeouts.
	h := newHarness(t, netem.LinkConfig{
		Trace: netem.Constant(4_000_000), Delay: 0.03, QueueCap: 30_000,
	})
	var done bool
	h.conn.Start(func(now float64) {
		h.conn.Client.Write(400, func(now float64) {
			h.conn.Server.Write(1_000_000, func(now float64) { done = true })
		})
	})
	h.eng.Run()
	if !done {
		t.Fatal("transfer incomplete with small queue")
	}
	if h.conn.Server.FastRetx+h.conn.Server.Timeouts == 0 {
		t.Fatal("expected loss recovery events with a 30 KB queue")
	}
}

func TestMessageBoundaries(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.01})
	var order []int
	h.conn.Start(func(now float64) {
		h.conn.Server.Write(10_000, func(now float64) { order = append(order, 1) })
		h.conn.Server.Write(20_000, func(now float64) { order = append(order, 2) })
		h.conn.Server.Write(5_000, func(now float64) { order = append(order, 3) })
	})
	h.eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("message callbacks order = %v, want [1 2 3]", order)
	}
}

func TestPureAcksHaveNoPayload(t *testing.T) {
	eng := sim.New()
	var upViews []packet.View
	up := netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(50_000_000), Delay: 0.01},
		func(p *packet.Packet) { p.Arrive(eng.Now()) })
	down := netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.01},
		func(p *packet.Packet) { p.Arrive(eng.Now()) })
	up.SetTap(func(v packet.View, now float64) { upViews = append(upViews, v) })
	conn := NewConn(eng, Config{ConnID: 2}, up, down)
	conn.Start(func(now float64) {
		conn.Server.Write(100_000, nil)
	})
	eng.Run()
	acks := 0
	for _, v := range upViews {
		if v.TCPPayload == 0 && v.Size == packet.IPHeader+packet.TCPHeader {
			acks++
		}
	}
	if acks == 0 {
		t.Fatal("no pure ACKs observed on the uplink")
	}
}

func TestThroughputMatchesLinkRate(t *testing.T) {
	h := newHarness(t, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.02, QueueCap: 1 << 20})
	const size = 4_000_000
	var start, done float64
	h.conn.Start(func(now float64) {
		start = now
		h.conn.Server.Write(size, func(now float64) { done = now })
	})
	h.eng.Run()
	if done == 0 {
		t.Fatal("no completion")
	}
	rate := float64(size) * 8 / (done - start)
	// Should achieve most of the 8 Mbit/s link after slow start.
	if rate < 5_000_000 || rate > 8_100_000 {
		t.Fatalf("achieved %0.f bit/s on an 8 Mbit/s link", rate)
	}
}

// SACK-based recovery must tolerate mild reordering without spurious
// retransmission storms.
func TestReorderingToleranceTCP(t *testing.T) {
	eng := sim.New()
	up := netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(50_000_000), Delay: 0.02},
		func(p *packet.Packet) { p.Arrive(eng.Now()) })
	down := netem.NewLink(eng, netem.LinkConfig{
		Trace: netem.Constant(8_000_000), Delay: 0.02, QueueCap: 1 << 20,
		ReorderProb: 0.05, Seed: 13,
	}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
	conn := NewConn(eng, Config{ConnID: 4}, up, down)
	var done bool
	conn.Start(func(now float64) {
		conn.Server.Write(1_000_000, func(now float64) { done = true })
	})
	eng.Run()
	if !done {
		t.Fatal("transfer incomplete under reordering")
	}
	if down.Reordered == 0 {
		t.Fatal("no packets actually reordered")
	}
	// Some spurious SACK-hole retransmissions are expected but bounded.
	if conn.Server.Retransmits > 100 {
		t.Fatalf("reordering caused %d retransmissions", conn.Server.Retransmits)
	}
}
