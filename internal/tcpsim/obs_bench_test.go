package tcpsim

import (
	"testing"

	"csi/internal/netem"
	"csi/internal/obs"
	"csi/internal/packet"
	"csi/internal/sim"
)

// benchTransfer runs one handshake + 500 KB server->client transfer over a
// lossy 8 Mbit/s link per iteration, with the given tracer on the
// connection. The loss forces retransmission/recovery paths, so the Off/On
// pair covers every obs hook in the segment-delivery code, not just the
// happy path.
func benchTransfer(b *testing.B, mkTracer func() *obs.Tracer) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		eng.SetEventLimit(5_000_000)
		up := netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(50_000_000), Delay: 0.02},
			func(p *packet.Packet) { p.Arrive(eng.Now()) })
		down := netem.NewLink(eng, netem.LinkConfig{
			Trace: netem.Constant(8_000_000), Delay: 0.02,
			LossProb: 0.01, Seed: 11, QueueCap: 1 << 20,
		}, func(p *packet.Packet) { p.Arrive(eng.Now()) })
		conn := NewConn(eng, Config{ConnID: 1, Obs: mkTracer()}, up, down)
		done := false
		conn.Start(func(now float64) {
			conn.Client.Write(400, func(now float64) {
				conn.Server.Write(500_000, func(now float64) { done = true })
			})
		})
		eng.Run()
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
}

func BenchmarkTransferObsOff(b *testing.B) {
	benchTransfer(b, func() *obs.Tracer { return nil })
}

func BenchmarkTransferObsOn(b *testing.B) {
	benchTransfer(b, func() *obs.Tracer { return obs.New(nil, obs.NewCollector()) })
}
