// Package tcpsim implements a miniature but behaviourally faithful TCP for
// the discrete-event simulator: slow start with a HyStart-style delay exit,
// AIMD congestion avoidance, cumulative + selective acknowledgements (SACK),
// scoreboard-driven loss recovery, retransmission timeouts with exponential
// backoff, and in-order delivery.
//
// Payload content is never materialized: the byte stream is modelled as
// lengths and offsets only. Application "messages" written with Write fire a
// callback at the peer once the peer's contiguous receive offset passes the
// message end — exactly the signal an HTTP layer needs ("response fully
// received").
//
// Crucially for CSI, retransmitted segments reuse their original sequence
// number (visible in packet.View.TCPSeq), which is what lets the HTTPS
// estimator discard retransmissions (§3.2 of the paper).
package tcpsim

import (
	"csi/internal/ivl"
	"csi/internal/obs"
	"csi/internal/packet"
	"csi/internal/sim"
)

// Config parameterizes a connection.
type Config struct {
	ConnID   int
	ServerIP string  // server address surfaced in packet views
	MSS      int64   // max segment payload; default 1400
	InitCwnd int64   // initial congestion window in bytes; default 10*MSS
	RTOMin   float64 // minimum retransmission timeout; default 0.2 s
	Obs      *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1400
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10 * c.MSS
	}
	if c.RTOMin == 0 {
		c.RTOMin = 0.2
	}
	return c
}

const maxSackBlocks = 8

// Classifier attributes a range of this direction's TLS byte stream to
// monitor-visible categories (application-data record bytes vs handshake
// record bytes). Installed by the TLS layer.
type Classifier func(from, to int64) (app, hs int64)

type message struct {
	end int64
	fn  func(now float64)
}

type segTiming struct {
	end  int64
	t    float64
	rtxd bool
}

// Endpoint is one side of a connection. It sends data packets and pure ACKs
// through out and receives the peer's packets via Arrive callbacks.
type Endpoint struct {
	eng  *sim.Engine
	cfg  Config
	out  packet.Sender
	peer *Endpoint
	dir  packet.Dir

	// Sender state.
	sndUna, sndNxt, sndTotal int64
	cwnd, ssthresh           float64
	sacked                   ivl.Set    // peer-reported received ranges >= sndUna
	rtxQueue                 [][2]int64 // holes scheduled for retransmission
	rtxQueueBytes            int64
	rtxMarked                ivl.Set // holes queued in the current epoch
	inRecovery               bool
	recoverPoint             int64
	rto                      float64
	srtt, rttvar, minRTT     float64
	rtoTimer                 *sim.Event
	timing                   []segTiming
	lastSend                 float64

	// Receiver state.
	rcvNxt   int64
	received ivl.Set
	inbox    []message // messages the peer wrote, sorted by end

	// Monitor-visible classification of this direction's stream.
	classify Classifier
	sniHost  string
	sniEnd   int64

	// Counters.
	Retransmits   int64
	Timeouts      int64
	FastRetx      int64
	SentData      int64
	SentAcks      int64
	DeliveredByte int64

	// Observability (all handles nil-safe).
	tr            *obs.Tracer
	cSegments     *obs.Counter
	cRetransmits  *obs.Counter
	cTimeouts     *obs.Counter
	cFastRetx     *obs.Counter
	lastCwndTrace float64
}

// Conn is a full-duplex TCP connection between a client and a server
// endpoint.
type Conn struct {
	Client *Endpoint
	Server *Endpoint
	eng    *sim.Engine
	cfg    Config
}

// NewConn creates a connection. up carries client->server packets, down
// carries server->client packets.
func NewConn(eng *sim.Engine, cfg Config, up, down packet.Sender) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{eng: eng, cfg: cfg}
	c.Client = newEndpoint(eng, cfg, up, packet.Up)
	c.Server = newEndpoint(eng, cfg, down, packet.Down)
	c.Client.peer = c.Server
	c.Server.peer = c.Client
	return c
}

func newEndpoint(eng *sim.Engine, cfg Config, out packet.Sender, dir packet.Dir) *Endpoint {
	ep := &Endpoint{
		eng:      eng,
		cfg:      cfg,
		out:      out,
		dir:      dir,
		cwnd:     float64(cfg.InitCwnd),
		ssthresh: 1 << 30,
		rto:      1.0,
	}
	// Only the server endpoint of a connection carries the download-heavy
	// direction the paper cares about; instrumenting both lanes doubles the
	// record volume for no inference signal, so only Down endpoints trace.
	if dir == packet.Down {
		ep.tr = cfg.Obs
		reg := cfg.Obs.Metrics()
		ep.cSegments = reg.Counter("tcp.segments_sent")
		ep.cRetransmits = reg.Counter("tcp.retransmits")
		ep.cTimeouts = reg.Counter("tcp.timeouts")
		ep.cFastRetx = reg.Counter("tcp.fast_retx")
	}
	return ep
}

// Obs returns the tracer attached to this endpoint (nil when tracing is
// off or the endpoint is on the untraced direction). The TLS layer uses it
// to stamp record-framing events.
func (ep *Endpoint) Obs() *obs.Tracer { return ep.tr }

// ConnID returns the connection id the endpoint belongs to.
func (ep *Endpoint) ConnID() int { return ep.cfg.ConnID }

// traceCwnd samples the congestion-window trajectory, suppressing samples
// until the window has moved at least one MSS since the last one so constant
// windows do not flood the trace.
func (ep *Endpoint) traceCwnd() {
	if ep.tr == nil {
		return
	}
	d := ep.cwnd - ep.lastCwndTrace
	if d < 0 {
		d = -d
	}
	if d < float64(ep.cfg.MSS) {
		return
	}
	ep.lastCwndTrace = ep.cwnd
	ep.tr.Sample("tcp", "cwnd_bytes", ep.cwnd)
}

// DeliverToClient returns the function the downlink should invoke on packet
// arrival.
func (c *Conn) DeliverToClient() func(p *packet.Packet) {
	return func(p *packet.Packet) { p.Arrive(c.eng.Now()) }
}

// DeliverToServer returns the function the uplink should invoke on packet
// arrival.
func (c *Conn) DeliverToServer() func(p *packet.Packet) {
	return func(p *packet.Packet) { p.Arrive(c.eng.Now()) }
}

// Start performs the 3-way handshake and calls onOpen (at the client) when
// the connection is established.
func (c *Conn) Start(onOpen func(now float64)) {
	cl, sv := c.Client, c.Server
	syn := &packet.Packet{
		Size: packet.IPHeader + packet.TCPHeader + 12, // SYN options
		View: packet.View{Dir: packet.Up, Proto: packet.TCP, ConnID: c.cfg.ConnID, ServerIP: c.cfg.ServerIP},
	}
	syn.Arrive = func(now float64) {
		synack := &packet.Packet{
			Size: packet.IPHeader + packet.TCPHeader + 12,
			View: packet.View{Dir: packet.Down, Proto: packet.TCP, ConnID: c.cfg.ConnID, ServerIP: c.cfg.ServerIP},
		}
		synack.Arrive = func(now float64) {
			ack := &packet.Packet{
				Size: packet.IPHeader + packet.TCPHeader,
				View: packet.View{Dir: packet.Up, Proto: packet.TCP, ConnID: c.cfg.ConnID, ServerIP: c.cfg.ServerIP},
			}
			ack.Arrive = func(now float64) {}
			cl.out.Send(ack)
			onOpen(c.eng.Now())
		}
		sv.out.Send(synack)
	}
	cl.out.Send(syn)
}

// SetClassifier installs the TLS byte classifier for this direction.
func (ep *Endpoint) SetClassifier(fn Classifier) { ep.classify = fn }

// SetSNI marks the stream range [0, end) as carrying the given SNI host so
// the capture can surface it (ClientHello).
func (ep *Endpoint) SetSNI(host string, end int64) {
	ep.sniHost = host
	ep.sniEnd = end
}

// Write appends n bytes to this endpoint's send stream. onDelivered (may be
// nil) fires at the peer when the peer has contiguously received the entire
// message.
func (ep *Endpoint) Write(n int64, onDelivered func(now float64)) {
	if n <= 0 {
		panic("tcpsim: Write of non-positive length") //csi-vet:ignore nakedpanic -- API-misuse assertion in the simulator harness
	}
	ep.sndTotal += n
	if onDelivered != nil {
		ep.peer.inbox = append(ep.peer.inbox, message{end: ep.sndTotal, fn: onDelivered})
	}
	ep.trySend()
}

// BytesQueued returns bytes written but not yet sent for the first time.
func (ep *Endpoint) BytesQueued() int64 { return ep.sndTotal - ep.sndNxt }

// BytesUnacked returns bytes past sndUna.
func (ep *Endpoint) BytesUnacked() int64 { return ep.sndNxt - ep.sndUna }

// pipe estimates bytes currently in flight: everything sent and not yet
// cumulatively acked, minus SACKed bytes, minus holes queued for
// retransmission (presumed lost).
func (ep *Endpoint) pipe() int64 {
	p := ep.sndNxt - ep.sndUna - ep.sacked.Covered(ep.sndUna, ep.sndNxt) - ep.rtxQueueBytes
	if p < 0 {
		p = 0
	}
	return p
}

func (ep *Endpoint) trySend() {
	// Congestion window validation (RFC 2861, simplified): after an idle
	// period longer than the RTO the old window is stale; restart from the
	// initial window instead of blasting a line-rate burst into the path.
	if ep.pipe() == 0 && ep.lastSend > 0 && ep.eng.Now()-ep.lastSend > ep.computeRTO() {
		if ep.cwnd > float64(ep.cfg.InitCwnd) {
			ep.ssthresh = ep.cwnd
			ep.cwnd = float64(ep.cfg.InitCwnd)
		}
	}
	for {
		inFlight := ep.pipe()
		if float64(inFlight)+1 > ep.cwnd {
			return
		}
		budget := int64(ep.cwnd) - inFlight
		// Retransmissions first.
		if len(ep.rtxQueue) > 0 {
			h := ep.rtxQueue[0]
			n := h[1] - h[0]
			if n > ep.cfg.MSS {
				n = ep.cfg.MSS
			}
			if n > budget {
				return
			}
			if n == h[1]-h[0] {
				ep.rtxQueue = ep.rtxQueue[1:]
			} else {
				ep.rtxQueue[0][0] += n
			}
			ep.rtxQueueBytes -= n
			ep.sendSegment(h[0], n, true)
			continue
		}
		if ep.sndNxt >= ep.sndTotal {
			return
		}
		seg := ep.cfg.MSS
		if rem := ep.sndTotal - ep.sndNxt; rem < seg {
			seg = rem
		}
		if seg > budget {
			// Silly-window avoidance: wait for the window to open a full
			// segment rather than dribbling sub-MSS packets.
			return
		}
		ep.sendSegment(ep.sndNxt, seg, false)
		ep.timing = append(ep.timing, segTiming{end: ep.sndNxt + seg, t: ep.eng.Now()})
		ep.sndNxt += seg
	}
}

func (ep *Endpoint) sendSegment(seq, n int64, rtx bool) {
	ep.SentData++
	ep.cSegments.Inc()
	ep.lastSend = ep.eng.Now()
	if rtx {
		ep.Retransmits++
		ep.cRetransmits.Inc()
		// Karn's rule: never sample RTT from ranges touched by a
		// retransmission.
		for i := range ep.timing {
			if ep.timing[i].end > seq {
				ep.timing[i].rtxd = true
			}
		}
	}
	var app, hs int64
	if ep.classify != nil {
		app, hs = ep.classify(seq, seq+n)
	} else {
		app = n
	}
	v := packet.View{
		Dir:         ep.dir,
		Proto:       packet.TCP,
		ConnID:      ep.cfg.ConnID,
		ServerIP:    ep.cfg.ServerIP,
		TCPSeq:      seq,
		TCPPayload:  n,
		TLSAppBytes: app,
		TLSHSBytes:  hs,
	}
	if ep.sniHost != "" && seq < ep.sniEnd {
		v.SNI = ep.sniHost
	}
	p := &packet.Packet{
		Size: packet.IPHeader + packet.TCPHeader + n,
		View: v,
	}
	peer := ep.peer
	p.Arrive = func(now float64) { peer.onData(seq, n) }
	ep.out.Send(p)
	ep.armRTO()
}

func (ep *Endpoint) armRTO() {
	if ep.rtoTimer != nil {
		ep.rtoTimer.Cancel()
	}
	rto := ep.rto
	if rto < ep.cfg.RTOMin {
		rto = ep.cfg.RTOMin
	}
	ep.rtoTimer = ep.eng.Schedule(rto, ep.onRTO)
}

func (ep *Endpoint) onRTO() {
	ep.rtoTimer = nil
	if ep.sndUna >= ep.sndNxt {
		return // nothing outstanding
	}
	ep.Timeouts++
	ep.cTimeouts.Inc()
	inFlight := ep.sndNxt - ep.sndUna
	ep.ssthresh = float64(max64(inFlight/2, 2*ep.cfg.MSS))
	ep.cwnd = float64(ep.cfg.MSS)
	if ep.tr != nil {
		ep.tr.Event("tcp", "rto",
			obs.Int("conn", int64(ep.cfg.ConnID)),
			obs.Float("rto", ep.rto),
			obs.Int("in_flight", inFlight))
		ep.traceCwnd()
	}
	ep.inRecovery = false
	// Forget scoreboard plans; rebuild from fresh SACK information.
	ep.rtxQueue = nil
	ep.rtxQueueBytes = 0
	ep.rtxMarked = ivl.Set{}
	ep.rto *= 2
	if ep.rto > 60 {
		ep.rto = 60
	}
	n := ep.cfg.MSS
	if rem := ep.sndNxt - ep.sndUna; rem < n {
		n = rem
	}
	ep.sendSegment(ep.sndUna, n, true)
}

// onData runs at the receiving endpoint when a data segment arrives.
func (ep *Endpoint) onData(seq, n int64) {
	ep.received.Add(seq, seq+n)
	newNxt := ep.received.ContiguousFrom(ep.rcvNxt)
	if newNxt > ep.rcvNxt {
		ep.DeliveredByte += newNxt - ep.rcvNxt
		ep.rcvNxt = newNxt
		ep.fireInbox()
	}
	ep.sendAck()
}

func (ep *Endpoint) fireInbox() {
	now := ep.eng.Now()
	i := 0
	for ; i < len(ep.inbox) && ep.inbox[i].end <= ep.rcvNxt; i++ {
		ep.inbox[i].fn(now)
	}
	if i > 0 {
		ep.inbox = append(ep.inbox[:0], ep.inbox[i:]...)
	}
}

// sendAck emits a pure ACK for the current rcvNxt plus SACK blocks for any
// out-of-order data.
func (ep *Endpoint) sendAck() {
	ep.SentAcks++
	ack := ep.rcvNxt
	sack := ep.received.SpansAbove(ep.rcvNxt, maxSackBlocks)
	v := packet.View{
		Dir:      ep.dir,
		Proto:    packet.TCP,
		ConnID:   ep.cfg.ConnID,
		ServerIP: ep.cfg.ServerIP,
		TCPSeq:   ep.sndTotal, // pure ACK: current send offset, no payload
	}
	p := &packet.Packet{
		Size: packet.IPHeader + packet.TCPHeader,
		View: v,
	}
	peer := ep.peer
	p.Arrive = func(now float64) { peer.onAck(ack, sack) }
	ep.out.Send(p)
}

// onAck runs at the data sender when an ACK (with SACK blocks) arrives.
func (ep *Endpoint) onAck(ack int64, sack [][2]int64) {
	newlyAcked := int64(0)
	if ack > ep.sndUna {
		newlyAcked = ack - ep.sndUna
		ep.sndUna = ack
		ep.sampleRTT(ack)
		if ep.inRecovery && ack >= ep.recoverPoint {
			ep.inRecovery = false
		}
	}
	for _, b := range sack {
		ep.sacked.Add(b[0], b[1])
	}

	// Scoreboard: holes below the highest SACKed byte are presumed lost.
	var highest int64
	if len(sack) > 0 {
		highest = sack[len(sack)-1][1]
	}
	newHole := false
	if highest > ep.sndUna {
		for _, gap := range ep.sacked.Gaps(ep.sndUna, highest) {
			// Queue each hole only once per recovery epoch.
			for _, sub := range ep.rtxMarked.Gaps(gap[0], gap[1]) {
				ep.rtxMarked.Add(sub[0], sub[1])
				ep.rtxQueue = append(ep.rtxQueue, sub)
				ep.rtxQueueBytes += sub[1] - sub[0]
				newHole = true
				ep.FastRetx++
				ep.cFastRetx.Inc()
			}
		}
	}
	if newHole && !ep.inRecovery {
		ep.inRecovery = true
		ep.recoverPoint = ep.sndNxt
		ep.ssthresh = float64(max64(int64(ep.cwnd/2), 2*ep.cfg.MSS))
		ep.cwnd = ep.ssthresh
		if ep.tr != nil {
			ep.tr.Event("tcp", "fast_retx",
				obs.Int("conn", int64(ep.cfg.ConnID)),
				obs.Float("cwnd", ep.cwnd))
		}
	}

	// Window growth outside recovery.
	if newlyAcked > 0 && !ep.inRecovery {
		if ep.cwnd < ep.ssthresh {
			ep.cwnd += float64(newlyAcked) // slow start
			// HyStart-style exit: queueing delay building up means the
			// pipe is full; stop exponential growth before the overshoot
			// causes a burst of drops.
			if ep.minRTT > 0 && ep.srtt > 1.5*ep.minRTT {
				ep.ssthresh = ep.cwnd
			}
		} else {
			ep.cwnd += float64(ep.cfg.MSS) * float64(newlyAcked) / ep.cwnd
		}
	}

	if newlyAcked > 0 {
		ep.rto = ep.computeRTO()
		ep.traceCwnd()
	}
	if ep.sndUna < ep.sndNxt {
		if newlyAcked > 0 {
			ep.armRTO()
		}
	} else if ep.rtoTimer != nil {
		ep.rtoTimer.Cancel()
		ep.rtoTimer = nil
	}
	ep.trySend()
}

func (ep *Endpoint) sampleRTT(ack int64) {
	now := ep.eng.Now()
	i := 0
	for ; i < len(ep.timing) && ep.timing[i].end <= ack; i++ {
		st := ep.timing[i]
		if st.rtxd {
			continue
		}
		rtt := now - st.t
		if ep.minRTT == 0 || rtt < ep.minRTT {
			ep.minRTT = rtt
		}
		if ep.srtt == 0 {
			ep.srtt = rtt
			ep.rttvar = rtt / 2
		} else {
			d := ep.srtt - rtt
			if d < 0 {
				d = -d
			}
			ep.rttvar = 0.75*ep.rttvar + 0.25*d
			ep.srtt = 0.875*ep.srtt + 0.125*rtt
		}
	}
	if i > 0 {
		ep.timing = append(ep.timing[:0], ep.timing[i:]...)
	}
}

func (ep *Endpoint) computeRTO() float64 {
	if ep.srtt == 0 {
		return 1.0
	}
	rto := ep.srtt + 4*ep.rttvar
	if rto < ep.cfg.RTOMin {
		rto = ep.cfg.RTOMin
	}
	return rto
}

// SRTT exposes the smoothed RTT estimate (diagnostics).
func (ep *Endpoint) SRTT() float64 { return ep.srtt }

// RcvNxt exposes the contiguous receive offset (diagnostics, tests).
func (ep *Endpoint) RcvNxt() int64 { return ep.rcvNxt }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
