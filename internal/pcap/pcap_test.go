package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
	"csi/internal/packet"
	"csi/internal/session"
)

// --- helpers to build a REAL pcap with genuine TLS bytes ---

type pcapBuilder struct {
	buf bytes.Buffer
}

func newBuilder() *pcapBuilder {
	b := &pcapBuilder{}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], 2)
	binary.LittleEndian.PutUint16(hdr[6:], 4)
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeRaw)
	b.buf.Write(hdr[:])
	return b
}

func (b *pcapBuilder) addIPv4(ts float64, src, dst [4]byte, proto byte, transport []byte) {
	total := 20 + len(transport)
	pkt := make([]byte, total)
	pkt[0] = 0x45
	binary.BigEndian.PutUint16(pkt[2:], uint16(total))
	pkt[8] = 64
	pkt[9] = proto
	copy(pkt[12:16], src[:])
	copy(pkt[16:20], dst[:])
	copy(pkt[20:], transport)
	var ph [16]byte
	sec := int64(ts)
	binary.LittleEndian.PutUint32(ph[0:], uint32(sec))
	binary.LittleEndian.PutUint32(ph[4:], uint32((ts-float64(sec))*1e6))
	binary.LittleEndian.PutUint32(ph[8:], uint32(total))
	binary.LittleEndian.PutUint32(ph[12:], uint32(total))
	b.buf.Write(ph[:])
	b.buf.Write(pkt)
}

func tcpSegment(sport, dport uint16, seq uint32, payload []byte) []byte {
	seg := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint16(seg[0:], sport)
	binary.BigEndian.PutUint16(seg[2:], dport)
	binary.BigEndian.PutUint32(seg[4:], seq)
	seg[12] = 5 << 4
	seg[13] = 0x10
	copy(seg[20:], payload)
	return seg
}

// tlsRecord frames a payload as one TLS record of the given type.
func tlsRecord(typ byte, payload []byte) []byte {
	rec := make([]byte, 5+len(payload))
	rec[0] = typ
	rec[1], rec[2] = 3, 3
	binary.BigEndian.PutUint16(rec[3:], uint16(len(payload)))
	copy(rec[5:], payload)
	return rec
}

// clientHello builds a minimal but well-formed ClientHello with an SNI.
func clientHello(host string) []byte {
	var body bytes.Buffer
	body.Write([]byte{3, 3})          // client_version
	body.Write(make([]byte, 32))      // random
	body.WriteByte(0)                 // session id length
	body.Write([]byte{0, 2, 0x13, 1}) // one cipher suite
	body.Write([]byte{1, 0})          // compression methods
	var sni bytes.Buffer
	sni.Write([]byte{0, 0}) // extension type server_name
	nameList := make([]byte, 5+len(host))
	binary.BigEndian.PutUint16(nameList[0:], uint16(3+len(host)))
	nameList[2] = 0
	binary.BigEndian.PutUint16(nameList[3:], uint16(len(host)))
	copy(nameList[5:], host)
	ext := make([]byte, 2)
	binary.BigEndian.PutUint16(ext, uint16(len(nameList)))
	sni.Write(ext)
	sni.Write(nameList)
	extsLen := make([]byte, 2)
	binary.BigEndian.PutUint16(extsLen, uint16(sni.Len()))
	body.Write(extsLen)
	body.Write(sni.Bytes())

	msg := make([]byte, 4+body.Len())
	msg[0] = 1 // handshake type client_hello
	msg[1] = 0
	binary.BigEndian.PutUint16(msg[2:], uint16(body.Len()))
	copy(msg[4:], body.Bytes())
	return msg
}

var (
	clientAddr = [4]byte{10, 0, 0, 2}
	serverAddr = [4]byte{203, 0, 113, 10}
)

func TestReadRealTLSCapture(t *testing.T) {
	b := newBuilder()
	// Uplink ClientHello with SNI, as one TLS handshake record.
	hello := tlsRecord(22, clientHello("media.example.com"))
	b.addIPv4(0.10, clientAddr, serverAddr, 6, tcpSegment(40001, 443, 0, hello))
	// Downlink handshake record (server flight).
	sflight := tlsRecord(22, make([]byte, 900))
	b.addIPv4(0.15, serverAddr, clientAddr, 6, tcpSegment(443, 40001, 0, sflight))
	// Uplink request: app-data record.
	req := tlsRecord(23, make([]byte, 380))
	b.addIPv4(0.30, clientAddr, serverAddr, 6, tcpSegment(40001, 443, uint32(len(hello)), req))
	// Downlink response: one app-data record of 3000 bytes split across
	// three segments of 1000/1005/1000 wire bytes.
	resp := tlsRecord(23, make([]byte, 3000))
	off := len(sflight)
	for i, chunkLen := range []int{1000, 1005, 1000} {
		start := 0
		for j := 0; j < i; j++ {
			start += []int{1000, 1005, 1000}[j]
		}
		b.addIPv4(0.4+float64(i)*0.01, serverAddr, clientAddr, 6,
			tcpSegment(443, 40001, uint32(off+start), resp[start:start+chunkLen]))
	}
	// A retransmission of the middle response segment (same seq).
	b.addIPv4(0.46, serverAddr, clientAddr, 6,
		tcpSegment(443, 40001, uint32(off+1000), resp[1000:2005]))

	tr, err := Read(bytes.NewReader(b.buf.Bytes()), ReadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 7 {
		t.Fatalf("parsed %d packets, want 7", len(tr.Packets))
	}
	ids := tr.ConnIDs("media.example.com")
	if len(ids) != 1 {
		t.Fatalf("SNI connection ids = %v", ids)
	}
	// Handshake vs app classification.
	var app, hs int64
	for _, v := range tr.Packets {
		if v.Dir == packet.Down {
			app += v.TLSAppBytes
			hs += v.TLSHSBytes
		}
	}
	if hs != 900 {
		t.Fatalf("downlink handshake bytes = %d, want 900", hs)
	}
	// 3000 app bytes + 1005 retransmitted (the reader classifies per
	// packet; dedup is the estimator's job).
	if app != 3000+1005 {
		t.Fatalf("downlink app bytes = %d, want %d", app, 3000+1005)
	}

	// The estimator consumes the parsed views end to end: one request of
	// ~3000 bytes (retransmission deduped, headers discounted).
	est, err := core.Estimate(tr, core.Params{MediaHost: "media.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Requests) != 1 {
		t.Fatalf("requests = %d, want 1", len(est.Requests))
	}
	if got := est.Requests[0].Est; got != 3000-280 {
		t.Fatalf("estimated size = %d, want %d (dedup + header discount)", got, 3000-280)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a pcap at all")), ReadConfig{}); err == nil {
		t.Fatal("garbage accepted")
	}
	b := newBuilder()
	trunc := b.buf.Bytes()
	if _, err := Read(bytes.NewReader(trunc[:10]), ReadConfig{}); err == nil {
		t.Fatal("truncated header accepted")
	}
}

// Round trip: a simulated session written as pcap and read back must
// preserve connection structure, directions, sizes and TCP seq numbers —
// enough for wireshark-level inspection. (TLS classification is not
// preserved: the writer zero-fills payloads.)
func TestWriteReadRoundTrip(t *testing.T) {
	man := mediatest.Encode(t, media.EncodeConfig{
		Name: "p", Seed: 3, DurationSec: 120, ChunkDur: 5, TargetPASR: 1.3,
	})
	res, err := session.Run(session.Config{
		Design: session.CH, Manifest: man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  30, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, res.Run.Trace); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), ReadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// DNS packets carry no ports/conn structure; compare TCP packets.
	var origTCP, gotTCP []packet.View
	for _, v := range res.Run.Trace.Packets {
		if v.Proto == packet.TCP {
			origTCP = append(origTCP, v)
		}
	}
	for _, v := range got.Packets {
		if v.Proto == packet.TCP {
			gotTCP = append(gotTCP, v)
		}
	}
	if len(gotTCP) != len(origTCP) {
		t.Fatalf("TCP packets: got %d, want %d", len(gotTCP), len(origTCP))
	}
	for i := range origTCP {
		o, g := origTCP[i], gotTCP[i]
		if o.Dir != g.Dir || o.Size != g.Size || o.TCPSeq != g.TCPSeq {
			t.Fatalf("packet %d mismatch: orig{dir:%v size:%d seq:%d} got{dir:%v size:%d seq:%d}",
				i, o.Dir, o.Size, o.TCPSeq, g.Dir, g.Size, g.TCPSeq)
		}
		if g.ServerIP != o.ServerIP {
			t.Fatalf("packet %d server ip: %q vs %q", i, g.ServerIP, o.ServerIP)
		}
	}
}

// A written pcap must carry recoverable SNI and DNS associations: the
// reader (or Wireshark) can attribute connections to hostnames, and the
// written ClientHello parses as genuine TLS.
func TestWrittenPcapCarriesHostnames(t *testing.T) {
	man := mediatest.Encode(t, media.EncodeConfig{
		Name: "p2", Seed: 4, DurationSec: 120, ChunkDur: 5, TargetPASR: 1.3,
	})
	res, err := session.Run(session.Config{
		Design: session.CH, Manifest: man,
		Bandwidth: netem.Constant(4_000_000),
		Duration:  30, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, res.Run.Trace); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), ReadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ids := got.ConnIDs("media.example.com")
	if len(ids) != 1 {
		t.Fatalf("media connections from written pcap = %v, want exactly 1", ids)
	}
	if len(got.DNS) == 0 {
		t.Fatal("DNS associations not recovered from written pcap")
	}
	found := false
	for ip, host := range got.DNS {
		if host == "media.example.com" && ip != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("media host missing from DNS map: %v", got.DNS)
	}
}
