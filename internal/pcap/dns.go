package pcap

import (
	"encoding/binary"
	"net"
	"strings"
)

// DNS wire-format support: the writer emits genuine DNS query/response
// payloads for the simulator's DNS views, and the reader recovers
// hostname→IP associations from port-53 traffic in any capture — the
// paper's fallback for associating connections to services when the SNI is
// unavailable (§5.3.1).

const dnsPort = 53

// buildDNSQuery encodes a standard query for an A record.
func buildDNSQuery(host string, id uint16) []byte {
	var b []byte
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], id)
	hdr[2] = 0x01 // RD
	binary.BigEndian.PutUint16(hdr[4:], 1)
	b = append(b, hdr[:]...)
	b = appendQName(b, host)
	b = append(b, 0, 1, 0, 1) // QTYPE=A, QCLASS=IN
	return b
}

// buildDNSResponse encodes a response with one A record.
func buildDNSResponse(host string, ip net.IP, id uint16) []byte {
	var b []byte
	var hdr [12]byte
	binary.BigEndian.PutUint16(hdr[0:], id)
	hdr[2] = 0x81 // QR + RD
	hdr[3] = 0x80 // RA
	binary.BigEndian.PutUint16(hdr[4:], 1)
	binary.BigEndian.PutUint16(hdr[6:], 1)
	b = append(b, hdr[:]...)
	b = appendQName(b, host)
	b = append(b, 0, 1, 0, 1)
	// Answer: pointer to the question name.
	b = append(b, 0xc0, 12)
	b = append(b, 0, 1, 0, 1) // TYPE=A, CLASS=IN
	b = append(b, 0, 0, 0, 60)
	b = append(b, 0, 4)
	b = append(b, ip.To4()...)
	return b
}

func appendQName(b []byte, host string) []byte {
	for _, label := range strings.Split(host, ".") {
		if label == "" || len(label) > 63 {
			continue
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0)
}

// parseDNS extracts (host, answer IP) from a DNS payload. Returns empty
// strings when the message has no parseable A answer (plain queries yield
// just the host).
func parseDNS(p []byte) (host, answerIP string) {
	if len(p) < 12 {
		return "", ""
	}
	qd := int(binary.BigEndian.Uint16(p[4:]))
	an := int(binary.BigEndian.Uint16(p[6:]))
	if qd < 1 {
		return "", ""
	}
	pos := 12
	var labels []string
	for pos < len(p) {
		l := int(p[pos])
		pos++
		if l == 0 {
			break
		}
		if l&0xc0 != 0 || pos+l > len(p) {
			return "", "" // compressed or malformed question name
		}
		labels = append(labels, string(p[pos:pos+l]))
		pos += l
	}
	host = strings.Join(labels, ".")
	pos += 4 // QTYPE + QCLASS
	if an < 1 || pos >= len(p) {
		return host, ""
	}
	// First answer record: name (possibly compressed), type, class, ttl,
	// rdlength, rdata.
	if pos+2 <= len(p) && p[pos]&0xc0 == 0xc0 {
		pos += 2
	} else {
		for pos < len(p) && p[pos] != 0 {
			pos += int(p[pos]) + 1
		}
		pos++
	}
	if pos+10 > len(p) {
		return host, ""
	}
	typ := binary.BigEndian.Uint16(p[pos:])
	rdlen := int(binary.BigEndian.Uint16(p[pos+8:]))
	pos += 10
	if typ == 1 && rdlen == 4 && pos+4 <= len(p) {
		return host, net.IP(p[pos : pos+4]).String()
	}
	return host, ""
}

// applyDNSView fills View fields from a parsed DNS payload.
func applyDNSView(rp *rawPacket) bool {
	if rp.srcPort != dnsPort && rp.dstPort != dnsPort {
		return false
	}
	host, ip := parseDNS(rp.payload)
	if host == "" {
		return true // port-53 traffic we cannot parse; keep as plain UDP
	}
	rp.view.DNSQuery = host
	rp.view.DNSAnswerIP = ip
	return true
}
