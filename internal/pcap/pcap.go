// Package pcap bridges the simulator's monitor-visible packet views and
// the classic libpcap capture format.
//
// The reader is the practically important direction: it parses a real
// packet capture (raw-IP or Ethernet link types) into capture.Trace views —
// IPv4/TCP/UDP headers, TCP stream reassembly, TLS record scanning for the
// application/handshake byte split, and SNI extraction from ClientHello —
// so the CSI inference can run on traffic recorded outside the simulator,
// which is exactly how the paper's tool is used. QUIC packet numbers are
// parsed for gQUIC-era cleartext headers; IETF QUIC encrypts packet
// numbers, in which case only sizes and the long/short header flag are
// recovered (the estimator needs nothing more).
//
// The writer serializes a simulated trace as a pcap file with faithful
// IPv4/TCP/UDP headers, timing, sizes and sequence numbers (payloads are
// zero-filled), so standard tools (tcpdump, Wireshark) can inspect
// simulated runs.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"

	"csi/internal/capture"
	"csi/internal/packet"
)

const (
	magicMicros  = 0xa1b2c3d4
	linkTypeRaw  = 101 // LINKTYPE_RAW: packets start at the IPv4/IPv6 header
	linkTypeEth  = 1   // LINKTYPE_ETHERNET
	snapLen      = 262144
	clientIPStr  = "10.0.0.2"
	serverPort   = 443
	clientPort0  = 40000
	tlsRecHeader = 5
)

// --- Writer ---

// Write serializes the trace as a pcap file (raw-IP link type). Client and
// server addresses are synthesized: the device is 10.0.0.2; servers use
// their recorded ServerIP or a per-connection placeholder.
func Write(w io.Writer, tr *capture.Trace) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], 2)
	binary.LittleEndian.PutUint16(hdr[6:], 4)
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	clientIP := net.ParseIP(clientIPStr).To4()
	dnsID := uint16(0)
	for i := range tr.Packets {
		v := &tr.Packets[i]
		srv := net.ParseIP(v.ServerIP)
		if srv == nil {
			srv = net.IPv4(192, 0, 2, byte(10+v.ConnID%200))
		}
		srv = srv.To4()
		if srv == nil {
			return fmt.Errorf("pcap: non-IPv4 server address %q", v.ServerIP)
		}
		if v.DNSQuery != "" {
			dnsID++
		}
		pkt, err := buildPacketBytes(v, clientIP, srv, dnsID)
		if err != nil {
			return err
		}
		var ph [16]byte
		sec := int64(v.Time)
		usec := int64((v.Time - float64(sec)) * 1e6)
		binary.LittleEndian.PutUint32(ph[0:], uint32(sec))
		binary.LittleEndian.PutUint32(ph[4:], uint32(usec))
		binary.LittleEndian.PutUint32(ph[8:], uint32(len(pkt)))
		binary.LittleEndian.PutUint32(ph[12:], uint32(v.Size))
		if _, err := w.Write(ph[:]); err != nil {
			return err
		}
		if _, err := w.Write(pkt); err != nil {
			return err
		}
	}
	return nil
}

func buildPacketBytes(v *packet.View, client, server net.IP, dnsID uint16) ([]byte, error) {
	src, dst := client, server
	sport, dport := uint16(clientPort0+v.ConnID), uint16(serverPort)
	if v.Dir == packet.Down {
		src, dst = server, client
		sport, dport = uint16(serverPort), uint16(clientPort0+v.ConnID)
	}
	size := v.Size
	if size < packet.IPHeader+8 {
		size = packet.IPHeader + 8
	}
	if size > snapLen {
		size = snapLen
	}
	buf := make([]byte, size)
	// IPv4 header.
	buf[0] = 0x45
	binary.BigEndian.PutUint16(buf[2:], uint16(size))
	buf[8] = 64 // TTL
	copy(buf[12:16], src)
	copy(buf[16:20], dst)
	switch v.Proto {
	case packet.TCP:
		buf[9] = 6
		tcp := buf[20:]
		binary.BigEndian.PutUint16(tcp[0:], sport)
		binary.BigEndian.PutUint16(tcp[2:], dport)
		binary.BigEndian.PutUint32(tcp[4:], uint32(v.TCPSeq))
		// Data offset: our simulated TCP header is 32 bytes (with
		// options); encode 8 words.
		tcp[12] = 8 << 4
		tcp[13] = 0x10 // ACK flag
		// The SNI-bearing packet gets a genuine ClientHello record so
		// tools (and our reader) can recover the server name; other
		// payloads are zero-filled.
		if v.SNI != "" && v.TCPPayload > 0 {
			payload := tcp[32:]
			hello := tlsRecordBytes(22, clientHelloBytes(v.SNI), len(payload))
			copy(payload, hello)
		}
	case packet.UDP:
		buf[9] = 17
		udp := buf[20:]
		if v.DNSQuery != "" {
			// Genuine DNS wire format on port 53.
			var body []byte
			if v.DNSAnswerIP != "" {
				sport, dport = dnsPort, uint16(clientPort0)
				if v.Dir == packet.Up {
					sport, dport = uint16(clientPort0), dnsPort
				}
				body = buildDNSResponse(v.DNSQuery, net.ParseIP(v.DNSAnswerIP), dnsID)
			} else {
				dport = dnsPort
				sport = uint16(clientPort0)
				body = buildDNSQuery(v.DNSQuery, dnsID)
			}
			need := packet.IPHeader + 8 + len(body)
			if int(size) < need {
				buf = append(buf, make([]byte, need-int(size))...)
				size = int64(need)
				binary.BigEndian.PutUint16(buf[2:], uint16(size))
				udp = buf[20:]
			}
			copy(udp[8:], body)
		}
		binary.BigEndian.PutUint16(udp[0:], sport)
		binary.BigEndian.PutUint16(udp[2:], dport)
		binary.BigEndian.PutUint16(udp[4:], uint16(size-packet.IPHeader))
	default:
		return nil, fmt.Errorf("pcap: unknown proto %v", v.Proto)
	}
	return buf, nil
}

// tlsRecordBytes frames body as a type-typ record padded to fill exactly
// space bytes (record length = space-5), truncating if body is larger.
func tlsRecordBytes(typ byte, body []byte, space int) []byte {
	if space < 6 {
		return nil
	}
	out := make([]byte, space)
	out[0] = typ
	out[1], out[2] = 3, 3
	binary.BigEndian.PutUint16(out[3:], uint16(space-5))
	copy(out[5:], body)
	return out
}

// clientHelloBytes builds a minimal well-formed ClientHello carrying host
// as the server_name extension.
func clientHelloBytes(host string) []byte {
	var body []byte
	body = append(body, 3, 3)
	body = append(body, make([]byte, 32)...)
	body = append(body, 0)
	body = append(body, 0, 2, 0x13, 1)
	body = append(body, 1, 0)
	nameList := make([]byte, 5+len(host))
	binary.BigEndian.PutUint16(nameList[0:], uint16(3+len(host)))
	nameList[2] = 0
	binary.BigEndian.PutUint16(nameList[3:], uint16(len(host)))
	copy(nameList[5:], host)
	var ext []byte
	ext = append(ext, 0, 0)
	var ln [2]byte
	binary.BigEndian.PutUint16(ln[:], uint16(len(nameList)))
	ext = append(ext, ln[:]...)
	ext = append(ext, nameList...)
	binary.BigEndian.PutUint16(ln[:], uint16(len(ext)))
	body = append(body, ln[:]...)
	body = append(body, ext...)
	msg := make([]byte, 4+len(body))
	msg[0] = 1
	msg[1] = 0
	binary.BigEndian.PutUint16(msg[2:], uint16(len(body)))
	copy(msg[4:], body)
	return msg
}

// --- Reader ---

// ReadConfig controls how a capture is interpreted.
type ReadConfig struct {
	// ClientNet identifies the device side of the path: packets with a
	// source inside it are uplink. Default 10.0.0.0/8.
	ClientNet *net.IPNet
	// QUICPort marks UDP flows to treat as QUIC. Default 443.
	QUICPort int
}

func (c ReadConfig) withDefaults() ReadConfig {
	if c.ClientNet == nil {
		_, n, _ := net.ParseCIDR("10.0.0.0/8")
		c.ClientNet = n
	}
	if c.QUICPort == 0 {
		c.QUICPort = 443
	}
	return c
}

// flowKey identifies a bidirectional 5-tuple (client side normalized).
type flowKey struct {
	clientIP, serverIP string
	clientPort, sport  uint16
	proto              packet.Proto
}

type rawPacket struct {
	view             packet.View
	payload          []byte // transport payload bytes (TCP segment / UDP datagram body)
	srcIP, dstIP     string
	srcPort, dstPort uint16
}

// Read parses a pcap file into a capture.Trace, reconstructing the
// monitor-visible fields CSI consumes.
func Read(r io.Reader, cfg ReadConfig) (*capture.Trace, error) {
	cfg = cfg.withDefaults()
	var gh [24]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	var order binary.ByteOrder = binary.LittleEndian
	magic := binary.LittleEndian.Uint32(gh[0:])
	switch magic {
	case magicMicros:
	case 0xd4c3b2a1:
		order = binary.BigEndian
	case 0xa1b23c4d: // nanosecond variant
	default:
		if binary.BigEndian.Uint32(gh[0:]) == magicMicros {
			order = binary.BigEndian
		} else {
			return nil, fmt.Errorf("pcap: bad magic %#x", magic)
		}
	}
	nanos := magic == 0xa1b23c4d
	link := order.Uint32(gh[20:])
	if link != linkTypeRaw && link != linkTypeEth {
		return nil, fmt.Errorf("pcap: unsupported link type %d", link)
	}

	conns := map[flowKey]int{}
	nextConn := 1
	var raws []rawPacket
	tr := capture.NewTrace()

	for {
		var ph [16]byte
		if _, err := io.ReadFull(r, ph[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("pcap: reading packet header: %w", err)
		}
		sec := order.Uint32(ph[0:])
		sub := order.Uint32(ph[4:])
		incl := order.Uint32(ph[8:])
		orig := order.Uint32(ph[12:])
		if incl > snapLen {
			return nil, fmt.Errorf("pcap: implausible packet length %d", incl)
		}
		data := make([]byte, incl)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap: truncated packet body: %w", err)
		}
		if link == linkTypeEth {
			if len(data) < 14 {
				continue
			}
			etype := binary.BigEndian.Uint16(data[12:])
			if etype != 0x0800 {
				continue // not IPv4
			}
			data = data[14:]
		}
		ts := float64(sec)
		if nanos {
			ts += float64(sub) / 1e9
		} else {
			ts += float64(sub) / 1e6
		}
		rp, ok := parseIPv4(data, ts, int64(orig), cfg)
		if !ok {
			continue
		}
		key := rp.flowKey(cfg)
		id, seen := conns[key]
		if !seen {
			id = nextConn
			nextConn++
			conns[key] = id
		}
		rp.view.ConnID = id
		raws = append(raws, rp)
	}

	// TLS post-processing per TCP connection: reassemble both directions,
	// scan record boundaries, classify per-packet byte ranges, extract the
	// SNI from the first ClientHello.
	classifyTLS(raws)

	tap := tr.Tap()
	for i := range raws {
		tap(raws[i].view, raws[i].view.Time)
	}
	if len(tr.Packets) == 0 {
		return nil, fmt.Errorf("pcap: no parseable IPv4 TCP/UDP packets")
	}
	return tr, nil
}

func (rp *rawPacket) flowKey(cfg ReadConfig) flowKey {
	v := &rp.view
	if v.Dir == packet.Up {
		return flowKey{clientIP: rp.srcIP, serverIP: rp.dstIP, clientPort: rp.srcPort, sport: rp.dstPort, proto: v.Proto}
	}
	return flowKey{clientIP: rp.dstIP, serverIP: rp.srcIP, clientPort: rp.dstPort, sport: rp.srcPort, proto: v.Proto}
}

func parseIPv4(data []byte, ts float64, origLen int64, cfg ReadConfig) (rawPacket, bool) {
	var rp rawPacket
	if len(data) < 20 || data[0]>>4 != 4 {
		return rp, false
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return rp, false
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:]))
	if totalLen > len(data) || totalLen < ihl {
		totalLen = len(data)
	}
	proto := data[9]
	src := net.IP(data[12:16])
	dst := net.IP(data[16:20])
	rp.srcIP, rp.dstIP = src.String(), dst.String()
	rp.view.Time = ts
	rp.view.Size = origLen
	if cfg.ClientNet.Contains(src) {
		rp.view.Dir = packet.Up
		rp.view.ServerIP = rp.dstIP
	} else {
		rp.view.Dir = packet.Down
		rp.view.ServerIP = rp.srcIP
	}
	body := data[ihl:totalLen]
	switch proto {
	case 6: // TCP
		if len(body) < 20 {
			return rp, false
		}
		rp.view.Proto = packet.TCP
		rp.srcPort = binary.BigEndian.Uint16(body[0:])
		rp.dstPort = binary.BigEndian.Uint16(body[2:])
		rp.view.TCPSeq = int64(binary.BigEndian.Uint32(body[4:]))
		off := int(body[12]>>4) * 4
		if off < 20 || len(body) < off {
			return rp, false
		}
		rp.payload = body[off:]
		rp.view.TCPPayload = int64(len(rp.payload))
	case 17: // UDP
		if len(body) < 8 {
			return rp, false
		}
		rp.view.Proto = packet.UDP
		rp.srcPort = binary.BigEndian.Uint16(body[0:])
		rp.dstPort = binary.BigEndian.Uint16(body[2:])
		rp.payload = body[8:]
		if !applyDNSView(&rp) {
			parseQUIC(&rp)
		}
	default:
		return rp, false
	}
	return rp, true
}

// parseQUIC extracts what a monitor can read from a QUIC packet: the
// long/short header flag and, for cleartext-pn formats, a packet number.
// IETF QUIC encrypts packet numbers; sizes remain available either way.
func parseQUIC(rp *rawPacket) {
	p := rp.payload
	if len(p) == 0 {
		return
	}
	rp.view.QUICLong = p[0]&0x80 != 0
	if rp.view.QUICLong {
		rp.view.QUICPayload = int64(len(p)) - packet.QUICLongHeader
	} else {
		rp.view.QUICPayload = int64(len(p)) - packet.QUICShortHeader
		// Cleartext 4-byte packet number at the simulator's offset
		// (flags + 8-byte CID). Real IETF QUIC headers are protected;
		// this recovers pns for gQUIC-era and simulator-written captures.
		if len(p) >= packet.QUICShortHeader {
			rp.view.QUICPN = int64(binary.BigEndian.Uint32(p[9:13]))
		}
	}
	if rp.view.QUICPayload < 0 {
		rp.view.QUICPayload = 0
	}
}

// classifyTLS reconstructs, for every TCP connection direction, the TLS
// record layout from the reassembled byte stream and attributes each
// packet's payload range to application-data vs handshake record bytes —
// the arithmetic of §3.2 performed the way a real monitor has to.
func classifyTLS(raws []rawPacket) {
	type dirKey struct {
		conn int
		dir  packet.Dir
	}
	type segment struct {
		off  int64
		data []byte
		idx  int // index into raws
	}
	streams := map[dirKey][]segment{}
	for i := range raws {
		v := &raws[i].view
		if v.Proto != packet.TCP || v.TCPPayload == 0 {
			continue
		}
		k := dirKey{conn: v.ConnID, dir: v.Dir}
		streams[k] = append(streams[k], segment{off: v.TCPSeq, data: raws[i].payload, idx: i})
	}
	for _, segs := range streams {
		// Reassemble: sort by offset, drop duplicate coverage.
		sort.SliceStable(segs, func(a, b int) bool { return segs[a].off < segs[b].off })
		base := segs[0].off
		var end int64 = base
		for _, s := range segs {
			if e := s.off + int64(len(s.data)); e > end {
				end = e
			}
		}
		if end-base > 1<<30 {
			continue // implausible; skip classification
		}
		stream := make([]byte, end-base)
		have := make([]bool, end-base)
		for _, s := range segs {
			copy(stream[s.off-base:], s.data)
			for j := int64(0); j < int64(len(s.data)); j++ {
				have[s.off-base+j] = true
			}
		}
		// Scan records from the stream start; stop at the first gap.
		type recSeg struct {
			start, end int64 // stream offsets of the record body
			hs         bool
		}
		var recs []recSeg
		var sni string
		pos := int64(0)
		for pos+tlsRecHeader <= int64(len(stream)) {
			if !have[pos] {
				break
			}
			typ := stream[pos]
			if typ < 20 || typ > 23 {
				break // not TLS
			}
			ln := int64(binary.BigEndian.Uint16(stream[pos+3 : pos+5]))
			bodyStart := pos + tlsRecHeader
			bodyEnd := bodyStart + ln
			if ln == 0 || bodyEnd > int64(len(stream)) {
				// Record extends past the capture; classify what we have.
				bodyEnd = int64(len(stream))
			}
			recs = append(recs, recSeg{start: bodyStart, end: bodyEnd, hs: typ == 22})
			if typ == 22 && sni == "" && bodyEnd-bodyStart > 6 && stream[bodyStart] == 1 {
				sni = parseSNI(stream[bodyStart:bodyEnd])
			}
			pos = bodyStart + ln
		}
		if len(recs) == 0 {
			continue
		}
		// Attribute per packet.
		firstData := true
		for _, s := range segs {
			v := &raws[s.idx].view
			from, to := s.off-base, s.off-base+int64(len(s.data))
			var app, hs int64
			for _, rc := range recs {
				lo, hi := max64(from, rc.start), min64(to, rc.end)
				if hi <= lo {
					continue
				}
				if rc.hs {
					hs += hi - lo
				} else {
					app += hi - lo
				}
			}
			v.TLSAppBytes = app
			v.TLSHSBytes = hs
			if firstData && sni != "" && v.Dir == packet.Up {
				v.SNI = sni
			}
			firstData = false
		}
	}
}

// parseSNI walks a ClientHello handshake message and returns the
// server_name extension's hostname, if present.
func parseSNI(hello []byte) string {
	// Handshake header: type(1) + length(3).
	if len(hello) < 4+2+32+1 {
		return ""
	}
	p := 4
	p += 2 + 32 // client_version + random
	if p >= len(hello) {
		return ""
	}
	sidLen := int(hello[p])
	p += 1 + sidLen
	if p+2 > len(hello) {
		return ""
	}
	csLen := int(binary.BigEndian.Uint16(hello[p:]))
	p += 2 + csLen
	if p+1 > len(hello) {
		return ""
	}
	cmLen := int(hello[p])
	p += 1 + cmLen
	if p+2 > len(hello) {
		return ""
	}
	extLen := int(binary.BigEndian.Uint16(hello[p:]))
	p += 2
	end := p + extLen
	if end > len(hello) {
		end = len(hello)
	}
	for p+4 <= end {
		typ := int(binary.BigEndian.Uint16(hello[p:]))
		ln := int(binary.BigEndian.Uint16(hello[p+2:]))
		p += 4
		if p+ln > end {
			return ""
		}
		if typ == 0 { // server_name
			q := p
			if q+2 > end {
				return ""
			}
			q += 2 // server_name_list length
			if q+3 > end || hello[q] != 0 {
				return ""
			}
			nameLen := int(binary.BigEndian.Uint16(hello[q+1:]))
			q += 3
			if q+nameLen > end {
				return ""
			}
			return string(hello[q : q+nameLen])
		}
		p += ln
	}
	return ""
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
