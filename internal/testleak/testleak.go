// Package testleak asserts that a test leaves no goroutines behind. It is
// deliberately tiny: snapshot the goroutine count at Check, and at cleanup
// poll until the count returns to the baseline or the retry budget runs
// out, then fail with a full stack dump. The polling loop is bounded by
// iteration count, not wall-clock reads, so it stays inside the
// determinism rules.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Check registers a cleanup that fails tb if the goroutine count at test
// end stays above the count observed now. Call it at the top of the test,
// before starting any pools. Not meaningful under t.Parallel, where
// sibling tests shift the global count.
func Check(tb testing.TB) {
	tb.Helper()
	base := runtime.NumGoroutine()
	tb.Cleanup(func() {
		// Pools close their done channels before their goroutines fully
		// exit; give the scheduler a bounded number of chances to retire
		// them before declaring a leak.
		for i := 0; i < 300; i++ {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		tb.Errorf("testleak: %d goroutines at cleanup, want <= %d; stacks:\n%s",
			runtime.NumGoroutine(), base, buf[:n])
	})
}
