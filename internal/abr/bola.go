package abr

import "math"

// BOLA implements the BOLA-BASIC variant of Spiteri, Urgaonkar and
// Sitaraman's Lyapunov-based bitrate adaptation (cited by the paper as one
// of the complex adaptation algorithms third parties need to understand).
// The track utilities are v_m = ln(S_m / S_min); given a buffer level of Q
// chunks, the algorithm picks the track maximizing
//
//	rho_m = (V*(v_m + gp) - Q) / S_m
//
// where V and gp are derived from the buffer target so that the highest
// track is chosen when the buffer is full and the lowest when it is empty.
type BOLA struct {
	// BufferTargetSec is the buffer level at which the highest track
	// becomes optimal. Default 60.
	BufferTargetSec float64
	// Gp is the playback-smoothness utility weight. Default 5.
	Gp float64
}

func (a BOLA) Name() string { return "bola" }

func (a BOLA) Select(s State) int {
	target := a.BufferTargetSec
	if target == 0 {
		target = 60
	}
	gp := a.Gp
	if gp == 0 {
		gp = 5
	}
	ts := ladder(s.Manifest)
	dur := s.Manifest.ChunkDur
	if dur <= 0 {
		dur = 5
	}
	qMax := target / dur // buffer target in chunks
	if qMax < 2 {
		qMax = 2
	}
	sMin := float64(s.Manifest.Tracks[ts[0]].Bitrate)
	vMax := math.Log(float64(s.Manifest.Tracks[ts[len(ts)-1]].Bitrate) / sMin)
	// V chosen so that at Q = qMax the highest track maximizes rho.
	V := (qMax - 1) / (vMax + gp)

	q := s.BufferSec / dur
	bestTrack := ts[0]
	bestRho := math.Inf(-1)
	for _, ti := range ts {
		size := float64(s.Manifest.Tracks[ti].Bitrate) // proportional to chunk size
		v := math.Log(size / sMin)
		rho := (V*(v+gp) - q) / size
		if rho > bestRho {
			bestRho = rho
			bestTrack = ti
		}
	}
	return bestTrack
}
