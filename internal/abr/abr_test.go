package abr

import (
	"testing"

	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/sim"
)

// fakeFetcher completes each fetch after size/bandwidth seconds.
type fakeFetcher struct {
	eng *sim.Engine
	man *media.Manifest
	bps float64
	// log of fetched refs in order
	refs []media.ChunkRef
}

func (f *fakeFetcher) Fetch(ref media.ChunkRef, done func(now float64)) {
	f.refs = append(f.refs, ref)
	dt := float64(f.man.Size(ref)) * 8 / f.bps
	f.eng.Schedule(dt, func() { done(f.eng.Now()) })
}

func testManifest(t *testing.T, audio int) *media.Manifest {
	t.Helper()
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "abr", Seed: 3, DurationSec: 300, ChunkDur: 5, TargetPASR: 1.4, AudioTracks: audio,
	})
}

func newTestPlayer(t *testing.T, man *media.Manifest, bps float64, cfg Config) (*Player, *fakeFetcher, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	eng.SetEventLimit(1_000_000)
	vf := &fakeFetcher{eng: eng, man: man, bps: bps}
	cfg.Manifest = man
	if cfg.Algo == nil {
		cfg.Algo = Exo{}
	}
	cfg.VideoFetcher = vf
	if man.HasSeparateAudio() {
		cfg.AudioFetcher = vf
	}
	p, err := NewPlayer(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, vf, eng
}

func TestPlayerDownloadsSequentially(t *testing.T) {
	man := testManifest(t, 0)
	p, vf, eng := newTestPlayer(t, man, 8_000_000, Config{StopAt: 100})
	p.Start()
	eng.Run()
	p.Finish()
	last := -1
	for _, r := range vf.refs {
		if r.Index != last+1 {
			t.Fatalf("indexes not sequential: %d after %d", r.Index, last)
		}
		last = r.Index
	}
	if len(p.Truth()) != len(vf.refs) {
		t.Fatalf("truth %d != fetched %d", len(p.Truth()), len(vf.refs))
	}
}

func TestStartupUsesLowestTrack(t *testing.T) {
	man := testManifest(t, 0)
	p, vf, eng := newTestPlayer(t, man, 8_000_000, Config{StopAt: 60, StartupChunks: 3})
	p.Start()
	eng.Run()
	lowest := man.VideoTracks()[0]
	for i := 0; i < 3 && i < len(vf.refs); i++ {
		if vf.refs[i].Track != lowest {
			t.Fatalf("startup chunk %d from track %d, want lowest %d", i, vf.refs[i].Track, lowest)
		}
	}
}

func TestBufferCapPacesDownloads(t *testing.T) {
	man := testManifest(t, 0)
	// Very fast network: without the cap, the whole video would download
	// immediately.
	p, vf, eng := newTestPlayer(t, man, 100_000_000, Config{
		StopAt: 100, MaxBufferSec: 30, ResumeBufferSec: 15,
	})
	p.Start()
	eng.Run()
	p.Finish()
	// At most startup + ~(100s playback + 30s buffer)/5s chunks.
	maxChunks := int((100+30)/5) + 3
	if len(vf.refs) > maxChunks {
		t.Fatalf("downloaded %d chunks in 100s with a 30s buffer cap (max ~%d)", len(vf.refs), maxChunks)
	}
	// And the last request must be well after the start (pacing).
	lastReq := p.Truth()[len(p.Truth())-1].ReqTime
	if lastReq < 50 {
		t.Fatalf("last request at %g, expected ON-OFF pacing", lastReq)
	}
}

func TestSlowNetworkStalls(t *testing.T) {
	man := testManifest(t, 0)
	// 100 kbit/s cannot sustain even the lowest (200 kbit/s) track.
	p, _, eng := newTestPlayer(t, man, 100_000, Config{StopAt: 120})
	p.Start()
	eng.RunUntil(200)
	p.Finish()
	if len(p.Stalls()) == 0 {
		t.Fatal("no stalls on a starved network")
	}
}

func TestAudioVideoProgressTogether(t *testing.T) {
	man := testManifest(t, 1)
	p, vf, eng := newTestPlayer(t, man, 8_000_000, Config{StopAt: 80})
	p.Start()
	eng.Run()
	p.Finish()
	video, audio := 0, 0
	for _, r := range vf.refs {
		if man.Tracks[r.Track].Kind == media.Audio {
			audio++
		} else {
			video++
		}
	}
	if video == 0 || audio == 0 {
		t.Fatalf("video=%d audio=%d", video, audio)
	}
	if diff := video - audio; diff < -2 || diff > 2 {
		t.Fatalf("pipelines diverged: video=%d audio=%d", video, audio)
	}
}

func TestDisplayLogCoversPlayback(t *testing.T) {
	man := testManifest(t, 0)
	p, _, eng := newTestPlayer(t, man, 8_000_000, Config{StopAt: 60})
	p.Start()
	eng.Run()
	p.Finish()
	log := p.DisplayLog()
	if len(log) == 0 {
		t.Fatal("empty display log")
	}
	for i, d := range log {
		if d.End <= d.Start {
			t.Fatalf("display record %d has non-positive duration: %+v", i, d)
		}
		if i > 0 && d.Index != log[i-1].Index+1 {
			t.Fatalf("display indexes not sequential at %d: %+v after %+v", i, d, log[i-1])
		}
	}
}

func TestAlgorithmsReactToThroughput(t *testing.T) {
	man := testManifest(t, 0)
	ladder := man.VideoTracks()
	for _, algo := range []Algorithm{Rate{}, Exo{}, HuluHalf{}} {
		low := algo.Select(State{ThroughputBps: 300_000, BufferSec: 30, LastTrack: ladder[0], Manifest: man})
		high := algo.Select(State{ThroughputBps: 50_000_000, BufferSec: 30, LastTrack: ladder[len(ladder)-1], Manifest: man})
		if man.Tracks[low].Bitrate >= man.Tracks[high].Bitrate {
			t.Errorf("%s: low-bw track %d >= high-bw track %d", algo.Name(), low, high)
		}
	}
}

func TestBOLAFollowsBuffer(t *testing.T) {
	man := testManifest(t, 0)
	a := BOLA{}
	lo := a.Select(State{BufferSec: 2, Manifest: man})
	hi := a.Select(State{BufferSec: 80, Manifest: man})
	if man.Tracks[lo].Bitrate >= man.Tracks[hi].Bitrate {
		t.Errorf("BOLA: low-buffer track %d >= high-buffer track %d", lo, hi)
	}
	// At an empty buffer BOLA must pick the lowest rung; above the target
	// it must pick the highest.
	if got := a.Select(State{BufferSec: 0, Manifest: man}); got != man.VideoTracks()[0] {
		t.Errorf("BOLA at empty buffer picked track %d", got)
	}
	vts := man.VideoTracks()
	if got := a.Select(State{BufferSec: 120, Manifest: man}); got != vts[len(vts)-1] {
		t.Errorf("BOLA at full buffer picked track %d", got)
	}
}

func TestBBAFollowsBuffer(t *testing.T) {
	man := testManifest(t, 0)
	a := BBA{}
	lo := a.Select(State{BufferSec: 5, Manifest: man})
	hi := a.Select(State{BufferSec: 70, Manifest: man})
	if man.Tracks[lo].Bitrate >= man.Tracks[hi].Bitrate {
		t.Errorf("BBA: low-buffer track %d >= high-buffer track %d", lo, hi)
	}
}

func TestHuluHalfRule(t *testing.T) {
	man := testManifest(t, 0)
	a := HuluHalf{}
	for _, bw := range []float64{1_000_000, 2_000_000, 4_000_000, 12_000_000} {
		tr := a.Select(State{ThroughputBps: bw, Manifest: man})
		if float64(man.Tracks[tr].Bitrate) > bw/2 {
			t.Errorf("HuluHalf at %.0f selected track with bitrate %d > bw/2", bw, man.Tracks[tr].Bitrate)
		}
	}
}

func TestExoHysteresis(t *testing.T) {
	man := testManifest(t, 0)
	a := Exo{}
	ladder := man.VideoTracks()
	cur := ladder[1]
	// High throughput but low buffer: must not switch up.
	got := a.Select(State{ThroughputBps: 50_000_000, BufferSec: 3, LastTrack: cur, Manifest: man})
	if got != cur {
		t.Errorf("Exo switched up with 3s buffer: %d -> %d", cur, got)
	}
	// Low throughput but huge buffer: must not switch down yet.
	cur = ladder[4]
	got = a.Select(State{ThroughputBps: 500_000, BufferSec: 60, LastTrack: cur, Manifest: man})
	if got != cur {
		t.Errorf("Exo switched down with 60s buffer: %d -> %d", cur, got)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"rate", "bba", "bola", "exo", "hulu-half"} {
		a, err := ByName(n)
		if err != nil || a.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, a, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	man := testManifest(t, 1)
	eng := sim.New()
	if _, err := NewPlayer(eng, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewPlayer(eng, Config{Manifest: man, Algo: Exo{}}); err == nil {
		t.Error("missing fetcher accepted")
	}
	vf := &fakeFetcher{eng: eng, man: man, bps: 1}
	if _, err := NewPlayer(eng, Config{Manifest: man, Algo: Exo{}, VideoFetcher: vf}); err == nil {
		t.Error("separate-audio manifest without audio fetcher accepted")
	}
	if _, err := NewPlayer(eng, Config{Manifest: man, Algo: Exo{}, VideoFetcher: vf, AudioFetcher: vf, StartIndex: 9999}); err == nil {
		t.Error("out-of-range start index accepted")
	}
}
