// Package abr implements the client side of ABR streaming: a player with
// buffer management, startup and stall behaviour, ON-OFF download pausing,
// and pluggable track-adaptation algorithms.
//
// CSI itself makes no assumption about the adaptation logic (§5.3); the
// algorithms here exist to generate realistically diverse client behaviour
// for the evaluation, mirroring the paper's ExoPlayer test client (§6.2) and
// the Hulu client it studies in §7.
package abr

import (
	"fmt"

	"csi/internal/media"
)

// State is the input to a track-selection decision.
type State struct {
	// ThroughputBps is the player's smoothed throughput estimate in
	// bits/s; 0 before the first chunk completes.
	ThroughputBps float64
	// BufferSec is the current video buffer occupancy in seconds.
	BufferSec float64
	// LastTrack is the manifest track index of the previous video chunk,
	// or -1 at startup.
	LastTrack int
	// Manifest provides the ladder.
	Manifest *media.Manifest
}

// Algorithm selects the video track for the next chunk.
type Algorithm interface {
	Name() string
	Select(s State) int // returns a manifest track index (must be a video track)
}

// ladder returns video track indexes in ascending bitrate order.
func ladder(m *media.Manifest) []int {
	ts := m.VideoTracks()
	// The encoder emits ascending bitrates, but be defensive about
	// hand-written manifests.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && m.Tracks[ts[j]].Bitrate < m.Tracks[ts[j-1]].Bitrate; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts
}

// highestBelow returns the highest-bitrate video track whose bitrate is at
// most budget (bits/s), defaulting to the lowest rung.
func highestBelow(m *media.Manifest, budget float64) int {
	ts := ladder(m)
	best := ts[0]
	for _, ti := range ts {
		if float64(m.Tracks[ti].Bitrate) <= budget {
			best = ti
		}
	}
	return best
}

// Rate is a pure throughput-based algorithm: pick the highest track whose
// bitrate fits within a safety fraction of estimated throughput.
type Rate struct {
	// Fraction of estimated throughput considered usable. Default 0.8.
	Fraction float64
}

func (a Rate) Name() string { return "rate" }

func (a Rate) Select(s State) int {
	f := a.Fraction
	if f == 0 {
		f = 0.8
	}
	if s.ThroughputBps <= 0 {
		return ladder(s.Manifest)[0]
	}
	return highestBelow(s.Manifest, f*s.ThroughputBps)
}

// BBA is a buffer-based algorithm in the spirit of the BBA/BOLA family: the
// buffer level maps linearly between a reservoir and a cushion onto the
// bitrate ladder, ignoring throughput except at startup.
type BBA struct {
	ReservoirSec float64 // below this, lowest track; default 10
	CushionSec   float64 // above this, highest track; default 60
}

func (a BBA) Name() string { return "bba" }

func (a BBA) Select(s State) int {
	res, cus := a.ReservoirSec, a.CushionSec
	if res == 0 {
		res = 10
	}
	if cus == 0 {
		cus = 60
	}
	ts := ladder(s.Manifest)
	if s.BufferSec <= res {
		return ts[0]
	}
	if s.BufferSec >= cus {
		return ts[len(ts)-1]
	}
	frac := (s.BufferSec - res) / (cus - res)
	i := int(frac * float64(len(ts)-1))
	if i >= len(ts) {
		i = len(ts) - 1
	}
	return ts[i]
}

// Exo models ExoPlayer's AdaptiveTrackSelection, the client the paper uses
// for its evaluation: bandwidth-fraction throughput selection with buffer
// hysteresis on switches (min buffered duration before switching up, max
// buffered duration before switching down).
type Exo struct {
	BandwidthFraction float64 // default 0.75
	MinDurForUpSec    float64 // default 10
	MaxDurForDownSec  float64 // default 25
}

func (a Exo) Name() string { return "exo" }

func (a Exo) Select(s State) int {
	bf := a.BandwidthFraction
	if bf == 0 {
		bf = 0.75
	}
	up := a.MinDurForUpSec
	if up == 0 {
		up = 10
	}
	down := a.MaxDurForDownSec
	if down == 0 {
		down = 25
	}
	ts := ladder(s.Manifest)
	if s.ThroughputBps <= 0 || s.LastTrack < 0 {
		return ts[0]
	}
	ideal := highestBelow(s.Manifest, bf*s.ThroughputBps)
	cur := s.LastTrack
	ib := s.Manifest.Tracks[ideal].Bitrate
	cb := s.Manifest.Tracks[cur].Bitrate
	switch {
	case ib > cb && s.BufferSec < up:
		return cur // not enough buffer to risk switching up
	case ib < cb && s.BufferSec > down:
		return cur // enough buffer to ride out the dip
	default:
		return ideal
	}
}

// HuluHalf reproduces the behaviour §7 observes on Hulu: the client
// converges to the highest track whose bitrate is at most half the
// available bandwidth.
type HuluHalf struct{}

func (HuluHalf) Name() string { return "hulu-half" }

func (HuluHalf) Select(s State) int {
	ts := ladder(s.Manifest)
	if s.ThroughputBps <= 0 {
		return ts[0]
	}
	return highestBelow(s.Manifest, s.ThroughputBps/2)
}

// ByName returns a default-configured algorithm by name.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "rate":
		return Rate{}, nil
	case "bba":
		return BBA{}, nil
	case "bola":
		return BOLA{}, nil
	case "exo":
		return Exo{}, nil
	case "hulu-half":
		return HuluHalf{}, nil
	default:
		return nil, fmt.Errorf("abr: unknown algorithm %q", name)
	}
}
