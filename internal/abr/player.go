package abr

import (
	"fmt"
	"sort"

	"csi/internal/capture"
	"csi/internal/media"
	"csi/internal/obs"
	"csi/internal/sim"
	"csi/internal/webproto"
)

// Config parameterizes the player.
type Config struct {
	Manifest *media.Manifest
	Algo     Algorithm

	// VideoFetcher downloads video chunks; AudioFetcher downloads audio
	// chunks when the manifest has separate audio tracks. They may be the
	// same object (QUIC multiplexing) or distinct (one HTTPS connection
	// per media type).
	VideoFetcher webproto.Fetcher
	AudioFetcher webproto.Fetcher

	// MaxBufferSec: stop requesting when the buffer reaches this (the OFF
	// threshold). Default 30 (ExoPlayer-like).
	MaxBufferSec float64
	// ResumeBufferSec: resume requesting when the buffer drops below this.
	// Default 15 (ExoPlayer-like). Set equal to MaxBufferSec for the
	// chunk-at-a-time ON-OFF pattern §7 observes on Hulu.
	ResumeBufferSec float64
	// StartupBufferSec of content must be buffered before playback starts.
	// Default one chunk duration.
	StartupBufferSec float64
	// RebufferSec of content must accumulate before playback resumes after
	// a stall. Default one chunk duration.
	RebufferSec float64
	// StartupChunks are forced to the lowest track before adaptation kicks
	// in (Hulu starts from T1, §7). Default 1.
	StartupChunks int
	// StartIndex is the first playback index requested (tests may resume
	// mid-video, §3.3). Default 0.
	StartIndex int
	// StopAt: no new requests are issued at or after this time.
	StopAt float64
	// ThroughputAlpha is the EWMA weight of the newest sample. Default 0.5.
	ThroughputAlpha float64
	// Obs traces chunk downloads, buffer levels, bitrate switches and
	// stalls. Nil disables instrumentation.
	Obs *obs.Tracer
}

func (c Config) withDefaults() (Config, error) {
	if c.Manifest == nil {
		return c, fmt.Errorf("abr: nil manifest")
	}
	if c.Algo == nil {
		return c, fmt.Errorf("abr: nil algorithm")
	}
	if c.VideoFetcher == nil {
		return c, fmt.Errorf("abr: nil video fetcher")
	}
	if c.Manifest.HasSeparateAudio() && c.AudioFetcher == nil {
		return c, fmt.Errorf("abr: manifest has separate audio but no audio fetcher")
	}
	if c.MaxBufferSec == 0 {
		c.MaxBufferSec = 30
	}
	if c.ResumeBufferSec == 0 {
		c.ResumeBufferSec = 15
	}
	if c.ResumeBufferSec > c.MaxBufferSec {
		c.ResumeBufferSec = c.MaxBufferSec
	}
	if c.StartupBufferSec == 0 {
		c.StartupBufferSec = c.Manifest.ChunkDur
	}
	if c.RebufferSec == 0 {
		c.RebufferSec = c.Manifest.ChunkDur
	}
	if c.StartupChunks == 0 {
		c.StartupChunks = 1
	}
	if c.StopAt == 0 {
		c.StopAt = 1e18
	}
	if c.ThroughputAlpha == 0 {
		c.ThroughputAlpha = 0.5
	}
	return c, nil
}

// pipeline drives sequential chunk downloads for one media type.
type pipeline struct {
	p           *Player
	kind        media.Type
	fetcher     webproto.Fetcher
	track       int // audio: fixed track; video: last selected
	nextIndex   int
	numChunks   int
	outstanding bool
	fetched     int       // chunks completed
	span        *obs.Span // open download span for the outstanding chunk
}

// contentEnd returns the content time (seconds) buffered contiguously.
func (pl *pipeline) contentEnd() float64 {
	return float64(pl.nextIndex-pl.p.cfg.StartIndex+ /*offset*/ 0) * pl.p.dur
}

type playSegment struct {
	wallStart    float64
	wallEnd      float64 // updated on pause; +inf while playing
	contentStart float64
}

// Player simulates the streaming client. Create with NewPlayer, call Start,
// then run the engine.
type Player struct {
	eng *sim.Engine
	cfg Config
	dur float64

	video *pipeline
	audio *pipeline

	throughput float64 // EWMA, bits/s

	playing      bool
	started      bool
	playhead     float64 // content seconds (relative: 0 = StartIndex boundary)
	lastUpdate   float64 // wall time of last playhead update
	stallTimer   *sim.Event
	wakeTimer    *sim.Event
	segments     []playSegment
	stalls       []capture.StallRecord
	stallStart   float64
	inStall      bool
	truth        []capture.TruthRecord
	firstReqDone bool
}

// NewPlayer validates the config and builds a player on the engine.
func NewPlayer(eng *sim.Engine, cfg Config) (*Player, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Player{eng: eng, cfg: cfg, dur: cfg.Manifest.ChunkDur}
	p.video = &pipeline{
		p: p, kind: media.Video, fetcher: cfg.VideoFetcher,
		track: -1, nextIndex: cfg.StartIndex, numChunks: cfg.Manifest.NumVideoChunks(),
	}
	if cfg.Manifest.HasSeparateAudio() {
		at := cfg.Manifest.AudioTracks()[0]
		p.audio = &pipeline{
			p: p, kind: media.Audio, fetcher: cfg.AudioFetcher,
			track: at, nextIndex: cfg.StartIndex, numChunks: cfg.Manifest.NumAudioChunks(),
		}
	}
	if cfg.StartIndex >= p.video.numChunks {
		return nil, fmt.Errorf("abr: start index %d beyond video end %d", cfg.StartIndex, p.video.numChunks)
	}
	return p, nil
}

// Start begins the session: both pipelines issue their first requests
// immediately (this simultaneous double request is an SP2 split point for
// the SQ analysis, §5.3.2).
func (p *Player) Start() {
	p.video.maybeFetch()
	if p.audio != nil {
		p.audio.maybeFetch()
	}
}

// bufferSec returns seconds of playable content ahead of the playhead: the
// minimum of the pipelines, since playback needs both audio and video.
func (p *Player) bufferSec() float64 {
	p.syncPlayhead()
	end := p.video.contentEnd()
	if p.audio != nil && p.audio.contentEnd() < end {
		end = p.audio.contentEnd()
	}
	b := end - p.playhead
	if b < 0 {
		b = 0
	}
	return b
}

func (p *Player) syncPlayhead() {
	now := p.eng.Now()
	if p.playing {
		p.playhead += now - p.lastUpdate
	}
	p.lastUpdate = now
}

// maybeFetch issues the next request for the pipeline if allowed.
func (pl *pipeline) maybeFetch() {
	p := pl.p
	now := p.eng.Now()
	if pl.outstanding || pl.nextIndex >= pl.numChunks || now >= p.cfg.StopAt {
		return
	}
	// ON-OFF buffer management, modelled after ExoPlayer's *global* load
	// control: each pipeline stops loading when its own buffer reaches
	// MaxBufferSec, and all pipelines resume together when the overall
	// (minimum) buffer drains below ResumeBufferSec. The shared resume cue
	// makes audio and video requests go out at the same instant — the SP2
	// split-point signal CSI exploits for QUIC multiplexing (§5.3.2).
	p.syncPlayhead()
	myBuffer := pl.contentEnd() - p.playhead
	if myBuffer >= p.cfg.MaxBufferSec {
		p.scheduleResumeWake()
		return
	}

	var ref media.ChunkRef
	if pl.kind == media.Audio {
		ref = media.ChunkRef{Track: pl.track, Index: pl.nextIndex}
	} else {
		track := pl.selectVideoTrack()
		if tr := p.cfg.Obs; tr != nil && pl.track >= 0 && track != pl.track {
			tr.Event("abr", "bitrate_switch",
				obs.Int("index", int64(pl.nextIndex)),
				obs.Int("from", int64(pl.track)),
				obs.Int("to", int64(track)),
				obs.Float("throughput_bps", p.throughput))
		}
		pl.track = track
		ref = media.ChunkRef{Track: track, Index: pl.nextIndex}
	}
	pl.outstanding = true
	reqTime := now
	size := p.cfg.Manifest.Size(ref)
	if tr := p.cfg.Obs; tr != nil {
		pl.span = tr.Begin("abr", "chunk",
			obs.Str("kind", pl.kind.String()),
			obs.Int("track", int64(ref.Track)),
			obs.Int("index", int64(ref.Index)),
			obs.Int("size", size))
	}
	rec := capture.TruthRecord{ReqTime: reqTime, Ref: ref, Kind: pl.kind, Size: size}
	idx := len(p.truth)
	p.truth = append(p.truth, rec)
	pl.fetcher.Fetch(ref, func(doneAt float64) {
		pl.onChunkDone(idx, reqTime, size, doneAt)
	})
}

func (pl *pipeline) selectVideoTrack() int {
	p := pl.p
	if pl.fetched < p.cfg.StartupChunks {
		return ladder(p.cfg.Manifest)[0]
	}
	return p.cfg.Algo.Select(State{
		ThroughputBps: p.throughput,
		BufferSec:     p.bufferSec(),
		LastTrack:     pl.track,
		Manifest:      p.cfg.Manifest,
	})
}

func (pl *pipeline) onChunkDone(truthIdx int, reqTime float64, size int64, now float64) {
	p := pl.p
	pl.outstanding = false
	pl.fetched++
	pl.nextIndex++
	p.truth[truthIdx].DoneTime = now
	if pl.span != nil {
		pl.span.End()
		pl.span = nil
		p.cfg.Obs.Sample("abr", "buffer_sec", p.bufferSec())
	}

	// Throughput sample over the full request-response exchange.
	if dt := now - reqTime; dt > 0 {
		sample := float64(size) * 8 / dt
		// Audio chunks are small and RTT-dominated; only video samples
		// update the estimate (players weight by bytes; this approximates
		// that).
		if pl.kind == media.Video {
			if p.throughput == 0 {
				p.throughput = sample
			} else {
				a := p.cfg.ThroughputAlpha
				p.throughput = a*sample + (1-a)*p.throughput
			}
		}
	}

	p.onBufferGrew()
	pl.maybeFetch()
}

// onBufferGrew re-evaluates playback state after new content arrived.
func (p *Player) onBufferGrew() {
	buf := p.bufferSec()
	if !p.started {
		if buf >= p.cfg.StartupBufferSec {
			p.started = true
			p.resumePlayback()
		}
		return
	}
	if p.inStall && buf >= p.cfg.RebufferSec {
		p.stalls = append(p.stalls, capture.StallRecord{Start: p.stallStart, End: p.eng.Now()})
		p.inStall = false
		if tr := p.cfg.Obs; tr != nil {
			tr.Event("abr", "stall_end", obs.Float("dur", p.eng.Now()-p.stallStart))
		}
		p.resumePlayback()
	}
	if p.playing {
		p.armStallTimer()
	}
}

func (p *Player) resumePlayback() {
	p.syncPlayhead()
	p.playing = true
	p.segments = append(p.segments, playSegment{
		wallStart:    p.eng.Now(),
		wallEnd:      -1,
		contentStart: p.playhead,
	})
	p.armStallTimer()
	// Resuming playback drains the buffer again; cue OFF pipelines.
	p.cueFetches()
}

func (p *Player) cueFetches() {
	p.video.maybeFetch()
	if p.audio != nil {
		p.audio.maybeFetch()
	}
}

// scheduleResumeWake arms (once) the global resume cue: when the overall
// buffer is projected to drain to ResumeBufferSec, all pipelines re-check.
func (p *Player) scheduleResumeWake() {
	if p.wakeTimer != nil || !p.playing {
		return
	}
	wake := p.bufferSec() - p.cfg.ResumeBufferSec
	if wake < 0.01 {
		wake = 0.01
	}
	p.wakeTimer = p.eng.Schedule(wake, func() {
		p.wakeTimer = nil
		p.cueFetches()
	})
}

// armStallTimer schedules the moment the playhead would catch the buffer.
func (p *Player) armStallTimer() {
	if p.stallTimer != nil {
		p.stallTimer.Cancel()
		p.stallTimer = nil
	}
	if !p.playing {
		return
	}
	buf := p.bufferSec()
	p.stallTimer = p.eng.Schedule(buf, p.onPlayheadCaughtUp)
}

func (p *Player) onPlayheadCaughtUp() {
	p.stallTimer = nil
	if !p.playing {
		return
	}
	if p.bufferSec() > 1e-9 {
		// New data arrived since the timer was armed.
		p.armStallTimer()
		return
	}
	// Pause: either a stall or the end of the (fetched part of the) video.
	p.syncPlayhead()
	p.playing = false
	if len(p.segments) > 0 {
		p.segments[len(p.segments)-1].wallEnd = p.eng.Now()
	}
	videoDone := p.video.nextIndex >= p.video.numChunks
	if !videoDone {
		p.inStall = true
		p.stallStart = p.eng.Now()
		if tr := p.cfg.Obs; tr != nil {
			tr.Event("abr", "stall_begin", obs.Float("playhead", p.playhead))
		}
		p.cueFetches()
	}
}

// Finish closes bookkeeping at the end of a run.
func (p *Player) Finish() {
	p.syncPlayhead()
	if p.playing && len(p.segments) > 0 {
		p.segments[len(p.segments)-1].wallEnd = p.eng.Now()
		p.playing = false
	}
	if p.inStall {
		p.stalls = append(p.stalls, capture.StallRecord{Start: p.stallStart, End: p.eng.Now()})
		p.inStall = false
	}
}

// Truth returns the ground-truth request log.
func (p *Player) Truth() []capture.TruthRecord { return p.truth }

// Stalls returns recorded stall events.
func (p *Player) Stalls() []capture.StallRecord { return p.stalls }

// Throughput returns the current EWMA estimate in bits/s.
func (p *Player) Throughput() float64 { return p.throughput }

// DisplayLog derives which video chunk was on screen when, from the
// playback segments and the per-index track choices — the information a
// screen-analysis side channel would produce.
func (p *Player) DisplayLog() []capture.DisplayRecord {
	// Track per index from truth (video only).
	trackOf := map[int]int{}
	for _, tr := range p.truth {
		if tr.Kind == media.Video && tr.DoneTime > 0 {
			trackOf[tr.Ref.Index] = tr.Ref.Track
		}
	}
	var out []capture.DisplayRecord
	for _, seg := range p.segments {
		end := seg.wallEnd
		if end < 0 {
			end = p.eng.Now()
		}
		// Content interval covered by this segment.
		cStart := seg.contentStart
		cEnd := cStart + (end - seg.wallStart)
		firstIdx := p.cfg.StartIndex + int(cStart/p.dur)
		for idx := firstIdx; float64(idx-p.cfg.StartIndex)*p.dur < cEnd; idx++ {
			track, ok := trackOf[idx]
			if !ok {
				continue
			}
			ws := seg.wallStart + (float64(idx-p.cfg.StartIndex)*p.dur - cStart)
			we := ws + p.dur
			if ws < seg.wallStart {
				ws = seg.wallStart
			}
			if we > end {
				we = end
			}
			if we <= ws {
				continue
			}
			out = append(out, capture.DisplayRecord{Start: ws, End: we, Index: idx, Track: track})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}
