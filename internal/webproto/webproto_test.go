package webproto

import (
	"testing"

	"csi/internal/media"
	"csi/internal/media/mediatest"
	"csi/internal/netem"
	"csi/internal/packet"
	"csi/internal/quicsim"
	"csi/internal/sim"
	"csi/internal/tcpsim"
	"csi/internal/tlssim"
)

func testManifest(t *testing.T) *media.Manifest {
	t.Helper()
	return mediatest.Encode(t, media.EncodeConfig{
		Name: "wp", Seed: 5, DurationSec: 100, ChunkDur: 5, TargetPASR: 1.3, AudioTracks: 1,
	})
}

func newLinks(eng *sim.Engine) (up, down *netem.Link) {
	up = netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(20_000_000), Delay: 0.02},
		func(p *packet.Packet) { p.Arrive(eng.Now()) })
	down = netem.NewLink(eng, netem.LinkConfig{Trace: netem.Constant(8_000_000), Delay: 0.02, QueueCap: 1 << 20},
		func(p *packet.Packet) { p.Arrive(eng.Now()) })
	return up, down
}

func TestHTTPSFetchSequence(t *testing.T) {
	man := testManifest(t)
	eng := sim.New()
	up, down := newLinks(eng)
	conn := tcpsim.NewConn(eng, tcpsim.Config{ConnID: 1}, up, down)
	sess := tlssim.NewSession(conn)
	f := NewHTTPSFetcher(sess, man, 1)
	var doneTimes []float64
	conn.Start(func(now float64) {
		sess.Handshake("h", func(now float64) {
			var next func(i int)
			next = func(i int) {
				if i >= 3 {
					return
				}
				f.Fetch(media.ChunkRef{Track: 0, Index: i}, func(now float64) {
					doneTimes = append(doneTimes, now)
					next(i + 1)
				})
			}
			next(0)
		})
	})
	eng.Run()
	if len(doneTimes) != 3 {
		t.Fatalf("completed %d fetches, want 3", len(doneTimes))
	}
	for i := 1; i < len(doneTimes); i++ {
		if doneTimes[i] <= doneTimes[i-1] {
			t.Fatal("fetch completions out of order")
		}
	}
	if f.Requests != 3 {
		t.Fatalf("requests = %d", f.Requests)
	}
}

func TestHTTPSFetcherRejectsPipelining(t *testing.T) {
	man := testManifest(t)
	eng := sim.New()
	up, down := newLinks(eng)
	conn := tcpsim.NewConn(eng, tcpsim.Config{ConnID: 1}, up, down)
	sess := tlssim.NewSession(conn)
	f := NewHTTPSFetcher(sess, man, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("pipelined Fetch did not panic")
		}
	}()
	conn.Start(func(now float64) {
		sess.Handshake("h", func(now float64) {
			f.Fetch(media.ChunkRef{Track: 0, Index: 0}, func(now float64) {})
			f.Fetch(media.ChunkRef{Track: 0, Index: 1}, func(now float64) {})
		})
	})
	eng.Run()
}

func TestQUICFetcherConcurrent(t *testing.T) {
	man := testManifest(t)
	eng := sim.New()
	up, down := newLinks(eng)
	conn := quicsim.NewConn(eng, quicsim.Config{ConnID: 1}, up, down)
	f := NewQUICFetcher(conn, man, 1)
	var done int
	conn.Start("h", func(now float64) {
		// Concurrent audio + video fetch: allowed on QUIC (multiplexing).
		f.Fetch(media.ChunkRef{Track: 0, Index: 0}, func(now float64) { done++ })
		f.Fetch(media.ChunkRef{Track: 6, Index: 0}, func(now float64) { done++ })
		if f.Outstanding != 2 {
			t.Errorf("outstanding = %d, want 2", f.Outstanding)
		}
	})
	eng.Run()
	if done != 2 {
		t.Fatalf("completed %d fetches, want 2", done)
	}
	if f.Outstanding != 0 {
		t.Fatalf("outstanding = %d after completion", f.Outstanding)
	}
}

// Response sizes on the wire must stay within the estimator's assumptions:
// body + [280, 350] bytes of headers.
func TestResponseHeaderBounds(t *testing.T) {
	if responseBase < 280 {
		t.Fatalf("responseBase %d below the estimator's MinResponseHeaderBytes=280", responseBase)
	}
	if responseBase+responseJitter > 400 {
		t.Fatalf("max response header %d implausibly large", responseBase+responseJitter)
	}
	if requestBase <= 80 {
		t.Fatalf("request size %d would be mistaken for a QUIC ACK", requestBase)
	}
}
