// Package webproto provides the application layer of the streaming stack:
// HTTP/1.1-over-TLS (HTTPS) and HTTP/3-over-QUIC request/response semantics
// for fetching ABR chunks from a chunk server.
//
// Requests carry encrypted URLs; all the monitor sees is an uplink packet of
// a few hundred bytes. Responses are HTTP headers plus the chunk body. On an
// HTTPS connection the player never pipelines: at most one request is
// outstanding (§5.2 of the paper). On QUIC each request opens a new stream,
// and concurrent requests multiplex (the SQ design).
package webproto

import (
	"fmt"
	"math/rand"

	"csi/internal/media"
	"csi/internal/quicsim"
	"csi/internal/stats"
	"csi/internal/tlssim"
)

// Request/response header size model: base size plus deterministic
// per-request jitter (cookies, varying header values).
const (
	requestBase    = 380
	requestJitter  = 60
	responseBase   = 310
	responseJitter = 40
)

// Fetcher downloads one chunk at a time and reports completion.
type Fetcher interface {
	// Fetch requests the chunk and calls done when the response has been
	// fully received. Implementations enforce the one-outstanding-request
	// rule where the transport requires it.
	Fetch(ref media.ChunkRef, done func(now float64))
}

// HTTPSFetcher issues sequential HTTP/1.1 requests over one TLS session.
type HTTPSFetcher struct {
	sess        *tlssim.Session
	man         *media.Manifest
	rng         *rand.Rand
	outstanding bool

	Requests int64
}

// NewHTTPSFetcher wraps an established (post-handshake) TLS session.
func NewHTTPSFetcher(sess *tlssim.Session, man *media.Manifest, seed int64) *HTTPSFetcher {
	return &HTTPSFetcher{sess: sess, man: man, rng: stats.NewRand(seed)}
}

// Fetch implements Fetcher.
func (f *HTTPSFetcher) Fetch(ref media.ChunkRef, done func(now float64)) {
	if f.outstanding {
		panic(fmt.Sprintf("webproto: pipelined request for chunk %+v on HTTPS connection", ref)) //csi-vet:ignore nakedpanic -- HTTP/1.1 pipelining is unsupported by design; this is a harness bug
	}
	f.outstanding = true
	f.Requests++
	reqSize := int64(requestBase + f.rng.Intn(requestJitter))
	respSize := int64(responseBase+f.rng.Intn(responseJitter)) + f.man.Size(ref)
	f.sess.Up.Write(reqSize, tlssim.AppData, func(now float64) {
		// Runs at the server when the request is fully received.
		f.sess.Down.Write(respSize, tlssim.AppData, func(now float64) {
			f.outstanding = false
			done(now)
		})
	})
}

// QUICFetcher issues HTTP/3 requests, one fresh client-initiated
// bidirectional stream per request (IDs 0, 4, 8, ...). Multiple fetches may
// be outstanding at once; their response bytes multiplex on the connection.
type QUICFetcher struct {
	conn    *quicsim.Conn
	man     *media.Manifest
	rng     *rand.Rand
	nextSID int64

	Requests    int64
	Outstanding int
}

// NewQUICFetcher wraps an established (post-handshake) QUIC connection.
func NewQUICFetcher(conn *quicsim.Conn, man *media.Manifest, seed int64) *QUICFetcher {
	return &QUICFetcher{conn: conn, man: man, rng: stats.NewRand(seed)}
}

// Fetch implements Fetcher.
func (f *QUICFetcher) Fetch(ref media.ChunkRef, done func(now float64)) {
	sid := f.nextSID
	f.nextSID += 4
	f.Requests++
	f.Outstanding++
	reqSize := int64(requestBase + f.rng.Intn(requestJitter))
	respSize := int64(responseBase+f.rng.Intn(responseJitter)) + f.man.Size(ref)
	f.conn.Client.Write(sid, reqSize, func(now float64) {
		f.conn.Server.Write(sid, respSize, func(now float64) {
			f.Outstanding--
			done(now)
		})
	})
}
