package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatcmp flags == and != between floating-point operands. The
// size-matching core compares estimated against manifest chunk sizes; the
// paper's reconstruction only works with explicit tolerances (§5.3), and
// exact float equality silently breaks under any reordering of
// floating-point accumulation. The x != x NaN idiom is exempt.
var Floatcmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= between floating-point operands where tolerance-based comparison is required",
	Run:  runFloatcmp,
}

func runFloatcmp(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass.Info.TypeOf(bin.X)) && !isFloat(pass.Info.TypeOf(bin.Y)) {
			return true
		}
		if isSelfCompare(bin.X, bin.Y) {
			return true // x != x is the portable IsNaN check
		}
		pass.Reportf(bin.OpPos, "floating-point %s comparison; use a tolerance (or an integer/sentinel representation)", bin.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isSelfCompare reports whether x and y are the same plain identifier or
// selector chain, e.g. v != v or s.x != s.x.
func isSelfCompare(x, y ast.Expr) bool {
	switch xv := x.(type) {
	case *ast.Ident:
		yv, ok := y.(*ast.Ident)
		return ok && xv.Name == yv.Name
	case *ast.SelectorExpr:
		yv, ok := y.(*ast.SelectorExpr)
		return ok && xv.Sel.Name == yv.Sel.Name && isSelfCompare(xv.X, yv.X)
	}
	return false
}
