package analysis

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// IgnorePrefix starts a line-level suppression comment:
//
//	//csi-vet:ignore <rule>[,<rule>...] [-- reason]
//
// The comment suppresses matching findings on its own line and on the
// line directly below it (so it works both as a trailing comment and as a
// directive above the offending statement). The special rule name "all"
// suppresses every rule.
const IgnorePrefix = "csi-vet:ignore"

// An ignoreDirective is one parsed //csi-vet:ignore comment, with usage
// tracking for the stale-suppression audit.
type ignoreDirective struct {
	file   string
	line   int
	col    int
	rules  []string
	reason string
	used   map[string]bool // rule -> suppressed at least one finding
}

// suppressionIndex indexes every ignore directive of a module by the
// file:line keys it covers.
type suppressionIndex struct {
	directives []*ignoreDirective
	byKey      map[string][]*ignoreDirective
}

// buildIgnoreIndex parses the //csi-vet:ignore comments of every file.
func buildIgnoreIndex(pkgs []*Package) *suppressionIndex {
	ix := &suppressionIndex{byKey: map[string][]*ignoreDirective{}}
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
					rest, ok := strings.CutPrefix(text, IgnorePrefix)
					if !ok {
						continue
					}
					reason := ""
					if parts := strings.SplitN(rest, "--", 2); len(parts) == 2 {
						rest, reason = parts[0], strings.TrimSpace(parts[1])
					}
					var rules []string
					for _, r := range strings.Split(strings.TrimSpace(rest), ",") {
						if r = strings.TrimSpace(r); r != "" {
							rules = append(rules, r)
						}
					}
					pos := pkg.Fset.Position(c.Pos())
					d := &ignoreDirective{
						file:   pkg.Filenames[i],
						line:   pos.Line,
						col:    pos.Column,
						rules:  rules,
						reason: reason,
						used:   map[string]bool{},
					}
					ix.directives = append(ix.directives, d)
					for _, off := range []int{0, 1} {
						key := fmt.Sprintf("%s:%d", d.file, d.line+off)
						ix.byKey[key] = append(ix.byKey[key], d)
					}
				}
			}
		}
	}
	sort.Slice(ix.directives, func(i, j int) bool {
		a, b := ix.directives[i], ix.directives[j]
		if a.file != b.file {
			return a.file < b.file
		}
		return a.line < b.line
	})
	return ix
}

// suppress reports whether d is covered by an ignore directive, marking
// the directive used.
func (ix *suppressionIndex) suppress(d Diagnostic) bool {
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	hit := false
	for _, dir := range ix.byKey[key] {
		for _, r := range dir.rules {
			if r == d.Rule || r == "all" {
				dir.used[r] = true
				hit = true
			}
		}
	}
	return hit
}

// StaleRule is the pseudo-rule stale-suppression reports are filed under.
const StaleRule = "suppression"

// staleSuppressions reports every suppression that did nothing: an ignore
// directive rule (or a conf allow entry) that ran in scope but matched no
// finding, and directive rules that name no registered rule at all. Rules
// that were not part of this run are skipped — their suppressions cannot
// be judged — and so are conf allow entries whose target package was not
// loaded (a subset run like "csi-vet internal/core" must not condemn
// allowlist entries for packages it never analyzed).
func staleSuppressions(ix *suppressionIndex, cfg *Config, ran map[string]bool, loadedDirs map[string]bool) []Diagnostic {
	registered := map[string]bool{"all": true}
	for _, az := range All {
		registered[az.Name] = true
	}
	ranAll := true
	for _, az := range All {
		if !ran[az.Name] {
			ranAll = false
			break
		}
	}

	var out []Diagnostic
	report := func(pos Diagnostic, format string, args ...any) {
		pos.Rule = StaleRule
		pos.Msg = fmt.Sprintf(format, args...)
		out = append(out, pos)
	}
	for _, dir := range ix.directives {
		at := Diagnostic{}
		at.Pos.Filename, at.Pos.Line, at.Pos.Column = dir.file, dir.line, dir.col
		for _, r := range dir.rules {
			switch {
			case !registered[r]:
				report(at, "ignore comment names unknown rule %q; delete or fix it", r)
			case r == "all" && !ranAll, r != "all" && !ran[r]:
				// Rule not exercised this run; cannot judge.
			case dir.used[r]:
				// Live suppression.
			default:
				report(at, "stale ignore comment: rule %q no longer reports here; delete it", r)
			}
		}
	}
	covered := func(pathStr string) bool {
		p := strings.TrimSuffix(pathStr, "/")
		if strings.HasSuffix(pathStr, "/") {
			for d := range loadedDirs {
				if d == p || strings.HasPrefix(d, p+"/") {
					return true
				}
			}
			return false
		}
		return loadedDirs[path.Dir(p)]
	}
	for _, ca := range cfg.confAllows {
		switch {
		case !registered[ca.Rule]:
			at := Diagnostic{}
			at.Pos.Filename, at.Pos.Line, at.Pos.Column = ca.File, ca.Line, 1
			report(at, "allow entry names unknown rule %q; delete or fix it", ca.Rule)
		case ca.Rule == "all" && !ranAll, ca.Rule != "all" && !ran[ca.Rule]:
		case !covered(ca.Path):
			// Target package not part of this run; cannot judge.
		case ca.used:
		default:
			at := Diagnostic{}
			at.Pos.Filename, at.Pos.Line, at.Pos.Column = ca.File, ca.Line, 1
			report(at, "stale allow entry: rule %q no longer reports under %q; delete it", ca.Rule, ca.Path)
		}
	}
	return sortDiagnostics(out)
}

// suppressionInventory flattens every suppression into the audited
// inventory records the JSON output archives.
func suppressionInventory(ix *suppressionIndex, cfg *Config) []SuppressionRecord {
	var out []SuppressionRecord
	for _, dir := range ix.directives {
		for _, r := range dir.rules {
			out = append(out, SuppressionRecord{
				Kind:   "ignore",
				File:   dir.file,
				Line:   dir.line,
				Rule:   r,
				Reason: dir.reason,
				Active: dir.used[r],
			})
		}
	}
	for _, ca := range cfg.confAllows {
		out = append(out, SuppressionRecord{
			Kind:   "allow",
			File:   ca.File,
			Line:   ca.Line,
			Rule:   ca.Rule,
			Path:   ca.Path,
			Active: ca.used,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Rule < b.Rule
	})
	return out
}
