package analysis

import (
	"path/filepath"
	"testing"
)

func TestMatchAnyPattern(t *testing.T) {
	cases := []struct {
		patterns []string
		rel      string
		want     bool
	}{
		{[]string{"./..."}, "internal/core", true},
		{[]string{"./..."}, ".", true},
		{[]string{"..."}, "cmd/csi-vet", true},
		{[]string{"internal/..."}, "internal/core", true},
		{[]string{"internal/..."}, "internal", true},
		{[]string{"internal/..."}, "cmd/csi-vet", false},
		{[]string{"./internal/core"}, "internal/core", true},
		{[]string{"internal/core"}, "internal/core/deep", false},
		{[]string{"."}, ".", true},
		{[]string{"."}, "internal", false},
		{[]string{"cmd/...", "internal/core"}, "internal/core", true},
	}
	for _, c := range cases {
		if got := matchAnyPattern(c.patterns, c.rel); got != c.want {
			t.Errorf("matchAnyPattern(%v, %q) = %v, want %v", c.patterns, c.rel, got, c.want)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "csi" {
		t.Errorf("module path = %q, want csi", modPath)
	}
	if filepath.Base(filepath.Dir(root)) == "analysis" {
		t.Errorf("root %q should be above internal/analysis", root)
	}
	if _, _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("expected error outside any module")
	}
}

func TestParseModulePath(t *testing.T) {
	if got := parseModulePath("// comment\nmodule example.com/x\n\ngo 1.22\n"); got != "example.com/x" {
		t.Errorf("parseModulePath = %q", got)
	}
	if got := parseModulePath("go 1.22\n"); got != "" {
		t.Errorf("parseModulePath on moduleless file = %q", got)
	}
}

// TestLoadDirPositions checks that LoadDir reports file positions relative
// to the loaded directory — the property the golden files depend on.
func TestLoadDirPositions(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "floatcmp"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.RelPath != "." {
		t.Errorf("RelPath = %q, want .", pkg.RelPath)
	}
	if len(pkg.Filenames) != 1 || pkg.Filenames[0] != "floatcmp.go" {
		t.Errorf("Filenames = %v", pkg.Filenames)
	}
	if pkg.Pkg.Name() != "floatcmp" {
		t.Errorf("package name = %q", pkg.Pkg.Name())
	}
}

// TestLoadModuleSubset loads a leaf package and checks its metadata
// without paying for the full module.
func TestLoadModuleSubset(t *testing.T) {
	pkgs, err := LoadModule(".", []string{"internal/packet"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "csi/internal/packet" || p.RelPath != "internal/packet" {
		t.Errorf("ImportPath=%q RelPath=%q", p.ImportPath, p.RelPath)
	}
	if p.Info == nil || p.Pkg == nil || len(p.Files) == 0 {
		t.Error("package not fully loaded")
	}
}
