package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of the module under
// analysis. Analyzers receive it wrapped in a Pass.
type Package struct {
	// ImportPath is the full import path ("csi/internal/core").
	ImportPath string
	// RelPath is the package directory relative to the module root, using
	// forward slashes; the module root itself is ".".
	RelPath string
	Fset    *token.FileSet
	Files   []*ast.File
	// Filenames[i] is the path of Files[i] relative to the module root.
	Filenames []string
	Pkg       *types.Package
	Info      *types.Info
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod and returns that directory plus the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("analysis: no module directive in %s/go.mod", dir)
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// loader type-checks module-local packages on demand, delegating standard
// library imports to the stdlib source importer. It memoizes both, so a
// shared loader amortizes the cost of the stdlib across every package of
// the module.
type loader struct {
	fset    *token.FileSet
	modDir  string
	modPath string
	std     types.Importer
	local   map[string]*Package
	loading map[string]bool
}

func newLoader(modDir, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modDir:  modDir,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		local:   map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer over both local and stdlib packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	return filepath.Join(l.modDir, filepath.FromSlash(rel))
}

func (l *loader) loadLocal(importPath string) (*Package, error) {
	if pkg, ok := l.local[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.dirFor(importPath)
	files, names, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, err := l.check(importPath, dir, files, names)
	if err != nil {
		return nil, err
	}
	l.local[importPath] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file of dir, with comments (needed for
// //csi-vet:ignore directives).
func (l *loader) parseDir(dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		names = append(names, full)
	}
	return files, names, nil
}

func (l *loader) check(importPath, dir string, files []*ast.File, names []string) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil {
		rel = dir
	}
	relNames := make([]string, len(names))
	for i, n := range names {
		if r, err := filepath.Rel(l.modDir, n); err == nil {
			relNames[i] = filepath.ToSlash(r)
		} else {
			relNames[i] = n
		}
	}
	return &Package{
		ImportPath: importPath,
		RelPath:    filepath.ToSlash(rel),
		Fset:       l.fset,
		Files:      files,
		Filenames:  relNames,
		Pkg:        tpkg,
		Info:       info,
	}, nil
}

// LoadDir parses and type-checks the single package in dir, resolving
// imports from the standard library only. It exists for self-tests over
// testdata trees that are not part of any module; diagnostics position
// filenames relative to dir.
func LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(abs, "\x00none") // module path that matches no import
	files, names, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}
	return l.check(filepath.Base(abs), abs, files, names)
}

// LoadModule loads and type-checks every non-test package of the module
// rooted at dir whose relative path matches one of patterns. A pattern is
// either an exact package directory relative to the module root ("." for
// the root package, "internal/core"), or a recursive prefix ending in
// "/..." ("./..." or "internal/..."). With no patterns, "./..." is
// assumed. Packages are returned sorted by import path.
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	modDir, modPath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := packageDirs(modDir)
	if err != nil {
		return nil, err
	}
	l := newLoader(modDir, modPath)
	var pkgs []*Package
	for _, rel := range dirs {
		if !matchAnyPattern(patterns, rel) {
			continue
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + rel
		}
		pkg, err := l.loadLocal(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// packageDirs returns every directory under root (relative, slash-separated,
// root as ".") that contains at least one non-test .go file, skipping
// testdata, vendor, and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func matchAnyPattern(patterns []string, rel string) bool {
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		if p == "" {
			p = "."
		}
		if p == "..." {
			return true
		}
		if strings.HasSuffix(p, "/...") {
			prefix := strings.TrimSuffix(p, "/...")
			if prefix == "." || rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
			continue
		}
		if rel == p {
			return true
		}
	}
	return false
}
