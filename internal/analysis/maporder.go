package analysis

import (
	"go/ast"
	"go/types"
)

// Maporder flags `range` over a map whose loop body appends to a slice or
// writes output. Go randomizes map iteration order, so such loops produce
// a differently ordered slice or report on every run — the direct cause of
// non-reproducible experiment tables. The fix is to collect the keys,
// sort them, and range over the sorted slice; the key-collection idiom
// itself (a body that only appends the bare key) is recognized and exempt.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag range over maps whose body appends to a slice or writes output",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.Info.TypeOf(rng.X); t == nil {
			return true
		} else if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if isKeyCollection(rng) {
			return true
		}
		if site := orderSensitiveStmt(pass.Info, rng); site != nil {
			pass.Reportf(rng.For, "iteration over a map %s; map order is randomized — sort the keys first", site.what)
		}
		return true
	})
}

// isKeyCollection recognizes the canonical pre-sort idiom:
//
//	for k := range m { keys = append(keys, k) }
//
// i.e. a single-statement body appending exactly the range key.
func isKeyCollection(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// orderSite describes why a map range is order-sensitive; target is the
// outer object appended to (nil for output writes), which the taint
// engine's sort-after-collect sanitizer keys on.
type orderSite struct {
	what   string
	target types.Object
}

// orderSensitiveStmt scans a loop body for statements whose effect
// escapes one iteration in an order-dependent way: appends to a slice
// declared outside the loop, and output writes to a writer declared
// outside the loop (or to the process streams via fmt.Print*). Appends
// and writes to loop-local scratch values are consumed within the same
// iteration and cannot leak iteration order.
func orderSensitiveStmt(info *types.Info, rng *ast.RangeStmt) *orderSite {
	declaredInside := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
	}
	var found *orderSite
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" &&
				len(call.Args) > 0 && !declaredInside(call.Args[0]) {
				site := &orderSite{what: "appends to a slice"}
				if id := rootIdent(call.Args[0]); id != nil {
					if obj := info.Uses[id]; obj != nil {
						site.target = obj
					}
				}
				found = site
			}
		case *ast.SelectorExpr:
			fn, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			name := fn.Name()
			if fn.Pkg().Path() == "fmt" {
				if printFuncs[name] {
					found = &orderSite{what: "emits output"}
				}
				if (name == "Fprint" || name == "Fprintf" || name == "Fprintln") &&
					len(call.Args) > 0 && !declaredInside(call.Args[0]) {
					found = &orderSite{what: "emits output"}
				}
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && !declaredInside(fun.X) {
				switch name {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					found = &orderSite{what: "emits output"}
				}
			}
		}
		return found == nil
	})
	return found
}

// rootIdent unwraps selector, index, and star expressions to the base
// identifier, e.g. t.Rows[i] -> t.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
