package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

// TestGolden runs every registered analyzer over its testdata package and
// compares the rendered diagnostics against testdata/<rule>.golden. Each
// testdata package contains both seeded violations and compliant code, so
// a match proves the rule fires where it must and stays silent where it
// must not.
func TestGolden(t *testing.T) {
	for _, az := range All {
		t.Run(az.Name, func(t *testing.T) {
			pkg, err := LoadDir(filepath.Join("testdata", "src", az.Name))
			if err != nil {
				t.Fatalf("loading testdata: %v", err)
			}
			var b strings.Builder
			for _, d := range RunAnalyzer(az, pkg) {
				fmt.Fprintln(&b, d)
			}
			got := b.String()
			if got == "" {
				t.Fatalf("analyzer %s produced no findings on its violation file", az.Name)
			}
			goldenPath := filepath.Join("testdata", az.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// repoLoad caches the full-module type-checked load: it is by far the most
// expensive part of module-level testing and three consumers below share it.
var repoLoad struct {
	once sync.Once
	pkgs []*Package
	cfg  *Config
	err  error
}

func loadRepo(tb testing.TB) ([]*Package, *Config) {
	tb.Helper()
	if testing.Short() {
		tb.Skip("loads and type-checks the whole module")
	}
	repoLoad.once.Do(func() {
		modDir, _, err := FindModuleRoot(".")
		if err != nil {
			repoLoad.err = err
			return
		}
		if repoLoad.cfg, err = LoadConfig(modDir); err != nil {
			repoLoad.err = err
			return
		}
		repoLoad.pkgs, repoLoad.err = LoadModule(".", nil)
	})
	if repoLoad.err != nil {
		tb.Fatal(repoLoad.err)
	}
	if len(repoLoad.pkgs) < 20 {
		tb.Fatalf("expected to load the full module, got %d packages", len(repoLoad.pkgs))
	}
	return repoLoad.pkgs, repoLoad.cfg
}

// TestRepoIsVetClean enforces the csi-vet gate from within go test: the
// whole module, under the shipped policy and .csi-vet.conf, must produce
// zero findings and zero stale suppressions (the -strict-ignores contract).
func TestRepoIsVetClean(t *testing.T) {
	pkgs, cfg := loadRepo(t)
	res := Run(NewModule(pkgs), All, cfg, 0)
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	for _, d := range res.Stale {
		t.Errorf("%s", d)
	}
}

// taintAuditFiles is the audited inventory of nondeterminism reaches in the
// library packages: the only files where the taint engine may find a
// source reachable from an exported sink, each a designed, documented
// exception (see .csi-vet.conf and the //csi-vet:ignore sites). The test
// below pins the inventory: any new transitive wall-clock / map-order /
// rand / FS-order / select reach into the inference or report-building
// surface fails here with its full call path.
var taintAuditFiles = map[string]string{
	"internal/experiments/timing.go":  "deliberate latency measurement for the timing table",
	"internal/guard/runner/runner.go": "interrupt watcher select; cancellation only",
	"internal/guard/wallclock.go":     "opt-in -deadline liveness backstop",
	"internal/obs/export.go":          "wallNow behind the WallClockMeta opt-in",
	"internal/obs/live/live.go":       "-serve stage timing; durations stay in the ops plane's own registry",
	"internal/stream/clock.go":        "live-mode monitor clock; replay passes a nil Clock and reads no wall time",
	"internal/stream/recover.go":      "state-dir listing at open; replay order comes from sorted seq-numbered names (crash-matrix gate)",
	"internal/stream/stream.go":       "ingest/handoff selects; ordering never reaches a result (replay gate)",
}

func TestTaintAuditInventory(t *testing.T) {
	pkgs, _ := loadRepo(t)
	mod := NewModule(pkgs)
	pass := &ModulePass{Mod: mod, Rule: Taint.Name}
	Taint.RunModule(pass)
	seen := map[string]bool{}
	for _, d := range pass.diags {
		if _, audited := taintAuditFiles[d.Pos.Filename]; !audited {
			t.Errorf("new nondeterminism reach outside the audited inventory: %s", d)
			continue
		}
		seen[d.Pos.Filename] = true
	}
	for file := range taintAuditFiles {
		if !seen[file] {
			t.Errorf("audited taint site in %s no longer fires; prune it from the inventory and its suppression", file)
		}
	}
}

// TestSpawnAuditInventory pins the goroutine-budget audit the same way:
// the bounded muxsearch pool is the only spawn reachable from the
// inference entry points.
func TestSpawnAuditInventory(t *testing.T) {
	pkgs, _ := loadRepo(t)
	mod := NewModule(pkgs)
	pass := &ModulePass{Mod: mod, Rule: Spawnbound.Name}
	Spawnbound.RunModule(pass)
	for _, d := range pass.diags {
		if d.Pos.Filename != "internal/core/muxsearch.go" {
			t.Errorf("new goroutine spawn on an inference path: %s", d)
		}
	}
	if len(pass.diags) == 0 {
		t.Error("the audited muxsearch pool spawn no longer fires; prune its suppression")
	}
}

// BenchmarkCsiVetModule measures a full-module analysis pass — call-graph
// build included — over the already-loaded packages, and trips if it drifts
// past a generous per-op bound so the pre-merge gate stays cheap.
func BenchmarkCsiVetModule(b *testing.B) {
	pkgs, cfg := loadRepo(b)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		// A fresh Module each iteration forces the graph rebuild, which is
		// what the gate pays on every run.
		res := Run(NewModule(pkgs), All, cfg, 0)
		if len(res.Diags) != 0 {
			b.Fatalf("module not clean during benchmark: %v", res.Diags[0])
		}
	}
	b.StopTimer()
	if perOp := time.Since(start) / time.Duration(b.N); perOp > 10*time.Second {
		b.Fatalf("full-module analysis took %v per op; the csi-vet gate is no longer cheap", perOp)
	}
}

func TestByName(t *testing.T) {
	found, unknown := ByName([]string{"floatcmp", "nope", "maporder"})
	if len(found) != 2 || found[0] != Floatcmp || found[1] != Maporder {
		t.Errorf("found = %v", found)
	}
	if len(unknown) != 1 || unknown[0] != "nope" {
		t.Errorf("unknown = %v", unknown)
	}
}

func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, az := range All {
		if az.Name == "" || az.Doc == "" {
			t.Errorf("analyzer %q incompletely registered", az.Name)
		}
		if (az.Run == nil) == (az.RunModule == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunModule", az.Name)
		}
		if seen[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		seen[az.Name] = true
	}
}
