package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

// TestGolden runs every registered analyzer over its testdata package and
// compares the rendered diagnostics against testdata/<rule>.golden. Each
// testdata package contains both seeded violations and compliant code, so
// a match proves the rule fires where it must and stays silent where it
// must not.
func TestGolden(t *testing.T) {
	for _, az := range All {
		t.Run(az.Name, func(t *testing.T) {
			pkg, err := LoadDir(filepath.Join("testdata", "src", az.Name))
			if err != nil {
				t.Fatalf("loading testdata: %v", err)
			}
			var b strings.Builder
			for _, d := range RunAnalyzer(az, pkg) {
				fmt.Fprintln(&b, d)
			}
			got := b.String()
			if got == "" {
				t.Fatalf("analyzer %s produced no findings on its violation file", az.Name)
			}
			goldenPath := filepath.Join("testdata", az.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestRepoIsVetClean enforces the csi-vet gate from within go test: the
// whole module, under the shipped policy and .csi-vet.conf, must produce
// zero findings.
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	modDir, _, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(modDir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the full module, got %d packages", len(pkgs))
	}
	for _, d := range RunAnalyzers(pkgs, All, cfg) {
		t.Errorf("%s", d)
	}
}

func TestByName(t *testing.T) {
	found, unknown := ByName([]string{"floatcmp", "nope", "maporder"})
	if len(found) != 2 || found[0] != Floatcmp || found[1] != Maporder {
		t.Errorf("found = %v", found)
	}
	if len(unknown) != 1 || unknown[0] != "nope" {
		t.Errorf("unknown = %v", unknown)
	}
}

func TestAnalyzerNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, az := range All {
		if az.Name == "" || az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %q incompletely registered", az.Name)
		}
		if seen[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		seen[az.Name] = true
	}
}
