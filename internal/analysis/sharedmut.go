package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sharedmut flags goroutine bodies that mutate variables captured from
// the enclosing function without a recognized safety idiom. Such writes
// race under `go test -race` only when the schedule happens to collide;
// statically they are always wrong in this codebase, because every
// concurrent structure here (the mux search pool, the supervised runner)
// commits shared state through one of two idioms the rule recognizes:
//
//   - the slot idiom: each goroutine writes only its own element of a
//     pre-sized slice or array (results[i] = ...), and the caller reads
//     after Wait — index writes to slices/arrays are exempt;
//   - the mutex idiom: the goroutine takes a lock before writing —
//     writes preceded by a .Lock()/.RLock() call in the same goroutine
//     body are exempt.
//
// Map element writes get no slot exemption: Go maps are not safe for
// concurrent writes even to distinct keys, so they must use the mutex
// idiom. Channel sends, sync/atomic calls, and writes to variables
// declared inside the goroutine are out of scope by construction.
var Sharedmut = &Analyzer{
	Name: "sharedmut",
	Doc:  "flag goroutine-captured variables mutated without the slot, mutex, or commit-order idiom",
	Run:  runSharedmut,
}

func runSharedmut(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		gost, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(gost.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // `go f(...)` passes arguments by value; f cannot capture
		}
		checkGoroutineBody(pass, lit)
		return true
	})
}

func checkGoroutineBody(pass *Pass, lit *ast.FuncLit) {
	info := pass.Info

	// Positions of lock acquisitions inside the goroutine body. The
	// heuristic is positional (a Lock call textually before the write),
	// which accepts slightly more than a scope-accurate analysis would;
	// the race detector backstops the difference.
	var lockPos []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if name := sel.Sel.Name; name == "Lock" || name == "RLock" {
				lockPos = append(lockPos, call.Pos())
			}
		}
		return true
	})
	lockedBefore := func(pos token.Pos) bool {
		for _, lp := range lockPos {
			if lp < pos {
				return true
			}
		}
		return false
	}

	declaredInsideLit := func(e ast.Expr) (types.Object, bool) {
		id := rootIdent(e)
		if id == nil {
			return nil, true // unresolvable root: give the benefit of the doubt
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return nil, true
		}
		return obj, obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}

	checkWrite := func(target ast.Expr, pos token.Pos) {
		obj, inside := declaredInsideLit(target)
		if inside {
			return
		}
		// Slot idiom: writes through an index into a captured slice or
		// array (including fields of the indexed element). Map element
		// writes are never slot-safe.
		if ix := innermostIndex(target); ix != nil {
			switch info.TypeOf(ix.X).Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				return
			case *types.Map:
				if !lockedBefore(pos) {
					pass.Reportf(pos, "goroutine writes captured map %q without holding a lock; maps are unsafe for concurrent writes — use the mutex idiom", obj.Name())
				}
				return
			}
		}
		if !lockedBefore(pos) {
			pass.Reportf(pos, "goroutine mutates captured variable %q without a lock; commit through the slot idiom (own index of a pre-sized slice) or hold a mutex", obj.Name())
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				checkWrite(lhs, n.TokPos)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, n.TokPos)
		}
		return true
	})
}

// innermostIndex strips selectors, stars, and parens off a write target
// and returns the index expression it goes through, if any:
// results[i].Field -> results[i].
func innermostIndex(e ast.Expr) *ast.IndexExpr {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
