// Package spawnbound seeds violations and near-misses for the
// goroutine-budget rule. Under LoadDir the package path is ".", so its
// exported functions root the reachability search.
package spawnbound

import "sync"

// Infer is an inference entry point; the unbounded spawn hides two
// frames below it.
func Infer(xs []int) int {
	return process(xs)
}

func process(xs []int) int {
	total := 0
	for range xs {
		total += fanOut()
	}
	return total
}

func fanOut() int {
	ch := make(chan int)
	go func() { // unbounded spawn on the inference path
		ch <- 1
	}()
	return <-ch
}

// Search spawns through a sanctioned, annotated pool.
func Search(xs []int) int {
	return pooled(xs)
}

func pooled(xs []int) int {
	var wg sync.WaitGroup
	sem := make(chan struct{}, 4)
	res := make([]int, len(xs))
	for i := range xs {
		wg.Add(1)
		sem <- struct{}{}
		//csi-vet:ignore spawnbound -- fixture: semaphore-capped pool committing by slot
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			res[i] = xs[i] * 2
		}(i)
	}
	wg.Wait()
	total := 0
	for _, v := range res {
		total += v
	}
	return total
}

// helper spawns, but nothing exported reaches it.
func orphanSpawn() {
	go func() {}()
}
