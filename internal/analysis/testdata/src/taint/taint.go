// Package taint seeds violations and near-misses for the interprocedural
// nondeterminism taint rule. The package path is "." under LoadDir, so
// every exported function here is a sink.
package taint

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// --- violations -----------------------------------------------------------

// Report is a sink; the wall clock hides two frames below it.
func Report() string {
	return gather()
}

func gather() string {
	return stamp()
}

func stamp() string {
	return time.Now().String() // multi-hop wall clock
}

// Summarize is a sink; an order-sensitive map range hides one frame down.
func Summarize(m map[string]int) []string {
	return collect(m)
}

func collect(m map[string]int) []string {
	var out []string
	for k, v := range m { // map order leaks into out
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// Shuffle is a sink using the global rand source through a helper.
func Shuffle(xs []int) {
	mix(xs)
}

func mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Configured is a sink reading the environment through a helper.
func Configured() bool {
	return debugEnabled()
}

func debugEnabled() bool {
	return os.Getenv("CSI_DEBUG") != "" // environment read
}

// List is a sink; the filesystem enumeration hides below it.
func List(dir string) int {
	return count(dir)
}

func count(dir string) int {
	ents, _ := os.ReadDir(dir) // filesystem enumeration
	return len(ents)
}

// Merge is a sink; the racy select hides below it.
func Merge(a, b <-chan int) int {
	return firstOf(a, b)
}

func firstOf(a, b <-chan int) int {
	select { // completion order decides the result
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// --- compliant near-misses (must stay silent) -----------------------------

// SortedSummarize collects from a map but sorts before returning.
func SortedSummarize(m map[string]int) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(out)
	return out
}

// Keys uses the collect-keys-then-sort idiom.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Seeded draws from an explicitly seeded source: methods are sanctioned.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Await does a single blocking receive — the submission-order commit
// idiom, not a race.
func Await(done <-chan int) int {
	return <-done
}

// unreachable wraps the wall clock but no sink can reach it.
func unreachable() time.Time { //nolint:unused
	return time.Now()
}

// Audited reaches the wall clock, but the source carries a reasoned
// ignore directive.
func Audited() string {
	return auditedStamp()
}

func auditedStamp() string {
	return time.Now().String() //csi-vet:ignore taint -- fixture: deliberate wall-clock latency measurement
}
