// Package determinism exercises the determinism rule: wall-clock,
// environment, and global math/rand reads fire; explicitly seeded sources
// and ignore-commented lines stay silent.
package determinism

import (
	"math/rand"
	"os"
	"time"
)

func Violations() (float64, string) {
	now := time.Now()
	_ = time.Since(now)
	v := rand.Float64()
	rand.Shuffle(3, func(i, j int) {})
	env := os.Getenv("CSI_DEBUG")
	_, _ = os.LookupEnv("CSI_DEBUG")
	return v, env
}

func CleanSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() // method on an explicit source: allowed
}

func CleanIgnored() time.Time {
	//csi-vet:ignore determinism -- exercising the line-level allowlist
	return time.Now()
}
