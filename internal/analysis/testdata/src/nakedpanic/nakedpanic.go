// Package nakedpanic exercises the nakedpanic rule: calls to the panic
// builtin fire; recover, errors, a shadowing local function named panic,
// and ignore-commented assertion panics stay silent.
package nakedpanic

import "errors"

func Violations(bad bool) {
	if bad {
		panic("bad input")
	}
	defer panic(errors.New("deferred"))
}

func Clean(bad bool) error {
	if bad {
		return errors.New("bad input")
	}
	return nil
}

// CleanRecover contains someone else's panic: recover is fine.
func CleanRecover(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("contained")
		}
	}()
	fn()
	return nil
}

// CleanShadow calls a local function that happens to be named panic.
func CleanShadow() {
	panic := func(string) {}
	panic("not the builtin")
}

// CleanIgnored is a deliberate unreachable-state assertion.
func CleanIgnored(x int) {
	if x < 0 {
		panic("negative after validation") //csi-vet:ignore nakedpanic -- unreachable-state assertion
	}
}
