// Package errcheck exercises the errcheck rule: bare call statements
// discarding an error fire; explicit discards, checked errors, and
// infallible or sticky-error writers stay silent (except Flush, where the
// sticky error surfaces).
package errcheck

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

func Violations(w io.Writer) {
	fallible()
	pair()
	fmt.Fprintf(w, "x")
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "x") // sticky error, surfaces at Flush: allowed
	bw.Flush()           // the surfacing point itself is never exempt
}

func Clean(w io.Writer) error {
	var sb strings.Builder
	var buf bytes.Buffer
	fmt.Fprintf(&sb, "a")
	buf.WriteString("b")
	sb.WriteString("c")
	_ = fallible() // visible decision: allowed
	if err := fallible(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, sb.String(), buf.String())
	return bw.Flush()
}
