// Package callgraph is the fixture for the call-graph unit tests: static
// calls, method values, interface dispatch, closures, and function values
// passed as arguments.
package callgraph

type Speaker interface {
	Speak() string
}

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{ name string }

func (c *Cat) Speak() string { return c.name }

// Announce calls through the interface: dispatch edges to both impls.
func Announce(s Speaker) string {
	return s.Speak()
}

// MethodValue takes a bound method as a value (ref edge to Dog.Speak).
func MethodValue(d Dog) func() string {
	return d.Speak
}

// Closure calls a helper from inside a nested literal; the edge is
// attributed to Closure itself.
func Closure() int {
	f := func() int {
		return helper()
	}
	return f()
}

func helper() int { return 1 }

// PassedAsArg hands a named function to a combinator (ref edge).
func PassedAsArg(xs []int) int {
	return apply(xs, double)
}

func apply(xs []int, f func(int) int) int {
	total := 0
	for _, x := range xs {
		total += f(x)
	}
	return total
}

func double(x int) int { return 2 * x }

// Spawner records a spawn site and a call edge to the spawned function.
func Spawner() {
	go worker()
}

func worker() {}
