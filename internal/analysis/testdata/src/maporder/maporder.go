// Package maporder exercises the maporder rule: map-range bodies that
// append to an outer slice or write output fire; the key-collection
// idiom, loop-local scratch, and commutative accumulation stay silent.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func Violations(m map[string]int, w io.Writer) []string {
	var out []string
	for k := range m {
		out = append(out, k+"!") // derived value: not the collection idiom
	}
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k)
	}
	out = append(out, sb.String())
	return out
}

func Clean(m map[string]int, w io.Writer) (int, error) {
	keys := make([]string, 0, len(m))
	for k := range m { // key-collection idiom: exempt
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s=%d\n", k, m[k]); err != nil {
			return 0, err
		}
	}
	total := 0
	for _, v := range m { // commutative int accumulation: not flagged
		total += v
	}
	for k, v := range m {
		scratch := make([]int, 0, 2) // loop-local scratch: order-safe
		scratch = append(scratch, v, len(k))
		total += scratch[0]
	}
	return total, nil
}
