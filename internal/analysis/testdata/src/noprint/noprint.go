// Package noprint exercises the noprint rule: fmt.Print*, the print
// builtins, and os.Stdout fire; writing to a caller-supplied io.Writer
// stays silent.
package noprint

import (
	"fmt"
	"io"
	"os"
)

func Violations(x int) {
	fmt.Println("x =", x)
	fmt.Printf("%d\n", x)
	fmt.Print(x)
	fmt.Fprintf(os.Stdout, "%d", x)
	println(x)
}

func Clean(w io.Writer, x int) error {
	_, err := fmt.Fprintf(w, "%d\n", x)
	return err
}
