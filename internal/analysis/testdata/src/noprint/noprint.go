// Package noprint exercises the noprint rule: fmt.Print*, the print
// builtins, os.Stdout, and the global stdlib logger fire; writing to a
// caller-supplied io.Writer or *log.Logger stays silent.
package noprint

import (
	"fmt"
	"io"
	"log"
	"os"
)

func Violations(x int) {
	fmt.Println("x =", x)
	fmt.Printf("%d\n", x)
	fmt.Print(x)
	fmt.Fprintf(os.Stdout, "%d", x)
	println(x)
	log.Printf("x = %d", x)
	log.Println(x)
	log.Fatal("bad x")
	log.Default().Print(x)
}

func Clean(w io.Writer, x int) error {
	_, err := fmt.Fprintf(w, "%d\n", x)
	return err
}

// CleanLogger writes through a logger the caller constructed: allowed.
func CleanLogger(lg *log.Logger, x int) {
	lg.Printf("x = %d", x)
}
