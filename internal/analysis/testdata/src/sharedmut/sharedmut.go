// Package sharedmut seeds violations and near-misses for the
// goroutine-capture mutation rule.
package sharedmut

import "sync"

// bad: captured scalar mutated from goroutines without a lock.
func racyCounter(n int) int {
	var wg sync.WaitGroup
	count := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count++ // captured scalar, no lock
		}()
	}
	wg.Wait()
	return count
}

// bad: captured slice grown (not slot-written) from goroutines.
func racyAppend(xs []int) []int {
	var wg sync.WaitGroup
	var out []int
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			out = append(out, x*2) // append races on len and backing array
		}(x)
	}
	wg.Wait()
	return out
}

// bad: captured map written without a lock (distinct keys still race).
func racyMap(keys []string) map[string]bool {
	var wg sync.WaitGroup
	seen := map[string]bool{}
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			seen[k] = true // concurrent map write
		}(k)
	}
	wg.Wait()
	return seen
}

// good: slot idiom — each goroutine owns one pre-sized element.
func slotted(xs []int) []int {
	var wg sync.WaitGroup
	out := make([]int, len(xs))
	for i, x := range xs {
		wg.Add(1)
		go func(i, x int) {
			defer wg.Done()
			out[i] = x * 2
		}(i, x)
	}
	wg.Wait()
	return out
}

// good: mutex idiom — captured state written under a lock.
func locked(keys []string) map[string]bool {
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[string]bool{}
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			mu.Lock()
			seen[k] = true
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	return seen
}

// good: goroutine-local state never escapes an iteration.
func local(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			acc := 0
			acc += x
			_ = acc
		}(x)
	}
	wg.Wait()
}

// good: results flow back over a channel, not shared memory.
func channelled(xs []int) int {
	ch := make(chan int, len(xs))
	for _, x := range xs {
		go func(x int) { ch <- x * 2 }(x)
	}
	total := 0
	for range xs {
		total += <-ch
	}
	return total
}
