// Package floatcmp exercises the floatcmp rule: float ==/!= fires; the
// NaN self-compare idiom, tolerance comparisons, and integer equality
// stay silent.
package floatcmp

import "math"

type point struct{ x float64 }

func Violations(a, b float64, c float32, p, q point) bool {
	if a == b {
		return true
	}
	if c != 0 {
		return false
	}
	if p.x == q.x {
		return true
	}
	return a != float64(c)
}

func Clean(a, b, eps float64, n, m int) bool {
	if math.Abs(a-b) < eps {
		return true
	}
	if n == m { // integers compare exactly
		return false
	}
	return a != a // portable IsNaN: exempt self-compare
}
