package analysis

import (
	"go/types"
	"path/filepath"
	"testing"
)

// loadCallgraph loads the callgraph fixture once and returns its module
// graph plus the package for object lookups.
func loadCallgraph(t *testing.T) (*Graph, *Package) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	mod := NewModule([]*Package{pkg})
	return mod.Graph(), pkg
}

// fixtureFunc resolves a top-level function by name.
func fixtureFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Pkg.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture has no function %q", name)
	}
	return fn
}

// fixtureMethod resolves a method by receiver type and name.
func fixtureMethod(t *testing.T, pkg *Package, recv, name string) *types.Func {
	t.Helper()
	tn, ok := pkg.Pkg.Scope().Lookup(recv).(*types.TypeName)
	if !ok {
		t.Fatalf("fixture has no type %q", recv)
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tn.Type()), true, pkg.Pkg, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("fixture type %s has no method %q", recv, name)
	}
	return fn
}

// edgeTo returns the first edge from caller to callee, if any.
func edgeTo(g *Graph, caller, callee *types.Func) (Edge, bool) {
	n := g.Node(caller)
	if n == nil {
		return Edge{}, false
	}
	for _, e := range n.Edges {
		if e.Callee == callee.Origin() {
			return e, true
		}
	}
	return Edge{}, false
}

func TestCallGraphStaticCalls(t *testing.T) {
	g, pkg := loadCallgraph(t)
	cases := []struct{ caller, callee string }{
		{"PassedAsArg", "apply"},
		{"Spawner", "worker"},
	}
	for _, c := range cases {
		e, ok := edgeTo(g, fixtureFunc(t, pkg, c.caller), fixtureFunc(t, pkg, c.callee))
		if !ok {
			t.Errorf("missing edge %s -> %s", c.caller, c.callee)
			continue
		}
		if e.Kind != EdgeCall {
			t.Errorf("edge %s -> %s has kind %v, want call", c.caller, c.callee, e.Kind)
		}
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g, pkg := loadCallgraph(t)
	announce := fixtureFunc(t, pkg, "Announce")
	for _, recv := range []string{"Dog", "Cat"} {
		e, ok := edgeTo(g, announce, fixtureMethod(t, pkg, recv, "Speak"))
		if !ok {
			t.Errorf("missing dispatch edge Announce -> %s.Speak", recv)
			continue
		}
		if e.Kind != EdgeDispatch {
			t.Errorf("edge Announce -> %s.Speak has kind %v, want dispatch", recv, e.Kind)
		}
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	g, pkg := loadCallgraph(t)
	e, ok := edgeTo(g, fixtureFunc(t, pkg, "MethodValue"), fixtureMethod(t, pkg, "Dog", "Speak"))
	if !ok {
		t.Fatal("missing edge MethodValue -> Dog.Speak for the bound method value")
	}
	if e.Kind != EdgeRef {
		t.Errorf("method value edge has kind %v, want ref", e.Kind)
	}
}

func TestCallGraphClosureAttribution(t *testing.T) {
	g, pkg := loadCallgraph(t)
	closure := fixtureFunc(t, pkg, "Closure")
	if _, ok := edgeTo(g, closure, fixtureFunc(t, pkg, "helper")); !ok {
		t.Error("call inside a nested FuncLit not attributed to the enclosing Closure")
	}
	if g.Node(closure) == nil || len(g.Node(closure).Spawns) != 0 {
		t.Error("Closure should have a node and no spawn sites")
	}
}

func TestCallGraphFuncValueArgument(t *testing.T) {
	g, pkg := loadCallgraph(t)
	e, ok := edgeTo(g, fixtureFunc(t, pkg, "PassedAsArg"), fixtureFunc(t, pkg, "double"))
	if !ok {
		t.Fatal("missing conservative ref edge PassedAsArg -> double")
	}
	if e.Kind != EdgeRef {
		t.Errorf("func-value argument edge has kind %v, want ref", e.Kind)
	}
}

func TestCallGraphSpawnSites(t *testing.T) {
	g, pkg := loadCallgraph(t)
	n := g.Node(fixtureFunc(t, pkg, "Spawner"))
	if n == nil {
		t.Fatal("Spawner has no node")
	}
	if len(n.Spawns) != 1 {
		t.Fatalf("Spawner records %d spawn sites, want 1", len(n.Spawns))
	}
}

func TestCallGraphPaths(t *testing.T) {
	g, pkg := loadCallgraph(t)
	roots := []*types.Func{fixtureFunc(t, pkg, "PassedAsArg")}
	r := g.ReachableFrom(roots)
	dbl := fixtureFunc(t, pkg, "double")
	if !r.Contains(dbl) {
		t.Fatal("double not reachable from PassedAsArg")
	}
	if got := FormatPath(r.Path(dbl)); got != "callgraph.PassedAsArg -> callgraph.double" {
		t.Errorf("path = %q", got)
	}
	if r.Contains(fixtureFunc(t, pkg, "helper")) {
		t.Error("helper should not be reachable from PassedAsArg")
	}
}
