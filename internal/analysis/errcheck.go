package analysis

import (
	"go/ast"
	"go/types"
)

// Errcheck flags expression statements that discard an error result in
// non-test library code. It is deliberately "lite": only bare call
// statements are flagged (an explicit `_ =` is a visible decision, and
// defer/go sites have their own idioms), and writers that are documented
// never to fail — strings.Builder and bytes.Buffer, including through
// fmt.Fprint* — are excluded.
var Errcheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag discarded error return values in non-test library code",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !returnsError(pass.Info, call) || isInfallibleWriter(pass.Info, call) {
			return true
		}
		pass.Reportf(call.Pos(), "error result discarded; handle it or assign to _ explicitly")
		return true
	})
}

// returnsError reports whether the call's last result is of type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	last := tv.Type
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		last = tuple.At(tuple.Len() - 1).Type()
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isInfallibleWriter recognizes calls whose error result is structurally
// always nil or deferred: methods on strings.Builder and bytes.Buffer (and
// fmt.Fprint* writing into one of those) never fail; bufio.Writer records
// a sticky error that surfaces at Flush — and a discarded Flush is still
// flagged, so the error cannot be lost.
func isInfallibleWriter(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() != nil {
		// Flush is where bufio's sticky error finally surfaces; it is
		// never exempt.
		return isBufferLike(sig.Recv().Type()) && fn.Name() != "Flush"
	}
	if fn.Pkg().Path() == "fmt" && len(call.Args) > 0 {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return isBufferLike(info.TypeOf(call.Args[0]))
		}
	}
	return false
}

func isBufferLike(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") ||
		(path == "bytes" && name == "Buffer") ||
		(path == "bufio" && name == "Writer")
}
