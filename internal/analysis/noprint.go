package analysis

import (
	"go/ast"
	"go/types"
)

// Noprint forbids writing to the process stdout from library packages:
// fmt.Print/Printf/Println, the print/println builtins, and any direct use
// of os.Stdout. Rendering belongs in cmd/ and examples/; library output
// that bypasses the caller cannot be captured, compared, or suppressed.
var Noprint = &Analyzer{
	Name: "noprint",
	Doc:  "forbid fmt.Print*/os.Stdout writes in internal/ library packages",
	Run:  runNoprint,
}

var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

func runNoprint(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					pass.Reportf(n.Pos(), "call to builtin %s writes to stderr; return data to the caller instead", b.Name())
				}
			}
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj := obj.(type) {
			case *types.Func:
				if obj.Pkg().Path() == "fmt" && printFuncs[obj.Name()] {
					pass.Reportf(n.Pos(), "call to fmt.%s writes to stdout; library output belongs in cmd/ or examples/", obj.Name())
				}
			case *types.Var:
				if obj.Pkg().Path() == "os" && obj.Name() == "Stdout" {
					pass.Reportf(n.Pos(), "use of os.Stdout in library code; accept an io.Writer instead")
				}
			}
		}
		return true
	})
}
