package analysis

import (
	"go/ast"
	"go/types"
)

// Noprint forbids writing to the process stdout from library packages:
// fmt.Print/Printf/Println, the print/println builtins, any direct use of
// os.Stdout, and the global stdlib logger (log.Print*, log.Fatal*,
// log.Panic*, log.Default). Rendering belongs in cmd/ and examples/;
// library output that bypasses the caller cannot be captured, compared, or
// suppressed — diagnostics belong in internal/obs events or returned
// errors. A *log.Logger the caller constructed and handed in is fine; only
// the process-global logger is flagged.
var Noprint = &Analyzer{
	Name: "noprint",
	Doc:  "forbid fmt.Print*/os.Stdout/global-log writes in internal/ library packages",
	Run:  runNoprint,
}

var printFuncs = map[string]bool{"Print": true, "Printf": true, "Println": true}

// logFuncs are the package-level log functions that write through (or hand
// out) the process-global logger.
var logFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
	"Default": true,
}

func runNoprint(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && (b.Name() == "print" || b.Name() == "println") {
					pass.Reportf(n.Pos(), "call to builtin %s writes to stderr; return data to the caller instead", b.Name())
				}
			}
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj := obj.(type) {
			case *types.Func:
				if obj.Pkg().Path() == "fmt" && printFuncs[obj.Name()] {
					pass.Reportf(n.Pos(), "call to fmt.%s writes to stdout; library output belongs in cmd/ or examples/", obj.Name())
				}
				// Only package-level log functions hit the global
				// logger; methods on a caller-supplied *log.Logger
				// (sig with receiver) are the caller's business.
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() == nil &&
					obj.Pkg().Path() == "log" && logFuncs[obj.Name()] {
					pass.Reportf(n.Pos(), "use of the global stdlib logger (log.%s); emit an obs event or return an error instead", obj.Name())
				}
			case *types.Var:
				if obj.Pkg().Path() == "os" && obj.Name() == "Stdout" {
					pass.Reportf(n.Pos(), "use of os.Stdout in library code; accept an io.Writer instead")
				}
			}
		}
		return true
	})
}
