// Package analysis is a self-contained static-analysis framework for the
// csi module, built only on the standard library's go/ast, go/parser,
// go/token, and go/types. It exists to machine-enforce the correctness
// invariants the CSI reproduction depends on: the discrete-event
// simulators must be bit-for-bit deterministic, the size-matching core
// must never compare floats with ==, library packages must not write to
// stdout, and experiment reports must not depend on map iteration order.
//
// The framework loads every package of the module through a shared
// type-checked load (LoadModule), then runs each registered Analyzer over
// each package in its configured scope. Rules come in two shapes: a
// per-package Run(*Pass) for local, syntactic invariants, and a
// module-wide RunModule(*ModulePass) for interprocedural rules that walk
// the shared call graph (Module.Graph) — the nondeterminism taint engine
// and the concurrency-safety rules. Adding a local rule is a ~50-line
// change: implement Run(*Pass), append the Analyzer to All, and drop a
// violating file plus a .golden file under testdata/.
//
// Findings can be suppressed three ways, from coarse to fine: a scope
// entry restricts a rule to a subtree, an allow entry in the config (or
// the module's .csi-vet.conf) exempts a file or directory, and a
// "//csi-vet:ignore <rule> -- <reason>" comment on the offending line (or
// the line above) exempts a single site. Every suppression is audited:
// Run tracks which directives actually matched a finding and reports the
// stale ones, so the allowlist stays an inventory of justified exceptions
// instead of a growing blind spot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"runtime"
	"sort"
	"sync"
)

// An Analyzer is one named rule. Exactly one of Run and RunModule is set:
// Run inspects a single type-checked package, RunModule inspects the whole
// module at once (interprocedural rules).
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, config directives,
	// and ignore comments (e.g. "determinism").
	Name string
	// Doc is a one-line description printed by csi-vet -list.
	Doc string
	// Run inspects pass.Files and calls pass.Reportf for each finding.
	Run func(*Pass)
	// RunModule inspects every package of the module through the shared
	// Module (call graph included) and calls pass.Reportf per finding.
	RunModule func(*ModulePass)
}

// A Diagnostic is one finding, positioned at a token.Position whose
// Filename is relative to the module root.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// A Module couples the loaded packages with everything interprocedural
// rules share: the lazily built call graph and the module-wide filename
// map. All packages of a Module come from one loader and share one FileSet.
type Module struct {
	Pkgs []*Package
	Fset *token.FileSet

	relByAbs  map[string]string
	graphOnce sync.Once
	graph     *Graph
}

// NewModule wraps already-loaded packages. The call graph is built on
// first use of Graph.
func NewModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, relByAbs: map[string]string{}}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			m.relByAbs[pkg.Fset.Position(f.Pos()).Filename] = pkg.Filenames[i]
		}
	}
	return m
}

// Graph returns the module-wide call graph, building it on first call.
func (m *Module) Graph() *Graph {
	m.graphOnce.Do(func() { m.graph = buildGraph(m.Pkgs) })
	return m.graph
}

// rel maps an absolute parsed filename to the module-relative name
// recorded at load time.
func (m *Module) rel(abs string) string {
	if r, ok := m.relByAbs[abs]; ok {
		return r
	}
	return abs
}

// position resolves pos into a module-relative token.Position.
func (m *Module) position(pos token.Pos) token.Position {
	p := m.Fset.Position(pos)
	p.Filename = m.rel(p.Filename)
	return p
}

// A Pass couples one per-package Analyzer run to one Package. It exposes
// the package syntax and type information and collects diagnostics.
type Pass struct {
	*Package
	Rule  string
	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	position.Filename = p.relFilename(position.Filename)
	p.diags = append(p.diags, Diagnostic{Pos: position, Rule: p.Rule, Msg: fmt.Sprintf(format, args...)})
}

// relFilename maps an absolute parsed filename back to the module-relative
// name recorded at load time.
func (p *Pass) relFilename(abs string) string {
	for i, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename == abs {
			return p.Filenames[i]
		}
	}
	return abs
}

// A ModulePass couples one module-wide Analyzer run to the whole Module.
type ModulePass struct {
	Mod   *Module
	Rule  string
	diags []Diagnostic
}

// Reportf records a finding at pos, which may sit in any package of the
// module.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:  p.Mod.position(pos),
		Rule: p.Rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer applies one analyzer to one package, honoring ignore
// comments but not the config (scope and allowlists are the driver's
// concern; see Run). Module-wide analyzers see a single-package module.
// Exposed for golden-file self-tests.
func RunAnalyzer(az *Analyzer, pkg *Package) []Diagnostic {
	mod := NewModule([]*Package{pkg})
	var diags []Diagnostic
	if az.RunModule != nil {
		pass := &ModulePass{Mod: mod, Rule: az.Name}
		az.RunModule(pass)
		diags = pass.diags
	} else {
		pass := &Pass{Package: pkg, Rule: az.Name}
		az.Run(pass)
		diags = pass.diags
	}
	ix := buildIgnoreIndex(mod.Pkgs)
	var out []Diagnostic
	for _, d := range diags {
		if !ix.suppress(d) {
			out = append(out, d)
		}
	}
	return sortDiagnostics(out)
}

// A Result is one full analysis run: the surviving findings, the stale
// suppressions (directives and conf allowlist entries that no longer
// suppress anything), and the complete suppression inventory.
type Result struct {
	// Diags are the findings that survived scopes, allowlists, and ignore
	// comments, sorted by file, line, column, rule.
	Diags []Diagnostic
	// Stale reports every suppression that did nothing this run (rule
	// "suppression"), provided its rule was among those run.
	Stale []Diagnostic
	// Suppressions is the audited inventory: every ignore directive and
	// every .csi-vet.conf allow entry, with whether it was exercised.
	Suppressions []SuppressionRecord
}

// A SuppressionRecord is one entry of the suppression inventory.
type SuppressionRecord struct {
	// Kind is "ignore" (//csi-vet:ignore comment) or "allow"
	// (.csi-vet.conf allow directive).
	Kind string `json:"kind"`
	// File and Line locate the directive (the conf file for allows).
	File string `json:"file"`
	Line int    `json:"line"`
	// Rule is the rule the entry suppresses ("all" wildcards every rule).
	Rule string `json:"rule"`
	// Path is the exempted file or subtree (allow entries only).
	Path string `json:"path,omitempty"`
	// Reason is the justification after "--" (ignore comments only).
	Reason string `json:"reason,omitempty"`
	// Active reports whether the entry suppressed at least one finding.
	Active bool `json:"active"`
}

// Run applies every analyzer to the module within its configured scope,
// drops allowlisted and ignore-commented findings, and audits the
// suppressions. Per-package analyzers fan out over up to workers
// goroutines (<= 0 means GOMAXPROCS); the result is deterministic
// regardless of schedule. Module-wide analyzers run once each, against a
// call graph built serially beforehand.
func Run(mod *Module, azs []*Analyzer, cfg *Config, workers int) *Result {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The graph build mutates lazy go/types state (method sets, interface
	// satisfaction); do it before the concurrent fan-out so analyzer
	// goroutines only ever read.
	for _, az := range azs {
		if az.RunModule != nil {
			mod.Graph()
			break
		}
	}

	// One work unit per (per-package analyzer, in-scope package) plus one
	// per module analyzer. Raw diagnostics land in per-unit slots, so the
	// merge order is schedule-independent.
	type unit struct {
		az  *Analyzer
		pkg *Package // nil for module analyzers
	}
	var units []unit
	for _, az := range azs {
		if az.RunModule != nil {
			units = append(units, unit{az: az})
			continue
		}
		for _, pkg := range mod.Pkgs {
			if cfg.inScope(az.Name, pkg.RelPath) {
				units = append(units, unit{az: az, pkg: pkg})
			}
		}
	}
	raw := make([][]Diagnostic, len(units))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, u := range units {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u unit) {
			defer func() { <-sem; wg.Done() }()
			if u.pkg != nil {
				pass := &Pass{Package: u.pkg, Rule: u.az.Name}
				u.az.Run(pass)
				raw[i] = pass.diags
				return
			}
			pass := &ModulePass{Mod: mod, Rule: u.az.Name}
			u.az.RunModule(pass)
			raw[i] = pass.diags
		}(i, u)
	}
	wg.Wait()

	// Serial filter phase: ignore comments first (matching the historical
	// per-package order), then scope (module rules report anywhere, so
	// their diagnostics are scope-checked by position), then allowlists.
	// Both suppression layers record what they matched for the audit.
	ix := buildIgnoreIndex(mod.Pkgs)
	res := &Result{}
	for i, u := range units {
		for _, d := range raw[i] {
			if ix.suppress(d) {
				continue
			}
			if u.pkg == nil && !cfg.inScope(d.Rule, path.Dir(d.Pos.Filename)) {
				continue
			}
			if cfg.allowed(d.Rule, d.Pos.Filename) {
				continue
			}
			res.Diags = append(res.Diags, d)
		}
	}
	res.Diags = sortDiagnostics(res.Diags)

	ran := map[string]bool{}
	for _, az := range azs {
		ran[az.Name] = true
	}
	loadedDirs := map[string]bool{}
	for _, pkg := range mod.Pkgs {
		loadedDirs[pkg.RelPath] = true
	}
	res.Stale = staleSuppressions(ix, cfg, ran, loadedDirs)
	res.Suppressions = suppressionInventory(ix, cfg)
	return res
}

// RunAnalyzers is the historical single-threaded entry point: findings
// only, no suppression audit.
func RunAnalyzers(pkgs []*Package, azs []*Analyzer, cfg *Config) []Diagnostic {
	return Run(NewModule(pkgs), azs, cfg, 1).Diags
}

func sortDiagnostics(out []Diagnostic) []Diagnostic {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	// Module rules can rediscover the same (pos, rule, msg) through
	// different entry points; keep the first.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}

// inspect walks every file of the pass in source order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
