// Package analysis is a self-contained static-analysis framework for the
// csi module, built only on the standard library's go/ast, go/parser,
// go/token, and go/types. It exists to machine-enforce the correctness
// invariants the CSI reproduction depends on: the discrete-event
// simulators must be bit-for-bit deterministic, the size-matching core
// must never compare floats with ==, library packages must not write to
// stdout, and experiment reports must not depend on map iteration order.
//
// The framework loads every package of the module through a shared
// type-checked load (LoadModule), then runs each registered Analyzer over
// each package in its configured scope (RunAnalyzers). Adding a rule is a
// ~50-line change: implement Run(*Pass), append the Analyzer to All, and
// drop a violating file plus a .golden file under testdata/.
//
// Findings can be suppressed three ways, from coarse to fine: a scope
// entry restricts a rule to a subtree, an allow entry in the config (or
// the module's .csi-vet.conf) exempts a file or directory, and a
// "//csi-vet:ignore <rule> -- <reason>" comment on the offending line (or
// the line above) exempts a single site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named rule. Run inspects a type-checked package and
// reports findings through the Pass.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, config directives,
	// and ignore comments (e.g. "determinism").
	Name string
	// Doc is a one-line description printed by csi-vet -list.
	Doc string
	// Run inspects pass.Files and calls pass.Reportf for each finding.
	Run func(*Pass)
}

// A Diagnostic is one finding, positioned at a token.Position whose
// Filename is relative to the module root.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// A Pass couples one Analyzer run to one Package. It exposes the package
// syntax and type information and collects diagnostics.
type Pass struct {
	*Package
	Rule  string
	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	position.Filename = p.relFilename(position.Filename)
	p.diags = append(p.diags, Diagnostic{Pos: position, Rule: p.Rule, Msg: fmt.Sprintf(format, args...)})
}

// relFilename maps an absolute parsed filename back to the module-relative
// name recorded at load time.
func (p *Pass) relFilename(abs string) string {
	for i, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename == abs {
			return p.Filenames[i]
		}
	}
	return abs
}

// RunAnalyzer applies one analyzer to one package, honoring ignore
// comments but not the config (scope and allowlists are the driver's
// concern; see RunAnalyzers). Exposed for golden-file self-tests.
func RunAnalyzer(az *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{Package: pkg, Rule: az.Name}
	az.Run(pass)
	return suppressIgnored(pkg, pass.diags)
}

// RunAnalyzers applies every analyzer to every package within its
// configured scope, drops allowlisted and ignore-commented findings, and
// returns the remainder sorted by file, line, column, and rule.
func RunAnalyzers(pkgs []*Package, azs []*Analyzer, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, az := range azs {
			if !cfg.inScope(az.Name, pkg.RelPath) {
				continue
			}
			for _, d := range RunAnalyzer(az, pkg) {
				if cfg.allowed(az.Name, d.Pos.Filename) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// IgnorePrefix starts a line-level suppression comment:
//
//	//csi-vet:ignore <rule>[,<rule>...] [-- reason]
//
// The comment suppresses matching findings on its own line and on the
// line directly below it (so it works both as a trailing comment and as a
// directive above the offending statement).
const IgnorePrefix = "csi-vet:ignore"

func suppressIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignored["file:line"] = set of rules suppressed at that line.
	ignored := map[string]map[string]bool{}
	mark := func(file string, line int, rules []string) {
		for _, off := range []int{0, 1} {
			key := fmt.Sprintf("%s:%d", file, line+off)
			if ignored[key] == nil {
				ignored[key] = map[string]bool{}
			}
			for _, r := range rules {
				ignored[key][strings.TrimSpace(r)] = true
			}
		}
	}
	for i, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), " ")
				rest, ok := strings.CutPrefix(text, IgnorePrefix)
				if !ok {
					continue
				}
				if reason := strings.SplitN(rest, "--", 2); len(reason) > 0 {
					rest = reason[0]
				}
				rules := strings.Split(strings.TrimSpace(rest), ",")
				mark(pkg.Filenames[i], pkg.Fset.Position(c.Pos()).Line, rules)
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if ignored[key][d.Rule] || ignored[key]["all"] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// inspect walks every file of the pass in source order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
