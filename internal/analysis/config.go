package analysis

import (
	"fmt"
	"os"
	"strings"
)

// Config scopes rules to package subtrees and exempts files from rules.
//
// Scope maps a rule name to the package directories (module-relative) it
// runs in: an entry ending in "/" is a recursive prefix, "." is the module
// root package, anything else is an exact directory. A rule with no scope
// entries runs everywhere.
//
// Allow maps a rule name to file patterns that are exempt: an entry ending
// in "/" exempts a whole subtree, anything else exempts that exact file
// (module-relative). The special rule name "all" applies to every rule.
type Config struct {
	Scope map[string][]string
	Allow map[string][]string

	// confAllows records the provenance of allow entries parsed from a
	// conf file (file + line), with usage tracking for the
	// stale-suppression audit. Built-in policy entries are not audited.
	confAllows []*confAllow
}

// confAllow is one "allow <rule> <path>" directive from a conf file.
type confAllow struct {
	Rule, Path string
	File       string
	Line       int
	used       bool
}

// DefaultConfig returns the repository policy: every rule is restricted to
// library code (internal/... and the root package), with per-rule scopes
// narrowed further where the invariant only applies to specific packages.
// cmd/ and examples/ are out of scope by construction — wall-clock reads
// and stdout writes belong there.
func DefaultConfig() *Config {
	library := []string{".", "internal/"}
	return &Config{
		Scope: map[string][]string{
			"determinism": library,
			"floatcmp":    {"internal/core", "internal/stats", "internal/qoe", "internal/ivl"},
			"noprint":     {"internal/"},
			"errcheck":    library,
			"maporder":    library,
			"nakedpanic":  {"internal/"},
			"taint":       library,
			"sharedmut":   library,
			"spawnbound":  library,
		},
		Allow: map[string][]string{},
	}
}

// inScope reports whether rule runs in the package directory relDir.
func (c *Config) inScope(rule, relDir string) bool {
	scopes, ok := c.Scope[rule]
	if !ok || len(scopes) == 0 {
		return true
	}
	for _, s := range scopes {
		if matchPath(s, relDir) {
			return true
		}
	}
	return false
}

// allowed reports whether file relFile is exempt from rule, marking any
// matching conf-file entries used for the stale-suppression audit. Not
// safe for concurrent use; the engine filters serially.
func (c *Config) allowed(rule, relFile string) bool {
	hit := false
	for _, r := range []string{rule, "all"} {
		for _, a := range c.Allow[r] {
			if matchPath(a, relFile) {
				hit = true
			}
		}
	}
	if hit {
		for _, ca := range c.confAllows {
			if (ca.Rule == rule || ca.Rule == "all") && matchPath(ca.Path, relFile) {
				ca.used = true
			}
		}
	}
	return hit
}

// matchPath matches pattern against a slash-separated module-relative
// path: a trailing "/" makes the pattern a recursive prefix, otherwise the
// match is exact (with "." naming the module root).
func matchPath(pattern, path string) bool {
	if strings.HasSuffix(pattern, "/") {
		prefix := strings.TrimSuffix(pattern, "/")
		return path == prefix || strings.HasPrefix(path, pattern)
	}
	return path == pattern
}

// ConfigFile is the per-module allowlist file csi-vet reads from the
// module root when present.
const ConfigFile = ".csi-vet.conf"

// ParseConfig merges directives from conf-file text into cfg. The format
// is line-oriented; "#" starts a comment. Directives:
//
//	allow <rule> <path>   exempt a file (or, with trailing "/", a subtree)
//	scope <rule> <path>   append a scope entry for the rule
//
// Unknown directives are errors, so typos fail loudly rather than
// silently weakening the policy.
func ParseConfig(cfg *Config, text, filename string) error {
	if cfg.Allow == nil {
		cfg.Allow = map[string][]string{}
	}
	if cfg.Scope == nil {
		cfg.Scope = map[string][]string{}
	}
	for i, line := range strings.Split(text, "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return fmt.Errorf("%s:%d: want \"<allow|scope> <rule> <path>\", got %q", filename, i+1, strings.TrimSpace(line))
		}
		directive, rule, path := fields[0], fields[1], fields[2]
		switch directive {
		case "allow":
			cfg.Allow[rule] = append(cfg.Allow[rule], path)
			cfg.confAllows = append(cfg.confAllows, &confAllow{
				Rule: rule, Path: path, File: filename, Line: i + 1,
			})
		case "scope":
			cfg.Scope[rule] = append(cfg.Scope[rule], path)
		default:
			return fmt.Errorf("%s:%d: unknown directive %q (want allow or scope)", filename, i+1, directive)
		}
	}
	return nil
}

// LoadConfig returns DefaultConfig merged with the module's .csi-vet.conf,
// if one exists at modDir.
func LoadConfig(modDir string) (*Config, error) {
	cfg := DefaultConfig()
	path := modDir + string(os.PathSeparator) + ConfigFile
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cfg, nil
	}
	if err != nil {
		return nil, err
	}
	if err := ParseConfig(cfg, string(data), ConfigFile); err != nil {
		return nil, err
	}
	return cfg, nil
}
