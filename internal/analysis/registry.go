package analysis

// All is the registry of every shipped analyzer, in the order csi-vet
// lists and runs them. Adding a rule means appending here, implementing
// its Run, and adding a testdata/src/<name> tree with a .golden file.
var All = []*Analyzer{
	Determinism,
	Floatcmp,
	Noprint,
	Errcheck,
	Maporder,
	Nakedpanic,
	Taint,
	Sharedmut,
	Spawnbound,
}

// ByName returns the registered analyzers with the given names; unknown
// names are returned in the second result.
func ByName(names []string) (found []*Analyzer, unknown []string) {
	for _, name := range names {
		ok := false
		for _, az := range All {
			if az.Name == name {
				found = append(found, az)
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, name)
		}
	}
	return found, unknown
}
