package analysis

// Spawnbound flags goroutine spawns reachable from the inference entry
// points. The inference hot path has exactly one sanctioned concurrency
// structure: the bounded mux-search worker pool (semaphore-capped,
// guard-polled, committing in submission order). Any other `go` statement
// on a path from core.Infer (or the root csi facade) bypasses the worker
// budget and the guard's cancellation discipline — under a
// million-flow monitor that is an unbounded goroutine leak per flow.
//
// The rule walks the shared call graph from the exported functions of
// internal/core and the root package and reports every reachable spawn
// site with its call path. Sanctioned pool implementations carry a
// "//csi-vet:ignore spawnbound -- <why bounded>" comment, which makes the
// suppression inventory a complete audit of inference-path concurrency.
var Spawnbound = &Analyzer{
	Name:      "spawnbound",
	Doc:       "flag goroutine spawns reachable from core inference entry points outside the bounded worker pool",
	RunModule: runSpawnbound,
}

// spawnRootPaths are the module-relative package dirs whose exported
// functions root the reachability search.
var spawnRootPaths = []string{".", "internal/core"}

func runSpawnbound(pass *ModulePass) {
	mod := pass.Mod
	g := mod.Graph()
	roots := exportedFuncs(mod, spawnRootPaths)
	r := g.ReachableFrom(roots)

	for _, n := range g.Nodes() {
		if len(n.Spawns) == 0 || !r.Contains(n.Fn) {
			continue
		}
		path := r.Path(n.Fn)
		for _, pos := range n.Spawns {
			pass.Reportf(pos, "goroutine spawned on an inference path (reachable from exported %s: %s); route the work through the bounded pool or annotate with //csi-vet:ignore spawnbound -- <why bounded>",
				FuncName(path[0].Fn), FormatPath(path))
		}
	}
}
