package analysis

import (
	"go/ast"
	"go/types"
)

// Nakedpanic forbids calls to the panic builtin in library packages. A
// panic that escapes the package aborts the whole process — in a
// supervised sweep that means one poisoned run kills every sibling. The
// inference entry points contain panics via guard.Capture, but code should
// not rely on that: return an error instead. Sites that genuinely want a
// panic (unreachable-state assertions, re-raises toward a containment
// frame) carry a "//csi-vet:ignore nakedpanic -- <reason>" comment, which
// doubles as an inventory of every deliberate panic in the library.
var Nakedpanic = &Analyzer{
	Name: "nakedpanic",
	Doc:  "forbid the panic builtin in internal/ library packages; return errors instead",
	Run:  runNakedpanic,
}

func runNakedpanic(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			pass.Reportf(call.Pos(), "call to panic aborts the process; return an error (guard.Capture only contains the inference entry points)")
		}
		return true
	})
}
