package analysis

import (
	"strings"
	"testing"
)

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"internal/", "internal/core", true},
		{"internal/", "internal", true},
		{"internal/", "internals/core", false},
		{"internal/core", "internal/core", true},
		{"internal/core", "internal/core/sub", false},
		{".", ".", true},
		{".", "internal", false},
		{"internal/experiments/timing.go", "internal/experiments/timing.go", true},
		{"internal/experiments/timing.go", "internal/experiments/ablations.go", false},
		{"cmd/", "cmd/csi-vet/main.go", true},
	}
	for _, c := range cases {
		if got := matchPath(c.pattern, c.path); got != c.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

func TestDefaultConfigScopes(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		rule, dir string
		want      bool
	}{
		{"determinism", "internal/tcpsim", true},
		{"determinism", "internal/obs", true}, // observability must stay virtual-time
		{"determinism", ".", true},
		{"determinism", "cmd/csi-run", false},
		{"determinism", "examples/quickstart", false},
		{"floatcmp", "internal/core", true},
		{"floatcmp", "internal/media", false},
		{"noprint", "internal/experiments", true},
		{"noprint", "internal/obs", true},
		{"noprint", ".", false},
		{"errcheck", "internal/media", true},
		{"maporder", "internal/pcap", true},
	}
	for _, c := range cases {
		if got := cfg.inScope(c.rule, c.dir); got != c.want {
			t.Errorf("inScope(%q, %q) = %v, want %v", c.rule, c.dir, got, c.want)
		}
	}
}

func TestParseConfig(t *testing.T) {
	cfg := DefaultConfig()
	text := `
# comment
allow determinism internal/experiments/timing.go
allow all internal/generated/   # trailing comment
scope floatcmp internal/shaping
`
	if err := ParseConfig(cfg, text, "test.conf"); err != nil {
		t.Fatal(err)
	}
	if !cfg.allowed("determinism", "internal/experiments/timing.go") {
		t.Error("allow directive not applied")
	}
	if cfg.allowed("determinism", "internal/experiments/ablations.go") {
		t.Error("allow leaked to a different file")
	}
	if !cfg.allowed("maporder", "internal/generated/x.go") {
		t.Error("allow all should apply to every rule")
	}
	if !cfg.inScope("floatcmp", "internal/shaping") {
		t.Error("scope directive not applied")
	}

	for _, bad := range []string{"allow onlytwo", "forbid x y"} {
		if err := ParseConfig(DefaultConfig(), bad, "bad.conf"); err == nil {
			t.Errorf("ParseConfig(%q) should fail", bad)
		} else if !strings.Contains(err.Error(), "bad.conf:1") {
			t.Errorf("error should carry file:line, got %v", err)
		}
	}
}
