package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Taint is the interprocedural nondeterminism verifier. Where the
// determinism rule flags banned calls one site at a time, taint walks the
// module call graph and reports every *source* of nondeterminism that an
// exported inference or reporting entry point can reach — as a full
// entry-to-source call path, so a helper wrapping time.Now three frames
// below core.Infer is just as visible as a direct call.
//
// Sources:
//   - wall clock reads (time.Now/Since/Until)
//   - process environment reads (os.Getenv/LookupEnv/Environ)
//   - the implicitly seeded global math/rand(/v2) source
//   - filesystem enumeration order (os.ReadDir, filepath.Walk/WalkDir/
//     Glob, (*os.File).Readdir*)
//   - order-sensitive iteration over Go's randomized maps
//   - goroutine-completion order: select statements with more than one
//     communication clause (which case fires depends on scheduling)
//
// Sanitizers (recognized structurally, so they need no annotations):
//   - explicitly seeded *rand.Rand sources (methods are never sources;
//     only the global top-level functions are)
//   - the collect-keys-then-sort idiom, and more generally a map-range
//     append whose slice is sorted later in the same function
//   - single-clause (blocking) channel receives — the submission-order
//     commit idiom of the parallel mux search
//   - virtual time (obs clocks and guard step budgets never read the wall
//     clock, so they simply contain no sources)
//
// Sinks are the exported functions and methods of the packages everything
// reproducible rests on: the root csi package, internal/core,
// internal/experiments, and internal/obs (whose exporters write the
// goldens). A surviving path means a same-seed rerun can produce
// different bytes; fix the source or annotate it with
// "//csi-vet:ignore taint -- <why this is deterministic or deliberate>".
var Taint = &Analyzer{
	Name:      "taint",
	Doc:       "trace nondeterminism sources (clock/env/rand/map/FS/select order) reaching exported inference APIs through the call graph",
	RunModule: runTaint,
}

// taintSinkPaths are the module-relative package dirs whose exported
// functions are treated as determinism sinks.
var taintSinkPaths = []string{".", "internal/core", "internal/experiments", "internal/obs", "internal/stream"}

// A taintSource is one nondeterminism source site inside a module function.
type taintSource struct {
	node   *Node
	pos    token.Pos
	kind   string // "wall clock" etc., for the message
	detail string // the offending call / construct
}

func runTaint(pass *ModulePass) {
	mod := pass.Mod
	g := mod.Graph()

	var sources []taintSource
	for _, n := range g.Nodes() {
		sources = append(sources, scanSources(n)...)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].pos < sources[j].pos })

	roots := exportedFuncs(mod, taintSinkPaths)
	r := g.ReachableFrom(roots)

	for _, src := range sources {
		if !r.Contains(src.node.Fn) {
			continue
		}
		path := r.Path(src.node.Fn)
		pass.Reportf(src.pos, "%s (%s) reachable from exported %s: %s; derive the value from inputs/virtual time or annotate with //csi-vet:ignore taint -- <reason>",
			src.kind, src.detail, FuncName(path[0].Fn), FormatPath(path))
	}
}

// exportedFuncs returns the exported functions and methods of every
// module package whose RelPath matches one of paths, in deterministic
// order (package, then declaration position).
func exportedFuncs(mod *Module, paths []string) []*types.Func {
	match := func(rel string) bool {
		for _, p := range paths {
			if matchPath(p, rel) {
				return true
			}
		}
		return false
	}
	var out []*types.Func
	for _, n := range mod.Graph().Nodes() {
		if !match(n.Pkg.RelPath) {
			continue
		}
		if n.Fn.Exported() {
			out = append(out, n.Fn)
		}
	}
	return out
}

// fsOrderFuncs are package-level functions whose results reflect ambient
// filesystem state (content and, for the walkers, order).
var fsOrderFuncs = map[string]map[string]string{
	"os":            {"ReadDir": "enumerates the live filesystem"},
	"path/filepath": {"Walk": "enumerates the live filesystem", "WalkDir": "enumerates the live filesystem", "Glob": "enumerates the live filesystem"},
}

// fsOrderMethods are methods with the same property (receiver type name is
// matched loosely on *os.File).
var fsOrderMethods = map[string]bool{"Readdir": true, "Readdirnames": true, "ReadDir": true}

// scanSources finds every nondeterminism source in n's body, including
// inside nested function literals (attributed to n).
func scanSources(n *Node) []taintSource {
	info := n.Pkg.Info
	var out []taintSource
	add := func(pos token.Pos, kind, detail string) {
		out = append(out, taintSource{node: n, pos: pos, kind: kind, detail: detail})
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SelectorExpr:
			fn, ok := info.Uses[node.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			pkgPath, name := fn.Pkg().Path(), fn.Name()
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if fsOrderMethods[name] && isOSFile(sig.Recv().Type()) {
					add(node.Sel.Pos(), "filesystem enumeration", pkgPath+".File."+name)
				}
				return true // methods on seeded sources etc. are sanctioned
			}
			if _, banned := forbiddenFuncs[pkgPath][name]; banned {
				kind := "wall clock read"
				if pkgPath == "os" {
					kind = "environment read"
				}
				add(node.Sel.Pos(), kind, pkgPath+"."+name)
				return true
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] {
				add(node.Sel.Pos(), "global random source", pkgPath+"."+name)
				return true
			}
			if _, ok := fsOrderFuncs[pkgPath][name]; ok {
				add(node.Sel.Pos(), "filesystem enumeration", pkgPath+"."+name)
			}
		case *ast.RangeStmt:
			if src := mapOrderSource(info, n.Decl.Body, node); src != nil {
				add(node.For, "map iteration order", src.what)
			}
		case *ast.SelectStmt:
			if len(node.Body.List) > 1 {
				add(node.Select, "goroutine completion order", fmt.Sprintf("select with %d cases", len(node.Body.List)))
			}
		}
		return true
	})
	return out
}

func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// mapOrderSource reports rng as a map-order source unless a sanitizer
// applies: the key-collection idiom, or the appended slice being sorted
// later in the same function body.
func mapOrderSource(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt) *orderSite {
	if t := info.TypeOf(rng.X); t == nil {
		return nil
	} else if _, isMap := t.Underlying().(*types.Map); !isMap {
		return nil
	}
	if isKeyCollection(rng) {
		return nil
	}
	site := orderSensitiveStmt(info, rng)
	if site == nil {
		return nil
	}
	if site.target != nil && sortedAfter(info, body, rng.End(), site.target) {
		return nil
	}
	return site
}

// sortFuncs are the stdlib sorters the sort-after-collect sanitizer
// recognizes (first argument is the slice being sorted).
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether body contains, after pos, a recognized sort
// call whose first argument is rooted at target.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, target types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !sortFuncs[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil && info.Uses[id] == target {
			found = true
		}
		return !found
	})
	return found
}
