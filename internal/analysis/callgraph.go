package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the module-wide static call graph the interprocedural
// rules (taint, spawnbound) share through Module.Graph. Nodes are the
// canonical *types.Func objects of every function and method declared in
// the module; function literals have no node of their own — their bodies
// are attributed to the enclosing declared function, which makes closures
// flow naturally (a closure handed to a worker pool is charged to the
// function that wrote it, wherever it is eventually invoked from).
//
// Edges are deliberately conservative in the CSI direction (a missing
// edge can hide nondeterminism; a spurious edge only costs an audit):
//
//   - EdgeCall:     a static call to a declared function or method.
//   - EdgeDispatch: a call through an interface method, expanded to every
//     module type whose method set satisfies the interface (the dispatch
//     fallback — we cannot know the dynamic type, so we assume all).
//   - EdgeRef:      a reference to a function or method value outside call
//     position (passed as an argument, assigned, launched via go/defer).
//     Whoever receives the value may call it, so the referencing function
//     is treated as a potential caller.
//
// Go statements additionally record spawn sites on the enclosing node for
// the goroutine-budget rule.

// EdgeKind classifies a call edge.
type EdgeKind int

const (
	EdgeCall EdgeKind = iota
	EdgeDispatch
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDispatch:
		return "dispatch"
	case EdgeRef:
		return "ref"
	}
	return "?"
}

// An Edge is one caller->callee relation, positioned at the call or
// reference site.
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
}

// A Node is one declared function or method of the module.
type Node struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Edges lists the node's outgoing edges in source order, deduplicated
	// by (callee, kind).
	Edges []Edge
	// Spawns are the positions of go statements in the body (including
	// inside nested function literals).
	Spawns []token.Pos
}

// A Graph is the module-wide call graph.
type Graph struct {
	// nodes maps the canonical function object to its node.
	nodes map[*types.Func]*Node
	// order lists nodes deterministically: by package import path, then
	// declaration position.
	order []*Node
}

// Node returns the node for fn (resolved through Origin for generic
// instantiations), or nil if fn is not declared in the module.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every node in deterministic order.
func (g *Graph) Nodes() []*Node { return g.order }

// FuncName renders fn for diagnostics: pkgname.Func, or
// pkgname.(*Recv).Method for methods.
func FuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		if named, ok := rt.(*types.Named); ok {
			name = "(" + ptr + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func buildGraph(pkgs []*Package) *Graph {
	g := &Graph{nodes: map[*types.Func]*Node{}}

	// Pass 1: a node per declared function/method.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Pkg: pkg, Decl: fd}
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		if a.Pkg.ImportPath != b.Pkg.ImportPath {
			return a.Pkg.ImportPath < b.Pkg.ImportPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})

	ifaces := newIfaceIndex(pkgs)

	// Pass 2: edges and spawn sites.
	for _, n := range g.order {
		addEdges(g, n, ifaces)
	}
	return g
}

func addEdges(g *Graph, n *Node, ifaces *ifaceIndex) {
	info := n.Pkg.Info
	seen := map[Edge]bool{} // keyed without Pos for dedup
	add := func(callee *types.Func, pos token.Pos, kind EdgeKind) {
		if callee == nil {
			return
		}
		callee = callee.Origin()
		if _, inModule := g.nodes[callee]; !inModule {
			return
		}
		key := Edge{Callee: callee, Kind: kind}
		if seen[key] {
			return
		}
		seen[key] = true
		n.Edges = append(n.Edges, Edge{Callee: callee, Pos: pos, Kind: kind})
	}

	// Identifiers in call position get call edges; all other references to
	// function objects get ref edges. Collect call positions first, and
	// remember selector .Sel identifiers so the SelectorExpr case handles
	// them exactly once.
	callFun := map[ast.Expr]bool{}
	selSel := map[*ast.Ident]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			callFun[ast.Unparen(node.Fun)] = true
		case *ast.SelectorExpr:
			selSel[node.Sel] = true
		}
		return true
	})

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.GoStmt:
			n.Spawns = append(n.Spawns, node.Pos())
		case *ast.Ident:
			if selSel[node] {
				return true
			}
			fn, ok := info.Uses[node].(*types.Func)
			if !ok {
				return true
			}
			if callFun[node] {
				add(fn, node.Pos(), EdgeCall)
			} else {
				add(fn, node.Pos(), EdgeRef)
			}
		case *ast.SelectorExpr:
			fn, ok := info.Uses[node.Sel].(*types.Func)
			if !ok {
				return true
			}
			kind := EdgeRef
			if callFun[node] {
				kind = EdgeCall
			}
			if recvIface := ifaceOf(fn); recvIface != nil {
				// A call (or method value) through an interface: fall back
				// to every module implementation.
				for _, impl := range ifaces.implementations(recvIface, fn.Name()) {
					add(impl, node.Sel.Pos(), EdgeDispatch)
				}
				return true
			}
			add(fn, node.Sel.Pos(), kind)
		}
		return true
	})
}

// ifaceOf returns the interface type fn is declared on, or nil for
// concrete functions and methods.
func ifaceOf(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// ifaceIndex resolves interface method calls to the module types that
// implement them.
type ifaceIndex struct {
	named []*types.Named
	cache map[ifaceKey][]*types.Func
}

type ifaceKey struct {
	iface  *types.Interface
	method string
}

func newIfaceIndex(pkgs []*Package) *ifaceIndex {
	ix := &ifaceIndex{cache: map[ifaceKey][]*types.Func{}}
	for _, pkg := range pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			ix.named = append(ix.named, named)
		}
	}
	sort.Slice(ix.named, func(i, j int) bool {
		a, b := ix.named[i], ix.named[j]
		if ap, bp := a.Obj().Pkg().Path(), b.Obj().Pkg().Path(); ap != bp {
			return ap < bp
		}
		return a.Obj().Name() < b.Obj().Name()
	})
	return ix
}

// implementations returns the concrete module methods a call to
// iface.method may dispatch to, in deterministic order.
func (ix *ifaceIndex) implementations(iface *types.Interface, method string) []*types.Func {
	key := ifaceKey{iface, method}
	if impls, ok := ix.cache[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range ix.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			impls = append(impls, fn)
		}
	}
	ix.cache[key] = impls
	return impls
}

// A PathStep is one hop of a call path reconstructed from a reachability
// search: the function reached and the call-site position in its caller.
type PathStep struct {
	Fn  *types.Func
	Pos token.Pos // call site in the parent; NoPos for roots
}

// reach is the result of a multi-root BFS: parent pointers for every
// function reachable from the roots.
type reach struct {
	parent map[*types.Func]Edge        // reached fn -> incoming edge
	from   map[*types.Func]*types.Func // reached fn -> caller (nil for roots)
}

// ReachableFrom runs a breadth-first search from roots (in the given
// order, which makes exemplar paths deterministic) and returns the parent
// forest. Roots not declared in the module are skipped.
func (g *Graph) ReachableFrom(roots []*types.Func) *reach {
	r := &reach{parent: map[*types.Func]Edge{}, from: map[*types.Func]*types.Func{}}
	var queue []*types.Func
	for _, root := range roots {
		root = root.Origin()
		if g.nodes[root] == nil {
			continue
		}
		if _, ok := r.from[root]; ok {
			continue
		}
		r.from[root] = nil
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.nodes[fn].Edges {
			if _, ok := r.from[e.Callee]; ok {
				continue
			}
			r.from[e.Callee] = fn
			r.parent[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Contains reports whether fn was reached.
func (r *reach) Contains(fn *types.Func) bool {
	_, ok := r.from[fn.Origin()]
	return ok
}

// Path reconstructs the root-to-fn call path as PathSteps; nil if fn was
// not reached.
func (r *reach) Path(fn *types.Func) []PathStep {
	fn = fn.Origin()
	if _, ok := r.from[fn]; !ok {
		return nil
	}
	var rev []PathStep
	for cur := fn; cur != nil; {
		e, hasParent := r.parent[cur]
		step := PathStep{Fn: cur}
		if hasParent {
			step.Pos = e.Pos
		}
		rev = append(rev, step)
		cur = r.from[cur]
	}
	out := make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// FormatPath renders a call path as "a -> b -> c" using FuncName.
func FormatPath(steps []PathStep) string {
	var b []byte
	for i, s := range steps {
		if i > 0 {
			b = append(b, " -> "...)
		}
		b = append(b, FuncName(s.Fn)...)
	}
	return string(b)
}
