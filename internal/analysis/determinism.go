package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism forbids ambient-state reads inside library code: wall-clock
// time, process environment, and the implicitly seeded global math/rand
// source. Simulators must derive every value from their inputs (explicit
// seeds, virtual clocks) or replayed chunk-sequence inference stops being
// reproducible. Legitimate wall-clock uses (cmd/, the timing experiment)
// are allowlisted in .csi-vet.conf.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now/Since, os.Getenv, and global math/rand in simulator and inference code",
	Run:  runDeterminism,
}

// forbiddenFuncs maps package path -> function name -> why it is banned.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock; simulators must use virtual time",
		"Since": "reads the wall clock; simulators must use virtual time",
		"Until": "reads the wall clock; simulators must use virtual time",
	},
	"os": {
		"Getenv":    "reads ambient process state; thread configuration through parameters",
		"LookupEnv": "reads ambient process state; thread configuration through parameters",
		"Environ":   "reads ambient process state; thread configuration through parameters",
	},
}

// randConstructors are the math/rand(/v2) top-level functions that build
// explicitly seeded sources and are therefore allowed; every other
// top-level function of those packages draws from the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 additions.
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	pass.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Float64) are fine
		}
		pkgPath, name := fn.Pkg().Path(), fn.Name()
		if why, ok := forbiddenFuncs[pkgPath][name]; ok {
			pass.Reportf(sel.Pos(), "call to %s.%s %s", pkgPath, name, why)
			return true
		}
		if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name] {
			pass.Reportf(sel.Pos(), "call to %s.%s uses the global random source; use rand.New(rand.NewSource(seed))", pkgPath, name)
		}
		return true
	})
}
