// Package packet defines the wire-level packet representation shared by the
// simulated transports and the capture layer.
//
// A Packet carries two things: the monitor-visible View (everything a
// third-party capturing encrypted traffic at the gateway could observe —
// sizes, timing, cleartext header fields) and an opaque Arrive callback that
// delivers the semantic content to the receiving endpoint. The inference
// code in internal/core consumes only Views; it never sees payload
// semantics, mirroring the threat model of the paper (§2, Figure 2).
package packet

// Header sizes in bytes. TCP includes typical options (timestamps).
const (
	IPHeader  = 20
	TCPHeader = 32
	UDPHeader = 8

	// QUICShortHeader is the short (1-RTT) header: flags(1) + DCID(8) +
	// packet number(4).
	QUICShortHeader = 13
	// QUICLongHeader approximates the long header used during the
	// handshake.
	QUICLongHeader = 28
)

// Dir is the packet direction relative to the client device.
type Dir int

const (
	Up   Dir = iota // client -> server
	Down            // server -> client
)

func (d Dir) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Proto is the transport protocol of a connection.
type Proto int

const (
	TCP Proto = iota
	UDP
)

func (p Proto) String() string {
	if p == TCP {
		return "tcp"
	}
	return "udp"
}

// View is the monitor-visible information of one packet: exactly the fields
// listed in Figure 2 of the paper as still observable under HTTPS/QUIC.
type View struct {
	Time   float64 // capture timestamp, set by the tap
	Dir    Dir
	Proto  Proto
	ConnID int   // stands in for the 5-tuple
	Size   int64 // total wire size including all headers

	// SNI is non-empty on the handshake packet carrying the Server Name
	// Indication (TLS ClientHello / QUIC Initial).
	SNI string

	// ServerIP is the server-side address of the 5-tuple (always visible
	// in the IP header).
	ServerIP string

	// DNSQuery/DNSAnswerIP are set on (cleartext) DNS packets: the monitor
	// can associate later connections to hostnames through them even when
	// the SNI is absent (§5.3.1 Step 1.1 fallback).
	DNSQuery    string
	DNSAnswerIP string

	// TCP/TLS fields (Proto == TCP).
	TCPSeq     int64 // stream byte offset of the first payload byte
	TCPPayload int64 // TCP payload bytes in this packet
	// TLSAppBytes / TLSHSBytes split the TCP payload into application-data
	// record bytes (payload + AEAD tag) and handshake record bytes; record
	// framing headers are excluded from both. A monitor reconstructs this
	// from the cleartext 5-byte record headers in the stream.
	TLSAppBytes int64
	TLSHSBytes  int64

	// QUIC fields (Proto == UDP).
	QUICPN      int64 // packet number (never reused, even for retransmitted data)
	QUICPayload int64 // encrypted payload bytes after the QUIC header
	QUICLong    bool  // long-header (handshake) packet
}

// Packet is one packet in flight through the emulated network.
type Packet struct {
	Size int64 // wire size in bytes
	View View
	// Arrive delivers the packet to the receiving endpoint at the given
	// virtual time. It is nil for packets that carry no semantics (never
	// the case in practice).
	Arrive func(now float64)
}

// Sender is anything that can accept a packet for (eventual) delivery:
// links, shapers, endpoints.
type Sender interface {
	Send(p *Packet)
}
