package packet

import "testing"

func TestDirString(t *testing.T) {
	if got := Up.String(); got != "up" {
		t.Errorf("Up.String() = %q", got)
	}
	if got := Down.String(); got != "down" {
		t.Errorf("Down.String() = %q", got)
	}
}

func TestProtoString(t *testing.T) {
	if got := TCP.String(); got != "tcp" {
		t.Errorf("TCP.String() = %q", got)
	}
	if got := UDP.String(); got != "udp" {
		t.Errorf("UDP.String() = %q", got)
	}
}

// TestHeaderConstants pins the wire-overhead arithmetic the simulators and
// the estimator both rely on (§3.2 subtracts exactly these per-packet
// overheads when reconstructing application bytes).
func TestHeaderConstants(t *testing.T) {
	if IPHeader != 20 {
		t.Errorf("IPHeader = %d, want 20", IPHeader)
	}
	if TCPHeader != 32 {
		t.Errorf("TCPHeader = %d, want 32 (20 base + timestamps option)", TCPHeader)
	}
	if UDPHeader != 8 {
		t.Errorf("UDPHeader = %d, want 8", UDPHeader)
	}
	// The QUIC short header must be cheaper than the long (handshake)
	// header, and both must exceed the bare UDP header they ride on.
	if QUICShortHeader >= QUICLongHeader {
		t.Errorf("short header (%d) should be smaller than long (%d)", QUICShortHeader, QUICLongHeader)
	}
	if QUICShortHeader <= 0 || QUICLongHeader <= 0 {
		t.Error("QUIC header sizes must be positive")
	}
	// TCP per-packet overhead exceeds UDP's — the reason QUIC's error
	// bound k differs from HTTPS's in the paper.
	if IPHeader+TCPHeader <= IPHeader+UDPHeader {
		t.Error("TCP overhead should exceed UDP overhead")
	}
}

// TestArriveDelivery checks the Packet contract: Arrive carries the
// semantics, View carries what the monitor sees, and a Sender observes
// only the packet it was handed.
func TestArriveDelivery(t *testing.T) {
	var deliveredAt float64
	p := &Packet{
		Size: 1500,
		View: View{Time: 1.25, Dir: Down, Proto: TCP, ConnID: 7, Size: 1500},
		Arrive: func(now float64) {
			deliveredAt = now
		},
	}
	var got []*Packet
	s := senderFunc(func(pkt *Packet) { got = append(got, pkt) })
	s.Send(p)
	if len(got) != 1 || got[0] != p {
		t.Fatalf("sender saw %d packets", len(got))
	}
	got[0].Arrive(3.5)
	if deliveredAt != 3.5 {
		t.Errorf("Arrive delivered at %v, want 3.5", deliveredAt)
	}
	if got[0].View.Size != got[0].Size {
		t.Errorf("view size %d disagrees with wire size %d", got[0].View.Size, got[0].Size)
	}
}

// senderFunc adapts a function to the Sender interface, doubling as a
// compile-time check that the interface stays implementable by adapters.
type senderFunc func(*Packet)

func (f senderFunc) Send(p *Packet) { f(p) }

var _ Sender = senderFunc(nil)
