// Package shaping implements the §7 use case: studying how token-bucket
// traffic-shaping parameters (rate r, bucket size N) interact with a
// closed-source player's adaptation logic, using CSI to read the player's
// behaviour out of encrypted traffic.
//
// The player under study is the Hulu-like client of §7: starts on the
// lowest track, converges to the highest track whose bitrate is at most
// half the available bandwidth, and pauses downloads at ~145 s of buffer,
// producing a per-chunk ON-OFF pattern.
package shaping

import (
	"fmt"

	"csi/internal/abr"
	"csi/internal/capture"
	"csi/internal/core"
	"csi/internal/media"
	"csi/internal/netem"
	"csi/internal/qoe"
	"csi/internal/session"
)

// huluSession applies the session knobs reproducing the §7 client.
func huluSession(cfg *session.Config) {
	cfg.Algo = abr.HuluHalf{}
	cfg.MaxBufferSec = 145
	cfg.ResumeBufferSec = 145
	cfg.StartupChunks = 3
}

// Conditions returns the two bandwidth conditions of §7: B1 stable 10
// Mbit/s, and B2 mostly 10 Mbit/s with occasional 1 Mbit/s troughs.
func Conditions() (map[string]*netem.BandwidthTrace, error) {
	b1 := netem.Constant(10_000_000)
	// B2: 40 s at 10 Mbit/s, 15 s at 1 Mbit/s, repeating.
	b2, err := netem.Steps(3600, [2]float64{40, 10_000_000}, [2]float64{15, 1_000_000})
	if err != nil {
		return nil, err
	}
	return map[string]*netem.BandwidthTrace{"B1": b1, "B2": b2}, nil
}

// Point is one measurement of the sweep: the player behaviour inferred by
// CSI under one shaping configuration and network condition.
type Point struct {
	Condition  string
	RateBps    float64
	Bucket     int64
	TrackShare map[int]float64 // playback-time share per manifest track
	DataBytes  int64           // downlink bytes used
	Stalls     int
	Switches   int  // track changes (§7: big buckets cause oscillation)
	Inferred   bool // behaviour read via CSI (vs ground truth fallback)
}

// RunPoint streams through the shaper and infers behaviour with CSI.
func RunPoint(man *media.Manifest, cond string, trace *netem.BandwidthTrace, r float64, n int64, dur float64, seed int64) (*Point, error) {
	cfg := session.Config{
		Design:    session.CH,
		Manifest:  man,
		Bandwidth: trace,
		Shaper:    &netem.TokenBucketConfig{RateBps: r, BucketSize: n},
		Duration:  dur,
		Seed:      seed,
	}
	huluSession(&cfg)
	res, err := session.Run(cfg)
	if err != nil {
		return nil, err
	}
	pt := &Point{Condition: cond, RateBps: r, Bucket: n, DataBytes: res.Stats.DownlinkBytes}

	// Read the adaptation behaviour out of the encrypted trace with CSI.
	inf, err := core.Infer(man, res.Run.Trace, core.Params{MediaHost: man.Host})
	var chunks []qoe.Chunk
	if err == nil && inf.Best != nil {
		chunks = chunksFromInference(inf, man)
		pt.Inferred = true
	} else {
		// Fall back to ground truth so a sweep never silently loses a
		// point; callers can see Inferred=false.
		chunks = chunksFromTruth(res.Run.Truth)
	}
	rep, err := qoe.Analyze(chunks, qoe.Config{ChunkDur: man.ChunkDur, Horizon: dur})
	if err != nil {
		return nil, fmt.Errorf("shaping: qoe: %w", err)
	}
	pt.TrackShare = rep.TrackShare
	pt.Stalls = len(rep.Stalls)
	pt.Switches = rep.Switches
	return pt, nil
}

func chunksFromInference(inf *core.Inference, man *media.Manifest) []qoe.Chunk {
	var out []qoe.Chunk
	for i, a := range inf.Best.Assignments {
		r := inf.Requests[i]
		c := qoe.Chunk{ReqTime: r.Time, DoneTime: r.LastData, Audio: a.Audio}
		if a.Audio {
			c.Track = a.AudioTrack
			c.Size = man.Tracks[a.AudioTrack].Sizes[0]
		} else {
			c.Track = a.Ref.Track
			c.Index = a.Ref.Index
			c.Size = man.Size(a.Ref)
		}
		out = append(out, c)
	}
	return out
}

func chunksFromTruth(truth []capture.TruthRecord) []qoe.Chunk {
	var out []qoe.Chunk
	for _, tr := range truth {
		out = append(out, qoe.Chunk{
			ReqTime: tr.ReqTime, DoneTime: tr.DoneTime,
			Track: tr.Ref.Track, Index: tr.Ref.Index,
			Audio: tr.Kind == media.Audio, Size: tr.Size,
		})
	}
	return out
}

// SweepRates reproduces Figure 10(a)-(b): vary the token rate r with a
// small fixed bucket.
func SweepRates(man *media.Manifest, rates []float64, bucket int64, dur float64, seed int64) ([]Point, error) {
	conds, err := Conditions()
	if err != nil {
		return nil, err
	}
	var out []Point
	for _, cond := range []string{"B1", "B2"} {
		for i, r := range rates {
			pt, err := RunPoint(man, cond, conds[cond], r, bucket, dur, seed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("shaping: %s r=%.0f: %w", cond, r, err)
			}
			out = append(out, *pt)
		}
	}
	return out, nil
}

// SweepBuckets reproduces Figure 10(c)-(d): vary the bucket size N with a
// fixed rate.
func SweepBuckets(man *media.Manifest, rate float64, buckets []int64, dur float64, seed int64) ([]Point, error) {
	conds, err := Conditions()
	if err != nil {
		return nil, err
	}
	var out []Point
	for _, cond := range []string{"B1", "B2"} {
		for i, n := range buckets {
			pt, err := RunPoint(man, cond, conds[cond], rate, n, dur, seed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("shaping: %s N=%d: %w", cond, n, err)
			}
			out = append(out, *pt)
		}
	}
	return out, nil
}

// SeriesRow is one chunk of a Figure 11 time series.
type SeriesRow struct {
	ReqTime    float64
	Track      int
	Throughput float64 // achieved bits/s for this chunk
	BufferSec  float64 // buffer occupancy when the chunk finished
}

// TimeSeries reproduces one Figure 11 panel: per-chunk track selection,
// achieved throughput and buffer occupancy over time, as inferred by CSI.
func TimeSeries(man *media.Manifest, trace *netem.BandwidthTrace, shaper *netem.TokenBucketConfig, dur float64, seed int64) ([]SeriesRow, error) {
	cfg := session.Config{
		Design:    session.CH,
		Manifest:  man,
		Bandwidth: trace,
		Shaper:    shaper,
		Duration:  dur,
		Seed:      seed,
	}
	huluSession(&cfg)
	res, err := session.Run(cfg)
	if err != nil {
		return nil, err
	}
	inf, err := core.Infer(man, res.Run.Trace, core.Params{MediaHost: man.Host})
	if err != nil {
		return nil, fmt.Errorf("shaping: inference: %w", err)
	}
	chunks := chunksFromInference(inf, man)
	rep, err := qoe.Analyze(chunks, qoe.Config{ChunkDur: man.ChunkDur, Horizon: dur})
	if err != nil {
		return nil, err
	}
	// Buffer lookup: the qoe samples are in completion order.
	bufAt := func(t float64) float64 {
		b := 0.0
		for _, s := range rep.Buffer {
			if s.T > t {
				break
			}
			b = s.Buffer
		}
		return b
	}
	var rows []SeriesRow
	for _, c := range chunks {
		if c.Audio {
			continue
		}
		row := SeriesRow{ReqTime: c.ReqTime, Track: c.Track, BufferSec: bufAt(c.DoneTime)}
		if dt := c.DoneTime - c.ReqTime; dt > 0 {
			row.Throughput = float64(c.Size) * 8 / dt
		}
		rows = append(rows, row)
	}
	return rows, nil
}
